//! Facade crate for the room-acoustics-LIFT reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See `README.md` and `DESIGN.md` at the repository root.

pub use lift;
pub use lift_acoustics;
pub use room_acoustics;
pub use vgpu;

pub use vgpu::telemetry;

//! # room-acoustics — FDTD room acoustics with complex boundary conditions
//!
//! The application domain of the reproduced paper: 3-D finite-difference
//! time-domain simulation of sound in rooms, with the three boundary models
//! of §II —
//!
//! * **FI** — uniform frequency-independent absorption (Listings 1–2);
//! * **FI-MM** — multi-material frequency-independent absorption
//!   (Listing 3);
//! * **FD-MM** — frequency-dependent multi-material absorption with
//!   per-boundary-point resonant state (Listing 4).
//!
//! The crate provides the geometry/voxelisation pipeline, the boundary data
//! structures (`nbrs`, `boundaryIndices`, materials), physically-derived
//! FD-MM coefficient tables, golden-model Rust kernels, hand-written
//! baseline kernels in the `lift` kernel AST, and simulation drivers for
//! both. LIFT-*generated* kernels live in the `lift-acoustics` crate.
//!
//! ## Example: a small room with absorbing walls
//!
//! ```
//! use room_acoustics::{GridDims, ReferenceSim, RoomShape, SimConfig, SimSetup};
//!
//! let cfg = SimConfig::fimm(GridDims::cube(12), RoomShape::Box);
//! let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
//! sim.impulse(6, 6, 6, 1.0);
//! sim.run(100);
//! let e_early = sim.energy();
//! sim.run(400);
//! assert!(sim.energy() < e_early); // absorbing walls dissipate
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod boundary;
pub mod contracts;
pub mod geometry;
pub mod handwritten;
pub mod materials;
pub mod reference;
pub mod shard_sim;
pub mod sim;
pub mod vgpu_sim;

pub use boundary::{MaterialAssignment, RoomModel};
pub use geometry::{GridDims, RoomShape};
pub use materials::{courant, courant_sq, FdCoeffs, Material};
pub use shard_sim::{boundary_cut_planes, boundary_cuts, ShardedSim};
pub use sim::{BoundaryModel, ReferenceSim, SimConfig, SimSetup};
pub use vgpu_sim::{BoundaryKernel, HandwrittenSim, Precision};

//! Z-slab sharded execution of the hand-written kernels across multiple
//! virtual devices (DESIGN.md §12).
//!
//! [`ShardedSim`] is the multi-device counterpart of
//! [`crate::vgpu_sim::HandwrittenSim`]: the grid's z-planes are split into
//! contiguous slabs (one per [`Device`]), each slab allocates its pressure
//! fields with one halo plane on either side, and every step exchanges the
//! seam planes of `curr` as explicit device-to-device copies before the
//! volume launches. The volume pass uses
//! [`crate::handwritten::volume_slab_kernel`] (the grid kernel with
//! `get_global_id(2)` shifted by +1) over `[Nx, Ny, owned]` work-items, so
//! the per-device launches together execute exactly the work-items of the
//! single-device launch.
//!
//! Boundary lists are sliced by owning slab; list-positional loads
//! (`boundaryIndices`, `material` and the FD-MM state arrays) shift their
//! base by the slice offset, so transaction totals match the unsharded run
//! exactly when each slice offset is a multiple of the warp width (see
//! [`boundary_cut_planes`]). The FD-MM kernel indexes its state as
//! `b·numB + i`; the sharded launch passes a *padded* per-device stride
//! congruent to the global `numB` modulo the warp width and launches only
//! the real boundary-point count (the interpreter never runs lanes past
//! the launch size, so the larger guard value is inert).
//!
//! Transfer accounting is arranged so host-transfer *byte* totals are
//! bit-comparable with a single-device run: owned slabs move through
//! accounted region transfers summing to the unsharded sizes, replicated
//! coefficient tables are accounted once (device 0) with replicas under
//! `vgpu.halo.replicate.*`, and halo traffic under `vgpu.halo.*` — never
//! `vgpu.xfer.*`.

use crate::handwritten;
use crate::reference::FdArrays;
use crate::sim::{field_energy, SimSetup};
use crate::vgpu_sim::{BoundaryKernel, Precision};
use lift::prelude::Value;
use vgpu::{Arg, BufData, BufId, Device, ExecMode, LaunchStats, Prepared, SlabPartition};

/// The warp width the transaction model groups work-items by (see
/// [`vgpu::exec`]); boundary-slice offsets congruent to 0 modulo this keep
/// sharded transaction totals identical to unsharded ones.
pub const WARP: usize = 32;

/// Per-step launch statistics of a sharded step: one (volume, boundary)
/// pair per device. Devices whose slab holds no boundary points report
/// `None` for the boundary launch.
pub type ShardStepStats = Vec<(LaunchStats, Option<LaunchStats>)>;

/// Sums counters and transaction bytes across a sharded step, for
/// comparison against a single-device step.
pub fn sum_step_stats(stats: &ShardStepStats) -> (vgpu::Counters, Option<u64>) {
    let mut c = vgpu::Counters::default();
    let mut txn: Option<u64> = None;
    let mut add = |s: &LaunchStats| {
        c.work_items += s.counters.work_items;
        c.loads_global += s.counters.loads_global;
        c.stores_global += s.counters.stores_global;
        c.flops += s.counters.flops;
        if let Some(t) = s.transaction_bytes {
            *txn.get_or_insert(0) += t;
        }
    };
    for (v, b) in stats {
        add(v);
        if let Some(b) = b {
            add(b);
        }
    }
    (c, txn)
}

struct SlabFd {
    bi: BufId,
    d: BufId,
    di: BufId,
    f: BufId,
    g1: BufId,
    v1: BufId,
    v2: BufId,
    /// Padded state stride passed as the kernel's `numB` scalar:
    /// `num_b + ((global_nb − num_b) mod WARP)` — congruent to the global
    /// boundary count modulo the warp width, so state-array lane address
    /// patterns match the unsharded launch.
    stride: usize,
}

struct SlabBoundary {
    bidx: BufId,
    material: BufId,
    /// Boundary points owned by this slab (the launch size).
    num_b: usize,
    fd: Option<SlabFd>,
}

struct Slab {
    prev: BufId,
    curr: BufId,
    next: BufId,
    nbrs: BufId,
    beta: BufId,
    bnd: Option<SlabBoundary>,
}

/// Hand-written kernels running Z-slab sharded across multiple devices.
pub struct ShardedSim {
    /// The devices, slab order (exposed for telemetry/profiling inspection).
    pub devices: Vec<Device>,
    setup: SimSetup,
    precision: Precision,
    part: SlabPartition,
    plane: usize,
    volume: Prepared,
    boundary: Prepared,
    boundary_kind: BoundaryKernel,
    slabs: Vec<Slab>,
    steps_done: usize,
}

/// Splits the sorted boundary-index list at the partition's cut planes:
/// returns `device_count + 1` offsets `c` with slab `d` owning list range
/// `c[d]..c[d+1]` (a boundary point belongs to the slab owning its
/// z-plane).
///
/// This split is only *valid* when every point's kernel footprint stays
/// within its slab's local coverage — use [`checked_boundary_cuts`] with
/// the kernel's proven z-reach to enforce that instead of assuming it.
pub fn boundary_cuts(part: &SlabPartition, plane: usize, boundary_indices: &[i32]) -> Vec<usize> {
    let mut c = Vec::with_capacity(part.device_count() + 1);
    c.push(0);
    for d in 0..part.device_count() {
        let end = part.cuts()[d + 1] * plane;
        c.push(boundary_indices.partition_point(|&i| (i as usize) < end));
    }
    c
}

/// [`boundary_cuts`], validated against a proven kernel footprint: a
/// boundary point at z-plane `z` assigned to slab `d` may touch planes
/// `[z − reach.0, z + reach.1]` (clamped to the grid), all of which must
/// lie within the slab's local coverage — its owned planes plus `halo`
/// exchanged planes per side. Errs naming the first violating point, so
/// cut planes landing exactly on a stencil-reachable plane of a
/// wider-than-halo kernel are rejected instead of silently accepted.
pub fn checked_boundary_cuts(
    part: &SlabPartition,
    plane: usize,
    boundary_indices: &[i32],
    reach: (usize, usize),
    halo: (usize, usize),
) -> Result<Vec<usize>, String> {
    let cuts = boundary_cuts(part, plane, boundary_indices);
    let nz = part.nz();
    for d in 0..part.device_count() {
        let cover_lo = part.cuts()[d].saturating_sub(halo.0);
        let cover_hi = ((part.cuts()[d + 1] - 1) + halo.1).min(nz - 1);
        for &i in &boundary_indices[cuts[d]..cuts[d + 1]] {
            let z = (i as usize) / plane;
            let lo = z.saturating_sub(reach.0);
            let hi = (z + reach.1).min(nz - 1);
            if lo < cover_lo || hi > cover_hi {
                return Err(format!(
                    "boundary point {i} (z-plane {z}) on slab {d} provably reaches planes \
                     [{lo}, {hi}] but the slab only covers [{cover_lo}, {cover_hi}] \
                     (owned planes {}..{} plus ({}, {}) halo)",
                    part.cuts()[d],
                    part.cuts()[d + 1],
                    halo.0,
                    halo.1
                ));
            }
        }
    }
    Ok(cuts)
}

/// Searches for interior cut planes whose boundary-list prefix counts are
/// all multiples of [`WARP`], partitioning `nz` planes into `devices`
/// slabs as evenly as the alignment constraint allows. Such cuts make the
/// sharded boundary launches' transaction totals bit-identical to the
/// single-device run (list-positional warp groupings coincide). Returns
/// `None` when no aligned cut set exists.
pub fn boundary_cut_planes(
    nz: usize,
    plane: usize,
    boundary_indices: &[i32],
    devices: usize,
) -> Option<Vec<usize>> {
    // prefix[z] = boundary points strictly below plane z
    let prefix: Vec<usize> =
        (0..=nz).map(|z| boundary_indices.partition_point(|&i| (i as usize) < z * plane)).collect();
    let mut cuts = vec![0usize];
    for d in 1..devices {
        let ideal = nz * d / devices;
        // nearest aligned plane to the ideal cut, strictly between the
        // previous cut and nz − (remaining slabs still need a plane each)
        let lo = cuts[d - 1] + 1;
        let hi = nz - (devices - d);
        let best = (lo..=hi)
            .filter(|&z| prefix[z].is_multiple_of(WARP))
            .min_by_key(|&z| z.abs_diff(ideal))?;
        cuts.push(best);
    }
    cuts.push(nz);
    if cuts.windows(2).all(|w| w[0] < w[1]) {
        Some(cuts)
    } else {
        None
    }
}

impl ShardedSim {
    /// Builds a sharded backend over a balanced partition across `devices`.
    pub fn new(
        setup: SimSetup,
        precision: Precision,
        boundary_kind: BoundaryKernel,
        devices: Vec<Device>,
    ) -> Self {
        let part = SlabPartition::balanced(setup.dims().nz, devices.len());
        Self::with_partition(setup, precision, boundary_kind, devices, part)
    }

    /// Builds a sharded backend over an explicit partition (one device per
    /// slab).
    pub fn with_partition(
        setup: SimSetup,
        precision: Precision,
        boundary_kind: BoundaryKernel,
        mut devices: Vec<Device>,
        part: SlabPartition,
    ) -> Self {
        assert_eq!(devices.len(), part.device_count(), "one device per slab");
        assert_eq!(part.nz(), setup.dims().nz, "partition must cover the grid");
        crate::contracts::register_all();
        let real = precision.kind();
        let dims = *setup.dims();
        let plane = dims.nx * dims.ny;
        let nb = setup.num_b();
        // Proof-licensed halo widths (DESIGN.md §9): the slab layout
        // provides exactly one exchanged plane per side, so the volume
        // kernel's statically proven z-reach must fit one plane and the
        // boundary kernel must be a pure gather (zero reach). A kernel
        // with a wider stencil is rejected here, at shard time, instead
        // of silently reading stale halo data.
        let volume_src = handwritten::volume_slab_kernel().resolve_real(real);
        crate::contracts::check_slab_halo(
            &volume_src,
            &crate::contracts::launch_contract(&volume_src),
            (1, 1),
        )
        .unwrap_or_else(|e| panic!("slab volume kernel fails the halo proof: {e}"));
        let boundary_src = match boundary_kind {
            BoundaryKernel::FiMm { beta_constant } => {
                handwritten::fimm_kernel(beta_constant).resolve_real(real)
            }
            BoundaryKernel::FdMm => handwritten::fdmm_kernel().resolve_real(real),
        };
        let boundary_reach = crate::contracts::check_slab_halo(
            &boundary_src,
            &crate::contracts::launch_contract(&boundary_src),
            (1, 1),
        )
        .unwrap_or_else(|e| panic!("boundary kernel fails the halo proof: {e}"));
        // Same process-wide artifact cache as the single-device path: all
        // devices share one Arc'd prepared artifact per kernel.
        let volume = (*vgpu::compile_cached(&handwritten::volume_slab_kernel().resolve_real(real))
            .expect("slab volume kernel compiles"))
        .clone();
        let boundary = match boundary_kind {
            BoundaryKernel::FiMm { beta_constant } => {
                (*vgpu::compile_cached(&handwritten::fimm_kernel(beta_constant).resolve_real(real))
                    .expect("FI-MM kernel compiles"))
                .clone()
            }
            BoundaryKernel::FdMm => {
                (*vgpu::compile_cached(&handwritten::fdmm_kernel().resolve_real(real))
                    .expect("FD-MM kernel compiles"))
                .clone()
            }
        };
        let bcuts = checked_boundary_cuts(
            &part,
            plane,
            &setup.room.boundary_indices,
            boundary_reach,
            (1, 1),
        )
        .unwrap_or_else(|e| panic!("boundary list split fails the footprint check: {e}"));
        let fa: Option<FdArrays<f64>> = match boundary_kind {
            BoundaryKernel::FdMm => {
                Some(FdArrays::from_coeffs(setup.fd.as_ref().expect("FD-MM coefficients")))
            }
            _ => None,
        };
        let mut slabs = Vec::with_capacity(part.device_count());
        for d in 0..part.device_count() {
            let dev = &mut devices[d];
            let local = part.local_planes(d) * plane;
            let owned = part.owned(d) * plane;
            let start = part.first_owned(d) * plane;
            let prev = dev.create_buffer_zeroed(real, local);
            let curr = dev.create_buffer_zeroed(real, local);
            let next = dev.create_buffer_zeroed(real, local);
            // Owned nbrs planes move through an accounted region write (the
            // slices sum to the unsharded upload); the halo planes stay
            // zero — the slab volume kernel never reads them.
            let nbrs = dev.create_buffer_zeroed(lift::prelude::ScalarKind::I32, local);
            dev.write_region(
                nbrs,
                plane,
                BufData::from(setup.room.nbrs[start..start + owned].to_vec()),
            );
            // β is replicated: accounted once on device 0, replicas under
            // vgpu.halo.replicate.* (exactly-once host-transfer totals).
            let beta = if d == 0 {
                dev.upload(precision.buf(&setup.betas))
            } else {
                dev.upload_replica(precision.buf(&setup.betas))
            };
            let (cb, ce) = (bcuts[d], bcuts[d + 1]);
            let num_b = ce - cb;
            let fd_tables = fa.as_ref().map(|fa| {
                if d == 0 {
                    (
                        dev.upload(precision.buf(&fa.bi)),
                        dev.upload(precision.buf(&fa.d)),
                        dev.upload(precision.buf(&fa.di)),
                        dev.upload(precision.buf(&fa.f)),
                    )
                } else {
                    (
                        dev.upload_replica(precision.buf(&fa.bi)),
                        dev.upload_replica(precision.buf(&fa.d)),
                        dev.upload_replica(precision.buf(&fa.di)),
                        dev.upload_replica(precision.buf(&fa.f)),
                    )
                }
            });
            let bnd = (num_b > 0).then(|| {
                let shift = part.elem_shift(d, plane);
                let local_bidx: Vec<i32> = setup.room.boundary_indices[cb..ce]
                    .iter()
                    .map(|&i| (i as isize - shift) as i32)
                    .collect();
                let bidx = dev.upload(BufData::from(local_bidx));
                let material = dev.upload(BufData::from(setup.room.material[cb..ce].to_vec()));
                let fd = fd_tables.map(|(bi, dd, di, f)| {
                    let stride = num_b + (nb - num_b) % WARP;
                    let state = setup.mb * stride;
                    SlabFd {
                        bi,
                        d: dd,
                        di,
                        f,
                        g1: dev.create_buffer_zeroed(real, state),
                        v1: dev.create_buffer_zeroed(real, state),
                        v2: dev.create_buffer_zeroed(real, state),
                        stride,
                    }
                });
                SlabBoundary { bidx, material, num_b, fd }
            });
            slabs.push(Slab { prev, curr, next, nbrs, beta, bnd });
        }
        ShardedSim {
            devices,
            setup,
            precision,
            part,
            plane,
            volume,
            boundary,
            boundary_kind,
            slabs,
            steps_done: 0,
        }
    }

    /// The shared setup.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// The slab partition.
    pub fn partition(&self) -> &SlabPartition {
        &self.part
    }

    /// The slab owning global plane `z`.
    fn owner_of_plane(&self, z: usize) -> usize {
        (0..self.part.device_count())
            .find(|&d| z < self.part.cuts()[d + 1])
            .expect("plane inside grid")
    }

    /// Injects an impulse (released initial displacement on `curr` and
    /// `prev`, matching the single-device backend). Accounted as full-field
    /// region reads and writes so host-transfer byte totals stay identical
    /// to [`crate::vgpu_sim::HandwrittenSim::impulse`].
    pub fn impulse(&mut self, x: usize, y: usize, z: usize, amp: f64) {
        let idx = self.setup.dims().idx(x, y, z);
        let owner = self.owner_of_plane(z);
        for which in 0..2 {
            for d in 0..self.part.device_count() {
                let buf = if which == 0 { self.slabs[d].curr } else { self.slabs[d].prev };
                let owned = self.part.owned(d) * self.plane;
                let mut data = self.devices[d].read_region(buf, self.plane, owned);
                if d == owner {
                    data.set(
                        self.part.to_local(d, self.plane, idx) - self.plane,
                        self.precision.val(amp),
                    );
                }
                self.devices[d].write_region(buf, self.plane, data);
            }
        }
    }

    /// Advances one step: halo-exchange the `curr` seams, launch the slab
    /// volume kernel on every device, launch the boundary kernel on every
    /// device owning boundary points, then rotate.
    pub fn step(&mut self, mode: ExecMode) -> ShardStepStats {
        let dims = *self.setup.dims();
        let l = self.precision.val(self.setup.l);
        let l2 = self.precision.val(self.setup.l2);
        let currs: Vec<BufId> = self.slabs.iter().map(|s| s.curr).collect();
        vgpu::halo_exchange(&mut self.devices, &currs, &self.part, self.plane);
        let mut stats = Vec::with_capacity(self.slabs.len());
        for (d, slab) in self.slabs.iter().enumerate() {
            let owned = self.part.owned(d);
            let vstats = self.devices[d]
                .launch(
                    &self.volume,
                    &[
                        Arg::Buf(slab.next),
                        Arg::Buf(slab.curr),
                        Arg::Buf(slab.prev),
                        Arg::Buf(slab.nbrs),
                        Arg::Val(l2),
                        Arg::Val(Value::I32(dims.nx as i32)),
                        Arg::Val(Value::I32(dims.ny as i32)),
                        Arg::Val(Value::I32(self.part.local_planes(d) as i32)),
                    ],
                    &[dims.nx, dims.ny, owned],
                    mode,
                )
                .expect("slab volume launch");
            let bstats = slab.bnd.as_ref().map(|b| match self.boundary_kind {
                BoundaryKernel::FiMm { .. } => self.devices[d]
                    .launch(
                        &self.boundary,
                        &[
                            Arg::Buf(b.bidx),
                            Arg::Buf(slab.nbrs),
                            Arg::Buf(b.material),
                            Arg::Buf(slab.beta),
                            Arg::Buf(slab.next),
                            Arg::Buf(slab.prev),
                            Arg::Val(l),
                            Arg::Val(Value::I32(b.num_b as i32)),
                        ],
                        &[b.num_b],
                        mode,
                    )
                    .expect("sharded FI-MM launch"),
                BoundaryKernel::FdMm => {
                    let fd = b.fd.as_ref().expect("FD buffers");
                    self.devices[d]
                        .launch(
                            &self.boundary,
                            &[
                                Arg::Buf(b.bidx),
                                Arg::Buf(slab.nbrs),
                                Arg::Buf(b.material),
                                Arg::Buf(slab.beta),
                                Arg::Buf(fd.bi),
                                Arg::Buf(fd.d),
                                Arg::Buf(fd.di),
                                Arg::Buf(fd.f),
                                Arg::Buf(slab.next),
                                Arg::Buf(slab.prev),
                                Arg::Buf(fd.g1),
                                Arg::Buf(fd.v1),
                                Arg::Buf(fd.v2),
                                Arg::Val(l),
                                Arg::Val(Value::I32(fd.stride as i32)),
                                Arg::Val(Value::I32(self.setup.mb as i32)),
                            ],
                            &[b.num_b],
                            mode,
                        )
                        .expect("sharded FD-MM launch")
                }
            });
            stats.push((vstats, bstats));
        }
        for slab in &mut self.slabs {
            if let Some(SlabBoundary { fd: Some(fd), .. }) = &mut slab.bnd {
                std::mem::swap(&mut fd.v1, &mut fd.v2);
            }
            let old_prev = slab.prev;
            slab.prev = slab.curr;
            slab.curr = slab.next;
            slab.next = old_prev;
        }
        self.steps_done += 1;
        stats
    }

    /// Runs `n` steps in fast mode.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step(ExecMode::Fast);
        }
    }

    /// Bytes exchanged across all seams per step (the perf model's
    /// communication term): two planes per seam.
    pub fn halo_bytes_per_step(&self) -> u64 {
        let eb = match self.precision {
            Precision::Single => 4,
            Precision::Double => 8,
        };
        2 * (self.part.device_count() as u64 - 1) * self.plane as u64 * eb
    }

    fn assemble(&self, pick: impl Fn(&Slab) -> BufId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.setup.dims().total());
        for (d, slab) in self.slabs.iter().enumerate() {
            let owned = self.part.owned(d) * self.plane;
            out.extend(self.devices[d].read_region(pick(slab), self.plane, owned).to_f64_vec());
        }
        out
    }

    /// Reads the current pressure field (owned regions, assembled in
    /// global order; `Σ bytes` equals the single-device readback).
    pub fn read_curr(&self) -> Vec<f64> {
        self.assemble(|s| s.curr)
    }

    /// Reads the previous pressure field.
    pub fn read_prev(&self) -> Vec<f64> {
        self.assemble(|s| s.prev)
    }

    /// Pressure at a point.
    pub fn sample(&self, x: usize, y: usize, z: usize) -> f64 {
        self.read_curr()[self.setup.dims().idx(x, y, z)]
    }

    /// Field energy proxy (see [`field_energy`]).
    pub fn energy(&self) -> f64 {
        field_energy(&self.read_curr(), &self.read_prev())
    }

    /// Steps executed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// The per-slab devices (for event/telemetry inspection).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{GridDims, RoomShape};
    use crate::sim::{SimConfig, SimSetup};
    use crate::vgpu_sim::HandwrittenSim;

    fn devices(n: usize) -> Vec<Device> {
        (0..n).map(|_| Device::gtx780()).collect()
    }

    #[test]
    fn boundary_cut_on_stencil_reachable_plane_is_proof_gated() {
        // 2×2×8 grid cut at z = 4; one boundary point on the last plane
        // of slab 0 and one on the first plane of slab 1 — each exactly
        // one stencil step from the seam.
        let part = SlabPartition::from_cuts(8, vec![0, 4, 8]);
        let plane = 4;
        let bidx: Vec<i32> = vec![3 * 4, 4 * 4];
        let checked = checked_boundary_cuts(&part, plane, &bidx, (1, 1), (1, 1))
            .expect("one-plane reach fits the one-plane halo");
        assert_eq!(checked, boundary_cuts(&part, plane, &bidx));
        // A two-plane stencil overruns the one-plane halo at the same
        // cut: the proof-routed split must reject it, not silently
        // accept cuts that land on a stencil-reachable plane.
        let err = checked_boundary_cuts(&part, plane, &bidx, (2, 2), (1, 1))
            .expect_err("two-plane reach overruns the one-plane halo");
        assert!(err.contains("halo"), "diagnostic names the halo shortfall: {err}");
        // Away from any seam the same wide stencil is fine.
        let interior: Vec<i32> = vec![2 * 4, 6 * 4];
        checked_boundary_cuts(&part, plane, &interior, (2, 2), (1, 1))
            .expect("interior points never overrun");
    }

    #[test]
    fn sharded_fimm_matches_single_device_bitwise() {
        let s = SimSetup::new(&SimConfig::fimm(GridDims::cube(12), RoomShape::Box));
        let mut single = HandwrittenSim::new(
            s.clone(),
            Precision::Double,
            BoundaryKernel::FiMm { beta_constant: false },
            Device::gtx780(),
        );
        let mut sharded = ShardedSim::new(
            s,
            Precision::Double,
            BoundaryKernel::FiMm { beta_constant: false },
            devices(3),
        );
        single.impulse(6, 6, 6, 1.0);
        sharded.impulse(6, 6, 6, 1.0);
        single.run(12);
        sharded.run(12);
        let a = single.read_curr();
        let b = sharded.read_curr();
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()), "fields diverge");
    }

    #[test]
    fn sharded_fdmm_matches_single_device_bitwise() {
        let s = SimSetup::new(&SimConfig::fdmm(GridDims::cube(12), RoomShape::Dome));
        let mut single = HandwrittenSim::new(
            s.clone(),
            Precision::Single,
            BoundaryKernel::FdMm,
            Device::gtx780(),
        );
        let mut sharded = ShardedSim::new(s, Precision::Single, BoundaryKernel::FdMm, devices(2));
        single.impulse(6, 6, 3, 1.0);
        sharded.impulse(6, 6, 3, 1.0);
        single.run(10);
        sharded.run(10);
        let a = single.read_curr();
        let b = sharded.read_curr();
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()), "fields diverge");
    }

    #[test]
    fn boundary_cut_planes_are_warp_aligned() {
        let s = SimSetup::new(&SimConfig::fimm(GridDims::cube(16), RoomShape::Box));
        let plane = 16 * 16;
        let cuts = boundary_cut_planes(16, plane, &s.room.boundary_indices, 2)
            .expect("aligned cut exists for the 16³ box");
        let part = SlabPartition::from_cuts(16, cuts);
        let bc = boundary_cuts(&part, plane, &s.room.boundary_indices);
        assert!(bc.iter().take(bc.len() - 1).all(|c| c % WARP == 0), "cuts {bc:?}");
    }
}

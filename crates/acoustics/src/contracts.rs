//! Launch contracts for the hand-written reference kernels.
//!
//! A *launch contract* is the [`lift::verify::Assumptions`] value that every
//! shipped launch of a kernel satisfies: buffer-length relations in terms of
//! the scalar size arguments, interior-guard facts, and the data invariants
//! of the boundary gather tables. The contracts live here — next to the
//! sims that own the allocations they describe — and serve two consumers:
//!
//! * the `verify` crate's audit suite pairs each kernel with its contract
//!   and requires the static bounds/race passes to return PROVEN-SAFE
//!   (the CI gate that keeps a contract honest);
//! * [`register_all`] hands the same contracts to
//!   [`vgpu::register_launch_contract`], where the compiled tape engine
//!   (`VGPU_ENGINE=compiled`) merges them with each launch's concrete
//!   shape and elides per-access bounds checks at sites the verifier
//!   proves (DESIGN.md §13).
//!
//! Both consumers reading one definition is the point: the facts the
//! compiled engine trusts are exactly the facts CI re-proves against the
//! kernel sources on every run.

use lift::arith::{ArithExpr, SymRange};
use lift::kast::Kernel;
use lift::verify::{Assumptions, BufferFacts};

use crate::handwritten;

/// The data invariants of the boundary-handling tables, shared by the
/// generated and hand-written FI-MM/FD-MM kernels (and cross-checked
/// dynamically by the differential harness):
///
/// * `boundaryIndices` holds pairwise-distinct grid cells in `[0, N−1]`
///   (each boundary node appears once);
/// * `material` holds material ids in `[0, NM−1]`;
/// * the FD-MM aliased sizes satisfy `S = MB·numB` (state arrays) and
///   `MBM = NM·MB` (coefficient tables).
pub fn boundary_table_facts(asm: &mut Assumptions) {
    if let Some(b) = asm.buffers.get_mut("boundaryIndices") {
        *b = b
            .clone()
            .with_values(SymRange::new(ArithExpr::cst(0), ArithExpr::var("N") - ArithExpr::cst(1)))
            .with_distinct();
    }
    if let Some(b) = asm.buffers.get_mut("material") {
        *b = b.clone().with_values(SymRange::new(
            ArithExpr::cst(0),
            ArithExpr::var("NM") - ArithExpr::cst(1),
        ));
    }
    let has_size = |asm: &Assumptions, n: &str| asm.size_bounds.iter().any(|(s, _)| s == n);
    if has_size(asm, "S") {
        asm.defines.push(("S".into(), ArithExpr::var("MB") * ArithExpr::var("numB")));
    }
    if has_size(asm, "MBM") {
        asm.defines.push(("MBM".into(), ArithExpr::var("NM") * ArithExpr::var("MB")));
    }
}

/// The contract a hand-written reference kernel is launched under (see
/// [`crate::vgpu_sim::HandwrittenSim`]): global sizes are left unbounded
/// (`None`) because every kernel guards with an in-kernel `return_if`, and
/// buffer lengths match the sim's allocations.
///
/// Panics on a kernel name outside [`handwritten::all_kernels`] — adding a
/// reference kernel without writing its contract is a bug the audit suite
/// should fail loudly on.
pub fn launch_contract(k: &Kernel) -> Assumptions {
    let mut asm =
        Assumptions { global_size: vec![None; usize::from(k.work_dim)], ..Assumptions::default() };
    let dims = || [ArithExpr::var("Nx"), ArithExpr::var("Ny"), ArithExpr::var("Nz")];
    let n3 = || ArithExpr::var("Nx") * ArithExpr::var("Ny") * ArithExpr::var("Nz");
    match k.name.as_str() {
        "volume_handling_hand" | "volume_handling_hand_slab" => {
            for b in ["next", "curr", "prev"] {
                asm.buffers.insert(b.into(), BufferFacts::sized(n3()));
            }
            // `nbrs[lin(gid)] > 0` implies the cell is interior: the mask
            // is built from the 6-neighbour count, which is < 6 on every
            // face cell and the sim zeroes it outside the room.
            asm.buffers.insert("nbrs".into(), BufferFacts::sized(n3()).with_interior_mask());
            asm.interior_dims = dims().to_vec();
            for d in ["Nx", "Ny", "Nz"] {
                asm.size_bounds.push((d.into(), 1));
            }
            if k.name.ends_with("_slab") {
                // The sharded launch runs the gid2+1 slab rewrite against
                // a local slab allocation of Nz planes (owned + 2 halo):
                // interior masking and the canonical linearization shift
                // by one plane (see `Kernel::shift_gid`).
                asm.gid_offsets = vec![0, 0, 1];
            }
        }
        "fi_single_hand" => {
            for b in ["next", "curr", "prev"] {
                asm.buffers.insert(b.into(), BufferFacts::sized(n3()));
            }
            // `nbr` starts at 6 and is zeroed by the halo check, so
            // `nbr > 0` is exactly the interior predicate.
            asm.interior_guards.push("nbr".into());
            asm.interior_dims = dims().to_vec();
            for d in ["Nx", "Ny", "Nz"] {
                asm.size_bounds.push((d.into(), 1));
            }
        }
        "fimm_boundary_hand" | "fdmm_boundary_hand" => {
            let n = || ArithExpr::var("N");
            let num_b = || ArithExpr::var("numB");
            asm.buffers.insert("boundaryIndices".into(), BufferFacts::sized(num_b()));
            asm.buffers.insert("nbrs".into(), BufferFacts::sized(n()));
            asm.buffers.insert("material".into(), BufferFacts::sized(num_b()));
            asm.buffers.insert("beta".into(), BufferFacts::sized(ArithExpr::var("NM")));
            asm.buffers.insert("next".into(), BufferFacts::sized(n()));
            asm.buffers.insert("prev".into(), BufferFacts::sized(n()));
            for d in ["numB", "N", "NM"] {
                asm.size_bounds.push((d.into(), 1));
            }
            if k.name == "fdmm_boundary_hand" {
                let mb = || ArithExpr::var("MB");
                for b in ["BI", "D", "DI", "F"] {
                    asm.buffers.insert(b.into(), BufferFacts::sized(ArithExpr::var("NM") * mb()));
                }
                for b in ["g1", "v1", "v2"] {
                    asm.buffers.insert(b.into(), BufferFacts::sized(mb() * num_b()));
                }
                asm.size_bounds.push(("MB".into(), 1));
            }
            boundary_table_facts(&mut asm);
        }
        other => panic!("no launch contract registered for hand-written kernel `{other}`"),
    }
    asm
}

/// Buffer parameters laid out over the canonical row-major simulation
/// grid. Halo reasoning for domain-sharded launches is about exactly
/// these: state-table buffers (`g1`, `v1`, …) and per-boundary tables are
/// partitioned by boundary node, not by grid plane, and never need halo
/// exchange.
pub const GRID_BUFFERS: &[&str] = &["next", "curr", "prev", "nbrs", "out"];

/// Proves the halo width `kernel` requires along the slab (z) axis:
/// `(below, above)` planes of remote data any work-item may touch on the
/// [`GRID_BUFFERS`] beyond its own cell, derived from the kernel's static
/// access footprints (`lift::footprint`). Errs when any grid-buffer site
/// has no per-axis footprint — such a kernel must not be sharded.
pub fn grid_halo(kernel: &Kernel, asm: &Assumptions) -> Result<(usize, usize), String> {
    lift::verify::verify_kernel(kernel, asm).footprints.required_halo(GRID_BUFFERS, 2)
}

/// Shard-time gate: proves `kernel`'s z-reach and checks it against the
/// `(below, above)` halo planes the slab layout actually provides,
/// returning the proven reach or a diagnostic naming the shortfall. The
/// sharded sims call this instead of assuming a one-plane halo.
pub fn check_slab_halo(
    kernel: &Kernel,
    asm: &Assumptions,
    halo: (usize, usize),
) -> Result<(usize, usize), String> {
    let (lo, hi) = grid_halo(kernel, asm)?;
    if lo > halo.0 || hi > halo.1 {
        return Err(format!(
            "kernel `{}` provably reaches ({lo}, {hi}) z planes beyond its cell but the slab \
             layout provides only ({}, {}) halo planes",
            kernel.name, halo.0, halo.1
        ));
    }
    Ok((lo, hi))
}

/// Registers every hand-written kernel's [`launch_contract`] with the vgpu
/// compiled engine. Idempotent and cheap after the first call; the sims
/// and bench drivers call it before compiling kernels so proof-licensed
/// check elision is available regardless of entry point.
pub fn register_all() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        for k in handwritten::all_kernels() {
            vgpu::register_launch_contract(&k.name, launch_contract(&k));
        }
    });
}

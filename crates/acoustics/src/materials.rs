//! Boundary material models and the FD-MM coefficient arrays.
//!
//! Frequency-independent absorption (FI / FI-MM) needs one coefficient per
//! material: the specific admittance `β`. Frequency-dependent absorption
//! (FD-MM) adds, per material, `MB` resonant *branches* — internal
//! mass–spring–damper systems whose state is stored at every boundary point
//! (§II-E; Hamilton et al. \[11\], Bilbao et al. \[12\]).
//!
//! # Discretisation (DESIGN.md §3 substitution)
//!
//! Each branch obeys `a·ẇ + b·w + c·g = p`, `ġ = w` (displacement-flux form
//! with the time step absorbed into the units of `w` and `g`). Trapezoidal
//! integration centred on the pressure update gives exactly the recurrence
//! of the paper's Listing 4:
//!
//! ```text
//! w₁ = BI·(Δp + DI·w₂ − 2F·g)          BI = 1/(a + b/2 + c/4)
//! g ← g + (w₁ + w₂)/2                  DI = a − b/2 − c/4
//!                                      F  = c/2
//! next −= cf1·BI·(2D·w₂ − F·g)         D  = a/2
//! next  = (next + cf·prev)/(1 + cf)    cf = ½·cf1·(β₀ + Σ_b BI_b)
//! ```
//!
//! The `D = a/2` identity follows from `DI + 1/BI = 2a`. Positive `a, b, c`
//! make the branch passive, so boundary interaction can only remove energy —
//! verified empirically by the energy-decay tests in `crate::sim`.

use serde::{Deserialize, Serialize};

/// One resonant branch in absorbed (grid) units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchParams {
    /// Inertial coefficient (`a` above); larger = heavier resonance.
    pub a: f64,
    /// Damping coefficient (`b`); larger = broader absorption.
    pub b: f64,
    /// Stiffness coefficient (`c`); larger = higher resonant frequency.
    pub c: f64,
}

impl BranchParams {
    /// A passive branch; panics on non-positive parameters.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0, "branches must be passive");
        BranchParams { a, b, c }
    }
}

/// A boundary material: instantaneous admittance plus resonant branches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Display name.
    pub name: String,
    /// Instantaneous (frequency-independent) specific admittance `β₀`.
    /// 0 = rigid, larger = more absorbing.
    pub beta0: f64,
    /// Resonant branches (empty for purely frequency-independent
    /// materials).
    pub branches: Vec<BranchParams>,
}

impl Material {
    /// Frequency-independent material with admittance `beta0`.
    pub fn fi(name: &str, beta0: f64) -> Material {
        Material { name: name.into(), beta0, branches: Vec::new() }
    }

    /// Heavily absorbing soft furnishing (e.g. carpet over underlay).
    pub fn carpet() -> Material {
        Material {
            name: "carpet".into(),
            beta0: 0.12,
            branches: vec![
                BranchParams::new(4.0, 1.2, 0.08),
                BranchParams::new(9.0, 0.8, 0.30),
                BranchParams::new(20.0, 0.5, 1.10),
            ],
        }
    }

    /// Painted plaster on masonry: mostly reflective with a weak resonance.
    pub fn plaster() -> Material {
        Material {
            name: "plaster".into(),
            beta0: 0.015,
            branches: vec![
                BranchParams::new(40.0, 0.25, 0.40),
                BranchParams::new(90.0, 0.12, 1.60),
                BranchParams::new(150.0, 0.10, 4.00),
            ],
        }
    }

    /// Window glass: low instantaneous loss, pronounced low resonance.
    pub fn glass() -> Material {
        Material {
            name: "glass".into(),
            beta0: 0.008,
            branches: vec![
                BranchParams::new(25.0, 0.5, 0.05),
                BranchParams::new(60.0, 0.2, 0.90),
                BranchParams::new(110.0, 0.15, 2.50),
            ],
        }
    }

    /// The default 3-material set used by the evaluation (floor, ceiling,
    /// walls — see [`crate::boundary::MaterialAssignment::FloorWallsCeiling`]).
    pub fn default_set() -> Vec<Material> {
        vec![Material::carpet(), Material::plaster(), Material::glass()]
    }
}

/// Flattened per-material FI coefficients.
pub fn fi_betas(materials: &[Material]) -> Vec<f64> {
    materials.iter().map(|m| m.beta0).collect()
}

/// The FD-MM coefficient arrays of Listing 4, flattened `[m*mb + b]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FdCoeffs {
    /// Branches per material.
    pub mb: usize,
    /// Material count.
    pub num_materials: usize,
    /// Effective admittance `β₀ + Σ_b BI_b` per material (drives `cf`).
    pub beta: Vec<f64>,
    /// `BI[m][b] = 1/(a + b/2 + c/4)`.
    pub bi: Vec<f64>,
    /// `D[m][b] = a/2`.
    pub d: Vec<f64>,
    /// `DI[m][b] = a − b/2 − c/4`.
    pub di: Vec<f64>,
    /// `F[m][b] = c/2`.
    pub f: Vec<f64>,
}

impl FdCoeffs {
    /// Derives the coefficient arrays for `mb` branches per material.
    /// Materials with fewer declared branches are padded with extremely
    /// stiff (effectively inert) branches; extra branches are truncated.
    pub fn derive(materials: &[Material], mb: usize) -> FdCoeffs {
        assert!(mb >= 1);
        let nm = materials.len();
        let mut beta = Vec::with_capacity(nm);
        let (mut bi, mut d, mut di, mut f) = (
            Vec::with_capacity(nm * mb),
            Vec::with_capacity(nm * mb),
            Vec::with_capacity(nm * mb),
            Vec::with_capacity(nm * mb),
        );
        // An inert filler branch: enormous inertia → BI ≈ 0 → no effect.
        let filler = BranchParams::new(1e12, 0.0, 0.0);
        for m in materials {
            let mut beta_eff = m.beta0;
            for b in 0..mb {
                let p = m.branches.get(b).copied().unwrap_or(filler);
                let bi_v = 1.0 / (p.a + p.b / 2.0 + p.c / 4.0);
                bi.push(bi_v);
                d.push(p.a / 2.0);
                di.push(p.a - p.b / 2.0 - p.c / 4.0);
                f.push(p.c / 2.0);
                beta_eff += bi_v;
            }
            beta.push(beta_eff);
        }
        FdCoeffs { mb, num_materials: nm, beta, bi, d, di, f }
    }

    /// Flattened lookup index.
    #[inline]
    pub fn at(&self, m: usize, b: usize) -> usize {
        m * self.mb + b
    }

    /// Coefficient arrays cast to f32 (for single-precision kernels).
    pub fn to_f32(v: &[f64]) -> Vec<f32> {
        v.iter().map(|&x| x as f32).collect()
    }
}

/// The Courant number `λ = c·Δt/h` at the 3-D FDTD stability limit
/// (`λ ≤ 1/√3`); all evaluations run exactly at the limit, as is standard
/// for room acoustics (maximises the usable bandwidth per update).
pub fn courant() -> f64 {
    1.0 / 3.0f64.sqrt()
}

/// `λ²`, the stencil weight of Listings 1–2.
pub fn courant_sq() -> f64 {
    1.0 / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_identities() {
        let mats = vec![Material::carpet()];
        let c = FdCoeffs::derive(&mats, 3);
        for b in 0..3 {
            let i = c.at(0, b);
            // DI + 1/BI = 2a = 4D
            let lhs = c.di[i] + 1.0 / c.bi[i];
            assert!((lhs - 4.0 * c.d[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_eff_exceeds_beta0() {
        let mats = vec![Material::carpet()];
        let c = FdCoeffs::derive(&mats, 3);
        assert!(c.beta[0] > Material::carpet().beta0);
    }

    #[test]
    fn padding_branches_are_inert() {
        let mats = vec![Material::fi("rigid-ish", 0.05)];
        let c = FdCoeffs::derive(&mats, 2);
        assert!(c.bi[0] < 1e-11);
        assert!((c.beta[0] - 0.05).abs() < 1e-10);
    }

    #[test]
    fn truncation_keeps_first_branches() {
        let mats = vec![Material::carpet()];
        let c = FdCoeffs::derive(&mats, 1);
        let a0 = Material::carpet().branches[0].a;
        assert!((c.d[0] - a0 / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_branch_rejected() {
        BranchParams::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn courant_at_stability_limit() {
        assert!((courant() * courant() - courant_sq()).abs() < 1e-15);
        assert!(courant() <= 1.0 / 3.0f64.sqrt() + 1e-15);
    }

    #[test]
    fn default_set_has_three_distinct_materials() {
        let s = Material::default_set();
        assert_eq!(s.len(), 3);
        assert_ne!(s[0].beta0, s[1].beta0);
    }
}

//! Impulse-response and energy-decay analysis.
//!
//! Room-acoustics simulations exist to produce impulse responses and derived
//! room parameters (auralisation, §I of the paper). This module provides the
//! standard post-processing: Schroeder backward integration of an impulse
//! response into an energy-decay curve (EDC), and reverberation-time
//! estimates (T20/T30-style linear fits extrapolated to 60 dB).

/// The Schroeder energy-decay curve: `EDC(t) = Σ_{τ≥t} p²(τ)`, normalised
/// to 0 dB at `t = 0`, returned in dB. Trailing zero energy yields `-inf`
/// entries.
pub fn schroeder_edc_db(ir: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut tail: Vec<f64> = ir
        .iter()
        .rev()
        .map(|p| {
            acc += p * p;
            acc
        })
        .collect();
    tail.reverse();
    let total = tail.first().copied().unwrap_or(0.0);
    tail.into_iter()
        .map(
            |e| if e > 0.0 && total > 0.0 { 10.0 * (e / total).log10() } else { f64::NEG_INFINITY },
        )
        .collect()
}

/// First index where the EDC drops below `level_db` (negative), if any.
pub fn time_to_level(edc_db: &[f64], level_db: f64) -> Option<usize> {
    edc_db.iter().position(|&v| v <= level_db)
}

/// Reverberation time estimated from the decay between `-5 dB` and
/// `-5 - span_db` (T20: span 20, T30: span 30), extrapolated to 60 dB.
/// Returns the time in *steps*; multiply by the step period for seconds.
/// `None` when the response never decays far enough.
pub fn rt60_steps(edc_db: &[f64], span_db: f64) -> Option<f64> {
    let start = time_to_level(edc_db, -5.0)?;
    let end = time_to_level(edc_db, -5.0 - span_db)?;
    if end <= start {
        return None;
    }
    let steps_per_db = (end - start) as f64 / span_db;
    Some(steps_per_db * 60.0)
}

/// Sound-propagation time step at the 3-D Courant limit for a grid spacing
/// `h` metres and speed of sound `c` m/s.
pub fn step_period_s(h: f64, c: f64) -> f64 {
    h / c / 3.0f64.sqrt()
}

/// Direct-sound arrival step for source→receiver distance `d` (in cells):
/// the scheme's wavefront travels one cell per step at most.
pub fn earliest_arrival_steps(d_cells: f64) -> usize {
    d_cells.floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edc_of_pure_exponential_is_linear_in_db() {
        // p(t) = a^t ⇒ EDC is also exponential ⇒ dB curve is linear.
        let a: f64 = 0.98;
        let ir: Vec<f64> = (0..2000).map(|t| a.powi(t)).collect();
        let edc = schroeder_edc_db(&ir);
        // slope between two windows should match 20·log10(a) per step
        let slope1 = (edc[500] - edc[100]) / 400.0;
        let slope2 = (edc[1200] - edc[800]) / 400.0;
        assert!((slope1 - slope2).abs() < 1e-6, "{slope1} vs {slope2}");
        let expected = 20.0 * a.log10();
        assert!((slope1 - expected).abs() < 1e-6, "{slope1} vs {expected}");
    }

    #[test]
    fn edc_starts_at_zero_db_and_decreases() {
        let ir = vec![1.0, 0.5, 0.25, 0.125, 0.0625];
        let edc = schroeder_edc_db(&ir);
        assert_eq!(edc[0], 0.0);
        assert!(edc.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn rt60_matches_analytic_decay() {
        let a: f64 = 0.99;
        let ir: Vec<f64> = (0..8000).map(|t| a.powi(t)).collect();
        let edc = schroeder_edc_db(&ir);
        let rt = rt60_steps(&edc, 20.0).unwrap();
        // analytic: EDC slope 20·log10(a) dB/step ⇒ T60 = 60 / |slope|
        let expected = 60.0 / (20.0 * a.log10()).abs();
        assert!((rt - expected).abs() / expected < 0.02, "{rt} vs {expected}");
    }

    #[test]
    fn rt60_none_for_non_decaying() {
        let ir = vec![1.0; 100];
        let edc = schroeder_edc_db(&ir);
        assert!(rt60_steps(&edc, 20.0).is_none());
    }

    #[test]
    fn step_period_sane() {
        // 5 cm cells at 343 m/s: ≈ 84 µs
        let dt = step_period_s(0.05, 343.0);
        assert!((dt - 8.4e-5).abs() < 1e-6);
    }

    #[test]
    fn silence_is_neg_infinity() {
        let ir = vec![1.0, 0.0, 0.0];
        let edc = schroeder_edc_db(&ir);
        assert!(edc[1].is_infinite() && edc[1] < 0.0);
    }
}

//! Golden reference kernels: direct Rust transcriptions of the paper's
//! Listings 1–4 (the hand-written CUDA/OpenCL codes of Webb \[10\] and
//! Hamilton et al. \[11\]).
//!
//! These are the correctness oracles for everything else: the hand-built
//! kernel ASTs ([`crate::handwritten`]) and the LIFT-generated kernels (the
//! `lift-acoustics` crate) must reproduce them. Operation order follows the
//! C listings exactly (left-associative), so with matching inputs the
//! results are bit-identical per precision.
//!
//! The volume pass is parallelised over z-planes with rayon; boundary passes
//! are sequential (they touch ~1 % of the points; the oracle favours
//! obviousness over speed).

use crate::geometry::GridDims;
use rayon::prelude::*;

/// Minimal float abstraction so every kernel exists in f32 and f64 with the
/// precision's own arithmetic (no intermediate widening).
pub trait Real:
    Copy
    + PartialOrd
    + Send
    + Sync
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::fmt::Debug
    + 'static
{
    /// Converts from f64 (rounding to the target precision).
    fn of(v: f64) -> Self;
    /// Converts from i32 (exact for the magnitudes used here).
    fn of_i32(v: i32) -> Self;
    /// Widens to f64.
    fn f64(self) -> f64;
}

impl Real for f32 {
    fn of(v: f64) -> f32 {
        v as f32
    }
    fn of_i32(v: i32) -> f32 {
        v as f32
    }
    fn f64(self) -> f64 {
        self as f64
    }
}

impl Real for f64 {
    fn of(v: f64) -> f64 {
        v
    }
    fn of_i32(v: i32) -> f64 {
        v as f64
    }
    fn f64(self) -> f64 {
        self
    }
}

/// Listing 1: the naive frequency-independent simulation — one kernel doing
/// both the stencil and the (uniform-β) boundary, box rooms only, with
/// `nbr` computed on the fly from coordinates.
pub fn fi_single_kernel_step<T: Real>(
    next: &mut [T],
    curr: &[T],
    prev: &[T],
    dims: &GridDims,
    l: T,
    l2: T,
    beta: T,
) {
    let (nx, ny) = (dims.nx, dims.ny);
    let plane = nx * ny;
    let two = T::of(2.0);
    let one = T::of(1.0);
    let half = T::of(0.5);
    next.par_chunks_mut(plane).enumerate().for_each(|(z, slab)| {
        for y in 0..ny {
            for x in 0..nx {
                let idx = z * plane + y * nx + x;
                // Lines 3–6 of Listing 1.
                let mut nbr = (x != 1) as i32
                    + (y != 1) as i32
                    + (z != 1) as i32
                    + (x != dims.nx - 2) as i32
                    + (y != dims.ny - 2) as i32
                    + (z != dims.nz - 2) as i32;
                if x == 0
                    || y == 0
                    || z == 0
                    || x == dims.nx - 1
                    || y == dims.ny - 1
                    || z == dims.nz - 1
                {
                    nbr = 0;
                }
                if nbr > 0 {
                    let s = curr[idx - 1]
                        + curr[idx + 1]
                        + curr[idx - nx]
                        + curr[idx + nx]
                        + curr[idx - plane]
                        + curr[idx + plane];
                    let nbr_f = T::of_i32(nbr);
                    if nbr < 6 {
                        let cf = half * l * T::of_i32(6 - nbr) * beta;
                        slab[y * nx + x] =
                            ((two - l2 * nbr_f) * curr[idx] + l2 * s + (cf - one) * prev[idx])
                                / (one + cf);
                    } else {
                        slab[y * nx + x] = (two - l2 * nbr_f) * curr[idx] + l2 * s - prev[idx];
                    }
                }
            }
        }
    });
}

/// Listing 2, kernel 1: the volume pass of the two-kernel approach. Points
/// with `nbrs == 0` (outside/halo) are not updated.
pub fn volume_step<T: Real>(
    next: &mut [T],
    curr: &[T],
    prev: &[T],
    nbrs: &[i32],
    dims: &GridDims,
    l2: T,
) {
    let nx = dims.nx;
    let plane = nx * dims.ny;
    let two = T::of(2.0);
    next.par_chunks_mut(plane).enumerate().for_each(|(z, slab)| {
        let base = z * plane;
        for (i, out) in slab.iter_mut().enumerate() {
            let idx = base + i;
            let nbr = nbrs[idx];
            if nbr > 0 {
                let s = curr[idx - 1]
                    + curr[idx + 1]
                    + curr[idx - nx]
                    + curr[idx + nx]
                    + curr[idx - plane]
                    + curr[idx + plane];
                *out = (two - l2 * T::of_i32(nbr)) * curr[idx] + l2 * s - prev[idx];
            }
        }
    });
}

/// Listing 2, kernel 2: simple (single-β) boundary handling, updating `next`
/// in place at the gathered boundary indices.
pub fn simple_boundary_step<T: Real>(
    next: &mut [T],
    prev: &[T],
    boundary_indices: &[i32],
    nbrs: &[i32],
    l: T,
    beta: T,
) {
    let half = T::of(0.5);
    let one = T::of(1.0);
    for &idx in boundary_indices {
        let idx = idx as usize;
        let nbr = nbrs[idx];
        let cf = half * l * T::of_i32(6 - nbr) * beta;
        next[idx] = (next[idx] + cf * prev[idx]) / (one + cf);
    }
}

/// Listing 3: frequency-independent multi-material (FI-MM) boundary
/// handling.
pub fn fimm_boundary_step<T: Real>(
    next: &mut [T],
    prev: &[T],
    boundary_indices: &[i32],
    nbrs: &[i32],
    material: &[i32],
    beta: &[T],
    l: T,
) {
    let half = T::of(0.5);
    let one = T::of(1.0);
    for (i, &idx) in boundary_indices.iter().enumerate() {
        let idx = idx as usize;
        let nbr = nbrs[idx];
        let mi = material[i] as usize;
        let cf = half * l * T::of_i32(6 - nbr) * beta[mi];
        next[idx] = (next[idx] + cf * prev[idx]) / (one + cf);
    }
}

/// FD-MM coefficient arrays in the kernel's precision, flattened
/// `[m*mb + b]` exactly as Listing 4 indexes them.
#[derive(Debug, Clone)]
pub struct FdArrays<T> {
    /// Branches per material.
    pub mb: usize,
    /// `beta[m]` — effective admittance.
    pub beta: Vec<T>,
    /// `BI[m][b]`.
    pub bi: Vec<T>,
    /// `D[m][b]`.
    pub d: Vec<T>,
    /// `DI[m][b]`.
    pub di: Vec<T>,
    /// `F[m][b]`.
    pub f: Vec<T>,
}

impl<T: Real> FdArrays<T> {
    /// Narrows the f64 coefficient set to this precision.
    pub fn from_coeffs(c: &crate::materials::FdCoeffs) -> FdArrays<T> {
        FdArrays {
            mb: c.mb,
            beta: c.beta.iter().map(|&x| T::of(x)).collect(),
            bi: c.bi.iter().map(|&x| T::of(x)).collect(),
            d: c.d.iter().map(|&x| T::of(x)).collect(),
            di: c.di.iter().map(|&x| T::of(x)).collect(),
            f: c.f.iter().map(|&x| T::of(x)).collect(),
        }
    }
}

/// Listing 4: frequency-dependent multi-material (FD-MM) boundary handling.
///
/// `g1` and `v2` are read, `g1` and `v1` written — the paper's three
/// in-place outputs. State layout is `state[b*numBoundaryPoints + i]`.
#[allow(clippy::too_many_arguments)]
pub fn fdmm_boundary_step<T: Real>(
    next: &mut [T],
    prev: &[T],
    boundary_indices: &[i32],
    nbrs: &[i32],
    material: &[i32],
    coeffs: &FdArrays<T>,
    g1: &mut [T],
    v1: &mut [T],
    v2: &[T],
    l: T,
) {
    let num_b = boundary_indices.len();
    let mb = coeffs.mb;
    let half = T::of(0.5);
    let one = T::of(1.0);
    let two = T::of(2.0);
    let mut g1_priv = vec![T::of(0.0); mb];
    let mut v2_priv = vec![T::of(0.0); mb];
    for (i, &idx) in boundary_indices.iter().enumerate() {
        let idx = idx as usize;
        let nbr = nbrs[idx];
        let mi = material[i] as usize;
        let cf1 = l * T::of_i32(6 - nbr);
        let cf = half * cf1 * coeffs.beta[mi];
        let mut nx = next[idx];
        let pv = prev[idx];
        for b in 0..mb {
            let ci = b * num_b + i;
            g1_priv[b] = g1[ci];
            v2_priv[b] = v2[ci];
            let mc = mi * mb + b;
            nx = nx
                - cf1
                    * coeffs.bi[mc]
                    * (two * coeffs.d[mc] * v2_priv[b] - coeffs.f[mc] * g1_priv[b]);
        }
        nx = (nx + cf * pv) / (one + cf);
        next[idx] = nx;
        for b in 0..mb {
            let ci = b * num_b + i;
            let mc = mi * mb + b;
            let nv1 = coeffs.bi[mc]
                * (nx - pv + coeffs.di[mc] * v2_priv[b] - two * coeffs.f[mc] * g1_priv[b]);
            g1[ci] = g1_priv[b] + half * (nv1 + v2_priv[b]);
            v1[ci] = nv1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{MaterialAssignment, RoomModel};
    use crate::geometry::RoomShape;
    use crate::materials::{courant, courant_sq, FdCoeffs, Material};

    fn tiny_room() -> (GridDims, RoomModel) {
        let dims = GridDims::cube(10);
        let m = RoomModel::build(dims, RoomShape::Box, MaterialAssignment::Uniform);
        (dims, m)
    }

    /// The one-kernel Listing 1 and the two-kernel Listing 2 pipeline must
    /// agree exactly on a box room with a uniform β.
    #[test]
    fn one_kernel_equals_two_kernels_f64() {
        let (dims, room) = tiny_room();
        let n = dims.total();
        let l = courant();
        let l2 = courant_sq();
        let beta = 0.1f64;
        let mut curr = vec![0.0f64; n];
        let prev = vec![0.0f64; n];
        curr[dims.idx(5, 5, 5)] = 1.0; // impulse
        let mut next_a = vec![0.0f64; n];
        fi_single_kernel_step(&mut next_a, &curr, &prev, &dims, l, l2, beta);
        let mut next_b = vec![0.0f64; n];
        volume_step(&mut next_b, &curr, &prev, &room.nbrs, &dims, l2);
        simple_boundary_step(&mut next_b, &prev, &room.boundary_indices, &room.nbrs, l, beta);
        assert_eq!(next_a, next_b);
    }

    #[test]
    fn one_kernel_equals_two_kernels_f32_across_steps() {
        let (dims, room) = tiny_room();
        let n = dims.total();
        let l = courant() as f32;
        let l2 = courant_sq() as f32;
        let beta = 0.2f32;
        let mut a = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
        a.1[dims.idx(4, 5, 6)] = 1.0;
        let mut b = a.clone();
        for _ in 0..20 {
            fi_single_kernel_step(&mut a.2, &a.1, &a.0, &dims, l, l2, beta);
            let (p, c, nx) = a;
            a = (c, nx, p);

            volume_step(&mut b.2, &b.1, &b.0, &room.nbrs, &dims, l2);
            simple_boundary_step(&mut b.2, &b.0, &room.boundary_indices, &room.nbrs, l, beta);
            let (p, c, nx) = b;
            b = (c, nx, p);
        }
        // The one-kernel form associates the prev term differently
        // ((cf−1)·prev vs −prev + cf·prev), so f32 results agree only to
        // rounding accumulated over the 20 steps.
        for (x, y) in a.1.iter().zip(&b.1) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn fimm_with_uniform_material_equals_simple_boundary() {
        let (dims, room) = tiny_room();
        let n = dims.total();
        let l = courant();
        let beta = 0.15f64;
        let mut curr = vec![0.0f64; n];
        curr[dims.idx(3, 3, 3)] = 1.0;
        let prev = vec![0.0f64; n];
        let mut next_a = vec![0.0f64; n];
        volume_step(&mut next_a, &curr, &prev, &room.nbrs, &dims, courant_sq());
        let mut next_b = next_a.clone();
        simple_boundary_step(&mut next_a, &prev, &room.boundary_indices, &room.nbrs, l, beta);
        fimm_boundary_step(
            &mut next_b,
            &prev,
            &room.boundary_indices,
            &room.nbrs,
            &room.material,
            &[beta],
            l,
        );
        assert_eq!(next_a, next_b);
    }

    #[test]
    fn fdmm_with_inert_branches_reduces_to_fimm() {
        // With branches of near-infinite inertia, BI ≈ 0 and the FD update
        // degenerates to the FI update.
        let (dims, room) = tiny_room();
        let n = dims.total();
        let l = courant();
        let mats = vec![Material::fi("stiff", 0.1)];
        let coeffs = FdCoeffs::derive(&mats, 3);
        let arrays: FdArrays<f64> = FdArrays::from_coeffs(&coeffs);
        let nb = room.num_boundary_points();
        let mut curr = vec![0.0f64; n];
        curr[dims.idx(5, 4, 3)] = 1.0;
        let prev = vec![0.0f64; n];
        let mut next_fd = vec![0.0f64; n];
        volume_step(&mut next_fd, &curr, &prev, &room.nbrs, &dims, courant_sq());
        let mut next_fi = next_fd.clone();
        let (mut g1, mut v1, v2) = (vec![0.0; 3 * nb], vec![0.0; 3 * nb], vec![0.0; 3 * nb]);
        fdmm_boundary_step(
            &mut next_fd,
            &prev,
            &room.boundary_indices,
            &room.nbrs,
            &room.material,
            &arrays,
            &mut g1,
            &mut v1,
            &v2,
            l,
        );
        fimm_boundary_step(
            &mut next_fi,
            &prev,
            &room.boundary_indices,
            &room.nbrs,
            &room.material,
            &[0.1],
            l,
        );
        for (a, b) in next_fd.iter().zip(&next_fi) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn boundary_only_touches_boundary_points() {
        let (dims, room) = tiny_room();
        let n = dims.total();
        let mut next = vec![1.0f64; n];
        let prev = vec![0.5f64; n];
        fimm_boundary_step(
            &mut next,
            &prev,
            &room.boundary_indices,
            &room.nbrs,
            &room.material,
            &[0.3],
            courant(),
        );
        let bset: std::collections::HashSet<usize> =
            room.boundary_indices.iter().map(|&i| i as usize).collect();
        for (i, &v) in next.iter().enumerate() {
            if bset.contains(&i) {
                assert!(v < 1.0);
            } else {
                assert_eq!(v, 1.0);
            }
        }
    }
}

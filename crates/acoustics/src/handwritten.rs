//! Hand-written baseline kernels (the paper's tuned OpenCL comparators).
//!
//! These are direct kernel-AST transcriptions of Listings 1–4 — the
//! hand-optimised codes of Webb \[10\] and Hamilton et al. \[11\] that the
//! LIFT-generated kernels are compared against in Figures 4–6. Authoring
//! them in the same AST the code generator targets makes the comparison
//! apples-to-apples on the `vgpu` substrate: both run through the identical
//! interpreter and transaction model, so throughput differences come from
//! the *code*, exactly as on real hardware.
//!
//! All kernels are precision-generic (`Real`); resolve with
//! [`lift::kast::Kernel::resolve_real`] before use.
//!
//! §VII-B1 of the paper notes the hand-tuned FI-MM kernel keeps its β table
//! in private/constant memory ("a hard-coded array of values in private
//! memory") while the LIFT version passes it as a global buffer — the cause
//! of the NVIDIA double-precision gap in Figure 5. [`fimm_kernel`] takes a
//! flag selecting that variant.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{BinOp, ScalarKind};

fn gid(d: u8) -> KExpr {
    KExpr::GlobalId(d)
}

fn v(name: &str) -> KExpr {
    KExpr::var(name)
}

fn ld(p: usize, idx: KExpr) -> KExpr {
    KExpr::load(MemRef::Param(p), idx)
}

fn to_real(e: KExpr) -> KExpr {
    KExpr::cast(ScalarKind::Real, e)
}

/// Listing 2, kernel 1 — the volume (air) pass over the full grid.
///
/// Parameters: `next, curr, prev, nbrs, l2, Nx, Ny, Nz`.
pub fn volume_kernel() -> Kernel {
    // param indices
    let (next, curr, prev, nbrs) = (0usize, 1usize, 2usize, 3usize);
    let plane = v("Nx") * v("Ny");
    let idx = gid(2) * plane.clone() + gid(1) * v("Nx") + gid(0);
    let body = vec![
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(0), v("Nx"))),
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(1), v("Ny"))),
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(2), v("Nz"))),
        KStmt::DeclScalar { name: "idx".into(), kind: ScalarKind::I32, init: Some(idx) },
        KStmt::DeclScalar {
            name: "nbr".into(),
            kind: ScalarKind::I32,
            init: Some(ld(nbrs, v("idx"))),
        },
        KStmt::If {
            cond: KExpr::bin(BinOp::Gt, v("nbr"), KExpr::int(0)),
            then_: vec![
                KStmt::DeclScalar {
                    name: "s".into(),
                    kind: ScalarKind::Real,
                    init: Some(
                        ld(curr, v("idx") - KExpr::int(1))
                            + ld(curr, v("idx") + KExpr::int(1))
                            + ld(curr, v("idx") - v("Nx"))
                            + ld(curr, v("idx") + v("Nx"))
                            + ld(curr, v("idx") - plane.clone())
                            + ld(curr, v("idx") + plane),
                    ),
                },
                KStmt::Store {
                    mem: MemRef::Param(next),
                    idx: v("idx"),
                    value: (KExpr::real(2.0) - v("l2") * to_real(v("nbr"))) * ld(curr, v("idx"))
                        + v("l2") * v("s")
                        - ld(prev, v("idx")),
                },
            ],
            else_: vec![],
        },
    ];
    Kernel {
        name: "volume_handling_hand".into(),
        params: vec![
            KernelParam::global_buf("next", ScalarKind::Real),
            KernelParam::global_buf("curr", ScalarKind::Real),
            KernelParam::global_buf("prev", ScalarKind::Real),
            KernelParam::global_buf("nbrs", ScalarKind::I32),
            KernelParam::scalar("l2", ScalarKind::Real),
            KernelParam::scalar("Nx", ScalarKind::I32),
            KernelParam::scalar("Ny", ScalarKind::I32),
            KernelParam::scalar("Nz", ScalarKind::I32),
        ],
        body,
        work_dim: 3,
    }
}

/// The slab-placed volume kernel for domain sharding: [`volume_kernel`]
/// with every `get_global_id(2)` shifted by +1, so a launch of
/// `[Nx, Ny, owned]` work-items covers local planes `[1, owned+1)` of a
/// per-device slab allocation whose plane 0 and plane `owned+1` are halo
/// planes. The `Nz` scalar must be bound to the *local* plane count
/// (`owned + 2`); the shifted `z >= Nz` guard then never fires for the
/// launched range, exactly like the unsharded launch.
pub fn volume_slab_kernel() -> Kernel {
    volume_kernel().shift_gid(2, 1, "_slab")
}

/// Listing 1 — the naive one-kernel FI simulation (stencil + uniform-β
/// boundary, box rooms, `nbr` computed from coordinates).
///
/// Parameters: `next, curr, prev, l, l2, beta, Nx, Ny, Nz`.
pub fn fi_single_kernel() -> Kernel {
    let (next, curr, prev) = (0usize, 1usize, 2usize);
    let plane = v("Nx") * v("Ny");
    let idx = gid(2) * plane.clone() + gid(1) * v("Nx") + gid(0);
    let one_if = |c: KExpr| KExpr::select(c, KExpr::int(0), KExpr::int(1));
    let nbr_init = one_if(KExpr::bin(BinOp::Eq, gid(0), KExpr::int(1)))
        + one_if(KExpr::bin(BinOp::Eq, gid(1), KExpr::int(1)))
        + one_if(KExpr::bin(BinOp::Eq, gid(2), KExpr::int(1)))
        + one_if(KExpr::bin(BinOp::Eq, gid(0), v("Nx") - KExpr::int(2)))
        + one_if(KExpr::bin(BinOp::Eq, gid(1), v("Ny") - KExpr::int(2)))
        + one_if(KExpr::bin(BinOp::Eq, gid(2), v("Nz") - KExpr::int(2)));
    let on_halo = KExpr::bin(
        BinOp::Or,
        KExpr::bin(
            BinOp::Or,
            KExpr::bin(
                BinOp::Or,
                KExpr::bin(BinOp::Eq, gid(0), KExpr::int(0)),
                KExpr::bin(BinOp::Eq, gid(1), KExpr::int(0)),
            ),
            KExpr::bin(
                BinOp::Or,
                KExpr::bin(BinOp::Eq, gid(2), KExpr::int(0)),
                KExpr::bin(BinOp::Eq, gid(0), v("Nx") - KExpr::int(1)),
            ),
        ),
        KExpr::bin(
            BinOp::Or,
            KExpr::bin(BinOp::Eq, gid(1), v("Ny") - KExpr::int(1)),
            KExpr::bin(BinOp::Eq, gid(2), v("Nz") - KExpr::int(1)),
        ),
    );
    let body = vec![
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(0), v("Nx"))),
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(1), v("Ny"))),
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(2), v("Nz"))),
        KStmt::DeclScalar { name: "idx".into(), kind: ScalarKind::I32, init: Some(idx) },
        KStmt::DeclScalar { name: "nbr".into(), kind: ScalarKind::I32, init: Some(nbr_init) },
        KStmt::If {
            cond: on_halo,
            then_: vec![KStmt::Assign { name: "nbr".into(), value: KExpr::int(0) }],
            else_: vec![],
        },
        KStmt::If {
            cond: KExpr::bin(BinOp::Gt, v("nbr"), KExpr::int(0)),
            then_: vec![
                KStmt::DeclScalar {
                    name: "s".into(),
                    kind: ScalarKind::Real,
                    init: Some(
                        ld(curr, v("idx") - KExpr::int(1))
                            + ld(curr, v("idx") + KExpr::int(1))
                            + ld(curr, v("idx") - v("Nx"))
                            + ld(curr, v("idx") + v("Nx"))
                            + ld(curr, v("idx") - plane.clone())
                            + ld(curr, v("idx") + plane),
                    ),
                },
                KStmt::If {
                    cond: KExpr::bin(BinOp::Lt, v("nbr"), KExpr::int(6)),
                    then_: vec![
                        KStmt::DeclScalar {
                            name: "cf".into(),
                            kind: ScalarKind::Real,
                            init: Some(
                                KExpr::real(0.5)
                                    * v("l")
                                    * to_real(KExpr::int(6) - v("nbr"))
                                    * v("beta"),
                            ),
                        },
                        KStmt::Store {
                            mem: MemRef::Param(next),
                            idx: v("idx"),
                            value: ((KExpr::real(2.0) - v("l2") * to_real(v("nbr")))
                                * ld(curr, v("idx"))
                                + v("l2") * v("s")
                                + (v("cf") - KExpr::real(1.0)) * ld(prev, v("idx")))
                                / (KExpr::real(1.0) + v("cf")),
                        },
                    ],
                    else_: vec![KStmt::Store {
                        mem: MemRef::Param(next),
                        idx: v("idx"),
                        value: (KExpr::real(2.0) - v("l2") * to_real(v("nbr")))
                            * ld(curr, v("idx"))
                            + v("l2") * v("s")
                            - ld(prev, v("idx")),
                    }],
                },
            ],
            else_: vec![],
        },
    ];
    Kernel {
        name: "fi_single_hand".into(),
        params: vec![
            KernelParam::global_buf("next", ScalarKind::Real),
            KernelParam::global_buf("curr", ScalarKind::Real),
            KernelParam::global_buf("prev", ScalarKind::Real),
            KernelParam::scalar("l", ScalarKind::Real),
            KernelParam::scalar("l2", ScalarKind::Real),
            KernelParam::scalar("beta", ScalarKind::Real),
            KernelParam::scalar("Nx", ScalarKind::I32),
            KernelParam::scalar("Ny", ScalarKind::I32),
            KernelParam::scalar("Nz", ScalarKind::I32),
        ],
        body,
        work_dim: 3,
    }
}

/// Listing 3 — FI-MM boundary handling.
///
/// Parameters: `boundaryIndices, nbrs, material, beta, next, prev, l, numB`.
/// With `beta_in_constant_memory` the β table lives in `__constant` space
/// (the hand-tuned private-memory trick of §VII-B1).
pub fn fimm_kernel(beta_in_constant_memory: bool) -> Kernel {
    let (bidx, nbrs, material, beta, next, prev) = (0usize, 1, 2, 3, 4, 5);
    let body = vec![
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(0), v("numB"))),
        KStmt::DeclScalar {
            name: "idx".into(),
            kind: ScalarKind::I32,
            init: Some(ld(bidx, gid(0))),
        },
        KStmt::DeclScalar {
            name: "nbr".into(),
            kind: ScalarKind::I32,
            init: Some(ld(nbrs, v("idx"))),
        },
        KStmt::DeclScalar {
            name: "mi".into(),
            kind: ScalarKind::I32,
            init: Some(ld(material, gid(0))),
        },
        KStmt::DeclScalar {
            name: "cf".into(),
            kind: ScalarKind::Real,
            init: Some(
                KExpr::real(0.5) * v("l") * to_real(KExpr::int(6) - v("nbr")) * ld(beta, v("mi")),
            ),
        },
        KStmt::Store {
            mem: MemRef::Param(next),
            idx: v("idx"),
            value: (ld(next, v("idx")) + v("cf") * ld(prev, v("idx")))
                / (KExpr::real(1.0) + v("cf")),
        },
    ];
    let beta_param = if beta_in_constant_memory {
        KernelParam::constant_buf("beta", ScalarKind::Real)
    } else {
        KernelParam::global_buf("beta", ScalarKind::Real)
    };
    Kernel {
        name: "fimm_boundary_hand".into(),
        params: vec![
            KernelParam::global_buf("boundaryIndices", ScalarKind::I32),
            KernelParam::global_buf("nbrs", ScalarKind::I32),
            KernelParam::global_buf("material", ScalarKind::I32),
            beta_param,
            KernelParam::global_buf("next", ScalarKind::Real),
            KernelParam::global_buf("prev", ScalarKind::Real),
            KernelParam::scalar("l", ScalarKind::Real),
            KernelParam::scalar("numB", ScalarKind::I32),
        ],
        body,
        work_dim: 1,
    }
}

/// Listing 4 — FD-MM boundary handling with `MB` ODE branches.
///
/// Parameters: `boundaryIndices, nbrs, material, beta, BI, D, DI, F, next,
/// prev, g1, v1, v2, l, numB, MB`. Coefficient tables are indexed
/// `[mi*MB + b]`; state arrays `[b*numB + i]`.
pub fn fdmm_kernel() -> Kernel {
    let (bidx, nbrs, material, beta, bi, dd, di, ff, next, prev, g1, v1, v2) =
        (0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12);
    let mc = || v("mi") * v("MB") + v("b");
    let ci = || v("b") * v("numB") + gid(0);
    let body = vec![
        KStmt::return_if(KExpr::bin(BinOp::Ge, gid(0), v("numB"))),
        KStmt::DeclPrivArray { name: "_g1".into(), kind: ScalarKind::Real, len: v("MB") },
        KStmt::DeclPrivArray { name: "_v2".into(), kind: ScalarKind::Real, len: v("MB") },
        KStmt::DeclScalar {
            name: "idx".into(),
            kind: ScalarKind::I32,
            init: Some(ld(bidx, gid(0))),
        },
        KStmt::DeclScalar {
            name: "nbr".into(),
            kind: ScalarKind::I32,
            init: Some(ld(nbrs, v("idx"))),
        },
        KStmt::DeclScalar {
            name: "mi".into(),
            kind: ScalarKind::I32,
            init: Some(ld(material, gid(0))),
        },
        KStmt::DeclScalar {
            name: "cf1".into(),
            kind: ScalarKind::Real,
            init: Some(v("l") * to_real(KExpr::int(6) - v("nbr"))),
        },
        KStmt::DeclScalar {
            name: "cf".into(),
            kind: ScalarKind::Real,
            init: Some(KExpr::real(0.5) * v("cf1") * ld(beta, v("mi"))),
        },
        KStmt::DeclScalar {
            name: "_next".into(),
            kind: ScalarKind::Real,
            init: Some(ld(next, v("idx"))),
        },
        KStmt::DeclScalar {
            name: "_prev".into(),
            kind: ScalarKind::Real,
            init: Some(ld(prev, v("idx"))),
        },
        // for each ODE branch: gather state and subtract the branch flux
        KStmt::For {
            var: "b".into(),
            begin: KExpr::int(0),
            end: v("MB"),
            step: KExpr::int(1),
            body: vec![
                KStmt::Store { mem: MemRef::Priv("_g1".into()), idx: v("b"), value: ld(g1, ci()) },
                KStmt::Store { mem: MemRef::Priv("_v2".into()), idx: v("b"), value: ld(v2, ci()) },
                KStmt::Assign {
                    name: "_next".into(),
                    value: v("_next")
                        - v("cf1")
                            * ld(bi, mc())
                            * (KExpr::real(2.0)
                                * ld(dd, mc())
                                * KExpr::load(MemRef::Priv("_v2".into()), v("b"))
                                - ld(ff, mc()) * KExpr::load(MemRef::Priv("_g1".into()), v("b"))),
                },
            ],
        },
        KStmt::Assign {
            name: "_next".into(),
            value: (v("_next") + v("cf") * v("_prev")) / (KExpr::real(1.0) + v("cf")),
        },
        KStmt::Store { mem: MemRef::Param(next), idx: v("idx"), value: v("_next") },
        // for each ODE branch: update the boundary state
        KStmt::For {
            var: "b".into(),
            begin: KExpr::int(0),
            end: v("MB"),
            step: KExpr::int(1),
            body: vec![
                KStmt::DeclScalar {
                    name: "_v1".into(),
                    kind: ScalarKind::Real,
                    init: Some(
                        ld(bi, mc())
                            * (v("_next") - v("_prev")
                                + ld(di, mc()) * KExpr::load(MemRef::Priv("_v2".into()), v("b"))
                                - KExpr::real(2.0)
                                    * ld(ff, mc())
                                    * KExpr::load(MemRef::Priv("_g1".into()), v("b"))),
                    ),
                },
                KStmt::Store {
                    mem: MemRef::Param(g1),
                    idx: ci(),
                    value: KExpr::load(MemRef::Priv("_g1".into()), v("b"))
                        + KExpr::real(0.5)
                            * (v("_v1") + KExpr::load(MemRef::Priv("_v2".into()), v("b"))),
                },
                KStmt::Store { mem: MemRef::Param(v1), idx: ci(), value: v("_v1") },
            ],
        },
    ];
    Kernel {
        name: "fdmm_boundary_hand".into(),
        params: vec![
            KernelParam::global_buf("boundaryIndices", ScalarKind::I32),
            KernelParam::global_buf("nbrs", ScalarKind::I32),
            KernelParam::global_buf("material", ScalarKind::I32),
            KernelParam::global_buf("beta", ScalarKind::Real),
            KernelParam::global_buf("BI", ScalarKind::Real),
            KernelParam::global_buf("D", ScalarKind::Real),
            KernelParam::global_buf("DI", ScalarKind::Real),
            KernelParam::global_buf("F", ScalarKind::Real),
            KernelParam::global_buf("next", ScalarKind::Real),
            KernelParam::global_buf("prev", ScalarKind::Real),
            KernelParam::global_buf("g1", ScalarKind::Real),
            KernelParam::global_buf("v1", ScalarKind::Real),
            KernelParam::global_buf("v2", ScalarKind::Real),
            KernelParam::scalar("l", ScalarKind::Real),
            KernelParam::scalar("numB", ScalarKind::I32),
            KernelParam::scalar("MB", ScalarKind::I32),
        ],
        body,
        work_dim: 1,
    }
}

/// Every hand-written reference kernel of the repro suite (both β-placement
/// variants of FI-MM), precision-generic — the enumeration the `lift_verify`
/// driver audits.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        volume_kernel(),
        volume_slab_kernel(),
        fi_single_kernel(),
        fimm_kernel(false),
        fimm_kernel(true),
        fdmm_kernel(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::opencl;

    #[test]
    fn kernels_prepare_for_execution() {
        for k in [volume_kernel(), fi_single_kernel(), fimm_kernel(false), fdmm_kernel()] {
            let r = k.resolve_real(ScalarKind::F32);
            vgpu::exec::prepare(&r).unwrap();
            let r64 = k.resolve_real(ScalarKind::F64);
            vgpu::exec::prepare(&r64).unwrap();
        }
    }

    #[test]
    fn emitted_source_matches_listing_structure() {
        let src = opencl::emit_kernel(&fimm_kernel(false).resolve_real(ScalarKind::F64));
        assert!(src.contains("int idx = boundaryIndices[get_global_id(0)];"), "{src}");
        assert!(
            src.contains("next[idx] = ((next[idx] + (cf * prev[idx])) / (1.0 + cf));"),
            "{src}"
        );
    }

    #[test]
    fn constant_beta_variant_uses_constant_space() {
        let src = opencl::emit_kernel(&fimm_kernel(true).resolve_real(ScalarKind::F32));
        assert!(src.contains("__constant float* beta"), "{src}");
    }

    #[test]
    fn fdmm_has_two_branch_loops_and_private_state() {
        let src = opencl::emit_kernel(&fdmm_kernel().resolve_real(ScalarKind::F64));
        assert_eq!(src.matches("for (int b = 0; b < MB;").count(), 2, "{src}");
        assert!(src.contains("double _g1[MB];"), "{src}");
    }
}

//! Room geometry: grids, shapes and voxelisation.
//!
//! The simulation volume is a 3-D grid of voxels with a one-voxel halo
//! (zero-padded, never updated — §II-A of the paper). A [`RoomShape`]
//! classifies each non-halo voxel as inside or outside the room; the
//! *boundary* is the set of inside voxels with fewer than six inside
//! neighbours. Table II's two shapes are provided: the full cuboid (`Box`)
//! and the half-ellipsoid dome (`Dome`).

use serde::{Deserialize, Serialize};

/// Grid dimensions **including** the one-voxel halo on every side, matching
/// the paper's `Nx`/`Ny`/`Nz` convention (Listing 1 treats `x==0` and
/// `x==Nx-1` as the halo).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDims {
    /// Points along x (fastest-varying).
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z (slowest-varying).
    pub nz: usize,
}

impl GridDims {
    /// New dimensions.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 3 && ny >= 3 && nz >= 3, "grid must have an interior");
        GridDims { nx, ny, nz }
    }

    /// Cubic grid.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total points including halo.
    pub fn total(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear index of `(x, y, z)` — the paper's `z*Nx*Ny + y*Nx + x`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        z * self.nx * self.ny + y * self.nx + x
    }

    /// Inverse of [`GridDims::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let plane = self.nx * self.ny;
        let z = idx / plane;
        let r = idx % plane;
        (r % self.nx, r / self.nx, z)
    }

    /// True for halo points.
    #[inline]
    pub fn is_halo(&self, x: usize, y: usize, z: usize) -> bool {
        x == 0 || y == 0 || z == 0 || x == self.nx - 1 || y == self.ny - 1 || z == self.nz - 1
    }

    /// The three room sizes evaluated in the paper (Table II), given as the
    /// full grid dimensions.
    pub fn paper_sizes() -> [GridDims; 3] {
        [GridDims::new(602, 402, 302), GridDims::cube(336), GridDims::new(302, 202, 152)]
    }

    /// The paper labels each size by its leading dimension.
    pub fn label(&self) -> String {
        format!("{}", self.nx)
    }
}

/// Room shapes from the paper's evaluation (Table II / Figure 1), plus an
/// L-shaped room as an extra non-convex test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoomShape {
    /// The whole non-halo grid is inside: a cuboid room whose walls are the
    /// grid faces (Listing 1's implicit boundary).
    Box,
    /// A dome: the upper half of an ellipsoid whose equator rests on the
    /// floor plane `z = 1`, with semi-axes filling the grid interior.
    Dome,
    /// An L-shaped room: the box minus its upper-right quadrant (in x–y),
    /// full height. Non-convex — exercises boundary points whose outside
    /// neighbours lie *inside the bounding box*.
    LShape,
}

impl RoomShape {
    /// Is the (non-halo) voxel inside the room?
    pub fn inside(&self, dims: &GridDims, x: usize, y: usize, z: usize) -> bool {
        if dims.is_halo(x, y, z) {
            return false;
        }
        match self {
            RoomShape::Box => true,
            RoomShape::LShape => {
                // remove the quadrant x ≥ mid_x && y ≥ mid_y
                let mid_x = dims.nx.div_ceil(2);
                let mid_y = dims.ny.div_ceil(2);
                !(x >= mid_x && y >= mid_y)
            }
            RoomShape::Dome => {
                // Semi-axes of the half-ellipsoid: half-extents in x/y, the
                // full interior height in z.
                let rx = (dims.nx as f64 - 3.0) / 2.0;
                let ry = (dims.ny as f64 - 3.0) / 2.0;
                let rz = dims.nz as f64 - 3.0;
                let cx = 1.0 + rx;
                let cy = 1.0 + ry;
                let dx = (x as f64 - cx) / rx;
                let dy = (y as f64 - cy) / ry;
                let dz = (z as f64 - 1.0) / rz;
                dx * dx + dy * dy + dz * dz <= 1.0
            }
        }
    }

    /// Short label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            RoomShape::Box => "box",
            RoomShape::Dome => "dome",
            RoomShape::LShape => "L-shape",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_roundtrip() {
        let d = GridDims::new(7, 5, 4);
        for idx in [0usize, 1, 6, 34, 139] {
            let (x, y, z) = d.coords(idx);
            assert_eq!(d.idx(x, y, z), idx);
        }
    }

    #[test]
    fn halo_detection() {
        let d = GridDims::cube(5);
        assert!(d.is_halo(0, 2, 2));
        assert!(d.is_halo(4, 2, 2));
        assert!(!d.is_halo(1, 1, 1));
    }

    #[test]
    fn box_interior_is_inside() {
        let d = GridDims::cube(6);
        assert!(RoomShape::Box.inside(&d, 1, 1, 1));
        assert!(RoomShape::Box.inside(&d, 4, 4, 4));
        assert!(!RoomShape::Box.inside(&d, 0, 3, 3));
    }

    #[test]
    fn dome_fits_inside_box() {
        let d = GridDims::new(21, 21, 11);
        let mut dome = 0usize;
        let mut boxy = 0usize;
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    if RoomShape::Dome.inside(&d, x, y, z) {
                        dome += 1;
                        assert!(RoomShape::Box.inside(&d, x, y, z));
                    }
                    if RoomShape::Box.inside(&d, x, y, z) {
                        boxy += 1;
                    }
                }
            }
        }
        assert!(dome > 0 && dome < boxy);
    }

    #[test]
    fn dome_apex_and_floor_centre_inside() {
        let d = GridDims::new(21, 21, 11);
        assert!(RoomShape::Dome.inside(&d, 10, 10, 1), "floor centre");
        assert!(RoomShape::Dome.inside(&d, 10, 10, d.nz - 3), "near apex");
        assert!(!RoomShape::Dome.inside(&d, 1, 1, d.nz - 2), "top corner outside dome");
    }

    #[test]
    fn lshape_is_box_minus_quadrant() {
        let d = GridDims::new(12, 12, 8);
        assert!(RoomShape::LShape.inside(&d, 2, 2, 2));
        assert!(RoomShape::LShape.inside(&d, 9, 2, 2));
        assert!(RoomShape::LShape.inside(&d, 2, 9, 2));
        assert!(!RoomShape::LShape.inside(&d, 9, 9, 2), "removed quadrant");
        // inside ⊆ box
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    if RoomShape::LShape.inside(&d, x, y, z) {
                        assert!(RoomShape::Box.inside(&d, x, y, z));
                    }
                }
            }
        }
    }

    #[test]
    fn paper_sizes_match_table2() {
        let s = GridDims::paper_sizes();
        assert_eq!((s[0].nx, s[0].ny, s[0].nz), (602, 402, 302));
        assert_eq!((s[1].nx, s[1].ny, s[1].nz), (336, 336, 336));
        assert_eq!((s[2].nx, s[2].ny, s[2].nz), (302, 202, 152));
    }
}

//! Boundary data structures: `nbrs`, `boundaryIndices` and material maps.
//!
//! Complicated shapes cannot be classified by Boolean formulas (§II-B), so
//! the simulation pre-computes:
//!
//! * `nbrs[idx]` — the number of the six face-neighbours lying inside the
//!   room, with 0 for outside/halo points (the inside/outside/at-boundary
//!   encoding of Listing 2);
//! * `boundaryIndices[i]` — the linear indices of inside points with
//!   `nbrs < 6` (the gather list the two-kernel approach iterates);
//! * `material[i]` — the material id at each boundary point (FI-MM/FD-MM).

use crate::geometry::{GridDims, RoomShape};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How materials are assigned to boundary points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaterialAssignment {
    /// Every boundary point uses material 0.
    Uniform,
    /// Floor (lowest interior plane) → 0, ceiling/upper shell → 1, side
    /// walls → 2: three materials, the minimum that exercises multi-material
    /// handling on both shapes.
    FloorWallsCeiling,
    /// Deterministically varied per point (stress test): material
    /// `idx % num_materials`.
    Striped {
        /// Number of materials to cycle through.
        num_materials: usize,
    },
}

/// Precomputed boundary data for one room.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomModel {
    /// Grid dimensions (with halo).
    pub dims: GridDims,
    /// Shape.
    pub shape: RoomShape,
    /// Inside-neighbour counts per grid point (0 = outside or halo).
    pub nbrs: Vec<i32>,
    /// Linear indices of the boundary points.
    pub boundary_indices: Vec<i32>,
    /// Material id per boundary point (parallel to `boundary_indices`).
    pub material: Vec<i32>,
    /// Number of distinct materials.
    pub num_materials: usize,
}

impl RoomModel {
    /// Builds the boundary data for a room.
    pub fn build(dims: GridDims, shape: RoomShape, materials: MaterialAssignment) -> RoomModel {
        let total = dims.total();
        let plane = dims.nx * dims.ny;
        // inside mask
        let inside: Vec<bool> = (0..total)
            .into_par_iter()
            .map(|idx| {
                let (x, y, z) = dims.coords(idx);
                shape.inside(&dims, x, y, z)
            })
            .collect();
        // neighbour counts
        let nbrs: Vec<i32> = (0..total)
            .into_par_iter()
            .map(|idx| {
                if !inside[idx] {
                    return 0;
                }
                let (x, y, z) = dims.coords(idx);
                let mut n = 0;
                // Non-halo inside points have all six neighbours in range.
                debug_assert!(!dims.is_halo(x, y, z));
                n += inside[idx - 1] as i32;
                n += inside[idx + 1] as i32;
                n += inside[idx - dims.nx] as i32;
                n += inside[idx + dims.nx] as i32;
                n += inside[idx - plane] as i32;
                n += inside[idx + plane] as i32;
                n
            })
            .collect();
        let boundary_indices: Vec<i32> =
            (0..total).filter(|&idx| inside[idx] && nbrs[idx] < 6).map(|idx| idx as i32).collect();
        let (material, num_materials) = assign_materials(&dims, &boundary_indices, materials);
        RoomModel { dims, shape, nbrs, boundary_indices, material, num_materials }
    }

    /// Number of boundary points (Table II's "B. Pts").
    pub fn num_boundary_points(&self) -> usize {
        self.boundary_indices.len()
    }

    /// Number of inside points (volume).
    pub fn num_inside_points(&self) -> usize {
        self.nbrs.iter().filter(|&&n| n > 0).count()
    }

    /// The `nbrs` values gathered at the boundary points (a convenience for
    /// kernels that take them as a compact array).
    pub fn boundary_nbrs(&self) -> Vec<i32> {
        self.boundary_indices.iter().map(|&i| self.nbrs[i as usize]).collect()
    }
}

fn assign_materials(
    dims: &GridDims,
    boundary: &[i32],
    strategy: MaterialAssignment,
) -> (Vec<i32>, usize) {
    match strategy {
        MaterialAssignment::Uniform => (vec![0; boundary.len()], 1),
        MaterialAssignment::Striped { num_materials } => {
            assert!(num_materials >= 1);
            (
                boundary.iter().enumerate().map(|(i, _)| (i % num_materials) as i32).collect(),
                num_materials,
            )
        }
        MaterialAssignment::FloorWallsCeiling => {
            let mats: Vec<i32> = boundary
                .iter()
                .map(|&idx| {
                    let (_, _, z) = dims.coords(idx as usize);
                    if z <= 1 {
                        0 // floor
                    } else if z >= dims.nz / 2 {
                        1 // ceiling / upper shell
                    } else {
                        2 // side walls
                    }
                })
                .collect();
            (mats, 3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_boundary_is_the_shell() {
        let dims = GridDims::cube(8); // interior 6³
        let m = RoomModel::build(dims, RoomShape::Box, MaterialAssignment::Uniform);
        // shell of a 6³ interior: 6³ − 4³ = 216 − 64 = 152
        assert_eq!(m.num_boundary_points(), 152);
        assert_eq!(m.num_inside_points(), 216);
    }

    #[test]
    fn box_corner_has_three_neighbours() {
        let dims = GridDims::cube(8);
        let m = RoomModel::build(dims, RoomShape::Box, MaterialAssignment::Uniform);
        assert_eq!(m.nbrs[dims.idx(1, 1, 1)], 3);
        assert_eq!(m.nbrs[dims.idx(2, 1, 1)], 4);
        assert_eq!(m.nbrs[dims.idx(2, 2, 1)], 5);
        assert_eq!(m.nbrs[dims.idx(3, 3, 3)], 6);
        assert_eq!(m.nbrs[dims.idx(0, 0, 0)], 0);
    }

    #[test]
    fn boundary_indices_are_sorted_and_unique() {
        let dims = GridDims::new(10, 8, 9);
        let m = RoomModel::build(dims, RoomShape::Dome, MaterialAssignment::Uniform);
        assert!(m.boundary_indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dome_has_fewer_boundary_points_than_box_at_paper_scale_ratio() {
        // At small scale the dome's voxelised shell can exceed the box's;
        // check the basic sanity instead: every boundary point is inside and
        // has 1..=5 neighbours.
        let dims = GridDims::new(24, 20, 14);
        let m = RoomModel::build(dims, RoomShape::Dome, MaterialAssignment::Uniform);
        assert!(!m.boundary_indices.is_empty());
        for (&idx, _) in m.boundary_indices.iter().zip(&m.material) {
            let n = m.nbrs[idx as usize];
            assert!((1..=5).contains(&n), "nbr {n} at {idx}");
        }
    }

    #[test]
    fn floor_walls_ceiling_materials() {
        let dims = GridDims::cube(10);
        let m = RoomModel::build(dims, RoomShape::Box, MaterialAssignment::FloorWallsCeiling);
        assert_eq!(m.num_materials, 3);
        let mats: std::collections::BTreeSet<i32> = m.material.iter().copied().collect();
        assert_eq!(mats.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // a floor-centre point is material 0
        let floor_idx = dims.idx(5, 5, 1) as i32;
        let pos = m.boundary_indices.iter().position(|&i| i == floor_idx).unwrap();
        assert_eq!(m.material[pos], 0);
    }

    #[test]
    fn striped_materials_cycle() {
        let dims = GridDims::cube(8);
        let m = RoomModel::build(
            dims,
            RoomShape::Box,
            MaterialAssignment::Striped { num_materials: 4 },
        );
        assert_eq!(m.num_materials, 4);
        assert_eq!(m.material[0], 0);
        assert_eq!(m.material[5], 1);
    }

    #[test]
    fn boundary_nbrs_gather() {
        let dims = GridDims::cube(8);
        let m = RoomModel::build(dims, RoomShape::Box, MaterialAssignment::Uniform);
        let bn = m.boundary_nbrs();
        assert_eq!(bn.len(), m.num_boundary_points());
        assert!(bn.iter().all(|&n| (3..=5).contains(&n)));
    }
}

//! The simulation driver: time stepping, sources, receivers and energy
//! accounting.
//!
//! A room acoustics run is a leap-frog iteration over three pressure grids
//! (`prev`, `curr`, `next`), with the boundary model applied after each
//! volume pass and the buffers rotated (§II-C: "for an actual application
//! the two kernels are executed iteratively"). [`ReferenceSim`] drives the
//! golden Rust kernels of [`crate::reference`]; `crate::vgpu_sim` drives the
//! hand-written kernel ASTs on the virtual GPU; the `lift-acoustics` crate
//! adds the LIFT-generated backend.

use crate::boundary::{MaterialAssignment, RoomModel};
use crate::geometry::{GridDims, RoomShape};
use crate::materials::{courant, courant_sq, fi_betas, FdCoeffs, Material};
use crate::reference::{self, FdArrays, Real};
use serde::{Deserialize, Serialize};

/// Which boundary physics a run uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundaryModel {
    /// Uniform frequency-independent admittance (Listings 1–2).
    Fi {
        /// Specific admittance β.
        beta: f64,
    },
    /// Frequency-independent, multi-material (Listing 3).
    FiMm {
        /// Material set; `material[i]` of the room indexes into it.
        materials: Vec<Material>,
    },
    /// Frequency-dependent, multi-material (Listing 4).
    FdMm {
        /// Material set.
        materials: Vec<Material>,
        /// ODE branches per material (the paper evaluates `MB = 3`).
        mb: usize,
    },
}

/// Complete description of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Grid dimensions (with halo).
    pub dims: GridDims,
    /// Room shape.
    pub shape: RoomShape,
    /// Material assignment strategy.
    pub assignment: MaterialAssignment,
    /// Boundary physics.
    pub boundary: BoundaryModel,
}

impl SimConfig {
    /// An FI-MM run with the default 3-material set.
    pub fn fimm(dims: GridDims, shape: RoomShape) -> SimConfig {
        SimConfig {
            dims,
            shape,
            assignment: MaterialAssignment::FloorWallsCeiling,
            boundary: BoundaryModel::FiMm { materials: Material::default_set() },
        }
    }

    /// An FD-MM run with the default 3-material set and `MB = 3`.
    pub fn fdmm(dims: GridDims, shape: RoomShape) -> SimConfig {
        SimConfig {
            dims,
            shape,
            assignment: MaterialAssignment::FloorWallsCeiling,
            boundary: BoundaryModel::FdMm { materials: Material::default_set(), mb: 3 },
        }
    }
}

/// Precomputed, precision-independent run data shared by all backends.
#[derive(Debug, Clone)]
pub struct SimSetup {
    /// The room (geometry + boundary data structures).
    pub room: RoomModel,
    /// Courant number λ.
    pub l: f64,
    /// λ².
    pub l2: f64,
    /// Per-material β (FI: one entry; FI-MM: `beta0`s; FD-MM: effective β).
    pub betas: Vec<f64>,
    /// FD-MM coefficients, when applicable.
    pub fd: Option<FdCoeffs>,
    /// Branches per material (0 unless FD-MM).
    pub mb: usize,
}

impl SimSetup {
    /// Builds the room and coefficient tables for a configuration.
    pub fn new(cfg: &SimConfig) -> SimSetup {
        let room = RoomModel::build(cfg.dims, cfg.shape, cfg.assignment);
        let (betas, fd, mb) = match &cfg.boundary {
            BoundaryModel::Fi { beta } => (vec![*beta], None, 0),
            BoundaryModel::FiMm { materials } => {
                assert!(
                    room.num_materials <= materials.len(),
                    "room assigns {} materials but only {} defined",
                    room.num_materials,
                    materials.len()
                );
                (fi_betas(materials), None, 0)
            }
            BoundaryModel::FdMm { materials, mb } => {
                assert!(room.num_materials <= materials.len());
                let c = FdCoeffs::derive(materials, *mb);
                (c.beta.clone(), Some(c), *mb)
            }
        };
        SimSetup { room, l: courant(), l2: courant_sq(), betas, fd, mb }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &GridDims {
        &self.room.dims
    }

    /// Boundary point count.
    pub fn num_b(&self) -> usize {
        self.room.num_boundary_points()
    }
}

/// Acoustic field energy proxy: `Σ (curr² + prev²) / 2`. Exact discrete
/// energy conservation needs cross terms, but this proxy is stationary (to
/// oscillation) for rigid walls and strictly decaying on average for
/// absorbing walls — which is what the stability/passivity tests assert.
pub fn field_energy<T: Real>(curr: &[T], prev: &[T]) -> f64 {
    let mut e = 0.0;
    for (c, p) in curr.iter().zip(prev) {
        let c = c.f64();
        let p = p.f64();
        e += 0.5 * (c * c + p * p);
    }
    e
}

/// The golden-model simulation backend.
pub struct ReferenceSim<T: Real> {
    setup: SimSetup,
    /// Pressure at t−1.
    pub prev: Vec<T>,
    /// Pressure at t.
    pub curr: Vec<T>,
    /// Workspace for t+1.
    pub next: Vec<T>,
    /// FD state: `g` per branch per boundary point.
    pub g1: Vec<T>,
    /// FD state: branch velocity (new).
    pub v1: Vec<T>,
    /// FD state: branch velocity (old).
    pub v2: Vec<T>,
    betas: Vec<T>,
    fd: Option<FdArrays<T>>,
    steps_done: usize,
}

impl<T: Real> ReferenceSim<T> {
    /// Builds the backend from a prepared setup.
    pub fn new(setup: SimSetup) -> Self {
        let n = setup.dims().total();
        let nb = setup.num_b();
        let state = setup.mb * nb;
        let betas = setup.betas.iter().map(|&b| T::of(b)).collect();
        let fd = setup.fd.as_ref().map(FdArrays::from_coeffs);
        ReferenceSim {
            prev: vec![T::of(0.0); n],
            curr: vec![T::of(0.0); n],
            next: vec![T::of(0.0); n],
            g1: vec![T::of(0.0); state],
            v1: vec![T::of(0.0); state],
            v2: vec![T::of(0.0); state],
            betas,
            fd,
            setup,
            steps_done: 0,
        }
    }

    /// The shared setup.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// Injects a pressure impulse at a grid point (must be inside the
    /// room). The impulse is applied to both `curr` and `prev` — a released
    /// initial *displacement* with zero initial velocity. (Setting only
    /// `curr` would give the field a net DC velocity, whose spatial mean
    /// grows linearly under rigid walls — physical for Neumann boundaries
    /// but useless for energy-decay measurements.)
    pub fn impulse(&mut self, x: usize, y: usize, z: usize, amp: f64) {
        let idx = self.setup.dims().idx(x, y, z);
        assert!(self.setup.room.nbrs[idx] > 0, "source must be inside the room");
        self.curr[idx] = T::of(amp);
        self.prev[idx] = T::of(amp);
    }

    /// Pressure at a grid point.
    pub fn sample(&self, x: usize, y: usize, z: usize) -> f64 {
        self.curr[self.setup.dims().idx(x, y, z)].f64()
    }

    /// Advances one time step (volume pass + boundary pass + rotation).
    pub fn step(&mut self) {
        let dims = *self.setup.dims();
        let room = &self.setup.room;
        let l = T::of(self.setup.l);
        let l2 = T::of(self.setup.l2);
        reference::volume_step(&mut self.next, &self.curr, &self.prev, &room.nbrs, &dims, l2);
        match &self.fd {
            None => {
                reference::fimm_boundary_step(
                    &mut self.next,
                    &self.prev,
                    &room.boundary_indices,
                    &room.nbrs,
                    &room.material,
                    &self.betas,
                    l,
                );
            }
            Some(fd) => {
                reference::fdmm_boundary_step(
                    &mut self.next,
                    &self.prev,
                    &room.boundary_indices,
                    &room.nbrs,
                    &room.material,
                    fd,
                    &mut self.g1,
                    &mut self.v1,
                    &self.v2,
                    l,
                );
                std::mem::swap(&mut self.v1, &mut self.v2);
            }
        }
        // rotate: prev ← curr, curr ← next, next ← old prev (reused).
        std::mem::swap(&mut self.prev, &mut self.curr);
        std::mem::swap(&mut self.curr, &mut self.next);
        self.steps_done += 1;
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps executed so far.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Current field energy (see [`field_energy`]).
    pub fn energy(&self) -> f64 {
        field_energy(&self.curr, &self.prev)
    }

    /// Records the receiver pressure over `n` steps (an impulse response).
    pub fn impulse_response(&mut self, rx: (usize, usize, usize), n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            self.step();
            out.push(self.sample(rx.0, rx.1, rx.2));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_fi(beta: f64) -> SimConfig {
        SimConfig {
            dims: GridDims::cube(14),
            shape: RoomShape::Box,
            assignment: MaterialAssignment::Uniform,
            boundary: BoundaryModel::Fi { beta },
        }
    }

    #[test]
    fn impulse_propagates_at_most_one_cell_per_step() {
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg_fi(0.1)));
        sim.impulse(7, 7, 7, 1.0);
        sim.run(3);
        let dims = *sim.setup().dims();
        for z in 1..dims.nz - 1 {
            for y in 1..dims.ny - 1 {
                for x in 1..dims.nx - 1 {
                    let d = (x as i64 - 7).abs() + (y as i64 - 7).abs() + (z as i64 - 7).abs();
                    if d > 3 {
                        assert_eq!(sim.sample(x, y, z), 0.0, "leak at ({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn rigid_walls_preserve_energy_on_average() {
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg_fi(0.0)));
        sim.impulse(7, 7, 7, 1.0);
        sim.run(50);
        let e1 = sim.energy();
        sim.run(400);
        let e2 = sim.energy();
        assert!(e2 > 0.3 * e1 && e2 < 3.0 * e1, "energy drifted: {e1} → {e2}");
    }

    #[test]
    fn absorbing_walls_decay_energy() {
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg_fi(0.3)));
        sim.impulse(7, 7, 7, 1.0);
        sim.run(50);
        let e1 = sim.energy();
        sim.run(800);
        let e2 = sim.energy();
        assert!(e2 < 0.2 * e1, "absorption too weak: {e1} → {e2}");
    }

    #[test]
    fn fdmm_is_stable_and_passive() {
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&SimConfig::fdmm(
            GridDims::cube(14),
            RoomShape::Box,
        )));
        sim.impulse(7, 7, 7, 1.0);
        sim.run(50);
        let e1 = sim.energy();
        sim.run(1000);
        let e2 = sim.energy();
        assert!(e2.is_finite());
        assert!(e2 < e1, "FD boundary must dissipate: {e1} → {e2}");
    }

    #[test]
    fn fdmm_differs_from_fimm() {
        // The resonant branches change the response versus plain FI-MM with
        // the same β₀.
        let dims = GridDims::cube(12);
        let mut fd =
            ReferenceSim::<f64>::new(SimSetup::new(&SimConfig::fdmm(dims, RoomShape::Box)));
        let mut fi =
            ReferenceSim::<f64>::new(SimSetup::new(&SimConfig::fimm(dims, RoomShape::Box)));
        fd.impulse(6, 6, 6, 1.0);
        fi.impulse(6, 6, 6, 1.0);
        let a = fd.impulse_response((3, 3, 3), 60);
        let b = fi.impulse_response((3, 3, 3), 60);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "FD and FI responses should differ, diff = {diff}");
    }

    #[test]
    fn dome_simulation_stays_inside_dome() {
        let dims = GridDims::new(20, 20, 12);
        let cfg = SimConfig::fimm(dims, RoomShape::Dome);
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
        sim.impulse(10, 10, 4, 1.0);
        sim.run(30);
        // outside-the-dome points must remain exactly zero
        for z in 1..dims.nz - 1 {
            for y in 1..dims.ny - 1 {
                for x in 1..dims.nx - 1 {
                    if !RoomShape::Dome.inside(&dims, x, y, z) {
                        assert_eq!(sim.sample(x, y, z), 0.0, "({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn f32_and_f64_agree_initially() {
        let cfg = cfg_fi(0.2);
        let mut a = ReferenceSim::<f32>::new(SimSetup::new(&cfg));
        let mut b = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
        a.impulse(7, 6, 5, 1.0);
        b.impulse(7, 6, 5, 1.0);
        a.run(10);
        b.run(10);
        let pa = a.sample(5, 5, 5);
        let pb = b.sample(5, 5, 5);
        assert!((pa - pb).abs() < 1e-4, "{pa} vs {pb}");
    }

    #[test]
    fn impulse_response_has_direct_sound_arrival() {
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg_fi(0.1)));
        sim.impulse(7, 7, 7, 1.0);
        let ir = sim.impulse_response((10, 7, 7), 40);
        // nothing before the wave can reach 3 cells away…
        assert!(ir[0].abs() < 1e-15 && ir[1].abs() < 1e-15);
        // …and something after.
        assert!(ir.iter().any(|&v| v.abs() > 1e-6));
    }
}

//! The hand-written-kernel backend on the virtual GPU.
//!
//! Drives the kernel ASTs of [`crate::handwritten`] through a
//! [`vgpu::Device`], with device-resident buffers rotated between steps —
//! the same execution shape as the paper's tuned OpenCL applications. Used
//! both as the baseline in the evaluation and as a cross-check against
//! [`crate::sim::ReferenceSim`].

use crate::handwritten;
use crate::reference::FdArrays;
use crate::sim::{field_energy, SimSetup};
use lift::prelude::{ScalarKind, Value};
use vgpu::{Arg, BufData, BufId, Device, ExecMode, LaunchStats, Prepared};

/// Floating-point precision of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// f32.
    Single,
    /// f64.
    Double,
}

impl Precision {
    /// The scalar kind.
    pub fn kind(self) -> ScalarKind {
        match self {
            Precision::Single => ScalarKind::F32,
            Precision::Double => ScalarKind::F64,
        }
    }

    /// A real-valued scalar argument at this precision.
    pub fn val(self, v: f64) -> Value {
        match self {
            Precision::Single => Value::F32(v as f32),
            Precision::Double => Value::F64(v),
        }
    }

    /// Converts an f64 slice to buffer data at this precision.
    pub fn buf(self, v: &[f64]) -> BufData {
        match self {
            Precision::Single => BufData::from(v.iter().map(|&x| x as f32).collect::<Vec<f32>>()),
            Precision::Double => BufData::from(v.to_vec()),
        }
    }

    /// Label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Single => "Single",
            Precision::Double => "Double",
        }
    }
}

/// Boundary kernel flavour of a virtual-GPU run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKernel {
    /// FI-MM (Listing 3). `beta_constant` selects the hand-tuned
    /// constant-memory β variant (§VII-B1).
    FiMm {
        /// β table in `__constant` space.
        beta_constant: bool,
    },
    /// FD-MM (Listing 4).
    FdMm,
}

/// Hand-written kernels running on the virtual GPU.
pub struct HandwrittenSim {
    /// The device (exposed for profiling inspection).
    pub device: Device,
    setup: SimSetup,
    precision: Precision,
    volume: Prepared,
    boundary: Prepared,
    boundary_kind: BoundaryKernel,
    // device buffers
    prev: BufId,
    curr: BufId,
    next: BufId,
    nbrs: BufId,
    bidx: BufId,
    material: BufId,
    beta: BufId,
    fd_bufs: Option<FdBufs>,
    steps_done: usize,
}

struct FdBufs {
    bi: BufId,
    d: BufId,
    di: BufId,
    f: BufId,
    g1: BufId,
    v1: BufId,
    v2: BufId,
}

impl HandwrittenSim {
    /// Builds the backend. `boundary` must match the setup (FD-MM requires
    /// FD coefficients in the setup).
    pub fn new(
        setup: SimSetup,
        precision: Precision,
        boundary_kind: BoundaryKernel,
        mut device: Device,
    ) -> Self {
        crate::contracts::register_all();
        let real = precision.kind();
        let n = setup.dims().total();
        let nb = setup.num_b();
        // Compile through the process-wide artifact cache: every room of a
        // given boundary model and precision uses byte-identical kernels, so
        // a batch of sims shares one prepared artifact per kernel (and, via
        // the shared id, one launch plan across all their devices).
        let volume = (*vgpu::compile_cached(&handwritten::volume_kernel().resolve_real(real))
            .expect("volume kernel compiles"))
        .clone();
        let boundary = match boundary_kind {
            BoundaryKernel::FiMm { beta_constant } => {
                (*vgpu::compile_cached(&handwritten::fimm_kernel(beta_constant).resolve_real(real))
                    .expect("FI-MM kernel compiles"))
                .clone()
            }
            BoundaryKernel::FdMm => {
                (*vgpu::compile_cached(&handwritten::fdmm_kernel().resolve_real(real))
                    .expect("FD-MM kernel compiles"))
                .clone()
            }
        };
        let prev = device.create_buffer_zeroed(real, n);
        let curr = device.create_buffer_zeroed(real, n);
        let next = device.create_buffer_zeroed(real, n);
        let nbrs = device.upload(BufData::from(setup.room.nbrs.clone()));
        let bidx = device.upload(BufData::from(setup.room.boundary_indices.clone()));
        let material = device.upload(BufData::from(setup.room.material.clone()));
        let beta = device.upload(precision.buf(&setup.betas));
        let fd_bufs = match boundary_kind {
            BoundaryKernel::FdMm => {
                let c = setup.fd.as_ref().expect("FD-MM setup has coefficients");
                let fa: FdArrays<f64> = FdArrays::from_coeffs(c);
                let state = setup.mb * nb;
                Some(FdBufs {
                    bi: device.upload(precision.buf(&fa.bi)),
                    d: device.upload(precision.buf(&fa.d)),
                    di: device.upload(precision.buf(&fa.di)),
                    f: device.upload(precision.buf(&fa.f)),
                    g1: device.create_buffer_zeroed(real, state),
                    v1: device.create_buffer_zeroed(real, state),
                    v2: device.create_buffer_zeroed(real, state),
                })
            }
            _ => None,
        };
        HandwrittenSim {
            device,
            setup,
            precision,
            volume,
            boundary,
            boundary_kind,
            prev,
            curr,
            next,
            nbrs,
            bidx,
            material,
            beta,
            fd_bufs,
            steps_done: 0,
        }
    }

    /// The shared setup.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// Injects an impulse as a released initial displacement (applied to
    /// both `curr` and `prev`, matching [`crate::sim::ReferenceSim::impulse`]).
    pub fn impulse(&mut self, x: usize, y: usize, z: usize, amp: f64) {
        let idx = self.setup.dims().idx(x, y, z);
        for buf in [self.curr, self.prev] {
            let mut data = self.device.read(buf);
            data.set(idx, self.precision.val(amp));
            self.device.write(buf, data);
        }
    }

    /// Advances one step; returns the (volume, boundary) launch stats.
    pub fn step(&mut self, mode: ExecMode) -> (LaunchStats, LaunchStats) {
        let dims = *self.setup.dims();
        let l = self.precision.val(self.setup.l);
        let l2 = self.precision.val(self.setup.l2);
        let nb = self.setup.num_b();
        let vstats = self
            .device
            .launch(
                &self.volume,
                &[
                    Arg::Buf(self.next),
                    Arg::Buf(self.curr),
                    Arg::Buf(self.prev),
                    Arg::Buf(self.nbrs),
                    Arg::Val(l2),
                    Arg::Val(Value::I32(dims.nx as i32)),
                    Arg::Val(Value::I32(dims.ny as i32)),
                    Arg::Val(Value::I32(dims.nz as i32)),
                ],
                &[dims.nx, dims.ny, dims.nz],
                mode,
            )
            .expect("volume launch");
        let bstats = match self.boundary_kind {
            BoundaryKernel::FiMm { .. } => self
                .device
                .launch(
                    &self.boundary,
                    &[
                        Arg::Buf(self.bidx),
                        Arg::Buf(self.nbrs),
                        Arg::Buf(self.material),
                        Arg::Buf(self.beta),
                        Arg::Buf(self.next),
                        Arg::Buf(self.prev),
                        Arg::Val(l),
                        Arg::Val(Value::I32(nb as i32)),
                    ],
                    &[nb],
                    mode,
                )
                .expect("FI-MM launch"),
            BoundaryKernel::FdMm => {
                let fd = self.fd_bufs.as_ref().expect("FD buffers");
                let s = self
                    .device
                    .launch(
                        &self.boundary,
                        &[
                            Arg::Buf(self.bidx),
                            Arg::Buf(self.nbrs),
                            Arg::Buf(self.material),
                            Arg::Buf(self.beta),
                            Arg::Buf(fd.bi),
                            Arg::Buf(fd.d),
                            Arg::Buf(fd.di),
                            Arg::Buf(fd.f),
                            Arg::Buf(self.next),
                            Arg::Buf(self.prev),
                            Arg::Buf(fd.g1),
                            Arg::Buf(fd.v1),
                            Arg::Buf(fd.v2),
                            Arg::Val(l),
                            Arg::Val(Value::I32(nb as i32)),
                            Arg::Val(Value::I32(self.setup.mb as i32)),
                        ],
                        &[nb],
                        mode,
                    )
                    .expect("FD-MM launch");
                let fd = self.fd_bufs.as_mut().unwrap();
                std::mem::swap(&mut fd.v1, &mut fd.v2);
                s
            }
        };
        // rotate pressure buffers
        let old_prev = self.prev;
        self.prev = self.curr;
        self.curr = self.next;
        self.next = old_prev;
        self.steps_done += 1;
        (vstats, bstats)
    }

    /// Launches only the boundary kernel (no volume pass, no rotation).
    /// Useful for benchmarking kernel 2 in isolation — its memory traffic
    /// is value-independent (no data-dependent branches), so this measures
    /// exactly what a mid-simulation launch would.
    pub fn boundary_step_only(&mut self, mode: ExecMode) -> LaunchStats {
        let l = self.precision.val(self.setup.l);
        let nb = self.setup.num_b();
        match self.boundary_kind {
            BoundaryKernel::FiMm { .. } => self
                .device
                .launch(
                    &self.boundary,
                    &[
                        Arg::Buf(self.bidx),
                        Arg::Buf(self.nbrs),
                        Arg::Buf(self.material),
                        Arg::Buf(self.beta),
                        Arg::Buf(self.next),
                        Arg::Buf(self.prev),
                        Arg::Val(l),
                        Arg::Val(Value::I32(nb as i32)),
                    ],
                    &[nb],
                    mode,
                )
                .expect("FI-MM launch"),
            BoundaryKernel::FdMm => {
                let fd = self.fd_bufs.as_ref().expect("FD buffers");
                self.device
                    .launch(
                        &self.boundary,
                        &[
                            Arg::Buf(self.bidx),
                            Arg::Buf(self.nbrs),
                            Arg::Buf(self.material),
                            Arg::Buf(self.beta),
                            Arg::Buf(fd.bi),
                            Arg::Buf(fd.d),
                            Arg::Buf(fd.di),
                            Arg::Buf(fd.f),
                            Arg::Buf(self.next),
                            Arg::Buf(self.prev),
                            Arg::Buf(fd.g1),
                            Arg::Buf(fd.v1),
                            Arg::Buf(fd.v2),
                            Arg::Val(l),
                            Arg::Val(Value::I32(nb as i32)),
                            Arg::Val(Value::I32(self.setup.mb as i32)),
                        ],
                        &[nb],
                        mode,
                    )
                    .expect("FD-MM launch")
            }
        }
    }

    /// Runs `n` steps in fast mode.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step(ExecMode::Fast);
        }
    }

    /// Reads the current pressure field (as f64).
    pub fn read_curr(&self) -> Vec<f64> {
        self.device.read(self.curr).to_f64_vec()
    }

    /// Reads the previous pressure field (as f64).
    pub fn read_prev(&self) -> Vec<f64> {
        self.device.read(self.prev).to_f64_vec()
    }

    /// Pressure at a point.
    pub fn sample(&self, x: usize, y: usize, z: usize) -> f64 {
        let idx = self.setup.dims().idx(x, y, z);
        self.device.read(self.curr).get(idx).as_f64()
    }

    /// Field energy proxy (see [`field_energy`]).
    pub fn energy(&self) -> f64 {
        field_energy(&self.read_curr(), &self.read_prev())
    }

    /// Steps executed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{GridDims, RoomShape};
    use crate::sim::{ReferenceSim, SimConfig, SimSetup};

    fn setup(dims: GridDims, shape: RoomShape, fd: bool) -> SimSetup {
        let cfg = if fd { SimConfig::fdmm(dims, shape) } else { SimConfig::fimm(dims, shape) };
        SimSetup::new(&cfg)
    }

    #[test]
    fn handwritten_fimm_matches_reference_f64() {
        let s = setup(GridDims::cube(12), RoomShape::Box, false);
        let mut dev = Device::gtx780();
        dev.set_race_check(true);
        let mut hw = HandwrittenSim::new(
            s.clone(),
            Precision::Double,
            BoundaryKernel::FiMm { beta_constant: false },
            dev,
        );
        let mut rf = ReferenceSim::<f64>::new(s);
        hw.impulse(6, 6, 6, 1.0);
        rf.impulse(6, 6, 6, 1.0);
        hw.run(15);
        rf.run(15);
        let a = hw.read_curr();
        for (i, (x, y)) in a.iter().zip(&rf.curr).enumerate() {
            assert!((x - y).abs() < 1e-12, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn handwritten_fdmm_matches_reference_f64() {
        let s = setup(GridDims::cube(12), RoomShape::Dome, true);
        let mut dev = Device::gtx780();
        dev.set_race_check(true);
        let mut hw = HandwrittenSim::new(s.clone(), Precision::Double, BoundaryKernel::FdMm, dev);
        let mut rf = ReferenceSim::<f64>::new(s);
        hw.impulse(6, 6, 3, 1.0);
        rf.impulse(6, 6, 3, 1.0);
        hw.run(12);
        rf.run(12);
        let a = hw.read_curr();
        for (i, (x, y)) in a.iter().zip(&rf.curr).enumerate() {
            assert!((x - y).abs() < 1e-12, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn handwritten_fimm_single_precision_is_close() {
        let s = setup(GridDims::cube(10), RoomShape::Box, false);
        let mut hw = HandwrittenSim::new(
            s.clone(),
            Precision::Single,
            BoundaryKernel::FiMm { beta_constant: true },
            Device::gtx780(),
        );
        let mut rf = ReferenceSim::<f32>::new(s);
        hw.impulse(5, 5, 5, 1.0);
        rf.impulse(5, 5, 5, 1.0);
        hw.run(10);
        rf.run(10);
        let a = hw.read_curr();
        for (x, y) in a.iter().zip(&rf.curr) {
            assert!((x - *y as f64).abs() < 1e-6, "{x} vs {y:?}");
        }
    }

    #[test]
    fn boundary_kernel_stats_expose_access_counts() {
        let s = setup(GridDims::cube(12), RoomShape::Box, true);
        let nb = s.num_b() as u64;
        let mb = s.mb as u64;
        let mut hw =
            HandwrittenSim::new(s, Precision::Double, BoundaryKernel::FdMm, Device::gtx780());
        hw.impulse(6, 6, 6, 1.0);
        let (_, bstats) = hw.step(ExecMode::Fast);
        // Listing 4 global traffic per boundary point: loads = idx, nbr, mi,
        // beta + MB×(g1, v2, BI, D, F) + next, prev + MB×(BI, DI, F) reloads;
        // stores = next + MB×(g1, v1).
        let per_point_stores = 1 + 2 * mb;
        assert_eq!(bstats.counters.stores_global, nb * per_point_stores);
        // 45 accesses per update at MB=3 (the paper's figure): check order
        // of magnitude rather than the exact count, which depends on reload
        // caching choices.
        let accesses = (bstats.counters.loads_global + bstats.counters.stores_global) / nb;
        assert!((20..=60).contains(&accesses), "accesses/update = {accesses}");
    }
    #[test]
    fn step_loop_reuses_cached_launch_plans() {
        // A simulation's step loop launches the same two kernels against the
        // same buffer kinds every step (buffer rotation changes ids, not
        // kinds), so the device plan cache must plateau at one plan per
        // kernel and cached steps must report the same work as cold ones.
        let s = setup(GridDims::cube(10), RoomShape::Box, false);
        let mut hw = HandwrittenSim::new(
            s,
            Precision::Double,
            BoundaryKernel::FiMm { beta_constant: false },
            Device::gtx780(),
        );
        hw.impulse(5, 5, 5, 1.0);
        let mode = ExecMode::Model { sample_stride: 1 };
        let cold = hw.step(mode);
        assert_eq!(hw.device.plan_cache_len(), 2, "volume + boundary plans");
        for _ in 0..3 {
            let warm = hw.step(mode);
            assert_eq!(hw.device.plan_cache_len(), 2, "plans are reused, not re-made");
            assert_eq!(warm.0.counters, cold.0.counters);
            assert_eq!(warm.1.counters, cold.1.counters);
            assert_eq!(warm.0.transaction_bytes, cold.0.transaction_bytes);
            assert_eq!(warm.1.transaction_bytes, cold.1.transaction_bytes);
        }
    }
}

//! Interleaving single- and double-precision rooms must not thrash the
//! launch-plan cache: precision is part of both the artifact fingerprint
//! (f32 and f64 kernels are distinct artifacts with distinct prepared ids)
//! and the binding kind signature, so each variant owns its own plan and
//! fresh rooms adopt plans from the process-wide shared map.
//!
//! Regression: plans used to be private per device, so every new room
//! replanned all its kernels — `vgpu.plan.misses` grew linearly with room
//! count instead of staying flat after warmup.
//!
//! Runs in its own test binary so the counter deltas below only see this
//! file's launches.

use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, SimConfig, SimSetup,
};
use vgpu::{telemetry, Device, ExecMode};

fn room(precision: Precision) -> HandwrittenSim {
    let setup = SimSetup::new(&SimConfig::fimm(GridDims::cube(9), RoomShape::Box));
    HandwrittenSim::new(
        setup,
        precision,
        BoundaryKernel::FiMm { beta_constant: false },
        Device::gtx780(),
    )
}

#[test]
fn interleaved_precisions_keep_plan_misses_flat() {
    // Warmup: the first single and double rooms resolve (and publish)
    // their volume and boundary plans.
    for precision in [Precision::Single, Precision::Double] {
        let mut sim = room(precision);
        sim.impulse(4, 4, 4, 1.0);
        sim.step(ExecMode::Fast);
    }
    let reg = telemetry::registry();
    let misses0 = reg.counter("vgpu.plan.misses").get();
    let shared0 = reg.counter("vgpu.plan.shared_hits").get();

    // Interleave fresh rooms of alternating precision: every launch either
    // hits the room's own cache or adopts a shared plan — never replans.
    for _ in 0..3 {
        for precision in [Precision::Single, Precision::Double] {
            let mut sim = room(precision);
            sim.impulse(4, 4, 4, 1.0);
            for _ in 0..2 {
                sim.step(ExecMode::Fast);
            }
        }
    }
    let misses = reg.counter("vgpu.plan.misses").get() - misses0;
    assert_eq!(misses, 0, "interleaved f32/f64 rooms must not replan after warmup");
    assert!(
        reg.counter("vgpu.plan.shared_hits").get() - shared0 > 0,
        "fresh rooms adopt plans from the shared map"
    );
}

//! Property tests for the acoustics domain: geometry invariants, material
//! coefficient identities, and simulation stability/passivity under random
//! configurations.

use proptest::prelude::*;
use room_acoustics::materials::{BranchParams, FdCoeffs, Material};
use room_acoustics::{
    BoundaryModel, GridDims, MaterialAssignment, ReferenceSim, RoomModel, RoomShape, SimConfig,
    SimSetup,
};

fn dims_strategy() -> impl Strategy<Value = GridDims> {
    (6usize..16, 6usize..16, 6usize..14).prop_map(|(x, y, z)| GridDims::new(x, y, z))
}

fn shape_strategy() -> impl Strategy<Value = RoomShape> {
    prop_oneof![Just(RoomShape::Box), Just(RoomShape::Dome), Just(RoomShape::LShape)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `nbrs` is consistent with the inside predicate: every inside point
    /// counts exactly its inside 6-neighbours; outside points carry 0.
    #[test]
    fn nbrs_consistent_with_inside(dims in dims_strategy(), shape in shape_strategy()) {
        let m = RoomModel::build(dims, shape, MaterialAssignment::Uniform);
        let plane = dims.nx * dims.ny;
        for idx in 0..dims.total() {
            let (x, y, z) = dims.coords(idx);
            let inside = shape.inside(&dims, x, y, z);
            if !inside {
                prop_assert_eq!(m.nbrs[idx], 0);
                continue;
            }
            let neighbours = [
                idx - 1, idx + 1, idx - dims.nx, idx + dims.nx, idx - plane, idx + plane,
            ];
            let count = neighbours
                .iter()
                .filter(|&&j| {
                    let (a, b, c) = dims.coords(j);
                    shape.inside(&dims, a, b, c)
                })
                .count() as i32;
            prop_assert_eq!(m.nbrs[idx], count, "at ({}, {}, {})", x, y, z);
        }
    }

    /// Boundary indices are exactly the inside points with `nbr < 6`,
    /// sorted and unique.
    #[test]
    fn boundary_indices_characterised(dims in dims_strategy(), shape in shape_strategy()) {
        let m = RoomModel::build(dims, shape, MaterialAssignment::Uniform);
        prop_assert!(m.boundary_indices.windows(2).all(|w| w[0] < w[1]));
        let expected: Vec<i32> = (0..dims.total())
            .filter(|&i| m.nbrs[i] > 0 && m.nbrs[i] < 6)
            .map(|i| i as i32)
            .collect();
        prop_assert_eq!(&m.boundary_indices, &expected);
    }

    /// Material assignment covers every boundary point with a valid id.
    #[test]
    fn materials_valid(
        dims in dims_strategy(),
        shape in shape_strategy(),
        nm in 1usize..5,
    ) {
        let m = RoomModel::build(dims, shape, MaterialAssignment::Striped { num_materials: nm });
        prop_assert_eq!(m.material.len(), m.boundary_indices.len());
        prop_assert!(m.material.iter().all(|&x| (x as usize) < nm));
    }

    /// FD coefficient identities hold for arbitrary passive branches:
    /// `DI + 1/BI = 2a = 4D` and `F = c/2`.
    #[test]
    fn fd_coefficient_identities(
        branches in prop::collection::vec(
            (0.5f64..100.0, 0.0f64..5.0, 0.0f64..5.0),
            1..4
        ),
        beta0 in 0.0f64..0.5,
    ) {
        let mat = Material {
            name: "random".into(),
            beta0,
            branches: branches.iter().map(|&(a, b, c)| BranchParams::new(a, b, c)).collect(),
        };
        let mb = branches.len();
        let co = FdCoeffs::derive(&[mat], mb);
        for (b, &(a, bb, cc)) in branches.iter().enumerate() {
            let i = co.at(0, b);
            prop_assert!((co.di[i] + 1.0 / co.bi[i] - 2.0 * a).abs() < 1e-9);
            prop_assert!((4.0 * co.d[i] - 2.0 * a).abs() < 1e-9);
            prop_assert!((co.f[i] - cc / 2.0).abs() < 1e-12);
            prop_assert!(co.bi[i] > 0.0 && co.bi[i] <= 1.0 / a);
            let _ = bb;
        }
        prop_assert!(co.beta[0] >= beta0);
    }

    /// FD-MM simulations with random passive materials never blow up and
    /// dissipate energy over time (boundary passivity).
    #[test]
    fn random_fd_materials_are_passive(
        seedbranches in prop::collection::vec(
            (0.5f64..60.0, 0.05f64..3.0, 0.01f64..3.0),
            3
        ),
        beta0 in 0.005f64..0.3,
        shape in shape_strategy(),
    ) {
        let mat = Material {
            name: "random".into(),
            beta0,
            branches: seedbranches
                .iter()
                .map(|&(a, b, c)| BranchParams::new(a, b, c))
                .collect(),
        };
        let cfg = SimConfig {
            dims: GridDims::cube(10),
            shape,
            assignment: MaterialAssignment::Uniform,
            boundary: BoundaryModel::FdMm { materials: vec![mat], mb: 3 },
        };
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
        // (3,3,4) lies inside the box, the dome and the L-shape at cube(10)
        sim.impulse(3, 3, 4, 1.0);
        sim.run(40);
        let e1 = sim.energy();
        sim.run(400);
        let e2 = sim.energy();
        prop_assert!(e2.is_finite(), "field blew up");
        prop_assert!(e2 <= e1 * 1.05, "energy grew: {} -> {}", e1, e2);
    }

    /// The wave never escapes the room: points outside stay exactly zero
    /// under any boundary model.
    #[test]
    fn no_leak_outside_room(shape in shape_strategy(), steps in 5usize..40) {
        let dims = GridDims::new(14, 14, 10);
        let cfg = SimConfig::fimm(dims, shape);
        let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
        // (4,4,4) lies inside all three shapes at 14×14×10
        sim.impulse(4, 4, 4, 1.0);
        sim.run(steps);
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    if !shape.inside(&dims, x, y, z) {
                        prop_assert_eq!(sim.sample(x, y, z), 0.0, "leak at ({}, {}, {})", x, y, z);
                    }
                }
            }
        }
    }
}

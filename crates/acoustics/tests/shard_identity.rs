//! Sharded-vs-unsharded identity at awkward partitions (ISSUE 8 S4).
//!
//! The balanced even splits are covered by the unit tests in
//! `shard_sim.rs`; this binary pins the hard cases:
//!
//! * slab counts that do **not** divide the grid evenly (uneven owned
//!   heights, partial final warps in the per-slab boundary launches);
//! * cut planes whose boundary-list offsets are *not* 32-aligned — values
//!   must still be bit-identical (transaction totals legitimately differ,
//!   so those runs assert buffers only);
//! * warp-aligned cuts, where summed per-launch counters **and**
//!   transaction bytes must equal the single-device step exactly;
//! * the non-convex L-shape room, whose boundary points have outside
//!   neighbours inside the bounding box;
//! * everything under `Engine::Differential`, so each launch additionally
//!   cross-checks tree vs tape vs vector engines bit-for-bit.

use room_acoustics::shard_sim::{boundary_cut_planes, sum_step_stats};
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, ShardedSim, SimConfig, SimSetup,
};
use vgpu::{Device, Engine, ExecMode, SlabPartition};

fn diff_devices(n: usize) -> Vec<Device> {
    (0..n)
        .map(|_| {
            let mut d = Device::gtx780();
            d.set_engine(Engine::Differential);
            d
        })
        .collect()
}

fn assert_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
    }
}

/// Runs `steps` in lockstep on a single device and a sharded backend over
/// `part`, comparing fields bitwise each step; when `exact_counters`, also
/// requires summed work-items/loads/stores/flops and transaction bytes to
/// equal the single-device step's.
fn lockstep(
    setup: SimSetup,
    precision: Precision,
    kind: BoundaryKernel,
    part: SlabPartition,
    steps: usize,
    exact_counters: bool,
    what: &str,
) {
    let mut single = HandwrittenSim::new(setup.clone(), precision, kind, diff_devices(1).remove(0));
    let mut sharded = ShardedSim::with_partition(
        setup.clone(),
        precision,
        kind,
        diff_devices(part.device_count()),
        part,
    );
    let dims = setup.dims();
    let (x, y, z) = (dims.nx / 2, dims.ny / 2, dims.nz / 2);
    single.impulse(x, y, z, 1.0);
    sharded.impulse(x, y, z, 1.0);
    let mode = if exact_counters { ExecMode::Model { sample_stride: 1 } } else { ExecMode::Fast };
    for step in 0..steps {
        let (sv, sb) = single.step(mode);
        let shard_stats = sharded.step(mode);
        if exact_counters {
            let (c, txn) = sum_step_stats(&shard_stats);
            let single_c = &sv.counters;
            let single_b = &sb.counters;
            assert_eq!(c.work_items, single_c.work_items + single_b.work_items, "{what}@{step}");
            assert_eq!(
                c.loads_global,
                single_c.loads_global + single_b.loads_global,
                "{what}@{step}: loads"
            );
            assert_eq!(
                c.stores_global,
                single_c.stores_global + single_b.stores_global,
                "{what}@{step}: stores"
            );
            assert_eq!(c.flops, single_c.flops + single_b.flops, "{what}@{step}: flops");
            let single_txn = sv.transaction_bytes.unwrap() + sb.transaction_bytes.unwrap();
            assert_eq!(txn, Some(single_txn), "{what}@{step}: transaction bytes");
        }
        assert_bits(&single.read_curr(), &sharded.read_curr(), what);
    }
}

/// 16³ box, cut at Z=5: owned heights 5 and 11 (nothing divides evenly),
/// and a warp-aligned boundary-list cut — counters and transaction bytes
/// must match the single device exactly, per step.
#[test]
fn uneven_fimm_split_is_bit_and_counter_identical() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::cube(16), RoomShape::Box));
    let cuts = boundary_cut_planes(16, 16 * 16, &s.room.boundary_indices, 2)
        .expect("16³ box has a 32-aligned cut");
    assert_ne!(cuts[1], 8, "the aligned cut is intentionally not the even split");
    let part = SlabPartition::from_cuts(16, cuts);
    lockstep(
        s,
        Precision::Double,
        BoundaryKernel::FiMm { beta_constant: false },
        part,
        6,
        true,
        "uneven FI-MM box 16³",
    );
}

/// Four devices on a 16×16×40 box: non-divisible slab heights with
/// 32-aligned boundary cuts — still exactly counter-identical.
#[test]
fn four_device_tall_box_is_counter_identical() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(16, 16, 40), RoomShape::Box));
    let cuts = boundary_cut_planes(40, 16 * 16, &s.room.boundary_indices, 4)
        .expect("16×16×40 box has 32-aligned 4-way cuts");
    let part = SlabPartition::from_cuts(40, cuts);
    assert!(part.cuts().windows(2).any(|w| w[1] - w[0] != 10), "cuts {:?}", part.cuts());
    lockstep(
        s,
        Precision::Single,
        BoundaryKernel::FiMm { beta_constant: false },
        part,
        4,
        true,
        "4-device FI-MM box 16×16×40",
    );
}

/// A deliberately non-32-aligned cut (Z=7 on the 16³ box): per-warp
/// coalescing shifts, so transaction totals may differ — but the *values*
/// must not. Partial final warps on both slabs' boundary launches.
#[test]
fn non_aligned_cut_stays_bitwise_identical() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::cube(16), RoomShape::Box));
    let part = SlabPartition::from_cuts(16, vec![0, 7, 16]);
    lockstep(
        s,
        Precision::Double,
        BoundaryKernel::FiMm { beta_constant: false },
        part,
        6,
        false,
        "non-aligned FI-MM box 16³",
    );
}

/// FD-MM over an uneven 3-way dome split: the per-slab state stride keeps
/// each lane's state-array congruence (mod 32) even though the slab
/// boundary counts end in partial warps.
#[test]
fn fdmm_uneven_three_way_dome_split_bitwise() {
    let s = SimSetup::new(&SimConfig::fdmm(GridDims::new(14, 12, 13), RoomShape::Dome));
    let part = SlabPartition::from_cuts(13, vec![0, 3, 8, 13]);
    lockstep(
        s,
        Precision::Single,
        BoundaryKernel::FdMm,
        part,
        5,
        false,
        "uneven FD-MM dome 14×12×13",
    );
}

/// The non-convex L-shape: boundary nodes whose missing neighbours point
/// into the cut-out exercise the nbrs/bnbrs tables differently from
/// Box/Dome. Sharded across 3 devices with an uneven split.
#[test]
fn lshape_sharded_probe_bitwise() {
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(16, 14, 11), RoomShape::LShape));
    let part = SlabPartition::from_cuts(11, vec![0, 2, 7, 11]);
    lockstep(
        s,
        Precision::Double,
        BoundaryKernel::FiMm { beta_constant: false },
        part,
        6,
        false,
        "L-shape FI-MM 16×14×11",
    );
}

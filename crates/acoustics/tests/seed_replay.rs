//! Deterministic replays of the checked-in proptest regression seeds.
//!
//! The property suites in `prop_domain.rs` carry persisted failure seeds
//! (an L-shaped room leak at 5 steps, and an FD-MM passivity violation with
//! three identical branches on the L-shape). Proptest only replays a
//! persisted seed when the *same property* runs again; these tests pin the
//! exact failing inputs as plain unit tests so the configurations stay
//! covered even if the property bodies or strategies change.

use room_acoustics::materials::{BranchParams, Material};
use room_acoustics::{
    BoundaryModel, GridDims, MaterialAssignment, ReferenceSim, RoomModel, RoomShape, SimConfig,
    SimSetup,
};

/// Seed: shape = LShape, steps = 5. The field must stay exactly zero
/// outside the room — any leak means the neighbour tables let energy cross
/// the cut-out walls.
#[test]
fn seed_no_leak_lshape_5() {
    let shape = RoomShape::LShape;
    let dims = GridDims::new(14, 14, 10);
    let cfg = SimConfig::fimm(dims, shape);
    let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
    sim.impulse(4, 4, 4, 1.0);
    sim.run(5);
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                if !shape.inside(&dims, x, y, z) {
                    assert_eq!(sim.sample(x, y, z), 0.0, "leak at ({x},{y},{z})");
                }
            }
        }
    }
}

/// Seed: FD branches [(0.5, 0.05, 0.01); 3], beta0 = 0.005, LShape. A
/// passive boundary must not inject energy over a long run.
#[test]
fn seed_fd_passive_lshape() {
    let mat = Material {
        name: "random".into(),
        beta0: 0.005,
        branches: vec![
            BranchParams::new(0.5, 0.05, 0.01),
            BranchParams::new(0.5, 0.05, 0.01),
            BranchParams::new(0.5, 0.05, 0.01),
        ],
    };
    let cfg = SimConfig {
        dims: GridDims::cube(10),
        shape: RoomShape::LShape,
        assignment: MaterialAssignment::Uniform,
        boundary: BoundaryModel::FdMm { materials: vec![mat], mb: 3 },
    };
    let mut sim = ReferenceSim::<f64>::new(SimSetup::new(&cfg));
    sim.impulse(3, 3, 4, 1.0);
    sim.run(40);
    let e1 = sim.energy();
    sim.run(400);
    let e2 = sim.energy();
    assert!(e2.is_finite(), "field blew up");
    assert!(e2 <= e1 * 1.05, "energy grew: {e1} -> {e2}");
}

/// Exhaustive check behind both seeds: over every small grid, each inside
/// node's `nbrs` count must equal the number of its six axis neighbours
/// that are themselves inside, and outside nodes must count zero.
#[test]
fn nbrs_consistent_lshape_all_small_dims() {
    for nx in 6..16 {
        for ny in 6..16 {
            for nz in 6..14 {
                let dims = GridDims::new(nx, ny, nz);
                let shape = RoomShape::LShape;
                let m = RoomModel::build(dims, shape, MaterialAssignment::Uniform);
                let plane = dims.nx * dims.ny;
                for idx in 0..dims.total() {
                    let (x, y, z) = dims.coords(idx);
                    if !shape.inside(&dims, x, y, z) {
                        assert_eq!(m.nbrs[idx], 0, "dims {nx}x{ny}x{nz} at ({x},{y},{z})");
                        continue;
                    }
                    let neighbours =
                        [idx - 1, idx + 1, idx - dims.nx, idx + dims.nx, idx - plane, idx + plane];
                    let count = neighbours
                        .iter()
                        .filter(|&&j| {
                            let (a, b, c) = dims.coords(j);
                            shape.inside(&dims, a, b, c)
                        })
                        .count() as i32;
                    assert_eq!(m.nbrs[idx], count, "dims {nx}x{ny}x{nz} at ({x},{y},{z})");
                }
            }
        }
    }
}

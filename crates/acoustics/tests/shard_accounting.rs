//! Exactly-once transfer accounting for sharded construction (ISSUE 8 S3).
//!
//! The process-wide artifact cache hands every device the *same*
//! `Arc<Prepared>`, and each device re-uploads the replicated coefficient
//! tables. The accounting invariant under audit: per-device
//! `vgpu.xfer.to_gpu.*` totals must neither double-count those replicated
//! uploads nor drop bytes — replicas land under `vgpu.halo.replicate.*`
//! and the `vgpu.xfer.*` totals stay identical to the single-device run.
//!
//! Own test binary: the telemetry counters are process-global, so these
//! deltas must not race with unrelated transfers (tests here serialise on
//! a local mutex and nothing else in this binary moves bytes).

use room_acoustics::{
    BoundaryKernel, GridDims, Precision, RoomShape, ShardedSim, SimConfig, SimSetup,
};
use std::sync::Mutex;
use vgpu::telemetry;
use vgpu::{Device, HaloTotals};

static COUNTERS: Mutex<()> = Mutex::new(());

fn to_gpu() -> (u64, u64) {
    let reg = telemetry::registry();
    (reg.counter("vgpu.xfer.to_gpu.bytes").get(), reg.counter("vgpu.xfer.to_gpu.transfers").get())
}

fn devices(n: usize) -> Vec<Device> {
    (0..n).map(|_| Device::gtx780()).collect()
}

/// Build-time upload accounting, FI-MM: 3 devices vs 1. Grid slabs move
/// through accounted region writes that sum to the whole-grid upload;
/// boundary lists are disjoint slices; β is replicated.
#[test]
fn fimm_replicated_uploads_account_exactly_once() {
    let _g = COUNTERS.lock().unwrap();
    let s = SimSetup::new(&SimConfig::fimm(GridDims::cube(12), RoomShape::Box));
    let kind = BoundaryKernel::FiMm { beta_constant: false };

    let (b0, t0) = to_gpu();
    let h0 = HaloTotals::snapshot();
    let _one = ShardedSim::new(s.clone(), Precision::Double, kind, devices(1));
    let (b1, t1) = to_gpu();
    let h1 = HaloTotals::snapshot();
    let single_bytes = b1 - b0;
    // A single-device build replicates nothing and exchanges nothing.
    assert_eq!(h1.delta_since(&h0).replicate_bytes, 0);
    assert_eq!(h1.delta_since(&h0).bytes, 0);

    let _three = ShardedSim::new(s.clone(), Precision::Double, kind, devices(3));
    let (b2, t2) = to_gpu();
    let h2 = HaloTotals::snapshot();
    // Exactly-once: the sharded build's accounted host→device bytes equal
    // the single-device build's, even though the same Arc'd artifacts and
    // tables serve three devices...
    assert_eq!(b2 - b1, single_bytes, "sharded to_gpu bytes must match single-device");
    // ...with more (smaller) transfers, never fewer.
    assert!(t2 - t1 > t1 - t0, "per-slab region writes split transfers");
    // The β table re-uploads land under vgpu.halo.replicate.*: one per
    // extra device, byte-exact.
    let rep = h2.delta_since(&h1);
    let beta_bytes = (s.betas.len() * 8) as u64;
    assert_eq!(rep.replicate_transfers, 2, "one replica per extra device");
    assert_eq!(rep.replicate_bytes, 2 * beta_bytes);
    assert_eq!(rep.bytes, 0, "construction does no halo exchange");
}

/// Same audit for FD-MM, which replicates four coefficient tables plus β,
/// and a steady-state step check: stepping moves *only* halo bytes — no
/// host transfers, no replicas.
#[test]
fn fdmm_replication_and_steps_keep_xfer_totals_clean() {
    let _g = COUNTERS.lock().unwrap();
    let s = SimSetup::new(&SimConfig::fdmm(GridDims::cube(12), RoomShape::Dome));

    let (b0, _) = to_gpu();
    let h0 = HaloTotals::snapshot();
    let _one = ShardedSim::new(s.clone(), Precision::Single, BoundaryKernel::FdMm, devices(1));
    let (b1, _) = to_gpu();
    let single_bytes = b1 - b0;

    let mut two = ShardedSim::new(s.clone(), Precision::Single, BoundaryKernel::FdMm, devices(2));
    let (b2, _) = to_gpu();
    let h2 = HaloTotals::snapshot();
    assert_eq!(b2 - b1, single_bytes, "sharded to_gpu bytes must match single-device");
    let rep = h2.delta_since(&h0);
    let fa = s.fd.as_ref().expect("FD coefficients");
    let table_elems = {
        let fd = room_acoustics::reference::FdArrays::<f64>::from_coeffs(fa);
        fd.bi.len() + fd.d.len() + fd.di.len() + fd.f.len()
    };
    let expect = (table_elems * 4 + s.betas.len() * 4) as u64; // f32 tables
    assert_eq!(rep.replicate_bytes, expect, "β + 4 FD tables replicated once");
    assert_eq!(rep.replicate_transfers, 5);

    // Steps are device-resident: only the seam planes move, all of it
    // accounted under vgpu.halo.*.
    two.impulse(6, 6, 6, 1.0);
    let (b3, t3) = to_gpu();
    let h3 = HaloTotals::snapshot();
    two.run(4);
    let (b4, t4) = to_gpu();
    let halo = HaloTotals::snapshot().delta_since(&h3);
    assert_eq!((b4, t4), (b3, t3), "steps must not touch vgpu.xfer.*");
    assert_eq!(halo.bytes, 4 * two.halo_bytes_per_step());
    assert_eq!(halo.copies, 4 * 2, "two plane copies per seam per step");
    assert_eq!(halo.replicate_bytes, 0);
}

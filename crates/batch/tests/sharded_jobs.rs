//! `VGPU_DEVICES` routes batch jobs through the Z-slab sharded backend,
//! bit-identically to the single-device path.
//!
//! Own test binary with a single test: `VGPU_DEVICES` is process-global
//! state, so nothing else may read it concurrently.

use batch::{BatchConfig, BatchExecutor, ScenarioGen};
use vgpu::Engine;

#[test]
fn sharded_jobs_are_bit_identical_to_single_device() {
    let scenarios = ScenarioGen::new(99).take(6);
    let config =
        || BatchConfig { threads: 2, engine: Some(Engine::Differential), ..Default::default() };

    std::env::remove_var("VGPU_DEVICES");
    let single = BatchExecutor::new(config()).run_all(scenarios.clone());
    std::env::set_var("VGPU_DEVICES", "3");
    let sharded = BatchExecutor::new(config()).run_all(scenarios);
    std::env::remove_var("VGPU_DEVICES");

    assert_eq!(single.len(), sharded.len());
    for (a, b) in single.iter().zip(&sharded) {
        let label = a.scenario.label();
        let ao = a.outcome.as_ref().unwrap_or_else(|e| panic!("single {label}: {e}"));
        let bo = b.outcome.as_ref().unwrap_or_else(|e| panic!("sharded {label}: {e}"));
        assert_eq!(ao.impulse_response.len(), bo.impulse_response.len());
        for (i, (x, y)) in ao.impulse_response.iter().zip(&bo.impulse_response).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}: impulse response diverges at step {i}: {x} vs {y}"
            );
        }
        assert_eq!(ao.energy.to_bits(), bo.energy.to_bits(), "{label}: energy");
        assert!(bo.verifier_clean, "{label}: slab kernels must verify clean");
        // The sharded job issues at least one launch per device per step.
        assert!(bo.launches >= ao.launches, "{label}: launches {} < {}", bo.launches, ao.launches);
    }
}

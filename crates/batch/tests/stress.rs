//! Threaded stress: parallel jobs sharing the process-wide artifact cache
//! and counter registry must be bit-identical to a serial run of the same
//! scenarios, with every launch under the differential engine (tree, tape,
//! and vector legs asserted bit-equal inside each launch).
//!
//! The tests serialise on [`COUNTERS`] because artifact/plan counters are
//! process-global and both tests read deltas.

use batch::{BatchConfig, BatchExecutor, ScenarioGen};
use std::sync::Mutex;
use vgpu::{telemetry, Engine};

static COUNTERS: Mutex<()> = Mutex::new(());

fn diff_config(threads: usize) -> BatchConfig {
    BatchConfig { threads, engine: Some(Engine::Differential), ..Default::default() }
}

#[test]
fn parallel_batch_is_bit_identical_to_serial_under_diff() {
    let _guard = COUNTERS.lock().unwrap();
    let scenarios = ScenarioGen::new(2024).take(10);

    let serial = BatchExecutor::new(diff_config(1)).run_all(scenarios.clone());
    let parallel = BatchExecutor::new(diff_config(4)).run_all(scenarios);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let label = s.scenario.label();
        let so = s.outcome.as_ref().unwrap_or_else(|e| panic!("serial {label}: {e}"));
        let po = p.outcome.as_ref().unwrap_or_else(|e| panic!("parallel {label}: {e}"));
        // Bit-identical, not approximately equal: same kernels, same plans,
        // same engines — threading must not change a single ulp.
        assert!(
            so.impulse_response == po.impulse_response,
            "{label}: parallel impulse response diverged from serial"
        );
        assert_eq!(so.energy.to_bits(), po.energy.to_bits(), "{label}: energy diverged");
        assert!(
            so.impulse_response.iter().any(|v| *v != 0.0),
            "{label}: impulse response is silent — mic never heard the source"
        );
        assert!(so.verifier_clean, "{label}: static verifier flagged a shipped kernel");
    }
}

#[test]
fn concurrent_rooms_share_compiled_artifacts() {
    let _guard = COUNTERS.lock().unwrap();
    let reg = telemetry::registry();
    let hits0 = reg.counter("vgpu.artifact.hits").get();
    let misses0 = reg.counter("vgpu.artifact.misses").get();

    let results = BatchExecutor::new(diff_config(3)).run_all(ScenarioGen::new(7).take(16));
    for r in &results {
        assert!(r.outcome.is_ok(), "{}: {:?}", r.scenario.label(), r.outcome);
    }

    let hits = reg.counter("vgpu.artifact.hits").get() - hits0;
    let misses = reg.counter("vgpu.artifact.misses").get() - misses0;
    // 16 rooms × (volume + boundary + the executor's verifier lookups):
    // only the first sighting of each kernel class may miss.
    assert!(
        hits as f64 / (hits + misses) as f64 >= 0.8,
        "cross-room artifact hit rate too low: {hits} hits / {misses} misses"
    );
}

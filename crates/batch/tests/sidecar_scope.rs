//! Regression: per-job telemetry sidecars must be *job-scoped*.
//!
//! The telemetry event buffer is process-global, so two jobs running on
//! different worker threads interleave their events in it. Each job's device
//! records on its own lazily-allocated tracks, and the sidecar writer
//! filters the shared buffer down to those tracks — a sidecar must never
//! carry another job's kernel events, no matter how the scheduler
//! interleaved the work.

use batch::{BatchConfig, BatchExecutor, ScenarioGen};
use serde_json::Value;
use std::collections::BTreeSet;
use vgpu::telemetry;

#[test]
fn two_thread_sidecars_carry_only_their_own_jobs_events() {
    // Enable event recording without a sink (events stay in the buffer).
    telemetry::set_mode(telemetry::TraceMode::Json);
    let dir = std::env::temp_dir().join(format!("vgpu_sidecar_scope_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = BatchConfig { threads: 2, sidecar_dir: Some(dir.clone()), ..Default::default() };
    let results = BatchExecutor::new(cfg).run_all(ScenarioGen::new(99).take(6));

    let mut all_tracks: BTreeSet<u64> = BTreeSet::new();
    for r in &results {
        let label = r.scenario.label();
        let out = r.outcome.as_ref().unwrap_or_else(|e| panic!("{label}: {e}"));
        let path = out.sidecar.as_ref().unwrap_or_else(|| panic!("{label}: no sidecar written"));
        let text = std::fs::read_to_string(path).unwrap();
        let doc: Value = serde_json::from_str(&text).unwrap();

        // Each job ran on its own device → its own fresh tracks; the sets
        // must be pairwise disjoint across jobs.
        let tracks: BTreeSet<u64> = doc
            .pointer("/trace/tracks")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{label}: sidecar has no trace.tracks"))
            .iter()
            .map(|t| t.as_u64().unwrap())
            .collect();
        assert!(!tracks.is_empty(), "{label}: tracing was on but no tracks recorded");
        assert!(
            all_tracks.is_disjoint(&tracks),
            "{label}: sidecar shares tracks with another job's sidecar"
        );
        all_tracks.extend(&tracks);

        // Every embedded event must sit on one of this job's tracks…
        let events = doc
            .pointer("/trace/events")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{label}: sidecar has no trace.events"));
        let mut kernel_events = 0u64;
        let mut oracle_events = 0u64;
        for ev in events {
            let track = ev
                .pointer("/track")
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("{label}: embedded event without a track: {ev:?}"));
            assert!(tracks.contains(&track), "{label}: foreign event leaked into sidecar");
            if ev.get("ev").and_then(Value::as_str) == Some("kernel") {
                // Under VGPU_ENGINE=diff every launch additionally traces
                // its tree-walker oracle leg as its own kernel span; only
                // the logical launches count against the job's tally.
                if ev.get("engine").and_then(Value::as_str) == Some("tree(oracle)") {
                    oracle_events += 1;
                } else {
                    kernel_events += 1;
                }
            }
        }
        // …and the kernel-event count must equal the launches this job
        // itself issued. An unfiltered global buffer would exceed it as
        // soon as two jobs overlap.
        assert_eq!(
            doc.pointer("/trace/kernel_events").and_then(Value::as_u64),
            Some(kernel_events + oracle_events),
            "{label}: kernel_events disagrees with embedded events"
        );
        assert_eq!(
            kernel_events, out.launches as u64,
            "{label}: sidecar kernel events != this job's launches"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! # batch — the multi-room simulation service
//!
//! Runs many randomized room-acoustics scenarios concurrently on the
//! virtual GPU (DESIGN.md §10):
//!
//! * [`scenario`] — seeded generator of parameterized rooms (box, dome,
//!   L-shape; FI-MM/FD-MM boundaries; single/double precision; randomized
//!   dimensions, materials, source and microphone positions);
//! * [`executor`] — a job-queue API over a pool of worker threads, one
//!   [`vgpu::Device`] per job, with per-job telemetry sidecars and per-job
//!   fallback-record scoping.
//!
//! All jobs share the process-wide compiled-artifact cache
//! ([`vgpu::artifact`]): rooms with identical kernels (same boundary model
//! and precision) share one prepared kernel, one launch plan per binding
//! signature, and one static-verifier verdict, no matter which worker or
//! device runs them.
//!
//! ```no_run
//! use batch::{BatchConfig, BatchExecutor, ScenarioGen};
//!
//! let exec = BatchExecutor::new(BatchConfig::default());
//! let results = exec.run_all(ScenarioGen::new(42).take(8));
//! for r in &results {
//!     let out = r.outcome.as_ref().expect("job succeeds");
//!     println!("{}: energy {:.3e}", r.scenario.label(), out.energy);
//! }
//! ```

pub mod executor;
pub mod scenario;

pub use executor::{BatchConfig, BatchExecutor, JobHandle, JobOutput, JobResult};
pub use scenario::{Boundary, Scenario, ScenarioGen};

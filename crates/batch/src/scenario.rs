//! Parameterized room scenarios and their seeded random generator.
//!
//! A [`Scenario`] is everything one batch job needs: room geometry
//! (box/dome/L-shape with randomized dimensions), a boundary model with
//! material assignment, run precision, step count, and source/microphone
//! positions guaranteed to lie inside the room. [`ScenarioGen`] derives all
//! of it deterministically from a seed, so a batch run names its workload
//! with one number and a differential re-run reproduces it exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use room_acoustics::{
    BoundaryKernel, GridDims, MaterialAssignment, Precision, RoomShape, SimConfig,
};

/// Boundary model flavour of a scenario (the two multi-material kernels the
/// virtual-GPU backend implements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Frequency-independent multi-material (Listing 3). `beta_constant`
    /// selects the hand-tuned constant-memory β variant.
    FiMm {
        /// β table in `__constant` space.
        beta_constant: bool,
    },
    /// Frequency-dependent multi-material (Listing 4).
    FdMm,
}

impl Boundary {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Boundary::FiMm { beta_constant: false } => "fimm",
            Boundary::FiMm { beta_constant: true } => "fimm-const",
            Boundary::FdMm => "fdmm",
        }
    }
}

/// One room simulation job, fully specified.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Generator-assigned sequence number (stable job id within a batch).
    pub id: u64,
    /// Grid dimensions (with halo).
    pub dims: GridDims,
    /// Room shape.
    pub shape: RoomShape,
    /// Material assignment strategy.
    pub assignment: MaterialAssignment,
    /// Boundary model.
    pub boundary: Boundary,
    /// Run precision.
    pub precision: Precision,
    /// Leap-frog steps to run.
    pub steps: usize,
    /// Impulse source position (inside the room).
    pub source: (usize, usize, usize),
    /// Microphone position (inside the room).
    pub mic: (usize, usize, usize),
    /// Impulse amplitude.
    pub amp: f64,
}

impl Scenario {
    /// The reference-simulation configuration this scenario describes.
    pub fn config(&self) -> SimConfig {
        let mut cfg = match self.boundary {
            Boundary::FiMm { .. } => SimConfig::fimm(self.dims, self.shape),
            Boundary::FdMm => SimConfig::fdmm(self.dims, self.shape),
        };
        cfg.assignment = self.assignment;
        cfg
    }

    /// The virtual-GPU boundary kernel to run it with.
    pub fn boundary_kernel(&self) -> BoundaryKernel {
        match self.boundary {
            Boundary::FiMm { beta_constant } => BoundaryKernel::FiMm { beta_constant },
            Boundary::FdMm => BoundaryKernel::FdMm,
        }
    }

    /// Compact human-readable label, e.g. `job3 LShape fdmm f64 14x12x16`.
    pub fn label(&self) -> String {
        format!(
            "job{} {:?} {} {} {}x{}x{}",
            self.id,
            self.shape,
            self.boundary.label(),
            match self.precision {
                Precision::Single => "f32",
                Precision::Double => "f64",
            },
            self.dims.nx,
            self.dims.ny,
            self.dims.nz
        )
    }
}

/// Seeded scenario generator.
pub struct ScenarioGen {
    rng: StdRng,
    next_id: u64,
}

impl ScenarioGen {
    /// A generator whose whole output stream is a function of `seed`.
    pub fn new(seed: u64) -> ScenarioGen {
        ScenarioGen { rng: StdRng::seed_from_u64(seed), next_id: 0 }
    }

    /// Draws the next scenario.
    pub fn next_scenario(&mut self) -> Scenario {
        let rng = &mut self.rng;
        let shape = match rng.gen_range(0usize..3) {
            0 => RoomShape::Box,
            1 => RoomShape::Dome,
            _ => RoomShape::LShape,
        };
        // Small rooms keep a 64-job batch fast while still exercising
        // non-trivial boundary sets on every shape.
        let dims = GridDims::new(
            rng.gen_range(9usize..16),
            rng.gen_range(9usize..16),
            rng.gen_range(9usize..16),
        );
        let assignment = match rng.gen_range(0usize..3) {
            0 => MaterialAssignment::Uniform,
            1 => MaterialAssignment::FloorWallsCeiling,
            _ => MaterialAssignment::Striped { num_materials: 3 },
        };
        let boundary = match rng.gen_range(0usize..3) {
            0 => Boundary::FiMm { beta_constant: false },
            1 => Boundary::FiMm { beta_constant: true },
            _ => Boundary::FdMm,
        };
        let precision = if rng.gen_bool(0.5) { Precision::Single } else { Precision::Double };
        let steps = rng.gen_range(16usize..33);
        let source = sample_inside(rng, &dims, &shape);
        let mic = sample_inside(rng, &dims, &shape);
        let amp = rng.gen_range(0.5f64..2.0);
        let id = self.next_id;
        self.next_id += 1;
        Scenario { id, dims, shape, assignment, boundary, precision, steps, source, mic, amp }
    }

    /// Draws `n` scenarios.
    pub fn take(&mut self, n: usize) -> Vec<Scenario> {
        (0..n).map(|_| self.next_scenario()).collect()
    }
}

/// Rejection-samples a voxel strictly inside the room. Every shape keeps a
/// solid interior column near the origin-side corner, so this terminates
/// fast; the dome's curved shell is why plain halo-clamping is not enough.
fn sample_inside(rng: &mut StdRng, dims: &GridDims, shape: &RoomShape) -> (usize, usize, usize) {
    loop {
        let x = rng.gen_range(1..dims.nx - 1);
        let y = rng.gen_range(1..dims.ny - 1);
        let z = rng.gen_range(1..dims.nz - 1);
        if shape.inside(dims, x, y, z) {
            return (x, y, z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = ScenarioGen::new(7).take(16);
        let b = ScenarioGen::new(7).take(16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        let c = ScenarioGen::new(8).take(16);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different seeds should produce different batches"
        );
    }

    #[test]
    fn source_and_mic_are_inside_the_room() {
        for sc in ScenarioGen::new(42).take(64) {
            for (x, y, z) in [sc.source, sc.mic] {
                assert!(
                    sc.shape.inside(&sc.dims, x, y, z),
                    "{}: ({x},{y},{z}) must be inside",
                    sc.label()
                );
            }
        }
    }

    #[test]
    fn batch_mixes_shapes_boundaries_and_precisions() {
        let batch = ScenarioGen::new(1).take(64);
        assert!(batch.iter().any(|s| s.shape == RoomShape::Dome));
        assert!(batch.iter().any(|s| s.shape == RoomShape::LShape));
        assert!(batch.iter().any(|s| s.boundary == Boundary::FdMm));
        assert!(batch.iter().any(|s| matches!(s.boundary, Boundary::FiMm { .. })));
        assert!(batch.iter().any(|s| s.precision == Precision::Single));
        assert!(batch.iter().any(|s| s.precision == Precision::Double));
    }
}

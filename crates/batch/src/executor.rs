//! The job-queue executor: worker threads draining a scenario queue.
//!
//! [`BatchExecutor::submit`] enqueues a [`Scenario`] and returns a
//! [`JobHandle`]; a fixed pool of worker threads pops jobs, runs each room
//! on its own [`vgpu::Device`], and delivers a [`JobResult`] (impulse
//! response at the microphone plus run stats) through the handle. Workers
//! never share mutable simulation state — what they *do* share is the
//! process-wide artifact cache ([`vgpu::artifact`]), so every room after
//! the first of a given kernel class skips compilation, launch planning,
//! and static verification.
//!
//! Each job starts with [`vgpu::exec::reset_fallback_dedupe`], so fallback
//! and divergence audit records are deduplicated *per job*, not once per
//! process: the first job of a long batch cannot swallow later jobs'
//! records (the audit counters count every launch regardless).
//!
//! Panics inside a job (including the differential engine's bit-exactness
//! assertions) are caught and reported as that job's error string — one bad
//! room fails its job, not the batch.

use crate::scenario::Scenario;
use room_acoustics::{handwritten, HandwrittenSim, SimSetup};
use serde_json::json;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use vgpu::{Device, Engine, ExecMode};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads draining the queue.
    pub threads: usize,
    /// Engine override for every job's device (`None` → `VGPU_ENGINE`).
    pub engine: Option<Engine>,
    /// Execution mode for every launch.
    pub mode: ExecMode,
    /// Enable the per-launch write-race detector.
    pub race_check: bool,
    /// When set, write a per-job telemetry sidecar JSON into this
    /// directory (`job_<id>.telemetry.json`).
    pub sidecar_dir: Option<PathBuf>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            threads: 2,
            engine: None,
            mode: ExecMode::Fast,
            race_check: false,
            sidecar_dir: None,
        }
    }
}

/// What a completed job returns.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Pressure at the microphone after each step.
    pub impulse_response: Vec<f64>,
    /// Field energy after the last step.
    pub energy: f64,
    /// Wall-clock of the step loop in milliseconds.
    pub wall_ms: f64,
    /// Kernel launches issued (volume + boundary, all steps).
    pub launches: usize,
    /// True when the static verifier proved both kernels clean (memoized
    /// process-wide per kernel artifact).
    pub verifier_clean: bool,
    /// Path of the telemetry sidecar, when one was written.
    pub sidecar: Option<PathBuf>,
}

/// Result delivered through a [`JobHandle`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The scenario the job ran.
    pub scenario: Scenario,
    /// Output, or the panic/error message of a failed job.
    pub outcome: Result<JobOutput, String>,
}

/// Waitable handle to one submitted job.
pub struct JobHandle {
    rx: Receiver<JobResult>,
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().expect("worker delivers a result for every job")
    }
}

type Job = (Scenario, Sender<JobResult>);

/// Multi-threaded batch executor (see module docs).
pub struct BatchExecutor {
    cfg: BatchConfig,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchExecutor {
    /// Starts `cfg.threads` workers.
    pub fn new(cfg: BatchConfig) -> BatchExecutor {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let rx = rx.clone();
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("batch-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the pop, not the job.
                        let job = rx.lock().unwrap().recv();
                        match job {
                            Ok((scenario, done)) => {
                                let reg = vgpu::telemetry::registry();
                                reg.gauge("batch.queue.depth").add(-1);
                                let in_flight = reg.gauge("batch.jobs.in_flight");
                                in_flight.add(1);
                                let t0 = Instant::now();
                                let result = run_job(&cfg, scenario);
                                record_job_latency(&result.scenario, t0.elapsed());
                                in_flight.add(-1);
                                // A dropped handle just means nobody waits.
                                let _ = done.send(result);
                            }
                            Err(_) => break, // queue closed: executor dropped
                        }
                    })
                    .expect("spawn batch worker")
            })
            .collect();
        BatchExecutor { cfg, tx: Some(tx), workers }
    }

    /// The configuration the executor was started with.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Enqueues a scenario; returns the handle its result arrives on.
    pub fn submit(&self, scenario: Scenario) -> JobHandle {
        let (done_tx, done_rx) = channel();
        vgpu::telemetry::registry().gauge("batch.queue.depth").add(1);
        self.tx
            .as_ref()
            .expect("executor is running")
            .send((scenario, done_tx))
            .expect("workers are alive while the executor exists");
        JobHandle { rx: done_rx }
    }

    /// Submits every scenario, then waits for all of them (results in
    /// submission order, regardless of completion order).
    pub fn run_all(&self, scenarios: Vec<Scenario>) -> Vec<JobResult> {
        let handles: Vec<JobHandle> = scenarios.into_iter().map(|s| self.submit(s)).collect();
        handles.into_iter().map(JobHandle::wait).collect()
    }
}

impl Drop for BatchExecutor {
    fn drop(&mut self) {
        self.tx.take(); // close the queue → workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Records one completed job's end-to-end latency into the unlabeled
/// `batch.job.latency_us` histogram and its class-labeled variant
/// `batch.job.latency_us.<boundary>.<precision>` (the registry keys metrics
/// by name, so the label rides in the name). Snapshots expose p50/p95/p99
/// per class.
fn record_job_latency(sc: &Scenario, elapsed: std::time::Duration) {
    let us = elapsed.as_micros() as u64;
    let reg = vgpu::telemetry::registry();
    reg.histogram("batch.job.latency_us").record(us);
    reg.histogram(&format!(
        "batch.job.latency_us.{}.{}",
        sc.boundary.label(),
        sc.precision.label()
    ))
    .record(us);
}

/// Runs one job on the calling worker thread, converting panics (e.g. the
/// differential engine's bit-exactness assertion) into job errors.
fn run_job(cfg: &BatchConfig, scenario: Scenario) -> JobResult {
    // Job-scoped audit dedupe: this job's fallback/divergence records are
    // fresh even if an earlier job on this worker reported the same cause.
    vgpu::exec::reset_fallback_dedupe();
    let outcome = catch_unwind(AssertUnwindSafe(|| run_sim(cfg, &scenario))).unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "job panicked".to_string());
        Err(format!("panic: {msg}"))
    });
    JobResult { scenario, outcome }
}

fn run_sim(cfg: &BatchConfig, sc: &Scenario) -> Result<JobOutput, String> {
    // `VGPU_DEVICES > 1` routes the job through the Z-slab sharded backend
    // (bit-identical to this single-device path; see DESIGN.md §12).
    let shards = vgpu::device_count_from_env();
    if shards > 1 {
        return run_sim_sharded(cfg, sc, shards);
    }
    let setup = SimSetup::new(&sc.config());
    let mut device = Device::gtx780();
    if let Some(engine) = cfg.engine {
        device.set_engine(engine);
    }
    device.set_race_check(cfg.race_check);

    // Static-verification gate through the memoized verdict cache: the
    // lookups below hit the same artifacts `HandwrittenSim::new` compiles,
    // so a whole batch pays the verifier once per distinct kernel.
    let real = sc.precision.kind();
    let mut verifier_clean = true;
    let volume = vgpu::compile_cached(&handwritten::volume_kernel().resolve_real(real))
        .map_err(|e| format!("volume kernel: {e:?}"))?;
    let boundary_kernel = match sc.boundary_kernel() {
        room_acoustics::BoundaryKernel::FiMm { beta_constant } => {
            handwritten::fimm_kernel(beta_constant).resolve_real(real)
        }
        room_acoustics::BoundaryKernel::FdMm => handwritten::fdmm_kernel().resolve_real(real),
    };
    let boundary =
        vgpu::compile_cached(&boundary_kernel).map_err(|e| format!("boundary kernel: {e:?}"))?;
    for prep in [&volume, &boundary] {
        if let Some(report) = vgpu::verify_cached(prep) {
            verifier_clean &= report.is_clean();
        }
    }

    let mut sim = HandwrittenSim::new(setup, sc.precision, sc.boundary_kernel(), device);
    let (sx, sy, sz) = sc.source;
    sim.impulse(sx, sy, sz, sc.amp);

    let (mx, my, mz) = sc.mic;
    let t0 = Instant::now();
    let mut impulse_response = Vec::with_capacity(sc.steps);
    for _ in 0..sc.steps {
        sim.step(cfg.mode);
        impulse_response.push(sim.sample(mx, my, mz));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let energy = sim.energy();
    let launches = sim.device.events().len();
    let sidecar = cfg.sidecar_dir.as_ref().and_then(|dir| {
        write_sidecar(dir, sc, &sim, energy, wall_ms, verifier_clean)
            .map_err(|e| eprintln!("sidecar for {}: {e}", sc.label()))
            .ok()
    });

    Ok(JobOutput { impulse_response, energy, wall_ms, launches, verifier_clean, sidecar })
}

/// The sharded leg of [`run_sim`]: the same scenario over `shards` Z-slab
/// devices ([`room_acoustics::ShardedSim`]). The verifier gate covers the
/// gid-shifted slab volume kernel instead of the whole-grid one; sidecars
/// are skipped (per-kernel attribution spans several devices — the
/// process-wide profiler still sees every launch).
fn run_sim_sharded(cfg: &BatchConfig, sc: &Scenario, shards: usize) -> Result<JobOutput, String> {
    let setup = SimSetup::new(&sc.config());
    let devices: Vec<Device> = (0..shards)
        .map(|_| {
            let mut d = Device::gtx780();
            if let Some(engine) = cfg.engine {
                d.set_engine(engine);
            }
            d.set_race_check(cfg.race_check);
            d
        })
        .collect();

    let real = sc.precision.kind();
    let mut verifier_clean = true;
    let volume = vgpu::compile_cached(&handwritten::volume_slab_kernel().resolve_real(real))
        .map_err(|e| format!("slab volume kernel: {e:?}"))?;
    let boundary_kernel = match sc.boundary_kernel() {
        room_acoustics::BoundaryKernel::FiMm { beta_constant } => {
            handwritten::fimm_kernel(beta_constant).resolve_real(real)
        }
        room_acoustics::BoundaryKernel::FdMm => handwritten::fdmm_kernel().resolve_real(real),
    };
    let boundary =
        vgpu::compile_cached(&boundary_kernel).map_err(|e| format!("boundary kernel: {e:?}"))?;
    for prep in [&volume, &boundary] {
        if let Some(report) = vgpu::verify_cached(prep) {
            verifier_clean &= report.is_clean();
        }
    }

    let mut sim =
        room_acoustics::ShardedSim::new(setup, sc.precision, sc.boundary_kernel(), devices);
    let (sx, sy, sz) = sc.source;
    sim.impulse(sx, sy, sz, sc.amp);

    let (mx, my, mz) = sc.mic;
    let t0 = Instant::now();
    let mut impulse_response = Vec::with_capacity(sc.steps);
    for _ in 0..sc.steps {
        sim.step(cfg.mode);
        impulse_response.push(sim.sample(mx, my, mz));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let energy = sim.energy();
    let launches = sim.devices().iter().map(|d| d.events().len()).sum();
    Ok(JobOutput { impulse_response, energy, wall_ms, launches, verifier_clean, sidecar: None })
}

/// Writes the per-job telemetry sidecar: scenario parameters, per-kernel
/// launch totals from this job's device event log, and the process-wide
/// artifact-cache occupancy at completion time.
fn write_sidecar(
    dir: &std::path::Path,
    sc: &Scenario,
    sim: &HandwrittenSim,
    energy: f64,
    wall_ms: f64,
    verifier_clean: bool,
) -> std::io::Result<PathBuf> {
    #[derive(Default)]
    struct KernelAgg {
        launches: u64,
        wall_us: f64,
        flops: u64,
        bytes_loaded: u64,
        bytes_stored: u64,
        modeled_us: f64,
    }
    let mut kernels: BTreeMap<String, KernelAgg> = BTreeMap::new();
    for ev in sim.device.events() {
        let agg = kernels.entry(ev.name.clone()).or_default();
        agg.launches += 1;
        agg.wall_us += ev.stats.wall.as_secs_f64() * 1e6;
        agg.flops += ev.stats.counters.flops;
        agg.bytes_loaded += ev.stats.counters.bytes_loaded;
        agg.bytes_stored += ev.stats.counters.bytes_stored;
        agg.modeled_us += ev.modeled_s.unwrap_or(0.0) * 1e6;
    }
    let (compiled, plans, verdicts) = vgpu::artifact::cache_sizes();
    // Job-scoped trace attribution: the process-wide telemetry buffer mixes
    // events from every concurrently-running job, but each job's device
    // records on its own tracks — filter to them so a sidecar never carries
    // another job's kernel events. Empty when tracing is off (the device
    // then allocated no tracks).
    let tracks = sim.device.telemetry_tracks();
    let trace_events: Vec<vgpu::telemetry::Event> = match tracks {
        Some(tracks) => vgpu::telemetry::events_snapshot()
            .into_iter()
            .filter(|ev| ev.track().is_some_and(|t| tracks.contains(&t)))
            .collect(),
        None => Vec::new(),
    };
    let doc = json!({
        "job": sc.id,
        "label": sc.label(),
        "scenario": {
            "dims": [sc.dims.nx, sc.dims.ny, sc.dims.nz],
            "shape": format!("{:?}", sc.shape),
            "boundary": sc.boundary.label(),
            "precision": sc.precision.label(),
            "steps": sc.steps,
            "source": [sc.source.0, sc.source.1, sc.source.2],
            "mic": [sc.mic.0, sc.mic.1, sc.mic.2],
            "amp": sc.amp,
        },
        "result": {
            "energy": energy,
            "wall_ms": wall_ms,
            "verifier_clean": verifier_clean,
        },
        "kernels": kernels.iter().map(|(name, a)| json!({
            "name": name,
            "launches": a.launches,
            "wall_us": a.wall_us,
            "flops": a.flops,
            "bytes_loaded": a.bytes_loaded,
            "bytes_stored": a.bytes_stored,
            "modeled_us": a.modeled_us,
        })).collect::<Vec<_>>(),
        "artifact_cache": {
            "compiled": compiled,
            "plans": plans,
            "verdicts": verdicts,
        },
        // Only this job's tracks: events from concurrently-running jobs are
        // filtered out (they live on their own devices' tracks).
        "trace": {
            "tracks": tracks.map(|ts| ts.iter().map(|t| t.0).collect::<Vec<u32>>())
                .unwrap_or_default(),
            "kernel_events": trace_events
                .iter()
                .filter(|e| matches!(e, vgpu::telemetry::Event::Kernel { .. }))
                .count(),
            "events": trace_events,
        },
    });
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("job_{}.telemetry.json", sc.id));
    let text = serde_json::to_string_pretty(&doc).map_err(std::io::Error::from)?;
    std::fs::write(&path, text)?;
    Ok(path)
}

//! Differential cross-check: static race verdicts vs the dynamic
//! race-check oracle.
//!
//! The static write-race detector proves every shipped kernel's store
//! maps disjoint across work-items (see `verify::suite`). Those proofs
//! rest on assumed data invariants (`boundaryIndices` distinct, interior
//! masks); this harness checks the other side of the bargain by running
//! every simulation backend with `Device::set_race_check(true)` — a
//! statically-proven kernel must never produce a dynamic race report,
//! and the deliberately racy fixture must be flagged by *both* levels
//! with matching element and site provenance.

use lift::prelude::*;
use room_acoustics::geometry::{GridDims, RoomShape};
use room_acoustics::sim::{SimConfig, SimSetup};
use room_acoustics::vgpu_sim::{BoundaryKernel, HandwrittenSim, Precision};
use verify::fixtures;
use vgpu::{Arg, Device, ExecMode};

fn race_device() -> Device {
    let mut dev = Device::gtx780();
    dev.set_race_check(true);
    dev
}

/// Every hand-written backend, both room shapes, stepped under the
/// dynamic detector. A detected race panics inside `step` (the sims
/// unwrap launch results), failing the test.
#[test]
fn handwritten_suite_is_dynamically_race_free() {
    for shape in [RoomShape::Box, RoomShape::LShape] {
        for boundary in [
            BoundaryKernel::FiMm { beta_constant: false },
            BoundaryKernel::FiMm { beta_constant: true },
            BoundaryKernel::FdMm,
        ] {
            let cfg = match boundary {
                BoundaryKernel::FdMm => SimConfig::fdmm(GridDims::cube(8), shape),
                _ => SimConfig::fimm(GridDims::cube(8), shape),
            };
            let setup = SimSetup::new(&cfg);
            let mut sim = HandwrittenSim::new(setup, Precision::Single, boundary, race_device());
            for _ in 0..3 {
                sim.step(ExecMode::Fast);
            }
        }
    }
}

/// Every LIFT-generated backend under the dynamic detector.
#[test]
fn generated_suite_is_dynamically_race_free() {
    use lift_acoustics::runner::{FiSingleLift, LiftBoundary, LiftSim};
    for shape in [RoomShape::Box, RoomShape::LShape] {
        for boundary in [LiftBoundary::FiMm, LiftBoundary::FdMm] {
            let cfg = match boundary {
                LiftBoundary::FdMm => SimConfig::fdmm(GridDims::cube(8), shape),
                LiftBoundary::FiMm => SimConfig::fimm(GridDims::cube(8), shape),
            };
            let setup = SimSetup::new(&cfg);
            let mut sim = LiftSim::new(setup, Precision::Double, boundary, race_device());
            for _ in 0..3 {
                sim.step(ExecMode::Fast);
            }
        }
        let setup = SimSetup::new(&SimConfig::fimm(GridDims::cube(8), shape));
        let mut sim = FiSingleLift::new(setup, Precision::Single, 0.1, race_device());
        for _ in 0..3 {
            sim.step(ExecMode::Fast);
        }
    }
}

/// The racy fixture is caught by both levels, and their provenance
/// agrees: the static verdict names element 3 at store site 0, and the
/// dynamic report must name the same element and site.
#[test]
fn racy_fixture_flagged_statically_and_dynamically() {
    let entries = fixtures::entries();
    let racy = entries.iter().find(|e| e.kernel.name == "fixture_racy").unwrap();
    let report = lift::verify::verify_kernel(&racy.kernel, &racy.assumptions);
    let static_race = report
        .races
        .iter()
        .find(|r| matches!(&r.verdict, lift::verify::RaceVerdict::Definite { element } if element == "3"))
        .expect("static detector proves the collision");
    assert_eq!(static_race.sites, vec![0]);

    let mut dev = race_device();
    let prep = dev.compile(&racy.kernel).expect("fixture compiles");
    let out = dev.create_buffer(ScalarKind::F32, 32);
    let err = dev
        .launch(&prep, &[Arg::Buf(out), Arg::Val(Value::I32(32))], &[32], ExecMode::Fast)
        .expect_err("dynamic detector reports the race");
    let msg = err.to_string();
    assert!(msg.contains("element 3"), "dynamic report names the element: {msg}");
    assert!(msg.contains("site(s) [0]"), "dynamic report names the site: {msg}");
}

/// The compiled engine must *refuse* proof-licensed elision for the OOB
/// fixture: no contract is registered for it, the launch-concrete facts
/// cannot prove the off-the-end store, so the site stays on the checked
/// path (`vgpu.compiled.sites_checked` grows) and the overrun dies on the
/// release-mode bounds assert — a clean panic, not an unchecked write.
#[test]
fn oob_fixture_refuses_proof_licensed_elision() {
    let entries = fixtures::entries();
    let oob = entries.iter().find(|e| e.kernel.name == "fixture_oob").unwrap();
    let reg = vgpu::telemetry::registry();
    let checked0 = reg.counter("vgpu.compiled.sites_checked").get();
    let proven0 = reg.counter("vgpu.compiled.sites_proven").get();

    let mut dev = Device::gtx780();
    dev.set_engine(vgpu::Engine::Compiled);
    let prep = dev.compile(&oob.kernel).expect("fixture compiles");
    let out = dev.create_buffer(ScalarKind::F32, 32);
    // gid 31 survives the `gid >= N` guard and stores out[32] — one past
    // the end. The checked path must catch it.
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ =
            dev.launch(&prep, &[Arg::Buf(out), Arg::Val(Value::I32(32))], &[32], ExecMode::Fast);
    }))
    .expect_err("the overrun must panic on the dynamic check");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("store out of bounds"), "clean bounds panic, got: {msg}");

    let checked = reg.counter("vgpu.compiled.sites_checked").get() - checked0;
    let proven = reg.counter("vgpu.compiled.sites_proven").get() - proven0;
    assert!(checked > 0, "the unprovable store site must keep its check");
    assert_eq!(proven, 0, "nothing about this launch is provable without a contract");
}

/// The OOB fixture is a *static-only* catch: the release-mode
/// interpreter trusts the bounds contract (its checks are debug
/// assertions), which is exactly why the bounds checker must flag the
/// site rather than rely on the dynamic oracle.
#[test]
fn oob_fixture_is_flagged_statically() {
    let entries = fixtures::entries();
    let oob = entries.iter().find(|e| e.kernel.name == "fixture_oob").unwrap();
    let report = lift::verify::verify_kernel(&oob.kernel, &oob.assumptions);
    let site = report
        .sites
        .iter()
        .find(|s| s.verdict == lift::verify::Verdict::Potential)
        .expect("bounds checker flags the overrun");
    assert_eq!(site.site, 0);
    assert_eq!(site.buffer, "out");
    assert!(site.reason.contains("upper bound"), "reason: {}", site.reason);
}

//! Static/dynamic cross-check gate (ISSUE 10 tentpole).
//!
//! The static layer (`lift::footprint`) predicts which schedules read
//! uninitialized or stale memory; the dynamic layer (the shadow-memory
//! sanitizer, `VGPU_SANITIZE=shadow`) observes actual reads at run time.
//! This binary pins the contract between them:
//!
//! * every *dynamic* finding on the uninit fixture is contained in the
//!   *static* prediction set (dynamic ⊆ static — the analysis is sound
//!   for the shapes we ship);
//! * both deliberately broken fixtures are flagged by the static layer
//!   (`fixture_uninit_read` by the host audit, `fixture_stale_halo` by
//!   the halo-width proof), and the shipped kernels stay PROVEN;
//! * the full 4-leg differential suite over the sharded simulator runs
//!   bit-identical to a single device with the sanitizer on — zero
//!   findings on any shipped kernel.
//!
//! The sanitizer override is process-global, so everything that needs
//! shadow mode lives in this dedicated test binary.

use lift::prelude::ScalarKind;
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, ShardedSim, SimConfig, SimSetup,
};
use vgpu::{run_host_program, sanitize, Device, Engine, ExecMode, HostEnv};

fn force_on() {
    sanitize::force_shadow();
}

/// The uninit-read fixture must be flagged by both layers, and the
/// dynamic findings must be a subset of the static prediction: same
/// reading kernel, same buffer slot.
#[test]
fn dynamic_uninit_findings_are_contained_in_static_predictions() {
    force_on();
    // Static side: the host audit predicts the launch of
    // `fixture_uninit_read` reads the never-written `src` allocation.
    let audit = verify::host_audit();
    let (_, fixture, predicted) = audit
        .iter()
        .find(|(label, _, _)| label == "fixture_uninit_read_host")
        .expect("host audit covers the uninit fixture");
    assert!(*fixture, "the uninit host program is marked as a fixture");
    assert!(!predicted.is_empty(), "static layer predicts the uninit read");
    assert!(
        predicted.iter().all(|p| p.reader == "fixture_uninit_read"),
        "predictions name the reading kernel: {predicted:?}"
    );

    // Dynamic side: actually run the program under the shadow sanitizer.
    // The default (vector) engine reports findings without failing the
    // launch, so the run completes and we can inspect the registry.
    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Vector);
    let prog = verify::fixtures::uninit_host_program();
    let env = HostEnv::new().size("N", 16);
    run_host_program(&prog, &env, &mut dev, ScalarKind::F32, ExecMode::Fast)
        .expect("fixture program executes (the bug is semantic, not a crash)");
    let observed: Vec<_> =
        sanitize::findings().into_iter().filter(|f| f.kernel == "fixture_uninit_read").collect();
    assert!(!observed.is_empty(), "dynamic layer observes the uninit read");

    // Cross-check: every observed (reader, buffer) pair was predicted.
    for f in &observed {
        assert_eq!(f.kind, vgpu::FaultKind::UninitRead, "{f}");
        assert!(
            predicted.iter().any(|p| p.reader == f.kernel && p.buffer == f.buffer),
            "dynamic finding {f} has no static prediction among {predicted:?}"
        );
    }
}

/// The stale-halo fixture is flagged by the static halo-width proof
/// (its dynamic twin — a skipped halo exchange — is pinned in the vgpu
/// crate's `sanitize_shadow` tests), and every shipped kernel in the
/// same suite stays fully PROVEN.
#[test]
fn stale_halo_fixture_fails_static_proof_and_shipped_kernels_stay_proven() {
    let reports = verify::run_suite(&verify::suite_with_fixtures());
    let stale = reports
        .iter()
        .find(|r| r.name == "fixture_stale_halo")
        .expect("suite covers the stale-halo fixture");
    assert!(stale.fixture);
    assert!(
        !stale.halo_ok(),
        "static proof must reject the 2-plane stencil under a 1-plane exchange"
    );
    for r in reports.iter().filter(|r| !r.fixture) {
        assert!(r.is_proven(), "shipped kernel `{}` must stay PROVEN", r.name);
    }
}

/// Acceptance gate: the 4-leg differential suite over the sharded
/// simulator is bit-identical to a single device under
/// `VGPU_SANITIZE=shadow`, and the shadow sanitizer stays silent for
/// every shipped kernel (halo exchanges keep the seams fresh).
#[test]
fn differential_sharded_run_is_bit_identical_and_clean_under_shadow() {
    force_on();
    let diff_devices = |n: usize| -> Vec<Device> {
        (0..n)
            .map(|_| {
                let mut d = Device::gtx780();
                d.set_engine(Engine::Differential);
                d
            })
            .collect()
    };
    let s = SimSetup::new(&SimConfig::fimm(GridDims::cube(12), RoomShape::Box));
    let mut single = HandwrittenSim::new(
        s.clone(),
        Precision::Double,
        BoundaryKernel::FiMm { beta_constant: false },
        diff_devices(1).remove(0),
    );
    let mut sharded = ShardedSim::new(
        s,
        Precision::Double,
        BoundaryKernel::FiMm { beta_constant: false },
        diff_devices(3),
    );
    single.impulse(6, 6, 6, 1.0);
    sharded.impulse(6, 6, 6, 1.0);
    // The differential engine turns any sanitizer finding into a hard
    // launch error, so `run` itself is the gate.
    single.run(8);
    sharded.run(8);
    let a = single.read_curr();
    let b = sharded.read_curr();
    assert_eq!(a.len(), b.len());
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "sharded field diverges from single device under shadow sanitizer"
    );
    // No shipped kernel tripped the sanitizer; only fixture kernels (from
    // the sibling test in this binary) may appear in the registry.
    let stray: Vec<_> =
        sanitize::findings().into_iter().filter(|f| !f.kernel.starts_with("fixture_")).collect();
    assert!(stray.is_empty(), "shadow sanitizer flagged shipped kernels: {stray:?}");
}

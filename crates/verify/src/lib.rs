//! Static verification driver for the repro suite.
//!
//! Assembles every kernel the repository ships — the four LIFT-generated
//! kernels (`lift_acoustics::programs::all_programs`) and the five
//! hand-written references (`room_acoustics::handwritten::all_kernels`) —
//! pairs each with the launch/allocation contract it is actually run
//! under (see [`suite`]), and runs the full pass ladder:
//!
//! * [`lift::verify::verify_kernel`] — symbolic bounds + static
//!   write-race analysis over the kernel AST;
//! * [`vgpu::verify_prepared`] — def-before-use, barrier-uniformity and
//!   reachability dataflow over the compiled register tape.
//!
//! The `lift_verify` binary prints the resulting diagnostics table and
//! exits nonzero when any non-fixture site is unproven, making the audit
//! a CI gate. The [`fixtures`] module ships two deliberately broken
//! kernels (a write-race and an out-of-bounds store) that the driver
//! requires the verifier to flag — a self-test that the analyses have not
//! silently gone vacuous.

pub mod fixtures;

use lift::lower::LoweredKernel;
use lift::prelude::*;
use lift::verify::{verify_kernel, Assumptions, KernelReport, RaceVerdict, Verdict};
use lift_acoustics::programs::{self, Program};
use room_acoustics::{contracts, handwritten};
use vgpu::{Device, TapeReport};

/// One kernel of the audit suite plus the contract it is verified
/// against.
pub struct SuiteEntry {
    /// The kernel, precision-resolved (ready for `verify_kernel` and
    /// `Device::compile`).
    pub kernel: Kernel,
    /// Precision the `Real` literals were resolved at.
    pub precision: ScalarKind,
    /// Launch/allocation contract.
    pub assumptions: Assumptions,
    /// True for the deliberately broken [`fixtures`] (expected to be
    /// flagged, not proven).
    pub fixture: bool,
}

/// Static + tape verdicts for one [`SuiteEntry`].
pub struct SuiteReport {
    /// Kernel name.
    pub name: String,
    /// Precision of the verified variant.
    pub precision: ScalarKind,
    /// KAST-level bounds/race report.
    pub kast: KernelReport,
    /// Tape-level dataflow report (`None` when the kernel did not
    /// compile to a tape).
    pub tape: Option<TapeReport>,
    /// Proven z-axis halo requirement over the canonical grid buffers
    /// (`room_acoustics::contracts::GRID_BUFFERS`), from the static
    /// access footprints.
    pub required_halo: Result<(usize, usize), String>,
    /// Halo planes the kernel's shard placement provides per side
    /// (`gid_offsets[2]` of a slab-placed kernel); `None` for full-grid
    /// kernels that are never sharded.
    pub configured_halo: Option<usize>,
    /// Copied from the entry.
    pub fixture: bool,
}

impl SuiteReport {
    /// True when the footprint pass proved a per-axis halo requirement
    /// and — for slab-placed kernels — it fits the configured halo.
    pub fn halo_ok(&self) -> bool {
        match (&self.required_halo, self.configured_halo) {
            (Err(_), _) => false,
            (Ok((lo, hi)), Some(h)) => *lo <= h && *hi <= h,
            (Ok(_), None) => true,
        }
    }

    /// True when every bounds site, race map, tape pass and the halo
    /// footprint proof come back clean.
    pub fn is_proven(&self) -> bool {
        self.kast.is_proven() && self.tape.as_ref().is_none_or(|t| t.is_clean()) && self.halo_ok()
    }
}

/// The shipped kernels (generated + hand-written), each at both
/// precisions the evaluation runs (F32 and F64).
pub fn suite() -> Vec<SuiteEntry> {
    let mut out = Vec::new();
    for real in [ScalarKind::F32, ScalarKind::F64] {
        for p in programs::all_programs() {
            let lowered =
                p.lower(real).unwrap_or_else(|e| panic!("{} fails to lower: {e}", p.name));
            let assumptions = generated_assumptions(&p, &lowered);
            out.push(SuiteEntry {
                kernel: lowered.kernel,
                precision: real,
                assumptions,
                fixture: false,
            });
        }
        for k in handwritten::all_kernels() {
            let assumptions = contracts::launch_contract(&k);
            out.push(SuiteEntry {
                kernel: k.resolve_real(real),
                precision: real,
                assumptions,
                fixture: false,
            });
        }
    }
    out
}

/// [`suite`] plus the deliberately broken [`fixtures`].
pub fn suite_with_fixtures() -> Vec<SuiteEntry> {
    let mut out = suite();
    out.extend(fixtures::entries());
    out
}

/// Runs both verification levels over every entry. Tape compilation uses
/// a scratch device; kernels without a tape (none in the current suite)
/// report `tape: None`.
pub fn run_suite(entries: &[SuiteEntry]) -> Vec<SuiteReport> {
    let dev = Device::gtx780();
    entries
        .iter()
        .map(|e| {
            let kast = verify_kernel(&e.kernel, &e.assumptions);
            let tape = dev.compile(&e.kernel).ok().and_then(|prep| vgpu::verify_prepared(&prep));
            let required_halo = kast.footprints.required_halo(contracts::GRID_BUFFERS, 2);
            let configured_halo =
                e.assumptions.gid_offsets.get(2).copied().filter(|&h| h > 0).map(|h| h as usize);
            SuiteReport {
                name: e.kernel.name.clone(),
                precision: e.precision,
                kast,
                tape,
                required_halo,
                configured_halo,
                fixture: e.fixture,
            }
        })
        .collect()
}

// ---- contracts ----

/// The contract for a generated kernel, derived from its lowering by
/// [`lift_acoustics::programs::launch_assumptions`] — shared with the
/// sharding transform's shard-time halo proofs so the audit and the
/// runtime gate trust one definition.
fn generated_assumptions(p: &Program, lowered: &LoweredKernel) -> Assumptions {
    lift_acoustics::programs::launch_assumptions(p, lowered)
}

// ---- reporting ----

/// Short per-precision label.
fn prec(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::F32 => "f32",
        ScalarKind::F64 => "f64",
        _ => "?",
    }
}

/// Renders the diagnostics table: one row per verified kernel variant,
/// then a deduplicated detail block for every unproven site, unproven
/// race map and tape finding.
pub fn render_table(reports: &[SuiteReport]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let wname = reports.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    let _ = writeln!(
        s,
        "{:wname$}  {:4}  {:>7}  {:>7}  {:>4}  {:>9}  verdict",
        "kernel", "prec", "bounds", "races", "tape", "z-halo"
    );
    for r in reports {
        let sp = r.kast.sites.iter().filter(|x| x.verdict == Verdict::Proven).count();
        let rp = r.kast.races.iter().filter(|x| x.verdict == RaceVerdict::ProvenDisjoint).count();
        let tf = r.tape.as_ref().map_or(0, |t| t.findings.len());
        let halo = match &r.required_halo {
            Ok((lo, hi)) => match r.configured_halo {
                Some(h) => format!("{lo},{hi}/{h}"),
                None => format!("{lo},{hi}"),
            },
            Err(_) => "unproven".to_string(),
        };
        let verdict = if r.is_proven() {
            "PROVEN-SAFE".to_string()
        } else if r.fixture {
            "FLAGGED (fixture, expected)".to_string()
        } else {
            "POTENTIAL".to_string()
        };
        let _ = writeln!(
            s,
            "{:wname$}  {:4}  {:>7}  {:>7}  {:>4}  {:>9}  {verdict}",
            r.name,
            prec(r.precision),
            format!("{sp}/{}", r.kast.sites.len()),
            format!("{rp}/{}", r.kast.races.len()),
            tf,
            halo,
        );
    }
    let halo_failures: Vec<&SuiteReport> = reports.iter().filter(|r| !r.halo_ok()).collect();
    if !halo_failures.is_empty() {
        let _ = writeln!(s, "\nhalo findings:");
        for r in &halo_failures {
            match &r.required_halo {
                Err(e) => {
                    let _ = writeln!(s, "  {}: {e}", r.name);
                }
                Ok((lo, hi)) => {
                    let _ = writeln!(
                        s,
                        "  {}: proven z reach ({lo}, {hi}) exceeds the configured {}-plane halo",
                        r.name,
                        r.configured_halo.unwrap_or(0),
                    );
                }
            }
        }
    }
    let bad_sites = lift::verify::dedupe_sites(
        reports
            .iter()
            .flat_map(|r| r.kast.sites.iter())
            .filter(|x| x.verdict != Verdict::Proven)
            .cloned()
            .collect(),
    );
    let bad_races = lift::verify::dedupe_races(
        reports
            .iter()
            .flat_map(|r| r.kast.races.iter())
            .filter(|x| x.verdict != RaceVerdict::ProvenDisjoint)
            .cloned()
            .collect(),
    );
    if !bad_sites.is_empty() || !bad_races.is_empty() {
        let _ = writeln!(s, "\nunproven sites:");
        for x in &bad_sites {
            let _ = writeln!(
                s,
                "  {}: site {} {} `{}` index {} range {} — {}",
                x.kernel, x.site, x.kind, x.buffer, x.index, x.range, x.reason
            );
        }
        for x in &bad_races {
            let what = match &x.verdict {
                RaceVerdict::Definite { element } => {
                    format!("definite write-race on element {element}")
                }
                _ => "write-race unproven".to_string(),
            };
            let _ = writeln!(
                s,
                "  {}: buffer `{}` sites {:?} — {what}{}{}",
                x.kernel,
                x.buffer,
                x.sites,
                if x.reason.is_empty() { "" } else { ": " },
                x.reason
            );
        }
    }
    let tape_findings: Vec<(String, String)> = reports
        .iter()
        .filter_map(|r| r.tape.as_ref())
        .flat_map(|t| {
            t.findings
                .iter()
                .map(move |f| (t.kernel.clone(), format!("[{}] pc {}: {}", f.pass, f.pc, f.detail)))
        })
        .collect();
    if !tape_findings.is_empty() {
        let _ = writeln!(s, "\ntape findings:");
        let mut seen: Vec<&(String, String)> = Vec::new();
        for x in &tape_findings {
            if !seen.contains(&x) {
                seen.push(x);
                let _ = writeln!(s, "  {}: {}", x.0, x.1);
            }
        }
    }
    s
}

/// Serializes one footprint shape for the JSON report.
fn shape_json(shape: &lift::footprint::Shape) -> serde_json::Value {
    use lift::footprint::Shape;
    match shape {
        Shape::Stencil { offsets } => serde_json::json!({
            "shape": "stencil",
            "offsets": offsets,
        }),
        Shape::Gather { table, offsets } => serde_json::json!({
            "shape": "gather",
            "table": table,
            "offsets": offsets,
        }),
        Shape::Flat { lo, hi } => serde_json::json!({
            "shape": "flat",
            "lo": lo,
            "hi": hi,
        }),
        Shape::Opaque { reason } => serde_json::json!({
            "shape": "opaque",
            "reason": reason,
        }),
    }
}

/// Machine-readable verdict + footprint report (`lift_verify --json`):
/// one entry per verified kernel variant with per-site bounds verdicts,
/// per-buffer race verdicts, per-site access footprints and the z-axis
/// halo requirement — the input of the CI static/dynamic cross-check
/// gate.
pub fn report_json(
    reports: &[SuiteReport],
    hosts: &[(String, bool, Vec<lift::footprint::UninitRead>)],
) -> serde_json::Value {
    let kernels: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            let sites: Vec<serde_json::Value> = r
                .kast
                .sites
                .iter()
                .map(|x| {
                    serde_json::json!({
                        "site": x.site,
                        "kind": format!("{}", x.kind),
                        "buffer": x.buffer,
                        "verdict": match x.verdict {
                            Verdict::Proven => "PROVEN",
                            Verdict::Potential => "POTENTIAL",
                        },
                        "reason": x.reason,
                    })
                })
                .collect();
            let races: Vec<serde_json::Value> = r
                .kast
                .races
                .iter()
                .map(|x| {
                    let (verdict, element) = match &x.verdict {
                        RaceVerdict::ProvenDisjoint => ("PROVEN_DISJOINT", None),
                        RaceVerdict::Potential => ("POTENTIAL", None),
                        RaceVerdict::Definite { element } => ("DEFINITE", Some(element.clone())),
                    };
                    serde_json::json!({
                        "buffer": x.buffer,
                        "sites": x.sites,
                        "verdict": verdict,
                        "element": element,
                        "reason": x.reason,
                    })
                })
                .collect();
            let footprints: Vec<serde_json::Value> = r
                .kast
                .footprints
                .sites
                .iter()
                .map(|f| {
                    let mut v = serde_json::json!({
                        "site": f.site,
                        "kind": format!("{}", f.kind),
                        "buffer": f.buffer,
                    });
                    if let serde_json::Value::Object(o) = &mut v {
                        if let serde_json::Value::Object(s) = shape_json(&f.shape) {
                            o.extend(s);
                        }
                    }
                    v
                })
                .collect();
            let required_halo = match &r.required_halo {
                Ok((lo, hi)) => serde_json::json!({ "below": lo, "above": hi }),
                Err(e) => serde_json::json!({ "error": e }),
            };
            serde_json::json!({
                "kernel": r.name,
                "precision": prec(r.precision),
                "fixture": r.fixture,
                "proven": r.is_proven(),
                "halo_ok": r.halo_ok(),
                "required_halo": required_halo,
                "configured_halo": r.configured_halo,
                "grid_rank": r.kast.footprints.rank,
                "sites": sites,
                "races": races,
                "footprints": footprints,
                "tape_findings": r.tape.as_ref().map_or(0, |t| t.findings.len()),
            })
        })
        .collect();
    let host_programs: Vec<serde_json::Value> = hosts
        .iter()
        .map(|(name, fixture, findings)| {
            let fs: Vec<serde_json::Value> = findings
                .iter()
                .map(|f| {
                    serde_json::json!({
                        "cmd": f.cmd,
                        "device": f.device,
                        "buffer": f.buffer,
                        "reader": f.reader,
                    })
                })
                .collect();
            serde_json::json!({
                "program": name,
                "fixture": fixture,
                "uninit_reads": fs,
            })
        })
        .collect();
    serde_json::json!({
        "schema": "lift-verify-report/v1",
        "grid_buffers": contracts::GRID_BUFFERS,
        "kernels": kernels,
        "host_programs": host_programs,
    })
}

/// Read-before-write audit over the shipped host programs plus the
/// deliberately broken [`fixtures::uninit_host_program`]. Returns
/// `(program label, fixture?, findings)` triples; the driver fails on any
/// finding in a non-fixture program and on a *clean* fixture.
pub fn host_audit() -> Vec<(String, bool, Vec<lift::footprint::UninitRead>)> {
    use lift_acoustics::hostprog::{fimm_step_host_program, fimm_step_sharded_host_program};
    use room_acoustics::geometry::{GridDims, RoomShape};
    use room_acoustics::sim::{SimConfig, SimSetup};
    use vgpu::SlabPartition;
    let mut out = Vec::new();
    for real in [ScalarKind::F32, ScalarKind::F64] {
        let prog = fimm_step_host_program(real)
            .unwrap_or_else(|e| panic!("fimm host program fails to lower: {e}"));
        out.push((
            format!("fimm_step_host_program/{}", prec(real)),
            false,
            lift::footprint::check_host_init(&prog),
        ));
    }
    let s = SimSetup::new(&SimConfig::fimm(GridDims::new(12, 10, 9), RoomShape::Box));
    let part = SlabPartition::balanced(s.dims().nz, 3);
    let prog = fimm_step_sharded_host_program(ScalarKind::F32, &s, &part)
        .unwrap_or_else(|e| panic!("sharded fimm host program fails to lower: {e}"));
    out.push((
        "fimm_step_sharded_host_program/f32x3dev".to_string(),
        false,
        lift::footprint::check_host_init(&prog),
    ));
    out.push((
        "fixture_uninit_read_host".to_string(),
        true,
        lift::footprint::check_host_init(&fixtures::uninit_host_program()),
    ));
    out
}

/// Renders the compiled-engine elision eligibility summary: per kernel
/// variant, how many bounds sites come back PROVEN — eligible for
/// proof-licensed check elision under `VGPU_ENGINE=compiled` — versus
/// POTENTIAL, which the compiled engine keeps on the dynamic-check path
/// (see `vgpu::register_launch_contract`).
pub fn render_site_summary(reports: &[SuiteReport]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("-- compiled-engine elision eligibility (bounds sites) --\n");
    let wname = reports.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    for r in reports {
        let proven = r.kast.sites.iter().filter(|x| x.verdict == Verdict::Proven).count();
        let potential = r.kast.sites.len() - proven;
        let _ = writeln!(
            s,
            "{:wname$}  {:4}  {proven:>3} PROVEN  {potential:>3} POTENTIAL{}",
            r.name,
            prec(r.precision),
            if potential > 0 { "  (checked at run time)" } else { "" },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_summary_lists_every_kernel_with_counts() {
        let reports = run_suite(&suite_with_fixtures());
        let summary = render_site_summary(&reports);
        for r in &reports {
            assert!(summary.contains(&r.name), "summary must list {}", r.name);
        }
        // The OOB fixture's overrun site must show up as POTENTIAL.
        assert!(
            summary.lines().any(|l| l.starts_with("fixture_oob") && l.contains("1 POTENTIAL")),
            "summary must count the fixture's unproven site:\n{summary}"
        );
    }

    #[test]
    fn every_shipped_kernel_is_proven() {
        for r in run_suite(&suite()) {
            assert!(
                r.is_proven(),
                "{} ({}) unproven:\n{:#?}\n{:#?}",
                r.name,
                prec(r.precision),
                r.kast.sites.iter().filter(|s| s.verdict != Verdict::Proven).collect::<Vec<_>>(),
                r.kast.races
            );
        }
    }

    #[test]
    fn shipped_footprints_prove_halo_widths() {
        for r in run_suite(&suite()) {
            let halo = r.required_halo.as_ref().unwrap_or_else(|e| {
                panic!("{} ({}): no halo proof: {e}", r.name, prec(r.precision))
            });
            assert!(
                r.halo_ok(),
                "{} ({}): required halo {halo:?} exceeds configured {:?}",
                r.name,
                prec(r.precision),
                r.configured_halo
            );
            // Every shipped kernel is either a 7-point volume stencil
            // (one-plane reach) or a boundary gather (zero reach).
            assert!(halo.0 <= 1 && halo.1 <= 1, "{}: unexpected halo {halo:?}", r.name);
        }
    }

    #[test]
    fn stale_halo_fixture_is_flagged_by_the_halo_gate() {
        let reports = run_suite(&fixtures::entries());
        let r = reports.iter().find(|r| r.name == "fixture_stale_halo").unwrap();
        // Bounds and races are clean — the seeded defect is exactly the
        // halo shortfall.
        assert!(r.kast.sites.iter().all(|s| s.verdict == Verdict::Proven), "{:#?}", r.kast.sites);
        assert!(r.kast.races.iter().all(|x| x.verdict == RaceVerdict::ProvenDisjoint));
        assert_eq!(r.required_halo, Ok((2, 2)), "proven reach");
        assert_eq!(r.configured_halo, Some(1), "slab placement provides one plane");
        assert!(!r.halo_ok() && !r.is_proven());
    }

    #[test]
    fn uninit_host_fixture_is_flagged_by_the_init_pass() {
        let findings = lift::footprint::check_host_init(&fixtures::uninit_host_program());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].buffer, "src");
        assert_eq!(findings[0].reader, "fixture_uninit_read");
    }

    #[test]
    fn shipped_sharded_host_program_has_no_uninit_reads() {
        use lift_acoustics::hostprog::fimm_step_sharded_host_program;
        use room_acoustics::geometry::{GridDims, RoomShape};
        use room_acoustics::sim::{SimConfig, SimSetup};
        use vgpu::SlabPartition;
        let s = SimSetup::new(&SimConfig::fimm(GridDims::new(12, 10, 9), RoomShape::Box));
        let part = SlabPartition::balanced(s.dims().nz, 3);
        let prog = fimm_step_sharded_host_program(ScalarKind::F32, &s, &part).unwrap();
        let findings = lift::footprint::check_host_init(&prog);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn json_report_round_trips_and_names_the_seeded_defects() {
        let reports = run_suite(&suite_with_fixtures());
        let hosts = host_audit();
        let v = report_json(&reports, &hosts);
        // Schema round-trip: serialize → parse → identical tree.
        let text = serde_json::to_string(&v).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = serde_json::to_string_pretty(&v).unwrap();
        let back2: serde_json::Value = serde_json::from_str(&pretty).unwrap();
        assert_eq!(v, back2);
        // Spot-check the shape: every kernel entry carries footprints and
        // a halo verdict; the stale-halo fixture is present and failing.
        assert_eq!(v.get("schema").unwrap().as_str(), Some("lift-verify-report/v1"));
        let kernels = v.get("kernels").unwrap().as_array().unwrap();
        assert_eq!(kernels.len(), reports.len());
        let stale = kernels
            .iter()
            .find(|k| k.get("kernel").unwrap().as_str() == Some("fixture_stale_halo"))
            .unwrap();
        assert_eq!(stale.get("halo_ok").unwrap().as_bool(), Some(false));
        assert_eq!(stale.pointer("/required_halo/below").unwrap().as_u64(), Some(2));
        assert_eq!(stale.get("configured_halo").unwrap().as_u64(), Some(1));
        // Shipped volume kernels expose per-axis stencil offsets.
        let vol = kernels
            .iter()
            .find(|k| k.get("kernel").unwrap().as_str() == Some("volume_handling_hand"))
            .unwrap();
        let fps = vol.get("footprints").unwrap().as_array().unwrap();
        assert!(fps.iter().any(|f| f.get("shape").unwrap().as_str() == Some("stencil")));
        // The host fixture's finding names the kernel and buffer.
        let hostp = v.get("host_programs").unwrap().as_array().unwrap();
        let fixture =
            hostp.iter().find(|h| h.get("fixture").unwrap().as_bool() == Some(true)).unwrap();
        let finding = &fixture.get("uninit_reads").unwrap().as_array().unwrap()[0];
        assert_eq!(finding.get("buffer").unwrap().as_str(), Some("src"));
        assert_eq!(finding.get("reader").unwrap().as_str(), Some("fixture_uninit_read"));
    }

    #[test]
    fn fixtures_are_flagged() {
        let reports = run_suite(&fixtures::entries());
        let racy = reports.iter().find(|r| r.name == "fixture_racy").unwrap();
        let oob = reports.iter().find(|r| r.name == "fixture_oob").unwrap();
        // the racy fixture is in-bounds but collides on element 3
        assert!(racy.kast.sites.iter().all(|s| s.verdict == Verdict::Proven));
        assert!(racy.kast.races.iter().any(|r| {
            r.buffer == "out"
                && matches!(&r.verdict, RaceVerdict::Definite { element } if element == "3")
        }));
        // the OOB fixture races nowhere but overruns `out`
        assert!(oob.kast.races.iter().all(|r| r.verdict == RaceVerdict::ProvenDisjoint));
        assert!(oob.kast.sites.iter().any(|s| {
            s.verdict == Verdict::Potential && s.buffer == "out" && s.reason.contains("upper bound")
        }));
    }
}

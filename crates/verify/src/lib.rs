//! Static verification driver for the repro suite.
//!
//! Assembles every kernel the repository ships — the four LIFT-generated
//! kernels (`lift_acoustics::programs::all_programs`) and the five
//! hand-written references (`room_acoustics::handwritten::all_kernels`) —
//! pairs each with the launch/allocation contract it is actually run
//! under (see [`suite`]), and runs the full pass ladder:
//!
//! * [`lift::verify::verify_kernel`] — symbolic bounds + static
//!   write-race analysis over the kernel AST;
//! * [`vgpu::verify_prepared`] — def-before-use, barrier-uniformity and
//!   reachability dataflow over the compiled register tape.
//!
//! The `lift_verify` binary prints the resulting diagnostics table and
//! exits nonzero when any non-fixture site is unproven, making the audit
//! a CI gate. The [`fixtures`] module ships two deliberately broken
//! kernels (a write-race and an out-of-bounds store) that the driver
//! requires the verifier to flag — a self-test that the analyses have not
//! silently gone vacuous.

pub mod fixtures;

use lift::lower::{ArgSpec, LoweredKernel};
use lift::prelude::*;
use lift::verify::{verify_kernel, Assumptions, BufferFacts, KernelReport, RaceVerdict, Verdict};
use lift_acoustics::programs::{self, Program};
use room_acoustics::{contracts, handwritten};
use vgpu::{Device, TapeReport};

/// One kernel of the audit suite plus the contract it is verified
/// against.
pub struct SuiteEntry {
    /// The kernel, precision-resolved (ready for `verify_kernel` and
    /// `Device::compile`).
    pub kernel: Kernel,
    /// Precision the `Real` literals were resolved at.
    pub precision: ScalarKind,
    /// Launch/allocation contract.
    pub assumptions: Assumptions,
    /// True for the deliberately broken [`fixtures`] (expected to be
    /// flagged, not proven).
    pub fixture: bool,
}

/// Static + tape verdicts for one [`SuiteEntry`].
pub struct SuiteReport {
    /// Kernel name.
    pub name: String,
    /// Precision of the verified variant.
    pub precision: ScalarKind,
    /// KAST-level bounds/race report.
    pub kast: KernelReport,
    /// Tape-level dataflow report (`None` when the kernel did not
    /// compile to a tape).
    pub tape: Option<TapeReport>,
    /// Copied from the entry.
    pub fixture: bool,
}

impl SuiteReport {
    /// True when every bounds site, race map and tape pass is proven.
    pub fn is_proven(&self) -> bool {
        self.kast.is_proven() && self.tape.as_ref().is_none_or(|t| t.is_clean())
    }
}

/// The shipped kernels (generated + hand-written), each at both
/// precisions the evaluation runs (F32 and F64).
pub fn suite() -> Vec<SuiteEntry> {
    let mut out = Vec::new();
    for real in [ScalarKind::F32, ScalarKind::F64] {
        for p in programs::all_programs() {
            let lowered =
                p.lower(real).unwrap_or_else(|e| panic!("{} fails to lower: {e}", p.name));
            let assumptions = generated_assumptions(&p, &lowered);
            out.push(SuiteEntry {
                kernel: lowered.kernel,
                precision: real,
                assumptions,
                fixture: false,
            });
        }
        for k in handwritten::all_kernels() {
            let assumptions = contracts::launch_contract(&k);
            out.push(SuiteEntry {
                kernel: k.resolve_real(real),
                precision: real,
                assumptions,
                fixture: false,
            });
        }
    }
    out
}

/// [`suite`] plus the deliberately broken [`fixtures`].
pub fn suite_with_fixtures() -> Vec<SuiteEntry> {
    let mut out = suite();
    out.extend(fixtures::entries());
    out
}

/// Runs both verification levels over every entry. Tape compilation uses
/// a scratch device; kernels without a tape (none in the current suite)
/// report `tape: None`.
pub fn run_suite(entries: &[SuiteEntry]) -> Vec<SuiteReport> {
    let dev = Device::gtx780();
    entries
        .iter()
        .map(|e| {
            let kast = verify_kernel(&e.kernel, &e.assumptions);
            let tape = dev.compile(&e.kernel).ok().and_then(|prep| vgpu::verify_prepared(&prep));
            SuiteReport {
                name: e.kernel.name.clone(),
                precision: e.precision,
                kast,
                tape,
                fixture: e.fixture,
            }
        })
        .collect()
}

// ---- contracts ----

/// Derives the contract for a generated kernel from its lowering: the
/// launch global size, one `≥ 1` bound per size argument, and buffer
/// lengths from the source program's parameter types (inputs) and the
/// lowered output type. Content facts for the boundary gather tables are
/// layered on top by [`contracts::boundary_table_facts`].
fn generated_assumptions(p: &Program, lowered: &LoweredKernel) -> Assumptions {
    let mut asm = Assumptions {
        global_size: lowered.global_size.iter().cloned().map(Some).collect(),
        ..Assumptions::default()
    };
    for (param, spec) in lowered.kernel.params.iter().zip(&lowered.args) {
        match spec {
            ArgSpec::Size(n) => asm.size_bounds.push((n.clone(), 1)),
            ArgSpec::Input(pid, _) if param.is_buffer => {
                let ty = p.params.iter().find(|d| d.id == *pid).and_then(|d| d.ty.clone());
                if let Some(ty) = ty {
                    asm.buffers.insert(param.name.clone(), BufferFacts::sized(ty.scalar_count()));
                }
            }
            ArgSpec::Output(_, ty) => {
                asm.buffers.insert(param.name.clone(), BufferFacts::sized(ty.scalar_count()));
            }
            _ => {}
        }
    }
    contracts::boundary_table_facts(&mut asm);
    asm
}

// ---- reporting ----

/// Short per-precision label.
fn prec(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::F32 => "f32",
        ScalarKind::F64 => "f64",
        _ => "?",
    }
}

/// Renders the diagnostics table: one row per verified kernel variant,
/// then a deduplicated detail block for every unproven site, unproven
/// race map and tape finding.
pub fn render_table(reports: &[SuiteReport]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let wname = reports.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    let _ = writeln!(
        s,
        "{:wname$}  {:4}  {:>7}  {:>7}  {:>4}  verdict",
        "kernel", "prec", "bounds", "races", "tape"
    );
    for r in reports {
        let sp = r.kast.sites.iter().filter(|x| x.verdict == Verdict::Proven).count();
        let rp = r.kast.races.iter().filter(|x| x.verdict == RaceVerdict::ProvenDisjoint).count();
        let tf = r.tape.as_ref().map_or(0, |t| t.findings.len());
        let verdict = if r.is_proven() {
            "PROVEN-SAFE".to_string()
        } else if r.fixture {
            "FLAGGED (fixture, expected)".to_string()
        } else {
            "POTENTIAL".to_string()
        };
        let _ = writeln!(
            s,
            "{:wname$}  {:4}  {:>7}  {:>7}  {:>4}  {verdict}",
            r.name,
            prec(r.precision),
            format!("{sp}/{}", r.kast.sites.len()),
            format!("{rp}/{}", r.kast.races.len()),
            tf,
        );
    }
    let bad_sites = lift::verify::dedupe_sites(
        reports
            .iter()
            .flat_map(|r| r.kast.sites.iter())
            .filter(|x| x.verdict != Verdict::Proven)
            .cloned()
            .collect(),
    );
    let bad_races = lift::verify::dedupe_races(
        reports
            .iter()
            .flat_map(|r| r.kast.races.iter())
            .filter(|x| x.verdict != RaceVerdict::ProvenDisjoint)
            .cloned()
            .collect(),
    );
    if !bad_sites.is_empty() || !bad_races.is_empty() {
        let _ = writeln!(s, "\nunproven sites:");
        for x in &bad_sites {
            let _ = writeln!(
                s,
                "  {}: site {} {} `{}` index {} range {} — {}",
                x.kernel, x.site, x.kind, x.buffer, x.index, x.range, x.reason
            );
        }
        for x in &bad_races {
            let what = match &x.verdict {
                RaceVerdict::Definite { element } => {
                    format!("definite write-race on element {element}")
                }
                _ => "write-race unproven".to_string(),
            };
            let _ = writeln!(
                s,
                "  {}: buffer `{}` sites {:?} — {what}{}{}",
                x.kernel,
                x.buffer,
                x.sites,
                if x.reason.is_empty() { "" } else { ": " },
                x.reason
            );
        }
    }
    let tape_findings: Vec<(String, String)> = reports
        .iter()
        .filter_map(|r| r.tape.as_ref())
        .flat_map(|t| {
            t.findings
                .iter()
                .map(move |f| (t.kernel.clone(), format!("[{}] pc {}: {}", f.pass, f.pc, f.detail)))
        })
        .collect();
    if !tape_findings.is_empty() {
        let _ = writeln!(s, "\ntape findings:");
        let mut seen: Vec<&(String, String)> = Vec::new();
        for x in &tape_findings {
            if !seen.contains(&x) {
                seen.push(x);
                let _ = writeln!(s, "  {}: {}", x.0, x.1);
            }
        }
    }
    s
}

/// Renders the compiled-engine elision eligibility summary: per kernel
/// variant, how many bounds sites come back PROVEN — eligible for
/// proof-licensed check elision under `VGPU_ENGINE=compiled` — versus
/// POTENTIAL, which the compiled engine keeps on the dynamic-check path
/// (see `vgpu::register_launch_contract`).
pub fn render_site_summary(reports: &[SuiteReport]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("-- compiled-engine elision eligibility (bounds sites) --\n");
    let wname = reports.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    for r in reports {
        let proven = r.kast.sites.iter().filter(|x| x.verdict == Verdict::Proven).count();
        let potential = r.kast.sites.len() - proven;
        let _ = writeln!(
            s,
            "{:wname$}  {:4}  {proven:>3} PROVEN  {potential:>3} POTENTIAL{}",
            r.name,
            prec(r.precision),
            if potential > 0 { "  (checked at run time)" } else { "" },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_summary_lists_every_kernel_with_counts() {
        let reports = run_suite(&suite_with_fixtures());
        let summary = render_site_summary(&reports);
        for r in &reports {
            assert!(summary.contains(&r.name), "summary must list {}", r.name);
        }
        // The OOB fixture's overrun site must show up as POTENTIAL.
        assert!(
            summary.lines().any(|l| l.starts_with("fixture_oob") && l.contains("1 POTENTIAL")),
            "summary must count the fixture's unproven site:\n{summary}"
        );
    }

    #[test]
    fn every_shipped_kernel_is_proven() {
        for r in run_suite(&suite()) {
            assert!(
                r.is_proven(),
                "{} ({}) unproven:\n{:#?}\n{:#?}",
                r.name,
                prec(r.precision),
                r.kast.sites.iter().filter(|s| s.verdict != Verdict::Proven).collect::<Vec<_>>(),
                r.kast.races
            );
        }
    }

    #[test]
    fn fixtures_are_flagged() {
        let reports = run_suite(&fixtures::entries());
        let racy = reports.iter().find(|r| r.name == "fixture_racy").unwrap();
        let oob = reports.iter().find(|r| r.name == "fixture_oob").unwrap();
        // the racy fixture is in-bounds but collides on element 3
        assert!(racy.kast.sites.iter().all(|s| s.verdict == Verdict::Proven));
        assert!(racy.kast.races.iter().any(|r| {
            r.buffer == "out"
                && matches!(&r.verdict, RaceVerdict::Definite { element } if element == "3")
        }));
        // the OOB fixture races nowhere but overruns `out`
        assert!(oob.kast.races.iter().all(|r| r.verdict == RaceVerdict::ProvenDisjoint));
        assert!(oob.kast.sites.iter().any(|s| {
            s.verdict == Verdict::Potential && s.buffer == "out" && s.reason.contains("upper bound")
        }));
    }
}

//! Deliberately broken fixture kernels.
//!
//! These never ship in a simulation; the `lift_verify` driver runs them
//! to prove the verifier still *finds* defects — a static-analysis
//! equivalent of a failing-test canary. One kernel carries a definite
//! cross-item write-race, the other an off-the-end store; each is clean
//! with respect to the other analysis so the flagged defect is exactly
//! the seeded one.

use crate::SuiteEntry;
use lift::arith::ArithExpr;
use lift::prelude::*;
use lift::scalar::BinOp;
use lift::verify::{Assumptions, BufferFacts};

/// Every work-item stores to `out[3]`: in-bounds under the launch
/// contract (`N ≥ 4`), but a definite write-race on element 3 as soon as
/// two work-items run.
pub fn racy_kernel() -> Kernel {
    Kernel {
        name: "fixture_racy".into(),
        params: vec![
            KernelParam::global_buf("out", ScalarKind::Real),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store { mem: MemRef::Param(0), idx: KExpr::int(3), value: KExpr::real(1.0) },
        ],
        work_dim: 1,
    }
}

/// The contract [`racy_kernel`] is audited (and dynamically launched)
/// under: `out` has `N ≥ 4` elements, so the defect is purely the race.
pub fn racy_assumptions() -> Assumptions {
    let mut asm = Assumptions { global_size: vec![None], ..Assumptions::default() };
    asm.size_bounds.push(("N".into(), 4));
    asm.buffers.insert("out".into(), BufferFacts::sized(ArithExpr::var("N")));
    asm
}

/// Each work-item stores to `out[gid0 + 1]` with `out` allocated at `N`
/// elements and `gid0` ranging to `N − 1`: the map is injective (no
/// race) but the last work-item writes one element past the end.
pub fn oob_kernel() -> Kernel {
    Kernel {
        name: "fixture_oob".into(),
        params: vec![
            KernelParam::global_buf("out", ScalarKind::Real),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::GlobalId(0) + KExpr::int(1),
                value: KExpr::real(1.0),
            },
        ],
        work_dim: 1,
    }
}

/// The contract [`oob_kernel`] is audited under.
pub fn oob_assumptions() -> Assumptions {
    let mut asm = Assumptions { global_size: vec![None], ..Assumptions::default() };
    asm.size_bounds.push(("N".into(), 1));
    asm.buffers.insert("out".into(), BufferFacts::sized(ArithExpr::var("N")));
    asm
}

/// Both fixtures as suite entries (F32-resolved, marked `fixture`).
pub fn entries() -> Vec<SuiteEntry> {
    [(racy_kernel(), racy_assumptions()), (oob_kernel(), oob_assumptions())]
        .into_iter()
        .map(|(k, assumptions)| SuiteEntry {
            kernel: k.resolve_real(ScalarKind::F32),
            precision: ScalarKind::F32,
            assumptions,
            fixture: true,
        })
        .collect()
}

//! Deliberately broken fixture kernels.
//!
//! These never ship in a simulation; the `lift_verify` driver runs them
//! to prove the verifier still *finds* defects — a static-analysis
//! equivalent of a failing-test canary. One kernel carries a definite
//! cross-item write-race, the other an off-the-end store; each is clean
//! with respect to the other analysis so the flagged defect is exactly
//! the seeded one.

use crate::SuiteEntry;
use lift::arith::ArithExpr;
use lift::host::{HostCmd, HostProgram, LaunchArg};
use lift::lower::{ArgSpec, LoweredKernel};
use lift::prelude::*;
use lift::scalar::BinOp;
use lift::verify::{Assumptions, BufferFacts};

/// Every work-item stores to `out[3]`: in-bounds under the launch
/// contract (`N ≥ 4`), but a definite write-race on element 3 as soon as
/// two work-items run.
pub fn racy_kernel() -> Kernel {
    Kernel {
        name: "fixture_racy".into(),
        params: vec![
            KernelParam::global_buf("out", ScalarKind::Real),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store { mem: MemRef::Param(0), idx: KExpr::int(3), value: KExpr::real(1.0) },
        ],
        work_dim: 1,
    }
}

/// The contract [`racy_kernel`] is audited (and dynamically launched)
/// under: `out` has `N ≥ 4` elements, so the defect is purely the race.
pub fn racy_assumptions() -> Assumptions {
    let mut asm = Assumptions { global_size: vec![None], ..Assumptions::default() };
    asm.size_bounds.push(("N".into(), 4));
    asm.buffers.insert("out".into(), BufferFacts::sized(ArithExpr::var("N")));
    asm
}

/// Each work-item stores to `out[gid0 + 1]` with `out` allocated at `N`
/// elements and `gid0` ranging to `N − 1`: the map is injective (no
/// race) but the last work-item writes one element past the end.
pub fn oob_kernel() -> Kernel {
    Kernel {
        name: "fixture_oob".into(),
        params: vec![
            KernelParam::global_buf("out", ScalarKind::Real),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::GlobalId(0) + KExpr::int(1),
                value: KExpr::real(1.0),
            },
        ],
        work_dim: 1,
    }
}

/// The contract [`oob_kernel`] is audited under.
pub fn oob_assumptions() -> Assumptions {
    let mut asm = Assumptions { global_size: vec![None], ..Assumptions::default() };
    asm.size_bounds.push(("N".into(), 1));
    asm.buffers.insert("out".into(), BufferFacts::sized(ArithExpr::var("N")));
    asm
}

/// A slab-placed 5-point z stencil (`curr[idx ± 2·Nx·Ny]`) whose shard
/// placement (`gid_offsets = [0, 0, 1]`, i.e. one halo plane per side)
/// cannot cover its proven two-plane reach. Bounds and races are clean —
/// the seeded defect is exactly the halo shortfall the footprint pass
/// must flag.
pub fn stale_halo_kernel() -> Kernel {
    let plane = KExpr::var("Nx") * KExpr::var("Ny");
    // The slab-placed z coordinate, as `Kernel::shift_gid(2, 1)` writes it.
    let z = KExpr::GlobalId(2) + KExpr::int(1);
    let idx =
        z.clone() * plane.clone() + KExpr::GlobalId(1) * KExpr::var("Nx") + KExpr::GlobalId(0);
    let at = |off: KExpr| KExpr::load(MemRef::Param(1), off);
    Kernel {
        name: "fixture_stale_halo".into(),
        params: vec![
            KernelParam::global_buf("next", ScalarKind::Real),
            KernelParam::global_buf("curr", ScalarKind::Real),
            KernelParam::scalar("Nx", ScalarKind::I32),
            KernelParam::scalar("Ny", ScalarKind::I32),
            KernelParam::scalar("Nz", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("Nx"))),
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(1), KExpr::var("Ny"))),
            KStmt::return_if(KExpr::bin(BinOp::Lt, z.clone(), KExpr::int(2))),
            KStmt::return_if(KExpr::bin(BinOp::Gt, z, KExpr::var("Nz") - KExpr::int(3))),
            KStmt::Store {
                mem: MemRef::Param(0),
                idx: idx.clone(),
                value: at(idx.clone() - (plane.clone() + plane.clone()))
                    + at(idx + (plane.clone() + plane)),
            },
        ],
        work_dim: 3,
    }
}

/// The slab contract [`stale_halo_kernel`] is audited under: local grid
/// of `Nz` planes, one-plane halo placement.
pub fn stale_halo_assumptions() -> Assumptions {
    let n3 = ArithExpr::var("Nx") * ArithExpr::var("Ny") * ArithExpr::var("Nz");
    let mut asm = Assumptions { global_size: vec![None; 3], ..Assumptions::default() };
    for d in ["Nx", "Ny", "Nz"] {
        asm.size_bounds.push((d.into(), 1));
    }
    asm.buffers.insert("next".into(), BufferFacts::sized(n3.clone()));
    asm.buffers.insert("curr".into(), BufferFacts::sized(n3));
    // Grid geometry for the footprint pass (strides 1, Nx, Nx·Ny) and the
    // slab placement the halo gate compares the proven reach against.
    asm.interior_dims = vec![ArithExpr::var("Nx"), ArithExpr::var("Ny"), ArithExpr::var("Nz")];
    asm.gid_offsets = vec![0, 0, 1];
    asm
}

/// Copies `src` into `out` — clean in isolation; the defect lives in
/// [`uninit_host_program`], which launches it without ever initializing
/// `src`.
pub fn uninit_read_kernel() -> Kernel {
    Kernel {
        name: "fixture_uninit_read".into(),
        params: vec![
            KernelParam::global_buf("out", ScalarKind::Real),
            KernelParam::global_buf("src", ScalarKind::Real),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(1), KExpr::GlobalId(0)),
            },
        ],
        work_dim: 1,
    }
}

/// A host program that allocates `src` and launches
/// [`uninit_read_kernel`] without any initializing upload: the
/// read-before-write pass (`lift::footprint::check_host_init`) must flag
/// the launch's read of `src`.
pub fn uninit_host_program() -> HostProgram {
    let ty = Type::array(Type::real(), "N");
    let lowered = LoweredKernel {
        kernel: uninit_read_kernel().resolve_real(ScalarKind::F32),
        args: vec![
            ArgSpec::Output("out".into(), ty.clone()),
            ArgSpec::Input(lift::ir::ParamId(0), "src".into()),
            ArgSpec::Size("N".into()),
        ],
        global_size: vec![ArithExpr::var("N")],
        local_size: None,
    };
    HostProgram {
        kernels: vec![lowered],
        cmds: vec![
            HostCmd::Alloc { dev: "src".into(), ty: ty.clone(), device: 0 },
            HostCmd::Alloc { dev: "out".into(), ty: ty.clone(), device: 0 },
            HostCmd::Launch {
                kernel: 0,
                args: vec![
                    LaunchArg::Buf("out".into()),
                    LaunchArg::Buf("src".into()),
                    LaunchArg::SizeVar("N".into()),
                ],
                global_size: vec![ArithExpr::var("N")],
                device: 0,
            },
            HostCmd::CopyOut {
                dev: "out".into(),
                host: "result".into(),
                ty,
                device: 0,
                src: None,
                dst_off: None,
                host_len: None,
            },
        ],
        result: "result".into(),
    }
}

/// All fixtures as suite entries (F32-resolved, marked `fixture`).
pub fn entries() -> Vec<SuiteEntry> {
    [
        (racy_kernel(), racy_assumptions()),
        (oob_kernel(), oob_assumptions()),
        (stale_halo_kernel(), stale_halo_assumptions()),
    ]
    .into_iter()
    .map(|(k, assumptions)| SuiteEntry {
        kernel: k.resolve_real(ScalarKind::F32),
        precision: ScalarKind::F32,
        assumptions,
        fixture: true,
    })
    .collect()
}

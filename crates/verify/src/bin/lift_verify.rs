//! Audits every kernel in the repro suite with the static verifier.
//!
//! Runs the symbolic bounds checker and the static write-race detector
//! over the KAST of every generated and hand-written kernel (both
//! precisions), plus the dataflow passes over each compiled tape, prints
//! the diagnostics table and the per-kernel PROVEN vs POTENTIAL site
//! summary (what `VGPU_ENGINE=compiled` may elide vs must keep checking),
//! and exits nonzero if any non-fixture site is unproven — or if the
//! deliberately broken fixtures are *not* flagged.

use lift::verify::{RaceVerdict, Verdict};

fn main() {
    let entries = verify::suite_with_fixtures();
    let reports = verify::run_suite(&entries);
    print!("{}", verify::render_table(&reports));
    print!("\n{}", verify::render_site_summary(&reports));

    let mut failures = 0usize;
    for r in &reports {
        if r.fixture {
            let race_flagged =
                r.kast.races.iter().any(|x| x.verdict != RaceVerdict::ProvenDisjoint);
            let oob_flagged = r.kast.sites.iter().any(|x| x.verdict == Verdict::Potential);
            if !(race_flagged || oob_flagged) {
                eprintln!("error: fixture `{}` was NOT flagged — verifier is vacuous", r.name);
                failures += 1;
            }
        } else if !r.is_proven() {
            eprintln!("error: kernel `{}` has unproven sites", r.name);
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\nlift_verify: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\nlift_verify: all shipped kernels proven; fixtures flagged as expected");
}

//! Audits every kernel in the repro suite with the static verifier.
//!
//! Runs the symbolic bounds checker, the static write-race detector and
//! the access-footprint/halo analysis over the KAST of every generated
//! and hand-written kernel (both precisions), the dataflow passes over
//! each compiled tape, and the read-before-write pass over the shipped
//! host programs. Prints the diagnostics table, the per-kernel PROVEN vs
//! POTENTIAL site summary (what `VGPU_ENGINE=compiled` may elide vs must
//! keep checking) and the host audit, and exits nonzero if any
//! non-fixture site, race map, halo width or host buffer is unproven —
//! or if the deliberately broken fixtures are *not* flagged.
//!
//! `--json` instead emits the machine-readable verdict + footprint
//! report ([`verify::report_json`]) on stdout, with the same exit-code
//! contract — the input of the CI static/dynamic cross-check gate.

use lift::verify::{RaceVerdict, Verdict};

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let entries = verify::suite_with_fixtures();
    let reports = verify::run_suite(&entries);
    let hosts = verify::host_audit();

    let mut failures = 0usize;
    for r in &reports {
        if r.fixture {
            let race_flagged =
                r.kast.races.iter().any(|x| x.verdict != RaceVerdict::ProvenDisjoint);
            let oob_flagged = r.kast.sites.iter().any(|x| x.verdict == Verdict::Potential);
            let halo_flagged = !r.halo_ok();
            if !(race_flagged || oob_flagged || halo_flagged) {
                eprintln!("error: fixture `{}` was NOT flagged — verifier is vacuous", r.name);
                failures += 1;
            }
        } else if !r.is_proven() {
            eprintln!("error: kernel `{}` has unproven sites", r.name);
            failures += 1;
        }
    }
    for (name, fixture, findings) in &hosts {
        if *fixture && findings.is_empty() {
            eprintln!("error: host fixture `{name}` was NOT flagged — init pass is vacuous");
            failures += 1;
        }
        if !*fixture && !findings.is_empty() {
            eprintln!("error: host program `{name}` reads uninitialized buffers");
            failures += 1;
        }
    }

    if json_mode {
        let v = verify::report_json(&reports, &hosts);
        println!("{}", serde_json::to_string_pretty(&v).expect("serialize report"));
    } else {
        print!("{}", verify::render_table(&reports));
        print!("\n{}", verify::render_site_summary(&reports));
        println!("\n-- host-program init audit --");
        for (name, fixture, findings) in &hosts {
            if findings.is_empty() {
                println!("{name}: clean");
            } else {
                let tag = if *fixture { " (fixture, expected)" } else { "" };
                println!("{name}: {} uninit read(s){tag}", findings.len());
                for f in findings {
                    println!("  {f}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("\nlift_verify: {failures} failure(s)");
        std::process::exit(1);
    }
    if !json_mode {
        println!(
            "\nlift_verify: all shipped kernels proven (bounds, races, halo, host init); \
             fixtures flagged as expected"
        );
    }
}

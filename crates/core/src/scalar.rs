//! The scalar-function language: executable bodies for LIFT user functions.
//!
//! Real LIFT embeds user functions as opaque OpenCL C strings. We cannot do
//! that here — generated kernels must *execute* on the `vgpu` substrate — so
//! user functions carry a small, typed expression body with precise f32/f64
//! semantics. The OpenCL emitter prints the same body as C, keeping the
//! "generated code" deliverable intact.

use crate::types::ScalarKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::rc::Rc;

/// A runtime scalar value. Arithmetic is performed in the value's own
/// precision so `vgpu` results are bit-identical to a native f32/f64 kernel.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// 32-bit signed integer.
    I32(i32),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The kind of this value.
    pub fn kind(self) -> ScalarKind {
        match self {
            Value::F32(_) => ScalarKind::F32,
            Value::F64(_) => ScalarKind::F64,
            Value::I32(_) => ScalarKind::I32,
            Value::Bool(_) => ScalarKind::Bool,
        }
    }

    /// Lossy conversion to f64 (for display / diagnostics only).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
            Value::I32(v) => v as f64,
            Value::Bool(b) => b as i32 as f64,
        }
    }

    /// Integer view; floats truncate (C cast semantics).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::F32(v) => v as i64,
            Value::F64(v) => v as i64,
            Value::I32(v) => v as i64,
            Value::Bool(b) => b as i64,
        }
    }

    /// The boolean view (C truthiness).
    pub fn truthy(self) -> bool {
        match self {
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
            Value::I32(v) => v != 0,
            Value::Bool(b) => b,
        }
    }

    /// Cast to `kind` with C conversion semantics.
    pub fn cast(self, kind: ScalarKind) -> Value {
        match kind {
            ScalarKind::F32 => Value::F32(self.as_f64() as f32),
            ScalarKind::F64 => Value::F64(self.as_f64()),
            ScalarKind::I32 => Value::I32(self.as_i64() as i32),
            ScalarKind::Bool => Value::Bool(self.truthy()),
            ScalarKind::Real => panic!("cannot cast to unresolved Real"),
        }
    }

    /// Zero of the given kind.
    pub fn zero(kind: ScalarKind) -> Value {
        match kind {
            ScalarKind::F32 => Value::F32(0.0),
            ScalarKind::F64 => Value::F64(0.0),
            ScalarKind::I32 => Value::I32(0),
            ScalarKind::Bool => Value::Bool(false),
            ScalarKind::Real => panic!("cannot make a zero of unresolved Real"),
        }
    }
}

/// A literal in the IR. Floating literals of kind [`ScalarKind::Real`] are
/// stored as f64 and narrowed when the program is lowered at a concrete
/// precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lit {
    /// Payload (f64 holds all i32 and f32 values exactly).
    pub value: f64,
    /// Kind, possibly the precision-generic `Real`.
    pub kind: ScalarKind,
}

impl Lit {
    /// A precision-generic float literal.
    pub fn real(v: f64) -> Lit {
        Lit { value: v, kind: ScalarKind::Real }
    }

    /// An i32 literal.
    pub fn i32(v: i32) -> Lit {
        Lit { value: v as f64, kind: ScalarKind::I32 }
    }

    /// An f32 literal.
    pub fn f32(v: f32) -> Lit {
        Lit { value: v as f64, kind: ScalarKind::F32 }
    }

    /// An f64 literal.
    pub fn f64(v: f64) -> Lit {
        Lit { value: v, kind: ScalarKind::F64 }
    }

    /// Resolve to a runtime value, mapping `Real` through `real`.
    pub fn to_value(self, real: ScalarKind) -> Value {
        match self.kind.resolve_real(real) {
            ScalarKind::F32 => Value::F32(self.value as f32),
            ScalarKind::F64 => Value::F64(self.value),
            ScalarKind::I32 => Value::I32(self.value as i32),
            ScalarKind::Bool => Value::Bool(self.value != 0.0),
            ScalarKind::Real => unreachable!(),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float) / truncating (int).
    Div,
    /// Remainder (ints only).
    Rem,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and (short-circuit not modelled; operands are values).
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// C spelling.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// True for comparison / logical operators (result kind is Bool).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Whether this op counts as one floating-point operation when applied
    /// to float operands (used by the `vgpu` performance counters).
    pub fn is_flop(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Built-in math intrinsics (mapped to OpenCL built-ins when printed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Square root.
    Sqrt,
    /// Absolute value.
    Fabs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Fused `a*b+c` (evaluated unfused here; one mul + one add).
    Fma,
}

impl Intrinsic {
    /// C/OpenCL spelling.
    pub fn c_name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            // OpenCL's generic `min`/`max` cover both integer and floating
            // gentypes (unlike C's `fmin`), and clamp-pad indices are ints.
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Fma => "fma",
        }
    }

    /// Arity.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Min | Intrinsic::Max => 2,
            Intrinsic::Fma => 3,
            _ => 1,
        }
    }
}

/// A scalar expression: the body language of [`UserFun`].
#[derive(Clone, Debug, PartialEq)]
pub enum SExpr {
    /// Reference to the n-th function parameter.
    Param(usize),
    /// Literal.
    Lit(Lit),
    /// Binary operation.
    Bin(BinOp, Rc<SExpr>, Rc<SExpr>),
    /// Unary operation.
    Un(UnOp, Rc<SExpr>),
    /// `cond ? then : else`.
    Select(Rc<SExpr>, Rc<SExpr>, Rc<SExpr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<SExpr>),
    /// C-style cast.
    Cast(ScalarKind, Rc<SExpr>),
}

impl SExpr {
    /// Parameter reference.
    pub fn p(i: usize) -> SExpr {
        SExpr::Param(i)
    }

    /// Precision-generic float literal.
    pub fn real(v: f64) -> SExpr {
        SExpr::Lit(Lit::real(v))
    }

    /// i32 literal.
    pub fn int(v: i32) -> SExpr {
        SExpr::Lit(Lit::i32(v))
    }

    /// Ternary select.
    pub fn select(c: SExpr, t: SExpr, f: SExpr) -> SExpr {
        SExpr::Select(Rc::new(c), Rc::new(t), Rc::new(f))
    }

    /// Cast.
    pub fn cast(kind: ScalarKind, e: SExpr) -> SExpr {
        SExpr::Cast(kind, Rc::new(e))
    }

    /// Comparison helper.
    pub fn cmp(op: BinOp, a: SExpr, b: SExpr) -> SExpr {
        debug_assert!(op.is_predicate());
        SExpr::Bin(op, Rc::new(a), Rc::new(b))
    }

    /// Static count of floating-point operations executed per evaluation
    /// (selects count both sides' maximum? No: counts the *taken* cost is
    /// data-dependent, so we statically count the worst case of the two
    /// branches, which matches GPU lock-step execution of divergent code).
    pub fn flop_count(&self) -> u64 {
        match self {
            SExpr::Param(_) | SExpr::Lit(_) => 0,
            SExpr::Bin(op, a, b) => {
                let inner = a.flop_count() + b.flop_count();
                inner + if op.is_flop() { 1 } else { 0 }
            }
            SExpr::Un(_, a) => a.flop_count(),
            SExpr::Select(c, t, f) => c.flop_count() + t.flop_count().max(f.flop_count()),
            SExpr::Call(i, args) => {
                let inner: u64 = args.iter().map(SExpr::flop_count).sum();
                // Transcendental intrinsics modelled as a handful of flops.
                let own = match i {
                    Intrinsic::Sqrt
                    | Intrinsic::Exp
                    | Intrinsic::Log
                    | Intrinsic::Sin
                    | Intrinsic::Cos => 4,
                    Intrinsic::Fma => 2,
                    Intrinsic::Min | Intrinsic::Max => 1,
                    Intrinsic::Fabs => 0,
                };
                inner + own
            }
            SExpr::Cast(_, a) => a.flop_count(),
        }
    }

    /// Evaluates with the given arguments. `real` resolves precision-generic
    /// literals. Mixed float/int operands promote to the float operand's
    /// kind, mirroring C's usual arithmetic conversions (restricted to the
    /// kinds we support).
    pub fn eval(&self, args: &[Value], real: ScalarKind) -> Value {
        match self {
            SExpr::Param(i) => args[*i],
            SExpr::Lit(l) => l.to_value(real),
            SExpr::Bin(op, a, b) => {
                let va = a.eval(args, real);
                let vb = b.eval(args, real);
                eval_bin(*op, va, vb)
            }
            SExpr::Un(op, a) => {
                let v = a.eval(args, real);
                match op {
                    UnOp::Neg => match v {
                        Value::F32(x) => Value::F32(-x),
                        Value::F64(x) => Value::F64(-x),
                        Value::I32(x) => Value::I32(-x),
                        Value::Bool(_) => panic!("negation of bool"),
                    },
                    UnOp::Not => Value::Bool(!v.truthy()),
                }
            }
            SExpr::Select(c, t, f) => {
                if c.eval(args, real).truthy() {
                    t.eval(args, real)
                } else {
                    f.eval(args, real)
                }
            }
            SExpr::Call(i, call_args) => {
                let vals: Vec<Value> = call_args.iter().map(|a| a.eval(args, real)).collect();
                eval_intrinsic(*i, &vals)
            }
            SExpr::Cast(kind, a) => a.eval(args, real).cast(kind.resolve_real(real)),
        }
    }
}

/// Usual arithmetic conversions for our 4 kinds: if either side is f64 →
/// f64; else if either is f32 → f32; else i32. Bools promote to i32.
fn promote(a: Value, b: Value) -> (Value, Value, ScalarKind) {
    use ScalarKind::*;
    let ka = a.kind();
    let kb = b.kind();
    let target = if ka == F64 || kb == F64 {
        F64
    } else if ka == F32 || kb == F32 {
        F32
    } else {
        I32
    };
    (a.cast(target), b.cast(target), target)
}

/// Evaluates a binary operator on two values with C-style promotion.
/// Exposed for the `vgpu` interpreter, which shares these exact semantics.
pub fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    let (a, b, k) = promote(a, b);
    macro_rules! arith {
        ($f:expr, $g:expr) => {
            match k {
                ScalarKind::F32 => {
                    let (Value::F32(x), Value::F32(y)) = (a, b) else { unreachable!() };
                    Value::F32($f(x, y))
                }
                ScalarKind::F64 => {
                    let (Value::F64(x), Value::F64(y)) = (a, b) else { unreachable!() };
                    Value::F64($f(x, y))
                }
                ScalarKind::I32 => {
                    let (Value::I32(x), Value::I32(y)) = (a, b) else { unreachable!() };
                    Value::I32($g(x, y))
                }
                _ => unreachable!(),
            }
        };
    }
    macro_rules! pred {
        ($f:expr) => {
            match k {
                ScalarKind::F32 => {
                    let (Value::F32(x), Value::F32(y)) = (a, b) else { unreachable!() };
                    Value::Bool($f(&x, &y))
                }
                ScalarKind::F64 => {
                    let (Value::F64(x), Value::F64(y)) = (a, b) else { unreachable!() };
                    Value::Bool($f(&x, &y))
                }
                ScalarKind::I32 => {
                    let (Value::I32(x), Value::I32(y)) = (a, b) else { unreachable!() };
                    Value::Bool($f(&x, &y))
                }
                _ => unreachable!(),
            }
        };
    }
    match op {
        BinOp::Add => arith!(|x, y| x + y, |x: i32, y: i32| x.wrapping_add(y)),
        BinOp::Sub => arith!(|x, y| x - y, |x: i32, y: i32| x.wrapping_sub(y)),
        BinOp::Mul => arith!(|x, y| x * y, |x: i32, y: i32| x.wrapping_mul(y)),
        BinOp::Div => arith!(|x, y| x / y, |x: i32, y: i32| x / y),
        BinOp::Rem => match k {
            ScalarKind::I32 => {
                let (Value::I32(x), Value::I32(y)) = (a, b) else { unreachable!() };
                Value::I32(x % y)
            }
            _ => panic!("% on float operands"),
        },
        BinOp::Eq => pred!(|x, y| x == y),
        BinOp::Ne => pred!(|x, y| x != y),
        BinOp::Lt => pred!(|x, y| x < y),
        BinOp::Le => pred!(|x, y| x <= y),
        BinOp::Gt => pred!(|x, y| x > y),
        BinOp::Ge => pred!(|x, y| x >= y),
        BinOp::And => Value::Bool(a.truthy() && b.truthy()),
        BinOp::Or => Value::Bool(a.truthy() || b.truthy()),
    }
}

/// Evaluates a math intrinsic. Exposed for the `vgpu` interpreter.
pub fn eval_intrinsic(i: Intrinsic, vals: &[Value]) -> Value {
    fn unary32(f: impl Fn(f32) -> f32, g: impl Fn(f64) -> f64, v: Value) -> Value {
        match v {
            Value::F32(x) => Value::F32(f(x)),
            Value::F64(x) => Value::F64(g(x)),
            other => Value::F64(g(other.as_f64())),
        }
    }
    match i {
        Intrinsic::Sqrt => unary32(f32::sqrt, f64::sqrt, vals[0]),
        Intrinsic::Fabs => unary32(f32::abs, f64::abs, vals[0]),
        Intrinsic::Exp => unary32(f32::exp, f64::exp, vals[0]),
        Intrinsic::Log => unary32(f32::ln, f64::ln, vals[0]),
        Intrinsic::Sin => unary32(f32::sin, f64::sin, vals[0]),
        Intrinsic::Cos => unary32(f32::cos, f64::cos, vals[0]),
        Intrinsic::Min => {
            let (a, b, k) = promote(vals[0], vals[1]);
            match k {
                ScalarKind::F32 => Value::F32(a.as_f64().min(b.as_f64()) as f32),
                ScalarKind::I32 => Value::I32(a.as_i64().min(b.as_i64()) as i32),
                _ => Value::F64(a.as_f64().min(b.as_f64())),
            }
        }
        Intrinsic::Max => {
            let (a, b, k) = promote(vals[0], vals[1]);
            match k {
                ScalarKind::F32 => Value::F32(a.as_f64().max(b.as_f64()) as f32),
                ScalarKind::I32 => Value::I32(a.as_i64().max(b.as_i64()) as i32),
                _ => Value::F64(a.as_f64().max(b.as_f64())),
            }
        }
        Intrinsic::Fma => match promote(vals[0], vals[1]) {
            (Value::F32(a), Value::F32(b), _) => Value::F32(a * b + vals[2].as_f64() as f32),
            (a, b, _) => Value::F64(a.as_f64() * b.as_f64() + vals[2].as_f64()),
        },
    }
}

/// A named scalar user function: the LIFT `UserFun`, with an executable body.
#[derive(Clone, Debug, PartialEq)]
pub struct UserFun {
    /// Name used in generated code.
    pub name: String,
    /// Parameter names and kinds (kinds may be `Real`).
    pub params: Vec<(String, ScalarKind)>,
    /// Result kind (may be `Real`).
    pub ret: ScalarKind,
    /// Executable body.
    pub body: SExpr,
}

impl UserFun {
    /// Builds a user function; `params` supplies `(name, kind)` pairs that
    /// the body refers to positionally via [`SExpr::Param`].
    pub fn new(
        name: impl Into<String>,
        params: Vec<(&str, ScalarKind)>,
        ret: ScalarKind,
        body: SExpr,
    ) -> Rc<UserFun> {
        Rc::new(UserFun {
            name: name.into(),
            params: params.into_iter().map(|(n, k)| (n.to_string(), k)).collect(),
            ret,
            body,
        })
    }

    /// Evaluates the function.
    pub fn eval(&self, args: &[Value], real: ScalarKind) -> Value {
        assert_eq!(
            args.len(),
            self.params.len(),
            "user function `{}` called with {} args, expects {}",
            self.name,
            args.len(),
            self.params.len()
        );
        let out = self.body.eval(args, real);
        out.cast(self.ret.resolve_real(real))
    }

    /// Static flop count per invocation.
    pub fn flop_count(&self) -> u64 {
        self.body.flop_count()
    }
}

impl fmt::Display for UserFun {
    /// Prints the signature only; bodies are pretty-printed by
    /// `crate::opencl`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, (n, k)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", k.c_name(), n)?;
        }
        write!(f, ") -> {}", self.ret.c_name())
    }
}

// Convenience operator overloads for building bodies.
impl std::ops::Add for SExpr {
    type Output = SExpr;
    fn add(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(BinOp::Add, Rc::new(self), Rc::new(rhs))
    }
}
impl std::ops::Sub for SExpr {
    type Output = SExpr;
    fn sub(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(BinOp::Sub, Rc::new(self), Rc::new(rhs))
    }
}
impl std::ops::Mul for SExpr {
    type Output = SExpr;
    fn mul(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(BinOp::Mul, Rc::new(self), Rc::new(rhs))
    }
}
impl std::ops::Div for SExpr {
    type Output = SExpr;
    fn div(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(BinOp::Div, Rc::new(self), Rc::new(rhs))
    }
}
impl std::ops::Neg for SExpr {
    type Output = SExpr;
    fn neg(self) -> SExpr {
        SExpr::Un(UnOp::Neg, Rc::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_arithmetic_is_f32() {
        let e = SExpr::real(0.1) + SExpr::real(0.2);
        let v = e.eval(&[], ScalarKind::F32);
        assert_eq!(v, Value::F32(0.1f32 + 0.2f32));
    }

    #[test]
    fn f64_arithmetic_is_f64() {
        let e = SExpr::real(0.1) + SExpr::real(0.2);
        let v = e.eval(&[], ScalarKind::F64);
        assert_eq!(v, Value::F64(0.1f64 + 0.2f64));
    }

    #[test]
    fn int_float_promotes() {
        let e = SExpr::int(3) * SExpr::real(0.5);
        assert_eq!(e.eval(&[], ScalarKind::F64), Value::F64(1.5));
    }

    #[test]
    fn select_picks_branch() {
        let e = SExpr::select(
            SExpr::cmp(BinOp::Gt, SExpr::p(0), SExpr::int(0)),
            SExpr::real(1.0),
            SExpr::real(-1.0),
        );
        assert_eq!(e.eval(&[Value::I32(5)], ScalarKind::F64), Value::F64(1.0));
        assert_eq!(e.eval(&[Value::I32(-5)], ScalarKind::F64), Value::F64(-1.0));
    }

    #[test]
    fn userfun_casts_result() {
        let f = UserFun::new("trunc", vec![("x", ScalarKind::F64)], ScalarKind::I32, SExpr::p(0));
        assert_eq!(f.eval(&[Value::F64(3.9)], ScalarKind::F64), Value::I32(3));
    }

    #[test]
    fn flop_count_counts_float_ops() {
        // (a + b) * c - d  → 3 flops
        let e = (SExpr::p(0) + SExpr::p(1)) * SExpr::p(2) - SExpr::p(3);
        assert_eq!(e.flop_count(), 3);
    }

    #[test]
    fn flop_count_select_takes_max() {
        let e = SExpr::select(SExpr::p(0), SExpr::p(1) + SExpr::p(2), SExpr::p(1));
        assert_eq!(e.flop_count(), 1);
    }

    #[test]
    fn intrinsics_match_std() {
        let e = SExpr::Call(Intrinsic::Sqrt, vec![SExpr::p(0)]);
        assert_eq!(e.eval(&[Value::F32(2.0)], ScalarKind::F32), Value::F32(2.0f32.sqrt()));
        assert_eq!(e.eval(&[Value::F64(2.0)], ScalarKind::F64), Value::F64(2.0f64.sqrt()));
    }

    #[test]
    fn min_max_on_ints() {
        let e = SExpr::Call(Intrinsic::Min, vec![SExpr::p(0), SExpr::p(1)]);
        assert_eq!(e.eval(&[Value::I32(3), Value::I32(7)], ScalarKind::F32), Value::I32(3));
    }

    #[test]
    fn integer_div_truncates() {
        let e = SExpr::p(0) / SExpr::p(1);
        assert_eq!(e.eval(&[Value::I32(7), Value::I32(2)], ScalarKind::F32), Value::I32(3));
    }

    #[test]
    fn cast_real_resolves() {
        let e = SExpr::cast(ScalarKind::Real, SExpr::int(1));
        assert_eq!(e.eval(&[], ScalarKind::F32), Value::F32(1.0));
        assert_eq!(e.eval(&[], ScalarKind::F64), Value::F64(1.0));
    }

    #[test]
    fn value_cast_roundtrip() {
        assert_eq!(Value::F64(2.5).cast(ScalarKind::I32), Value::I32(2));
        assert_eq!(Value::I32(1).cast(ScalarKind::Bool), Value::Bool(true));
        assert_eq!(Value::Bool(true).cast(ScalarKind::F32), Value::F32(1.0));
    }

    #[test]
    fn logical_ops() {
        let e = SExpr::cmp(BinOp::And, SExpr::p(0), SExpr::p(1));
        assert_eq!(
            e.eval(&[Value::Bool(true), Value::Bool(false)], ScalarKind::F32),
            Value::Bool(false)
        );
    }
}

//! Bottom-up type inference for the pattern IR.
//!
//! Kernel inputs carry declared types; lambda parameters are inferred from
//! the array the enclosing `map`/`reduce` traverses. Results live in side
//! tables keyed by [`ExprId`]/[`ParamId`] so the IR itself stays immutable.

use crate::arith::ArithExpr;
use crate::ir::{Expr, ExprId, ExprKind, ExprRef, Lambda, ParamId};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// The result of type checking: a type for every expression and parameter.
#[derive(Debug, Default, Clone)]
pub struct Typed {
    /// Expression types.
    pub expr: HashMap<ExprId, Type>,
    /// Parameter types (declared or inferred).
    pub params: HashMap<ParamId, Type>,
}

impl Typed {
    /// Type of an expression (panics if the expression was not checked —
    /// that would be a bug in a pass, not a user error).
    pub fn of(&self, e: &Expr) -> &Type {
        self.expr.get(&e.id).unwrap_or_else(|| panic!("expression {:?} has no inferred type", e.id))
    }
}

/// A type error with the offending node.
#[derive(Debug, Clone)]
pub struct TypeError {
    /// Offending expression.
    pub id: ExprId,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at node {:?}: {}", self.id, self.msg)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(e: &Expr, msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError { id: e.id, msg: msg.into() })
}

/// Type-checks `root`, given that all its free parameters carry declared
/// types.
pub fn check(root: &ExprRef) -> Result<Typed, TypeError> {
    let mut t = Typed::default();
    infer(root, &mut t)?;
    Ok(t)
}

fn expect_array<'t>(
    e: &Expr,
    t: &'t Type,
    what: &str,
) -> Result<(&'t Type, &'t ArithExpr), TypeError> {
    match t {
        Type::Array(elem, n) => Ok((elem, n)),
        other => err(e, format!("{what} expects an array, got {other}")),
    }
}

/// Peels two array levels: returns (elem, nx, ny).
fn expect_array2<'t>(
    e: &Expr,
    t: &'t Type,
    what: &str,
) -> Result<(&'t Type, &'t ArithExpr, &'t ArithExpr), TypeError> {
    let (l1, ny) = expect_array(e, t, what)?;
    let (elem, nx) = expect_array(e, l1, what)?;
    Ok((elem, nx, ny))
}

/// Peels three array levels: returns (elem, nx, ny, nz).
fn expect_array3<'t>(
    e: &Expr,
    t: &'t Type,
    what: &str,
) -> Result<(&'t Type, &'t ArithExpr, &'t ArithExpr, &'t ArithExpr), TypeError> {
    let (l2, nz) = expect_array(e, t, what)?;
    let (l1, ny) = expect_array(e, l2, what)?;
    let (elem, nx) = expect_array(e, l1, what)?;
    Ok((elem, nx, ny, nz))
}

fn expect_scalar(e: &Expr, t: &Type, what: &str) -> Result<(), TypeError> {
    match t {
        Type::Scalar(_) => Ok(()),
        other => err(e, format!("{what} expects a scalar, got {other}")),
    }
}

fn infer_lambda1(f: &Lambda, arg: Type, t: &mut Typed) -> Result<Type, TypeError> {
    assert_eq!(f.params.len(), 1, "expected unary lambda");
    t.params.insert(f.params[0].id, arg);
    infer(&f.body, t)
}

fn infer(e: &ExprRef, t: &mut Typed) -> Result<Type, TypeError> {
    if let Some(ty) = t.expr.get(&e.id) {
        return Ok(ty.clone());
    }
    let ty = match &e.kind {
        ExprKind::Param(p) => match t.params.get(&p.id) {
            Some(ty) => ty.clone(),
            None => match &p.ty {
                Some(ty) => {
                    t.params.insert(p.id, ty.clone());
                    ty.clone()
                }
                None => {
                    return err(
                        e,
                        format!(
                            "parameter `{}` has no type and is not bound by an enclosing pattern",
                            p.name
                        ),
                    )
                }
            },
        },
        ExprKind::Literal(l) => Type::Scalar(l.kind),
        ExprKind::Call { f, args } => {
            if f.params.len() != args.len() {
                return err(
                    e,
                    format!("`{}` expects {} args, got {}", f.name, f.params.len(), args.len()),
                );
            }
            for a in args {
                let at = infer(a, t)?;
                expect_scalar(e, &at, &format!("argument of `{}`", f.name))?;
            }
            Type::Scalar(f.ret)
        }
        ExprKind::Tuple(parts) => {
            let mut ts = Vec::with_capacity(parts.len());
            for p in parts {
                ts.push(infer(p, t)?);
            }
            Type::Tuple(ts)
        }
        ExprKind::Get { tuple, index } => {
            let tt = infer(tuple, t)?;
            match tt {
                Type::Tuple(parts) if *index < parts.len() => parts[*index].clone(),
                Type::Tuple(parts) => {
                    return err(
                        e,
                        format!("tuple has {} components, index {index} out of range", parts.len()),
                    )
                }
                other => return err(e, format!("get expects a tuple, got {other}")),
            }
        }
        ExprKind::At { array, index } => {
            let at = infer(array, t)?;
            let it = infer(index, t)?;
            expect_scalar(e, &it, "array index")?;
            let (elem, _) = expect_array(e, &at, "at")?;
            elem.clone()
        }
        ExprKind::Slice { array, start, stride: _, len } => {
            let at = infer(array, t)?;
            let st = infer(start, t)?;
            expect_scalar(e, &st, "slice start")?;
            let (elem, _) = expect_array(e, &at, "slice")?;
            Type::Array(Box::new(elem.clone()), len.clone())
        }
        ExprKind::Iota { n } => Type::array(Type::i32(), n.clone()),
        ExprKind::SizeVal(_) => Type::i32(),
        ExprKind::Let { param, value, body } => {
            let vt = infer(value, t)?;
            t.params.insert(param.id, vt);
            infer(body, t)?
        }
        ExprKind::Map { f, input, .. } => {
            let it = infer(input, t)?;
            let (elem, n) = expect_array(e, &it, "map")?;
            let out = infer_lambda1(f, elem.clone(), t)?;
            Type::Array(Box::new(out), n.clone())
        }
        ExprKind::Map2 { f, input, .. } => {
            let it = infer(input, t)?;
            let (elem, nx, ny) = expect_array2(e, &it, "map2")?;
            let out = infer_lambda1(f, elem.clone(), t)?;
            Type::array2(out, nx.clone(), ny.clone())
        }
        ExprKind::Map3 { f, input, .. } => {
            let it = infer(input, t)?;
            let (elem, nx, ny, nz) = expect_array3(e, &it, "map3")?;
            let out = infer_lambda1(f, elem.clone(), t)?;
            Type::array3(out, nx.clone(), ny.clone(), nz.clone())
        }
        ExprKind::Zip(parts) => {
            let mut elems = Vec::with_capacity(parts.len());
            let mut len: Option<ArithExpr> = None;
            for p in parts {
                let pt = infer(p, t)?;
                let (elem, n) = expect_array(e, &pt, "zip")?;
                if let Some(prev) = &len {
                    if prev != n {
                        return err(e, format!("zip length mismatch: {prev} vs {n}"));
                    }
                } else {
                    len = Some(n.clone());
                }
                elems.push(elem.clone());
            }
            Type::Array(Box::new(Type::Tuple(elems)), len.expect("zip is non-empty"))
        }
        ExprKind::Zip2(parts) => {
            let mut elems = Vec::with_capacity(parts.len());
            let mut dims: Option<(ArithExpr, ArithExpr)> = None;
            for p in parts {
                let pt = infer(p, t)?;
                let (elem, nx, ny) = expect_array2(e, &pt, "zip2")?;
                if let Some((px, py)) = &dims {
                    if px != nx || py != ny {
                        return err(e, "zip2 shape mismatch");
                    }
                } else {
                    dims = Some((nx.clone(), ny.clone()));
                }
                elems.push(elem.clone());
            }
            let (nx, ny) = dims.expect("zip2 is non-empty");
            Type::array2(Type::Tuple(elems), nx, ny)
        }
        ExprKind::Zip3(parts) => {
            let mut elems = Vec::with_capacity(parts.len());
            let mut dims: Option<(ArithExpr, ArithExpr, ArithExpr)> = None;
            for p in parts {
                let pt = infer(p, t)?;
                let (elem, nx, ny, nz) = expect_array3(e, &pt, "zip3")?;
                if let Some((px, py, pz)) = &dims {
                    if px != nx || py != ny || pz != nz {
                        return err(e, "zip3 shape mismatch");
                    }
                } else {
                    dims = Some((nx.clone(), ny.clone(), nz.clone()));
                }
                elems.push(elem.clone());
            }
            let (nx, ny, nz) = dims.expect("zip3 is non-empty");
            Type::array3(Type::Tuple(elems), nx, ny, nz)
        }
        ExprKind::Slide { size, step, input } => {
            let it = infer(input, t)?;
            let (elem, n) = expect_array(e, &it, "slide")?;
            let windows = ArithExpr::div(n.clone() - ArithExpr::cst(*size), ArithExpr::cst(*step))
                + ArithExpr::one();
            Type::Array(Box::new(Type::array(elem.clone(), *size)), windows)
        }
        ExprKind::Slide2 { size, step, input } => {
            let it = infer(input, t)?;
            let (elem, nx, ny) = expect_array2(e, &it, "slide2")?;
            let w = |n: &ArithExpr| {
                ArithExpr::div(n.clone() - ArithExpr::cst(*size), ArithExpr::cst(*step))
                    + ArithExpr::one()
            };
            let window = Type::array2(elem.clone(), *size, *size);
            Type::array2(window, w(nx), w(ny))
        }
        ExprKind::Slide3 { size, step, input } => {
            let it = infer(input, t)?;
            let (elem, nx, ny, nz) = expect_array3(e, &it, "slide3")?;
            let w = |n: &ArithExpr| {
                ArithExpr::div(n.clone() - ArithExpr::cst(*size), ArithExpr::cst(*step))
                    + ArithExpr::one()
            };
            let window = Type::array3(elem.clone(), *size, *size, *size);
            Type::array3(window, w(nx), w(ny), w(nz))
        }
        ExprKind::Pad { left, right, kind, input } => {
            let it = infer(input, t)?;
            let (elem, n) = expect_array(e, &it, "pad")?;
            if matches!(kind, crate::ir::PadKind::Constant(_)) {
                expect_scalar(e, elem, "constant pad element")?;
            }
            Type::Array(Box::new(elem.clone()), n.clone() + ArithExpr::cst(*left + *right))
        }
        ExprKind::Pad2 { amount, kind, input } => {
            let it = infer(input, t)?;
            let (elem, nx, ny) = expect_array2(e, &it, "pad2")?;
            if matches!(kind, crate::ir::PadKind::Constant(_)) {
                expect_scalar(e, elem, "constant pad2 element")?;
            }
            let grow = |n: &ArithExpr| n.clone() + ArithExpr::cst(2 * *amount);
            Type::array2(elem.clone(), grow(nx), grow(ny))
        }
        ExprKind::Pad3 { amount, kind, input } => {
            let it = infer(input, t)?;
            let (elem, nx, ny, nz) = expect_array3(e, &it, "pad3")?;
            if matches!(kind, crate::ir::PadKind::Constant(_)) {
                expect_scalar(e, elem, "constant pad3 element")?;
            }
            let grow = |n: &ArithExpr| n.clone() + ArithExpr::cst(2 * *amount);
            Type::array3(elem.clone(), grow(nx), grow(ny), grow(nz))
        }
        ExprKind::Crop3 { margin, input } => {
            let it = infer(input, t)?;
            let (elem, nx, ny, nz) = expect_array3(e, &it, "crop3")?;
            let shrink = |n: &ArithExpr| n.clone() - ArithExpr::cst(2 * *margin);
            Type::array3(elem.clone(), shrink(nx), shrink(ny), shrink(nz))
        }
        ExprKind::Split { chunk, input } => {
            let it = infer(input, t)?;
            let (elem, n) = expect_array(e, &it, "split")?;
            Type::Array(
                Box::new(Type::Array(Box::new(elem.clone()), chunk.clone())),
                ArithExpr::div(n.clone(), chunk.clone()),
            )
        }
        ExprKind::Join { input } => {
            let it = infer(input, t)?;
            let (outer_elem, n) = expect_array(e, &it, "join")?;
            let (elem, m) = expect_array(e, outer_elem, "join inner")?;
            Type::Array(Box::new(elem.clone()), m.clone() * n.clone())
        }
        ExprKind::ReduceSeq { f, init, input } => {
            let acc_t = infer(init, t)?;
            let it = infer(input, t)?;
            let (elem, _) = expect_array(e, &it, "reduceSeq")?;
            assert_eq!(f.params.len(), 2, "reduce lambda must be binary");
            t.params.insert(f.params[0].id, acc_t.clone());
            t.params.insert(f.params[1].id, elem.clone());
            let out = infer(&f.body, t)?;
            if out != acc_t {
                return err(e, format!("reduce combinator returns {out}, accumulator is {acc_t}"));
            }
            acc_t
        }
        ExprKind::ToPrivate(inner) | ExprKind::ToLocal(inner) => infer(inner, t)?,
        ExprKind::Concat(parts) => {
            if parts.is_empty() {
                return err(e, "concat of zero arrays");
            }
            let mut elem: Option<Type> = None;
            let mut total = ArithExpr::zero();
            for p in parts {
                let pt = infer(p, t)?;
                let (pe, n) = expect_array(e, &pt, "concat")?;
                if let Some(prev) = &elem {
                    if prev != pe {
                        return err(e, format!("concat element type mismatch: {prev} vs {pe}"));
                    }
                } else {
                    elem = Some(pe.clone());
                }
                total = total + n.clone();
            }
            Type::Array(Box::new(elem.unwrap()), total)
        }
        ExprKind::Skip { len, elem } => {
            let lt = infer(len, t)?;
            expect_scalar(e, &lt, "skip length")?;
            // The type-level length of a Skip is an opaque fresh symbol; the
            // actual offset is the runtime `len` value (§IV-B of the paper:
            // Skip generates no code, it only shifts subsequent writes).
            Type::Array(Box::new(elem.clone()), ArithExpr::var(format!("skip{}", e.id.0)))
        }
        ExprKind::ArrayCons { elem, n } => {
            let et = infer(elem, t)?;
            Type::Array(Box::new(et), n.clone())
        }
        ExprKind::WriteTo { dest, value } => {
            let dt = infer(dest, t)?;
            let vt = infer(value, t)?;
            // The destination and value must agree on scalar kind; lengths
            // may differ symbolically (Skip lengths are opaque).
            match (dt.scalar_kind(), vt.scalar_kind()) {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => {
                    return err(e, format!("writeTo kind mismatch: destination {a:?}, value {b:?}"))
                }
                _ => {}
            }
            vt
        }
    };
    t.expr.insert(e.id, ty.clone());
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::scalar::{Lit, SExpr, UserFun};
    use crate::types::{ScalarKind, Type};

    fn add2() -> std::rc::Rc<UserFun> {
        UserFun::new(
            "add2",
            vec![("x", ScalarKind::Real)],
            ScalarKind::Real,
            SExpr::p(0) + SExpr::real(2.0),
        )
    }

    #[test]
    fn map_over_array() {
        let p = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let e = map_glb(p.to_expr(), "x", |x| call(&add2(), vec![x]));
        let t = check(&e).unwrap();
        assert_eq!(*t.of(&e), Type::array(Type::real(), "N"));
    }

    #[test]
    fn zip_mismatched_lengths_rejected() {
        let a = ParamDef::typed("a", Type::array(Type::f32(), "N"));
        let b = ParamDef::typed("b", Type::array(Type::f32(), "M"));
        let e = zip(vec![a.to_expr(), b.to_expr()]);
        assert!(check(&e).is_err());
    }

    #[test]
    fn zip_makes_tuples() {
        let a = ParamDef::typed("a", Type::array(Type::f32(), "N"));
        let b = ParamDef::typed("b", Type::array(Type::i32(), "N"));
        let e = zip(vec![a.to_expr(), b.to_expr()]);
        let t = check(&e).unwrap();
        assert_eq!(*t.of(&e), Type::array(Type::tuple(vec![Type::f32(), Type::i32()]), "N"));
    }

    #[test]
    fn slide_window_count() {
        let a = ParamDef::typed("a", Type::array(Type::f32(), 10usize));
        let e = slide(3, 1, a.to_expr());
        let t = check(&e).unwrap();
        let Type::Array(elem, n) = t.of(&e).clone() else { panic!() };
        assert_eq!(n.as_cst(), Some(8));
        assert_eq!(*elem, Type::array(Type::f32(), 3usize));
    }

    #[test]
    fn pad_grows() {
        let a = ParamDef::typed("a", Type::array(Type::f32(), "N"));
        let e = pad(1, 1, PadKind::Constant(Lit::f32(0.0)), a.to_expr());
        let t = check(&e).unwrap();
        assert_eq!(
            t.of(&e).len().unwrap(),
            &(crate::arith::ArithExpr::var("N") + crate::arith::ArithExpr::cst(2))
        );
    }

    #[test]
    fn slide3_of_pad3_restores_dims() {
        let a = ParamDef::typed("a", Type::array3(Type::real(), "Nx", "Ny", "Nz"));
        let e = slide3(3, 1, pad3(1, PadKind::Constant(Lit::real(0.0)), a.to_expr()));
        let t = check(&e).unwrap();
        let (_, nx, _, nz) = match t.of(&e) {
            Type::Array(l2, nz) => match &**l2 {
                Type::Array(l1, ny) => match &**l1 {
                    Type::Array(w, nx) => (w, nx.clone(), ny.clone(), nz.clone()),
                    _ => panic!(),
                },
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(nx, crate::arith::ArithExpr::var("Nx"));
        assert_eq!(nz, crate::arith::ArithExpr::var("Nz"));
    }

    #[test]
    fn crop3_shrinks() {
        let a = ParamDef::typed("a", Type::array3(Type::real(), 10usize, 10usize, 10usize));
        let e = crop3(1, a.to_expr());
        let t = check(&e).unwrap();
        let Type::Array(_, nz) = t.of(&e) else { panic!() };
        assert_eq!(nz.as_cst(), Some(8));
    }

    #[test]
    fn reduce_type_checks() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let addf = UserFun::new(
            "add",
            vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
            ScalarKind::Real,
            SExpr::p(0) + SExpr::p(1),
        );
        let e = reduce_seq(lit(Lit::real(0.0)), a.to_expr(), |acc, x| call(&addf, vec![acc, x]));
        let t = check(&e).unwrap();
        assert_eq!(*t.of(&e), Type::real());
    }

    #[test]
    fn concat_sums_lengths() {
        let a = ParamDef::typed("a", Type::array(Type::f32(), 3usize));
        let b = ParamDef::typed("b", Type::array(Type::f32(), 4usize));
        let e = concat(vec![a.to_expr(), b.to_expr()]);
        let t = check(&e).unwrap();
        assert_eq!(t.of(&e).len().unwrap().as_cst(), Some(7));
    }

    #[test]
    fn concat_rejects_mixed_elems() {
        let a = ParamDef::typed("a", Type::array(Type::f32(), 3usize));
        let b = ParamDef::typed("b", Type::array(Type::i32(), 4usize));
        assert!(check(&concat(vec![a.to_expr(), b.to_expr()])).is_err());
    }

    #[test]
    fn skip_has_opaque_length() {
        let n = ParamDef::typed("n", Type::i32());
        let e = skip(n.to_expr(), Type::f32());
        let t = check(&e).unwrap();
        let len = t.of(&e).len().unwrap().clone();
        assert!(!len.free_vars().is_empty());
    }

    #[test]
    fn in_place_concat_idiom_checks() {
        // Map(idx => WriteTo(next, Concat(Skip(idx), ArrayCons(f(next[idx]),1), Skip(N-1-idx)))) << indices
        let indices = ParamDef::typed("indices", Type::array(Type::i32(), "numB"));
        let next = ParamDef::typed("next", Type::array(Type::real(), "N"));
        let sub1 = UserFun::new(
            "restlen",
            vec![("n", ScalarKind::I32), ("i", ScalarKind::I32)],
            ScalarKind::I32,
            SExpr::p(0) - SExpr::p(1) - SExpr::int(1),
        );
        let nlit = ParamDef::typed("Ncount", Type::i32());
        let e = map_glb(indices.to_expr(), "idx", |idx| {
            let upd = call(&add2(), vec![at(next.to_expr(), idx.clone())]);
            write_to(
                next.to_expr(),
                concat(vec![
                    skip(idx.clone(), Type::real()),
                    array_cons(upd, 1usize),
                    skip(call(&sub1, vec![nlit.to_expr(), idx]), Type::real()),
                ]),
            )
        });
        let t = check(&e).unwrap();
        let Type::Array(row, n) = t.of(&e) else { panic!() };
        assert_eq!(**row, Type::array(Type::real(), t_row_len(row)));
        assert_eq!(n, &crate::arith::ArithExpr::var("numB"));
    }

    fn t_row_len(row: &Type) -> crate::arith::ArithExpr {
        row.len().unwrap().clone()
    }

    #[test]
    fn unbound_param_errors() {
        let p = ParamDef::untyped("x");
        assert!(check(&p.to_expr()).is_err());
    }

    #[test]
    fn iota_is_int_array() {
        let e = iota("MB");
        let t = check(&e).unwrap();
        assert_eq!(*t.of(&e), Type::array(Type::i32(), "MB"));
    }

    #[test]
    fn slice_length_is_given() {
        let g = ParamDef::typed("g1", Type::array(Type::real(), "S"));
        let i = ParamDef::typed("i", Type::i32());
        let e = slice(g.to_expr(), i.to_expr(), "numB", "MB");
        let t = check(&e).unwrap();
        assert_eq!(*t.of(&e), Type::array(Type::real(), "MB"));
    }
}

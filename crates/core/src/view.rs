//! The view system: compiler-intermediate data structures capturing memory
//! access patterns (§III-A of the paper).
//!
//! A [`View`] describes *where* the data denoted by an IR expression lives
//! and how indices map onto it. Data-layout patterns (`zip`, `slide`, `pad`,
//! `split`, `join`, `crop`, the new `Concat`/`Skip` offsets, …) never
//! generate code: they only build views. When lowering reaches a scalar
//! read or write, the view chain is *collapsed* into a single indexed
//! load/store expression — e.g. the paper's
//! `TupleAccessView(0, ArrayAccessView(i, ZipView(MemView(A), MemView(B))))`
//! collapses to `A[i]`.
//!
//! Views here are consumed functionally: [`View::access`] peels one array
//! level, [`View::tuple_get`] projects a component, and [`View::as_scalar`] /
//! [`View::store`] produce the final kernel-AST load or store.

use crate::arith::ArithExpr;
use crate::ir::PadKind;
use crate::kast::{KExpr, KStmt, MemRef};
use crate::scalar::{BinOp, Intrinsic, Lit};
use crate::types::{ScalarKind, Type};
use std::fmt;

/// Error produced while collapsing a view.
#[derive(Debug, Clone)]
pub struct ViewError(pub String);

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view error: {}", self.0)
    }
}

impl std::error::Error for ViewError {}

/// Folds `a + b` over kernel expressions, simplifying literal zeros.
pub fn kadd(a: KExpr, b: KExpr) -> KExpr {
    match (&a, &b) {
        (KExpr::Lit(x), KExpr::Lit(y))
            if x.kind == ScalarKind::I32 && y.kind == ScalarKind::I32 =>
        {
            KExpr::int((x.value as i32) + (y.value as i32))
        }
        (KExpr::Lit(x), _) if x.value == 0.0 && x.kind == ScalarKind::I32 => b,
        (_, KExpr::Lit(y)) if y.value == 0.0 && y.kind == ScalarKind::I32 => a,
        _ => KExpr::bin(BinOp::Add, a, b),
    }
}

/// Folds `a - b` over kernel expressions.
pub fn ksub(a: KExpr, b: KExpr) -> KExpr {
    match (&a, &b) {
        (KExpr::Lit(x), KExpr::Lit(y))
            if x.kind == ScalarKind::I32 && y.kind == ScalarKind::I32 =>
        {
            KExpr::int((x.value as i32) - (y.value as i32))
        }
        (_, KExpr::Lit(y)) if y.value == 0.0 && y.kind == ScalarKind::I32 => a,
        _ => KExpr::bin(BinOp::Sub, a, b),
    }
}

/// Folds `a * b` over kernel expressions, simplifying literal zero/one.
pub fn kmul(a: KExpr, b: KExpr) -> KExpr {
    match (&a, &b) {
        (KExpr::Lit(x), KExpr::Lit(y))
            if x.kind == ScalarKind::I32 && y.kind == ScalarKind::I32 =>
        {
            KExpr::int((x.value as i32) * (y.value as i32))
        }
        (KExpr::Lit(x), _) if x.kind == ScalarKind::I32 => match x.value as i32 {
            0 => KExpr::int(0),
            1 => b,
            _ => KExpr::bin(BinOp::Mul, a, b),
        },
        (_, KExpr::Lit(y)) if y.kind == ScalarKind::I32 => match y.value as i32 {
            0 => KExpr::int(0),
            1 => a,
            _ => KExpr::bin(BinOp::Mul, a, b),
        },
        _ => KExpr::bin(BinOp::Mul, a, b),
    }
}

/// Folds `a / b` over kernel expressions (literal ints and `x / 1`).
pub fn kdiv(a: KExpr, b: KExpr) -> KExpr {
    match (&a, &b) {
        (KExpr::Lit(x), KExpr::Lit(y))
            if x.kind == ScalarKind::I32 && y.kind == ScalarKind::I32 && y.value != 0.0 =>
        {
            KExpr::int((x.value as i32) / (y.value as i32))
        }
        (_, KExpr::Lit(y)) if y.kind == ScalarKind::I32 && y.value == 1.0 => a,
        _ => KExpr::bin(BinOp::Div, a, b),
    }
}

/// Folds `a % b` over kernel expressions (literal ints and `x % 1`).
pub fn krem(a: KExpr, b: KExpr) -> KExpr {
    match (&a, &b) {
        (KExpr::Lit(x), KExpr::Lit(y))
            if x.kind == ScalarKind::I32 && y.kind == ScalarKind::I32 && y.value != 0.0 =>
        {
            KExpr::int((x.value as i32) % (y.value as i32))
        }
        (_, KExpr::Lit(y)) if y.kind == ScalarKind::I32 && y.value == 1.0 => KExpr::int(0),
        _ => KExpr::bin(BinOp::Rem, a, b),
    }
}

/// A view of data. See the module docs.
#[derive(Clone, Debug)]
pub enum View {
    /// A value (scalar or nested array) in addressable memory, `offset`
    /// scalar elements from the start of `mem`. Layout is row-major with the
    /// innermost dimension contiguous (the paper's `z*Nx*Ny + y*Nx + x`).
    Mem {
        /// Backing memory.
        mem: MemRef,
        /// Type of the viewed value (drives strides).
        ty: Type,
        /// Linear offset in elements.
        offset: KExpr,
    },
    /// A constant broadcast over any shape (the out-of-range value of a
    /// constant `pad`).
    ConstLit(Lit),
    /// A computed scalar (e.g. an `iota` element or a `let`-bound scalar
    /// variable).
    Expr(KExpr, ScalarKind),
    /// A tuple of views (from `zip` after full access, or a `Tuple` node).
    Tuple(Vec<View>),
    /// Zip: the next `levels` accesses distribute to every part; the
    /// element is then a tuple.
    ZipV {
        /// Zipped arrays.
        parts: Vec<View>,
        /// Array levels remaining before the element tuple.
        levels: u8,
    },
    /// Sliding windows over `dims` dimensions: the first `dims` accesses
    /// select the window, the next `dims` select within the window.
    SlideV {
        /// Underlying array view.
        base: Box<View>,
        /// Window step.
        step: i64,
        /// Dimensionality (1 or 3).
        dims: u8,
        /// Collected window origins (scaled by `step`).
        ws: Vec<KExpr>,
        /// Collected in-window offsets.
        ds: Vec<KExpr>,
    },
    /// Padding over `dims` dimensions: collects `dims` indices, then guards.
    PadV {
        /// Underlying array view.
        base: Box<View>,
        /// Pad width before index 0 (per dimension).
        left: i64,
        /// Pad width after the end (per dimension).
        right: i64,
        /// Dimensionality (1 or 3).
        dims: u8,
        /// Unpadded length of each dimension, outermost first.
        lens: Vec<ArithExpr>,
        /// Out-of-range behaviour.
        kind: PadKind,
        /// Collected indices.
        idxs: Vec<KExpr>,
    },
    /// Interior view: the next `remaining` accesses are shifted by `margin`.
    CropV {
        /// Underlying array view.
        base: Box<View>,
        /// Shift per level.
        margin: i64,
        /// Levels still to shift.
        remaining: u8,
    },
    /// Affine index remap over one level: element `i` reads
    /// `base[start + i*stride]`. Implements `Slice`, `Split` chunks and
    /// `Concat` offsets.
    Gather {
        /// Underlying array view.
        base: Box<View>,
        /// Start offset.
        start: KExpr,
        /// Stride between elements.
        stride: KExpr,
    },
    /// Flattened nesting: element `i` reads `base[i / inner][i % inner]`.
    JoinV {
        /// Underlying `[[T; inner]; _]` view.
        base: Box<View>,
        /// Inner length.
        inner: ArithExpr,
    },
    /// Chunked nesting: element `i` is the view of chunk `i`.
    SplitV {
        /// Underlying flat view.
        base: Box<View>,
        /// Chunk length.
        chunk: ArithExpr,
    },
    /// A conditional view: when `cond` holds, reads see `fallback`,
    /// otherwise `inside`. Collapses to a C ternary.
    Guard {
        /// Out-of-range condition.
        cond: KExpr,
        /// View used when `cond` holds.
        fallback: Box<View>,
        /// View used otherwise.
        inside: Box<View>,
    },
    /// The `iota` array: element `i` is the value `i` itself.
    IotaV,
    /// An array whose every element is the same computed scalar (the view of
    /// `ArrayCons` in input position).
    Broadcast(KExpr, ScalarKind),
}

impl View {
    /// A memory view at offset 0.
    pub fn mem(mem: MemRef, ty: Type) -> View {
        View::Mem { mem, ty, offset: KExpr::int(0) }
    }

    /// Peels one array level at index `i`.
    pub fn access(self, i: KExpr) -> Result<View, ViewError> {
        match self {
            View::Mem { mem, ty, offset } => match ty {
                Type::Array(elem, _) => {
                    let stride = KExpr::from_arith(&elem.scalar_count());
                    let offset = kadd(offset, kmul(i, stride));
                    Ok(View::Mem { mem, ty: *elem, offset })
                }
                other => {
                    Err(ViewError(format!("cannot index non-array memory view of type {other}")))
                }
            },
            View::ConstLit(l) => Ok(View::ConstLit(l)),
            View::Expr(_, _) => Err(ViewError("cannot index a scalar expression view".into())),
            View::Tuple(_) => Err(ViewError("cannot index a tuple view; project first".into())),
            View::ZipV { parts, levels } => {
                let accessed: Result<Vec<View>, ViewError> =
                    parts.into_iter().map(|p| p.access(i.clone())).collect();
                let accessed = accessed?;
                if levels <= 1 {
                    Ok(View::Tuple(accessed))
                } else {
                    Ok(View::ZipV { parts: accessed, levels: levels - 1 })
                }
            }
            View::SlideV { base, step, dims, mut ws, mut ds } => {
                if (ws.len() as u8) < dims {
                    ws.push(kmul(i, KExpr::int(step as i32)));
                    Ok(View::SlideV { base, step, dims, ws, ds })
                } else {
                    ds.push(i);
                    if (ds.len() as u8) == dims {
                        // Fully selected: apply combined indices to the base.
                        let mut v = *base;
                        for k in 0..dims as usize {
                            v = v.access(kadd(ws[k].clone(), ds[k].clone()))?;
                        }
                        Ok(v)
                    } else {
                        Ok(View::SlideV { base, step, dims, ws, ds })
                    }
                }
            }
            View::PadV { base, left, right, dims, lens, kind, mut idxs } => {
                idxs.push(i);
                if (idxs.len() as u8) < dims {
                    return Ok(View::PadV { base, left, right, dims, lens, kind, idxs });
                }
                let l = KExpr::int(left as i32);
                match kind {
                    PadKind::Clamp => {
                        let mut v = *base;
                        for (k, idx) in idxs.iter().enumerate() {
                            let n = KExpr::from_arith(&lens[k]);
                            let shifted = ksub(idx.clone(), l.clone());
                            let clamped = KExpr::Call(
                                Intrinsic::Min,
                                vec![
                                    KExpr::Call(Intrinsic::Max, vec![shifted, KExpr::int(0)]),
                                    ksub(n, KExpr::int(1)),
                                ],
                            );
                            v = v.access(clamped)?;
                        }
                        Ok(v)
                    }
                    PadKind::Constant(c) => {
                        // cond: any index outside [left, left + n_k)
                        let mut cond: Option<KExpr> = None;
                        let mut v = *base;
                        for (k, idx) in idxs.iter().enumerate() {
                            let n = KExpr::from_arith(&lens[k]);
                            let below = KExpr::bin(BinOp::Lt, idx.clone(), l.clone());
                            let above = KExpr::bin(BinOp::Ge, idx.clone(), kadd(l.clone(), n));
                            let outside = KExpr::bin(BinOp::Or, below, above);
                            cond = Some(match cond {
                                None => outside,
                                Some(c0) => KExpr::bin(BinOp::Or, c0, outside),
                            });
                            v = v.access(ksub(idx.clone(), l.clone()))?;
                        }
                        Ok(View::Guard {
                            cond: cond.expect("pad has at least one dim"),
                            fallback: Box::new(View::ConstLit(c)),
                            inside: Box::new(v),
                        })
                    }
                }
            }
            View::CropV { base, margin, remaining } => {
                let shifted = kadd(i, KExpr::int(margin as i32));
                let b2 = base.access(shifted)?;
                if remaining <= 1 {
                    Ok(b2)
                } else {
                    Ok(View::CropV { base: Box::new(b2), margin, remaining: remaining - 1 })
                }
            }
            View::Gather { base, start, stride } => base.access(kadd(start, kmul(i, stride))),
            View::JoinV { base, inner } => {
                let m = KExpr::from_arith(&inner);
                let outer = kdiv(i.clone(), m.clone());
                let inner_i = krem(i, m);
                base.access(outer)?.access(inner_i)
            }
            View::SplitV { base, chunk } => {
                let start = kmul(i, KExpr::from_arith(&chunk));
                Ok(View::Gather { base, start, stride: KExpr::int(1) })
            }
            View::Guard { cond, fallback, inside } => Ok(View::Guard {
                cond,
                fallback: Box::new(fallback.access(i.clone())?),
                inside: Box::new(inside.access(i)?),
            }),
            View::IotaV => Ok(View::Expr(i, ScalarKind::I32)),
            View::Broadcast(e, k) => Ok(View::Expr(e, k)),
        }
    }

    /// Projects tuple component `k`.
    pub fn tuple_get(self, k: usize) -> Result<View, ViewError> {
        match self {
            View::Tuple(mut parts) => {
                if k < parts.len() {
                    Ok(parts.swap_remove(k))
                } else {
                    Err(ViewError(format!("tuple view has {} parts, wanted {k}", parts.len())))
                }
            }
            View::Guard { cond, fallback, inside } => Ok(View::Guard {
                cond,
                fallback: Box::new(fallback.tuple_get(k)?),
                inside: Box::new(inside.tuple_get(k)?),
            }),
            other => Err(ViewError(format!("tuple projection on non-tuple view {other:?}"))),
        }
    }

    /// Collapses a scalar view into a kernel expression (a load, literal,
    /// computed scalar, or guarded select thereof).
    pub fn as_scalar(&self) -> Result<KExpr, ViewError> {
        match self {
            View::Mem { mem, ty, offset } => match ty {
                Type::Scalar(_) => Ok(KExpr::load(mem.clone(), offset.clone())),
                other => Err(ViewError(format!("scalar read of non-scalar view of type {other}"))),
            },
            View::ConstLit(l) => Ok(KExpr::Lit(*l)),
            View::Expr(e, _) => Ok(e.clone()),
            View::Guard { cond, fallback, inside } => {
                Ok(KExpr::select(cond.clone(), fallback.as_scalar()?, inside.as_scalar()?))
            }
            other => Err(ViewError(format!("cannot read {other:?} as a scalar"))),
        }
    }

    /// Emits a store of `value` through this (scalar, memory-backed) view.
    pub fn store(&self, value: KExpr) -> Result<KStmt, ViewError> {
        match self {
            View::Mem { mem, ty, offset } => match ty {
                Type::Scalar(_) => {
                    Ok(KStmt::Store { mem: mem.clone(), idx: offset.clone(), value })
                }
                other => Err(ViewError(format!("store through non-scalar view of type {other}"))),
            },
            other => Err(ViewError(format!("cannot store through view {other:?}"))),
        }
    }

    /// The element count of the outermost array level, if this view is an
    /// array in memory (used to size loops over materialised views).
    pub fn array_len(&self) -> Option<ArithExpr> {
        match self {
            View::Mem { ty: Type::Array(_, n), .. } => Some(n.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::MemRef;

    fn mem1d(name_idx: usize, n: i64) -> View {
        View::mem(MemRef::Param(name_idx), Type::array(Type::f32(), n))
    }

    fn gid() -> KExpr {
        KExpr::GlobalId(0)
    }

    #[test]
    fn mem_access_is_linear() {
        let v = mem1d(0, 16).access(KExpr::int(3)).unwrap();
        let e = v.as_scalar().unwrap();
        assert_eq!(e, KExpr::load(MemRef::Param(0), KExpr::int(3)));
    }

    #[test]
    fn nested_mem_access_strides() {
        // [[f32; 4]; 3] : element (z=2, x=1) is offset 2*4 + 1 = 9
        let t = Type::array(Type::array(Type::f32(), 4i64), 3i64);
        let v = View::mem(MemRef::Param(0), t)
            .access(KExpr::int(2))
            .unwrap()
            .access(KExpr::int(1))
            .unwrap();
        assert_eq!(v.as_scalar().unwrap(), KExpr::load(MemRef::Param(0), KExpr::int(9)));
    }

    #[test]
    fn zip_distributes_then_tuples() {
        let a = mem1d(0, 8);
        let b = mem1d(1, 8);
        let z = View::ZipV { parts: vec![a, b], levels: 1 };
        let elem = z.access(gid()).unwrap();
        let first = elem.clone().tuple_get(0).unwrap().as_scalar().unwrap();
        let second = elem.tuple_get(1).unwrap().as_scalar().unwrap();
        assert_eq!(first, KExpr::load(MemRef::Param(0), gid()));
        assert_eq!(second, KExpr::load(MemRef::Param(1), gid()));
    }

    #[test]
    fn slide_window_reads_shifted() {
        // slide(3,1) over [f32;10]: window w, delta d reads base[w + d]
        let base = mem1d(0, 10);
        let s = View::SlideV { base: Box::new(base), step: 1, dims: 1, ws: vec![], ds: vec![] };
        let w = s.access(KExpr::int(4)).unwrap();
        let v = w.access(KExpr::int(2)).unwrap();
        assert_eq!(v.as_scalar().unwrap(), KExpr::load(MemRef::Param(0), KExpr::int(6)));
    }

    #[test]
    fn pad_constant_guards() {
        let base = mem1d(0, 10);
        let p = View::PadV {
            base: Box::new(base),
            left: 1,
            right: 1,
            dims: 1,
            lens: vec![ArithExpr::cst(10)],
            kind: PadKind::Constant(Lit::f32(0.0)),
            idxs: vec![],
        };
        let v = p.access(KExpr::var("i")).unwrap();
        match v.as_scalar().unwrap() {
            KExpr::Select(_, f, _) => assert_eq!(*f, KExpr::Lit(Lit::f32(0.0))),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn pad_clamp_clamps() {
        let base = mem1d(0, 10);
        let p = View::PadV {
            base: Box::new(base),
            left: 2,
            right: 2,
            dims: 1,
            lens: vec![ArithExpr::cst(10)],
            kind: PadKind::Clamp,
            idxs: vec![],
        };
        let v = p.access(KExpr::int(0)).unwrap();
        // index 0 → clamp(0-2) = 0 → min(max(-2,0), 9)
        match v.as_scalar().unwrap() {
            KExpr::Load { idx, .. } => match *idx {
                KExpr::Call(Intrinsic::Min, _) => {}
                other => panic!("expected clamped index, got {other:?}"),
            },
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn crop_shifts_every_level() {
        let t = Type::array(Type::array(Type::f32(), 10i64), 10i64);
        let base = View::mem(MemRef::Param(0), t);
        let c = View::CropV { base: Box::new(base), margin: 1, remaining: 2 };
        let v = c.access(KExpr::int(0)).unwrap().access(KExpr::int(0)).unwrap();
        // (0+1)*10 + (0+1) = 11
        assert_eq!(v.as_scalar().unwrap(), KExpr::load(MemRef::Param(0), KExpr::int(11)));
    }

    #[test]
    fn gather_applies_affine_map() {
        let base = mem1d(0, 100);
        let g =
            View::Gather { base: Box::new(base), start: KExpr::var("i"), stride: KExpr::int(25) };
        let v = g.access(KExpr::int(2)).unwrap();
        // i + 2*25 = i + 50
        match v.as_scalar().unwrap() {
            KExpr::Load { idx, .. } => match *idx {
                KExpr::Bin(BinOp::Add, _, b) => assert_eq!(*b, KExpr::int(50)),
                other => panic!("unexpected index {other:?}"),
            },
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn join_divmods() {
        let t = Type::array(Type::array(Type::f32(), 4i64), 3i64);
        let base = View::mem(MemRef::Param(0), t);
        let j = View::JoinV { base: Box::new(base), inner: ArithExpr::cst(4) };
        let v = j.access(KExpr::int(6)).unwrap();
        // 6/4=1, 6%4=2 → offset 1*4+2 = 6
        assert_eq!(v.as_scalar().unwrap(), KExpr::load(MemRef::Param(0), KExpr::int(6)));
    }

    #[test]
    fn split_chunks() {
        let base = mem1d(0, 12);
        let s = View::SplitV { base: Box::new(base), chunk: ArithExpr::cst(4) };
        let v = s.access(KExpr::int(2)).unwrap().access(KExpr::int(1)).unwrap();
        assert_eq!(v.as_scalar().unwrap(), KExpr::load(MemRef::Param(0), KExpr::int(9)));
    }

    #[test]
    fn iota_yields_its_index() {
        let v = View::IotaV.access(KExpr::var("b")).unwrap();
        assert_eq!(v.as_scalar().unwrap(), KExpr::var("b"));
    }

    #[test]
    fn store_through_mem_view() {
        let v = mem1d(0, 8).access(KExpr::var("idx")).unwrap();
        let s = v.store(KExpr::real(1.0)).unwrap();
        match s {
            KStmt::Store { mem: MemRef::Param(0), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn store_through_const_fails() {
        let v = View::ConstLit(Lit::f32(0.0));
        assert!(v.store(KExpr::real(1.0)).is_err());
    }

    #[test]
    fn slide3_reads_3d_neighbourhood() {
        // grid [[[f32;5];5];5], slide3(3,1): window (1,1,1), delta (0,1,2)
        // reads grid[1+0][1+1][1+2] = offset 1*25 + 2*5 + 3 = 38
        let t = Type::array3(Type::f32(), 5i64, 5i64, 5i64);
        let base = View::mem(MemRef::Param(0), t);
        let s = View::SlideV { base: Box::new(base), step: 1, dims: 3, ws: vec![], ds: vec![] };
        let v = s
            .access(KExpr::int(1))
            .unwrap()
            .access(KExpr::int(1))
            .unwrap()
            .access(KExpr::int(1))
            .unwrap()
            .access(KExpr::int(0))
            .unwrap()
            .access(KExpr::int(1))
            .unwrap()
            .access(KExpr::int(2))
            .unwrap();
        assert_eq!(v.as_scalar().unwrap(), KExpr::load(MemRef::Param(0), KExpr::int(38)));
    }
}

//! The LIFT type system: scalars, tuples and statically-sized arrays.
//!
//! Array lengths are symbolic [`ArithExpr`]s, so one program covers every
//! room size; concrete dimensions are bound only when a kernel is launched.
//! The abstract [`ScalarKind::Real`] lets a single program be generated for
//! both single and double precision, matching the paper's f32/f64 sweeps.

use crate::arith::ArithExpr;
use std::fmt;

/// Primitive scalar kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScalarKind {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// Boolean (emitted as `int` in OpenCL C).
    Bool,
    /// Precision-generic floating point, resolved to [`ScalarKind::F32`] or
    /// [`ScalarKind::F64`] by [`Type::resolve_real`] before code generation.
    Real,
}

impl ScalarKind {
    /// Size in bytes once resolved; `Real` panics (resolve first).
    pub fn byte_size(self) -> usize {
        match self {
            ScalarKind::F32 => 4,
            ScalarKind::F64 => 8,
            ScalarKind::I32 => 4,
            ScalarKind::Bool => 4,
            ScalarKind::Real => panic!("ScalarKind::Real must be resolved before byte_size()"),
        }
    }

    /// The OpenCL C spelling of this scalar.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarKind::F32 => "float",
            ScalarKind::F64 => "double",
            ScalarKind::I32 => "int",
            ScalarKind::Bool => "int",
            ScalarKind::Real => "real",
        }
    }

    /// Replaces `Real` with the given concrete float kind.
    pub fn resolve_real(self, real: ScalarKind) -> ScalarKind {
        debug_assert!(matches!(real, ScalarKind::F32 | ScalarKind::F64));
        match self {
            ScalarKind::Real => real,
            other => other,
        }
    }

    /// True for `F32`, `F64` and unresolved `Real`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarKind::F32 | ScalarKind::F64 | ScalarKind::Real)
    }
}

/// A LIFT type.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A primitive scalar.
    Scalar(ScalarKind),
    /// A tuple of heterogeneous components.
    Tuple(Vec<Type>),
    /// An array with a symbolic length.
    Array(Box<Type>, ArithExpr),
}

impl Type {
    /// Shorthand for `Scalar(F32)`.
    pub fn f32() -> Type {
        Type::Scalar(ScalarKind::F32)
    }

    /// Shorthand for `Scalar(F64)`.
    pub fn f64() -> Type {
        Type::Scalar(ScalarKind::F64)
    }

    /// Shorthand for `Scalar(I32)`.
    pub fn i32() -> Type {
        Type::Scalar(ScalarKind::I32)
    }

    /// Shorthand for the precision-generic float scalar.
    pub fn real() -> Type {
        Type::Scalar(ScalarKind::Real)
    }

    /// An array of `elem` with length `n`.
    pub fn array(elem: Type, n: impl Into<ArithExpr>) -> Type {
        Type::Array(Box::new(elem), n.into())
    }

    /// A 2-level nested array: `[[T; nx]; ny]` (row-major, x contiguous).
    pub fn array2(elem: Type, nx: impl Into<ArithExpr>, ny: impl Into<ArithExpr>) -> Type {
        Type::array(Type::array(elem, nx), ny)
    }

    /// A 3-level nested array: `[[ [T; nx]; ny]; nz]` — the shape of a 3-D
    /// grid stored z-major (matches the paper's `z*Nx*Ny + y*Nx + x`
    /// linearisation).
    pub fn array3(
        elem: Type,
        nx: impl Into<ArithExpr>,
        ny: impl Into<ArithExpr>,
        nz: impl Into<ArithExpr>,
    ) -> Type {
        Type::array(Type::array(Type::array(elem, nx), ny), nz)
    }

    /// A tuple type.
    pub fn tuple(parts: Vec<Type>) -> Type {
        Type::Tuple(parts)
    }

    /// The element type, if this is an array.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(e, _) => Some(e),
            _ => None,
        }
    }

    /// The length, if this is an array.
    pub fn len(&self) -> Option<&ArithExpr> {
        match self {
            Type::Array(_, n) => Some(n),
            _ => None,
        }
    }

    /// The underlying scalar kind if this type is built from a single scalar
    /// kind (arrays of arrays of one scalar); `None` for mixed tuples.
    pub fn scalar_kind(&self) -> Option<ScalarKind> {
        match self {
            Type::Scalar(k) => Some(*k),
            Type::Array(e, _) => e.scalar_kind(),
            Type::Tuple(parts) => {
                let mut k = None;
                for p in parts {
                    let pk = p.scalar_kind()?;
                    match k {
                        None => k = Some(pk),
                        Some(prev) if prev == pk => {}
                        _ => return None,
                    }
                }
                k
            }
        }
    }

    /// Total number of scalars in one value of this type (symbolic).
    pub fn scalar_count(&self) -> ArithExpr {
        match self {
            Type::Scalar(_) => ArithExpr::one(),
            Type::Tuple(parts) => ArithExpr::add(parts.iter().map(|p| p.scalar_count()).collect()),
            Type::Array(e, n) => e.scalar_count() * n.clone(),
        }
    }

    /// Replaces every `Real` scalar with `real` (F32 or F64).
    pub fn resolve_real(&self, real: ScalarKind) -> Type {
        match self {
            Type::Scalar(k) => Type::Scalar(k.resolve_real(real)),
            Type::Tuple(parts) => Type::Tuple(parts.iter().map(|p| p.resolve_real(real)).collect()),
            Type::Array(e, n) => Type::Array(Box::new(e.resolve_real(real)), n.clone()),
        }
    }

    /// True if any scalar inside is the unresolved `Real`.
    pub fn has_real(&self) -> bool {
        match self {
            Type::Scalar(k) => *k == ScalarKind::Real,
            Type::Tuple(parts) => parts.iter().any(Type::has_real),
            Type::Array(e, _) => e.has_real(),
        }
    }

    /// Structural equality modulo arithmetic normalisation (lengths compare
    /// via the normalised `ArithExpr` representation).
    pub fn same_as(&self, other: &Type) -> bool {
        self == other
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(k) => write!(f, "{}", k.c_name()),
            Type::Tuple(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Type::Array(e, n) => write!(f, "[{e}; {n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarKind::F32.byte_size(), 4);
        assert_eq!(ScalarKind::F64.byte_size(), 8);
        assert_eq!(ScalarKind::I32.byte_size(), 4);
    }

    #[test]
    #[should_panic]
    fn real_size_panics_unresolved() {
        ScalarKind::Real.byte_size();
    }

    #[test]
    fn resolve_real_scalar() {
        assert_eq!(ScalarKind::Real.resolve_real(ScalarKind::F64), ScalarKind::F64);
        assert_eq!(ScalarKind::I32.resolve_real(ScalarKind::F64), ScalarKind::I32);
    }

    #[test]
    fn array3_shape() {
        let t = Type::array3(Type::real(), "Nx", "Ny", "Nz");
        let nz = t.len().unwrap();
        assert_eq!(format!("{nz}"), "Nz");
        let inner = t.elem().unwrap().elem().unwrap();
        assert_eq!(format!("{}", inner.len().unwrap()), "Nx");
    }

    #[test]
    fn scalar_count_multiplies() {
        let t = Type::array3(Type::real(), 4usize, 5usize, 6usize);
        assert_eq!(t.scalar_count().as_cst(), Some(120));
    }

    #[test]
    fn tuple_scalar_count_adds() {
        let t = Type::tuple(vec![Type::f32(), Type::array(Type::f32(), 3usize)]);
        assert_eq!(t.scalar_count().as_cst(), Some(4));
    }

    #[test]
    fn resolve_real_deep() {
        let t = Type::array(Type::tuple(vec![Type::real(), Type::i32()]), "N");
        let r = t.resolve_real(ScalarKind::F64);
        assert!(!r.has_real());
        assert_eq!(r.scalar_kind(), None); // mixed tuple
    }

    #[test]
    fn scalar_kind_uniform() {
        let t = Type::array(Type::array(Type::f64(), 2usize), 3usize);
        assert_eq!(t.scalar_kind(), Some(ScalarKind::F64));
    }

    #[test]
    fn display_roundtrippable_enough() {
        let t = Type::array(Type::f32(), "N");
        assert_eq!(format!("{t}"), "[float; N]");
    }
}

//! Pretty-prints kernel ASTs as OpenCL C.
//!
//! This reproduces the textual output of the real LIFT code generator —
//! e.g. the "Generated code" column of Table I — so generated kernels can be
//! inspected, golden-tested and compared with the paper's listings. The
//! `vgpu` crate executes the same AST directly; the printed source is the
//! human-facing artifact.

use crate::kast::{KExpr, KStmt, Kernel, MemRef, MemSpace};
use crate::scalar::{Lit, UnOp};
use crate::types::ScalarKind;
use std::fmt::Write as _;

/// Prints a literal as a C token.
pub fn lit_c(l: &Lit) -> String {
    match l.kind {
        ScalarKind::F32 => {
            let v = l.value as f32;
            if v == v.trunc() && v.abs() < 1e16 {
                format!("{:.1}f", v)
            } else {
                format!("{v:?}f")
            }
        }
        ScalarKind::F64 => {
            let v = l.value;
            if v == v.trunc() && v.abs() < 1e16 {
                format!("{:.1}", v)
            } else {
                format!("{v:?}")
            }
        }
        ScalarKind::I32 => format!("{}", l.value as i32),
        ScalarKind::Bool => format!("{}", (l.value != 0.0) as i32),
        ScalarKind::Real => format!("(real){:?}", l.value),
    }
}

fn mem_name(kernel: &Kernel, m: &MemRef) -> String {
    match m {
        MemRef::Param(i) => kernel.params[*i].name.clone(),
        MemRef::Priv(n) | MemRef::Local(n) => n.clone(),
    }
}

/// Prints an expression (conservatively parenthesised).
pub fn expr_c(kernel: &Kernel, e: &KExpr) -> String {
    match e {
        KExpr::Lit(l) => lit_c(l),
        KExpr::Var(n) => n.clone(),
        KExpr::GlobalId(d) => format!("get_global_id({d})"),
        KExpr::GlobalSize(d) => format!("get_global_size({d})"),
        KExpr::LocalId(d) => format!("get_local_id({d})"),
        KExpr::LocalSize(d) => format!("get_local_size({d})"),
        KExpr::GroupId(d) => format!("get_group_id({d})"),
        KExpr::Load { mem, idx } => {
            format!("{}[{}]", mem_name(kernel, mem), expr_c(kernel, idx))
        }
        KExpr::Bin(op, a, b) => {
            format!("({} {} {})", expr_c(kernel, a), op.c_symbol(), expr_c(kernel, b))
        }
        KExpr::Un(op, a) => {
            let s = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("({}{})", s, expr_c(kernel, a))
        }
        KExpr::Select(c, t, f) => {
            format!("({} ? {} : {})", expr_c(kernel, c), expr_c(kernel, t), expr_c(kernel, f))
        }
        KExpr::Call(i, args) => {
            let args: Vec<String> = args.iter().map(|a| expr_c(kernel, a)).collect();
            format!("{}({})", i.c_name(), args.join(", "))
        }
        KExpr::Cast(k, a) => format!("(({}){})", k.c_name(), expr_c(kernel, a)),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn stmt_c(kernel: &Kernel, s: &KStmt, out: &mut String, depth: usize) {
    match s {
        KStmt::DeclScalar { name, kind, init } => {
            indent(out, depth);
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{} {} = {};", kind.c_name(), name, expr_c(kernel, e));
                }
                None => {
                    let _ = writeln!(out, "{} {};", kind.c_name(), name);
                }
            }
        }
        KStmt::DeclPrivArray { name, kind, len } => {
            indent(out, depth);
            let _ = writeln!(out, "{} {}[{}];", kind.c_name(), name, expr_c(kernel, len));
        }
        KStmt::DeclLocalArray { name, kind, len } => {
            indent(out, depth);
            let _ = writeln!(out, "__local {} {}[{}];", kind.c_name(), name, expr_c(kernel, len));
        }
        KStmt::Barrier => {
            indent(out, depth);
            out.push_str("barrier(CLK_LOCAL_MEM_FENCE);\n");
        }
        KStmt::Assign { name, value } => {
            indent(out, depth);
            let _ = writeln!(out, "{} = {};", name, expr_c(kernel, value));
        }
        KStmt::Store { mem, idx, value } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "{}[{}] = {};",
                mem_name(kernel, mem),
                expr_c(kernel, idx),
                expr_c(kernel, value)
            );
        }
        KStmt::For { var, begin, end, step, body } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "for (int {var} = {}; {var} < {}; {var} += {}) {{",
                expr_c(kernel, begin),
                expr_c(kernel, end),
                expr_c(kernel, step)
            );
            for s in body {
                stmt_c(kernel, s, out, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        KStmt::If { cond, then_, else_ } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", expr_c(kernel, cond));
            for s in then_ {
                stmt_c(kernel, s, out, depth + 1);
            }
            if else_.is_empty() {
                indent(out, depth);
                out.push_str("}\n");
            } else {
                indent(out, depth);
                out.push_str("} else {\n");
                for s in else_ {
                    stmt_c(kernel, s, out, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        KStmt::Return => {
            indent(out, depth);
            out.push_str("return;\n");
        }
        KStmt::Comment(c) => {
            indent(out, depth);
            let _ = writeln!(out, "// {c}");
        }
    }
}

fn kernel_uses_f64(kernel: &Kernel) -> bool {
    // Conservative: any f64 parameter or declaration.
    fn stmt_has(s: &KStmt) -> bool {
        match s {
            KStmt::DeclScalar { kind, .. } | KStmt::DeclPrivArray { kind, .. } => {
                *kind == ScalarKind::F64
            }
            KStmt::For { body, .. } => body.iter().any(stmt_has),
            KStmt::If { then_, else_, .. } => {
                then_.iter().any(stmt_has) || else_.iter().any(stmt_has)
            }
            _ => false,
        }
    }
    kernel.params.iter().any(|p| p.kind == ScalarKind::F64) || kernel.body.iter().any(stmt_has)
}

/// Emits a complete OpenCL C kernel definition.
///
/// The kernel must have its `Real` scalars resolved (see
/// [`Kernel::resolve_real`]); unresolved kernels print the placeholder type
/// `real`.
pub fn emit_kernel(kernel: &Kernel) -> String {
    let mut out = String::new();
    if kernel_uses_f64(kernel) {
        out.push_str("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n");
    }
    let _ = write!(out, "__kernel void {}(", kernel.name);
    for (i, p) in kernel.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if p.is_buffer {
            let space = match p.space {
                MemSpace::Global => "__global",
                MemSpace::Constant => "__constant",
                MemSpace::Private => "__private",
            };
            let _ = write!(out, "{space} {}* {}", p.kind.c_name(), p.name);
        } else {
            let _ = write!(out, "{} {}", p.kind.c_name(), p.name);
        }
    }
    out.push_str(") {\n");
    for s in &kernel.body {
        stmt_c(kernel, s, &mut out, 1);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::{KernelParam, MemRef};
    use crate::scalar::BinOp;

    fn sample() -> Kernel {
        Kernel {
            name: "saxpy".into(),
            params: vec![
                KernelParam::global_buf("x", ScalarKind::F32),
                KernelParam::global_buf("y", ScalarKind::F32),
                KernelParam::scalar("a", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
                KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: KExpr::GlobalId(0),
                    value: KExpr::var("a") * KExpr::load(MemRef::Param(0), KExpr::GlobalId(0))
                        + KExpr::load(MemRef::Param(1), KExpr::GlobalId(0)),
                },
            ],
            work_dim: 1,
        }
    }

    #[test]
    fn signature_and_body_print() {
        let src = emit_kernel(&sample());
        assert!(
            src.contains(
                "__kernel void saxpy(__global float* x, __global float* y, float a, int N)"
            ),
            "{src}"
        );
        assert!(src.contains("y[get_global_id(0)] ="), "{src}");
        assert!(src.contains("return;"), "{src}");
    }

    #[test]
    fn f64_kernels_enable_extension() {
        let mut k = sample();
        k.params[0].kind = ScalarKind::F64;
        let src = emit_kernel(&k);
        assert!(src.starts_with("#pragma OPENCL EXTENSION cl_khr_fp64"), "{src}");
    }

    #[test]
    fn literal_formats() {
        assert_eq!(lit_c(&Lit::f32(2.0)), "2.0f");
        assert_eq!(lit_c(&Lit::f64(0.5)), "0.5");
        assert_eq!(lit_c(&Lit::i32(-3)), "-3");
    }

    #[test]
    fn constant_space_prints_constant() {
        let mut k = sample();
        k.params[0] = KernelParam::constant_buf("beta", ScalarKind::F32);
        let src = emit_kernel(&k);
        assert!(src.contains("__constant float* beta"), "{src}");
    }

    #[test]
    fn for_loop_prints() {
        let k = Kernel {
            name: "l".into(),
            params: vec![KernelParam::global_buf("o", ScalarKind::F32)],
            body: vec![KStmt::For {
                var: "i".into(),
                begin: KExpr::int(0),
                end: KExpr::int(4),
                step: KExpr::int(1),
                body: vec![KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: KExpr::var("i"),
                    value: KExpr::real(6.0),
                }],
            }],
            work_dim: 1,
        };
        let src = emit_kernel(&k.resolve_real(ScalarKind::F32));
        assert!(src.contains("for (int i = 0; i < 4; i += 1) {"), "{src}");
        assert!(src.contains("o[i] = 6.0f;"), "{src}");
    }
}

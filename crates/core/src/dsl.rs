//! A textual front-end for the pattern IR.
//!
//! LIFT "is not intended for directly writing applications … it is meant to
//! be targeted by DSLs or libraries" (§III of the paper). This module is
//! the smallest such front-end: an s-expression surface syntax that parses
//! into [`crate::ir`] expressions, so kernels can be written as text,
//! loaded at run time, and fed through the same
//! typecheck → views → lowering pipeline as builder-constructed programs.
//!
//! ## Syntax
//!
//! ```text
//! (kernel add2
//!   (params (a (array real N)))
//!   (map-glb a (x) (+ x 2.0)))
//! ```
//!
//! * **Types**: `real`, `int`, `(array T len)`, `(array3 T nx ny nz)`;
//!   lengths are integers or size-variable symbols.
//! * **Patterns**: `map-glb`, `map-seq`, `map-wrg`, `map-lcl`, `map2-glb`,
//!   `map3-glb` (`(map-… input (x) body)`), `zip`, `zip2`, `zip3`,
//!   `slide k s x`, `slide2 k s x`, `slide3 k s x`,
//!   `pad l r kind x` (`kind` = `clamp` or a literal), `pad2 a kind x`,
//!   `pad3 a kind x`, `crop3 m x`, `split n x`, `join x`,
//!   `(reduce (acc x) body init input)`.
//! * **Data**: `(at arr idx)`, `(slice arr start stride len)`,
//!   `(get tup i)`, `(tuple …)`, `(iota n)`, `(size-val n)`,
//!   `(let (name value) body)`, `to-private`, `to-local`.
//! * **New primitives**: `(concat …)`, `(skip len real|int)`,
//!   `(array-cons e n)`, `(write-to dest value)`.
//! * **Scalars**: `(+ - * /)`, comparisons `(< <= > >= = !=)`,
//!   `(select c t f)`, `(min a b)`, `(max a b)`, `(sqrt x)`, `(fabs x)`,
//!   `(neg x)`, `(real x)` / `(int x)` casts. Integer literals are `int`,
//!   literals with a decimal point are precision-generic `real`.

use crate::arith::ArithExpr;
use crate::ir::{self, ExprKind, ExprRef, Lambda, MapKind, PadKind, ParamDef};
use crate::scalar::{BinOp, Intrinsic, Lit, SExpr, UserFun};
use crate::types::{ScalarKind, Type};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Parse error with a byte offset into the source.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Byte position.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn perr<T>(at: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { at, msg: msg.into() })
}

// ---------------------------------------------------------------------------
// S-expressions
// ---------------------------------------------------------------------------

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// Symbol token.
    Sym(String, usize),
    /// Integer literal.
    Int(i64, usize),
    /// Float literal (contains a `.` or exponent).
    Float(f64, usize),
    /// Parenthesised list.
    List(Vec<Sexp>, usize),
}

impl Sexp {
    fn at(&self) -> usize {
        match self {
            Sexp::Sym(_, p) | Sexp::Int(_, p) | Sexp::Float(_, p) | Sexp::List(_, p) => *p,
        }
    }

    fn sym(&self) -> Option<&str> {
        match self {
            Sexp::Sym(s, _) => Some(s),
            _ => None,
        }
    }
}

/// Tokenises and parses one s-expression (plus trailing whitespace).
pub fn parse_sexp(src: &str) -> Result<Sexp, ParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let sexp = parse_one(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return perr(pos, "trailing input after expression");
    }
    Ok(sexp)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    loop {
        while *pos < b.len() && (b[*pos] as char).is_whitespace() {
            *pos += 1;
        }
        if *pos < b.len() && b[*pos] == b';' {
            while *pos < b.len() && b[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            return;
        }
    }
}

fn parse_one(b: &[u8], pos: &mut usize) -> Result<Sexp, ParseError> {
    skip_ws(b, pos);
    if *pos >= b.len() {
        return perr(*pos, "unexpected end of input");
    }
    let start = *pos;
    match b[*pos] {
        b'(' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(b, pos);
                if *pos >= b.len() {
                    return perr(start, "unclosed parenthesis");
                }
                if b[*pos] == b')' {
                    *pos += 1;
                    return Ok(Sexp::List(items, start));
                }
                items.push(parse_one(b, pos)?);
            }
        }
        b')' => perr(*pos, "unexpected `)`"),
        _ => {
            let tok_start = *pos;
            while *pos < b.len()
                && !(b[*pos] as char).is_whitespace()
                && b[*pos] != b'('
                && b[*pos] != b')'
                && b[*pos] != b';'
            {
                *pos += 1;
            }
            let tok = &b[tok_start..*pos];
            let s = std::str::from_utf8(tok)
                .map_err(|_| ParseError { at: tok_start, msg: "invalid UTF-8 token".into() })?;
            if let Ok(v) = s.parse::<i64>() {
                Ok(Sexp::Int(v, tok_start))
            } else if s.contains('.') || s.contains('e') || s.contains('E') {
                match s.parse::<f64>() {
                    Ok(v) => Ok(Sexp::Float(v, tok_start)),
                    Err(_) => Ok(Sexp::Sym(s.to_string(), tok_start)),
                }
            } else {
                Ok(Sexp::Sym(s.to_string(), tok_start))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

fn parse_len(s: &Sexp) -> Result<ArithExpr, ParseError> {
    match s {
        Sexp::Int(v, _) => Ok(ArithExpr::cst(*v)),
        Sexp::Sym(n, _) => Ok(ArithExpr::var(n.as_str())),
        other => perr(other.at(), "array length must be an integer or a size variable"),
    }
}

fn parse_type(s: &Sexp) -> Result<Type, ParseError> {
    match s {
        Sexp::Sym(n, p) => match n.as_str() {
            "real" => Ok(Type::real()),
            "int" => Ok(Type::i32()),
            "f32" => Ok(Type::f32()),
            "f64" => Ok(Type::f64()),
            other => perr(*p, format!("unknown type `{other}`")),
        },
        Sexp::List(items, p) => match items.first().and_then(Sexp::sym) {
            Some("array") if items.len() == 3 => {
                Ok(Type::array(parse_type(&items[1])?, parse_len(&items[2])?))
            }
            Some("array3") if items.len() == 5 => Ok(Type::array3(
                parse_type(&items[1])?,
                parse_len(&items[2])?,
                parse_len(&items[3])?,
                parse_len(&items[4])?,
            )),
            _ => perr(*p, "expected (array T n) or (array3 T nx ny nz)"),
        },
        other => perr(other.at(), "expected a type"),
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// A parsed kernel: name, typed parameters, body.
#[derive(Debug)]
pub struct DslKernel {
    /// Kernel name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Rc<ParamDef>>,
    /// Body expression.
    pub body: ExprRef,
}

impl DslKernel {
    /// Lowers the parsed kernel at the given precision.
    pub fn lower(
        &self,
        real: ScalarKind,
    ) -> Result<crate::lower::LoweredKernel, crate::lower::LowerError> {
        crate::lower::lower_kernel(&self.name, &self.params, &self.body, real)
    }
}

struct Scope {
    names: HashMap<String, ExprRef>,
}

fn bin_fun(name: &str, op: BinOp, pred: bool) -> Rc<UserFun> {
    let ret = if pred { ScalarKind::Bool } else { ScalarKind::Real };
    UserFun::new(
        name,
        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
        ret,
        SExpr::Bin(op, SExpr::p(0).into(), SExpr::p(1).into()),
    )
}

/// Parses a whole `(kernel …)` form.
pub fn parse_kernel(src: &str) -> Result<DslKernel, ParseError> {
    let sexp = parse_sexp(src)?;
    let Sexp::List(items, p) = &sexp else {
        return perr(sexp.at(), "expected (kernel …)");
    };
    if items.first().and_then(Sexp::sym) != Some("kernel") || items.len() != 4 {
        return perr(*p, "expected (kernel NAME (params …) BODY)");
    }
    let name = items[1]
        .sym()
        .ok_or_else(|| ParseError {
            at: items[1].at(),
            msg: "kernel name must be a symbol".into(),
        })?
        .to_string();
    let Sexp::List(pitems, pp) = &items[2] else {
        return perr(items[2].at(), "expected (params …)");
    };
    if pitems.first().and_then(Sexp::sym) != Some("params") {
        return perr(*pp, "expected (params …)");
    }
    let mut params = Vec::new();
    let mut scope = Scope { names: HashMap::new() };
    for decl in &pitems[1..] {
        let Sexp::List(d, dp) = decl else {
            return perr(decl.at(), "expected (name TYPE)");
        };
        if d.len() != 2 {
            return perr(*dp, "expected (name TYPE)");
        }
        let pname = d[0].sym().ok_or_else(|| ParseError {
            at: d[0].at(),
            msg: "parameter name must be a symbol".into(),
        })?;
        let ty = parse_type(&d[1])?;
        let pd = ParamDef::typed(pname, ty);
        scope.names.insert(pname.to_string(), pd.to_expr());
        params.push(pd);
    }
    let body = parse_expr(&items[3], &mut scope)?;
    Ok(DslKernel { name, params, body })
}

fn expect_args(items: &[Sexp], n: usize, form: &str, p: usize) -> Result<(), ParseError> {
    if items.len() != n + 1 {
        return perr(p, format!("`{form}` expects {n} argument(s), got {}", items.len() - 1));
    }
    Ok(())
}

fn parse_lambda1(binder: &Sexp, body: &Sexp, scope: &mut Scope) -> Result<Lambda, ParseError> {
    let Sexp::List(vars, vp) = binder else {
        return perr(binder.at(), "expected a binder list like (x)");
    };
    if vars.len() != 1 {
        return perr(*vp, "map lambdas bind exactly one variable");
    }
    let vname = vars[0]
        .sym()
        .ok_or_else(|| ParseError { at: vars[0].at(), msg: "binder must be a symbol".into() })?;
    let pd = ParamDef::untyped(vname);
    let shadow = scope.names.insert(vname.to_string(), pd.to_expr());
    let b = parse_expr(body, scope)?;
    match shadow {
        Some(old) => {
            scope.names.insert(vname.to_string(), old);
        }
        None => {
            scope.names.remove(vname);
        }
    }
    Ok(Lambda { params: vec![pd], body: b })
}

fn parse_pad_kind(s: &Sexp) -> Result<PadKind, ParseError> {
    match s {
        Sexp::Sym(n, _) if n == "clamp" => Ok(PadKind::Clamp),
        Sexp::Int(v, _) => Ok(PadKind::Constant(Lit::i32(*v as i32))),
        Sexp::Float(v, _) => Ok(PadKind::Constant(Lit::real(*v))),
        other => perr(other.at(), "pad kind must be `clamp` or a literal"),
    }
}

fn small_int(s: &Sexp) -> Result<i64, ParseError> {
    match s {
        Sexp::Int(v, _) => Ok(*v),
        other => perr(other.at(), "expected an integer literal"),
    }
}

fn parse_expr(s: &Sexp, scope: &mut Scope) -> Result<ExprRef, ParseError> {
    match s {
        Sexp::Int(v, _) => Ok(ir::lit(Lit::i32(*v as i32))),
        Sexp::Float(v, _) => Ok(ir::lit(Lit::real(*v))),
        Sexp::Sym(n, p) => scope
            .names
            .get(n)
            .cloned()
            .ok_or_else(|| ParseError { at: *p, msg: format!("unbound name `{n}`") }),
        Sexp::List(items, p) => {
            let head = items
                .first()
                .and_then(Sexp::sym)
                .ok_or_else(|| ParseError { at: *p, msg: "expected an operator symbol".into() })?;
            let a = |i: usize| &items[i];
            match head {
                // ---- maps ----
                "map-glb" | "map-seq" | "map-wrg" | "map-lcl" | "map2-glb" | "map3-glb" => {
                    expect_args(items, 3, head, *p)?;
                    let input = parse_expr(a(1), scope)?;
                    let lam = parse_lambda1(a(2), a(3), scope)?;
                    let kind = match head {
                        "map-glb" | "map2-glb" | "map3-glb" => MapKind::Glb,
                        "map-seq" => MapKind::Seq,
                        "map-wrg" => MapKind::Wrg,
                        _ => MapKind::Lcl,
                    };
                    match head {
                        "map3-glb" => {
                            Ok(crate::ir::Expr::new(ExprKind::Map3 { kind, f: lam, input }))
                        }
                        "map2-glb" => {
                            Ok(crate::ir::Expr::new(ExprKind::Map2 { kind, f: lam, input }))
                        }
                        _ => Ok(crate::ir::Expr::new(ExprKind::Map { kind, f: lam, input })),
                    }
                }
                "reduce" => {
                    expect_args(items, 4, head, *p)?;
                    let Sexp::List(vars, vp) = a(1) else {
                        return perr(a(1).at(), "expected (acc x) binder");
                    };
                    if vars.len() != 2 {
                        return perr(*vp, "reduce binds (acc x)");
                    }
                    let an = vars[0]
                        .sym()
                        .ok_or_else(|| ParseError { at: vars[0].at(), msg: "binder".into() })?;
                    let xn = vars[1]
                        .sym()
                        .ok_or_else(|| ParseError { at: vars[1].at(), msg: "binder".into() })?;
                    let pa = ParamDef::untyped(an);
                    let px = ParamDef::untyped(xn);
                    let sa = scope.names.insert(an.to_string(), pa.to_expr());
                    let sx = scope.names.insert(xn.to_string(), px.to_expr());
                    let body = parse_expr(a(2), scope)?;
                    restore(scope, an, sa);
                    restore(scope, xn, sx);
                    let init = parse_expr(a(3), scope)?;
                    let input = parse_expr(a(4), scope)?;
                    Ok(crate::ir::Expr::new(ExprKind::ReduceSeq {
                        f: Lambda { params: vec![pa, px], body },
                        init,
                        input,
                    }))
                }
                // ---- layout ----
                "zip" => {
                    let parts: Result<Vec<ExprRef>, ParseError> =
                        items[1..].iter().map(|x| parse_expr(x, scope)).collect();
                    Ok(ir::zip(parts?))
                }
                "zip2" => {
                    let parts: Result<Vec<ExprRef>, ParseError> =
                        items[1..].iter().map(|x| parse_expr(x, scope)).collect();
                    Ok(ir::zip2(parts?))
                }
                "zip3" => {
                    let parts: Result<Vec<ExprRef>, ParseError> =
                        items[1..].iter().map(|x| parse_expr(x, scope)).collect();
                    Ok(ir::zip3(parts?))
                }
                "slide" => {
                    expect_args(items, 3, head, *p)?;
                    Ok(ir::slide(small_int(a(1))?, small_int(a(2))?, parse_expr(a(3), scope)?))
                }
                "slide2" => {
                    expect_args(items, 3, head, *p)?;
                    Ok(ir::slide2(small_int(a(1))?, small_int(a(2))?, parse_expr(a(3), scope)?))
                }
                "slide3" => {
                    expect_args(items, 3, head, *p)?;
                    Ok(ir::slide3(small_int(a(1))?, small_int(a(2))?, parse_expr(a(3), scope)?))
                }
                "pad" => {
                    expect_args(items, 4, head, *p)?;
                    Ok(ir::pad(
                        small_int(a(1))?,
                        small_int(a(2))?,
                        parse_pad_kind(a(3))?,
                        parse_expr(a(4), scope)?,
                    ))
                }
                "pad2" => {
                    expect_args(items, 3, head, *p)?;
                    Ok(ir::pad2(small_int(a(1))?, parse_pad_kind(a(2))?, parse_expr(a(3), scope)?))
                }
                "pad3" => {
                    expect_args(items, 3, head, *p)?;
                    Ok(ir::pad3(small_int(a(1))?, parse_pad_kind(a(2))?, parse_expr(a(3), scope)?))
                }
                "crop3" => {
                    expect_args(items, 2, head, *p)?;
                    Ok(ir::crop3(small_int(a(1))?, parse_expr(a(2), scope)?))
                }
                "split" => {
                    expect_args(items, 2, head, *p)?;
                    Ok(ir::split(parse_len(a(1))?, parse_expr(a(2), scope)?))
                }
                "join" => {
                    expect_args(items, 1, head, *p)?;
                    Ok(ir::join(parse_expr(a(1), scope)?))
                }
                // ---- data ----
                "at" => {
                    expect_args(items, 2, head, *p)?;
                    Ok(ir::at(parse_expr(a(1), scope)?, parse_expr(a(2), scope)?))
                }
                "slice" => {
                    expect_args(items, 4, head, *p)?;
                    Ok(ir::slice(
                        parse_expr(a(1), scope)?,
                        parse_expr(a(2), scope)?,
                        parse_len(a(3))?,
                        parse_len(a(4))?,
                    ))
                }
                "get" => {
                    expect_args(items, 2, head, *p)?;
                    Ok(ir::get(parse_expr(a(1), scope)?, small_int(a(2))? as usize))
                }
                "tuple" => {
                    let parts: Result<Vec<ExprRef>, ParseError> =
                        items[1..].iter().map(|x| parse_expr(x, scope)).collect();
                    Ok(ir::tuple(parts?))
                }
                "iota" => {
                    expect_args(items, 1, head, *p)?;
                    Ok(ir::iota(parse_len(a(1))?))
                }
                "size-val" => {
                    expect_args(items, 1, head, *p)?;
                    Ok(ir::size_val(parse_len(a(1))?))
                }
                "let" => {
                    expect_args(items, 2, head, *p)?;
                    let Sexp::List(bind, bp) = a(1) else {
                        return perr(a(1).at(), "expected (name value)");
                    };
                    if bind.len() != 2 {
                        return perr(*bp, "expected (name value)");
                    }
                    let n = bind[0]
                        .sym()
                        .ok_or_else(|| ParseError { at: bind[0].at(), msg: "binder".into() })?;
                    let value = parse_expr(&bind[1], scope)?;
                    let pd = ParamDef::untyped(n);
                    let shadow = scope.names.insert(n.to_string(), pd.to_expr());
                    let body = parse_expr(a(2), scope)?;
                    restore(scope, n, shadow);
                    Ok(crate::ir::Expr::new(ExprKind::Let { param: pd, value, body }))
                }
                "to-private" => {
                    expect_args(items, 1, head, *p)?;
                    Ok(ir::to_private(parse_expr(a(1), scope)?))
                }
                "to-local" => {
                    expect_args(items, 1, head, *p)?;
                    Ok(ir::to_local(parse_expr(a(1), scope)?))
                }
                // ---- the paper's primitives ----
                "concat" => {
                    let parts: Result<Vec<ExprRef>, ParseError> =
                        items[1..].iter().map(|x| parse_expr(x, scope)).collect();
                    Ok(ir::concat(parts?))
                }
                "skip" => {
                    expect_args(items, 2, head, *p)?;
                    let len = parse_expr(a(1), scope)?;
                    let ty = parse_type(a(2))?;
                    Ok(ir::skip(len, ty))
                }
                "array-cons" => {
                    expect_args(items, 2, head, *p)?;
                    Ok(ir::array_cons(parse_expr(a(1), scope)?, parse_len(a(2))?))
                }
                "write-to" => {
                    expect_args(items, 2, head, *p)?;
                    Ok(ir::write_to(parse_expr(a(1), scope)?, parse_expr(a(2), scope)?))
                }
                // ---- scalars ----
                "+" | "-" | "*" | "/" => {
                    expect_args(items, 2, head, *p)?;
                    let op = match head {
                        "+" => BinOp::Add,
                        "-" => BinOp::Sub,
                        "*" => BinOp::Mul,
                        _ => BinOp::Div,
                    };
                    let f = bin_fun(op_name(head), op, false);
                    Ok(ir::call(&f, vec![parse_expr(a(1), scope)?, parse_expr(a(2), scope)?]))
                }
                "<" | "<=" | ">" | ">=" | "=" | "!=" => {
                    expect_args(items, 2, head, *p)?;
                    let op = match head {
                        "<" => BinOp::Lt,
                        "<=" => BinOp::Le,
                        ">" => BinOp::Gt,
                        ">=" => BinOp::Ge,
                        "=" => BinOp::Eq,
                        _ => BinOp::Ne,
                    };
                    let f = bin_fun(op_name(head), op, true);
                    Ok(ir::call(&f, vec![parse_expr(a(1), scope)?, parse_expr(a(2), scope)?]))
                }
                "select" => {
                    expect_args(items, 3, head, *p)?;
                    let f = UserFun::new(
                        "selectF",
                        vec![
                            ("c", ScalarKind::Bool),
                            ("t", ScalarKind::Real),
                            ("e", ScalarKind::Real),
                        ],
                        ScalarKind::Real,
                        SExpr::select(SExpr::p(0), SExpr::p(1), SExpr::p(2)),
                    );
                    Ok(ir::call(
                        &f,
                        vec![
                            parse_expr(a(1), scope)?,
                            parse_expr(a(2), scope)?,
                            parse_expr(a(3), scope)?,
                        ],
                    ))
                }
                "min" | "max" => {
                    expect_args(items, 2, head, *p)?;
                    let i = if head == "min" { Intrinsic::Min } else { Intrinsic::Max };
                    let f = UserFun::new(
                        head,
                        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
                        ScalarKind::Real,
                        SExpr::Call(i, vec![SExpr::p(0), SExpr::p(1)]),
                    );
                    Ok(ir::call(&f, vec![parse_expr(a(1), scope)?, parse_expr(a(2), scope)?]))
                }
                "sqrt" | "fabs" | "exp" | "log" | "sin" | "cos" => {
                    expect_args(items, 1, head, *p)?;
                    let i = match head {
                        "sqrt" => Intrinsic::Sqrt,
                        "fabs" => Intrinsic::Fabs,
                        "exp" => Intrinsic::Exp,
                        "log" => Intrinsic::Log,
                        "sin" => Intrinsic::Sin,
                        _ => Intrinsic::Cos,
                    };
                    let f = UserFun::new(
                        head,
                        vec![("x", ScalarKind::Real)],
                        ScalarKind::Real,
                        SExpr::Call(i, vec![SExpr::p(0)]),
                    );
                    Ok(ir::call(&f, vec![parse_expr(a(1), scope)?]))
                }
                "neg" => {
                    expect_args(items, 1, head, *p)?;
                    let f = UserFun::new(
                        "negF",
                        vec![("x", ScalarKind::Real)],
                        ScalarKind::Real,
                        -SExpr::p(0),
                    );
                    Ok(ir::call(&f, vec![parse_expr(a(1), scope)?]))
                }
                "real" | "int" => {
                    expect_args(items, 1, head, *p)?;
                    let (from, to) = if head == "real" {
                        (ScalarKind::I32, ScalarKind::Real)
                    } else {
                        (ScalarKind::Real, ScalarKind::I32)
                    };
                    let f = UserFun::new(
                        if head == "real" { "toReal" } else { "toInt" },
                        vec![("x", from)],
                        to,
                        SExpr::cast(to, SExpr::p(0)),
                    );
                    Ok(ir::call(&f, vec![parse_expr(a(1), scope)?]))
                }
                other => perr(*p, format!("unknown form `{other}`")),
            }
        }
    }
}

fn op_name(sym: &str) -> &'static str {
    match sym {
        "+" => "addF",
        "-" => "subF",
        "*" => "mulF",
        "/" => "divF",
        "<" => "ltF",
        "<=" => "leF",
        ">" => "gtF",
        ">=" => "geF",
        "=" => "eqF",
        _ => "neF",
    }
}

fn restore(scope: &mut Scope, name: &str, shadow: Option<ExprRef>) {
    match shadow {
        Some(old) => {
            scope.names.insert(name.to_string(), old);
        }
        None => {
            scope.names.remove(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::check;

    #[test]
    fn sexp_parser_basics() {
        let s = parse_sexp("(a (b 1 2.5) c) ; comment\n").unwrap();
        let Sexp::List(items, _) = s else { panic!() };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].sym(), Some("a"));
        let Sexp::List(inner, _) = &items[1] else { panic!() };
        assert_eq!(inner[1], Sexp::Int(1, 6));
        assert!(matches!(inner[2], Sexp::Float(v, _) if v == 2.5));
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(parse_sexp("(a (b)").is_err());
        assert!(parse_sexp("a)").is_err());
    }

    #[test]
    fn simple_kernel_parses_and_lowers() {
        let k = parse_kernel(
            "(kernel add2
               (params (a (array real N)))
               (map-glb a (x) (+ x 2.0)))",
        )
        .unwrap();
        assert_eq!(k.name, "add2");
        check(&k.body).unwrap();
        let lk = k.lower(ScalarKind::F32).unwrap();
        let src = crate::opencl::emit_kernel(&lk.kernel);
        assert!(src.contains("__kernel void add2"), "{src}");
        assert!(src.contains("+ 2.0f"), "{src}");
    }

    #[test]
    fn stencil_kernel_parses() {
        let k = parse_kernel(
            "(kernel blur
               (params (a (array real N)))
               (map-glb (slide 3 1 (pad 1 1 clamp a)) (w)
                 (reduce (acc x) (+ acc x) 0.0 w)))",
        )
        .unwrap();
        check(&k.body).unwrap();
        k.lower(ScalarKind::F64).unwrap();
    }

    #[test]
    fn in_place_kernel_parses() {
        let k = parse_kernel(
            "(kernel scatter
               (params (indices (array int numB)) (data (array real N)))
               (map-glb indices (idx)
                 (write-to data
                   (concat (skip idx real)
                           (array-cons (+ (at data idx) 1.0) 1)
                           (skip (- (- (size-val N) idx) 1) real)))))",
        )
        .unwrap();
        check(&k.body).unwrap();
        let lk = k.lower(ScalarKind::F32).unwrap();
        assert!(lk.args.iter().all(|a| !matches!(a, crate::lower::ArgSpec::Output(_, _))));
    }

    #[test]
    fn let_scoping_shadows_and_restores() {
        let k = parse_kernel(
            "(kernel sc
               (params (a (array real N)))
               (map-glb a (x)
                 (let (y (* x 2.0)) (+ y x))))",
        )
        .unwrap();
        check(&k.body).unwrap();
    }

    #[test]
    fn unbound_name_is_reported() {
        let e = parse_kernel("(kernel bad (params (a (array real N))) (map-glb zz (x) x))");
        assert!(e.is_err());
        assert!(e.unwrap_err().msg.contains("unbound name `zz`"));
    }

    #[test]
    fn unknown_form_is_reported() {
        let e = parse_kernel("(kernel bad (params) (frobnicate 1 2))");
        assert!(e.unwrap_err().msg.contains("unknown form"));
    }

    #[test]
    fn tuple_and_zip_parse() {
        let k = parse_kernel(
            "(kernel z
               (params (a (array real N)) (b (array real N)))
               (map-glb (zip a b) (t) (+ (get t 0) (get t 1))))",
        )
        .unwrap();
        check(&k.body).unwrap();
        k.lower(ScalarKind::F32).unwrap();
    }

    #[test]
    fn workgroup_forms_parse() {
        let k = parse_kernel(
            "(kernel tiled
               (params (a (array real 256)))
               (map-wrg (slide 34 32 (pad 1 1 clamp a)) (tile)
                 (map-lcl (slide 3 1 (to-local tile)) (w)
                   (reduce (acc x) (+ acc x) 0.0 w))))",
        )
        .unwrap();
        check(&k.body).unwrap();
        let lk = k.lower(ScalarKind::F32).unwrap();
        assert!(lk.local_size.is_some());
    }
}

//! Static verification of lowered kernels.
//!
//! Two analyses run over the [`crate::kast`] form of a kernel — the same
//! form the `vgpu` device executes and the OpenCL emitter prints, so a
//! verdict here covers both backends:
//!
//! * a **symbolic bounds checker** that derives an interval for every
//!   load/store index (over work-item ids, loop variables and opaque
//!   gather values) and classifies each access site as
//!   [`Verdict::Proven`] or [`Verdict::Potential`] against the buffer's
//!   symbolic length;
//! * a **static write-race detector** that proves the store index maps of
//!   a kernel pairwise disjoint across work-items (injectivity of affine
//!   gid maps via a mixed-radix argument, distinctness of gather indices,
//!   symbolic range disjointness between different maps), or flags the
//!   overlap — including a [`RaceVerdict::Definite`] verdict with a
//!   witness element when every work-item provably writes the same cell.
//!
//! Both passes mirror the access-site numbering of the `vgpu` interpreter
//! (`prepare` assigns a load's site after its index sub-expression, a
//! store's site after index and value), so static provenance lines up
//! with dynamic race reports site-for-site.
//!
//! # Soundness caveats
//!
//! "Proven" is relative to the facts in [`Assumptions`]: buffer lengths
//! and launch sizes must match how the kernel is actually launched, and
//! content facts ([`BufferFacts::value_range`], [`BufferFacts::distinct`],
//! [`BufferFacts::interior_mask`], [`Assumptions::interior_guards`]) are
//! assumed data invariants — the differential harness cross-checks them
//! against the dynamic race-check oracle. Index arithmetic is treated as
//! exact integers (no `i32` wrap-around), and `for` steps are taken to be
//! ≥ 1, matching the interpreter's clamp. A
//! [`RaceVerdict::Definite`] verdict assumes the launch spans at least
//! two work-items.

use crate::arith::{expand, ArithExpr, RangeEnv, SymRange};
use crate::footprint::{classify_kernel, AccessRecord, KernelFootprints};
use crate::kast::{KExpr, KStmt, Kernel, MemRef, MemSpace};
use crate::scalar::{BinOp, Intrinsic, Lit, UnOp};
use crate::types::ScalarKind;
use std::collections::BTreeMap;
use std::fmt;

/// Facts about one buffer parameter, keyed by parameter name in
/// [`Assumptions::buffers`].
#[derive(Clone, Debug)]
pub struct BufferFacts {
    /// Symbolic element count the buffer is allocated with.
    pub len: ArithExpr,
    /// Range every *element value* of the buffer lies in (for integer
    /// gather tables such as `boundaryIndices`); enables bounds proofs
    /// through indirect indexing. Assumed, not derived.
    pub value_range: Option<SymRange>,
    /// Element values are pairwise distinct (a permutation-like gather
    /// table); enables race proofs through indirect stores. Assumed.
    pub distinct: bool,
    /// The buffer is an interior mask over the canonical row-major grid:
    /// `buf[lin(gid)] > 0` implies every `gid` is at least 1 away from
    /// each face (see [`Assumptions::interior_dims`]). Assumed.
    pub interior_mask: bool,
}

impl BufferFacts {
    /// Facts carrying only a length.
    pub fn sized(len: ArithExpr) -> Self {
        BufferFacts { len, value_range: None, distinct: false, interior_mask: false }
    }

    /// Adds a content value range.
    pub fn with_values(mut self, r: SymRange) -> Self {
        self.value_range = Some(r);
        self
    }

    /// Marks the contents pairwise distinct.
    pub fn with_distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Marks the buffer as an interior mask.
    pub fn with_interior_mask(mut self) -> Self {
        self.interior_mask = true;
        self
    }
}

/// The launch/allocation contract a kernel is verified against.
#[derive(Clone, Debug, Default)]
pub struct Assumptions {
    /// Per-dimension global size; `None` leaves that work-item id
    /// unbounded above, so in-kernel guards must establish the range.
    pub global_size: Vec<Option<ArithExpr>>,
    /// Lower bounds for symbolic size variables, e.g. `("Nx", 1)`.
    pub size_bounds: Vec<(String, i64)>,
    /// Equality defines relating aliased sizes, e.g. `S := MB·numB`.
    pub defines: Vec<(String, ArithExpr)>,
    /// Per-buffer facts, keyed by kernel parameter name.
    pub buffers: BTreeMap<String, BufferFacts>,
    /// Scalar variable names whose positivity implies the work-item is in
    /// the grid interior (hand-written kernels compute such a flag from
    /// halo checks). Assumed, cross-checked dynamically.
    pub interior_guards: Vec<String>,
    /// Grid extents used by interior refinement (`gid_d ∈ [1, dim_d−2]`)
    /// and by the canonical linearization an interior mask is indexed
    /// with. Empty when no interior facts apply.
    pub interior_dims: Vec<ArithExpr>,
    /// Per-dimension constant offset the kernel adds to each work-item id
    /// (slab-placed kernels produced by `Kernel::shift_gid` index their
    /// grid at `gid_d + offset_d`). The canonical linearization and the
    /// interior refinement shift with it: the interior fact becomes
    /// `gid_d + offset_d ∈ [1, dim_d−2]`. Missing entries are 0.
    pub gid_offsets: Vec<i64>,
}

impl Assumptions {
    /// The constant gid offset for dimension `d` (0 when unset).
    fn gid_offset(&self, d: usize) -> i64 {
        self.gid_offsets.get(d).copied().unwrap_or(0)
    }
}

/// Whether an access site reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Indexed load.
    Load,
    /// Indexed store.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// Outcome of the bounds check for one access site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Both bounds proven for every work-item and loop iteration.
    Proven,
    /// At least one bound could not be established.
    Potential,
}

/// One access-site bounds record.
#[derive(Clone, Debug)]
pub struct SiteReport {
    /// Kernel name.
    pub kernel: String,
    /// Access site id (shared load/store numbering, mirrors the
    /// interpreter's).
    pub site: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Buffer (parameter or private/local array) name.
    pub buffer: String,
    /// Rendered symbolic index, when derivable.
    pub index: String,
    /// Rendered derived interval for the index.
    pub range: String,
    /// Verdict for this site.
    pub verdict: Verdict,
    /// Why the site is unproven (empty for proven sites).
    pub reason: String,
}

/// Outcome of the write-race check for one buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceVerdict {
    /// All store maps proven pairwise disjoint across work-items.
    ProvenDisjoint,
    /// Disjointness could not be established.
    Potential,
    /// Work-items provably collide on the rendered element.
    Definite {
        /// The element distinct work-items write.
        element: String,
    },
}

/// One per-buffer write-race record.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Kernel name.
    pub kernel: String,
    /// Buffer (parameter) name.
    pub buffer: String,
    /// Store sites involved.
    pub sites: Vec<u32>,
    /// Verdict for this buffer.
    pub verdict: RaceVerdict,
    /// Why disjointness is unproven (empty when proven).
    pub reason: String,
}

/// Full static report for one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Bounds verdicts, one per access site.
    pub sites: Vec<SiteReport>,
    /// Race verdicts, one per stored-to global buffer.
    pub races: Vec<RaceReport>,
    /// Per-site access footprints on global/constant buffer parameters
    /// (see [`crate::footprint`]).
    pub footprints: KernelFootprints,
}

impl KernelReport {
    /// True when every site and every buffer is proven.
    pub fn is_proven(&self) -> bool {
        self.sites.iter().all(|s| s.verdict == Verdict::Proven)
            && self.races.iter().all(|r| r.verdict == RaceVerdict::ProvenDisjoint)
    }

    /// Per-site proof table for executors that want to elide dynamic
    /// bounds checks. A site is proven only when *every* report for it is
    /// [`Verdict::Proven`] (per-material or per-loop revisits of one site
    /// take the meet); sites with no report — e.g. in statically dead
    /// code the checker skipped — stay unproven.
    pub fn proof_table(&self) -> ProofTable {
        let max = self.sites.iter().map(|s| s.site + 1).max().unwrap_or(0);
        let mut proven = vec![false; max as usize];
        let mut seen = vec![false; max as usize];
        for s in &self.sites {
            let i = s.site as usize;
            let p = s.verdict == Verdict::Proven;
            proven[i] = if seen[i] { proven[i] && p } else { p };
            seen[i] = true;
        }
        ProofTable { proven }
    }
}

/// Dense per-access-site bounds-proof bits, indexed by the interpreter's
/// site numbering. Built by [`KernelReport::proof_table`]; consumed by
/// executors that elide per-access bounds checks at proven sites.
#[derive(Clone, Debug, Default)]
pub struct ProofTable {
    proven: Vec<bool>,
}

impl ProofTable {
    /// True when the bounds at `site` were proven for every work-item.
    /// Unknown sites (beyond the table) are conservatively unproven.
    pub fn proven(&self, site: u32) -> bool {
        self.proven.get(site as usize).copied().unwrap_or(false)
    }

    /// `(proven, potential)` counts over the sites the table covers.
    pub fn counts(&self) -> (usize, usize) {
        let p = self.proven.iter().filter(|&&b| b).count();
        (p, self.proven.len() - p)
    }
}

/// Drops duplicate site records, keeping one per `(kernel, site, reason)`
/// — the same key the interpreter's fallback/divergence records are
/// deduplicated by, so repeated verification of per-material or
/// per-precision variants of one kernel doesn't multiply identical
/// diagnostics.
pub fn dedupe_sites(sites: Vec<SiteReport>) -> Vec<SiteReport> {
    let mut seen: Vec<(String, u32, String)> = Vec::new();
    let mut out = Vec::with_capacity(sites.len());
    for s in sites {
        let key = (s.kernel.clone(), s.site, s.reason.clone());
        if !seen.contains(&key) {
            seen.push(key);
            out.push(s);
        }
    }
    out
}

/// Drops duplicate race records, keeping one per
/// `(kernel, buffer, reason)`.
pub fn dedupe_races(races: Vec<RaceReport>) -> Vec<RaceReport> {
    let mut seen: Vec<(String, String, String)> = Vec::new();
    let mut out = Vec::with_capacity(races.len());
    for r in races {
        let key = (r.kernel.clone(), r.buffer.clone(), r.reason.clone());
        if !seen.contains(&key) {
            seen.push(key);
            out.push(r);
        }
    }
    out
}

// ---- atoms ----
//
// The analysis works over "atoms": symbolic variables that vary per
// work-item or per loop iteration, distinguished from size variables by a
// leading '%' (which can never collide with kernel identifiers).
// Work-item ids are `%gid0..2`, loop variables get a fresh `%loop:` atom
// per loop, and loads from buffers with content facts become opaque
// `%ld:buf[idx]` atoms, cached by buffer and index so repeated loads
// unify.

fn gid_atom(d: u8) -> String {
    format!("%gid{d}")
}

fn is_atom(name: &str) -> bool {
    name.starts_with('%')
}

pub(crate) fn is_gid_atom(name: &str) -> bool {
    name.starts_with("%gid")
}

pub(crate) fn is_load_atom(name: &str) -> bool {
    name.starts_with("%ld:")
}

/// Metadata for one opaque load atom.
#[derive(Clone, Debug)]
struct AtomInfo {
    /// The symbolic index the atom was loaded at.
    arg: ArithExpr,
    /// Contents of the source buffer are pairwise distinct.
    distinct: bool,
    /// The source buffer is an interior mask.
    interior: bool,
}

/// One recorded store, input to the race pass.
struct StoreDesc {
    buffer: String,
    site: u32,
    sym: Option<ArithExpr>,
    /// Range facts in force at the store (includes guard/interior/loop
    /// refinements).
    renv: RangeEnv,
    /// Opaque-atom registry snapshot.
    atoms: BTreeMap<String, AtomInfo>,
}

struct Out<'k> {
    kernel: &'k Kernel,
    asm: &'k Assumptions,
    next_site: u32,
    sites: Vec<SiteReport>,
    stores: Vec<StoreDesc>,
    atoms: BTreeMap<String, AtomInfo>,
    /// Lengths of private/local arrays, recorded at their declaration.
    decl_lens: BTreeMap<String, ArithExpr>,
    loop_counter: u32,
    /// Raw access records on buffer parameters, handed to the footprint
    /// classifier after traversal.
    records: Vec<AccessRecord>,
}

#[derive(Clone)]
struct St {
    renv: RangeEnv,
    scalars: BTreeMap<String, Option<ArithExpr>>,
    dead: bool,
}

impl St {
    /// Joins two branch exit states.
    fn merge(self, other: St) -> St {
        if self.dead {
            return other;
        }
        if other.dead {
            return self;
        }
        let mut scalars = BTreeMap::new();
        for (k, v) in &self.scalars {
            let merged = match (v, other.scalars.get(k)) {
                (Some(a), Some(Some(b))) if a == b => Some(a.clone()),
                _ => None,
            };
            scalars.insert(k.clone(), merged);
        }
        for k in other.scalars.keys() {
            scalars.entry(k.clone()).or_insert(None);
        }
        let mut renv = self.renv.clone();
        let mut vars = self.renv.bounded_vars();
        for v in other.renv.bounded_vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        for v in vars {
            let u = self.renv.union_of(&self.renv.var_range(&v), &other.renv.var_range(&v));
            renv.set_range(v, u);
        }
        St { renv, scalars, dead: false }
    }
}

/// Runs both static passes over `kernel` under `asm`.
pub fn verify_kernel(kernel: &Kernel, asm: &Assumptions) -> KernelReport {
    let mut renv = RangeEnv::new();
    for (name, lo) in &asm.size_bounds {
        renv.set_range(name.clone(), SymRange::at_least(ArithExpr::Cst(*lo)));
    }
    for (name, value) in &asm.defines {
        renv.define(name.clone(), value.clone());
    }
    for d in 0..kernel.work_dim {
        let hi = asm.global_size.get(d as usize).cloned().flatten().map(|g| g - ArithExpr::one());
        renv.set_range(gid_atom(d), SymRange { lo: Some(ArithExpr::Cst(0)), hi });
    }
    let mut scalars = BTreeMap::new();
    for p in &kernel.params {
        if !p.is_buffer {
            let sym = matches!(p.kind, ScalarKind::I32).then(|| ArithExpr::var(p.name.as_str()));
            scalars.insert(p.name.clone(), sym);
        }
    }
    let mut out = Out {
        kernel,
        asm,
        next_site: 0,
        sites: Vec::new(),
        stores: Vec::new(),
        atoms: BTreeMap::new(),
        decl_lens: BTreeMap::new(),
        loop_counter: 0,
        records: Vec::new(),
    };
    let mut st = St { renv, scalars, dead: false };
    run_stmts(&kernel.body, &mut st, &mut out);

    let races = race_pass(kernel, &out.stores);
    let footprints = classify_kernel(&kernel.name, asm, &out.records);
    KernelReport {
        kernel: kernel.name.clone(),
        sites: dedupe_sites(out.sites),
        races: dedupe_races(races),
        footprints,
    }
}

// ---- expression evaluation ----

fn lit_int(l: &Lit) -> Option<i64> {
    match l.kind {
        ScalarKind::I32 | ScalarKind::Bool => Some(l.value as i64),
        _ => None,
    }
}

fn buf_name(kernel: &Kernel, mem: &MemRef) -> String {
    match mem {
        MemRef::Param(i) => {
            kernel.params.get(*i).map(|p| p.name.clone()).unwrap_or_else(|| format!("param{i}"))
        }
        MemRef::Priv(n) | MemRef::Local(n) => n.clone(),
    }
}

fn buf_len(out: &Out, mem: &MemRef) -> Option<ArithExpr> {
    match mem {
        MemRef::Param(i) => {
            let p = out.kernel.params.get(*i)?;
            out.asm.buffers.get(&p.name).map(|f| f.len.clone())
        }
        MemRef::Priv(n) | MemRef::Local(n) => out.decl_lens.get(n).cloned(),
    }
}

/// Evaluates `e` to an optional exact symbolic integer value. When
/// `record` is set this is the single main traversal: access sites are
/// numbered (mirroring the interpreter) and bounds-checked. Refinement
/// re-evaluation passes `record = false` and must not allocate sites.
fn eval(e: &KExpr, st: &mut St, out: &mut Out, record: bool) -> Option<ArithExpr> {
    match e {
        KExpr::Lit(l) => lit_int(l).map(ArithExpr::Cst),
        KExpr::Var(n) => st.scalars.get(n).cloned().flatten(),
        KExpr::GlobalId(d) => Some(ArithExpr::var(gid_atom(*d))),
        KExpr::GlobalSize(d) => out.asm.global_size.get(*d as usize).cloned().flatten(),
        KExpr::LocalId(_) | KExpr::LocalSize(_) | KExpr::GroupId(_) => None,
        KExpr::Load { mem, idx } => {
            let idx_sym = eval(idx, st, out, record);
            if record {
                let site = out.next_site;
                out.next_site += 1;
                check_bounds(AccessKind::Load, mem, &idx_sym, site, st, out);
            }
            load_atom(mem, &idx_sym, st, out)
        }
        KExpr::Bin(op, a, b) => {
            let sa = eval(a, st, out, record);
            let sb = eval(b, st, out, record);
            match (op, sa, sb) {
                (BinOp::Add, Some(x), Some(y)) => Some(x + y),
                (BinOp::Sub, Some(x), Some(y)) => Some(x - y),
                (BinOp::Mul, Some(x), Some(y)) => Some(x * y),
                (BinOp::Div, Some(x), Some(y)) => Some(ArithExpr::div(x, y)),
                (BinOp::Rem, Some(x), Some(y)) => Some(ArithExpr::rem(x, y)),
                _ => None,
            }
        }
        KExpr::Un(op, a) => {
            let sa = eval(a, st, out, record);
            match (op, sa) {
                (UnOp::Neg, Some(x)) => Some(ArithExpr::Cst(0) - x),
                _ => None,
            }
        }
        KExpr::Select(c, t, f) => {
            // The interpreter numbers sites across all three operands, so
            // both arms are traversed; each arm's value is derived under
            // the refinement its path implies (pad-clamp loads sit in the
            // false arm of a halo check).
            eval(c, st, out, record);
            let mut st_t = st.clone();
            refine(c, true, &mut st_t, out);
            let vt = eval(t, &mut st_t, out, record);
            let mut st_f = st.clone();
            refine(c, false, &mut st_f, out);
            let vf = eval(f, &mut st_f, out, record);
            match (vt, vf) {
                (Some(x), Some(y)) if x == y => Some(x),
                _ => None,
            }
        }
        KExpr::Call(i, args) => {
            let syms: Vec<Option<ArithExpr>> =
                args.iter().map(|a| eval(a, st, out, record)).collect();
            match (i, syms.as_slice()) {
                (Intrinsic::Min, [Some(x), Some(y)]) => Some(ArithExpr::min(x.clone(), y.clone())),
                (Intrinsic::Max, [Some(x), Some(y)]) => Some(ArithExpr::max(x.clone(), y.clone())),
                _ => None,
            }
        }
        KExpr::Cast(kind, a) => {
            let sa = eval(a, st, out, record);
            if matches!(kind, ScalarKind::I32) {
                sa
            } else {
                None
            }
        }
    }
}

/// Returns the opaque atom for a load from a fact-carrying buffer (cached
/// per buffer and index), or `None` when the value is untracked. The
/// atom's content value range is (re-)seeded into the *current* range
/// environment: content facts hold on every path.
fn load_atom(
    mem: &MemRef,
    idx_sym: &Option<ArithExpr>,
    st: &mut St,
    out: &mut Out,
) -> Option<ArithExpr> {
    let MemRef::Param(i) = mem else { return None };
    let p = out.kernel.params.get(*i)?;
    let facts = out.asm.buffers.get(&p.name)?;
    if facts.value_range.is_none() && !facts.distinct && !facts.interior_mask {
        return None;
    }
    let idx = idx_sym.clone()?;
    let name = format!("%ld:{}[{}]", p.name, idx);
    if !out.atoms.contains_key(&name) {
        out.atoms.insert(
            name.clone(),
            AtomInfo { arg: idx, distinct: facts.distinct, interior: facts.interior_mask },
        );
    }
    if let Some(r) = &facts.value_range {
        let cur = st.renv.var_range(&name);
        if cur.lo.is_none() && cur.hi.is_none() {
            st.renv.set_range(name.clone(), r.clone());
        }
    }
    Some(ArithExpr::var(name.as_str()))
}

fn check_bounds(
    kind: AccessKind,
    mem: &MemRef,
    idx_sym: &Option<ArithExpr>,
    site: u32,
    st: &St,
    out: &mut Out,
) {
    if st.dead {
        return;
    }
    let buffer = buf_name(out.kernel, mem);
    if matches!(mem, MemRef::Param(_)) {
        out.records.push(AccessRecord {
            site,
            kind,
            buffer: buffer.clone(),
            sym: idx_sym.clone(),
            renv: st.renv.clone(),
        });
    }
    let len = buf_len(out, mem);
    let (verdict, index, range, reason) = match (idx_sym, len) {
        (None, _) => (
            Verdict::Potential,
            "<non-affine>".to_string(),
            String::new(),
            "index is not an affine/tracked expression".to_string(),
        ),
        (Some(idx), None) => (
            Verdict::Potential,
            format!("{idx}"),
            String::new(),
            format!("no length fact for buffer `{buffer}`"),
        ),
        (Some(idx), Some(len)) => {
            let r = st.renv.range_of(idx);
            let lo_ok = r.lo.as_ref().is_some_and(|lo| st.renv.prove_nonneg(lo));
            let hi_ok =
                r.hi.as_ref()
                    .is_some_and(|hi| st.renv.prove_le(hi, &(len.clone() - ArithExpr::one())));
            let verdict = if lo_ok && hi_ok { Verdict::Proven } else { Verdict::Potential };
            let reason = if verdict == Verdict::Proven {
                String::new()
            } else if !lo_ok {
                format!("lower bound unproven: index range {r} vs 0")
            } else {
                format!("upper bound unproven: index range {r} vs len {len}")
            };
            (verdict, format!("{idx}"), format!("{r}"), reason)
        }
    };
    out.sites.push(SiteReport {
        kernel: out.kernel.name.clone(),
        site,
        kind,
        buffer,
        index,
        range,
        verdict,
        reason,
    });
}

// ---- path refinement ----

fn is_zero_lit(e: &KExpr) -> bool {
    matches!(e, KExpr::Lit(l) if lit_int(l) == Some(0))
}

/// Canonical row-major linearization the interior mask is indexed with:
/// `(gid0+o0) + (gid1+o1)·d0 + (gid2+o2)·d0·d1`, where `o_d` is the
/// per-dimension gid offset of a slab-placed kernel (0 by default).
fn canonical_lin(dims: &[ArithExpr], asm: &Assumptions) -> ArithExpr {
    let mut stride = ArithExpr::one();
    let mut terms = Vec::new();
    for (d, ext) in dims.iter().enumerate() {
        let gid = ArithExpr::var(gid_atom(d as u8)) + ArithExpr::Cst(asm.gid_offset(d));
        terms.push(gid * stride.clone());
        stride = stride * ext.clone();
    }
    ArithExpr::add(terms)
}

/// Narrows every work-item id so the *offset* id lies in the grid
/// interior: `gid_d + o_d ∈ [1, dim−2]`, i.e. `gid_d ∈ [1−o, dim−2−o]`.
fn interior_refine(st: &mut St, out: &Out) {
    for (d, ext) in out.asm.interior_dims.iter().enumerate() {
        let atom = gid_atom(d as u8);
        let off = out.asm.gid_offset(d);
        let cur = st.renv.var_range(&atom);
        let tight = SymRange::new(ArithExpr::Cst(1 - off), ext.clone() - ArithExpr::Cst(2 + off));
        let refined = st.renv.intersect(&cur, &tight);
        st.renv.set_range(atom, refined);
    }
}

/// Updates `st` with what `cond == truth` implies. Conservative: facts
/// that can't be turned into single-atom interval updates are dropped.
fn refine(cond: &KExpr, truth: bool, st: &mut St, out: &mut Out) {
    match cond {
        KExpr::Un(UnOp::Not, a) => refine(a, !truth, st, out),
        KExpr::Bin(BinOp::And, a, b) if truth => {
            refine(a, true, st, out);
            refine(b, true, st, out);
        }
        KExpr::Bin(BinOp::Or, a, b) if !truth => {
            refine(a, false, st, out);
            refine(b, false, st, out);
        }
        KExpr::Bin(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq), a, b) => {
            // Interior trigger: `x > 0` where `x` is a declared interior
            // guard or an interior-mask load at the canonical index.
            if truth && *op == BinOp::Gt && is_zero_lit(b) && interior_trigger(a, st, out) {
                interior_refine(st, out);
            }
            let sa = eval(a, st, out, false);
            let sb = eval(b, st, out, false);
            if let (Some(sa), Some(sb)) = (sa, sb) {
                apply_rel(*op, truth, &sa, &sb, st);
            }
        }
        _ => {}
    }
}

/// True when `x > 0` establishes the interior fact.
fn interior_trigger(x: &KExpr, st: &mut St, out: &mut Out) -> bool {
    if out.asm.interior_dims.is_empty() {
        return false;
    }
    if let KExpr::Var(n) = x {
        if out.asm.interior_guards.iter().any(|g| g == n) {
            return true;
        }
    }
    // A mask-buffer load at the canonical linearized index (possibly
    // through a tracked scalar).
    let Some(sym) = eval(x, st, out, false) else { return false };
    let ArithExpr::Var(name) = &sym else { return false };
    let Some(info) = out.atoms.get(&**name) else { return false };
    if !info.interior {
        return false;
    }
    let arg = info.arg.clone();
    let lin = canonical_lin(&out.asm.interior_dims, out.asm);
    st.renv.prove_eq(&arg, &lin)
}

/// Turns `a REL b` (under `truth`) into interval updates for every atom
/// occurring affinely with coefficient ±1 in `a − b`.
fn apply_rel(op: BinOp, truth: bool, sa: &ArithExpr, sb: &ArithExpr, st: &mut St) {
    // Normalize to constraints over d = a − b.
    let d = expand(&(sa.clone() - sb.clone()));
    // `le`: an offset o with d + o ≤ 0; `ge`: an offset o with d − o ≥ 0.
    let (le, ge): (Option<i64>, Option<i64>) = match (op, truth) {
        (BinOp::Lt, true) => (Some(1), None),    // a ≤ b − 1
        (BinOp::Lt, false) => (None, Some(0)),   // a ≥ b
        (BinOp::Le, true) => (Some(0), None),    // a ≤ b
        (BinOp::Le, false) => (None, Some(1)),   // a ≥ b + 1
        (BinOp::Gt, true) => (None, Some(1)),    // a ≥ b + 1
        (BinOp::Gt, false) => (Some(0), None),   // a ≤ b
        (BinOp::Ge, true) => (None, Some(0)),    // a ≥ b
        (BinOp::Ge, false) => (Some(1), None),   // a ≤ b − 1
        (BinOp::Eq, true) => (Some(0), Some(0)), // a == b
        _ => (None, None),
    };
    for v in d.free_vars() {
        if !is_atom(&v) {
            continue;
        }
        // The net coefficient must be the constant ±1 (affine, unit
        // stride); the residue after zeroing the atom must not mention it.
        let c = expand(&(d.subst(&v, &ArithExpr::one()) - d.subst(&v, &ArithExpr::zero())));
        let rest = d.subst(&v, &ArithExpr::zero());
        let c = match c {
            ArithExpr::Cst(c) if c == 1 || c == -1 => c,
            _ => continue,
        };
        if rest.free_vars().contains(&v) {
            continue;
        }
        let mut r = st.renv.var_range(&v);
        // The constraint is c·v + rest + o ≤ 0 and/or c·v + rest − o ≥ 0.
        if let Some(off) = le {
            let bound = ArithExpr::Cst(-off) - rest.clone();
            r = if c == 1 {
                st.renv.intersect(&r, &SymRange { lo: None, hi: Some(bound) })
            } else {
                st.renv.intersect(&r, &SymRange { lo: Some(ArithExpr::Cst(0) - bound), hi: None })
            };
        }
        if let Some(off) = ge {
            let bound = ArithExpr::Cst(off) - rest.clone();
            r = if c == 1 {
                st.renv.intersect(&r, &SymRange { lo: Some(bound), hi: None })
            } else {
                st.renv.intersect(&r, &SymRange { lo: None, hi: Some(ArithExpr::Cst(0) - bound) })
            };
        }
        st.renv.set_range(v, r);
    }
}

// ---- statement traversal ----

fn collect_assigned(stmts: &[KStmt], into: &mut Vec<String>) {
    for s in stmts {
        match s {
            KStmt::Assign { name, .. } if !into.contains(name) => {
                into.push(name.clone());
            }
            KStmt::For { body, .. } => collect_assigned(body, into),
            KStmt::If { then_, else_, .. } => {
                collect_assigned(then_, into);
                collect_assigned(else_, into);
            }
            _ => {}
        }
    }
}

fn run_stmts(stmts: &[KStmt], st: &mut St, out: &mut Out) {
    for s in stmts {
        run_stmt(s, st, out);
    }
}

fn run_stmt(s: &KStmt, st: &mut St, out: &mut Out) {
    match s {
        KStmt::DeclScalar { name, init, .. } => {
            let sym = init.as_ref().and_then(|e| eval(e, st, out, true));
            st.scalars.insert(name.clone(), sym);
        }
        KStmt::DeclPrivArray { name, len, .. } | KStmt::DeclLocalArray { name, len, .. } => {
            if let Some(l) = eval(len, st, out, true) {
                out.decl_lens.insert(name.clone(), l);
            }
        }
        KStmt::Barrier => {}
        KStmt::Assign { name, value } => {
            let sym = eval(value, st, out, true);
            st.scalars.insert(name.clone(), sym);
        }
        KStmt::Store { mem, idx, value } => {
            let idx_sym = eval(idx, st, out, true);
            eval(value, st, out, true);
            let site = out.next_site;
            out.next_site += 1;
            check_bounds(AccessKind::Store, mem, &idx_sym, site, st, out);
            if !st.dead {
                if let MemRef::Param(i) = mem {
                    let p = &out.kernel.params[*i];
                    if p.space != MemSpace::Private {
                        out.stores.push(StoreDesc {
                            buffer: p.name.clone(),
                            site,
                            sym: idx_sym,
                            renv: st.renv.clone(),
                            atoms: out.atoms.clone(),
                        });
                    }
                }
            }
        }
        KStmt::For { var, begin, end, step, body } => {
            let b = eval(begin, st, out, true);
            let e = eval(end, st, out, true);
            eval(step, st, out, true);
            // Loop-carried scalars are widened to unknown before the
            // single body pass (site numbering matches the interpreter's
            // one syntactic numbering pass).
            let mut assigned = Vec::new();
            collect_assigned(body, &mut assigned);
            for a in &assigned {
                if st.scalars.contains_key(a) {
                    st.scalars.insert(a.clone(), None);
                }
            }
            let single = match (&b, &e) {
                (Some(b), Some(e)) => st.renv.prove_eq(&(e.clone() - b.clone()), &ArithExpr::one()),
                _ => false,
            };
            if single {
                // Exactly one iteration: the loop variable is the begin
                // value itself (kills `idx + i` offsets from degenerate
                // copy loops).
                st.scalars.insert(var.clone(), b);
            } else {
                out.loop_counter += 1;
                let atom = format!("%loop:{var}:{}", out.loop_counter);
                // Sound for the interpreter's step ≥ 1 clamp: every value
                // taken lies in [begin, end−1].
                let r = SymRange { lo: b, hi: e.map(|e| e - ArithExpr::one()) };
                st.renv.set_range(atom.clone(), r);
                st.scalars.insert(var.clone(), Some(ArithExpr::var(atom.as_str())));
            }
            run_stmts(body, st, out);
            st.scalars.remove(var);
            for a in &assigned {
                if st.scalars.contains_key(a) {
                    st.scalars.insert(a.clone(), None);
                }
            }
        }
        KStmt::If { cond, then_, else_ } => {
            eval(cond, st, out, true);
            let mut st_t = st.clone();
            refine(cond, true, &mut st_t, out);
            let mut st_f = st.clone();
            refine(cond, false, &mut st_f, out);
            run_stmts(then_, &mut st_t, out);
            run_stmts(else_, &mut st_f, out);
            let dead_before = st.dead;
            *st = st_t.merge(st_f);
            st.dead |= dead_before;
        }
        KStmt::Return => {
            st.dead = true;
        }
        KStmt::Comment(_) => {}
    }
}

// ---- write-race pass ----

/// Maximum number of store-map atoms for which stride permutations are
/// tried (4! = 24 orders).
const MAX_RADIX_ATOMS: usize = 4;

fn race_pass(kernel: &Kernel, stores: &[StoreDesc]) -> Vec<RaceReport> {
    let mut buffers: Vec<String> = Vec::new();
    for s in stores {
        if !buffers.contains(&s.buffer) {
            buffers.push(s.buffer.clone());
        }
    }
    buffers
        .into_iter()
        .map(|buf| {
            let group: Vec<&StoreDesc> = stores.iter().filter(|s| s.buffer == buf).collect();
            let sites: Vec<u32> = group.iter().map(|s| s.site).collect();
            let (verdict, reason) = race_verdict(&group, kernel.work_dim);
            RaceReport { kernel: kernel.name.clone(), buffer: buf, sites, verdict, reason }
        })
        .collect()
}

fn race_verdict(group: &[&StoreDesc], work_dim: u8) -> (RaceVerdict, String) {
    if group.iter().any(|s| s.sym.is_none()) {
        return (RaceVerdict::Potential, "store index is not an affine/tracked expression".into());
    }
    // Distinct maps only: several syntactic stores through one map are
    // same-element writes by the *same* work-item, which the dynamic
    // checker (counting distinct items per element) also permits.
    let mut maps: Vec<(&StoreDesc, ArithExpr)> = Vec::new();
    for s in group {
        let sym = expand(s.sym.as_ref().expect("checked above"));
        if !maps.iter().any(|(_, m)| *m == sym) {
            maps.push((s, sym));
        }
    }
    for (s, m) in &maps {
        let (v, reason) = single_map_verdict(s, m, work_dim);
        if v != RaceVerdict::ProvenDisjoint {
            return (v, reason);
        }
    }
    // Different maps must additionally be pairwise disjoint.
    for i in 0..maps.len() {
        for j in i + 1..maps.len() {
            if !maps_disjoint(maps[i].0, &maps[i].1, &maps[j].1) {
                return (
                    RaceVerdict::Potential,
                    format!(
                        "overlap between store maps at sites {} and {} unrefuted",
                        maps[i].0.site, maps[j].0.site
                    ),
                );
            }
        }
    }
    (RaceVerdict::ProvenDisjoint, String::new())
}

/// Splits an expanded map into (atom, coefficient) pairs and an atom-free
/// base; `None` when an atom occurs non-affinely (under `Div`/`Mod`/
/// `Min`/`Max`, or multiplied by another atom).
pub(crate) fn affine_split(m: &ArithExpr) -> Option<(Vec<(String, ArithExpr)>, ArithExpr)> {
    let mut pairs = Vec::new();
    let mut rest = m.clone();
    for v in m.free_vars() {
        if !is_atom(&v) {
            continue;
        }
        let c = expand(&(m.subst(&v, &ArithExpr::one()) - m.subst(&v, &ArithExpr::zero())));
        // Linearity: the coefficient must not mention any atom, and the
        // second difference must match the first.
        if c.free_vars().iter().any(|w| is_atom(w)) {
            return None;
        }
        let c2 = expand(&(m.subst(&v, &ArithExpr::Cst(2)) - m.subst(&v, &ArithExpr::one())));
        if c2 != c {
            return None;
        }
        rest = rest.subst(&v, &ArithExpr::zero());
        pairs.push((v, c));
    }
    if expand(&rest).free_vars().iter().any(|w| is_atom(w)) {
        return None;
    }
    Some((pairs, expand(&rest)))
}

fn single_map_verdict(s: &StoreDesc, m: &ArithExpr, work_dim: u8) -> (RaceVerdict, String) {
    let Some((pairs, base)) = affine_split(m) else {
        return (
            RaceVerdict::Potential,
            "store index depends non-affinely on a work-item/loop/gather value".into(),
        );
    };
    let gid_dependent = pairs.iter().any(|(n, _)| is_gid_atom(n))
        || pairs.iter().any(|(n, _)| {
            is_load_atom(n)
                && s.atoms.get(n).is_some_and(|i| i.arg.free_vars().iter().any(|w| is_atom(w)))
        });
    if !gid_dependent {
        // The map does not vary with the work-item id: every work-item
        // writes the same element(s) — a definite cross-item collision
        // (assuming ≥ 2 work-items are launched).
        let witness = if pairs.is_empty() { format!("{base}") } else { format!("{m}") };
        return (
            RaceVerdict::Definite { element: witness },
            "store index is identical for every work-item".into(),
        );
    }
    // Opaque distinct-gather map: ±A + const where A reads a
    // pairwise-distinct table at an index that is itself injective over
    // the full work-item space.
    if distinct_gather_injective(&pairs, s, work_dim) {
        return (RaceVerdict::ProvenDisjoint, String::new());
    }
    if covers_all_gids(&pairs, work_dim) && injective_mixed_radix(&pairs, &s.renv) {
        return (RaceVerdict::ProvenDisjoint, String::new());
    }
    (RaceVerdict::Potential, format!("injectivity of store map `{m}` across work-items unproven"))
}

/// Every launched dimension's id must take part in the map, otherwise two
/// items differing only in an excluded dimension collide.
fn covers_all_gids(pairs: &[(String, ArithExpr)], work_dim: u8) -> bool {
    (0..work_dim).all(|d| pairs.iter().any(|(n, _)| *n == gid_atom(d)))
}

/// Proves `±A + const` maps with `A` a distinct-contents gather atom:
/// distinct work-items read different table slots (the gather index is
/// injective), distinct slots hold distinct values, hence distinct store
/// elements.
fn distinct_gather_injective(pairs: &[(String, ArithExpr)], s: &StoreDesc, work_dim: u8) -> bool {
    let [(name, c)] = pairs else { return false };
    if !is_load_atom(name) || !matches!(c, ArithExpr::Cst(1) | ArithExpr::Cst(-1)) {
        return false;
    }
    let Some(info) = s.atoms.get(name) else { return false };
    if !info.distinct {
        return false;
    }
    let Some((apairs, _)) = affine_split(&expand(&info.arg)) else { return false };
    if !apairs.iter().all(|(n, _)| is_gid_atom(n)) {
        return false;
    }
    covers_all_gids(&apairs, work_dim) && injective_mixed_radix(&apairs, &s.renv)
}

/// Mixed-radix injectivity: for some ordering of the atoms, every
/// coefficient is ≥ 1 and each dominates the total span of all previous
/// digits (`c_i ≥ 1 + Σ_{j<i} c_j·(hi_j − lo_j)`) — then distinct atom
/// tuples map to distinct values, so distinct work-items never collide.
fn injective_mixed_radix(pairs: &[(String, ArithExpr)], renv: &RangeEnv) -> bool {
    if pairs.is_empty() || pairs.len() > MAX_RADIX_ATOMS {
        return false;
    }
    let spans: Option<Vec<(ArithExpr, ArithExpr)>> = pairs
        .iter()
        .map(|(n, c)| {
            let r = renv.var_range(n);
            match (r.lo, r.hi) {
                (Some(lo), Some(hi)) if renv.prove_nonneg(&(c.clone() - ArithExpr::one())) => {
                    Some((c.clone(), hi - lo))
                }
                _ => None,
            }
        })
        .collect();
    let Some(spans) = spans else { return false };
    let mut order: Vec<usize> = (0..spans.len()).collect();
    permutations(&mut order, 0, &mut |perm| {
        let mut span_sum = ArithExpr::zero();
        for (k, &i) in perm.iter().enumerate() {
            let (c, w) = &spans[i];
            if k > 0 && !renv.prove_le(&(ArithExpr::one() + span_sum.clone()), c) {
                return false;
            }
            span_sum = span_sum + c.clone() * w.clone();
        }
        true
    })
}

/// Tries every permutation of `items[at..]`, returning true as soon as
/// `check` accepts one.
fn permutations(
    items: &mut Vec<usize>,
    at: usize,
    check: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if at == items.len() {
        return check(items);
    }
    for i in at..items.len() {
        items.swap(at, i);
        let found = permutations(items, at + 1, check);
        items.swap(at, i);
        if found {
            return true;
        }
    }
    false
}

/// Tries to refute any overlap between two different store maps: either
/// their value ranges are disjoint, or their difference is a nonzero
/// constant.
fn maps_disjoint(s1: &StoreDesc, m1: &ArithExpr, m2: &ArithExpr) -> bool {
    let r1 = s1.renv.range_of(m1);
    let r2 = s1.renv.range_of(m2);
    if let (Some(h1), Some(l2)) = (&r1.hi, &r2.lo) {
        if s1.renv.prove_lt(h1, l2) {
            return true;
        }
    }
    if let (Some(h2), Some(l1)) = (&r2.hi, &r1.lo) {
        if s1.renv.prove_lt(h2, l1) {
            return true;
        }
    }
    let d = expand(&(m1.clone() - m2.clone()));
    matches!(d, ArithExpr::Cst(c) if c != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::KernelParam;

    fn asm_1d(n: &str, len: ArithExpr) -> Assumptions {
        Assumptions {
            global_size: vec![Some(ArithExpr::var(n))],
            size_bounds: vec![(n.to_string(), 1)],
            buffers: [("out".to_string(), BufferFacts::sized(len))].into_iter().collect(),
            ..Default::default()
        }
    }

    fn store_kernel(idx: KExpr) -> Kernel {
        Kernel {
            name: "t".into(),
            params: vec![
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![KStmt::Store { mem: MemRef::Param(0), idx, value: KExpr::real(0.0) }],
            work_dim: 1,
        }
    }

    #[test]
    fn identity_store_is_proven() {
        let k = store_kernel(KExpr::GlobalId(0));
        let rep =
            verify_kernel(&k.resolve_real(ScalarKind::F32), &asm_1d("N", ArithExpr::var("N")));
        assert!(rep.is_proven(), "{rep:?}");
        assert_eq!(rep.sites.len(), 1);
        assert_eq!(rep.sites[0].site, 0);
    }

    #[test]
    fn off_by_one_store_is_potential() {
        let k = store_kernel(KExpr::GlobalId(0) + KExpr::int(1));
        let rep =
            verify_kernel(&k.resolve_real(ScalarKind::F32), &asm_1d("N", ArithExpr::var("N")));
        assert!(!rep.is_proven());
        assert_eq!(rep.sites[0].verdict, Verdict::Potential);
        assert!(rep.sites[0].reason.contains("upper bound"), "{}", rep.sites[0].reason);
    }

    #[test]
    fn constant_store_is_definite_race() {
        let k = store_kernel(KExpr::int(3));
        let rep =
            verify_kernel(&k.resolve_real(ScalarKind::F32), &asm_1d("N", ArithExpr::var("N")));
        match &rep.races[0].verdict {
            RaceVerdict::Definite { element } => assert_eq!(element, "3"),
            other => panic!("expected definite race, got {other:?}"),
        }
    }

    #[test]
    fn guard_refines_unbounded_gid() {
        // No global-size fact: the in-kernel guard must establish gid < N.
        let mut k = store_kernel(KExpr::GlobalId(0));
        k.body.insert(
            0,
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
        );
        let mut asm = asm_1d("N", ArithExpr::var("N"));
        asm.global_size = vec![None];
        let rep = verify_kernel(&k.resolve_real(ScalarKind::F32), &asm);
        assert!(rep.is_proven(), "{rep:?}");
    }

    #[test]
    fn dedupe_collapses_identical_records() {
        let k = store_kernel(KExpr::GlobalId(0) + KExpr::int(1)).resolve_real(ScalarKind::F32);
        let asm = asm_1d("N", ArithExpr::var("N"));
        let a = verify_kernel(&k, &asm);
        let b = verify_kernel(&k, &asm);
        let both: Vec<SiteReport> = a.sites.iter().chain(b.sites.iter()).cloned().collect();
        assert_eq!(dedupe_sites(both).len(), a.sites.len());
    }
}

//! The LIFT pattern IR with the paper's extensions.
//!
//! Programs are trees of data-parallel patterns (`map`, `zip`, `slide`,
//! `pad`, `reduceSeq`, …) over typed arrays, with scalar computation
//! delegated to [`UserFun`]s. On top of the classic LIFT patterns this IR
//! carries the primitives added by the paper (§IV, Table I):
//!
//! * [`ExprKind::WriteTo`] — redirect an expression's output to existing
//!   memory (in-place updates);
//! * [`ExprKind::Concat`] / [`ExprKind::Skip`] / [`ExprKind::ArrayCons`] —
//!   the in-place scatter idiom `Concat(Skip(idx), f(x), Skip(rest))`;
//! * host-side orchestration (`ToGPU`, `ToHost`, `OclKernel`) lives in
//!   [`crate::host`].
//!
//! Each node carries a unique [`ExprId`]; analysis passes (type checking,
//! views, memory) attach results in side tables keyed by id, mirroring how
//! LIFT decorates its IR.

use crate::arith::ArithExpr;
use crate::scalar::{Lit, UserFun};
use crate::types::Type;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique id of an expression node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ExprId(pub u64);

/// Unique id of a parameter binder.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ParamId(pub u64);

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn fresh() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A parameter binder: a kernel input (with a declared type) or a lambda
/// parameter (type inferred by [`crate::typecheck`]).
#[derive(Debug)]
pub struct ParamDef {
    /// Unique id.
    pub id: ParamId,
    /// Display name (also used in generated code where possible).
    pub name: String,
    /// Declared type; `None` for inferred lambda parameters.
    pub ty: Option<Type>,
}

impl ParamDef {
    /// A typed (kernel input) parameter.
    pub fn typed(name: impl Into<String>, ty: Type) -> Rc<ParamDef> {
        Rc::new(ParamDef { id: ParamId(fresh()), name: name.into(), ty: Some(ty) })
    }

    /// An untyped (lambda) parameter.
    pub fn untyped(name: impl Into<String>) -> Rc<ParamDef> {
        Rc::new(ParamDef { id: ParamId(fresh()), name: name.into(), ty: None })
    }

    /// An expression referencing this parameter.
    pub fn to_expr(self: &Rc<ParamDef>) -> ExprRef {
        Expr::new(ExprKind::Param(self.clone()))
    }
}

/// A unary or binary (or n-ary) lambda used by `map` / `reduce`.
#[derive(Clone, Debug)]
pub struct Lambda {
    /// Bound parameters.
    pub params: Vec<Rc<ParamDef>>,
    /// Body.
    pub body: ExprRef,
}

impl Lambda {
    /// One-parameter lambda built from a Rust closure.
    pub fn unary(name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> Lambda {
        let p = ParamDef::untyped(name);
        let body = f(p.to_expr());
        Lambda { params: vec![p], body }
    }

    /// Two-parameter lambda.
    pub fn binary(a: &str, b: &str, f: impl FnOnce(ExprRef, ExprRef) -> ExprRef) -> Lambda {
        let pa = ParamDef::untyped(a);
        let pb = ParamDef::untyped(b);
        let body = f(pa.to_expr(), pb.to_expr());
        Lambda { params: vec![pa, pb], body }
    }
}

/// How a `map` executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// Parallel over the global NDRange (one work-item per element).
    Glb,
    /// Sequential loop inside one work-item.
    Seq,
    /// Parallel over workgroups (one group per element; the element is
    /// usually a `split` chunk or a `slide` tile).
    Wrg,
    /// Parallel over the work-items of one group (one local item per
    /// element). Must appear inside a `Wrg` map.
    Lcl,
}

/// Out-of-range behaviour of `pad`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PadKind {
    /// Reads outside the array yield this constant.
    Constant(Lit),
    /// Reads outside clamp to the nearest edge element.
    Clamp,
}

/// Reference-counted expression node.
pub type ExprRef = Rc<Expr>;

/// An IR expression.
#[derive(Debug)]
pub struct Expr {
    /// Unique node id (side tables key on this).
    pub id: ExprId,
    /// Node payload.
    pub kind: ExprKind,
}

impl Expr {
    /// Allocates a node with a fresh id.
    pub fn new(kind: ExprKind) -> ExprRef {
        Rc::new(Expr { id: ExprId(fresh()), kind })
    }
}

/// Expression payloads.
#[derive(Debug)]
pub enum ExprKind {
    /// Reference to a bound parameter.
    Param(Rc<ParamDef>),
    /// Scalar literal.
    Literal(Lit),
    /// Application of a scalar user function to scalar arguments.
    Call {
        /// The function.
        f: Rc<UserFun>,
        /// Scalar arguments.
        args: Vec<ExprRef>,
    },
    /// Tuple construction.
    Tuple(Vec<ExprRef>),
    /// Tuple projection.
    Get {
        /// A tuple-typed expression.
        tuple: ExprRef,
        /// Component index.
        index: usize,
    },
    /// Dynamic gather: `array[index]` with a runtime scalar index. This is
    /// the paper's `ArrayAccess` (Listing 7, lines 8–10).
    At {
        /// Array to read.
        array: ExprRef,
        /// i32 index expression.
        index: ExprRef,
    },
    /// Strided window: elements `array[start + k*stride]` for `k in 0..len`.
    /// Used by FD-MM for the per-branch boundary state laid out as
    /// `state[b*numBoundaryPoints + i]`.
    Slice {
        /// Array to window.
        array: ExprRef,
        /// Runtime scalar start index.
        start: ExprRef,
        /// Static stride.
        stride: ArithExpr,
        /// Static length.
        len: ArithExpr,
    },
    /// The array `[0, 1, …, n-1] : [int; n]`.
    Iota {
        /// Length.
        n: ArithExpr,
    },
    /// A symbolic size as a runtime i32 value (e.g. the grid point count `N`
    /// needed to compute a trailing `Skip` length `N - 1 - idx`).
    SizeVal(ArithExpr),
    /// `let param = value in body`.
    Let {
        /// Binder.
        param: Rc<ParamDef>,
        /// Bound value (scalar, or an array forced with [`ExprKind::ToPrivate`]).
        value: ExprRef,
        /// Body.
        body: ExprRef,
    },
    /// Map over a 1-D array.
    Map {
        /// Parallel or sequential.
        kind: MapKind,
        /// Element function.
        f: Lambda,
        /// Input array.
        input: ExprRef,
    },
    /// Map over the elements of a 2-D (nested) array.
    Map2 {
        /// Parallel (2-D NDRange) execution only.
        kind: MapKind,
        /// Element function.
        f: Lambda,
        /// Input `[[T; nx]; ny]`.
        input: ExprRef,
    },
    /// Map over the elements of a 3-D (nested) array.
    Map3 {
        /// Parallel (3-D NDRange) or sequential (triple loop).
        kind: MapKind,
        /// Element function.
        f: Lambda,
        /// Input `[[[T; nx]; ny]; nz]`.
        input: ExprRef,
    },
    /// Element-wise zip of equal-length 1-D arrays.
    Zip(Vec<ExprRef>),
    /// Element-wise zip of equal-shape 2-D arrays.
    Zip2(Vec<ExprRef>),
    /// Element-wise zip of equal-shape 3-D arrays.
    Zip3(Vec<ExprRef>),
    /// 1-D sliding windows of `size` every `step`.
    Slide {
        /// Window size.
        size: i64,
        /// Step between windows.
        step: i64,
        /// Input array.
        input: ExprRef,
    },
    /// 2-D sliding windows (`size²` neighbourhoods) every `step` in each
    /// dimension.
    Slide2 {
        /// Window size per dimension.
        size: i64,
        /// Step per dimension.
        step: i64,
        /// Input 2-D array.
        input: ExprRef,
    },
    /// 3-D sliding windows (`size³` neighbourhoods) every `step` in each
    /// dimension.
    Slide3 {
        /// Window size per dimension.
        size: i64,
        /// Step per dimension.
        step: i64,
        /// Input 3-D array.
        input: ExprRef,
    },
    /// Enlarges a 1-D array by `left`/`right` virtual elements.
    Pad {
        /// Elements added before index 0.
        left: i64,
        /// Elements added after the end.
        right: i64,
        /// What out-of-range reads yield.
        kind: PadKind,
        /// Input array.
        input: ExprRef,
    },
    /// Enlarges a 2-D array by `amount` on every side of both dimensions.
    Pad2 {
        /// Halo width.
        amount: i64,
        /// Out-of-range behaviour.
        kind: PadKind,
        /// Input 2-D array.
        input: ExprRef,
    },
    /// Enlarges a 3-D array by `amount` on every side of every dimension.
    Pad3 {
        /// Halo width.
        amount: i64,
        /// Out-of-range behaviour.
        kind: PadKind,
        /// Input 3-D array.
        input: ExprRef,
    },
    /// Shrinks a 3-D array by `margin` on every side of every dimension
    /// (the dual of [`ExprKind::Pad3`]; selects the interior of a grid with
    /// halo).
    Crop3 {
        /// Margin width.
        margin: i64,
        /// Input 3-D array.
        input: ExprRef,
    },
    /// Splits a 1-D array into chunks of `chunk`.
    Split {
        /// Chunk length.
        chunk: ArithExpr,
        /// Input array.
        input: ExprRef,
    },
    /// Flattens one level of nesting.
    Join {
        /// Input `[[T; m]; n]`.
        input: ExprRef,
    },
    /// Sequential reduction.
    ReduceSeq {
        /// Binary combinator `(acc, x) -> acc`.
        f: Lambda,
        /// Initial accumulator.
        init: ExprRef,
        /// Input array.
        input: ExprRef,
    },
    /// Materialises an array value into private (register) memory so it can
    /// be read repeatedly (LIFT's `toPrivate`).
    ToPrivate(ExprRef),
    /// Materialises an array into workgroup-shared local memory, loaded
    /// cooperatively by the group's work-items and followed by a barrier
    /// (LIFT's `toLocal`). Only valid inside a `Wrg` map.
    ToLocal(ExprRef),
    /// Concatenation of arrays (new primitive, Table I).
    Concat(Vec<ExprRef>),
    /// A length-`len` array that generates **no code**; it only offsets
    /// subsequent writes inside a [`ExprKind::Concat`] (new primitive,
    /// Table I). `len` is a runtime scalar.
    Skip {
        /// Runtime length (i32).
        len: ExprRef,
        /// Element type of the virtual array.
        elem: Type,
    },
    /// `n` copies of a single element (new primitive, Table I).
    ArrayCons {
        /// The element.
        elem: ExprRef,
        /// Repetition count.
        n: ArithExpr,
    },
    /// Redirects where `value` is written (new primitive, Table I): `dest`
    /// must denote existing memory (a parameter, `At(param, i)`, a `Slice`,
    /// or `Crop3`). No output buffer is allocated for `value`.
    WriteTo {
        /// Destination memory view.
        dest: ExprRef,
        /// The value to compute and store there.
        value: ExprRef,
    },
}

// ---------------------------------------------------------------------------
// Builder functions
// ---------------------------------------------------------------------------

/// Scalar literal expression.
pub fn lit(l: Lit) -> ExprRef {
    Expr::new(ExprKind::Literal(l))
}

/// Apply a user function to scalar arguments.
pub fn call(f: &Rc<UserFun>, args: Vec<ExprRef>) -> ExprRef {
    Expr::new(ExprKind::Call { f: f.clone(), args })
}

/// Tuple constructor.
pub fn tuple(parts: Vec<ExprRef>) -> ExprRef {
    Expr::new(ExprKind::Tuple(parts))
}

/// Tuple projection.
pub fn get(t: ExprRef, index: usize) -> ExprRef {
    Expr::new(ExprKind::Get { tuple: t, index })
}

/// Dynamic array access `array[index]`.
pub fn at(array: ExprRef, index: ExprRef) -> ExprRef {
    Expr::new(ExprKind::At { array, index })
}

/// Strided window into `array`.
pub fn slice(
    array: ExprRef,
    start: ExprRef,
    stride: impl Into<ArithExpr>,
    len: impl Into<ArithExpr>,
) -> ExprRef {
    Expr::new(ExprKind::Slice { array, start, stride: stride.into(), len: len.into() })
}

/// Index array `[0..n)`.
pub fn iota(n: impl Into<ArithExpr>) -> ExprRef {
    Expr::new(ExprKind::Iota { n: n.into() })
}

/// A symbolic size as a runtime i32 scalar.
pub fn size_val(n: impl Into<ArithExpr>) -> ExprRef {
    Expr::new(ExprKind::SizeVal(n.into()))
}

/// `let`-binding.
pub fn let_in(name: &str, value: ExprRef, body: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    let p = ParamDef::untyped(name);
    let b = body(p.to_expr());
    Expr::new(ExprKind::Let { param: p, value, body: b })
}

/// Parallel map over a 1-D array.
pub fn map_glb(input: ExprRef, name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    Expr::new(ExprKind::Map { kind: MapKind::Glb, f: Lambda::unary(name, f), input })
}

/// Sequential map over a 1-D array.
pub fn map_seq(input: ExprRef, name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    Expr::new(ExprKind::Map { kind: MapKind::Seq, f: Lambda::unary(name, f), input })
}

/// Parallel map over the elements of a 2-D array.
pub fn map2_glb(input: ExprRef, name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    Expr::new(ExprKind::Map2 { kind: MapKind::Glb, f: Lambda::unary(name, f), input })
}

/// Parallel map over the elements of a 3-D array.
pub fn map3_glb(input: ExprRef, name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    Expr::new(ExprKind::Map3 { kind: MapKind::Glb, f: Lambda::unary(name, f), input })
}

/// Zip of 1-D arrays.
pub fn zip(parts: Vec<ExprRef>) -> ExprRef {
    assert!(parts.len() >= 2, "zip needs at least two arrays");
    Expr::new(ExprKind::Zip(parts))
}

/// Zip of 2-D arrays.
pub fn zip2(parts: Vec<ExprRef>) -> ExprRef {
    assert!(parts.len() >= 2, "zip2 needs at least two arrays");
    Expr::new(ExprKind::Zip2(parts))
}

/// Zip of 3-D arrays.
pub fn zip3(parts: Vec<ExprRef>) -> ExprRef {
    assert!(parts.len() >= 2, "zip3 needs at least two arrays");
    Expr::new(ExprKind::Zip3(parts))
}

/// 1-D sliding windows.
pub fn slide(size: i64, step: i64, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Slide { size, step, input })
}

/// 2-D sliding windows.
pub fn slide2(size: i64, step: i64, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Slide2 { size, step, input })
}

/// 3-D sliding windows.
pub fn slide3(size: i64, step: i64, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Slide3 { size, step, input })
}

/// 1-D pad.
pub fn pad(left: i64, right: i64, kind: PadKind, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Pad { left, right, kind, input })
}

/// 2-D pad.
pub fn pad2(amount: i64, kind: PadKind, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Pad2 { amount, kind, input })
}

/// 3-D pad.
pub fn pad3(amount: i64, kind: PadKind, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Pad3 { amount, kind, input })
}

/// 3-D crop (interior view).
pub fn crop3(margin: i64, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Crop3 { margin, input })
}

/// Split into chunks.
pub fn split(chunk: impl Into<ArithExpr>, input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Split { chunk: chunk.into(), input })
}

/// Flatten one nesting level.
pub fn join(input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::Join { input })
}

/// Sequential reduction.
pub fn reduce_seq(
    init: ExprRef,
    input: ExprRef,
    f: impl FnOnce(ExprRef, ExprRef) -> ExprRef,
) -> ExprRef {
    Expr::new(ExprKind::ReduceSeq { f: Lambda::binary("acc", "x", f), init, input })
}

/// Materialise into private memory.
pub fn to_private(input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::ToPrivate(input))
}

/// Materialise into workgroup-local memory (cooperative load + barrier).
pub fn to_local(input: ExprRef) -> ExprRef {
    Expr::new(ExprKind::ToLocal(input))
}

/// Workgroup-parallel map.
pub fn map_wrg(input: ExprRef, name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    Expr::new(ExprKind::Map { kind: MapKind::Wrg, f: Lambda::unary(name, f), input })
}

/// Local-item-parallel map (inside a workgroup map).
pub fn map_lcl(input: ExprRef, name: &str, f: impl FnOnce(ExprRef) -> ExprRef) -> ExprRef {
    Expr::new(ExprKind::Map { kind: MapKind::Lcl, f: Lambda::unary(name, f), input })
}

/// Concatenate arrays (new primitive).
pub fn concat(parts: Vec<ExprRef>) -> ExprRef {
    Expr::new(ExprKind::Concat(parts))
}

/// Virtual skip array (new primitive).
pub fn skip(len: ExprRef, elem: Type) -> ExprRef {
    Expr::new(ExprKind::Skip { len, elem })
}

/// Repeated-element array (new primitive).
pub fn array_cons(elem: ExprRef, n: impl Into<ArithExpr>) -> ExprRef {
    Expr::new(ExprKind::ArrayCons { elem, n: n.into() })
}

/// In-place write redirection (new primitive).
pub fn write_to(dest: ExprRef, value: ExprRef) -> ExprRef {
    Expr::new(ExprKind::WriteTo { dest, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn fresh_ids_are_unique() {
        let a = lit(Lit::i32(0));
        let b = lit(Lit::i32(0));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn lambda_unary_binds_its_param() {
        let l = Lambda::unary("x", |x| x);
        match &l.body.kind {
            ExprKind::Param(p) => assert_eq!(p.id, l.params[0].id),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn typed_param_roundtrip() {
        let p = ParamDef::typed("grid", Type::array(Type::real(), "N"));
        let e = p.to_expr();
        match &e.kind {
            ExprKind::Param(q) => {
                assert_eq!(q.name, "grid");
                assert!(q.ty.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn zip_rejects_single_input() {
        let p = ParamDef::typed("a", Type::array(Type::f32(), "N"));
        zip(vec![p.to_expr()]);
    }

    #[test]
    fn builders_construct_expected_kinds() {
        let p = ParamDef::typed("a", Type::array(Type::f32(), 8usize));
        let e = map_glb(p.to_expr(), "x", |x| x);
        assert!(matches!(e.kind, ExprKind::Map { kind: MapKind::Glb, .. }));
        let s = slide(3, 1, p.to_expr());
        assert!(matches!(s.kind, ExprKind::Slide { size: 3, step: 1, .. }));
    }
}

//! The low-level kernel AST ("k-ast").
//!
//! This is the target of [`crate::lower`]: a C-like representation of one
//! OpenCL kernel — loops, guards, indexed loads/stores, local declarations.
//! It plays the role OpenCL C source plays in real LIFT, but as a structured
//! AST so that it can be both pretty-printed as OpenCL C ([`crate::opencl`])
//! and *executed* by the `vgpu` virtual device. Hand-written baseline kernels
//! (the paper's tuned OpenCL comparators) are authored directly in this AST,
//! which makes generated-vs-hand-written comparisons apples-to-apples.
//!
//! Kernels may be precision-generic: scalar kinds may be
//! [`ScalarKind::Real`], resolved against a concrete precision when the
//! kernel is printed or executed.

use crate::scalar::{BinOp, Intrinsic, Lit, UnOp};
use crate::types::ScalarKind;
use std::fmt;

/// Where a kernel parameter's memory lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSpace {
    /// `__global` device memory.
    Global,
    /// `__constant` memory — cached/broadcast; the performance model treats
    /// loads from here as register-cost (used by the hand-tuned FI-MM kernel
    /// that hard-codes its β table, per §VII-B1 of the paper).
    Constant,
    /// Private (register) memory.
    Private,
}

/// One kernel parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelParam {
    /// Name in the generated source.
    pub name: String,
    /// Element kind (buffers) or value kind (scalars). May be `Real`.
    pub kind: ScalarKind,
    /// True for pointer (buffer) parameters, false for scalars such as grid
    /// dimensions or precomputed coefficients.
    pub is_buffer: bool,
    /// Address space of buffer parameters; ignored for scalars.
    pub space: MemSpace,
}

impl KernelParam {
    /// A `__global` buffer parameter.
    pub fn global_buf(name: impl Into<String>, kind: ScalarKind) -> Self {
        KernelParam { name: name.into(), kind, is_buffer: true, space: MemSpace::Global }
    }

    /// A `__constant` buffer parameter.
    pub fn constant_buf(name: impl Into<String>, kind: ScalarKind) -> Self {
        KernelParam { name: name.into(), kind, is_buffer: true, space: MemSpace::Constant }
    }

    /// A scalar (by-value) parameter.
    pub fn scalar(name: impl Into<String>, kind: ScalarKind) -> Self {
        KernelParam { name: name.into(), kind, is_buffer: false, space: MemSpace::Private }
    }
}

/// A reference to memory readable/writable from kernel code.
#[derive(Clone, Debug, PartialEq)]
pub enum MemRef {
    /// The i-th kernel parameter (must be a buffer).
    Param(usize),
    /// A private array declared with [`KStmt::DeclPrivArray`].
    Priv(String),
    /// A workgroup-shared array declared with [`KStmt::DeclLocalArray`].
    Local(String),
}

/// Kernel expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum KExpr {
    /// Literal (possibly precision-generic).
    Lit(Lit),
    /// A scalar variable: a kernel scalar parameter, a declared local, or a
    /// loop variable.
    Var(String),
    /// `get_global_id(dim)`.
    GlobalId(u8),
    /// `get_global_size(dim)`.
    GlobalSize(u8),
    /// `get_local_id(dim)`.
    LocalId(u8),
    /// `get_local_size(dim)`.
    LocalSize(u8),
    /// `get_group_id(dim)`.
    GroupId(u8),
    /// Indexed load.
    Load {
        /// Source memory.
        mem: MemRef,
        /// Element index.
        idx: Box<KExpr>,
    },
    /// Binary operation.
    Bin(BinOp, Box<KExpr>, Box<KExpr>),
    /// Unary operation.
    Un(UnOp, Box<KExpr>),
    /// `cond ? a : b`.
    Select(Box<KExpr>, Box<KExpr>, Box<KExpr>),
    /// Math intrinsic call.
    Call(Intrinsic, Vec<KExpr>),
    /// C cast.
    Cast(ScalarKind, Box<KExpr>),
}

impl KExpr {
    /// i32 literal.
    pub fn int(v: i32) -> KExpr {
        KExpr::Lit(Lit::i32(v))
    }

    /// Precision-generic float literal.
    pub fn real(v: f64) -> KExpr {
        KExpr::Lit(Lit::real(v))
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> KExpr {
        KExpr::Var(name.into())
    }

    /// Indexed load.
    pub fn load(mem: MemRef, idx: KExpr) -> KExpr {
        KExpr::Load { mem, idx: Box::new(idx) }
    }

    /// Binary op helper.
    pub fn bin(op: BinOp, a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Ternary select helper.
    pub fn select(c: KExpr, t: KExpr, f: KExpr) -> KExpr {
        KExpr::Select(Box::new(c), Box::new(t), Box::new(f))
    }

    /// Cast helper.
    pub fn cast(kind: ScalarKind, e: KExpr) -> KExpr {
        KExpr::Cast(kind, Box::new(e))
    }

    /// Converts a symbolic size/index expression into kernel code. Variables
    /// become [`KExpr::Var`]s, which must be bound as scalar kernel
    /// parameters or loop variables.
    pub fn from_arith(a: &crate::arith::ArithExpr) -> KExpr {
        use crate::arith::ArithExpr as A;
        match a {
            A::Cst(v) => KExpr::int(*v as i32),
            A::Var(n) => KExpr::var(&**n),
            A::Sum(ts) => {
                let mut it = ts.iter();
                let first = KExpr::from_arith(it.next().expect("non-empty sum"));
                it.fold(first, |acc, t| KExpr::bin(BinOp::Add, acc, KExpr::from_arith(t)))
            }
            A::Prod(fs) => {
                let mut it = fs.iter();
                let first = KExpr::from_arith(it.next().expect("non-empty product"));
                it.fold(first, |acc, t| KExpr::bin(BinOp::Mul, acc, KExpr::from_arith(t)))
            }
            A::Div(x, y) => KExpr::bin(BinOp::Div, KExpr::from_arith(x), KExpr::from_arith(y)),
            A::Mod(x, y) => KExpr::bin(BinOp::Rem, KExpr::from_arith(x), KExpr::from_arith(y)),
            A::Min(x, y) => {
                KExpr::Call(Intrinsic::Min, vec![KExpr::from_arith(x), KExpr::from_arith(y)])
            }
            A::Max(x, y) => {
                KExpr::Call(Intrinsic::Max, vec![KExpr::from_arith(x), KExpr::from_arith(y)])
            }
        }
    }
}

// Operator sugar for building hand-written kernels compactly.
impl std::ops::Add for KExpr {
    type Output = KExpr;
    fn add(self, rhs: KExpr) -> KExpr {
        KExpr::bin(BinOp::Add, self, rhs)
    }
}
impl std::ops::Sub for KExpr {
    type Output = KExpr;
    fn sub(self, rhs: KExpr) -> KExpr {
        KExpr::bin(BinOp::Sub, self, rhs)
    }
}
impl std::ops::Mul for KExpr {
    type Output = KExpr;
    fn mul(self, rhs: KExpr) -> KExpr {
        KExpr::bin(BinOp::Mul, self, rhs)
    }
}
impl std::ops::Div for KExpr {
    type Output = KExpr;
    fn div(self, rhs: KExpr) -> KExpr {
        KExpr::bin(BinOp::Div, self, rhs)
    }
}
impl std::ops::Neg for KExpr {
    type Output = KExpr;
    fn neg(self) -> KExpr {
        KExpr::Un(UnOp::Neg, Box::new(self))
    }
}

/// Kernel statements.
#[derive(Clone, Debug, PartialEq)]
pub enum KStmt {
    /// `kind name = init;`
    DeclScalar {
        /// Variable name.
        name: String,
        /// Kind (may be `Real`).
        kind: ScalarKind,
        /// Optional initialiser.
        init: Option<KExpr>,
    },
    /// `kind name[len];` in private memory.
    DeclPrivArray {
        /// Array name.
        name: String,
        /// Element kind.
        kind: ScalarKind,
        /// Length (must evaluate to a launch-time constant).
        len: KExpr,
    },
    /// `__local kind name[len];` — one allocation shared by the workgroup.
    DeclLocalArray {
        /// Array name.
        name: String,
        /// Element kind.
        kind: ScalarKind,
        /// Length (launch-time constant per group).
        len: KExpr,
    },
    /// `barrier(CLK_LOCAL_MEM_FENCE);` — all work-items of the group reach
    /// this point before any proceeds. Only valid at the top statement
    /// level of a kernel (the interpreter executes groups in barrier-split
    /// phases).
    Barrier,
    /// `name = value;` for a declared scalar.
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: KExpr,
    },
    /// `mem[idx] = value;`
    Store {
        /// Destination memory.
        mem: MemRef,
        /// Element index.
        idx: KExpr,
        /// Stored value.
        value: KExpr,
    },
    /// `for (int var = begin; var < end; var += step) { body }`
    For {
        /// Loop variable (i32).
        var: String,
        /// Inclusive start.
        begin: KExpr,
        /// Exclusive end.
        end: KExpr,
        /// Increment.
        step: KExpr,
        /// Body.
        body: Vec<KStmt>,
    },
    /// `if (cond) { then_ } else { else_ }`
    If {
        /// Condition.
        cond: KExpr,
        /// Then branch.
        then_: Vec<KStmt>,
        /// Else branch (may be empty).
        else_: Vec<KStmt>,
    },
    /// Early exit from this work-item.
    Return,
    /// Source comment (also shown by the emitter; no-op at run time).
    Comment(String),
}

impl KStmt {
    /// Guard idiom: `if (cond) return;`
    pub fn return_if(cond: KExpr) -> KStmt {
        KStmt::If { cond, then_: vec![KStmt::Return], else_: vec![] }
    }
}

/// A complete kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    /// Kernel (function) name.
    pub name: String,
    /// Parameters, in call order.
    pub params: Vec<KernelParam>,
    /// Body statements.
    pub body: Vec<KStmt>,
    /// NDRange dimensionality (1–3).
    pub work_dim: u8,
}

impl Kernel {
    /// Index of the parameter with the given name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Returns a copy with all `Real` scalar kinds resolved to `real`.
    pub fn resolve_real(&self, real: ScalarKind) -> Kernel {
        fn rx(e: &KExpr, real: ScalarKind) -> KExpr {
            match e {
                KExpr::Lit(l) => {
                    KExpr::Lit(Lit { value: l.value, kind: l.kind.resolve_real(real) })
                }
                KExpr::Var(_)
                | KExpr::GlobalId(_)
                | KExpr::GlobalSize(_)
                | KExpr::LocalId(_)
                | KExpr::LocalSize(_)
                | KExpr::GroupId(_) => e.clone(),
                KExpr::Load { mem, idx } => {
                    KExpr::Load { mem: mem.clone(), idx: Box::new(rx(idx, real)) }
                }
                KExpr::Bin(op, a, b) => KExpr::bin(*op, rx(a, real), rx(b, real)),
                KExpr::Un(op, a) => KExpr::Un(*op, Box::new(rx(a, real))),
                KExpr::Select(c, t, f) => KExpr::select(rx(c, real), rx(t, real), rx(f, real)),
                KExpr::Call(i, args) => KExpr::Call(*i, args.iter().map(|a| rx(a, real)).collect()),
                KExpr::Cast(k, a) => KExpr::Cast(k.resolve_real(real), Box::new(rx(a, real))),
            }
        }
        fn rs(s: &KStmt, real: ScalarKind) -> KStmt {
            match s {
                KStmt::DeclScalar { name, kind, init } => KStmt::DeclScalar {
                    name: name.clone(),
                    kind: kind.resolve_real(real),
                    init: init.as_ref().map(|e| rx(e, real)),
                },
                KStmt::DeclPrivArray { name, kind, len } => KStmt::DeclPrivArray {
                    name: name.clone(),
                    kind: kind.resolve_real(real),
                    len: rx(len, real),
                },
                KStmt::DeclLocalArray { name, kind, len } => KStmt::DeclLocalArray {
                    name: name.clone(),
                    kind: kind.resolve_real(real),
                    len: rx(len, real),
                },
                KStmt::Barrier => KStmt::Barrier,
                KStmt::Assign { name, value } => {
                    KStmt::Assign { name: name.clone(), value: rx(value, real) }
                }
                KStmt::Store { mem, idx, value } => {
                    KStmt::Store { mem: mem.clone(), idx: rx(idx, real), value: rx(value, real) }
                }
                KStmt::For { var, begin, end, step, body } => KStmt::For {
                    var: var.clone(),
                    begin: rx(begin, real),
                    end: rx(end, real),
                    step: rx(step, real),
                    body: body.iter().map(|s| rs(s, real)).collect(),
                },
                KStmt::If { cond, then_, else_ } => KStmt::If {
                    cond: rx(cond, real),
                    then_: then_.iter().map(|s| rs(s, real)).collect(),
                    else_: else_.iter().map(|s| rs(s, real)).collect(),
                },
                KStmt::Return => KStmt::Return,
                KStmt::Comment(c) => KStmt::Comment(c.clone()),
            }
        }
        Kernel {
            name: self.name.clone(),
            params: self
                .params
                .iter()
                .map(|p| KernelParam { kind: p.kind.resolve_real(real), ..p.clone() })
                .collect(),
            body: self.body.iter().map(|s| rs(s, real)).collect(),
            work_dim: self.work_dim,
        }
    }

    /// Returns a copy in which every `get_global_id(dim)` is replaced by
    /// `get_global_id(dim) + offset`, renamed with `suffix` appended.
    ///
    /// This is the slab-placement rewrite for domain sharding: a kernel
    /// written against global grid coordinates is re-targeted to a
    /// sub-grid whose work-items start `offset` planes into the local
    /// allocation (e.g. one halo plane below the first owned plane). The
    /// substitution is uniform — guards comparing `get_global_id(dim)`
    /// against a size scalar shift with it, so callers must bind that
    /// scalar to the *local* extent (owned planes + halo).
    pub fn shift_gid(&self, dim: u8, offset: i32, suffix: &str) -> Kernel {
        fn sx(e: &KExpr, dim: u8, offset: i32) -> KExpr {
            match e {
                KExpr::GlobalId(d) if *d == dim => {
                    KExpr::bin(BinOp::Add, KExpr::GlobalId(dim), KExpr::int(offset))
                }
                KExpr::Lit(_)
                | KExpr::Var(_)
                | KExpr::GlobalId(_)
                | KExpr::GlobalSize(_)
                | KExpr::LocalId(_)
                | KExpr::LocalSize(_)
                | KExpr::GroupId(_) => e.clone(),
                KExpr::Load { mem, idx } => {
                    KExpr::Load { mem: mem.clone(), idx: Box::new(sx(idx, dim, offset)) }
                }
                KExpr::Bin(op, a, b) => KExpr::bin(*op, sx(a, dim, offset), sx(b, dim, offset)),
                KExpr::Un(op, a) => KExpr::Un(*op, Box::new(sx(a, dim, offset))),
                KExpr::Select(c, t, f) => {
                    KExpr::select(sx(c, dim, offset), sx(t, dim, offset), sx(f, dim, offset))
                }
                KExpr::Call(i, args) => {
                    KExpr::Call(*i, args.iter().map(|a| sx(a, dim, offset)).collect())
                }
                KExpr::Cast(k, a) => KExpr::Cast(*k, Box::new(sx(a, dim, offset))),
            }
        }
        fn ss(s: &KStmt, dim: u8, offset: i32) -> KStmt {
            match s {
                KStmt::DeclScalar { name, kind, init } => KStmt::DeclScalar {
                    name: name.clone(),
                    kind: *kind,
                    init: init.as_ref().map(|e| sx(e, dim, offset)),
                },
                KStmt::DeclPrivArray { name, kind, len } => KStmt::DeclPrivArray {
                    name: name.clone(),
                    kind: *kind,
                    len: sx(len, dim, offset),
                },
                KStmt::DeclLocalArray { name, kind, len } => KStmt::DeclLocalArray {
                    name: name.clone(),
                    kind: *kind,
                    len: sx(len, dim, offset),
                },
                KStmt::Barrier => KStmt::Barrier,
                KStmt::Assign { name, value } => {
                    KStmt::Assign { name: name.clone(), value: sx(value, dim, offset) }
                }
                KStmt::Store { mem, idx, value } => KStmt::Store {
                    mem: mem.clone(),
                    idx: sx(idx, dim, offset),
                    value: sx(value, dim, offset),
                },
                KStmt::For { var, begin, end, step, body } => KStmt::For {
                    var: var.clone(),
                    begin: sx(begin, dim, offset),
                    end: sx(end, dim, offset),
                    step: sx(step, dim, offset),
                    body: body.iter().map(|s| ss(s, dim, offset)).collect(),
                },
                KStmt::If { cond, then_, else_ } => KStmt::If {
                    cond: sx(cond, dim, offset),
                    then_: then_.iter().map(|s| ss(s, dim, offset)).collect(),
                    else_: else_.iter().map(|s| ss(s, dim, offset)).collect(),
                },
                KStmt::Return => KStmt::Return,
                KStmt::Comment(c) => KStmt::Comment(c.clone()),
            }
        }
        Kernel {
            name: format!("{}{suffix}", self.name),
            params: self.params.clone(),
            body: self.body.iter().map(|s| ss(s, dim, offset)).collect(),
            work_dim: self.work_dim,
        }
    }
}

impl fmt::Display for Kernel {
    /// Debug display: name, arity and work dimension. Full source comes from
    /// [`crate::opencl::emit_kernel`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel {}({} params, {}D)", self.name, self.params.len(), self.work_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ArithExpr;

    #[test]
    fn from_arith_builds_equivalent_tree() {
        let a = (ArithExpr::var("z") * ArithExpr::var("Nx")) + ArithExpr::var("x");
        let k = KExpr::from_arith(&a);
        match k {
            KExpr::Bin(BinOp::Add, _, _) => {}
            other => panic!("expected add at root, got {other:?}"),
        }
    }

    #[test]
    fn resolve_real_rewrites_decls_and_lits() {
        let k = Kernel {
            name: "t".into(),
            params: vec![KernelParam::global_buf("a", ScalarKind::Real)],
            body: vec![KStmt::DeclScalar {
                name: "x".into(),
                kind: ScalarKind::Real,
                init: Some(KExpr::real(1.0)),
            }],
            work_dim: 1,
        };
        let r = k.resolve_real(ScalarKind::F64);
        assert_eq!(r.params[0].kind, ScalarKind::F64);
        match &r.body[0] {
            KStmt::DeclScalar { kind, init: Some(KExpr::Lit(l)), .. } => {
                assert_eq!(*kind, ScalarKind::F64);
                assert_eq!(l.kind, ScalarKind::F64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn param_index_finds_by_name() {
        let k = Kernel {
            name: "t".into(),
            params: vec![
                KernelParam::global_buf("a", ScalarKind::F32),
                KernelParam::scalar("n", ScalarKind::I32),
            ],
            body: vec![],
            work_dim: 1,
        };
        assert_eq!(k.param_index("n"), Some(1));
        assert_eq!(k.param_index("zz"), None);
    }

    #[test]
    fn shift_gid_rewrites_only_target_dim() {
        let k = Kernel {
            name: "t".into(),
            params: vec![KernelParam::global_buf("a", ScalarKind::F32)],
            body: vec![KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::GlobalId(2) * KExpr::int(4) + KExpr::GlobalId(0),
                value: KExpr::real(0.0),
            }],
            work_dim: 3,
        };
        let s = k.shift_gid(2, 1, "_slab");
        assert_eq!(s.name, "t_slab");
        let KStmt::Store { idx, .. } = &s.body[0] else { panic!() };
        // gid2 occurrences become (gid2 + 1); gid0 is untouched.
        let shifted = KExpr::bin(BinOp::Add, KExpr::GlobalId(2), KExpr::int(1)) * KExpr::int(4)
            + KExpr::GlobalId(0);
        assert_eq!(*idx, shifted);
    }

    #[test]
    fn return_if_shape() {
        let s = KStmt::return_if(KExpr::int(1));
        match s {
            KStmt::If { then_, else_, .. } => {
                assert_eq!(then_, vec![KStmt::Return]);
                assert!(else_.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Memory allocation planning (§III-A of the paper).
//!
//! In LIFT, the memory allocator walks the IR and assigns an output buffer
//! to every pattern that materialises data. The paper's `WriteTo` primitive
//! *overrides* this: the output view of the wrapped expression is re-routed
//! to existing memory, so no buffer is allocated. This module decides, for a
//! kernel body, whether a fresh output buffer is required, and validates the
//! allocation-related invariants of the new primitives:
//!
//! * a `Concat` whose parts include `Skip`s with *runtime* lengths has no
//!   statically-known layout and therefore **must** be consumed by a
//!   `WriteTo` (Table I / §IV-B);
//! * a map element consisting solely of `WriteTo`s (possibly tupled) is pure
//!   side-effect and allocates nothing.

use crate::ir::{ExprKind, ExprRef};
use crate::typecheck::Typed;
use crate::types::Type;
use std::fmt;

/// Allocation decision for a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputPlan {
    /// Allocate a fresh output buffer of the given type; the top-level map
    /// stores elements into it.
    Alloc(Type),
    /// The body routes all writes through `WriteTo`; no output buffer.
    InPlace,
}

/// Error from allocation planning.
#[derive(Debug, Clone)]
pub struct MemError(pub String);

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory allocation error: {}", self.0)
    }
}

impl std::error::Error for MemError {}

/// Strips `Let` wrappers (they don't affect what the element produces).
fn strip_lets(e: &ExprRef) -> &ExprRef {
    match &e.kind {
        ExprKind::Let { body, .. } => strip_lets(body),
        _ => e,
    }
}

/// True when a map-element expression is pure side-effect: a `WriteTo`, or a
/// tuple whose components are all side-effecting.
pub fn is_side_effecting(e: &ExprRef) -> bool {
    match &strip_lets(e).kind {
        ExprKind::WriteTo { .. } => true,
        ExprKind::Tuple(parts) => !parts.is_empty() && parts.iter().all(is_side_effecting),
        _ => false,
    }
}

/// True if the expression contains a `Skip` whose length is not a
/// compile-time literal (i.e. the dynamic in-place idiom).
pub fn has_dynamic_skip(e: &ExprRef) -> bool {
    fn is_dynamic_len(l: &ExprRef) -> bool {
        !matches!(l.kind, ExprKind::Literal(_))
    }
    match &e.kind {
        ExprKind::Skip { len, .. } => is_dynamic_len(len),
        ExprKind::Concat(parts) => parts.iter().any(has_dynamic_skip),
        ExprKind::Let { value, body, .. } => has_dynamic_skip(value) || has_dynamic_skip(body),
        _ => false,
    }
}

/// Validates the WriteTo/Concat invariants inside a map element and decides
/// whether the kernel needs an allocated output.
///
/// `element` is the body of the top-level map's lambda; `element_ty` its
/// type; `map_result_ty` the type of the whole map.
pub fn plan_output(
    element: &ExprRef,
    map_result_ty: &Type,
    typed: &Typed,
) -> Result<OutputPlan, MemError> {
    validate(element, typed, false)?;
    if is_side_effecting(element) {
        Ok(OutputPlan::InPlace)
    } else {
        Ok(OutputPlan::Alloc(map_result_ty.clone()))
    }
}

/// Recursive invariant check: `under_writeto` tracks whether the current
/// expression's output has been re-routed.
#[allow(clippy::only_used_in_recursion)]
fn validate(e: &ExprRef, typed: &Typed, under_writeto: bool) -> Result<(), MemError> {
    match &e.kind {
        ExprKind::WriteTo { value, dest } => {
            // Destinations must be memory-denoting; a full check happens at
            // view construction, but catch obvious misuse early.
            if matches!(dest.kind, ExprKind::Literal(_) | ExprKind::Iota { .. }) {
                return Err(MemError("WriteTo destination does not denote memory".into()));
            }
            validate(value, typed, true)
        }
        ExprKind::Concat(parts) => {
            if has_dynamic_skip(e) && !under_writeto {
                return Err(MemError(
                    "Concat containing a runtime-length Skip must be wrapped in WriteTo \
                     (its output cannot be allocated)"
                        .into(),
                ));
            }
            for p in parts {
                validate(p, typed, under_writeto)?;
            }
            Ok(())
        }
        ExprKind::Skip { .. } => {
            if !under_writeto {
                return Err(MemError("Skip outside of a WriteTo-consumed Concat".into()));
            }
            Ok(())
        }
        ExprKind::Let { value, body, .. } => {
            validate(value, typed, false)?;
            validate(body, typed, under_writeto)
        }
        ExprKind::Tuple(parts) => {
            for p in parts {
                validate(p, typed, under_writeto)?;
            }
            Ok(())
        }
        ExprKind::Map { f, input, .. }
        | ExprKind::Map2 { f, input, .. }
        | ExprKind::Map3 { f, input, .. } => {
            validate(input, typed, false)?;
            validate(&f.body, typed, under_writeto)
        }
        ExprKind::ReduceSeq { f, init, input } => {
            validate(init, typed, false)?;
            validate(input, typed, false)?;
            validate(&f.body, typed, false)
        }
        ExprKind::ToPrivate(inner) | ExprKind::ToLocal(inner) | ExprKind::Join { input: inner } => {
            validate(inner, typed, false)
        }
        ExprKind::ArrayCons { elem, .. } => validate(elem, typed, under_writeto),
        ExprKind::Call { args, .. } => {
            for a in args {
                validate(a, typed, false)?;
            }
            Ok(())
        }
        ExprKind::Get { tuple, .. } => validate(tuple, typed, false),
        ExprKind::At { array, index } => {
            validate(array, typed, false)?;
            validate(index, typed, false)
        }
        ExprKind::Slice { array, start, .. } => {
            validate(array, typed, false)?;
            validate(start, typed, false)
        }
        ExprKind::Zip(parts) | ExprKind::Zip2(parts) | ExprKind::Zip3(parts) => {
            for p in parts {
                validate(p, typed, false)?;
            }
            Ok(())
        }
        ExprKind::Slide { input, .. }
        | ExprKind::Slide2 { input, .. }
        | ExprKind::Slide3 { input, .. }
        | ExprKind::Pad { input, .. }
        | ExprKind::Pad2 { input, .. }
        | ExprKind::Pad3 { input, .. }
        | ExprKind::Crop3 { input, .. }
        | ExprKind::Split { input, .. } => validate(input, typed, false),
        ExprKind::Param(_)
        | ExprKind::Literal(_)
        | ExprKind::Iota { .. }
        | ExprKind::SizeVal(_) => Ok(()),
    }
}

/// Fresh-name generator for temporaries and private arrays.
#[derive(Debug, Default)]
pub struct NameGen {
    counter: u64,
}

impl NameGen {
    /// New generator starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh name with the given prefix (`v0`, `v1`, … per prefix-free
    /// counter — names never collide because the counter is shared).
    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{prefix}_{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funs;
    use crate::ir::*;
    use crate::scalar::Lit;
    use crate::typecheck::check;
    use crate::types::Type;

    #[test]
    fn side_effect_detection() {
        let next = ParamDef::typed("next", Type::array(Type::real(), "N"));
        let w = write_to(next.to_expr(), next.to_expr());
        assert!(is_side_effecting(&w));
        let t = tuple(vec![
            write_to(next.to_expr(), next.to_expr()),
            write_to(next.to_expr(), next.to_expr()),
        ]);
        assert!(is_side_effecting(&t));
        assert!(!is_side_effecting(&next.to_expr()));
    }

    #[test]
    fn dynamic_skip_needs_writeto() {
        let next = ParamDef::typed("next", Type::array(Type::real(), "N"));
        let i = ParamDef::typed("i", Type::i32());
        let c = concat(vec![
            skip(i.to_expr(), Type::real()),
            array_cons(at(next.to_expr(), i.to_expr()), 1usize),
        ]);
        let typed = check(&c).unwrap();
        assert!(plan_output(&c, typed.of(&c), &typed).is_err());

        let w = write_to(next.to_expr(), c);
        let typed = check(&w).unwrap();
        let plan = plan_output(&w, typed.of(&w), &typed).unwrap();
        assert_eq!(plan, OutputPlan::InPlace);
    }

    #[test]
    fn value_elements_allocate() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let body = call(&funs::add(), vec![a.to_expr().pipe_at(0), lit(Lit::real(1.0))]);
        let typed = check(&body).unwrap();
        let plan = plan_output(&body, typed.of(&body), &typed).unwrap();
        assert!(matches!(plan, OutputPlan::Alloc(_)));
    }

    // Small helper for readability in tests.
    trait PipeAt {
        fn pipe_at(self, i: i32) -> ExprRef;
    }
    impl PipeAt for ExprRef {
        fn pipe_at(self, i: i32) -> ExprRef {
            at(self, lit(Lit::i32(i)))
        }
    }

    #[test]
    fn namegen_unique() {
        let mut g = NameGen::new();
        let a = g.fresh("t");
        let b = g.fresh("t");
        assert_ne!(a, b);
    }
}

//! Symbolic integer arithmetic for array sizes and index expressions.
//!
//! LIFT tracks the length of every array and the index of every access as a
//! symbolic expression over named variables (grid dimensions, loop counters,
//! work-item ids). Views (see [`crate::view`]) collapse chains of data-layout
//! patterns into a single [`ArithExpr`] per memory access; the code generator
//! then prints that expression into the kernel, and the `vgpu` interpreter
//! evaluates it per work-item.
//!
//! The representation is a small normalising term algebra: n-ary sums and
//! products are flattened, constants folded, and identities removed by the
//! smart constructors. This is deliberately *not* a full computer-algebra
//! system — it only needs to keep index expressions compact and to prove the
//! simple equalities the allocator relies on (e.g. `N * 1 == N`).

use std::collections::BTreeMap;
use std::fmt;
// `Arc`, not `Rc`: expressions travel inside `verify::Assumptions` values
// held by process-wide launch-contract registries, so the shared nodes must
// be `Send + Sync`. They are immutable either way; only clone cost differs.
use std::sync::Arc as Rc;

/// A symbolic integer expression.
///
/// Construct via the smart constructors ([`ArithExpr::add`], [`ArithExpr::mul`],
/// …) or the `std::ops` impls, which normalise as they build. `Cst`, `Var`
/// and the composite nodes are immutable and cheaply clonable (shared
/// pointers inside composite nodes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum ArithExpr {
    /// Integer constant.
    Cst(i64),
    /// Named symbolic variable (e.g. a grid dimension `Nx` or a loop index).
    Var(Rc<str>),
    /// Flattened n-ary sum. Invariant: ≥ 2 operands, at most one constant
    /// (kept last), no nested `Sum`.
    Sum(Rc<Vec<ArithExpr>>),
    /// Flattened n-ary product. Same invariants as `Sum`.
    Prod(Rc<Vec<ArithExpr>>),
    /// Truncating integer division `a / b` (C semantics, non-negative use).
    Div(Rc<ArithExpr>, Rc<ArithExpr>),
    /// Remainder `a % b`.
    Mod(Rc<ArithExpr>, Rc<ArithExpr>),
    /// Minimum of two expressions.
    Min(Rc<ArithExpr>, Rc<ArithExpr>),
    /// Maximum of two expressions.
    Max(Rc<ArithExpr>, Rc<ArithExpr>),
}

impl ArithExpr {
    /// Constant zero.
    pub fn zero() -> Self {
        ArithExpr::Cst(0)
    }

    /// Constant one.
    pub fn one() -> Self {
        ArithExpr::Cst(1)
    }

    /// A named variable.
    pub fn var(name: impl Into<String>) -> Self {
        ArithExpr::Var(Rc::from(name.into().as_str()))
    }

    /// Integer constant.
    pub fn cst(v: i64) -> Self {
        ArithExpr::Cst(v)
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_cst(&self) -> Option<i64> {
        match self {
            ArithExpr::Cst(v) => Some(*v),
            _ => None,
        }
    }

    /// Normalising sum of `terms`.
    pub fn add(terms: Vec<ArithExpr>) -> Self {
        let mut flat = Vec::with_capacity(terms.len());
        let mut k = 0i64;
        for t in terms {
            match t {
                ArithExpr::Cst(c) => k += c,
                ArithExpr::Sum(ts) => {
                    for t in ts.iter() {
                        match t {
                            ArithExpr::Cst(c) => k += c,
                            other => flat.push(other.clone()),
                        }
                    }
                }
                other => flat.push(other),
            }
        }
        Self::collect_like_terms(&mut flat);
        if k != 0 {
            flat.push(ArithExpr::Cst(k));
        }
        match flat.len() {
            0 => ArithExpr::Cst(0),
            1 => flat.pop().unwrap(),
            _ => ArithExpr::Sum(Rc::new(flat)),
        }
    }

    /// Collects `x + x` into `2*x` (and generally sums coefficients of
    /// syntactically identical non-constant terms).
    fn collect_like_terms(flat: &mut Vec<ArithExpr>) {
        // Split each term into (coefficient, core) where `core` is the term
        // with any leading constant factor removed.
        fn split(t: &ArithExpr) -> (i64, ArithExpr) {
            if let ArithExpr::Prod(fs) = t {
                if let Some(ArithExpr::Cst(c)) = fs.last() {
                    let rest: Vec<_> = fs[..fs.len() - 1].to_vec();
                    let core = match rest.len() {
                        0 => ArithExpr::Cst(1),
                        1 => rest.into_iter().next().unwrap(),
                        _ => ArithExpr::Prod(Rc::new(rest)),
                    };
                    return (*c, core);
                }
            }
            (1, t.clone())
        }
        let mut groups: Vec<(ArithExpr, i64)> = Vec::new();
        for t in flat.drain(..) {
            let (c, core) = split(&t);
            if let Some(g) = groups.iter_mut().find(|(k, _)| *k == core) {
                g.1 += c;
            } else {
                groups.push((core, c));
            }
        }
        for (core, c) in groups {
            if c == 0 {
                continue;
            }
            if c == 1 {
                flat.push(core);
            } else {
                flat.push(ArithExpr::mul(vec![core, ArithExpr::Cst(c)]));
            }
        }
    }

    /// Normalising product of `factors`.
    pub fn mul(factors: Vec<ArithExpr>) -> Self {
        let mut flat = Vec::with_capacity(factors.len());
        let mut k = 1i64;
        for f in factors {
            match f {
                ArithExpr::Cst(c) => k *= c,
                ArithExpr::Prod(fs) => {
                    for f in fs.iter() {
                        match f {
                            ArithExpr::Cst(c) => k *= c,
                            other => flat.push(other.clone()),
                        }
                    }
                }
                other => flat.push(other),
            }
        }
        if k == 0 {
            return ArithExpr::Cst(0);
        }
        // Distribute a constant factor over a single sum: `(a + b) * k`
        // becomes `a*k + b*k`. This keeps subtraction cancellation exact
        // (`x - x = 0` for sum-valued `x`), which the allocator and the view
        // offset algebra rely on.
        if flat.len() == 1 && k != 1 {
            if let ArithExpr::Sum(ts) = &flat[0] {
                return ArithExpr::add(
                    ts.iter().map(|t| ArithExpr::mul(vec![t.clone(), ArithExpr::Cst(k)])).collect(),
                );
            }
        }
        if k != 1 {
            flat.push(ArithExpr::Cst(k));
        }
        match flat.len() {
            0 => ArithExpr::Cst(1),
            1 => flat.pop().unwrap(),
            _ => ArithExpr::Prod(Rc::new(flat)),
        }
    }

    /// Truncating division, folding constants and `x / 1`.
    /// (A static constructor, not a candidate for `std::ops::Div`.)
    #[allow(clippy::should_implement_trait)]
    pub fn div(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) if *y != 0 => ArithExpr::Cst(x / y),
            (_, ArithExpr::Cst(1)) => a,
            (x, y) if x == y => ArithExpr::Cst(1),
            _ => ArithExpr::Div(Rc::new(a), Rc::new(b)),
        }
    }

    /// Remainder, folding constants, `x % 1` and `0 % x`.
    /// (A static constructor, not a candidate for `std::ops::Rem`.)
    #[allow(clippy::should_implement_trait)]
    pub fn rem(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) if *y != 0 => ArithExpr::Cst(x % y),
            (_, ArithExpr::Cst(1)) => ArithExpr::Cst(0),
            (ArithExpr::Cst(0), _) => ArithExpr::Cst(0),
            (x, y) if x == y => ArithExpr::Cst(0),
            _ => ArithExpr::Mod(Rc::new(a), Rc::new(b)),
        }
    }

    /// Minimum, folding constants and `min(x, x)`.
    pub fn min(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) => ArithExpr::Cst((*x).min(*y)),
            (x, y) if x == y => a,
            _ => ArithExpr::Min(Rc::new(a), Rc::new(b)),
        }
    }

    /// Maximum, folding constants and `max(x, x)`.
    pub fn max(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) => ArithExpr::Cst((*x).max(*y)),
            (x, y) if x == y => a,
            _ => ArithExpr::Max(Rc::new(a), Rc::new(b)),
        }
    }

    /// Substitutes `name := value` throughout, re-normalising.
    pub fn subst(&self, name: &str, value: &ArithExpr) -> ArithExpr {
        match self {
            ArithExpr::Cst(_) => self.clone(),
            ArithExpr::Var(n) => {
                if &**n == name {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            ArithExpr::Sum(ts) => ArithExpr::add(ts.iter().map(|t| t.subst(name, value)).collect()),
            ArithExpr::Prod(fs) => {
                ArithExpr::mul(fs.iter().map(|f| f.subst(name, value)).collect())
            }
            ArithExpr::Div(a, b) => ArithExpr::div(a.subst(name, value), b.subst(name, value)),
            ArithExpr::Mod(a, b) => ArithExpr::rem(a.subst(name, value), b.subst(name, value)),
            ArithExpr::Min(a, b) => ArithExpr::min(a.subst(name, value), b.subst(name, value)),
            ArithExpr::Max(a, b) => ArithExpr::max(a.subst(name, value), b.subst(name, value)),
        }
    }

    /// Applies all bindings in `env` (a parallel substitution done
    /// sequentially; fine because bindings never reference each other here).
    pub fn subst_all(&self, env: &BTreeMap<String, ArithExpr>) -> ArithExpr {
        let mut e = self.clone();
        for (k, v) in env {
            e = e.subst(k, v);
        }
        e
    }

    /// Evaluates under `env`; errors on an unbound variable or division by
    /// zero.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> Result<i64, ArithError> {
        match self {
            ArithExpr::Cst(v) => Ok(*v),
            ArithExpr::Var(n) => env(n).ok_or_else(|| ArithError::Unbound(n.to_string())),
            ArithExpr::Sum(ts) => {
                let mut acc = 0i64;
                for t in ts.iter() {
                    acc += t.eval(env)?;
                }
                Ok(acc)
            }
            ArithExpr::Prod(fs) => {
                let mut acc = 1i64;
                for f in fs.iter() {
                    acc *= f.eval(env)?;
                }
                Ok(acc)
            }
            ArithExpr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(ArithError::DivByZero);
                }
                Ok(a.eval(env)? / d)
            }
            ArithExpr::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(ArithError::DivByZero);
                }
                Ok(a.eval(env)? % d)
            }
            ArithExpr::Min(a, b) => Ok(a.eval(env)?.min(b.eval(env)?)),
            ArithExpr::Max(a, b) => Ok(a.eval(env)?.max(b.eval(env)?)),
        }
    }

    /// Evaluates with a map environment.
    pub fn eval_map(&self, env: &BTreeMap<String, i64>) -> Result<i64, ArithError> {
        self.eval(&|n| env.get(n).copied())
    }

    /// Collects free variable names into `out` (deduplicated, sorted).
    pub fn free_vars(&self) -> Vec<String> {
        fn go(e: &ArithExpr, out: &mut Vec<String>) {
            match e {
                ArithExpr::Cst(_) => {}
                ArithExpr::Var(n) => {
                    if !out.iter().any(|x| x == &**n) {
                        out.push(n.to_string());
                    }
                }
                ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                    for t in ts.iter() {
                        go(t, out);
                    }
                }
                ArithExpr::Div(a, b)
                | ArithExpr::Mod(a, b)
                | ArithExpr::Min(a, b)
                | ArithExpr::Max(a, b) => {
                    go(a, out);
                    go(b, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out.sort();
        out
    }

    /// True if the expression contains no variables.
    pub fn is_const(&self) -> bool {
        self.as_cst().is_some() || self.free_vars().is_empty()
    }
}

// ---- range reasoning ----
//
// The static kernel verifier (`crate::verify`) needs to answer questions of
// the form "is this index expression provably within `[0, len)` for every
// work-item?". The machinery below is a small sound-but-incomplete interval
// calculus over `ArithExpr`:
//
// * [`SymRange`] — an inclusive interval whose endpoints are themselves
//   symbolic expressions (`gid0 ∈ [1, Nx-2]`).
// * [`RangeEnv`] — per-variable interval facts plus equality defines
//   (`S := MB·numB`), with a proof oracle `prove_nonneg` built on the
//   normalising term algebra: to show `e ≥ 0` under `v ≥ lo_v`, shift every
//   bounded variable by its lower bound (`v := v + lo_v`) and check that the
//   normal form is a sum of products of (now non-negative) variables with
//   non-negative coefficients. This proves e.g. `Nx·Ny·Nz − 1 ≥ 0` from
//   `Nx,Ny,Nz ≥ 1` without any numeric enumeration.
// * [`RangeEnv::range_of`] — bottom-up interval evaluation with the rules
//   the bounds checker relies on: monotonicity of affine maps with
//   provably non-negative coefficients, `(x mod n) ∈ [0, n-1]` for
//   `x ≥ 0, n ≥ 1`, division by positive divisors, and `min`/`max`
//   propagation.
//
// Everything here treats expressions as exact integers; the verifier
// documents the (paper-scale) assumption that kernel index arithmetic does
// not overflow `i32`.

/// An inclusive symbolic interval `[lo, hi]`; `None` means unbounded on
/// that side.
#[derive(Clone, PartialEq, Eq)]
pub struct SymRange {
    /// Inclusive lower bound (`None` = −∞).
    pub lo: Option<ArithExpr>,
    /// Inclusive upper bound (`None` = +∞).
    pub hi: Option<ArithExpr>,
}

impl SymRange {
    /// The unbounded interval.
    pub fn full() -> Self {
        SymRange { lo: None, hi: None }
    }

    /// An interval with both endpoints.
    pub fn new(lo: ArithExpr, hi: ArithExpr) -> Self {
        SymRange { lo: Some(lo), hi: Some(hi) }
    }

    /// The single-point interval `[e, e]`.
    pub fn point(e: ArithExpr) -> Self {
        SymRange { lo: Some(e.clone()), hi: Some(e) }
    }

    /// A constant interval `[a, b]`.
    pub fn cst(a: i64, b: i64) -> Self {
        SymRange::new(ArithExpr::Cst(a), ArithExpr::Cst(b))
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: ArithExpr) -> Self {
        SymRange { lo: Some(lo), hi: None }
    }

    /// The endpoint both bounds share, if this is a syntactic point
    /// interval.
    pub fn as_point(&self) -> Option<&ArithExpr> {
        match (&self.lo, &self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => write!(f, "(-inf, ")?,
        }
        match &self.hi {
            Some(h) => write!(f, "{h}]"),
            None => write!(f, "+inf)"),
        }
    }
}

impl fmt::Debug for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Recursion fuel for the proof oracle; the structural `min`/`max` cases
/// branch, and index expressions are tiny, so a small bound suffices.
const PROVE_DEPTH: u32 = 16;

/// Interval facts and equality defines for symbolic variables, with a
/// sound-but-incomplete proof oracle over them.
#[derive(Clone, Default)]
pub struct RangeEnv {
    ranges: BTreeMap<String, SymRange>,
    defines: BTreeMap<String, ArithExpr>,
}

impl RangeEnv {
    /// An empty environment (every variable unbounded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an interval fact for `name` (replacing any previous fact).
    pub fn set_range(&mut self, name: impl Into<String>, r: SymRange) {
        self.ranges.insert(name.into(), r);
    }

    /// The recorded interval for `name` (unbounded when unknown).
    pub fn var_range(&self, name: &str) -> SymRange {
        self.ranges.get(name).cloned().unwrap_or_else(SymRange::full)
    }

    /// Names of all variables with a recorded interval fact.
    pub fn bounded_vars(&self) -> Vec<String> {
        self.ranges.keys().cloned().collect()
    }

    /// Records the equality `name == value`, substituted into every
    /// expression before proving (e.g. `S := MB·numB` relates a flat state
    /// buffer's length to its stride factors).
    pub fn define(&mut self, name: impl Into<String>, value: ArithExpr) {
        self.defines.insert(name.into(), value);
    }

    /// Applies the equality defines to `e`.
    pub fn resolve(&self, e: &ArithExpr) -> ArithExpr {
        if self.defines.is_empty() {
            e.clone()
        } else {
            e.subst_all(&self.defines)
        }
    }

    /// Tries to prove `e ≥ 0` under the recorded facts. `false` means
    /// "could not prove", never "false".
    pub fn prove_nonneg(&self, e: &ArithExpr) -> bool {
        self.nonneg(&self.resolve(e), PROVE_DEPTH)
    }

    /// Tries to prove `e ≥ 1`.
    pub fn prove_pos(&self, e: &ArithExpr) -> bool {
        self.prove_nonneg(&(e.clone() - ArithExpr::one()))
    }

    /// Tries to prove `a ≤ b`, descending structurally through `min`/`max`
    /// endpoints.
    pub fn prove_le(&self, a: &ArithExpr, b: &ArithExpr) -> bool {
        self.le(&self.resolve(a), &self.resolve(b), PROVE_DEPTH)
    }

    /// Tries to prove `a < b` (integers: `a + 1 ≤ b`).
    pub fn prove_lt(&self, a: &ArithExpr, b: &ArithExpr) -> bool {
        self.prove_le(&(a.clone() + ArithExpr::one()), b)
    }

    /// Tries to prove `a == b` (by cancellation in the normal form, or by
    /// `≤` both ways).
    pub fn prove_eq(&self, a: &ArithExpr, b: &ArithExpr) -> bool {
        let d = self.resolve(a) - self.resolve(b);
        d == ArithExpr::Cst(0) || (self.prove_le(a, b) && self.prove_le(b, a))
    }

    fn le(&self, a: &ArithExpr, b: &ArithExpr, fuel: u32) -> bool {
        if fuel == 0 {
            return false;
        }
        if self.nonneg(&(b.clone() - a.clone()), fuel) {
            return true;
        }
        // min(x, y) ≤ b if either arm is; max needs both (and dually on
        // the right-hand side).
        match a {
            ArithExpr::Min(x, y) if self.le(x, b, fuel - 1) || self.le(y, b, fuel - 1) => {
                return true;
            }
            ArithExpr::Max(x, y) if self.le(x, b, fuel - 1) && self.le(y, b, fuel - 1) => {
                return true;
            }
            // For x ≥ 0, y ≥ 1: both `x / y` and `x mod y` are ≤ x, and
            // `x mod y` is ≤ y − 1.
            ArithExpr::Div(x, y)
                if self.nonneg(x, fuel - 1)
                    && self.nonneg(&((**y).clone() - ArithExpr::one()), fuel - 1)
                    && self.le(x, b, fuel - 1) =>
            {
                return true;
            }
            ArithExpr::Mod(x, y)
                if self.nonneg(x, fuel - 1)
                    && self.nonneg(&((**y).clone() - ArithExpr::one()), fuel - 1)
                    && (self.le(x, b, fuel - 1)
                        || self.le(&((**y).clone() - ArithExpr::one()), b, fuel - 1)) =>
            {
                return true;
            }
            _ => {}
        }
        match b {
            ArithExpr::Min(x, y) => self.le(a, x, fuel - 1) && self.le(a, y, fuel - 1),
            ArithExpr::Max(x, y) => self.le(a, x, fuel - 1) || self.le(a, y, fuel - 1),
            _ => false,
        }
    }

    fn nonneg(&self, e: &ArithExpr, fuel: u32) -> bool {
        if fuel == 0 {
            return false;
        }
        match e {
            ArithExpr::Cst(c) => return *c >= 0,
            ArithExpr::Min(a, b) => return self.nonneg(a, fuel - 1) && self.nonneg(b, fuel - 1),
            ArithExpr::Max(a, b) => return self.nonneg(a, fuel - 1) || self.nonneg(b, fuel - 1),
            // C semantics: for `a ≥ 0` and `b ≥ 1` both quotient and
            // remainder are non-negative.
            ArithExpr::Div(a, b) | ArithExpr::Mod(a, b) => {
                return self.nonneg(a, fuel - 1)
                    && self.nonneg(&((**b).clone() - ArithExpr::one()), fuel - 1)
            }
            _ => {}
        }
        // Rewrite each bounded variable so that the symbol left behind is
        // itself non-negative: a variable occurring with a negative
        // coefficient is replaced through its upper bound (`v := hi − v`,
        // the slack `hi − v_orig ≥ 0`), otherwise through its lower bound
        // (`v := v + lo`). Products are expanded over sums first so like
        // terms cancel (`(Nz−1)·Nx·Ny + (Ny−1)·Nx + (Nx−1)` collapses
        // against `Nx·Ny·Nz − 1`). After the rewrites, a sum of products of
        // justified-non-negative symbols with non-negative coefficients is
        // manifestly non-negative.
        let mut shifted = expand(e);
        let mut applied: Vec<String> = Vec::new();
        while let Some((v, use_hi)) = self.pick_subst(&shifted, &applied) {
            let r = &self.ranges[&v];
            let repl = if use_hi {
                r.hi.clone().expect("picked with hi") - ArithExpr::var(v.as_str())
            } else {
                ArithExpr::var(v.as_str()) + r.lo.clone().expect("picked with lo")
            };
            shifted = expand(&shifted.subst(&v, &repl));
            applied.push(v);
        }
        let justified = |n: &str| -> bool {
            applied.iter().any(|a| a == n)
                || matches!(
                    self.ranges.get(n).and_then(|r| r.lo.as_ref()),
                    Some(ArithExpr::Cst(c)) if *c >= 0
                )
        };
        fn term_ok(t: &ArithExpr, justified: &dyn Fn(&str) -> bool) -> bool {
            match t {
                ArithExpr::Cst(c) => *c >= 0,
                ArithExpr::Var(n) => justified(n),
                ArithExpr::Prod(fs) => fs.iter().all(|f| term_ok(f, justified)),
                ArithExpr::Sum(ts) => ts.iter().all(|f| term_ok(f, justified)),
                ArithExpr::Min(a, b) => term_ok(a, justified) && term_ok(b, justified),
                ArithExpr::Max(a, b) => term_ok(a, justified) || term_ok(b, justified),
                _ => false,
            }
        }
        match &shifted {
            ArithExpr::Sum(ts) => ts.iter().all(|t| term_ok(t, &justified)),
            other => term_ok(other, &justified),
        }
    }

    /// Chooses the next variable to rewrite in the non-negativity check:
    /// `(name, true)` for an upper-bound substitution, `(name, false)` for
    /// a lower-bound shift. `None` when no further rewrite applies.
    fn pick_subst(&self, e: &ArithExpr, applied: &[String]) -> Option<(String, bool)> {
        let terms: Vec<&ArithExpr> = match e {
            ArithExpr::Sum(ts) => ts.iter().collect(),
            other => vec![other],
        };
        fn coeff(t: &ArithExpr) -> i64 {
            match t {
                ArithExpr::Cst(c) => *c,
                ArithExpr::Prod(fs) => match fs.last() {
                    Some(ArithExpr::Cst(c)) => *c,
                    _ => 1,
                },
                _ => 1,
            }
        }
        for v in e.free_vars() {
            if applied.contains(&v) {
                continue;
            }
            let Some(r) = self.ranges.get(&v) else { continue };
            let neg = terms.iter().any(|t| coeff(t) < 0 && t.free_vars().contains(&v));
            if neg {
                if let Some(hi) = &r.hi {
                    if !hi.free_vars().contains(&v) {
                        return Some((v, true));
                    }
                }
            }
            if let Some(lo) = &r.lo {
                if lo != &ArithExpr::Cst(0) && !lo.free_vars().contains(&v) {
                    return Some((v, false));
                }
            }
        }
        None
    }

    /// The smaller of `a` and `b` when provable, else a symbolic
    /// [`ArithExpr::min`].
    pub fn min_of(&self, a: &ArithExpr, b: &ArithExpr) -> ArithExpr {
        if self.prove_le(a, b) {
            a.clone()
        } else if self.prove_le(b, a) {
            b.clone()
        } else {
            ArithExpr::min(a.clone(), b.clone())
        }
    }

    /// The larger of `a` and `b` when provable, else a symbolic
    /// [`ArithExpr::max`].
    pub fn max_of(&self, a: &ArithExpr, b: &ArithExpr) -> ArithExpr {
        if self.prove_le(a, b) {
            b.clone()
        } else if self.prove_le(b, a) {
            a.clone()
        } else {
            ArithExpr::max(a.clone(), b.clone())
        }
    }

    /// Intersection of two intervals (the conjunction of both facts).
    pub fn intersect(&self, a: &SymRange, b: &SymRange) -> SymRange {
        let lo = match (&a.lo, &b.lo) {
            (Some(x), Some(y)) => Some(self.max_of(x, y)),
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (None, None) => None,
        };
        let hi = match (&a.hi, &b.hi) {
            (Some(x), Some(y)) => Some(self.min_of(x, y)),
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (None, None) => None,
        };
        SymRange { lo, hi }
    }

    /// Convex union of two intervals (the join of two control-flow paths).
    pub fn union_of(&self, a: &SymRange, b: &SymRange) -> SymRange {
        let lo = match (&a.lo, &b.lo) {
            (Some(x), Some(y)) => Some(self.min_of(x, y)),
            _ => None,
        };
        let hi = match (&a.hi, &b.hi) {
            (Some(x), Some(y)) => Some(self.max_of(x, y)),
            _ => None,
        };
        SymRange { lo, hi }
    }

    fn mul_range(&self, a: &SymRange, b: &SymRange) -> SymRange {
        // A constant factor scales the interval directly (sign decides the
        // orientation).
        if let Some(ArithExpr::Cst(c)) = b.as_point() {
            let c = *c;
            let scale = |e: &ArithExpr| e.clone() * ArithExpr::Cst(c);
            return if c >= 0 {
                SymRange { lo: a.lo.as_ref().map(scale), hi: a.hi.as_ref().map(scale) }
            } else {
                SymRange { lo: a.hi.as_ref().map(scale), hi: a.lo.as_ref().map(scale) }
            };
        }
        if let Some(ArithExpr::Cst(_)) = a.as_point() {
            return self.mul_range(b, a);
        }
        // Both factors provably non-negative: the product is monotone in
        // each, so the endpoints multiply.
        let nonneg = |r: &SymRange| r.lo.as_ref().is_some_and(|lo| self.prove_nonneg(lo));
        if nonneg(a) && nonneg(b) {
            let lo = Some(a.lo.clone().unwrap() * b.lo.clone().unwrap());
            let hi = match (&a.hi, &b.hi) {
                (Some(x), Some(y)) => Some(x.clone() * y.clone()),
                _ => None,
            };
            return SymRange { lo, hi };
        }
        SymRange::full()
    }

    /// Bottom-up interval evaluation of `e` under the recorded facts.
    pub fn range_of(&self, e: &ArithExpr) -> SymRange {
        self.range_rec(&self.resolve(e))
    }

    fn range_rec(&self, e: &ArithExpr) -> SymRange {
        match e {
            ArithExpr::Cst(_) => SymRange::point(e.clone()),
            // A variable with a two-sided recorded range is *eliminated*
            // (replaced by its bounds — how work-item ids disappear from
            // index intervals); any other variable is kept exact as the
            // point `[v, v]`. One-sided facts (`Nx ≥ 1`) still feed the
            // proof oracle without widening interval evaluation.
            ArithExpr::Var(n) => match self.ranges.get(&**n) {
                Some(r) if r.lo.is_some() && r.hi.is_some() => r.clone(),
                _ => SymRange::point(e.clone()),
            },
            ArithExpr::Sum(ts) => {
                let mut lo = Some(ArithExpr::Cst(0));
                let mut hi = Some(ArithExpr::Cst(0));
                for t in ts.iter() {
                    let r = self.range_rec(t);
                    lo = match (lo, r.lo) {
                        (Some(a), Some(b)) => Some(a + b),
                        _ => None,
                    };
                    hi = match (hi, r.hi) {
                        (Some(a), Some(b)) => Some(a + b),
                        _ => None,
                    };
                }
                SymRange { lo, hi }
            }
            ArithExpr::Prod(fs) => {
                let mut acc = SymRange::point(ArithExpr::Cst(1));
                for f in fs.iter() {
                    acc = self.mul_range(&acc, &self.range_rec(f));
                }
                acc
            }
            ArithExpr::Div(a, b) => {
                let (ra, rb) = (self.range_rec(a), self.range_rec(b));
                let a_nonneg = ra.lo.as_ref().is_some_and(|lo| self.prove_nonneg(lo));
                let b_pos = rb.lo.as_ref().is_some_and(|lo| self.prove_pos(lo));
                if a_nonneg && b_pos {
                    // Monotone up in the dividend, down in the divisor.
                    let lo = match &rb.hi {
                        Some(bh) => ArithExpr::div(ra.lo.clone().unwrap(), bh.clone()),
                        None => ArithExpr::Cst(0),
                    };
                    let hi = ra.hi.map(|ah| ArithExpr::div(ah, rb.lo.clone().unwrap()));
                    SymRange { lo: Some(lo), hi }
                } else {
                    SymRange::full()
                }
            }
            ArithExpr::Mod(a, b) => {
                let (ra, rb) = (self.range_rec(a), self.range_rec(b));
                let a_nonneg = ra.lo.as_ref().is_some_and(|lo| self.prove_nonneg(lo));
                let b_pos = rb.lo.as_ref().is_some_and(|lo| self.prove_pos(lo));
                if a_nonneg && b_pos {
                    // `(x mod n) ∈ [0, n-1]`, and never above `x` itself.
                    let hi = match (&rb.hi, &ra.hi) {
                        (Some(bh), Some(ah)) => {
                            Some(self.min_of(&(bh.clone() - ArithExpr::one()), ah))
                        }
                        (Some(bh), None) => Some(bh.clone() - ArithExpr::one()),
                        (None, Some(ah)) => Some(ah.clone()),
                        (None, None) => None,
                    };
                    SymRange { lo: Some(ArithExpr::Cst(0)), hi }
                } else {
                    SymRange::full()
                }
            }
            ArithExpr::Min(a, b) => {
                let (ra, rb) = (self.range_rec(a), self.range_rec(b));
                let lo = match (&ra.lo, &rb.lo) {
                    (Some(x), Some(y)) => Some(self.min_of(x, y)),
                    _ => None,
                };
                let hi = match (&ra.hi, &rb.hi) {
                    (Some(x), Some(y)) => Some(self.min_of(x, y)),
                    (Some(x), None) | (None, Some(x)) => Some(x.clone()),
                    (None, None) => None,
                };
                SymRange { lo, hi }
            }
            ArithExpr::Max(a, b) => {
                let (ra, rb) = (self.range_rec(a), self.range_rec(b));
                let lo = match (&ra.lo, &rb.lo) {
                    (Some(x), Some(y)) => Some(self.max_of(x, y)),
                    (Some(x), None) | (None, Some(x)) => Some(x.clone()),
                    (None, None) => None,
                };
                let hi = match (&ra.hi, &rb.hi) {
                    (Some(x), Some(y)) => Some(self.max_of(x, y)),
                    _ => None,
                };
                SymRange { lo, hi }
            }
        }
    }
}

/// Fully distributes products over sums (recursively), so that the
/// normalising `add` can cancel like terms across polynomial identities.
/// `Div`/`Mod`/`Min`/`Max` stay opaque (their operands are expanded).
pub fn expand(e: &ArithExpr) -> ArithExpr {
    match e {
        ArithExpr::Cst(_) | ArithExpr::Var(_) => e.clone(),
        ArithExpr::Sum(ts) => ArithExpr::add(ts.iter().map(expand).collect()),
        ArithExpr::Prod(fs) => {
            // Cross-multiply the terms of every (expanded) factor.
            let mut acc: Vec<ArithExpr> = vec![ArithExpr::Cst(1)];
            for f in fs.iter() {
                let ef = expand(f);
                let terms: Vec<ArithExpr> = match ef {
                    ArithExpr::Sum(ts) => ts.to_vec(),
                    other => vec![other],
                };
                let mut next = Vec::with_capacity(acc.len() * terms.len());
                for a in &acc {
                    for t in &terms {
                        next.push(ArithExpr::mul(vec![a.clone(), t.clone()]));
                    }
                }
                acc = next;
            }
            // Canonically order each product's factors so `add` can merge
            // like terms regardless of how the products were built
            // (`Nz·Nx·Ny` must cancel against `Nx·Ny·Nz`).
            let acc = acc
                .into_iter()
                .map(|t| {
                    if let ArithExpr::Prod(fs) = &t {
                        let mut fs = fs.to_vec();
                        fs.sort_by_key(|f| (f.is_const(), format!("{f}")));
                        ArithExpr::Prod(Rc::new(fs))
                    } else {
                        t
                    }
                })
                .collect();
            ArithExpr::add(acc)
        }
        ArithExpr::Div(a, b) => ArithExpr::div(expand(a), expand(b)),
        ArithExpr::Mod(a, b) => ArithExpr::rem(expand(a), expand(b)),
        ArithExpr::Min(a, b) => ArithExpr::min(expand(a), expand(b)),
        ArithExpr::Max(a, b) => ArithExpr::max(expand(a), expand(b)),
    }
}

/// Errors from [`ArithExpr::eval`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithError {
    /// A variable had no binding in the evaluation environment.
    Unbound(String),
    /// Division or remainder by zero.
    DivByZero,
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::Unbound(n) => write!(f, "unbound arithmetic variable `{n}`"),
            ArithError::DivByZero => write!(f, "division by zero in size/index expression"),
        }
    }
}

impl std::error::Error for ArithError {}

impl fmt::Debug for ArithExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ArithExpr {
    /// Prints as a C expression (parenthesised conservatively).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithExpr::Cst(v) => write!(f, "{v}"),
            ArithExpr::Var(n) => write!(f, "{n}"),
            ArithExpr::Sum(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            ArithExpr::Prod(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            ArithExpr::Div(a, b) => write!(f, "({a} / {b})"),
            ArithExpr::Mod(a, b) => write!(f, "({a} % {b})"),
            ArithExpr::Min(a, b) => write!(f, "min({a}, {b})"),
            ArithExpr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

impl From<i64> for ArithExpr {
    fn from(v: i64) -> Self {
        ArithExpr::Cst(v)
    }
}

impl From<usize> for ArithExpr {
    fn from(v: usize) -> Self {
        ArithExpr::Cst(v as i64)
    }
}

impl From<&str> for ArithExpr {
    fn from(v: &str) -> Self {
        ArithExpr::var(v)
    }
}

impl std::ops::Add for ArithExpr {
    type Output = ArithExpr;
    fn add(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::add(vec![self, rhs])
    }
}

impl std::ops::Sub for ArithExpr {
    type Output = ArithExpr;
    fn sub(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::add(vec![self, ArithExpr::mul(vec![rhs, ArithExpr::Cst(-1)])])
    }
}

impl std::ops::Mul for ArithExpr {
    type Output = ArithExpr;
    fn mul(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::mul(vec![self, rhs])
    }
}

impl std::ops::Div for ArithExpr {
    type Output = ArithExpr;
    fn div(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::div(self, rhs)
    }
}

impl std::ops::Rem for ArithExpr {
    type Output = ArithExpr;
    fn rem(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::rem(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> ArithExpr {
        ArithExpr::var(n)
    }

    fn c(x: i64) -> ArithExpr {
        ArithExpr::cst(x)
    }

    #[test]
    fn constants_fold_in_sums() {
        let e = c(1) + c(2) + v("N") + c(3);
        assert_eq!(e, v("N") + c(6));
    }

    #[test]
    fn constants_fold_in_products() {
        let e = c(2) * v("N") * c(3);
        match &e {
            ArithExpr::Prod(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(fs.contains(&c(6)));
            }
            other => panic!("expected product, got {other}"),
        }
    }

    #[test]
    fn zero_annihilates_product() {
        assert_eq!(v("N") * c(0), c(0));
    }

    #[test]
    fn one_is_product_identity() {
        assert_eq!(v("N") * c(1), v("N"));
    }

    #[test]
    fn zero_is_sum_identity() {
        assert_eq!(v("N") + c(0), v("N"));
    }

    #[test]
    fn like_terms_collect() {
        let e = v("x") + v("x");
        assert_eq!(e, v("x") * c(2));
    }

    #[test]
    fn subtraction_cancels() {
        let e = v("x") + v("y") - v("x");
        assert_eq!(e, v("y"));
    }

    #[test]
    fn nested_sums_flatten() {
        let e = (v("a") + v("b")) + (v("c") + c(1));
        match &e {
            ArithExpr::Sum(ts) => assert_eq!(ts.len(), 4),
            other => panic!("expected sum, got {other}"),
        }
    }

    #[test]
    fn div_identities() {
        assert_eq!(ArithExpr::div(v("N"), c(1)), v("N"));
        assert_eq!(ArithExpr::div(v("N"), v("N")), c(1));
        assert_eq!(ArithExpr::div(c(7), c(2)), c(3));
    }

    #[test]
    fn mod_identities() {
        assert_eq!(ArithExpr::rem(v("N"), c(1)), c(0));
        assert_eq!(ArithExpr::rem(v("N"), v("N")), c(0));
        assert_eq!(ArithExpr::rem(c(7), c(2)), c(1));
    }

    #[test]
    fn eval_basic() {
        let e = (v("x") + c(2)) * v("y");
        let mut env = BTreeMap::new();
        env.insert("x".to_string(), 3);
        env.insert("y".to_string(), 5);
        assert_eq!(e.eval_map(&env), Ok(25));
    }

    #[test]
    fn eval_unbound_errors() {
        let e = v("zz");
        assert_eq!(e.eval_map(&BTreeMap::new()), Err(ArithError::Unbound("zz".into())));
    }

    #[test]
    fn eval_div_by_zero_errors() {
        let e = ArithExpr::Div(Rc::new(c(1)), Rc::new(c(0)));
        assert_eq!(e.eval_map(&BTreeMap::new()), Err(ArithError::DivByZero));
    }

    #[test]
    fn subst_renormalises() {
        let e = v("x") * v("y");
        assert_eq!(e.subst("x", &c(0)), c(0));
        assert_eq!(e.subst("y", &c(1)), v("x"));
    }

    #[test]
    fn subst_all_applies_every_binding() {
        let e = v("x") + v("y");
        let mut env = BTreeMap::new();
        env.insert("x".into(), c(1));
        env.insert("y".into(), c(2));
        assert_eq!(e.subst_all(&env), c(3));
    }

    #[test]
    fn free_vars_sorted_dedup() {
        let e = v("b") + v("a") * v("b");
        assert_eq!(e.free_vars(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn min_max_fold() {
        assert_eq!(ArithExpr::min(c(2), c(5)), c(2));
        assert_eq!(ArithExpr::max(c(2), c(5)), c(5));
        assert_eq!(ArithExpr::min(v("n"), v("n")), v("n"));
    }

    #[test]
    fn display_is_c_like() {
        let e = (v("z") * v("Nx") * v("Ny")) + v("x");
        let s = format!("{e}");
        assert!(s.contains("Nx"), "{s}");
        assert!(s.contains('+'), "{s}");
    }

    // ---- range reasoning ----

    fn grid_env() -> RangeEnv {
        let mut env = RangeEnv::new();
        for d in ["Nx", "Ny", "Nz"] {
            env.set_range(d, SymRange::at_least(c(1)));
        }
        env.set_range("gid0", SymRange::new(c(0), v("Nx") - c(1)));
        env.set_range("gid1", SymRange::new(c(0), v("Ny") - c(1)));
        env.set_range("gid2", SymRange::new(c(0), v("Nz") - c(1)));
        env
    }

    #[test]
    fn prove_nonneg_shifts_lower_bounds() {
        let env = grid_env();
        // Nx·Ny·Nz − 1 ≥ 0 given Nx,Ny,Nz ≥ 1.
        assert!(env.prove_nonneg(&(v("Nx") * v("Ny") * v("Nz") - c(1))));
        // Nx − 2 is not provable from Nx ≥ 1.
        assert!(!env.prove_nonneg(&(v("Nx") - c(2))));
        // gid0 ≥ 0 directly.
        assert!(env.prove_nonneg(&v("gid0")));
    }

    #[test]
    fn prove_le_handles_min_max() {
        let env = grid_env();
        let n1 = v("Nx") - c(1);
        assert!(env.prove_le(&ArithExpr::min(v("gid0"), c(3)), &c(3)));
        assert!(env.prove_le(&ArithExpr::max(v("gid0"), c(0)), &n1));
        assert!(env.prove_le(&v("gid0"), &ArithExpr::max(n1.clone(), c(7))));
        assert!(!env.prove_le(&ArithExpr::max(v("gid0"), v("Nx")), &n1));
    }

    #[test]
    fn range_of_linearized_index_is_in_bounds() {
        let env = grid_env();
        // The canonical row-major linearization of a 3-d grid index.
        let idx = v("gid2") * v("Nx") * v("Ny") + v("gid1") * v("Nx") + v("gid0");
        let r = env.range_of(&idx);
        assert_eq!(r.lo, Some(c(0)));
        // Telescoping upper bound: Nx·Ny·Nz − 1.
        let hi = r.hi.expect("bounded");
        assert!(env.prove_le(&hi, &(v("Nx") * v("Ny") * v("Nz") - c(1))), "hi = {hi}");
    }

    #[test]
    fn range_of_mod_rule() {
        let env = grid_env();
        let r = env.range_of(&(v("gid0") % v("Nx")));
        assert_eq!(r.lo, Some(c(0)));
        let hi = r.hi.expect("bounded");
        assert!(env.prove_le(&hi, &(v("Nx") - c(1))), "hi = {hi}");
        // Remainder by an unbounded-but-positive divisor is still capped by
        // the dividend.
        let mut env2 = RangeEnv::new();
        env2.set_range("x", SymRange::new(c(0), c(9)));
        env2.set_range("n", SymRange::at_least(c(1)));
        let r2 = env2.range_of(&(v("x") % v("n")));
        assert_eq!(r2.lo, Some(c(0)));
        // The cap stays symbolic (min(n-1, 9)) but is provably ≤ 9.
        assert!(env2.prove_le(r2.hi.as_ref().expect("bounded"), &c(9)));
    }

    #[test]
    fn range_of_div_rule() {
        let mut env = RangeEnv::new();
        env.set_range("x", SymRange::new(c(0), v("N") - c(1)));
        env.set_range("N", SymRange::at_least(c(1)));
        let r = env.range_of(&ArithExpr::div(v("x"), c(4)));
        assert_eq!(r.lo, Some(c(0)));
        let hi = r.hi.expect("bounded");
        assert!(env.prove_le(&hi, &(v("N") - c(1))), "hi = {hi}");
    }

    #[test]
    fn range_of_negative_coefficient_flips_bounds() {
        let env = grid_env();
        // Nx − 1 − gid0 ∈ [0, Nx − 1] (mirror index).
        let r = env.range_of(&(v("Nx") - c(1) - v("gid0")));
        assert!(env.prove_nonneg(r.lo.as_ref().expect("bounded")));
        assert!(env.prove_le(r.hi.as_ref().expect("bounded"), &(v("Nx") - c(1))));
    }

    #[test]
    fn defines_relate_aliased_sizes() {
        let mut env = RangeEnv::new();
        env.set_range("MB", SymRange::at_least(c(1)));
        env.set_range("numB", SymRange::at_least(c(1)));
        env.define("S", v("MB") * v("numB"));
        // S − numB ≥ 0 only via the define.
        assert!(env.prove_nonneg(&(v("S") - v("numB"))));
    }

    #[test]
    fn intersect_and_union() {
        let env = grid_env();
        let a = SymRange::cst(0, 10);
        let b = SymRange::new(c(2), v("Nx"));
        let i = env.intersect(&a, &b);
        assert_eq!(i.lo, Some(c(2)));
        let u = env.union_of(&a, &b);
        assert_eq!(u.lo, Some(c(0)));
    }

    #[test]
    fn min_max_resolution() {
        let env = grid_env();
        assert_eq!(env.min_of(&v("gid0"), &(v("Nx") + c(5))), v("gid0"));
        assert_eq!(env.max_of(&v("gid0"), &c(0)), v("gid0"));
        // Incomparable operands stay symbolic.
        let m = env.min_of(&v("gid0"), &v("gid1"));
        assert_eq!(m, ArithExpr::min(v("gid0"), v("gid1")));
    }
}

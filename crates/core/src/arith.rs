//! Symbolic integer arithmetic for array sizes and index expressions.
//!
//! LIFT tracks the length of every array and the index of every access as a
//! symbolic expression over named variables (grid dimensions, loop counters,
//! work-item ids). Views (see [`crate::view`]) collapse chains of data-layout
//! patterns into a single [`ArithExpr`] per memory access; the code generator
//! then prints that expression into the kernel, and the `vgpu` interpreter
//! evaluates it per work-item.
//!
//! The representation is a small normalising term algebra: n-ary sums and
//! products are flattened, constants folded, and identities removed by the
//! smart constructors. This is deliberately *not* a full computer-algebra
//! system — it only needs to keep index expressions compact and to prove the
//! simple equalities the allocator relies on (e.g. `N * 1 == N`).

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A symbolic integer expression.
///
/// Construct via the smart constructors ([`ArithExpr::add`], [`ArithExpr::mul`],
/// …) or the `std::ops` impls, which normalise as they build. `Cst`, `Var`
/// and the composite nodes are immutable and cheaply clonable (`Rc` inside
/// composite nodes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum ArithExpr {
    /// Integer constant.
    Cst(i64),
    /// Named symbolic variable (e.g. a grid dimension `Nx` or a loop index).
    Var(Rc<str>),
    /// Flattened n-ary sum. Invariant: ≥ 2 operands, at most one constant
    /// (kept last), no nested `Sum`.
    Sum(Rc<Vec<ArithExpr>>),
    /// Flattened n-ary product. Same invariants as `Sum`.
    Prod(Rc<Vec<ArithExpr>>),
    /// Truncating integer division `a / b` (C semantics, non-negative use).
    Div(Rc<ArithExpr>, Rc<ArithExpr>),
    /// Remainder `a % b`.
    Mod(Rc<ArithExpr>, Rc<ArithExpr>),
    /// Minimum of two expressions.
    Min(Rc<ArithExpr>, Rc<ArithExpr>),
    /// Maximum of two expressions.
    Max(Rc<ArithExpr>, Rc<ArithExpr>),
}

impl ArithExpr {
    /// Constant zero.
    pub fn zero() -> Self {
        ArithExpr::Cst(0)
    }

    /// Constant one.
    pub fn one() -> Self {
        ArithExpr::Cst(1)
    }

    /// A named variable.
    pub fn var(name: impl Into<String>) -> Self {
        ArithExpr::Var(Rc::from(name.into().as_str()))
    }

    /// Integer constant.
    pub fn cst(v: i64) -> Self {
        ArithExpr::Cst(v)
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_cst(&self) -> Option<i64> {
        match self {
            ArithExpr::Cst(v) => Some(*v),
            _ => None,
        }
    }

    /// Normalising sum of `terms`.
    pub fn add(terms: Vec<ArithExpr>) -> Self {
        let mut flat = Vec::with_capacity(terms.len());
        let mut k = 0i64;
        for t in terms {
            match t {
                ArithExpr::Cst(c) => k += c,
                ArithExpr::Sum(ts) => {
                    for t in ts.iter() {
                        match t {
                            ArithExpr::Cst(c) => k += c,
                            other => flat.push(other.clone()),
                        }
                    }
                }
                other => flat.push(other),
            }
        }
        Self::collect_like_terms(&mut flat);
        if k != 0 {
            flat.push(ArithExpr::Cst(k));
        }
        match flat.len() {
            0 => ArithExpr::Cst(0),
            1 => flat.pop().unwrap(),
            _ => ArithExpr::Sum(Rc::new(flat)),
        }
    }

    /// Collects `x + x` into `2*x` (and generally sums coefficients of
    /// syntactically identical non-constant terms).
    fn collect_like_terms(flat: &mut Vec<ArithExpr>) {
        // Split each term into (coefficient, core) where `core` is the term
        // with any leading constant factor removed.
        fn split(t: &ArithExpr) -> (i64, ArithExpr) {
            if let ArithExpr::Prod(fs) = t {
                if let Some(ArithExpr::Cst(c)) = fs.last() {
                    let rest: Vec<_> = fs[..fs.len() - 1].to_vec();
                    let core = match rest.len() {
                        0 => ArithExpr::Cst(1),
                        1 => rest.into_iter().next().unwrap(),
                        _ => ArithExpr::Prod(Rc::new(rest)),
                    };
                    return (*c, core);
                }
            }
            (1, t.clone())
        }
        let mut groups: Vec<(ArithExpr, i64)> = Vec::new();
        for t in flat.drain(..) {
            let (c, core) = split(&t);
            if let Some(g) = groups.iter_mut().find(|(k, _)| *k == core) {
                g.1 += c;
            } else {
                groups.push((core, c));
            }
        }
        for (core, c) in groups {
            if c == 0 {
                continue;
            }
            if c == 1 {
                flat.push(core);
            } else {
                flat.push(ArithExpr::mul(vec![core, ArithExpr::Cst(c)]));
            }
        }
    }

    /// Normalising product of `factors`.
    pub fn mul(factors: Vec<ArithExpr>) -> Self {
        let mut flat = Vec::with_capacity(factors.len());
        let mut k = 1i64;
        for f in factors {
            match f {
                ArithExpr::Cst(c) => k *= c,
                ArithExpr::Prod(fs) => {
                    for f in fs.iter() {
                        match f {
                            ArithExpr::Cst(c) => k *= c,
                            other => flat.push(other.clone()),
                        }
                    }
                }
                other => flat.push(other),
            }
        }
        if k == 0 {
            return ArithExpr::Cst(0);
        }
        // Distribute a constant factor over a single sum: `(a + b) * k`
        // becomes `a*k + b*k`. This keeps subtraction cancellation exact
        // (`x - x = 0` for sum-valued `x`), which the allocator and the view
        // offset algebra rely on.
        if flat.len() == 1 && k != 1 {
            if let ArithExpr::Sum(ts) = &flat[0] {
                return ArithExpr::add(
                    ts.iter().map(|t| ArithExpr::mul(vec![t.clone(), ArithExpr::Cst(k)])).collect(),
                );
            }
        }
        if k != 1 {
            flat.push(ArithExpr::Cst(k));
        }
        match flat.len() {
            0 => ArithExpr::Cst(1),
            1 => flat.pop().unwrap(),
            _ => ArithExpr::Prod(Rc::new(flat)),
        }
    }

    /// Truncating division, folding constants and `x / 1`.
    /// (A static constructor, not a candidate for `std::ops::Div`.)
    #[allow(clippy::should_implement_trait)]
    pub fn div(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) if *y != 0 => ArithExpr::Cst(x / y),
            (_, ArithExpr::Cst(1)) => a,
            (x, y) if x == y => ArithExpr::Cst(1),
            _ => ArithExpr::Div(Rc::new(a), Rc::new(b)),
        }
    }

    /// Remainder, folding constants, `x % 1` and `0 % x`.
    /// (A static constructor, not a candidate for `std::ops::Rem`.)
    #[allow(clippy::should_implement_trait)]
    pub fn rem(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) if *y != 0 => ArithExpr::Cst(x % y),
            (_, ArithExpr::Cst(1)) => ArithExpr::Cst(0),
            (ArithExpr::Cst(0), _) => ArithExpr::Cst(0),
            (x, y) if x == y => ArithExpr::Cst(0),
            _ => ArithExpr::Mod(Rc::new(a), Rc::new(b)),
        }
    }

    /// Minimum, folding constants and `min(x, x)`.
    pub fn min(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) => ArithExpr::Cst((*x).min(*y)),
            (x, y) if x == y => a,
            _ => ArithExpr::Min(Rc::new(a), Rc::new(b)),
        }
    }

    /// Maximum, folding constants and `max(x, x)`.
    pub fn max(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) => ArithExpr::Cst((*x).max(*y)),
            (x, y) if x == y => a,
            _ => ArithExpr::Max(Rc::new(a), Rc::new(b)),
        }
    }

    /// Substitutes `name := value` throughout, re-normalising.
    pub fn subst(&self, name: &str, value: &ArithExpr) -> ArithExpr {
        match self {
            ArithExpr::Cst(_) => self.clone(),
            ArithExpr::Var(n) => {
                if &**n == name {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            ArithExpr::Sum(ts) => ArithExpr::add(ts.iter().map(|t| t.subst(name, value)).collect()),
            ArithExpr::Prod(fs) => {
                ArithExpr::mul(fs.iter().map(|f| f.subst(name, value)).collect())
            }
            ArithExpr::Div(a, b) => ArithExpr::div(a.subst(name, value), b.subst(name, value)),
            ArithExpr::Mod(a, b) => ArithExpr::rem(a.subst(name, value), b.subst(name, value)),
            ArithExpr::Min(a, b) => ArithExpr::min(a.subst(name, value), b.subst(name, value)),
            ArithExpr::Max(a, b) => ArithExpr::max(a.subst(name, value), b.subst(name, value)),
        }
    }

    /// Applies all bindings in `env` (a parallel substitution done
    /// sequentially; fine because bindings never reference each other here).
    pub fn subst_all(&self, env: &BTreeMap<String, ArithExpr>) -> ArithExpr {
        let mut e = self.clone();
        for (k, v) in env {
            e = e.subst(k, v);
        }
        e
    }

    /// Evaluates under `env`; errors on an unbound variable or division by
    /// zero.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> Result<i64, ArithError> {
        match self {
            ArithExpr::Cst(v) => Ok(*v),
            ArithExpr::Var(n) => env(n).ok_or_else(|| ArithError::Unbound(n.to_string())),
            ArithExpr::Sum(ts) => {
                let mut acc = 0i64;
                for t in ts.iter() {
                    acc += t.eval(env)?;
                }
                Ok(acc)
            }
            ArithExpr::Prod(fs) => {
                let mut acc = 1i64;
                for f in fs.iter() {
                    acc *= f.eval(env)?;
                }
                Ok(acc)
            }
            ArithExpr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(ArithError::DivByZero);
                }
                Ok(a.eval(env)? / d)
            }
            ArithExpr::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(ArithError::DivByZero);
                }
                Ok(a.eval(env)? % d)
            }
            ArithExpr::Min(a, b) => Ok(a.eval(env)?.min(b.eval(env)?)),
            ArithExpr::Max(a, b) => Ok(a.eval(env)?.max(b.eval(env)?)),
        }
    }

    /// Evaluates with a map environment.
    pub fn eval_map(&self, env: &BTreeMap<String, i64>) -> Result<i64, ArithError> {
        self.eval(&|n| env.get(n).copied())
    }

    /// Collects free variable names into `out` (deduplicated, sorted).
    pub fn free_vars(&self) -> Vec<String> {
        fn go(e: &ArithExpr, out: &mut Vec<String>) {
            match e {
                ArithExpr::Cst(_) => {}
                ArithExpr::Var(n) => {
                    if !out.iter().any(|x| x == &**n) {
                        out.push(n.to_string());
                    }
                }
                ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                    for t in ts.iter() {
                        go(t, out);
                    }
                }
                ArithExpr::Div(a, b)
                | ArithExpr::Mod(a, b)
                | ArithExpr::Min(a, b)
                | ArithExpr::Max(a, b) => {
                    go(a, out);
                    go(b, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out.sort();
        out
    }

    /// True if the expression contains no variables.
    pub fn is_const(&self) -> bool {
        self.as_cst().is_some() || self.free_vars().is_empty()
    }
}

/// Errors from [`ArithExpr::eval`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithError {
    /// A variable had no binding in the evaluation environment.
    Unbound(String),
    /// Division or remainder by zero.
    DivByZero,
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::Unbound(n) => write!(f, "unbound arithmetic variable `{n}`"),
            ArithError::DivByZero => write!(f, "division by zero in size/index expression"),
        }
    }
}

impl std::error::Error for ArithError {}

impl fmt::Debug for ArithExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ArithExpr {
    /// Prints as a C expression (parenthesised conservatively).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithExpr::Cst(v) => write!(f, "{v}"),
            ArithExpr::Var(n) => write!(f, "{n}"),
            ArithExpr::Sum(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            ArithExpr::Prod(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            ArithExpr::Div(a, b) => write!(f, "({a} / {b})"),
            ArithExpr::Mod(a, b) => write!(f, "({a} % {b})"),
            ArithExpr::Min(a, b) => write!(f, "min({a}, {b})"),
            ArithExpr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

impl From<i64> for ArithExpr {
    fn from(v: i64) -> Self {
        ArithExpr::Cst(v)
    }
}

impl From<usize> for ArithExpr {
    fn from(v: usize) -> Self {
        ArithExpr::Cst(v as i64)
    }
}

impl From<&str> for ArithExpr {
    fn from(v: &str) -> Self {
        ArithExpr::var(v)
    }
}

impl std::ops::Add for ArithExpr {
    type Output = ArithExpr;
    fn add(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::add(vec![self, rhs])
    }
}

impl std::ops::Sub for ArithExpr {
    type Output = ArithExpr;
    fn sub(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::add(vec![self, ArithExpr::mul(vec![rhs, ArithExpr::Cst(-1)])])
    }
}

impl std::ops::Mul for ArithExpr {
    type Output = ArithExpr;
    fn mul(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::mul(vec![self, rhs])
    }
}

impl std::ops::Div for ArithExpr {
    type Output = ArithExpr;
    fn div(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::div(self, rhs)
    }
}

impl std::ops::Rem for ArithExpr {
    type Output = ArithExpr;
    fn rem(self, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::rem(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> ArithExpr {
        ArithExpr::var(n)
    }

    fn c(x: i64) -> ArithExpr {
        ArithExpr::cst(x)
    }

    #[test]
    fn constants_fold_in_sums() {
        let e = c(1) + c(2) + v("N") + c(3);
        assert_eq!(e, v("N") + c(6));
    }

    #[test]
    fn constants_fold_in_products() {
        let e = c(2) * v("N") * c(3);
        match &e {
            ArithExpr::Prod(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(fs.contains(&c(6)));
            }
            other => panic!("expected product, got {other}"),
        }
    }

    #[test]
    fn zero_annihilates_product() {
        assert_eq!(v("N") * c(0), c(0));
    }

    #[test]
    fn one_is_product_identity() {
        assert_eq!(v("N") * c(1), v("N"));
    }

    #[test]
    fn zero_is_sum_identity() {
        assert_eq!(v("N") + c(0), v("N"));
    }

    #[test]
    fn like_terms_collect() {
        let e = v("x") + v("x");
        assert_eq!(e, v("x") * c(2));
    }

    #[test]
    fn subtraction_cancels() {
        let e = v("x") + v("y") - v("x");
        assert_eq!(e, v("y"));
    }

    #[test]
    fn nested_sums_flatten() {
        let e = (v("a") + v("b")) + (v("c") + c(1));
        match &e {
            ArithExpr::Sum(ts) => assert_eq!(ts.len(), 4),
            other => panic!("expected sum, got {other}"),
        }
    }

    #[test]
    fn div_identities() {
        assert_eq!(ArithExpr::div(v("N"), c(1)), v("N"));
        assert_eq!(ArithExpr::div(v("N"), v("N")), c(1));
        assert_eq!(ArithExpr::div(c(7), c(2)), c(3));
    }

    #[test]
    fn mod_identities() {
        assert_eq!(ArithExpr::rem(v("N"), c(1)), c(0));
        assert_eq!(ArithExpr::rem(v("N"), v("N")), c(0));
        assert_eq!(ArithExpr::rem(c(7), c(2)), c(1));
    }

    #[test]
    fn eval_basic() {
        let e = (v("x") + c(2)) * v("y");
        let mut env = BTreeMap::new();
        env.insert("x".to_string(), 3);
        env.insert("y".to_string(), 5);
        assert_eq!(e.eval_map(&env), Ok(25));
    }

    #[test]
    fn eval_unbound_errors() {
        let e = v("zz");
        assert_eq!(e.eval_map(&BTreeMap::new()), Err(ArithError::Unbound("zz".into())));
    }

    #[test]
    fn eval_div_by_zero_errors() {
        let e = ArithExpr::Div(Rc::new(c(1)), Rc::new(c(0)));
        assert_eq!(e.eval_map(&BTreeMap::new()), Err(ArithError::DivByZero));
    }

    #[test]
    fn subst_renormalises() {
        let e = v("x") * v("y");
        assert_eq!(e.subst("x", &c(0)), c(0));
        assert_eq!(e.subst("y", &c(1)), v("x"));
    }

    #[test]
    fn subst_all_applies_every_binding() {
        let e = v("x") + v("y");
        let mut env = BTreeMap::new();
        env.insert("x".into(), c(1));
        env.insert("y".into(), c(2));
        assert_eq!(e.subst_all(&env), c(3));
    }

    #[test]
    fn free_vars_sorted_dedup() {
        let e = v("b") + v("a") * v("b");
        assert_eq!(e.free_vars(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn min_max_fold() {
        assert_eq!(ArithExpr::min(c(2), c(5)), c(2));
        assert_eq!(ArithExpr::max(c(2), c(5)), c(5));
        assert_eq!(ArithExpr::min(v("n"), v("n")), v("n"));
    }

    #[test]
    fn display_is_c_like() {
        let e = (v("z") * v("Nx") * v("Ny")) + v("x");
        let s = format!("{e}");
        assert!(s.contains("Nx"), "{s}");
        assert!(s.contains('+'), "{s}");
    }
}

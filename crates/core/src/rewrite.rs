//! Semantic-preserving rewrite rules (§III of the paper).
//!
//! LIFT optimises by rewriting one pattern program into another with the
//! same semantics — that is how a single high-level expression is lowered
//! and tuned for different hardware. This module implements the classic
//! structural rules on this IR:
//!
//! | rule | rewrite |
//! |---|---|
//! | map-fusion        | `map f (map g x)` → `map (f ∘ g) x` |
//! | map-id            | `map id x` → `x` |
//! | split-join        | `join (split n x)` → `x` |
//! | join-split        | `split n (join x)` → `x` (when the inner length is `n`) |
//! | pad-pad           | `pad l₁ r₁ (pad l₂ r₂ x)` → `pad (l₁+l₂) (r₁+r₂) x` (same kind) |
//! | crop-pad          | `crop3 m (pad3 m x)` → `x` |
//! | let-inline        | `let p = trivial in b` → `b[p := trivial]` |
//!
//! Rules are applied bottom-up to a fixpoint by [`optimize`]. Rewritten
//! trees contain fresh node ids, so all analysis passes re-run cleanly.
//! Equivalence is property-tested end-to-end in `tests/prop_rewrite.rs`
//! (original and rewritten programs are lowered and executed and must agree
//! exactly).

use crate::ir::{Expr, ExprKind, ExprRef, Lambda, ParamId};

/// Substitutes every reference to parameter `pid` in `e` with `rep`
/// (capture is impossible: parameter ids are globally unique).
pub fn subst_param(e: &ExprRef, pid: ParamId, rep: &ExprRef) -> ExprRef {
    let rebuild = |x: &ExprRef| subst_param(x, pid, rep);
    let kind = match &e.kind {
        ExprKind::Param(p) => {
            if p.id == pid {
                return rep.clone();
            }
            ExprKind::Param(p.clone())
        }
        ExprKind::Literal(l) => ExprKind::Literal(*l),
        ExprKind::SizeVal(a) => ExprKind::SizeVal(a.clone()),
        ExprKind::Iota { n } => ExprKind::Iota { n: n.clone() },
        ExprKind::Call { f, args } => {
            ExprKind::Call { f: f.clone(), args: args.iter().map(rebuild).collect() }
        }
        ExprKind::Tuple(parts) => ExprKind::Tuple(parts.iter().map(rebuild).collect()),
        ExprKind::Get { tuple, index } => ExprKind::Get { tuple: rebuild(tuple), index: *index },
        ExprKind::At { array, index } => {
            ExprKind::At { array: rebuild(array), index: rebuild(index) }
        }
        ExprKind::Slice { array, start, stride, len } => ExprKind::Slice {
            array: rebuild(array),
            start: rebuild(start),
            stride: stride.clone(),
            len: len.clone(),
        },
        ExprKind::Let { param, value, body } => {
            ExprKind::Let { param: param.clone(), value: rebuild(value), body: rebuild(body) }
        }
        ExprKind::Map { kind, f, input } => ExprKind::Map {
            kind: *kind,
            f: Lambda { params: f.params.clone(), body: rebuild(&f.body) },
            input: rebuild(input),
        },
        ExprKind::Map2 { kind, f, input } => ExprKind::Map2 {
            kind: *kind,
            f: Lambda { params: f.params.clone(), body: rebuild(&f.body) },
            input: rebuild(input),
        },
        ExprKind::Map3 { kind, f, input } => ExprKind::Map3 {
            kind: *kind,
            f: Lambda { params: f.params.clone(), body: rebuild(&f.body) },
            input: rebuild(input),
        },
        ExprKind::Zip(parts) => ExprKind::Zip(parts.iter().map(rebuild).collect()),
        ExprKind::Zip2(parts) => ExprKind::Zip2(parts.iter().map(rebuild).collect()),
        ExprKind::Zip3(parts) => ExprKind::Zip3(parts.iter().map(rebuild).collect()),
        ExprKind::Slide { size, step, input } => {
            ExprKind::Slide { size: *size, step: *step, input: rebuild(input) }
        }
        ExprKind::Slide2 { size, step, input } => {
            ExprKind::Slide2 { size: *size, step: *step, input: rebuild(input) }
        }
        ExprKind::Slide3 { size, step, input } => {
            ExprKind::Slide3 { size: *size, step: *step, input: rebuild(input) }
        }
        ExprKind::Pad { left, right, kind, input } => {
            ExprKind::Pad { left: *left, right: *right, kind: *kind, input: rebuild(input) }
        }
        ExprKind::Pad2 { amount, kind, input } => {
            ExprKind::Pad2 { amount: *amount, kind: *kind, input: rebuild(input) }
        }
        ExprKind::Pad3 { amount, kind, input } => {
            ExprKind::Pad3 { amount: *amount, kind: *kind, input: rebuild(input) }
        }
        ExprKind::Crop3 { margin, input } => {
            ExprKind::Crop3 { margin: *margin, input: rebuild(input) }
        }
        ExprKind::Split { chunk, input } => {
            ExprKind::Split { chunk: chunk.clone(), input: rebuild(input) }
        }
        ExprKind::Join { input } => ExprKind::Join { input: rebuild(input) },
        ExprKind::ReduceSeq { f, init, input } => ExprKind::ReduceSeq {
            f: Lambda { params: f.params.clone(), body: rebuild(&f.body) },
            init: rebuild(init),
            input: rebuild(input),
        },
        ExprKind::ToPrivate(x) => ExprKind::ToPrivate(rebuild(x)),
        ExprKind::ToLocal(x) => ExprKind::ToLocal(rebuild(x)),
        ExprKind::Concat(parts) => ExprKind::Concat(parts.iter().map(rebuild).collect()),
        ExprKind::Skip { len, elem } => ExprKind::Skip { len: rebuild(len), elem: elem.clone() },
        ExprKind::ArrayCons { elem, n } => {
            ExprKind::ArrayCons { elem: rebuild(elem), n: n.clone() }
        }
        ExprKind::WriteTo { dest, value } => {
            ExprKind::WriteTo { dest: rebuild(dest), value: rebuild(value) }
        }
    };
    Expr::new(kind)
}

/// True when `e` is safe to duplicate by let-inlining.
fn is_trivial(e: &ExprRef) -> bool {
    matches!(e.kind, ExprKind::Param(_) | ExprKind::Literal(_) | ExprKind::SizeVal(_))
}

/// One bottom-up rewrite pass; returns the (possibly unchanged) expression
/// and whether anything fired.
fn pass(e: &ExprRef) -> (ExprRef, bool) {
    // Rewrite children first.
    let (e, mut changed) = rebuild_children(e);
    // Then try root rules.
    let rewritten = match &e.kind {
        // map id x → x
        ExprKind::Map { f, input, .. } | ExprKind::Map3 { f, input, .. } => {
            let body_is_param =
                matches!(&f.body.kind, ExprKind::Param(p) if p.id == f.params[0].id);
            if body_is_param {
                Some(input.clone())
            } else if let ExprKind::Map { kind: inner_kind, f: g, input: y } = &input.kind {
                // map f (map g y) → map (f ∘ g) y — keep the *outer*
                // execution level; only fuse when the inner map is
                // sequential or the levels agree (a Glb map consumed by
                // another map must not silently lose its parallelism).
                let outer_kind = match &e.kind {
                    ExprKind::Map { kind, .. } => *kind,
                    _ => unreachable!(),
                };
                if matches!(e.kind, ExprKind::Map { .. })
                    && (*inner_kind == outer_kind || *inner_kind == crate::ir::MapKind::Seq)
                {
                    let fused_body = subst_param(&f.body, f.params[0].id, &g.body);
                    Some(Expr::new(ExprKind::Map {
                        kind: outer_kind,
                        f: Lambda { params: g.params.clone(), body: fused_body },
                        input: y.clone(),
                    }))
                } else {
                    None
                }
            } else {
                None
            }
        }
        // join (split n x) → x
        ExprKind::Join { input } => match &input.kind {
            ExprKind::Split { input: x, .. } => Some(x.clone()),
            _ => None,
        },
        // split n (join x) → x when x : [[T; n]; m]
        ExprKind::Split { chunk, input } => match &input.kind {
            ExprKind::Join { input: x } => {
                // We need x's inner length; typecheck the subtree (cheap) —
                // failure just means "don't fire".
                match crate::typecheck::check(x) {
                    Ok(t) => {
                        let ty = t.of(x);
                        match ty.elem().and_then(|e| e.len()) {
                            Some(n) if n == chunk => Some(x.clone()),
                            _ => None,
                        }
                    }
                    Err(_) => None,
                }
            }
            _ => None,
        },
        // pad-pad merge
        ExprKind::Pad { left, right, kind, input } => match &input.kind {
            ExprKind::Pad { left: l2, right: r2, kind: k2, input: x } if kind == k2 => {
                Some(Expr::new(ExprKind::Pad {
                    left: left + l2,
                    right: right + r2,
                    kind: *kind,
                    input: x.clone(),
                }))
            }
            _ => None,
        },
        // crop3 m (pad3 m x) → x
        ExprKind::Crop3 { margin, input } => match &input.kind {
            ExprKind::Pad3 { amount, input: x, .. } if amount == margin => Some(x.clone()),
            _ => None,
        },
        // let-inline trivial bindings
        ExprKind::Let { param, value, body } if is_trivial(value) => {
            Some(subst_param(body, param.id, value))
        }
        _ => None,
    };
    match rewritten {
        Some(r) => {
            changed = true;
            (r, changed)
        }
        None => (e, changed),
    }
}

/// Rebuilds a node from rewritten children.
fn rebuild_children(e: &ExprRef) -> (ExprRef, bool) {
    let mut changed = false;
    let mut go = |x: &ExprRef| {
        let (r, c) = pass(x);
        changed |= c;
        r
    };
    let kind = match &e.kind {
        ExprKind::Param(_)
        | ExprKind::Literal(_)
        | ExprKind::SizeVal(_)
        | ExprKind::Iota { .. } => return (e.clone(), false),
        ExprKind::Call { f, args } => {
            ExprKind::Call { f: f.clone(), args: args.iter().map(&mut go).collect() }
        }
        ExprKind::Tuple(parts) => ExprKind::Tuple(parts.iter().map(&mut go).collect()),
        ExprKind::Get { tuple, index } => ExprKind::Get { tuple: go(tuple), index: *index },
        ExprKind::At { array, index } => ExprKind::At { array: go(array), index: go(index) },
        ExprKind::Slice { array, start, stride, len } => ExprKind::Slice {
            array: go(array),
            start: go(start),
            stride: stride.clone(),
            len: len.clone(),
        },
        ExprKind::Let { param, value, body } => {
            ExprKind::Let { param: param.clone(), value: go(value), body: go(body) }
        }
        ExprKind::Map { kind, f, input } => ExprKind::Map {
            kind: *kind,
            f: Lambda { params: f.params.clone(), body: go(&f.body) },
            input: go(input),
        },
        ExprKind::Map2 { kind, f, input } => ExprKind::Map2 {
            kind: *kind,
            f: Lambda { params: f.params.clone(), body: go(&f.body) },
            input: go(input),
        },
        ExprKind::Map3 { kind, f, input } => ExprKind::Map3 {
            kind: *kind,
            f: Lambda { params: f.params.clone(), body: go(&f.body) },
            input: go(input),
        },
        ExprKind::Zip(parts) => ExprKind::Zip(parts.iter().map(&mut go).collect()),
        ExprKind::Zip2(parts) => ExprKind::Zip2(parts.iter().map(&mut go).collect()),
        ExprKind::Zip3(parts) => ExprKind::Zip3(parts.iter().map(&mut go).collect()),
        ExprKind::Slide { size, step, input } => {
            ExprKind::Slide { size: *size, step: *step, input: go(input) }
        }
        ExprKind::Slide2 { size, step, input } => {
            ExprKind::Slide2 { size: *size, step: *step, input: go(input) }
        }
        ExprKind::Slide3 { size, step, input } => {
            ExprKind::Slide3 { size: *size, step: *step, input: go(input) }
        }
        ExprKind::Pad { left, right, kind, input } => {
            ExprKind::Pad { left: *left, right: *right, kind: *kind, input: go(input) }
        }
        ExprKind::Pad2 { amount, kind, input } => {
            ExprKind::Pad2 { amount: *amount, kind: *kind, input: go(input) }
        }
        ExprKind::Pad3 { amount, kind, input } => {
            ExprKind::Pad3 { amount: *amount, kind: *kind, input: go(input) }
        }
        ExprKind::Crop3 { margin, input } => ExprKind::Crop3 { margin: *margin, input: go(input) },
        ExprKind::Split { chunk, input } => {
            ExprKind::Split { chunk: chunk.clone(), input: go(input) }
        }
        ExprKind::Join { input } => ExprKind::Join { input: go(input) },
        ExprKind::ReduceSeq { f, init, input } => ExprKind::ReduceSeq {
            f: Lambda { params: f.params.clone(), body: go(&f.body) },
            init: go(init),
            input: go(input),
        },
        ExprKind::ToPrivate(x) => ExprKind::ToPrivate(go(x)),
        ExprKind::ToLocal(x) => ExprKind::ToLocal(go(x)),
        ExprKind::Concat(parts) => ExprKind::Concat(parts.iter().map(&mut go).collect()),
        ExprKind::Skip { len, elem } => ExprKind::Skip { len: go(len), elem: elem.clone() },
        ExprKind::ArrayCons { elem, n } => ExprKind::ArrayCons { elem: go(elem), n: n.clone() },
        ExprKind::WriteTo { dest, value } => ExprKind::WriteTo { dest: go(dest), value: go(value) },
    };
    if changed {
        (Expr::new(kind), true)
    } else {
        (e.clone(), false)
    }
}

/// The overlapped-tiling rewrite for 1-D stencils (the headline
/// optimisation of the authors' companion stencil paper, TACO '20 \[8\] in
/// the reproduced paper's references):
///
/// ```text
/// mapGlb f (slide k 1 x)
///   → mapWrg (tileWin → mapLcl f (slide k 1 (toLocal tileWin)))
///            (slide (T+k−1) T x)
/// ```
///
/// Each workgroup stages one tile of `T + k − 1` input elements (the tile
/// plus its stencil halo) into local memory with a cooperative load, then
/// computes `T` outputs from it — converting `k` global reads per output
/// into roughly one. Requires the output length to divide by `T` (the
/// launcher enforces exact groups). Returns `None` when the expression does
/// not have the `map (slide k 1 …)` shape.
///
/// This is a *tuning* rewrite (it changes the execution strategy, not the
/// semantics), so it is applied explicitly rather than by [`optimize`].
pub fn overlapped_tile_1d(e: &ExprRef, tile: i64) -> Option<ExprRef> {
    let ExprKind::Map { kind: crate::ir::MapKind::Glb, f, input } = &e.kind else {
        return None;
    };
    let ExprKind::Slide { size, step: 1, input: source } = &input.kind else {
        return None;
    };
    let k = *size;
    let outer =
        Expr::new(ExprKind::Slide { size: tile + k - 1, step: tile, input: source.clone() });
    let tile_param = crate::ir::ParamDef::untyped("tileWin");
    let staged = Expr::new(ExprKind::ToLocal(tile_param.to_expr()));
    let windows = Expr::new(ExprKind::Slide { size: k, step: 1, input: staged });
    let inner = Expr::new(ExprKind::Map {
        kind: crate::ir::MapKind::Lcl,
        f: Lambda { params: f.params.clone(), body: f.body.clone() },
        input: windows,
    });
    Some(Expr::new(ExprKind::Map {
        kind: crate::ir::MapKind::Wrg,
        f: Lambda { params: vec![tile_param], body: inner },
        input: outer,
    }))
}

/// Applies all rules bottom-up until no rule fires (bounded at `max_passes`
/// to guarantee termination even if a future rule pair oscillates).
pub fn optimize(e: &ExprRef) -> ExprRef {
    let max_passes = 16;
    let mut cur = e.clone();
    for _ in 0..max_passes {
        let (next, changed) = pass(&cur);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funs;
    use crate::ir::{self, PadKind, ParamDef};
    use crate::scalar::Lit;
    use crate::typecheck::check;
    use crate::types::Type;

    #[test]
    fn map_id_eliminated() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let e = ir::map_glb(a.to_expr(), "x", |x| x);
        let o = optimize(&e);
        assert!(matches!(o.kind, ExprKind::Param(_)), "{:?}", o.kind);
    }

    #[test]
    fn map_fusion_fires() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let add = funs::add();
        let add2 = add.clone();
        let inner =
            ir::map_seq(a.to_expr(), "x", |x| ir::call(&add, vec![x, ir::lit(Lit::real(1.0))]));
        let e = ir::map_seq(inner, "y", |y| ir::call(&add2, vec![y, ir::lit(Lit::real(2.0))]));
        let o = optimize(&e);
        // one map, body contains both additions
        match &o.kind {
            ExprKind::Map { input, f, .. } => {
                assert!(matches!(input.kind, ExprKind::Param(_)));
                let dbg = format!("{:?}", f.body.kind);
                assert!(dbg.matches("Call").count() >= 2, "{dbg}");
            }
            other => panic!("expected fused map, got {other:?}"),
        }
        // and it still type checks
        check(&o).unwrap();
    }

    #[test]
    fn fusion_preserves_parallel_level() {
        // map_glb over map_seq fuses keeping Glb.
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let add = funs::add();
        let inner = ir::map_seq(a.to_expr(), "x", |x| ir::call(&add, vec![x.clone(), x]));
        let e = ir::map_glb(inner, "y", |y| y.clone());
        let o = optimize(&e);
        // map-id also fires on the outer, leaving the fused/simplified map.
        match &o.kind {
            ExprKind::Map { kind, .. } => {
                // The surviving map is the inner Seq one (outer was id).
                assert!(matches!(kind, crate::ir::MapKind::Seq));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn split_join_cancels() {
        let a = ParamDef::typed("a", Type::array(Type::real(), 12usize));
        let e = ir::join(ir::split(4usize, a.to_expr()));
        let o = optimize(&e);
        assert!(matches!(o.kind, ExprKind::Param(_)));
    }

    #[test]
    fn join_split_cancels_when_sizes_match() {
        let a = ParamDef::typed("a", Type::array(Type::array(Type::real(), 4usize), 3usize));
        let e = ir::split(4usize, ir::join(a.to_expr()));
        let o = optimize(&e);
        assert!(matches!(o.kind, ExprKind::Param(_)), "{:?}", o.kind);
        // mismatched chunk must NOT fire
        let e2 = ir::split(6usize, ir::join(a.to_expr()));
        let o2 = optimize(&e2);
        assert!(matches!(o2.kind, ExprKind::Split { .. }));
    }

    #[test]
    fn pads_merge() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let e = ir::pad(1, 2, PadKind::Clamp, ir::pad(3, 4, PadKind::Clamp, a.to_expr()));
        let o = optimize(&e);
        match &o.kind {
            ExprKind::Pad { left: 4, right: 6, .. } => {}
            other => panic!("expected merged pad, got {other:?}"),
        }
    }

    #[test]
    fn mixed_pad_kinds_do_not_merge() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let e = ir::pad(
            1,
            1,
            PadKind::Clamp,
            ir::pad(1, 1, PadKind::Constant(Lit::real(0.0)), a.to_expr()),
        );
        let o = optimize(&e);
        match &o.kind {
            ExprKind::Pad { input, .. } => assert!(matches!(input.kind, ExprKind::Pad { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crop_of_pad_cancels() {
        let a = ParamDef::typed("a", Type::array3(Type::real(), "Nx", "Ny", "Nz"));
        let e = ir::crop3(1, ir::pad3(1, PadKind::Clamp, a.to_expr()));
        let o = optimize(&e);
        assert!(matches!(o.kind, ExprKind::Param(_)));
    }

    #[test]
    fn trivial_lets_inline() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let add = funs::add();
        let e = ir::map_glb(a.to_expr(), "x", |x| {
            ir::let_in("y", x, |y| ir::call(&add, vec![y.clone(), y]))
        });
        let o = optimize(&e);
        fn has_let(e: &ExprRef) -> bool {
            match &e.kind {
                ExprKind::Let { .. } => true,
                ExprKind::Map { f, input, .. } => has_let(&f.body) || has_let(input),
                ExprKind::Call { args, .. } => args.iter().any(has_let),
                _ => false,
            }
        }
        assert!(!has_let(&o));
    }

    #[test]
    fn optimize_is_idempotent() {
        let a = ParamDef::typed("a", Type::array(Type::real(), 12usize));
        let e = ir::join(ir::split(4usize, ir::map_glb(a.to_expr(), "x", |x| x)));
        let once = optimize(&e);
        let twice = optimize(&once);
        assert_eq!(format!("{:?}", once.kind), format!("{:?}", twice.kind));
    }

    #[test]
    fn rc_sharing_is_safe() {
        // Rewriting must not mutate shared subtrees.
        let a = ParamDef::typed("a", Type::array(Type::real(), 12usize));
        let shared = ir::split(4usize, a.to_expr());
        let e = ir::join(shared.clone());
        let _ = optimize(&e);
        assert!(matches!(shared.kind, ExprKind::Split { .. }));
        let _ = std::rc::Rc::strong_count(&shared);
    }
}

//! Static per-site access-footprint analysis (DESIGN.md §9).
//!
//! For every global-buffer access site the bounds checker visits
//! ([`crate::verify`]), this module classifies the symbolic index map into
//! a *footprint shape* relative to the work-item's grid cell:
//!
//! * [`Shape::Stencil`] — a gid-linear access `lin(gid + gid_offset) +
//!   Σ o_d·stride_d` over the canonical row-major grid; the per-axis
//!   constant offsets `o_d` are recovered exactly.
//! * [`Shape::Gather`] — an access at `table[...] + Σ o_d·stride_d`: the
//!   cell named by a gather table (boundary index lists), plus per-axis
//!   constant offsets.
//! * [`Shape::Flat`] — no per-axis decomposition, but a sound symbolic
//!   interval (list-positional state tables such as `g1[b·numB + i]`).
//! * [`Shape::Opaque`] — nothing derivable.
//!
//! The payoff is [`KernelFootprints::required_halo`]: the halo width a
//! domain-sharded launch must exchange per axis, *proven* from what the
//! kernel actually reads and writes — consumed by the sharding layer
//! instead of the historical "one halo plane" assumption. A companion
//! pass, [`check_host_init`], walks a compiled [`HostProgram`]'s command
//! list in queue order and flags buffers read before any initializing
//! upload, device copy or kernel store (uninit reads).

use crate::arith::{expand, ArithExpr, RangeEnv, SymRange};
use crate::host::{HostCmd, HostProgram, LaunchArg};
use crate::kast::{KExpr, KStmt, Kernel, MemRef};
use crate::verify::{affine_split, is_gid_atom, is_load_atom, AccessKind, Assumptions};
use std::fmt;

/// Footprint shape of one access site. Offsets are per grid axis
/// (innermost first); a vector shorter than the grid rank is zero on the
/// remaining axes.
#[derive(Clone, Debug, PartialEq)]
pub enum Shape {
    /// gid-linear stencil access: the work-item's own (offset-placed) cell
    /// plus constant per-axis offsets.
    Stencil {
        /// Constant offset per axis relative to the work-item's cell.
        offsets: Vec<i64>,
    },
    /// Access through a gather table: the gathered cell plus constant
    /// per-axis offsets.
    Gather {
        /// Parameter name of the gather table.
        table: String,
        /// Constant offset per axis relative to the gathered cell.
        offsets: Vec<i64>,
    },
    /// Interval-only footprint: no per-axis decomposition, but the index
    /// provably lies in the rendered symbolic range.
    Flat {
        /// Rendered lower bound (`None` when unbounded).
        lo: Option<String>,
        /// Rendered upper bound (`None` when unbounded).
        hi: Option<String>,
    },
    /// No footprint derivable.
    Opaque {
        /// Why the classification failed.
        reason: String,
    },
}

impl Shape {
    /// The constant per-axis offset vector, for shapes that have one.
    pub fn offsets(&self) -> Option<&[i64]> {
        match self {
            Shape::Stencil { offsets } | Shape::Gather { offsets, .. } => Some(offsets),
            _ => None,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Shape::Stencil { .. } => "stencil",
            Shape::Gather { .. } => "gather",
            Shape::Flat { .. } => "flat",
            Shape::Opaque { .. } => "opaque",
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Stencil { offsets } => write!(f, "stencil{offsets:?}"),
            Shape::Gather { table, offsets } => write!(f, "gather({table}){offsets:?}"),
            Shape::Flat { lo, hi } => {
                let lo = lo.as_deref().unwrap_or("-inf");
                let hi = hi.as_deref().unwrap_or("+inf");
                write!(f, "flat[{lo}, {hi}]")
            }
            Shape::Opaque { reason } => write!(f, "opaque({reason})"),
        }
    }
}

/// Footprint of one access site on a global buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteFootprint {
    /// Access site id (the interpreter's shared load/store numbering).
    pub site: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Buffer (kernel parameter) name.
    pub buffer: String,
    /// Classified shape.
    pub shape: Shape,
}

/// All per-site footprints of one kernel, plus the grid geometry they
/// were derived against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelFootprints {
    /// Kernel name.
    pub kernel: String,
    /// Number of grid axes the stencil decomposition used (0 when no grid
    /// extents were available).
    pub rank: usize,
    /// Per-site footprints (global-buffer sites only).
    pub sites: Vec<SiteFootprint>,
}

impl KernelFootprints {
    /// The halo width the kernel requires on `axis` over the named
    /// buffers: `(below, above)` planes, the maximum reach of any load or
    /// store site relative to its anchoring cell. Errors when any site on
    /// a queried buffer has no per-axis footprint — such a kernel must
    /// not be sharded along that axis.
    pub fn required_halo(&self, buffers: &[&str], axis: usize) -> Result<(usize, usize), String> {
        let (mut below, mut above) = (0usize, 0usize);
        for s in &self.sites {
            if !buffers.contains(&s.buffer.as_str()) {
                continue;
            }
            let Some(offs) = s.shape.offsets() else {
                return Err(format!(
                    "kernel `{}` site {} ({}) on buffer `{}` has footprint {} — \
                     no per-axis offset proof, cannot derive a halo width",
                    self.kernel, s.site, s.kind, s.buffer, s.shape
                ));
            };
            let o = offs.get(axis).copied().unwrap_or(0);
            if o < 0 {
                below = below.max((-o) as usize);
            } else {
                above = above.max(o as usize);
            }
        }
        Ok((below, above))
    }

    /// True when every site on the named buffers has a per-axis footprint
    /// (stencil or gather) — the precondition for halo reasoning.
    pub fn proven_on(&self, buffers: &[&str]) -> bool {
        self.sites
            .iter()
            .filter(|s| buffers.contains(&s.buffer.as_str()))
            .all(|s| s.shape.offsets().is_some())
    }
}

/// One raw access record the bounds checker hands over for
/// classification (see `crate::verify`).
#[derive(Clone)]
pub(crate) struct AccessRecord {
    pub site: u32,
    pub kind: AccessKind,
    pub buffer: String,
    pub sym: Option<ArithExpr>,
    pub renv: RangeEnv,
}

/// Grid extents the stencil decomposition matches strides against:
/// `interior_dims` when the contract declares them, else the flattened
/// launch `global_size`. Empty when neither is fully known.
fn grid_dims(asm: &Assumptions) -> Vec<ArithExpr> {
    if !asm.interior_dims.is_empty() {
        return asm.interior_dims.clone();
    }
    let dims: Vec<ArithExpr> = asm.global_size.iter().filter_map(|d| d.clone()).collect();
    if dims.len() == asm.global_size.len() {
        dims
    } else {
        Vec::new()
    }
}

/// Classifies every captured access record under the kernel's contract.
pub(crate) fn classify_kernel(
    kernel: &str,
    asm: &Assumptions,
    records: &[AccessRecord],
) -> KernelFootprints {
    let dims = grid_dims(asm);
    // Row-major strides: stride_d = Π_{e<d} dims_e, expanded to canonical
    // monomial form so coefficient matching is syntactic first.
    let mut strides = Vec::with_capacity(dims.len());
    let mut acc = ArithExpr::one();
    for d in &dims {
        strides.push(expand(&acc));
        acc = acc * d.clone();
    }
    let monos: Vec<ArithExpr> = strides.clone();
    let sites = records
        .iter()
        .map(|r| SiteFootprint {
            site: r.site,
            kind: r.kind,
            buffer: r.buffer.clone(),
            shape: classify(r, asm, &strides, &monos),
        })
        .collect();
    KernelFootprints { kernel: kernel.to_string(), rank: dims.len(), sites }
}

fn classify(
    r: &AccessRecord,
    asm: &Assumptions,
    strides: &[ArithExpr],
    monos: &[ArithExpr],
) -> Shape {
    let Some(sym) = &r.sym else {
        return Shape::Opaque { reason: "index is not an affine/tracked expression".into() };
    };
    let m = expand(sym);
    let Some((pairs, base)) = affine_split(&m) else {
        return flat(&m, &r.renv);
    };
    // Attempt 1 — stencil: every atom is a work-item id whose coefficient
    // is the row-major stride of its axis, and the atom-free residue
    // (minus the slab placement term) decomposes into per-axis constant
    // offsets.
    if !pairs.is_empty()
        && !strides.is_empty()
        && pairs.iter().all(|(n, _)| is_gid_atom(n))
        && pairs.iter().all(|(n, c)| {
            axis_of(n)
                .is_some_and(|d| strides.get(d).is_some_and(|s| *c == *s || r.renv.prove_eq(c, s)))
        })
    {
        // Subtract the slab placement: a shift_gid kernel anchors axis d
        // at `gid_d + offset_d`, so the constant `offset_d·stride_d` in
        // the residue is placement, not stencil reach.
        let mut residue = base.clone();
        for (d, s) in strides.iter().enumerate() {
            let off = asm.gid_offsets.get(d).copied().unwrap_or(0);
            if off != 0 {
                residue = residue - ArithExpr::Cst(off) * s.clone();
            }
        }
        if let Some(offsets) = decompose(&expand(&residue), monos) {
            return Shape::Stencil { offsets };
        }
        return flat(&m, &r.renv);
    }
    // Attempt 2 — gather: exactly one opaque load atom with coefficient 1
    // anchors the access at the gathered cell; the residue decomposes
    // into per-axis offsets (trivially so when it is zero).
    if let [(name, c)] = pairs.as_slice() {
        if is_load_atom(name) && matches!(c, ArithExpr::Cst(1)) {
            if let Some(table) = gather_table(name) {
                let res = expand(&base);
                let offsets = if res == ArithExpr::zero() {
                    Some(Vec::new())
                } else {
                    decompose(&res, monos)
                };
                if let Some(offsets) = offsets {
                    return Shape::Gather { table, offsets };
                }
            }
        }
    }
    flat(&m, &r.renv)
}

/// The axis of a `%gidD` atom.
fn axis_of(atom: &str) -> Option<usize> {
    atom.strip_prefix("%gid").and_then(|d| d.parse().ok())
}

/// The buffer name inside a `%ld:buf[idx]` gather atom.
fn gather_table(atom: &str) -> Option<String> {
    let rest = atom.strip_prefix("%ld:")?;
    Some(rest[..rest.find('[')?].to_string())
}

/// Interval fallback: the site's range facts bound the raw index map.
fn flat(m: &ArithExpr, renv: &RangeEnv) -> Shape {
    let r: SymRange = renv.range_of(m);
    Shape::Flat { lo: r.lo.map(|e| format!("{e}")), hi: r.hi.map(|e| format!("{e}")) }
}

/// Decomposes an atom-free expanded residue into integer coefficients
/// over the stride monomials `monos` (`monos[0]` is the constant 1):
/// `residue = Σ offsets[d]·monos[d]`, or `None` when any summand matches
/// no stride.
fn decompose(residue: &ArithExpr, monos: &[ArithExpr]) -> Option<Vec<i64>> {
    if monos.is_empty() {
        return (*residue == ArithExpr::zero()).then(Vec::new);
    }
    let mut offsets = vec![0i64; monos.len()];
    let terms: Vec<ArithExpr> = match residue {
        ArithExpr::Sum(ts) => ts.iter().cloned().collect(),
        other => vec![other.clone()],
    };
    for t in terms {
        let (d, c) = match_term(&t, monos)?;
        offsets[d] += c;
    }
    Some(offsets)
}

/// Matches one expanded summand against the stride monomials: a bare
/// constant is axis 0; `mono` is `(d, 1)`; `mono·c` (canonical product
/// order puts the constant factor last) is `(d, c)`.
fn match_term(t: &ArithExpr, monos: &[ArithExpr]) -> Option<(usize, i64)> {
    if let ArithExpr::Cst(c) = t {
        return Some((0, *c));
    }
    for (d, mono) in monos.iter().enumerate().skip(1) {
        if t == mono {
            return Some((d, 1));
        }
        if let ArithExpr::Prod(fs) = t {
            if let Some(ArithExpr::Cst(c)) = fs.last().cloned() {
                let core: Vec<ArithExpr> = fs[..fs.len() - 1].to_vec();
                let core = match core.as_slice() {
                    [one] => one.clone(),
                    _ => ArithExpr::mul(core),
                };
                if core == *mono {
                    return Some((d, c));
                }
            }
        }
    }
    None
}

// ---- host-program read-before-write pass ----

/// One buffer read before any initializing write, found by
/// [`check_host_init`].
#[derive(Clone, Debug, PartialEq)]
pub struct UninitRead {
    /// Index of the offending command in [`HostProgram::cmds`].
    pub cmd: usize,
    /// Device placement (queue index) of the buffer.
    pub device: usize,
    /// Device slot name.
    pub buffer: String,
    /// Kernel name for launch reads, or the command kind.
    pub reader: String,
}

impl fmt::Display for UninitRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cmd {}: `{}` reads device {} buffer `{}` before any initializing write",
            self.cmd, self.reader, self.device, self.buffer
        )
    }
}

/// Whether a kernel parameter is loaded from / stored to anywhere in the
/// kernel body (syntactic; `reads[i]`/`writes[i]` per parameter index).
fn param_access(kernel: &Kernel) -> (Vec<bool>, Vec<bool>) {
    let n = kernel.params.len();
    let mut reads = vec![false; n];
    let mut writes = vec![false; n];
    fn expr(e: &KExpr, reads: &mut [bool]) {
        match e {
            KExpr::Load { mem, idx } => {
                if let MemRef::Param(i) = mem {
                    if let Some(r) = reads.get_mut(*i) {
                        *r = true;
                    }
                }
                expr(idx, reads);
            }
            KExpr::Bin(_, a, b) => {
                expr(a, reads);
                expr(b, reads);
            }
            KExpr::Un(_, a) | KExpr::Cast(_, a) => expr(a, reads),
            KExpr::Select(c, t, f) => {
                expr(c, reads);
                expr(t, reads);
                expr(f, reads);
            }
            KExpr::Call(_, args) => args.iter().for_each(|a| expr(a, reads)),
            _ => {}
        }
    }
    fn stmts(body: &[KStmt], reads: &mut [bool], writes: &mut [bool]) {
        for s in body {
            match s {
                KStmt::DeclScalar { init, .. } => {
                    if let Some(e) = init {
                        expr(e, reads);
                    }
                }
                KStmt::DeclPrivArray { len, .. } | KStmt::DeclLocalArray { len, .. } => {
                    expr(len, reads)
                }
                KStmt::Assign { value, .. } => expr(value, reads),
                KStmt::Store { mem, idx, value } => {
                    if let MemRef::Param(i) = mem {
                        if let Some(w) = writes.get_mut(*i) {
                            *w = true;
                        }
                    }
                    expr(idx, reads);
                    expr(value, reads);
                }
                KStmt::For { begin, end, step, body, .. } => {
                    expr(begin, reads);
                    expr(end, reads);
                    expr(step, reads);
                    stmts(body, reads, writes);
                }
                KStmt::If { cond, then_, else_ } => {
                    expr(cond, reads);
                    stmts(then_, reads, writes);
                    stmts(else_, reads, writes);
                }
                KStmt::Barrier | KStmt::Return | KStmt::Comment(_) => {}
            }
        }
    }
    stmts(&kernel.body, &mut reads, &mut writes);
    (reads, writes)
}

/// Walks a host program's command list in queue order, tracking per
/// `(device, slot)` whether the buffer has received an initializing
/// write (upload, device copy, or a launch whose kernel stores to it),
/// and flags every read of a still-uninitialized buffer. The tracking is
/// region-insensitive and deliberately conservative *against false
/// positives*: any partial write counts as initialization — the
/// element-precise complement is the runtime shadow sanitizer.
pub fn check_host_init(prog: &HostProgram) -> Vec<UninitRead> {
    let access: Vec<(Vec<bool>, Vec<bool>)> =
        prog.kernels.iter().map(|k| param_access(&k.kernel)).collect();
    let mut init: Vec<(usize, String)> = Vec::new();
    let mut findings = Vec::new();
    let is_init = |init: &[(usize, String)], device: usize, slot: &str| {
        init.iter().any(|(d, s)| *d == device && s == slot)
    };
    let mark = |init: &mut Vec<(usize, String)>, device: usize, slot: &str| {
        if !is_init(init, device, slot) {
            init.push((device, slot.to_string()));
        }
    };
    for (ci, cmd) in prog.cmds.iter().enumerate() {
        match cmd {
            HostCmd::Alloc { .. } => {}
            HostCmd::CopyIn { dev, device, .. } => mark(&mut init, *device, dev),
            HostCmd::DevCopy { src_device, src, dst_device, dst, .. } => {
                if !is_init(&init, *src_device, src) {
                    findings.push(UninitRead {
                        cmd: ci,
                        device: *src_device,
                        buffer: src.clone(),
                        reader: "DevCopy".into(),
                    });
                }
                mark(&mut init, *dst_device, dst);
            }
            HostCmd::Launch { kernel, args, device, .. } => {
                let k = &prog.kernels[*kernel];
                let (reads, writes) = &access[*kernel];
                let mut bufs = args.iter().enumerate().filter_map(|(i, a)| match a {
                    LaunchArg::Buf(name) => Some((i, name)),
                    _ => None,
                });
                // Parameter order and argument order coincide; first pass
                // flags reads, second marks writes (a kernel that both
                // reads and writes an uninit buffer is still a finding).
                let pairs: Vec<(usize, &String)> = bufs.by_ref().collect();
                for (pi, slot) in &pairs {
                    if reads.get(*pi).copied().unwrap_or(false) && !is_init(&init, *device, slot) {
                        findings.push(UninitRead {
                            cmd: ci,
                            device: *device,
                            buffer: (*slot).clone(),
                            reader: k.kernel.name.clone(),
                        });
                    }
                }
                for (pi, slot) in &pairs {
                    if writes.get(*pi).copied().unwrap_or(false) {
                        mark(&mut init, *device, slot);
                    }
                }
            }
            HostCmd::CopyOut { dev, device, .. } => {
                if !is_init(&init, *device, dev) {
                    findings.push(UninitRead {
                        cmd: ci,
                        device: *device,
                        buffer: dev.clone(),
                        reader: "CopyOut".into(),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::{KStmt, Kernel, KernelParam};
    use crate::scalar::BinOp;
    use crate::types::ScalarKind;
    use crate::verify::{verify_kernel, BufferFacts};

    /// 1-D 3-point stencil: `out[gid] = a[gid-1] + a[gid] + a[gid+1]`
    /// under an interior guard.
    fn stencil_1d() -> (Kernel, Assumptions) {
        let gid = KExpr::GlobalId(0);
        let at = |off: i32| KExpr::load(MemRef::Param(1), gid.clone() + KExpr::int(off));
        let k = Kernel {
            name: "s3".into(),
            params: vec![
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::global_buf("a", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![
                KStmt::return_if(KExpr::bin(
                    BinOp::Ge,
                    gid.clone() + KExpr::int(1),
                    KExpr::var("N") - KExpr::int(1),
                )),
                KStmt::return_if(KExpr::bin(BinOp::Lt, gid.clone(), KExpr::int(1))),
                KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: gid.clone(),
                    value: at(-1) + at(0) + at(1),
                },
            ],
            work_dim: 1,
        };
        let n = ArithExpr::var("N");
        let asm = Assumptions {
            global_size: vec![Some(n.clone())],
            size_bounds: vec![("N".into(), 3)],
            buffers: [
                ("out".to_string(), BufferFacts::sized(n.clone())),
                ("a".to_string(), BufferFacts::sized(n)),
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        (k.resolve_real(ScalarKind::F32), asm)
    }

    #[test]
    fn stencil_offsets_and_halo() {
        let (k, asm) = stencil_1d();
        let rep = verify_kernel(&k, &asm);
        let fp = &rep.footprints;
        assert_eq!(fp.rank, 1);
        let shapes: Vec<&Shape> =
            fp.sites.iter().filter(|s| s.buffer == "a").map(|s| &s.shape).collect();
        assert_eq!(shapes.len(), 3, "{fp:?}");
        assert!(shapes.contains(&&Shape::Stencil { offsets: vec![-1] }));
        assert!(shapes.contains(&&Shape::Stencil { offsets: vec![0] }));
        assert!(shapes.contains(&&Shape::Stencil { offsets: vec![1] }));
        assert_eq!(fp.required_halo(&["a"], 0), Ok((1, 1)));
        assert_eq!(fp.required_halo(&["out"], 0), Ok((0, 0)));
        assert!(fp.proven_on(&["a", "out"]));
    }

    #[test]
    fn gather_store_has_zero_offsets() {
        // `out[bidx[gid]] = 0` — a gather-anchored store with no reach.
        let k = Kernel {
            name: "g".into(),
            params: vec![
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::global_buf("bidx", ScalarKind::I32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::load(MemRef::Param(1), KExpr::GlobalId(0)),
                value: KExpr::real(0.0),
            }],
            work_dim: 1,
        };
        let n = ArithExpr::var("N");
        let asm = Assumptions {
            global_size: vec![Some(ArithExpr::var("numB"))],
            size_bounds: vec![("N".into(), 1), ("numB".into(), 1)],
            buffers: [
                ("out".to_string(), BufferFacts::sized(n.clone())),
                (
                    "bidx".to_string(),
                    BufferFacts::sized(ArithExpr::var("numB"))
                        .with_values(SymRange::new(ArithExpr::Cst(0), n - ArithExpr::one())),
                ),
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        let rep = verify_kernel(&k.resolve_real(ScalarKind::F32), &asm);
        let store =
            rep.footprints.sites.iter().find(|s| s.kind == AccessKind::Store).expect("store site");
        match &store.shape {
            Shape::Gather { table, offsets } => {
                assert_eq!(table, "bidx");
                assert!(offsets.is_empty());
            }
            other => panic!("expected gather, got {other}"),
        }
        assert_eq!(rep.footprints.required_halo(&["out"], 2), Ok((0, 0)));
    }

    #[test]
    fn wide_stencil_rejected_by_narrow_halo_budget() {
        // z-reach 2 must not fit a 1-plane halo.
        let (mut k, mut asm) = stencil_1d();
        // Widen: add a load at gid+2.
        if let KStmt::Store { value, .. } = &mut k.body[2] {
            *value =
                value.clone() + KExpr::load(MemRef::Param(1), KExpr::GlobalId(0) + KExpr::int(2));
        }
        asm.size_bounds = vec![("N".into(), 5)];
        let rep = verify_kernel(&k, &asm);
        assert_eq!(rep.footprints.required_halo(&["a"], 0), Ok((1, 2)));
    }

    #[test]
    fn flat_site_blocks_halo_proof() {
        // `out[gid*gid]` is not affine in gid — no per-axis footprint.
        let k = Kernel {
            name: "q".into(),
            params: vec![
                KernelParam::global_buf("out", ScalarKind::F32),
                KernelParam::scalar("N", ScalarKind::I32),
            ],
            body: vec![KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::GlobalId(0) * KExpr::GlobalId(0),
                value: KExpr::real(0.0),
            }],
            work_dim: 1,
        };
        let asm = Assumptions {
            global_size: vec![Some(ArithExpr::var("N"))],
            size_bounds: vec![("N".into(), 1)],
            buffers: [("out".to_string(), BufferFacts::sized(ArithExpr::var("N")))]
                .into_iter()
                .collect(),
            ..Default::default()
        };
        let rep = verify_kernel(&k.resolve_real(ScalarKind::F32), &asm);
        let err = rep.footprints.required_halo(&["out"], 0).unwrap_err();
        assert!(err.contains("`q`") && err.contains("`out`"), "{err}");
        assert!(!rep.footprints.proven_on(&["out"]));
    }
}

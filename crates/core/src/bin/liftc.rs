//! `liftc` — compile a kernel written in the textual front-end to OpenCL C.
//!
//! ```sh
//! liftc kernel.lisp               # single precision
//! liftc --double kernel.lisp     # double precision
//! liftc -                        # read from stdin
//! ```
//!
//! Prints the generated OpenCL kernel plus a launch summary (parameter
//! order, NDRange expression, workgroup size if fixed) to stdout.

use lift::dsl::parse_kernel;
use lift::lower::ArgSpec;
use lift::opencl;
use lift::types::ScalarKind;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: liftc [--double] <kernel.lisp | ->");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut double = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--double" => double = true,
            "--single" => double = false,
            "-h" | "--help" => return usage(),
            other => {
                if path.is_some() {
                    return usage();
                }
                path = Some(other.to_string());
            }
        }
    }
    let Some(path) = path else { return usage() };
    let src = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("liftc: could not read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("liftc: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let kernel = match parse_kernel(&src) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("liftc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let real = if double { ScalarKind::F64 } else { ScalarKind::F32 };
    let lowered = match kernel.lower(real) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("liftc: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", opencl::emit_kernel(&lowered.kernel));
    println!("\n// ---- launch info ----");
    for (i, spec) in lowered.args.iter().enumerate() {
        match spec {
            ArgSpec::Input(_, n) => println!("// arg {i}: input  `{n}`"),
            ArgSpec::Size(n) => println!("// arg {i}: size   `{n}` (int)"),
            ArgSpec::Output(n, ty) => println!("// arg {i}: output `{n}` : {ty}"),
        }
    }
    let gs: Vec<String> = lowered.global_size.iter().map(|g| g.to_string()).collect();
    println!("// global size: [{}]", gs.join(", "));
    match &lowered.local_size {
        Some(l) => println!("// workgroup size (required): {l}"),
        None => println!("// workgroup size: runtime choice"),
    }
    ExitCode::SUCCESS
}

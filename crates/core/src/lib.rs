//! # lift — a pattern-based code generator with complex-boundary primitives
//!
//! This crate reproduces the compiler contribution of *"Code Generation for
//! Room Acoustics Simulations with Complex Boundary Conditions using LIFT"*
//! (IPDPS 2021): a functional, pattern-based intermediate representation and
//! an OpenCL-style code generator, extended with the primitives the paper
//! introduces for realistic boundary handling:
//!
//! * **`WriteTo`** — redirect results into existing buffers (in-place
//!   updates);
//! * **`Concat` / `Skip` / `ArrayCons`** — scatter single elements at
//!   gathered indices without allocating an output buffer;
//! * **host primitives** (`ToGPU`, `ToHost`, `OclKernel`) — generate the
//!   host-side program that schedules multi-kernel applications.
//!
//! ## Pipeline
//!
//! ```text
//!  pattern IR ──typecheck──▶ views ──memory alloc──▶ lowering ──▶ kernel AST
//!                                                                 │      │
//!                                                      OpenCL C ◀─┘      └─▶ vgpu execution
//! ```
//!
//! The kernel AST ([`kast`]) replaces OpenCL C as the generator target so
//! that generated kernels can be *executed* (by the `vgpu` crate) as well as
//! printed ([`opencl`]). See `DESIGN.md` at the repository root for the full
//! system inventory.
//!
//! ## Example: build, lower and print a kernel
//!
//! ```
//! use lift::prelude::*;
//! use lift::{funs, ir};
//!
//! // map(x => x * 2 + 1) over an array of N reals
//! let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
//! let prog = ir::map_glb(a.to_expr(), "x", |x| {
//!     ir::call(&funs::mad(), vec![x, ir::lit(Lit::real(2.0)), ir::lit(Lit::real(1.0))])
//! });
//! let lowered = lower_kernel("scale_shift", &[a], &prog, ScalarKind::F32).unwrap();
//! let src = opencl::emit_kernel(&lowered.kernel);
//! assert!(src.contains("__kernel void scale_shift"));
//! assert!(src.contains("get_global_id(0)"));
//! ```

#![warn(missing_docs)]

pub mod arith;
pub mod dsl;
pub mod footprint;
pub mod funs;
pub mod host;
pub mod ir;
pub mod kast;
pub mod lower;
pub mod memory;
pub mod opencl;
pub mod rewrite;
pub mod scalar;
pub mod typecheck;
pub mod types;
pub mod verify;
pub mod view;

/// Convenient re-exports for building and lowering programs.
pub mod prelude {
    pub use crate::arith::ArithExpr;
    pub use crate::ir::{
        array_cons, at, call, concat, crop3, get, iota, join, let_in, lit, map3_glb, map_glb,
        map_seq, pad, pad3, reduce_seq, skip, slice, slide, slide3, split, to_private, tuple,
        write_to, zip, zip3, Expr, ExprKind, ExprRef, Lambda, MapKind, PadKind, ParamDef,
    };
    pub use crate::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef, MemSpace};
    pub use crate::lower::{lower_kernel, LoweredKernel};
    pub use crate::opencl;
    pub use crate::scalar::{BinOp, Intrinsic, Lit, SExpr, UnOp, UserFun, Value};
    pub use crate::typecheck::check;
    pub use crate::types::{ScalarKind, Type};
}

//! Lowering: pattern IR → kernel AST.
//!
//! This is the code-generation stage of §III-A: after type checking, views
//! are constructed for every expression and collapsed into indexed loads and
//! stores while the pattern structure becomes loops and NDRange guards.
//!
//! The top level of a kernel body must be a parallel `map` (1-D) or `map3`
//! (3-D), optionally wrapped in a `WriteTo` that re-routes the kernel output
//! into one of its inputs. Inside the element function:
//!
//! * value-producing elements are stored through the output view;
//! * `WriteTo` elements (and tuples of them — FD-MM's multi-output) emit
//!   stores through their own destination views and allocate nothing;
//! * the `Concat(Skip(idx), …, Skip(rest))` idiom becomes a single store at
//!   a runtime offset, exactly as in §IV-B of the paper.

use crate::arith::ArithExpr;
use crate::ir::{ExprKind, ExprRef, Lambda, MapKind, ParamDef, ParamId};
use crate::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use crate::memory::{self, MemError, NameGen, OutputPlan};
use crate::scalar::{BinOp, SExpr, UserFun};
use crate::typecheck::{check, TypeError, Typed};
use crate::types::{ScalarKind, Type};
use crate::view::{kadd, View, ViewError};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Where each kernel parameter comes from at launch time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// Bound to the program input with this [`ParamId`] (buffers and scalar
    /// inputs alike).
    Input(ParamId, String),
    /// A symbolic size variable, bound from the launch environment.
    Size(String),
    /// An output buffer the runtime must allocate, of the given (symbolic)
    /// type.
    Output(String, Type),
}

/// A lowered kernel plus everything needed to launch it.
#[derive(Debug, Clone)]
pub struct LoweredKernel {
    /// The generated kernel.
    pub kernel: Kernel,
    /// One entry per kernel parameter, in order.
    pub args: Vec<ArgSpec>,
    /// Global NDRange size per dimension (innermost first), symbolic.
    pub global_size: Vec<ArithExpr>,
    /// Required workgroup size (kernels with `Wrg`/`Lcl` maps and local
    /// memory); `None` lets the runtime pick.
    pub local_size: Option<ArithExpr>,
}

/// Code-generation error.
#[derive(Debug, Clone)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

impl From<ViewError> for LowerError {
    fn from(e: ViewError) -> Self {
        LowerError(e.0)
    }
}

impl From<TypeError> for LowerError {
    fn from(e: TypeError) -> Self {
        LowerError(e.to_string())
    }
}

impl From<MemError> for LowerError {
    fn from(e: MemError) -> Self {
        LowerError(e.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError(msg.into()))
}

struct Ctx<'a> {
    typed: &'a Typed,
    bindings: HashMap<ParamId, View>,
    names: NameGen,
    /// Extent of the `Lcl` maps seen so far (the kernel's workgroup size).
    lcl_size: Option<ArithExpr>,
}

impl<'a> Ctx<'a> {
    fn binding(&self, p: &Rc<ParamDef>) -> Result<View, LowerError> {
        self.bindings
            .get(&p.id)
            .cloned()
            .ok_or_else(|| LowerError(format!("parameter `{}` has no binding", p.name)))
    }

    /// True for expressions that are free to duplicate in generated code.
    fn trivial(e: &KExpr) -> bool {
        matches!(e, KExpr::Lit(_) | KExpr::Var(_) | KExpr::GlobalId(_))
    }

    /// Binds `e` to a scalar temporary unless it is already trivial; returns
    /// the expression to use in its place.
    fn bind_temp(&mut self, e: KExpr, kind: ScalarKind, out: &mut Vec<KStmt>) -> KExpr {
        if Self::trivial(&e) {
            return e;
        }
        let name = self.names.fresh("tmp");
        out.push(KStmt::DeclScalar { name: name.clone(), kind, init: Some(e) });
        KExpr::Var(name)
    }

    /// Inlines a user function: each argument is bound to a fresh temporary
    /// (so loads are not duplicated), then the body is substituted.
    fn inline_userfun(&mut self, f: &UserFun, args: Vec<KExpr>, out: &mut Vec<KStmt>) -> KExpr {
        let bound: Vec<KExpr> = args
            .into_iter()
            .zip(&f.params)
            .map(|(a, (_, kind))| self.bind_temp(a, *kind, out))
            .collect();
        sexpr_to_kexpr(&f.body, &bound)
    }

    /// Produces a scalar kernel expression for `e`, emitting prerequisite
    /// statements into `out`.
    fn gen_scalar(&mut self, e: &ExprRef, out: &mut Vec<KStmt>) -> Result<KExpr, LowerError> {
        match &e.kind {
            ExprKind::Literal(l) => Ok(KExpr::Lit(*l)),
            ExprKind::SizeVal(a) => Ok(KExpr::from_arith(a)),
            ExprKind::Call { f, args } => {
                let mut kargs = Vec::with_capacity(args.len());
                for a in args {
                    kargs.push(self.gen_scalar(a, out)?);
                }
                Ok(self.inline_userfun(f, kargs, out))
            }
            ExprKind::Let { param, value, body } => {
                self.bind_let(param, value, out)?;
                self.gen_scalar(body, out)
            }
            ExprKind::ReduceSeq { f, init, input } => self.gen_reduce(f, init, input, out, e),
            _ => {
                let v = self.view_of(e, out)?;
                Ok(v.as_scalar()?)
            }
        }
    }

    fn gen_reduce(
        &mut self,
        f: &Lambda,
        init: &ExprRef,
        input: &ExprRef,
        out: &mut Vec<KStmt>,
        whole: &ExprRef,
    ) -> Result<KExpr, LowerError> {
        let acc_kind = match self.typed.of(whole) {
            Type::Scalar(k) => *k,
            other => return err(format!("reduceSeq accumulator must be scalar, got {other}")),
        };
        let init_e = self.gen_scalar(init, out)?;
        let acc = self.names.fresh("acc");
        out.push(KStmt::DeclScalar { name: acc.clone(), kind: acc_kind, init: Some(init_e) });
        let iv = self.view_of(input, out)?;
        let n = match self.typed.of(input) {
            Type::Array(_, n) => n.clone(),
            other => return err(format!("reduceSeq over non-array {other}")),
        };
        let var = self.names.fresh("r");
        let mut body = Vec::new();
        let elem_view = iv.access(KExpr::var(&var))?;
        assert_eq!(f.params.len(), 2);
        self.bindings.insert(f.params[0].id, View::Expr(KExpr::var(&acc), acc_kind));
        self.bindings.insert(f.params[1].id, elem_view);
        let new_acc = self.gen_scalar(&f.body, &mut body)?;
        body.push(KStmt::Assign { name: acc.clone(), value: new_acc });
        out.push(KStmt::For {
            var,
            begin: KExpr::int(0),
            end: KExpr::from_arith(&n),
            step: KExpr::int(1),
            body,
        });
        Ok(KExpr::var(acc))
    }

    /// Binds a `let` parameter: scalars become named temporaries, arrays
    /// become view aliases (or private materialisations under `ToPrivate`).
    fn bind_let(
        &mut self,
        param: &Rc<ParamDef>,
        value: &ExprRef,
        out: &mut Vec<KStmt>,
    ) -> Result<(), LowerError> {
        let vt = self.typed.of(value).clone();
        match vt {
            Type::Scalar(kind) => {
                let v = self.gen_scalar(value, out)?;
                let v = if Self::trivial(&v) {
                    v
                } else {
                    let name = self.names.fresh(&sanitize(&param.name));
                    out.push(KStmt::DeclScalar { name: name.clone(), kind, init: Some(v) });
                    KExpr::Var(name)
                };
                self.bindings.insert(param.id, View::Expr(v, kind));
                Ok(())
            }
            _ => {
                let v = self.view_of(value, out)?;
                self.bindings.insert(param.id, v);
                Ok(())
            }
        }
    }

    /// Materialises an array expression into a fresh private array and
    /// returns its memory view.
    fn materialize_private(
        &mut self,
        inner: &ExprRef,
        out: &mut Vec<KStmt>,
    ) -> Result<View, LowerError> {
        let ty = self.typed.of(inner).clone();
        let (elem, n) = match &ty {
            Type::Array(e, n) => (e.as_ref().clone(), n.clone()),
            other => return err(format!("toPrivate of non-array {other}")),
        };
        let kind = match &elem {
            Type::Scalar(k) => *k,
            other => return err(format!("toPrivate supports scalar elements, got {other}")),
        };
        let name = self.names.fresh("priv");
        out.push(KStmt::DeclPrivArray { name: name.clone(), kind, len: KExpr::from_arith(&n) });
        let view = View::mem(MemRef::Priv(name), ty);
        self.emit_into(inner, Some(view.clone()), out)?;
        Ok(view)
    }

    /// Materialises an array expression into workgroup-local memory with a
    /// cooperative load (`for (i = lid; i < len; i += lsize)`) followed by a
    /// barrier, and returns its memory view.
    fn materialize_local(
        &mut self,
        inner: &ExprRef,
        out: &mut Vec<KStmt>,
    ) -> Result<View, LowerError> {
        let ty = self.typed.of(inner).clone();
        let (elem, n) = match &ty {
            Type::Array(e, n) => (e.as_ref().clone(), n.clone()),
            other => return err(format!("toLocal of non-array {other}")),
        };
        let kind = match &elem {
            Type::Scalar(k) => *k,
            other => return err(format!("toLocal supports scalar elements, got {other}")),
        };
        let name = self.names.fresh("tile");
        out.push(KStmt::DeclLocalArray { name: name.clone(), kind, len: KExpr::from_arith(&n) });
        // cooperative load: each local item copies a strided share
        let src_view = self.view_of(inner, out)?;
        let var = self.names.fresh("co");
        let src = src_view.access(KExpr::var(&var))?;
        let dst = View::mem(MemRef::Local(name.clone()), ty.clone()).access(KExpr::var(&var))?;
        let body = vec![dst.store(src.as_scalar()?)?];
        out.push(KStmt::For {
            var,
            begin: KExpr::LocalId(0),
            end: KExpr::from_arith(&n),
            step: KExpr::LocalSize(0),
            body,
        });
        out.push(KStmt::Barrier);
        Ok(View::mem(MemRef::Local(name), ty))
    }

    /// Builds the input view of a data-layout expression, emitting any code
    /// needed for runtime indices and private materialisations.
    fn view_of(&mut self, e: &ExprRef, out: &mut Vec<KStmt>) -> Result<View, LowerError> {
        match &e.kind {
            ExprKind::Param(p) => self.binding(p),
            ExprKind::Literal(l) => Ok(View::ConstLit(*l)),
            ExprKind::SizeVal(a) => Ok(View::Expr(KExpr::from_arith(a), ScalarKind::I32)),
            ExprKind::Tuple(parts) => {
                let vs: Result<Vec<View>, LowerError> =
                    parts.iter().map(|p| self.view_of(p, out)).collect();
                Ok(View::Tuple(vs?))
            }
            ExprKind::Get { tuple, index } => Ok(self.view_of(tuple, out)?.tuple_get(*index)?),
            ExprKind::At { array, index } => {
                let idx = self.gen_scalar(index, out)?;
                Ok(self.view_of(array, out)?.access(idx)?)
            }
            ExprKind::Slice { array, start, stride, .. } => {
                let base = self.view_of(array, out)?;
                let start = self.gen_scalar(start, out)?;
                Ok(View::Gather { base: Box::new(base), start, stride: KExpr::from_arith(stride) })
            }
            ExprKind::Iota { .. } => Ok(View::IotaV),
            ExprKind::Zip(parts) => {
                let vs: Result<Vec<View>, LowerError> =
                    parts.iter().map(|p| self.view_of(p, out)).collect();
                Ok(View::ZipV { parts: vs?, levels: 1 })
            }
            ExprKind::Zip2(parts) => {
                let vs: Result<Vec<View>, LowerError> =
                    parts.iter().map(|p| self.view_of(p, out)).collect();
                Ok(View::ZipV { parts: vs?, levels: 2 })
            }
            ExprKind::Zip3(parts) => {
                let vs: Result<Vec<View>, LowerError> =
                    parts.iter().map(|p| self.view_of(p, out)).collect();
                Ok(View::ZipV { parts: vs?, levels: 3 })
            }
            ExprKind::Slide { step, input, .. } => Ok(View::SlideV {
                base: Box::new(self.view_of(input, out)?),
                step: *step,
                dims: 1,
                ws: vec![],
                ds: vec![],
            }),
            ExprKind::Slide2 { step, input, .. } => Ok(View::SlideV {
                base: Box::new(self.view_of(input, out)?),
                step: *step,
                dims: 2,
                ws: vec![],
                ds: vec![],
            }),
            ExprKind::Slide3 { step, input, .. } => Ok(View::SlideV {
                base: Box::new(self.view_of(input, out)?),
                step: *step,
                dims: 3,
                ws: vec![],
                ds: vec![],
            }),
            ExprKind::Pad { left, right, kind, input } => {
                let n = match self.typed.of(input) {
                    Type::Array(_, n) => n.clone(),
                    other => return err(format!("pad over non-array {other}")),
                };
                Ok(View::PadV {
                    base: Box::new(self.view_of(input, out)?),
                    left: *left,
                    right: *right,
                    dims: 1,
                    lens: vec![n],
                    kind: *kind,
                    idxs: vec![],
                })
            }
            ExprKind::Pad2 { amount, kind, input } => {
                let (nx, ny) = dims2(self.typed.of(input))
                    .ok_or_else(|| LowerError("pad2 over non-2D array".into()))?;
                Ok(View::PadV {
                    base: Box::new(self.view_of(input, out)?),
                    left: *amount,
                    right: *amount,
                    dims: 2,
                    lens: vec![ny, nx],
                    kind: *kind,
                    idxs: vec![],
                })
            }
            ExprKind::Pad3 { amount, kind, input } => {
                let (nx, ny, nz) = dims3(self.typed.of(input))
                    .ok_or_else(|| LowerError("pad3 over non-3D array".into()))?;
                Ok(View::PadV {
                    base: Box::new(self.view_of(input, out)?),
                    left: *amount,
                    right: *amount,
                    dims: 3,
                    lens: vec![nz, ny, nx],
                    kind: *kind,
                    idxs: vec![],
                })
            }
            ExprKind::Crop3 { margin, input } => Ok(View::CropV {
                base: Box::new(self.view_of(input, out)?),
                margin: *margin,
                remaining: 3,
            }),
            ExprKind::Split { chunk, input } => {
                Ok(View::SplitV { base: Box::new(self.view_of(input, out)?), chunk: chunk.clone() })
            }
            ExprKind::Join { input } => {
                let inner = match self.typed.of(input) {
                    Type::Array(elem, _) => match elem.as_ref() {
                        Type::Array(_, m) => m.clone(),
                        other => return err(format!("join over non-nested array {other}")),
                    },
                    other => return err(format!("join over non-array {other}")),
                };
                Ok(View::JoinV { base: Box::new(self.view_of(input, out)?), inner })
            }
            ExprKind::ArrayCons { elem, .. } => {
                let kind = match self.typed.of(elem) {
                    Type::Scalar(k) => *k,
                    other => return err(format!("arrayCons of non-scalar {other}")),
                };
                let v = self.gen_scalar(elem, out)?;
                let v = self.bind_temp(v, kind, out);
                Ok(View::Broadcast(v, kind))
            }
            ExprKind::ToPrivate(inner) => self.materialize_private(inner, out),
            ExprKind::ToLocal(inner) => self.materialize_local(inner, out),
            ExprKind::Let { param, value, body } => {
                self.bind_let(param, value, out)?;
                self.view_of(body, out)
            }
            ExprKind::Call { f, .. } => {
                let kind = f.ret;
                let v = self.gen_scalar(e, out)?;
                Ok(View::Expr(v, kind))
            }
            ExprKind::ReduceSeq { .. } => {
                let kind = match self.typed.of(e) {
                    Type::Scalar(k) => *k,
                    other => return err(format!("reduce result not scalar: {other}")),
                };
                let v = self.gen_scalar(e, out)?;
                Ok(View::Expr(v, kind))
            }
            ExprKind::Map { .. } | ExprKind::Map2 { .. } | ExprKind::Map3 { .. } => {
                err("a map used as an input must be materialised with to_private \
                 (LIFT would fuse it; this generator requires explicit materialisation)")
            }
            ExprKind::WriteTo { .. } | ExprKind::Concat(_) | ExprKind::Skip { .. } => {
                err("WriteTo/Concat/Skip cannot appear in input (view) position")
            }
        }
    }

    /// Emits code computing `e` into the destination view `out_view`
    /// (`None` when `e` is pure side-effect).
    fn emit_into(
        &mut self,
        e: &ExprRef,
        out_view: Option<View>,
        out: &mut Vec<KStmt>,
    ) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Let { param, value, body } => {
                self.bind_let(param, value, out)?;
                self.emit_into(body, out_view, out)
            }
            ExprKind::WriteTo { dest, value } => {
                let dv = self.view_of(dest, out)?;
                self.emit_into(value, Some(dv), out)
            }
            ExprKind::Tuple(parts) if memory::is_side_effecting(e) => {
                for p in parts {
                    self.emit_into(p, None, out)?;
                }
                Ok(())
            }
            ExprKind::Concat(parts) => {
                let ov = out_view.ok_or_else(|| {
                    LowerError("concat needs a destination (wrap in WriteTo or allocate)".into())
                })?;
                let mut offset = KExpr::int(0);
                for p in parts {
                    if let ExprKind::Skip { len, .. } = &p.kind {
                        let l = self.gen_scalar(len, out)?;
                        offset = kadd(offset, l);
                        continue;
                    }
                    let pv = View::Gather {
                        base: Box::new(ov.clone()),
                        start: offset.clone(),
                        stride: KExpr::int(1),
                    };
                    self.emit_into(p, Some(pv), out)?;
                    let n = match self.typed.of(p) {
                        Type::Array(_, n) => n.clone(),
                        other => return err(format!("concat part is not an array: {other}")),
                    };
                    offset = kadd(offset, KExpr::from_arith(&n));
                }
                Ok(())
            }
            ExprKind::Skip { .. } => Ok(()), // generates no code (§IV-B)
            ExprKind::ArrayCons { elem, n } => {
                let ov = out_view
                    .ok_or_else(|| LowerError("arrayCons needs a destination".into()))?;
                let v = self.gen_scalar(elem, out)?;
                match n.as_cst() {
                    Some(1) => {
                        let slot = ov.access(KExpr::int(0))?;
                        out.push(slot.store(v)?);
                        Ok(())
                    }
                    _ => {
                        let kind = match self.typed.of(elem) {
                            Type::Scalar(k) => *k,
                            other => return err(format!("arrayCons of non-scalar {other}")),
                        };
                        let v = self.bind_temp(v, kind, out);
                        let var = self.names.fresh("c");
                        let slot = ov.access(KExpr::var(&var))?;
                        let body = vec![slot.store(v)?];
                        out.push(KStmt::For {
                            var,
                            begin: KExpr::int(0),
                            end: KExpr::from_arith(n),
                            step: KExpr::int(1),
                            body,
                        });
                        Ok(())
                    }
                }
            }
            ExprKind::Map { kind: MapKind::Seq, f, input } => {
                let iv = self.view_of(input, out)?;
                let n = match self.typed.of(input) {
                    Type::Array(_, n) => n.clone(),
                    other => return err(format!("map over non-array {other}")),
                };
                let var = self.names.fresh("i");
                let mut body = Vec::new();
                let elem_view = iv.access(KExpr::var(&var))?;
                self.bindings.insert(f.params[0].id, elem_view);
                if memory::is_side_effecting(&f.body) {
                    self.emit_into(&f.body, None, &mut body)?;
                } else {
                    let ov = out_view
                        .ok_or_else(|| LowerError("value-producing map needs a destination".into()))?;
                    let slot = ov.access(KExpr::var(&var))?;
                    self.emit_into(&f.body, Some(slot), &mut body)?;
                }
                out.push(KStmt::For {
                    var,
                    begin: KExpr::int(0),
                    end: KExpr::from_arith(&n),
                    step: KExpr::int(1),
                    body,
                });
                Ok(())
            }
            ExprKind::Map { kind: MapKind::Lcl, f, input } => {
                // one element per local work-item: idx = get_local_id(0)
                let iv = self.view_of(input, out)?;
                let n = match self.typed.of(input) {
                    Type::Array(_, n) => n.clone(),
                    other => return err(format!("map over non-array {other}")),
                };
                match &self.lcl_size {
                    None => self.lcl_size = Some(n.clone()),
                    Some(prev) if *prev == n => {}
                    Some(prev) => {
                        return err(format!(
                            "all Lcl maps in a kernel must share one extent: {prev} vs {n}"
                        ))
                    }
                }
                let lid = KExpr::LocalId(0);
                let elem_view = iv.access(lid.clone())?;
                self.bindings.insert(f.params[0].id, elem_view);
                let mut inner_stmts = Vec::new();
                if memory::is_side_effecting(&f.body) {
                    self.emit_into(&f.body, None, &mut inner_stmts)?;
                } else {
                    let ov = out_view.ok_or_else(|| {
                        LowerError("value-producing local map needs a destination".into())
                    })?;
                    let slot = ov.access(lid)?;
                    self.emit_into(&f.body, Some(slot), &mut inner_stmts)?;
                }
                out.append(&mut inner_stmts);
                Ok(())
            }
            ExprKind::Map { kind: MapKind::Glb, .. }
            | ExprKind::Map { kind: MapKind::Wrg, .. }
            | ExprKind::Map2 { kind: MapKind::Glb, .. }
            | ExprKind::Map3 { kind: MapKind::Glb, .. } => {
                err("nested Glb/Wrg maps are not supported; only the kernel's top-level map is group/global parallel")
            }
            ExprKind::Map2 { kind: _, .. } | ExprKind::Map3 { kind: _, .. } => {
                err("sequential or local map2/map3 inside a kernel is not supported")
            }
            ExprKind::ToPrivate(inner) => self.emit_into(inner, out_view, out),
            ExprKind::ToLocal(inner) => self.emit_into(inner, out_view, out),
            _ => {
                let ov = out_view
                    .ok_or_else(|| LowerError("expression needs a destination".into()))?;
                match self.typed.of(e).clone() {
                    // Array-valued layout expression (a slice, zip, param…):
                    // copy element-wise through its view.
                    Type::Array(_, n) => {
                        let iv = self.view_of(e, out)?;
                        let var = self.names.fresh("k");
                        let src = iv.access(KExpr::var(&var))?;
                        let dst = ov.access(KExpr::var(&var))?;
                        let body = vec![dst.store(src.as_scalar()?)?];
                        out.push(KStmt::For {
                            var,
                            begin: KExpr::int(0),
                            end: KExpr::from_arith(&n),
                            step: KExpr::int(1),
                            body,
                        });
                        Ok(())
                    }
                    // Scalar-producing expression stored through the view.
                    _ => {
                        let v = self.gen_scalar(e, out)?;
                        out.push(ov.store(v)?);
                        Ok(())
                    }
                }
            }
        }
    }
}

/// Replaces characters that cannot appear in C identifiers.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

/// Substitutes `args` into a user-function body.
fn sexpr_to_kexpr(e: &SExpr, args: &[KExpr]) -> KExpr {
    match e {
        SExpr::Param(i) => args[*i].clone(),
        SExpr::Lit(l) => KExpr::Lit(*l),
        SExpr::Bin(op, a, b) => KExpr::bin(*op, sexpr_to_kexpr(a, args), sexpr_to_kexpr(b, args)),
        SExpr::Un(op, a) => KExpr::Un(*op, Box::new(sexpr_to_kexpr(a, args))),
        SExpr::Select(c, t, f) => {
            KExpr::select(sexpr_to_kexpr(c, args), sexpr_to_kexpr(t, args), sexpr_to_kexpr(f, args))
        }
        SExpr::Call(i, call_args) => {
            KExpr::Call(*i, call_args.iter().map(|a| sexpr_to_kexpr(a, args)).collect())
        }
        SExpr::Cast(k, a) => KExpr::Cast(*k, Box::new(sexpr_to_kexpr(a, args))),
    }
}

/// Extracts (nx, ny) from a 2-D array type.
fn dims2(t: &Type) -> Option<(ArithExpr, ArithExpr)> {
    let Type::Array(l1, ny) = t else { return None };
    let Type::Array(_, nx) = l1.as_ref() else { return None };
    Some((nx.clone(), ny.clone()))
}

/// Extracts (nx, ny, nz) from a 3-D array type.
fn dims3(t: &Type) -> Option<(ArithExpr, ArithExpr, ArithExpr)> {
    let Type::Array(l2, nz) = t else { return None };
    let Type::Array(l1, ny) = l2.as_ref() else { return None };
    let Type::Array(_, nx) = l1.as_ref() else { return None };
    Some((nx.clone(), ny.clone(), nz.clone()))
}

/// Collects size variables appearing in embedded arithmetic (e.g.
/// `SizeVal`, slice strides) that never surface in any type.
fn size_vars_of_expr(e: &ExprRef, out: &mut Vec<String>) {
    let mut add = |a: &ArithExpr| {
        for v in a.free_vars() {
            if !v.starts_with("skip") && !out.contains(&v) {
                out.push(v);
            }
        }
    };
    match &e.kind {
        ExprKind::SizeVal(a) | ExprKind::Iota { n: a } => add(a),
        ExprKind::Slice { array, start, stride, len } => {
            add(stride);
            add(len);
            size_vars_of_expr(array, out);
            size_vars_of_expr(start, out);
        }
        ExprKind::Split { chunk, input } => {
            add(chunk);
            size_vars_of_expr(input, out);
        }
        ExprKind::ArrayCons { elem, n } => {
            add(n);
            size_vars_of_expr(elem, out);
        }
        ExprKind::Param(_) | ExprKind::Literal(_) => {}
        ExprKind::Call { args, .. } => args.iter().for_each(|a| size_vars_of_expr(a, out)),
        ExprKind::Tuple(parts)
        | ExprKind::Zip(parts)
        | ExprKind::Zip2(parts)
        | ExprKind::Zip3(parts)
        | ExprKind::Concat(parts) => parts.iter().for_each(|p| size_vars_of_expr(p, out)),
        ExprKind::Get { tuple: x, .. }
        | ExprKind::ToPrivate(x)
        | ExprKind::ToLocal(x)
        | ExprKind::Join { input: x }
        | ExprKind::Slide { input: x, .. }
        | ExprKind::Slide2 { input: x, .. }
        | ExprKind::Slide3 { input: x, .. }
        | ExprKind::Pad { input: x, .. }
        | ExprKind::Pad2 { input: x, .. }
        | ExprKind::Pad3 { input: x, .. }
        | ExprKind::Crop3 { input: x, .. }
        | ExprKind::Skip { len: x, .. } => size_vars_of_expr(x, out),
        ExprKind::At { array, index } => {
            size_vars_of_expr(array, out);
            size_vars_of_expr(index, out);
        }
        ExprKind::Let { value, body, .. } => {
            size_vars_of_expr(value, out);
            size_vars_of_expr(body, out);
        }
        ExprKind::Map { f, input, .. }
        | ExprKind::Map2 { f, input, .. }
        | ExprKind::Map3 { f, input, .. } => {
            size_vars_of_expr(input, out);
            size_vars_of_expr(&f.body, out);
        }
        ExprKind::ReduceSeq { f, init, input } => {
            size_vars_of_expr(init, out);
            size_vars_of_expr(input, out);
            size_vars_of_expr(&f.body, out);
        }
        ExprKind::WriteTo { dest, value } => {
            size_vars_of_expr(dest, out);
            size_vars_of_expr(value, out);
        }
    }
}

/// Collects symbolic size variables mentioned in a type.
fn size_vars_of_type(t: &Type, out: &mut Vec<String>) {
    match t {
        Type::Scalar(_) => {}
        Type::Tuple(parts) => parts.iter().for_each(|p| size_vars_of_type(p, out)),
        Type::Array(e, n) => {
            for v in n.free_vars() {
                if !v.starts_with("skip") && !out.contains(&v) {
                    out.push(v);
                }
            }
            size_vars_of_type(e, out);
        }
    }
}

/// Lowers a LIFT program to a kernel.
///
/// `params` are the program inputs (buffers and scalars); `body` must be a
/// parallel `map`/`map3`, optionally wrapped in `WriteTo` and `let`s.
/// `real` resolves the precision-generic `Real` scalar kind.
pub fn lower_kernel(
    name: &str,
    params: &[Rc<ParamDef>],
    body: &ExprRef,
    real: ScalarKind,
) -> Result<LoweredKernel, LowerError> {
    let typed = check(body)?;
    let mut kparams: Vec<KernelParam> = Vec::new();
    let mut args: Vec<ArgSpec> = Vec::new();
    let mut ctx =
        Ctx { typed: &typed, bindings: HashMap::new(), names: NameGen::new(), lcl_size: None };

    // 1. user parameters
    let mut size_vars: Vec<String> = Vec::new();
    for p in params {
        let ty =
            p.ty.clone()
                .ok_or_else(|| LowerError(format!("kernel input `{}` must be typed", p.name)))?;
        size_vars_of_type(&ty, &mut size_vars);
        match &ty {
            Type::Scalar(k) => {
                kparams.push(KernelParam::scalar(sanitize(&p.name), *k));
            }
            _ => {
                let kind = ty.scalar_kind().ok_or_else(|| {
                    LowerError(format!("buffer `{}` must have a uniform scalar kind", p.name))
                })?;
                kparams.push(KernelParam::global_buf(sanitize(&p.name), kind));
            }
        }
        args.push(ArgSpec::Input(p.id, p.name.clone()));
        let idx = kparams.len() - 1;
        let view = match &ty {
            Type::Scalar(k) => View::Expr(KExpr::var(sanitize(&p.name)), *k),
            _ => View::mem(MemRef::Param(idx), ty.clone()),
        };
        ctx.bindings.insert(p.id, view);
    }

    // also collect size vars from every inferred type (e.g. iota/slice
    // bounds) and from arithmetic embedded in the program (`SizeVal`,
    // slice strides) that never surfaces in a type
    for t in typed.expr.values() {
        size_vars_of_type(t, &mut size_vars);
    }
    size_vars_of_expr(body, &mut size_vars);
    size_vars.sort();
    size_vars.dedup();
    // remove size vars that shadow a scalar user parameter name
    size_vars.retain(|v| !kparams.iter().any(|p| p.name == *v));
    for v in &size_vars {
        kparams.push(KernelParam::scalar(v.clone(), ScalarKind::I32));
        args.push(ArgSpec::Size(v.clone()));
    }

    // 2. peel the optional top-level WriteTo
    let mut stmts: Vec<KStmt> = Vec::new();
    let (outer_dest, map_expr) = match &body.kind {
        ExprKind::WriteTo { dest, value } => (Some(dest.clone()), value.clone()),
        _ => (None, body.clone()),
    };

    // 3. decide output allocation. dims: 1 = 1-D global, 3 = 3-D global,
    // 0 = workgroup mode (one group per element).
    let (f, input, dims) = match &map_expr.kind {
        ExprKind::Map { kind: MapKind::Glb, f, input } => (f, input, 1u8),
        ExprKind::Map2 { kind: MapKind::Glb, f, input } => (f, input, 2u8),
        ExprKind::Map3 { kind: MapKind::Glb, f, input } => (f, input, 3u8),
        ExprKind::Map { kind: MapKind::Wrg, f, input } => (f, input, 0u8),
        _ => return err(
            "kernel body must be a top-level parallel map/map3/mapWrg (optionally in a WriteTo)",
        ),
    };
    let map_ty = typed.of(&map_expr).clone();
    let plan = memory::plan_output(&f.body, &map_ty, &typed)?;
    let out_root: Option<View> = if let Some(dest) = &outer_dest {
        Some(ctx.view_of(dest, &mut stmts)?)
    } else {
        match &plan {
            OutputPlan::InPlace => None,
            OutputPlan::Alloc(ty) => {
                let kind = ty.scalar_kind().ok_or_else(|| {
                    LowerError("output type must have a uniform scalar kind".into())
                })?;
                kparams.push(KernelParam::global_buf("out", kind));
                args.push(ArgSpec::Output("out".into(), ty.clone()));
                Some(View::mem(MemRef::Param(kparams.len() - 1), ty.clone()))
            }
        }
    };

    // 4. NDRange bounds and guards
    let input_ty = typed.of(input).clone();
    let mut global_size: Vec<ArithExpr> = match dims {
        1 => {
            let n = match &input_ty {
                Type::Array(_, n) => n.clone(),
                other => return err(format!("map over non-array {other}")),
            };
            vec![n]
        }
        2 => {
            let (nx, ny) =
                dims2(&input_ty).ok_or_else(|| LowerError("map2 over non-2D array".into()))?;
            vec![nx, ny]
        }
        3 => {
            let (nx, ny, nz) =
                dims3(&input_ty).ok_or_else(|| LowerError("map3 over non-3D array".into()))?;
            vec![nx, ny, nz]
        }
        _ => {
            // workgroup mode: one group per chunk; the launcher runs exactly
            // G groups of the kernel's local size, so no guard is needed.
            let g = match &input_ty {
                Type::Array(_, n) => n.clone(),
                other => return err(format!("mapWrg over non-array {other}")),
            };
            vec![g]
        }
    };
    if dims != 0 {
        for (d, n) in global_size.iter().enumerate() {
            stmts.push(KStmt::return_if(KExpr::bin(
                BinOp::Ge,
                KExpr::GlobalId(d as u8),
                KExpr::from_arith(n),
            )));
        }
    }

    // 5. bind the element and emit the body
    let input_view = ctx.view_of(input, &mut stmts)?;
    let (elem_view, elem_out) = match dims {
        1 => {
            let gid = KExpr::GlobalId(0);
            let ev = input_view.access(gid.clone())?;
            let ov = match &out_root {
                Some(v) => Some(v.clone().access(gid)?),
                None => None,
            };
            (ev, ov)
        }
        2 => {
            let (gx, gy) = (KExpr::GlobalId(0), KExpr::GlobalId(1));
            let ev = input_view.access(gy.clone())?.access(gx.clone())?;
            let ov = match &out_root {
                Some(v) => Some(v.clone().access(gy)?.access(gx)?),
                None => None,
            };
            (ev, ov)
        }
        3 => {
            let (gx, gy, gz) = (KExpr::GlobalId(0), KExpr::GlobalId(1), KExpr::GlobalId(2));
            let ev = input_view.access(gz.clone())?.access(gy.clone())?.access(gx.clone())?;
            let ov = match &out_root {
                Some(v) => Some(v.clone().access(gz)?.access(gy)?.access(gx)?),
                None => None,
            };
            (ev, ov)
        }
        _ => {
            let grp = KExpr::GroupId(0);
            let ev = input_view.access(grp.clone())?;
            let ov = match &out_root {
                Some(v) => Some(v.clone().access(grp)?),
                None => None,
            };
            (ev, ov)
        }
    };
    ctx.bindings.insert(f.params[0].id, elem_view);
    if memory::is_side_effecting(&f.body) {
        ctx.emit_into(&f.body, None, &mut stmts)?;
    } else {
        ctx.emit_into(&f.body, elem_out, &mut stmts)?;
    }

    let mut local_size = None;
    if dims == 0 {
        let t = ctx
            .lcl_size
            .clone()
            .ok_or_else(|| LowerError("a mapWrg kernel needs at least one mapLcl inside".into()))?;
        // total work-items = groups × local size
        let g = global_size.pop().expect("one dim");
        global_size = vec![g * t.clone()];
        local_size = Some(t);
    }
    let work_dim = if dims == 0 { 1 } else { dims };
    let kernel =
        Kernel { name: name.into(), params: kparams, body: stmts, work_dim }.resolve_real(real);
    Ok(LoweredKernel { kernel, args, global_size, local_size })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funs;
    use crate::ir::*;
    use crate::scalar::Lit;

    #[test]
    fn simple_map_lowers_with_allocated_output() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let prog = map_glb(a.to_expr(), "x", |x| call(&funs::add(), vec![x.clone(), x]));
        let lk = lower_kernel("k", &[a], &prog, ScalarKind::F32).unwrap();
        assert_eq!(lk.kernel.work_dim, 1);
        assert_eq!(lk.global_size, vec![ArithExpr::var("N")]);
        // params: a, N, out
        assert_eq!(lk.kernel.params.len(), 3);
        assert!(matches!(lk.args[2], ArgSpec::Output(_, _)));
        // must contain a store to the out buffer
        let has_store =
            lk.kernel.body.iter().any(|s| matches!(s, KStmt::Store { mem: MemRef::Param(2), .. }));
        assert!(has_store, "body: {:?}", lk.kernel.body);
    }

    #[test]
    fn zip_map_reads_both_inputs() {
        let a = ParamDef::typed("A", Type::array(Type::real(), "N"));
        let b = ParamDef::typed("B", Type::array(Type::real(), "N"));
        let prog = map_glb(zip(vec![a.to_expr(), b.to_expr()]), "p", |p| {
            call(&funs::add(), vec![get(p.clone(), 0), get(p, 1)])
        });
        let lk = lower_kernel("sum2", &[a, b], &prog, ScalarKind::F32).unwrap();
        let src = format!("{:?}", lk.kernel.body);
        assert!(src.contains("Param(0)") && src.contains("Param(1)"), "{src}");
    }

    #[test]
    fn in_place_concat_skip_idiom() {
        // Map(idx => WriteTo(data, Concat(Skip(idx), ArrayCons(v,1), Skip(rest)))) << indices
        let indices = ParamDef::typed("indices", Type::array(Type::i32(), "numB"));
        let data = ParamDef::typed("data", Type::array(Type::real(), "N"));
        let d2 = data.clone();
        let prog = map_glb(indices.to_expr(), "idx", move |idx| {
            let upd = call(&funs::add(), vec![at(d2.to_expr(), idx.clone()), lit(Lit::real(1.0))]);
            write_to(
                d2.to_expr(),
                concat(vec![
                    skip(idx.clone(), Type::real()),
                    array_cons(upd, 1usize),
                    skip(call(&funs::restlen(), vec![size_val("N"), idx]), Type::real()),
                ]),
            )
        });
        let lk = lower_kernel("inplace", &[indices, data], &prog, ScalarKind::F32).unwrap();
        // No out param was allocated: params are indices, data, N, numB
        assert!(lk.args.iter().all(|a| !matches!(a, ArgSpec::Output(_, _))));
        // There is exactly one global store, into `data` (param index 1).
        fn count_stores(b: &[KStmt], n: &mut usize) {
            for s in b {
                match s {
                    KStmt::Store { mem: MemRef::Param(1), .. } => *n += 1,
                    KStmt::Store { .. } => panic!("store to unexpected buffer"),
                    KStmt::For { body, .. } => count_stores(body, n),
                    KStmt::If { then_, else_, .. } => {
                        count_stores(then_, n);
                        count_stores(else_, n);
                    }
                    _ => {}
                }
            }
        }
        let mut n = 0;
        count_stores(&lk.kernel.body, &mut n);
        assert_eq!(n, 1);
    }

    #[test]
    fn map3_stencil_lowers_to_3d_kernel() {
        let prev = ParamDef::typed("prev", Type::array3(Type::real(), "Nx", "Ny", "Nz"));
        let curr = ParamDef::typed("curr", Type::array3(Type::real(), "Nx", "Ny", "Nz"));
        let c2 = curr.clone();
        let prog = map3_glb(
            zip3(vec![
                prev.to_expr(),
                slide3(3, 1, pad3(1, PadKind::Constant(Lit::real(0.0)), c2.to_expr())),
            ]),
            "m",
            |m| {
                let w = get(m.clone(), 1);
                let center = at(at(at(w, lit(Lit::i32(1))), lit(Lit::i32(1))), lit(Lit::i32(1)));
                call(&funs::sub(), vec![center, get(m, 0)])
            },
        );
        let lk = lower_kernel("st", &[prev, curr], &prog, ScalarKind::F64).unwrap();
        assert_eq!(lk.kernel.work_dim, 3);
        assert_eq!(lk.global_size.len(), 3);
        assert_eq!(lk.global_size[0], ArithExpr::var("Nx"));
    }

    #[test]
    fn reduce_seq_generates_loop() {
        let a = ParamDef::typed("a", Type::array(Type::real(), 8usize));
        let prog = map_glb(slide(3, 1, a.to_expr()), "w", |w| {
            reduce_seq(lit(Lit::real(0.0)), w, |acc, x| call(&funs::add(), vec![acc, x]))
        });
        let lk = lower_kernel("red", &[a], &prog, ScalarKind::F32).unwrap();
        let has_for = lk.kernel.body.iter().any(|s| matches!(s, KStmt::For { .. }));
        assert!(has_for);
    }

    #[test]
    fn multi_output_tuple_of_writeto() {
        let idxs = ParamDef::typed("idxs", Type::array(Type::i32(), "numB"));
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let b = ParamDef::typed("b", Type::array(Type::real(), "N"));
        let (a2, b2) = (a.clone(), b.clone());
        let prog = map_glb(idxs.to_expr(), "idx", move |idx| {
            tuple(vec![
                write_to(at(a2.to_expr(), idx.clone()), lit(Lit::real(1.0))),
                write_to(at(b2.to_expr(), idx), lit(Lit::real(2.0))),
            ])
        });
        let lk = lower_kernel("multi", &[idxs, a, b], &prog, ScalarKind::F32).unwrap();
        let src = format!("{:?}", lk.kernel.body);
        // stores into both buffers
        assert!(src.matches("Store").count() >= 2, "{src}");
        assert!(lk.args.iter().all(|x| !matches!(x, ArgSpec::Output(_, _))));
    }

    #[test]
    fn rejects_untyped_kernel_input() {
        let p = ParamDef::untyped("x");
        let prog = map_glb(p.to_expr(), "e", |e| e);
        assert!(lower_kernel("bad", &[p], &prog, ScalarKind::F32).is_err());
    }

    #[test]
    fn rejects_non_map_body() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let prog = a.to_expr();
        assert!(lower_kernel("bad", &[a], &prog, ScalarKind::F32).is_err());
    }

    #[test]
    fn size_vars_become_scalar_params() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let prog = map_glb(a.to_expr(), "x", |x| x);
        let lk = lower_kernel("k", &[a], &prog, ScalarKind::F32).unwrap();
        assert!(lk.kernel.params.iter().any(|p| p.name == "N" && !p.is_buffer));
    }
}

//! Host-side primitives and host-code generation (§IV-A, Table I).
//!
//! The paper adds four primitives for orchestrating multi-kernel
//! applications from within LIFT: `OclKernel` wraps a device kernel,
//! `ToGPU`/`ToHost` move data, and `WriteTo` declares that a kernel's result
//! lives in one of its input buffers (in-place). This module provides those
//! primitives as a small host expression language, a compiler from host
//! expressions to a flat command list (`HostProgram`), and an emitter that
//! prints the equivalent OpenCL host C code.
//!
//! The command list is executed by the `vgpu` crate's host runtime; the
//! printed C is the inspectable artifact (Table I's host rows).

use crate::arith::ArithExpr;
use crate::ir::{ExprRef, ParamDef, ParamId};
use crate::lower::{lower_kernel, ArgSpec, LowerError, LoweredKernel};
use crate::opencl;
use crate::types::{ScalarKind, Type};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// A device-kernel definition wrapped by `OclKernel`.
#[derive(Debug)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Kernel inputs (typed).
    pub params: Vec<Rc<ParamDef>>,
    /// Kernel body (a top-level parallel map, see [`crate::lower`]).
    pub body: ExprRef,
}

impl KernelDef {
    /// Creates a kernel definition.
    pub fn new(name: impl Into<String>, params: Vec<Rc<ParamDef>>, body: ExprRef) -> Rc<Self> {
        Rc::new(KernelDef { name: name.into(), params, body })
    }
}

/// Host expressions.
#[derive(Debug, Clone)]
pub enum HostExpr {
    /// A host-memory input (by its program parameter).
    Input(Rc<ParamDef>),
    /// Reference to a `Let`-bound host value.
    Ref(Rc<ParamDef>),
    /// Transfer host → device (identity semantics; emits a write-buffer
    /// call).
    ToGpu(Box<HostExpr>),
    /// Transfer device → host (identity semantics; emits a read-buffer
    /// call).
    ToHost(Box<HostExpr>),
    /// Launch a kernel with the given arguments (`OclKernel` in the paper).
    Launch {
        /// Kernel to launch.
        kernel: Rc<KernelDef>,
        /// Arguments, one per kernel input, in order.
        args: Vec<HostExpr>,
    },
    /// Declares that `value` (a kernel launch) writes its result into
    /// `dest`; the expression's result is `dest`.
    WriteTo {
        /// Destination device value.
        dest: Box<HostExpr>,
        /// The computation writing into it.
        value: Box<HostExpr>,
    },
    /// `val p = value; body`.
    Let {
        /// Binder.
        param: Rc<ParamDef>,
        /// Bound host expression.
        value: Box<HostExpr>,
        /// Body.
        body: Box<HostExpr>,
    },
}

/// Host input.
pub fn input(p: &Rc<ParamDef>) -> HostExpr {
    HostExpr::Input(p.clone())
}

/// `ToGPU(e)`.
pub fn to_gpu(e: HostExpr) -> HostExpr {
    HostExpr::ToGpu(Box::new(e))
}

/// `ToHost(e)`.
pub fn to_host(e: HostExpr) -> HostExpr {
    HostExpr::ToHost(Box::new(e))
}

/// `OclKernel(kernel, args…)`.
pub fn ocl_kernel(kernel: &Rc<KernelDef>, args: Vec<HostExpr>) -> HostExpr {
    HostExpr::Launch { kernel: kernel.clone(), args }
}

/// Host-level `WriteTo(dest, value)`.
pub fn host_write_to(dest: HostExpr, value: HostExpr) -> HostExpr {
    HostExpr::WriteTo { dest: Box::new(dest), value: Box::new(value) }
}

/// `val name = value; body(name)`.
pub fn host_let(name: &str, value: HostExpr, body: impl FnOnce(HostExpr) -> HostExpr) -> HostExpr {
    let p = ParamDef::untyped(name);
    let b = body(HostExpr::Ref(p.clone()));
    HostExpr::Let { param: p, value: Box::new(value), body: Box::new(b) }
}

/// One argument of a kernel launch command.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchArg {
    /// A device buffer slot.
    Buf(String),
    /// A scalar taken from the host input with this name.
    ScalarInput(String),
    /// A symbolic size variable resolved from the launch environment.
    SizeVar(String),
}

/// A contiguous element range (symbolic offset + length) of a host array
/// or device buffer, used by sharded transfer commands.
#[derive(Debug, Clone, PartialEq)]
pub struct BufRange {
    /// First element of the range.
    pub off: ArithExpr,
    /// Number of elements.
    pub len: ArithExpr,
}

/// Flat host commands (what `clEnqueue*` calls the generator emits).
///
/// Every command carries a `device` placement (queue index). The
/// single-device generator always emits placement 0; the domain-sharding
/// transform re-places commands onto slab devices and adds
/// [`HostCmd::DevCopy`] halo exchanges between them.
#[derive(Debug, Clone, PartialEq)]
pub enum HostCmd {
    /// Allocate a device buffer.
    Alloc {
        /// Device slot name.
        dev: String,
        /// Buffer type (symbolic length).
        ty: Type,
        /// Device placement (queue index).
        device: usize,
    },
    /// `enqueueWriteBuffer`: copy a host input to a device slot.
    CopyIn {
        /// Host input name.
        host: String,
        /// Device slot.
        dev: String,
        /// Buffer type.
        ty: Type,
        /// Device placement (queue index).
        device: usize,
        /// Optional source range within the host array (whole array when
        /// absent).
        src: Option<BufRange>,
        /// Optional element offset in the device buffer. When present the
        /// slot must already exist (from an [`HostCmd::Alloc`]) and the
        /// copy writes a region of it; when absent the copy creates the
        /// slot.
        dst_off: Option<ArithExpr>,
        /// True when this copy re-uploads data another device already
        /// holds (a replicated coefficient table). Replicas are accounted
        /// under `vgpu.halo.replicate.*` instead of `vgpu.xfer.to_gpu.*`,
        /// keeping host-transfer byte totals identical to the unsharded
        /// program.
        replica: bool,
    },
    /// `enqueueNDRangeKernel` (with an implicit dependency on previous
    /// commands touching the same buffers — the in-order queue of OpenCL).
    Launch {
        /// Index into [`HostProgram::kernels`].
        kernel: usize,
        /// Arguments in kernel-parameter order.
        args: Vec<LaunchArg>,
        /// Global size per dimension (innermost first).
        global_size: Vec<ArithExpr>,
        /// Device placement (queue index).
        device: usize,
    },
    /// `enqueueReadBuffer`: copy a device slot back to a host output name.
    CopyOut {
        /// Device slot.
        dev: String,
        /// Host output name.
        host: String,
        /// Buffer type.
        ty: Type,
        /// Device placement (queue index).
        device: usize,
        /// Optional source range within the device buffer (whole buffer
        /// when absent).
        src: Option<BufRange>,
        /// Optional element offset within the host output this range lands
        /// at (slab assembly). Requires `host_len`.
        dst_off: Option<ArithExpr>,
        /// Total host output length, when ranges from several devices
        /// assemble into one output.
        host_len: Option<ArithExpr>,
    },
    /// `enqueueCopyBuffer` across queues: an inter-device (halo) copy.
    /// Accounted on the destination device under `vgpu.halo.*` — never
    /// `vgpu.xfer.*`.
    DevCopy {
        /// Source device placement.
        src_device: usize,
        /// Source slot (on `src_device`).
        src: String,
        /// First element copied from the source buffer.
        src_off: ArithExpr,
        /// Destination device placement.
        dst_device: usize,
        /// Destination slot (on `dst_device`).
        dst: String,
        /// First element written in the destination buffer.
        dst_off: ArithExpr,
        /// Number of elements copied.
        len: ArithExpr,
    },
}

impl HostCmd {
    /// A whole-array host→device copy on device 0 (the single-device
    /// generator's form).
    pub fn copy_in(host: impl Into<String>, dev: impl Into<String>, ty: Type) -> HostCmd {
        HostCmd::CopyIn {
            host: host.into(),
            dev: dev.into(),
            ty,
            device: 0,
            src: None,
            dst_off: None,
            replica: false,
        }
    }

    /// A whole-buffer device→host copy on device 0.
    pub fn copy_out(dev: impl Into<String>, host: impl Into<String>, ty: Type) -> HostCmd {
        HostCmd::CopyOut {
            dev: dev.into(),
            host: host.into(),
            ty,
            device: 0,
            src: None,
            dst_off: None,
            host_len: None,
        }
    }
}

/// A compiled host program.
#[derive(Debug)]
pub struct HostProgram {
    /// All lowered kernels, indexed by [`HostCmd::Launch::kernel`].
    pub kernels: Vec<LoweredKernel>,
    /// Commands in execution order (in-order queue semantics).
    pub cmds: Vec<HostCmd>,
    /// Name of the host value the program's result ends up in.
    pub result: String,
}

#[derive(Clone, Debug)]
enum HVal {
    Host { name: String, ty: Option<Type> },
    Dev { slot: String, ty: Type },
    Unit,
}

struct HostCtx {
    kernels: Vec<LoweredKernel>,
    cmds: Vec<HostCmd>,
    bindings: HashMap<ParamId, HVal>,
    copied: HashMap<String, HVal>,
    counter: usize,
    real: ScalarKind,
}

impl HostCtx {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{prefix}{n}")
    }

    fn eval(&mut self, e: &HostExpr) -> Result<HVal, LowerError> {
        match e {
            HostExpr::Input(p) => Ok(HVal::Host { name: p.name.clone(), ty: p.ty.clone() }),
            HostExpr::Ref(p) => self
                .bindings
                .get(&p.id)
                .cloned()
                .ok_or_else(|| LowerError(format!("unbound host value `{}`", p.name))),
            HostExpr::Let { param, value, body } => {
                let v = self.eval(value)?;
                self.bindings.insert(param.id, v);
                self.eval(body)
            }
            HostExpr::ToGpu(inner) => {
                let v = self.eval(inner)?;
                match v {
                    HVal::Host { name, ty } => {
                        if let Some(existing) = self.copied.get(&name) {
                            return Ok(existing.clone());
                        }
                        let ty = ty.ok_or_else(|| {
                            LowerError(format!("host input `{name}` has no declared type"))
                        })?;
                        if matches!(ty, Type::Scalar(_)) {
                            return Err(LowerError(format!(
                                "ToGPU of scalar `{name}` — scalars are passed as kernel arguments"
                            )));
                        }
                        let dev = format!("d_{name}");
                        self.cmds.push(HostCmd::copy_in(name.clone(), dev.clone(), ty.clone()));
                        let hv = HVal::Dev { slot: dev, ty };
                        self.copied.insert(name, hv.clone());
                        Ok(hv)
                    }
                    HVal::Dev { .. } => Ok(v), // already on the device: identity
                    HVal::Unit => Err(LowerError("ToGPU of a unit value".into())),
                }
            }
            HostExpr::ToHost(inner) => {
                let v = self.eval(inner)?;
                match v {
                    HVal::Dev { slot, ty } => {
                        let host = format!("h_{slot}");
                        self.cmds.push(HostCmd::copy_out(slot, host.clone(), ty.clone()));
                        Ok(HVal::Host { name: host, ty: Some(ty) })
                    }
                    HVal::Host { .. } => Ok(v),
                    HVal::Unit => Err(LowerError("ToHost of a unit value".into())),
                }
            }
            HostExpr::WriteTo { dest, value } => {
                let d = self.eval(dest)?;
                let _ = self.eval(value)?;
                Ok(d)
            }
            HostExpr::Launch { kernel, args } => {
                if args.len() != kernel.params.len() {
                    return Err(LowerError(format!(
                        "kernel `{}` expects {} arguments, got {}",
                        kernel.name,
                        kernel.params.len(),
                        args.len()
                    )));
                }
                let lowered = lower_kernel(&kernel.name, &kernel.params, &kernel.body, self.real)?;
                let mut launch_args = Vec::with_capacity(lowered.args.len());
                let mut out_val = HVal::Unit;
                let vals: Result<Vec<HVal>, LowerError> =
                    args.iter().map(|a| self.eval(a)).collect();
                let vals = vals?;
                for spec in &lowered.args {
                    match spec {
                        ArgSpec::Input(pid, pname) => {
                            let pos =
                                kernel.params.iter().position(|p| p.id == *pid).ok_or_else(
                                    || LowerError(format!("lost parameter `{pname}`")),
                                )?;
                            match &vals[pos] {
                                HVal::Dev { slot, .. } => launch_args.push(LaunchArg::Buf(slot.clone())),
                                HVal::Host { name, ty: Some(Type::Scalar(_)) } => {
                                    launch_args.push(LaunchArg::ScalarInput(name.clone()))
                                }
                                HVal::Host { name, .. } => {
                                    return Err(LowerError(format!(
                                        "argument `{name}` of kernel `{}` is in host memory; wrap it in ToGPU",
                                        kernel.name
                                    )))
                                }
                                HVal::Unit => {
                                    return Err(LowerError(format!(
                                        "argument {pos} of kernel `{}` produced no value; \
                                         wrap the producing launch in WriteTo to name its output",
                                        kernel.name
                                    )))
                                }
                            }
                        }
                        ArgSpec::Size(n) => launch_args.push(LaunchArg::SizeVar(n.clone())),
                        ArgSpec::Output(_, ty) => {
                            let slot = self.fresh("d_out");
                            self.cmds.push(HostCmd::Alloc {
                                dev: slot.clone(),
                                ty: ty.clone(),
                                device: 0,
                            });
                            launch_args.push(LaunchArg::Buf(slot.clone()));
                            out_val = HVal::Dev { slot, ty: ty.clone() };
                        }
                    }
                }
                let kid = self.kernels.len();
                self.kernels.push(lowered.clone());
                self.cmds.push(HostCmd::Launch {
                    kernel: kid,
                    args: launch_args,
                    global_size: lowered.global_size.clone(),
                    device: 0,
                });
                Ok(out_val)
            }
        }
    }
}

/// Compiles a host expression into a flat host program.
///
/// `real` selects the floating-point precision of all generated kernels.
pub fn compile_host(e: &HostExpr, real: ScalarKind) -> Result<HostProgram, LowerError> {
    let mut ctx = HostCtx {
        kernels: Vec::new(),
        cmds: Vec::new(),
        bindings: HashMap::new(),
        copied: HashMap::new(),
        counter: 0,
        real,
    };
    let result = ctx.eval(e)?;
    let result = match result {
        HVal::Host { name, .. } => name,
        HVal::Dev { slot, .. } => slot,
        HVal::Unit => String::from("(unit)"),
    };
    Ok(HostProgram { kernels: ctx.kernels, cmds: ctx.cmds, result })
}

fn bytes_expr(ty: &Type) -> String {
    let kind = ty.scalar_kind().map(|k| k.c_name()).unwrap_or("char");
    format!("{} * sizeof({kind})", ty.scalar_count())
}

fn range_bytes(ty: &Type, len: &ArithExpr) -> String {
    let kind = ty.scalar_kind().map(|k| k.c_name()).unwrap_or("char");
    format!("({len}) * sizeof({kind})")
}

/// The queue expression for a device placement: the familiar `queue` for
/// device 0 (keeping single-device emission unchanged), `queues[d]`
/// otherwise.
fn queue(device: usize) -> String {
    if device == 0 {
        "queue".into()
    } else {
        format!("queues[{device}]")
    }
}

/// Prints the host program as OpenCL host C code (plus all kernel sources),
/// mirroring the "Generated code" column of Table I.
pub fn emit_host_c(p: &HostProgram) -> String {
    let mut out = String::new();
    out.push_str("// ---- device kernels ----\n");
    for lk in &p.kernels {
        out.push_str(&opencl::emit_kernel(&lk.kernel));
        out.push('\n');
    }
    out.push_str("// ---- host code ----\n");
    for cmd in &p.cmds {
        match cmd {
            HostCmd::Alloc { dev, ty, .. } => {
                let _ = writeln!(
                    out,
                    "cl_mem {dev} = clCreateBuffer(ctx, CL_MEM_READ_WRITE, {}, NULL, &err);",
                    bytes_expr(ty)
                );
            }
            HostCmd::CopyIn { host, dev, ty, device, src, dst_off, .. } => {
                let q = queue(*device);
                if dst_off.is_none() {
                    let sz = match src {
                        Some(r) => range_bytes(ty, &r.len),
                        None => bytes_expr(ty),
                    };
                    let _ = writeln!(
                        out,
                        "cl_mem {dev} = clCreateBuffer(ctx, CL_MEM_READ_WRITE, {sz}, NULL, &err);",
                    );
                }
                let elem = ty.scalar_kind().map(|k| k.c_name()).unwrap_or("char");
                let (off, sz, from) = match (src, dst_off) {
                    (Some(r), d) => (
                        d.as_ref()
                            .map(|o| format!("({o}) * sizeof({elem})"))
                            .unwrap_or_else(|| "0".into()),
                        range_bytes(ty, &r.len),
                        format!("{host} + ({})", r.off),
                    ),
                    (None, Some(o)) => {
                        (format!("({o}) * sizeof({elem})"), bytes_expr(ty), host.clone())
                    }
                    (None, None) => ("0".into(), bytes_expr(ty), host.clone()),
                };
                let _ = writeln!(
                    out,
                    "clEnqueueWriteBuffer({q}, {dev}, CL_TRUE, {off}, {sz}, {from}, 0, NULL, NULL);",
                );
            }
            HostCmd::Launch { kernel, args, global_size, device } => {
                let name = &p.kernels[*kernel].kernel.name;
                for (i, a) in args.iter().enumerate() {
                    match a {
                        LaunchArg::Buf(b) => {
                            let _ =
                                writeln!(out, "clSetKernelArg({name}, {i}, sizeof(cl_mem), &{b});");
                        }
                        LaunchArg::ScalarInput(s) => {
                            let _ =
                                writeln!(out, "clSetKernelArg({name}, {i}, sizeof({s}), &{s});");
                        }
                        LaunchArg::SizeVar(s) => {
                            let _ =
                                writeln!(out, "clSetKernelArg({name}, {i}, sizeof(int), &{s});");
                        }
                    }
                }
                let dims = global_size.len();
                let gs: Vec<String> = global_size.iter().map(|g| g.to_string()).collect();
                let _ = writeln!(out, "size_t global_{name}[{dims}] = {{{}}};", gs.join(", "));
                let _ = writeln!(
                    out,
                    "clEnqueueNDRangeKernel({}, {name}, {dims}, NULL, global_{name}, NULL, 0, NULL, NULL);",
                    queue(*device)
                );
            }
            HostCmd::CopyOut { dev, host, ty, device, src, dst_off, .. } => {
                let elem = ty.scalar_kind().map(|k| k.c_name()).unwrap_or("char");
                let (off, sz) = match src {
                    Some(r) => (format!("({}) * sizeof({elem})", r.off), range_bytes(ty, &r.len)),
                    None => ("0".into(), bytes_expr(ty)),
                };
                let to = match dst_off {
                    Some(o) => format!("{host} + ({o})"),
                    None => host.clone(),
                };
                let _ = writeln!(
                    out,
                    "clEnqueueReadBuffer({}, {dev}, CL_TRUE, {off}, {sz}, {to}, 0, NULL, NULL);",
                    queue(*device)
                );
            }
            HostCmd::DevCopy { src_device, src, src_off, dst_device, dst, dst_off, len } => {
                // OpenCL has no cross-context copy; on a multi-queue
                // single-context build this is clEnqueueCopyBuffer on the
                // destination's queue (the accounting side).
                let _ = writeln!(
                    out,
                    "/* halo: dev{src_device} -> dev{dst_device} */ \
                     clEnqueueCopyBuffer({}, {src}, {dst}, {src_off}, {dst_off}, {len}, 0, NULL, NULL);",
                    queue(*dst_device)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funs;
    use crate::ir::{self, ParamDef};
    use crate::types::Type;

    fn add2_kernel() -> Rc<KernelDef> {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let body = ir::map_glb(a.to_expr(), "x", |x| {
            ir::call(&funs::add(), vec![x, ir::lit(crate::scalar::Lit::real(2.0))])
        });
        KernelDef::new("add2k", vec![a], body)
    }

    #[test]
    fn single_kernel_roundtrip() {
        let k = add2_kernel();
        let input = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog = to_host(ocl_kernel(&k, vec![to_gpu(HostExpr::Input(input))]));
        let hp = compile_host(&prog, ScalarKind::F32).unwrap();
        assert_eq!(hp.kernels.len(), 1);
        // CopyIn, Alloc(out), Launch, CopyOut
        assert!(matches!(hp.cmds[0], HostCmd::CopyIn { .. }));
        assert!(matches!(hp.cmds[1], HostCmd::Alloc { .. }));
        assert!(matches!(hp.cmds[2], HostCmd::Launch { .. }));
        assert!(matches!(hp.cmds[3], HostCmd::CopyOut { .. }));
    }

    #[test]
    fn togpu_is_deduplicated() {
        let k = add2_kernel();
        let input = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog = host_let("x", to_gpu(HostExpr::Input(input.clone())), |_x| {
            to_host(ocl_kernel(&k, vec![to_gpu(HostExpr::Input(input))]))
        });
        let hp = compile_host(&prog, ScalarKind::F32).unwrap();
        let copies = hp.cmds.iter().filter(|c| matches!(c, HostCmd::CopyIn { .. })).count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn missing_togpu_is_an_error() {
        let k = add2_kernel();
        let input = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog = ocl_kernel(&k, vec![HostExpr::Input(input)]);
        assert!(compile_host(&prog, ScalarKind::F32).is_err());
    }

    #[test]
    fn emitted_host_c_mentions_opencl_calls() {
        let k = add2_kernel();
        let input = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog = to_host(ocl_kernel(&k, vec![to_gpu(HostExpr::Input(input))]));
        let hp = compile_host(&prog, ScalarKind::F32).unwrap();
        let src = emit_host_c(&hp);
        assert!(src.contains("clEnqueueWriteBuffer"), "{src}");
        assert!(src.contains("clEnqueueNDRangeKernel"), "{src}");
        assert!(src.contains("clEnqueueReadBuffer"), "{src}");
        assert!(src.contains("clSetKernelArg"), "{src}");
    }
}

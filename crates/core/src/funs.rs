//! A small library of standard scalar user functions.
//!
//! These mirror the `UserFun`s that ship with LIFT (`id`, `add`, `mult`, …)
//! and are used throughout tests and the acoustics programs. Domain-specific
//! functions (e.g. the boundary-handling formulas) live with their programs.

use crate::scalar::{SExpr, UserFun};
use crate::types::ScalarKind;
use std::rc::Rc;

/// `id(x) = x` over reals.
pub fn id_real() -> Rc<UserFun> {
    UserFun::new("id", vec![("x", ScalarKind::Real)], ScalarKind::Real, SExpr::p(0))
}

/// `id(x) = x` over i32.
pub fn id_i32() -> Rc<UserFun> {
    UserFun::new("idI", vec![("x", ScalarKind::I32)], ScalarKind::I32, SExpr::p(0))
}

/// `add(a, b) = a + b` over reals.
pub fn add() -> Rc<UserFun> {
    UserFun::new(
        "add",
        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) + SExpr::p(1),
    )
}

/// `sub(a, b) = a - b` over reals.
pub fn sub() -> Rc<UserFun> {
    UserFun::new(
        "sub",
        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) - SExpr::p(1),
    )
}

/// `mult(a, b) = a * b` over reals.
pub fn mult() -> Rc<UserFun> {
    UserFun::new(
        "mult",
        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) * SExpr::p(1),
    )
}

/// `divide(a, b) = a / b` over reals.
pub fn divide() -> Rc<UserFun> {
    UserFun::new(
        "divide",
        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) / SExpr::p(1),
    )
}

/// `mad(a, b, c) = a * b + c` over reals.
pub fn mad() -> Rc<UserFun> {
    UserFun::new(
        "mad",
        vec![("a", ScalarKind::Real), ("b", ScalarKind::Real), ("c", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) * SExpr::p(1) + SExpr::p(2),
    )
}

/// `addI(a, b) = a + b` over i32.
pub fn add_i32() -> Rc<UserFun> {
    UserFun::new(
        "addI",
        vec![("a", ScalarKind::I32), ("b", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::p(0) + SExpr::p(1),
    )
}

/// `madI(a, b, c) = a * b + c` over i32 — the flat-index helper
/// `b*stride + i` used by strided state layouts.
pub fn mad_i32() -> Rc<UserFun> {
    UserFun::new(
        "madI",
        vec![("a", ScalarKind::I32), ("b", ScalarKind::I32), ("c", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::p(0) * SExpr::p(1) + SExpr::p(2),
    )
}

/// `restlen(n, i) = n - 1 - i` — the length of the trailing `Skip` in the
/// in-place concat idiom (§IV-B).
pub fn restlen() -> Rc<UserFun> {
    UserFun::new(
        "restlen",
        vec![("n", ScalarKind::I32), ("i", ScalarKind::I32)],
        ScalarKind::I32,
        SExpr::p(0) - SExpr::p(1) - SExpr::int(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Value;

    #[test]
    fn library_funs_evaluate() {
        let two = Value::F64(2.0);
        let three = Value::F64(3.0);
        assert_eq!(add().eval(&[two, three], ScalarKind::F64), Value::F64(5.0));
        assert_eq!(sub().eval(&[two, three], ScalarKind::F64), Value::F64(-1.0));
        assert_eq!(mult().eval(&[two, three], ScalarKind::F64), Value::F64(6.0));
        assert_eq!(divide().eval(&[three, two], ScalarKind::F64), Value::F64(1.5));
        assert_eq!(mad().eval(&[two, three, Value::F64(1.0)], ScalarKind::F64), Value::F64(7.0));
    }

    #[test]
    fn integer_helpers() {
        assert_eq!(
            mad_i32().eval(&[Value::I32(2), Value::I32(10), Value::I32(3)], ScalarKind::F32),
            Value::I32(23)
        );
        assert_eq!(
            restlen().eval(&[Value::I32(10), Value::I32(4)], ScalarKind::F32),
            Value::I32(5)
        );
    }
}

//! Golden tests for Table I: each new primitive's "Generated code" column.
//!
//! The paper's Table I gives, for every added primitive, a LIFT example and
//! the code the extended generator must produce. These tests build each
//! example through the public API and check the emitted OpenCL/host C has
//! the table's structure.

use lift::funs;
use lift::host::{self, KernelDef};
use lift::ir::{self, ParamDef};
use lift::prelude::*;

fn emit(name: &str, params: Vec<std::rc::Rc<ParamDef>>, body: ExprRef) -> String {
    let lk = lower_kernel(name, &params, &body, ScalarKind::F32).expect("lowers");
    opencl::emit_kernel(&lk.kernel)
}

/// Table I row `WriteTo`: `WriteTo(in, Map(add2, in))` →
/// `for (...) in[i] = add2(in[i]);`
#[test]
fn writeto_row() {
    let a = ParamDef::typed("in", Type::array(Type::real(), "N"));
    let a2 = a.clone();
    let add2 = UserFun::new(
        "add2",
        vec![("x", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) + SExpr::real(2.0),
    );
    let body =
        ir::write_to(a2.to_expr(), ir::map_glb(a2.to_expr(), "x", |x| ir::call(&add2, vec![x])));
    let src = emit("wt", vec![a], body);
    // in-place: a single buffer parameter, stores back into `in`
    assert!(src.contains("__global float* in"), "{src}");
    assert!(!src.contains("* out"), "{src}");
    // the load is staged through a temporary, then stored back in place
    assert!(src.contains("= in[get_global_id(0)];"), "{src}");
    assert!(src.contains("in[get_global_id(0)] = "), "{src}");
    assert!(src.contains("+ 2.0f"), "{src}");
}

/// Table I row `Concat`: `Concat(Map(add2, A), Map(mul3, B))` → two loops
/// writing `out[i0]` and `out[i1 + N1]`.
#[test]
fn concat_row() {
    let a = ParamDef::typed("A", Type::array(Type::real(), "N1"));
    let b = ParamDef::typed("B", Type::array(Type::real(), "N2"));
    let (a2, b2) = (a.clone(), b.clone());
    let add2 = UserFun::new(
        "add2",
        vec![("x", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) + SExpr::real(2.0),
    );
    let mul3 = UserFun::new(
        "mul3",
        vec![("x", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) * SExpr::real(3.0),
    );
    // Wrap in a trivial outer map so the kernel has its canonical top-level
    // parallel map; the concat is materialised sequentially per Table I.
    let body = ir::map_glb(ir::iota(1usize), "t", move |_| {
        ir::write_to(
            ir::slice(out_param().to_expr(), ir::lit(Lit::i32(0)), 1usize, "N1 + N2 aliased"),
            ir::lit(Lit::real(0.0)),
        )
    });
    let _ = body; // the canonical form below is clearer:
                  // Sequential maps inside one work-item write both halves.
    let out = ParamDef::typed(
        "out",
        Type::array(Type::real(), ArithExpr::var("N1") + ArithExpr::var("N2")),
    );
    let o2 = out.clone();
    let body = ir::map_glb(ir::iota(1usize), "t", move |_| {
        ir::write_to(
            o2.to_expr(),
            ir::concat(vec![
                ir::map_seq(a2.to_expr(), "x", |x| ir::call(&add2, vec![x])),
                ir::map_seq(b2.to_expr(), "y", |y| ir::call(&mul3, vec![y])),
            ]),
        )
    });
    let src = emit("cc", vec![a, b, out], body);
    // two loops; second loop's store offset by N1
    assert_eq!(src.matches("for (").count(), 2, "{src}");
    assert!(src.contains("out["), "{src}");
    assert!(src.contains("out[(N1 + "), "{src}");
    assert!(src.contains("* 3.0f"), "{src}");
}

fn out_param() -> std::rc::Rc<ParamDef> {
    ParamDef::typed("out_alias", Type::array(Type::real(), "NA"))
}

/// Table I row `ArrayCons`: `Map(id, ArrayCons(6, 3))` →
/// `for (int i = 0; i < 3; i++) out[i] = 6;`
#[test]
fn arraycons_row() {
    let out = ParamDef::typed("out", Type::array(Type::real(), 3usize));
    let o2 = out.clone();
    let id = funs::id_real();
    let body = ir::map_glb(ir::iota(1usize), "t", move |_| {
        ir::write_to(
            o2.to_expr(),
            ir::map_seq(ir::array_cons(ir::lit(Lit::real(6.0)), 3usize), "x", |x| {
                ir::call(&id, vec![x])
            }),
        )
    });
    let src = emit("ac", vec![out], body);
    assert!(src.contains("for (int"), "{src}");
    assert!(src.contains("< 3"), "{src}");
    assert!(src.contains("] = 6.0f") || src.contains("= 6.0f"), "{src}");
}

/// Table I row `Skip`: `Concat(Skip<int>(n), Array(1,2,3))` → writes at
/// `out[n]`, `out[n + 1]`, `out[n + 2]` and no code for the skip.
#[test]
fn skip_row() {
    let out = ParamDef::typed("out", Type::array(Type::real(), "M"));
    let nv = ParamDef::typed("n", Type::i32());
    let (o2, n2) = (out.clone(), nv.clone());
    let body = ir::map_glb(ir::iota(1usize), "t", move |_| {
        ir::write_to(
            o2.to_expr(),
            ir::concat(vec![
                ir::skip(n2.to_expr(), Type::real()),
                ir::array_cons(ir::lit(Lit::real(1.0)), 1usize),
                ir::array_cons(ir::lit(Lit::real(2.0)), 1usize),
                ir::array_cons(ir::lit(Lit::real(3.0)), 1usize),
            ]),
        )
    });
    let lk = lower_kernel("sk", &[out, nv], &body, ScalarKind::F32).expect("lowers");
    let src = opencl::emit_kernel(&lk.kernel);
    assert!(src.contains("out[n]") || src.contains("out[(n"), "{src}");
    // The inner concat-of-array-cons needs a private staging array or three
    // direct stores; in all cases exactly three values reach `out`.
    assert!(src.contains("1.0f") && src.contains("2.0f") && src.contains("3.0f"), "{src}");
}

/// Table I host rows: `OclKernel` → `clSetKernelArg` +
/// `clEnqueueNDRangeKernel`; `ToGPU` → `clEnqueueWriteBuffer`; `ToHost` →
/// `clEnqueueReadBuffer`.
#[test]
fn host_rows() {
    let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
    let kbody = ir::map_glb(a.to_expr(), "x", |x| x);
    let k = KernelDef::new("kern", vec![a], kbody);
    let input = ParamDef::typed("in_h", Type::array(Type::real(), "N"));
    let prog = host::to_host(host::ocl_kernel(&k, vec![host::to_gpu(host::input(&input))]));
    let hp = host::compile_host(&prog, ScalarKind::F32).expect("compiles");
    let src = host::emit_host_c(&hp);
    assert!(src.contains("clEnqueueWriteBuffer(queue, d_in_h"), "{src}");
    assert!(src.contains("clSetKernelArg(kern, 0, sizeof(cl_mem)"), "{src}");
    assert!(src.contains("clEnqueueNDRangeKernel(queue, kern, 1"), "{src}");
    assert!(src.contains("clEnqueueReadBuffer"), "{src}");
}

/// The canonical §IV-B listing: the generated in-place loop writes a single
/// element per iteration at the runtime offset, with no code for either
/// `Skip`.
#[test]
fn section4b_canonical_listing() {
    let indices = ParamDef::typed("indices", Type::array(Type::i32(), "numI"));
    let input = ParamDef::typed("input", Type::array(Type::real(), "N"));
    let i2 = input.clone();
    let f = UserFun::new(
        "f",
        vec![("x", ScalarKind::Real)],
        ScalarKind::Real,
        SExpr::p(0) * SExpr::real(2.0),
    );
    let body = ir::map_glb(indices.to_expr(), "idx", move |idx| {
        ir::write_to(
            i2.to_expr(),
            ir::concat(vec![
                ir::skip(idx.clone(), Type::real()),
                ir::array_cons(ir::call(&f, vec![ir::at(i2.to_expr(), idx.clone())]), 1usize),
                ir::skip(ir::call(&funs::restlen(), vec![ir::size_val("N"), idx]), Type::real()),
            ]),
        )
    });
    let src = emit("canon", vec![indices, input], body);
    // one read of input at the gathered index, one write back
    assert!(src.contains("input[indices[get_global_id(0)]]") || src.contains("input[idx"), "{src}");
    let stores = src.lines().filter(|l| l.trim_start().starts_with("input[")).count();
    assert_eq!(stores, 1, "exactly one in-place store:\n{src}");
}

//! Property tests for the symbolic arithmetic layer: normalisation must
//! never change the value of an expression, and algebraic identities must
//! hold under every variable assignment.

use lift::arith::ArithExpr;
use proptest::prelude::*;
use std::collections::BTreeMap;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// A random expression together with a direct (non-normalising) evaluator
/// so the normalised form can be checked against ground truth.
#[derive(Debug, Clone)]
enum Raw {
    Cst(i64),
    Var(usize),
    Add(Box<Raw>, Box<Raw>),
    Sub(Box<Raw>, Box<Raw>),
    Mul(Box<Raw>, Box<Raw>),
    Min(Box<Raw>, Box<Raw>),
    Max(Box<Raw>, Box<Raw>),
}

impl Raw {
    fn build(&self) -> ArithExpr {
        match self {
            Raw::Cst(v) => ArithExpr::cst(*v),
            Raw::Var(i) => ArithExpr::var(VARS[*i]),
            Raw::Add(a, b) => a.build() + b.build(),
            Raw::Sub(a, b) => a.build() - b.build(),
            Raw::Mul(a, b) => a.build() * b.build(),
            Raw::Min(a, b) => ArithExpr::min(a.build(), b.build()),
            Raw::Max(a, b) => ArithExpr::max(a.build(), b.build()),
        }
    }

    fn eval(&self, env: &[i64; 4]) -> i64 {
        match self {
            Raw::Cst(v) => *v,
            Raw::Var(i) => env[*i],
            Raw::Add(a, b) => a.eval(env).wrapping_add(b.eval(env)),
            Raw::Sub(a, b) => a.eval(env).wrapping_sub(b.eval(env)),
            Raw::Mul(a, b) => a.eval(env).wrapping_mul(b.eval(env)),
            Raw::Min(a, b) => a.eval(env).min(b.eval(env)),
            Raw::Max(a, b) => a.eval(env).max(b.eval(env)),
        }
    }
}

fn raw_strategy() -> impl Strategy<Value = Raw> {
    let leaf = prop_oneof![(-20i64..20).prop_map(Raw::Cst), (0usize..4).prop_map(Raw::Var)];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Min(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Raw::Max(a.into(), b.into())),
        ]
    })
}

fn env_map(env: &[i64; 4]) -> BTreeMap<String, i64> {
    VARS.iter().zip(env).map(|(v, x)| (v.to_string(), *x)).collect()
}

proptest! {
    /// Normalisation preserves value.
    #[test]
    fn normalisation_preserves_value(raw in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let e = raw.build();
        let expected = raw.eval(&env);
        prop_assert_eq!(e.eval_map(&env_map(&env)), Ok(expected));
    }

    /// Substituting a constant then evaluating equals evaluating directly.
    #[test]
    fn subst_commutes_with_eval(raw in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let e = raw.build();
        let mut partial = e.clone();
        for (i, v) in VARS.iter().enumerate() {
            partial = partial.subst(v, &ArithExpr::cst(env[i]));
        }
        prop_assert!(partial.is_const(), "all vars substituted: {partial}");
        prop_assert_eq!(partial.eval_map(&BTreeMap::new()), Ok(raw.eval(&env)));
    }

    /// `x - x` always normalises to zero (the allocator relies on length
    /// differences cancelling).
    #[test]
    fn self_subtraction_is_zero(raw in raw_strategy()) {
        let e = raw.build();
        prop_assert_eq!(e.clone() - e, ArithExpr::cst(0));
    }

    /// Addition of expressions is commutative after normalisation *in
    /// value* (structural equality is not guaranteed, evaluation is).
    #[test]
    fn addition_commutes(a in raw_strategy(), b in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let ab = a.build() + b.build();
        let ba = b.build() + a.build();
        let m = env_map(&env);
        prop_assert_eq!(ab.eval_map(&m).unwrap(), ba.eval_map(&m).unwrap());
    }

    /// Free variables are exactly the variables whose value can affect the
    /// result… conservatively: evaluation succeeds iff all free vars bound.
    #[test]
    fn free_vars_are_sufficient(raw in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let e = raw.build();
        let mut m = BTreeMap::new();
        for v in e.free_vars() {
            let i = VARS.iter().position(|x| *x == v).unwrap();
            m.insert(v, env[i]);
        }
        prop_assert!(e.eval_map(&m).is_ok());
    }

    /// Multiplying by a positive constant scales min/max monotonically —
    /// guards the Display/simplifier against sign errors.
    #[test]
    fn scaling_preserves_order(a in -30i64..30, b in -30i64..30, k in 1i64..5) {
        let min = ArithExpr::min(ArithExpr::cst(a), ArithExpr::cst(b)) * ArithExpr::cst(k);
        prop_assert_eq!(min.as_cst(), Some(a.min(b) * k));
    }
}

//! Property tests for the symbolic arithmetic layer: normalisation must
//! never change the value of an expression, and algebraic identities must
//! hold under every variable assignment.

use lift::arith::{ArithExpr, RangeEnv, SymRange};
use proptest::prelude::*;
use std::collections::BTreeMap;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// A random expression together with a direct (non-normalising) evaluator
/// so the normalised form can be checked against ground truth.
#[derive(Debug, Clone)]
enum Raw {
    Cst(i64),
    Var(usize),
    Add(Box<Raw>, Box<Raw>),
    Sub(Box<Raw>, Box<Raw>),
    Mul(Box<Raw>, Box<Raw>),
    Min(Box<Raw>, Box<Raw>),
    Max(Box<Raw>, Box<Raw>),
    Div(Box<Raw>, Box<Raw>),
    Mod(Box<Raw>, Box<Raw>),
}

impl Raw {
    fn build(&self) -> ArithExpr {
        match self {
            Raw::Cst(v) => ArithExpr::cst(*v),
            Raw::Var(i) => ArithExpr::var(VARS[*i]),
            Raw::Add(a, b) => a.build() + b.build(),
            Raw::Sub(a, b) => a.build() - b.build(),
            Raw::Mul(a, b) => a.build() * b.build(),
            Raw::Min(a, b) => ArithExpr::min(a.build(), b.build()),
            Raw::Max(a, b) => ArithExpr::max(a.build(), b.build()),
            Raw::Div(a, b) => ArithExpr::div(a.build(), b.build()),
            Raw::Mod(a, b) => ArithExpr::rem(a.build(), b.build()),
        }
    }

    /// Ground-truth evaluation; `None` on division by zero (the builders
    /// fold `x / x → 1` assuming a guarded divisor, so zero-divisor cases
    /// are simply skipped rather than compared).
    fn eval(&self, env: &[i64; 4]) -> Option<i64> {
        Some(match self {
            Raw::Cst(v) => *v,
            Raw::Var(i) => env[*i],
            Raw::Add(a, b) => a.eval(env)?.wrapping_add(b.eval(env)?),
            Raw::Sub(a, b) => a.eval(env)?.wrapping_sub(b.eval(env)?),
            Raw::Mul(a, b) => a.eval(env)?.wrapping_mul(b.eval(env)?),
            Raw::Min(a, b) => a.eval(env)?.min(b.eval(env)?),
            Raw::Max(a, b) => a.eval(env)?.max(b.eval(env)?),
            Raw::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return None;
                }
                a.eval(env)? / d
            }
            Raw::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return None;
                }
                a.eval(env)? % d
            }
        })
    }
}

fn raw_strategy() -> impl Strategy<Value = Raw> {
    let leaf = prop_oneof![(-20i64..20).prop_map(Raw::Cst), (0usize..4).prop_map(Raw::Var)];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Min(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Max(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Raw::Div(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Raw::Mod(a.into(), b.into())),
        ]
    })
}

/// Closes a symbolic bound (no free variables expected once every
/// variable carries a two-sided range) down to a concrete value.
fn close(b: &ArithExpr) -> i64 {
    b.eval_map(&BTreeMap::new()).unwrap_or_else(|e| panic!("open interval bound {b}: {e:?}"))
}

fn env_map(env: &[i64; 4]) -> BTreeMap<String, i64> {
    VARS.iter().zip(env).map(|(v, x)| (v.to_string(), *x)).collect()
}

proptest! {
    /// Normalisation preserves value.
    #[test]
    fn normalisation_preserves_value(raw in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let e = raw.build();
        prop_assume!(raw.eval(&env).is_some()); // skip zero-divisor draws
        let expected = raw.eval(&env).unwrap();
        prop_assert_eq!(e.eval_map(&env_map(&env)), Ok(expected));
    }

    /// Substituting a constant then evaluating equals evaluating directly.
    #[test]
    fn subst_commutes_with_eval(raw in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let e = raw.build();
        prop_assume!(raw.eval(&env).is_some()); // skip zero-divisor draws
        let mut partial = e.clone();
        for (i, v) in VARS.iter().enumerate() {
            partial = partial.subst(v, &ArithExpr::cst(env[i]));
        }
        prop_assert_eq!(partial.eval_map(&BTreeMap::new()), Ok(raw.eval(&env).unwrap()));
    }

    /// `x - x` always normalises to zero (the allocator relies on length
    /// differences cancelling).
    #[test]
    fn self_subtraction_is_zero(raw in raw_strategy()) {
        let e = raw.build();
        prop_assert_eq!(e.clone() - e, ArithExpr::cst(0));
    }

    /// Addition of expressions is commutative after normalisation *in
    /// value* (structural equality is not guaranteed, evaluation is).
    #[test]
    fn addition_commutes(a in raw_strategy(), b in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let ab = a.build() + b.build();
        let ba = b.build() + a.build();
        let m = env_map(&env);
        prop_assume!(a.eval(&env).is_some() && b.eval(&env).is_some()); // skip zero-divisor draws
        prop_assert_eq!(ab.eval_map(&m).unwrap(), ba.eval_map(&m).unwrap());
    }

    /// Free variables are exactly the variables whose value can affect the
    /// result… conservatively: evaluation succeeds iff all free vars bound.
    #[test]
    fn free_vars_are_sufficient(raw in raw_strategy(), env in prop::array::uniform4(-50i64..50)) {
        let e = raw.build();
        let mut m = BTreeMap::new();
        for v in e.free_vars() {
            let i = VARS.iter().position(|x| *x == v).unwrap();
            m.insert(v, env[i]);
        }
        // With every free var bound, the only legitimate failure left is a
        // zero divisor — never an unbound variable.
        prop_assert!(!matches!(e.eval_map(&m), Err(lift::arith::ArithError::Unbound(_))));
    }

    /// Multiplying by a positive constant scales min/max monotonically —
    /// guards the Display/simplifier against sign errors.
    #[test]
    fn scaling_preserves_order(a in -30i64..30, b in -30i64..30, k in 1i64..5) {
        let min = ArithExpr::min(ArithExpr::cst(a), ArithExpr::cst(b)) * ArithExpr::cst(k);
        prop_assert_eq!(min.as_cst(), Some(a.min(b) * k));
    }

    /// Interval evaluation is *sound*: constrain every variable to a
    /// concrete box, pick any point inside it, and the computed symbolic
    /// range must contain the expression's value there. This is the
    /// property the halo-width proof leans on, and it covers the cases
    /// the old tests never reached: negative strides (`Mul` by a
    /// negative constant flips the interval) and mixed-sign `Div`/`Mod`
    /// (where the rules must widen to ±∞ rather than guess a sign).
    #[test]
    fn interval_eval_is_sound(
        raw in raw_strategy(),
        lo in prop::array::uniform4(-30i64..30),
        w in prop::array::uniform4(0i64..12),
        off in prop::array::uniform4(0i64..12),
    ) {
        let mut env = [0i64; 4];
        let mut renv = RangeEnv::new();
        for i in 0..4 {
            env[i] = lo[i] + off[i] % (w[i] + 1);
            renv.set_range(VARS[i], SymRange::new(ArithExpr::cst(lo[i]), ArithExpr::cst(lo[i] + w[i])));
        }
        prop_assume!(raw.eval(&env).is_some()); // skip zero-divisor draws
        let truth = raw.eval(&env).unwrap();
        let r = renv.range_of(&raw.build());
        if let Some(b) = &r.lo {
            prop_assert!(close(b) <= truth, "lower bound {b} above value {truth} at {env:?}");
        }
        if let Some(b) = &r.hi {
            prop_assert!(truth <= close(b), "upper bound {b} below value {truth} at {env:?}");
        }
    }

    /// A negative constant stride flips the interval *exactly*: for
    /// `x ∈ [lo, hi]` and `k < 0`, `x·k ∈ [hi·k, lo·k]` with both
    /// endpoints tight (the footprint analysis depends on tightness, not
    /// just soundness, to prove one-plane halos for `-stride` offsets).
    #[test]
    fn negative_stride_flips_interval_exactly(lo in -40i64..40, w in 0i64..20, k in -6i64..0) {
        let hi = lo + w;
        let mut renv = RangeEnv::new();
        renv.set_range("a", SymRange::new(ArithExpr::cst(lo), ArithExpr::cst(hi)));
        let r = renv.range_of(&(ArithExpr::var("a") * ArithExpr::cst(k)));
        prop_assert_eq!(r.lo.as_ref().map(close), Some(hi * k), "flipped lower endpoint");
        prop_assert_eq!(r.hi.as_ref().map(close), Some(lo * k), "flipped upper endpoint");
    }

    /// Mixed-sign truncating `Div`/`Mod` stay sound for every concrete
    /// dividend in the box and every non-zero constant divisor — the
    /// quotient rounds toward zero and the remainder takes the sign of
    /// the dividend, neither of which the nonneg-only fast path models,
    /// so any future refinement of the widening rules is pinned here.
    #[test]
    fn mixed_sign_div_mod_ranges_stay_sound(
        lo in -40i64..40,
        w in 0i64..20,
        off in 0i64..20,
        d in prop_oneof![-8i64..0, 1i64..8],
    ) {
        let val = lo + off % (w + 1);
        let mut renv = RangeEnv::new();
        renv.set_range("a", SymRange::new(ArithExpr::cst(lo), ArithExpr::cst(lo + w)));
        let probes = [
            (ArithExpr::div(ArithExpr::var("a"), ArithExpr::cst(d)), val / d),
            (ArithExpr::rem(ArithExpr::var("a"), ArithExpr::cst(d)), val % d),
        ];
        for (e, truth) in probes {
            let r = renv.range_of(&e);
            if let Some(b) = &r.lo {
                prop_assert!(close(b) <= truth, "lower bound {b} above {val}⊘{d}");
            }
            if let Some(b) = &r.hi {
                prop_assert!(truth <= close(b), "upper bound {b} below {val}⊘{d}");
            }
        }
    }
}

/// Pinned regressions for the interval rules — deterministic versions of
/// the shrunk counterexamples the properties above are guarding against.
mod pinned {
    use super::*;

    /// `a ∈ [0, 9] ⇒ a·(−1) ∈ [−9, 0]` — the smallest negative stride.
    #[test]
    fn unit_negative_stride_flips() {
        let mut renv = RangeEnv::new();
        renv.set_range("a", SymRange::new(ArithExpr::cst(0), ArithExpr::cst(9)));
        let r = renv.range_of(&(ArithExpr::var("a") * ArithExpr::cst(-1)));
        assert_eq!(r.lo.as_ref().map(close), Some(-9));
        assert_eq!(r.hi.as_ref().map(close), Some(0));
    }

    /// Constant folding uses *truncating* division (`−7 / 2 = −3`, not
    /// the floor `−4`) and the remainder keeps the dividend's sign
    /// (`−7 % 2 = −1`) — matching the kernel ISA's semantics.
    #[test]
    fn mixed_sign_constant_folds_truncate_toward_zero() {
        assert_eq!(ArithExpr::div(ArithExpr::cst(-7), ArithExpr::cst(2)).as_cst(), Some(-3));
        assert_eq!(ArithExpr::rem(ArithExpr::cst(-7), ArithExpr::cst(2)).as_cst(), Some(-1));
        assert_eq!(ArithExpr::div(ArithExpr::cst(7), ArithExpr::cst(-2)).as_cst(), Some(-3));
        assert_eq!(ArithExpr::rem(ArithExpr::cst(7), ArithExpr::cst(-2)).as_cst(), Some(1));
    }

    /// A possibly-negative dividend must *widen*: claiming `[0, hi]` for
    /// `a / 2` with `a ∈ [−5, 5]` would silently shrink a halo. The rule
    /// is allowed to get smarter later, but never to cut out `−2`.
    #[test]
    fn mixed_sign_div_widens_not_guesses() {
        let mut renv = RangeEnv::new();
        renv.set_range("a", SymRange::new(ArithExpr::cst(-5), ArithExpr::cst(5)));
        for e in [
            ArithExpr::div(ArithExpr::var("a"), ArithExpr::cst(2)),
            ArithExpr::rem(ArithExpr::var("a"), ArithExpr::cst(2)),
        ] {
            let r = renv.range_of(&e);
            if let Some(b) = &r.lo {
                assert!(close(b) <= -1, "lower bound of {e} excludes negative results");
            }
            if let Some(b) = &r.hi {
                assert!(close(b) >= 1, "upper bound of {e} excludes positive results");
            }
        }
    }
}

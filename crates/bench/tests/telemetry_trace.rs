//! Golden end-to-end trace test: a cube(16) FI run at both precisions,
//! traced in Chrome mode, must produce a Perfetto-loadable document whose
//! kernel and transfer spans carry the expected names and whose per-kernel
//! flop and transaction-byte totals reconcile exactly (±0) with the device's
//! own profiling event log.
//!
//! Telemetry state is process-global, so this file holds a single `#[test]`
//! — integration-test binaries are separate processes, which isolates it
//! from the vgpu crate's own telemetry tests.

use lift_acoustics::FiSingleLift;
use room_acoustics::{
    BoundaryModel, GridDims, MaterialAssignment, Precision, RoomShape, SimConfig, SimSetup,
};
use vgpu::telemetry::{self, sink, TraceMode};
use vgpu::{Device, ExecMode};

fn fi_setup(dims: GridDims) -> SimSetup {
    SimSetup::new(&SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: MaterialAssignment::Uniform,
        boundary: BoundaryModel::Fi { beta: 0.1 },
    })
}

#[test]
fn cube16_fi_trace_is_golden_at_both_precisions() {
    telemetry::set_mode(TraceMode::Chrome);
    telemetry::take_events(); // start from a clean buffer

    let dims = GridDims::cube(16);
    let steps = 3;
    let (mut expected_flops, mut expected_txn) = (0u64, 0u64);
    let mut expected_launches = 0u64;
    for precision in [Precision::Single, Precision::Double] {
        let mut sim = FiSingleLift::new(fi_setup(dims), precision, 0.1, Device::gtx780());
        sim.impulse(8, 8, 8, 1.0);
        for _ in 0..steps {
            sim.step(ExecMode::Model { sample_stride: 1 });
        }
        for ev in sim.device.events() {
            assert_eq!(ev.name, "fi_single_lift");
            expected_launches += 1;
            expected_flops += ev.stats.counters.flops;
            expected_txn += ev.stats.transaction_bytes.expect("model mode counts transactions");
        }
    }
    assert_eq!(expected_launches, 2 * steps as u64);

    let events = telemetry::take_events();
    let metrics = telemetry::registry().snapshot();
    let mut buf: Vec<u8> = Vec::new();
    sink::write_chrome(&mut buf, &events, &metrics).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let stats = sink::validate_chrome(&text).expect("trace validates");

    // Expected span names: host-side phases, the kernel, and both transfer
    // directions (impulse reads and writes curr/prev; `nbrs` is uploaded).
    for name in ["FiSingleLift::new", "FiSingleLift::step", "fi_single_lift"] {
        assert!(stats.span_names.contains(name), "missing span `{name}`");
    }
    assert!(
        stats.span_names.iter().any(|n| n.starts_with("ToGPU(")),
        "missing ToGPU transfer span"
    );
    assert!(
        stats.span_names.iter().any(|n| n.starts_with("ToHost(")),
        "missing ToHost transfer span"
    );
    assert!(stats.track_names.contains("host"), "missing host track");

    // ±0 reconciliation against the device event log.
    assert_eq!(stats.kernel_flops.get("fi_single_lift"), Some(&expected_flops));
    assert_eq!(stats.kernel_txn_bytes.get("fi_single_lift"), Some(&expected_txn));

    // The per-kernel summary the reports embed agrees too.
    let kernels = sink::kernel_summaries(&events);
    let fi = kernels.iter().find(|k| k.name == "fi_single_lift").expect("summary row");
    assert_eq!(fi.launches, expected_launches);
    assert_eq!(fi.flops, expected_flops);
    assert_eq!(fi.transaction_bytes, expected_txn);
    assert_eq!(fi.tape_fallbacks, 0);
    assert!(fi.modeled_ms > 0.0, "model mode must produce a modeled time");
}

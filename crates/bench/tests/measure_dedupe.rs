//! Regression: the repro bins run several measurements in one process, and
//! the fallback/divergence dedupe set must be rescoped at each sim start —
//! otherwise the first sim's audit records silently swallow every later
//! sim's (the batch executor already resets per job, but `repro_*` bins
//! never went through it).
//!
//! Own test binary: the dedupe set and event stream are process-global.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{ScalarKind, Value};
use room_acoustics::{GridDims, Precision, RoomShape};
use vgpu::telemetry::{self, Event, TraceMode};
use vgpu::{Arg, BufData, Device, Engine, ExecMode};

/// out[gid] = x[gid] * a — f64 buffers against the f32-specialized tape
/// force a deterministic tape→tree fallback on every launch.
fn fallback_kernel() -> Kernel {
    Kernel {
        name: "measure_dedupe_fb".into(),
        params: vec![
            KernelParam::global_buf("x", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
            KernelParam::scalar("a", ScalarKind::F32),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(1),
            idx: KExpr::GlobalId(0),
            value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::var("a"),
        }],
        work_dim: 1,
    }
}

fn trigger_fallback() {
    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Tape);
    let prep = dev.compile(&fallback_kernel()).unwrap();
    let x = dev.upload(BufData::from(vec![1.0f64, 2.0]));
    let out = dev.upload(BufData::from(vec![0.0f64; 2]));
    dev.launch(
        &prep,
        &[Arg::Buf(x), Arg::Buf(out), Arg::Val(Value::F32(2.0))],
        &[2],
        ExecMode::Fast,
    )
    .unwrap();
}

#[test]
fn each_measurement_rescopes_the_fallback_dedupe() {
    telemetry::set_mode(TraceMode::Chrome);
    let _ = telemetry::take_events();

    // Sim 1: hits a fallback → one audit record.
    trigger_fallback();
    // Sim 2 via the repro path: measure_* must reset the dedupe set...
    let _ = bench::measure::measure_fimm(
        GridDims::new(8, 8, 8),
        RoomShape::Box,
        Precision::Single,
        bench::measure::Impl::Lift,
    );
    // ...so the *same* (kernel, reason) pair records again in sim 3.
    trigger_fallback();

    let records = telemetry::take_events()
        .into_iter()
        .filter(
            |e| matches!(e, Event::TapeFallback { kernel, .. } if kernel == "measure_dedupe_fb"),
        )
        .count();
    telemetry::set_mode(TraceMode::Off);
    assert_eq!(
        records, 2,
        "a measurement between two identical fallbacks must not let the first swallow the second"
    );
}

//! Regression tests for the evaluation's qualitative shapes at small scale
//! (the full-size versions are checked by the `repro_*` binaries). These
//! guard the transaction model against changes that would silently destroy
//! a reproduced effect.

use bench::measure::{measure_fdmm, measure_fimm, Impl};
use room_acoustics::{GridDims, Precision, RoomShape};
use vgpu::DeviceProfile;

/// The paper's 336³ throughput dip: a uniform cube has proportionally fewer
/// x-contiguous boundary runs than an elongated box of similar point count,
/// so its boundary gathers coalesce worse and throughput per point drops
/// (§VII-B1's explanation).
#[test]
fn cube_dip_reproduces_at_small_scale() {
    let p = DeviceProfile::gtx780();
    // elongated box vs near-cube with comparable boundary counts
    let long =
        measure_fimm(GridDims::new(152, 102, 77), RoomShape::Box, Precision::Single, Impl::OpenCl);
    let cube = measure_fimm(GridDims::cube(84), RoomShape::Box, Precision::Single, Impl::OpenCl);
    assert!(
        cube.gups(&p) < long.gups(&p),
        "cube should be slower per update: cube {} vs long {}",
        cube.gups(&p),
        long.gups(&p)
    );
}

/// Box rooms achieve higher boundary throughput than domes (contiguous
/// boundary runs vs curved shells).
#[test]
fn box_beats_dome_throughput() {
    let p = DeviceProfile::gtx780();
    let dims = GridDims::new(96, 64, 48);
    let boxm = measure_fimm(dims, RoomShape::Box, Precision::Single, Impl::Lift);
    let dome = measure_fimm(dims, RoomShape::Dome, Precision::Single, Impl::Lift);
    assert!(boxm.gups(&p) > dome.gups(&p));
}

/// FD-MM throughput is far below FI-MM (more state, more arithmetic).
#[test]
fn fdmm_much_slower_than_fimm() {
    let p = DeviceProfile::gtx780();
    let dims = GridDims::new(96, 64, 48);
    let fi = measure_fimm(dims, RoomShape::Box, Precision::Single, Impl::OpenCl);
    let fd = measure_fdmm(dims, RoomShape::Box, Precision::Single, Impl::OpenCl);
    assert!(fd.gups(&p) < fi.gups(&p) * 0.7, "fd {} vs fi {}", fd.gups(&p), fi.gups(&p));
}

/// LIFT-generated and hand-written FD-MM kernels execute the same number of
/// stores and comparable loads (the generated code is not doing extra
/// passes).
#[test]
fn generated_fdmm_access_counts_match_handwritten() {
    let dims = GridDims::new(64, 48, 40);
    let a = measure_fdmm(dims, RoomShape::Box, Precision::Double, Impl::OpenCl);
    let b = measure_fdmm(dims, RoomShape::Box, Precision::Double, Impl::Lift);
    assert_eq!(a.counters.stores_global, b.counters.stores_global);
    let ratio = b.counters.loads_global as f64 / a.counters.loads_global as f64;
    assert!((0.8..=1.25).contains(&ratio), "load ratio {ratio}");
    assert_eq!(a.counters.flops, b.counters.flops, "same arithmetic per update");
}

/// Double-precision kernels move more DRAM bytes than single precision.
#[test]
fn double_moves_more_bytes() {
    let dims = GridDims::new(96, 64, 48);
    let s = measure_fdmm(dims, RoomShape::Box, Precision::Single, Impl::OpenCl);
    let d = measure_fdmm(dims, RoomShape::Box, Precision::Double, Impl::OpenCl);
    assert!(d.txn_bytes > s.txn_bytes);
}

//! Criterion bench for per-step kernel dispatch overhead.
//!
//! The paper's claim lives in the leap-frog step loop (§VI): thousands of
//! launches of the same two kernels against the same buffers. This bench
//! pins the wall-clock cost of that loop on both tape engines (scalar and
//! warp-vectorized) for the FI cube workload — the launch-plan cache,
//! chunked warp dispatch, tape peephole optimizer, and SIMT lane
//! vectorization all land here. `step_loop/fast/*` is the headline number
//! recorded in EXPERIMENTS.md; `step_loop/model/*` additionally runs the
//! warp transaction model, and `boundary_small/*` stresses pure dispatch
//! overhead with a tiny NDRange where per-launch setup dominates.

use criterion::{criterion_group, criterion_main, Criterion};
use lift::prelude::{ScalarKind, Value};
use room_acoustics::{
    handwritten, BoundaryModel, GridDims, MaterialAssignment, RoomShape, SimConfig, SimSetup,
};
use vgpu::{Arg, BufId, Device, Engine, ExecMode};

const STEPS: usize = 8;

struct FiRun {
    dev: Device,
    prep: vgpu::Prepared,
    bufs: [BufId; 3],
    scalars: Vec<Arg>,
    global: [usize; 3],
}

fn fi_run(n: usize, engine: Engine) -> FiRun {
    let dims = GridDims::cube(n);
    let setup = SimSetup::new(&SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: MaterialAssignment::Uniform,
        boundary: BoundaryModel::Fi { beta: 0.1 },
    });
    let mut dev = Device::gtx780();
    dev.set_engine(engine);
    let prep = dev.compile(&handwritten::fi_single_kernel().resolve_real(ScalarKind::F32)).unwrap();
    let total = dims.total();
    let bufs = [
        dev.create_buffer_zeroed(ScalarKind::F32, total),
        dev.create_buffer_zeroed(ScalarKind::F32, total),
        dev.create_buffer_zeroed(ScalarKind::F32, total),
    ];
    let scalars = vec![
        Arg::Val(Value::F32(setup.l as f32)),
        Arg::Val(Value::F32(setup.l2 as f32)),
        Arg::Val(Value::F32(0.1)),
        Arg::Val(Value::I32(dims.nx as i32)),
        Arg::Val(Value::I32(dims.ny as i32)),
        Arg::Val(Value::I32(dims.nz as i32)),
    ];
    FiRun { dev, prep, bufs, scalars, global: [dims.nx, dims.ny, dims.nz] }
}

impl FiRun {
    /// One leap-frog step: launch + buffer rotation, as the sims do it.
    fn step(&mut self, mode: ExecMode) {
        let mut args = vec![Arg::Buf(self.bufs[0]), Arg::Buf(self.bufs[1]), Arg::Buf(self.bufs[2])];
        args.extend_from_slice(&self.scalars);
        self.dev.launch(&self.prep, &args, &self.global, mode).unwrap();
        self.bufs.rotate_right(1);
    }

    fn steps(&mut self, n: usize, mode: ExecMode) {
        for _ in 0..n {
            self.step(mode);
        }
        self.dev.clear_events();
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_overhead");
    group.sample_size(20);

    for (label, engine) in [("tape", Engine::Tape), ("vector", Engine::Vector)] {
        let mut run = fi_run(32, engine);
        group.bench_function(format!("step_loop/fast/{label}"), |b| {
            b.iter(|| run.steps(STEPS, ExecMode::Fast))
        });

        let mut run = fi_run(32, engine);
        group.bench_function(format!("step_loop/model/{label}"), |b| {
            b.iter(|| run.steps(STEPS, ExecMode::Model { sample_stride: 1 }))
        });

        // Tiny NDRange: per-launch overhead dominates execution.
        let mut run = fi_run(8, engine);
        group.bench_function(format!("boundary_small/{label}"), |b| {
            b.iter(|| run.steps(STEPS, ExecMode::Fast))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);

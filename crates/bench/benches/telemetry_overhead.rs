//! Guard bench: with `VGPU_TRACE=off` the telemetry layer must add less
//! than 2 % per-step overhead on the hand-written FI stencil at cube(40),
//! and `VGPU_PROFILE=kernel` at most 5 % on top of that (DESIGN.md §11 —
//! kernel-granularity profiling is one `Instant` pair and one map update
//! per launch; only `op` mode is allowed to cost real time).
//!
//! The instrumented path is [`vgpu::Device::launch`] — the production entry
//! point, which carries the disabled-telemetry branches (one relaxed atomic
//! load per gate) plus the unconditional launch counters. The baseline is a
//! raw [`vgpu::exec::launch_wg_engine`] loop over the same prepared kernel
//! and buffers, which contains no telemetry instrumentation at all.
//!
//! Trials are interleaved and the minimum per-iteration time of each side is
//! compared, so one-off scheduler noise cannot fail the guard. Run under
//! `cargo bench` (full: 1.02× bound) or with `--test` as CI does (smaller
//! grid, looser 1.5× bound — there it only checks the guard still runs).
//!
//! The same 1.02× bound covers the shadow-memory sanitizer's off mode
//! (`VGPU_SANITIZE=off`, the default): unsanitized buffers carry no shadow,
//! so each access pays exactly one `Option` discriminant test, and that
//! branch is inside the measured instrumented path. A final informational
//! pass re-measures with the sanitizer forced on (shadow-armed buffers) so
//! the cost of *arming* it lands in the log; armed mode trades speed for
//! checking and carries no bound.

use room_acoustics::{BoundaryModel, GridDims, MaterialAssignment, RoomShape, SimConfig, SimSetup};
use std::time::Instant;
use vgpu::buffer::SharedBuf;
use vgpu::exec::{self, ArgBind};
use vgpu::profiler::{self, ProfileMode};
use vgpu::telemetry::{self, TraceMode};
use vgpu::{Arg, BufData, Device, Engine, ExecMode};

use lift::scalar::Value;
use lift::types::ScalarKind;

fn fi_setup(dims: GridDims) -> SimSetup {
    SimSetup::new(&SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: MaterialAssignment::Uniform,
        boundary: BoundaryModel::Fi { beta: 0.1 },
    })
}

/// Times `iters` calls of `f` and returns the mean seconds per call.
fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // The guard compares against a no-telemetry baseline, so tracing and
    // profiling must be off regardless of the environment this runs in.
    telemetry::set_mode(TraceMode::Off);
    profiler::set_mode(ProfileMode::Off);
    // Shadow mode deliberately pays per-access classification; the overhead
    // contract below only speaks about the off mode, so an armed run can't
    // measure it meaningfully.
    if vgpu::sanitize::shadow_on() {
        eprintln!("telemetry_overhead: skipped — VGPU_SANITIZE=shadow arms per-access checks");
        return;
    }

    let (n, trials, iters, bound) = if smoke { (24, 3, 5, 1.5) } else { (40, 7, 20, 1.02) };
    let dims = GridDims::cube(n);
    let setup = fi_setup(dims);
    let kernel = room_acoustics::handwritten::fi_single_kernel().resolve_real(ScalarKind::F32);
    let global = [dims.nx, dims.ny, dims.nz];
    let total = dims.total();

    // Instrumented side: the Device entry point.
    let mut device = Device::gtx780();
    device.set_engine(Engine::Tape);
    let prep = device.compile(&kernel).unwrap();
    let prev = device.create_buffer_zeroed(ScalarKind::F32, total);
    let curr = device.create_buffer_zeroed(ScalarKind::F32, total);
    let next = device.create_buffer_zeroed(ScalarKind::F32, total);
    let args = [
        Arg::Buf(next),
        Arg::Buf(curr),
        Arg::Buf(prev),
        Arg::Val(Value::F32(setup.l as f32)),
        Arg::Val(Value::F32(setup.l2 as f32)),
        Arg::Val(Value::F32(0.1)),
        Arg::Val(Value::I32(dims.nx as i32)),
        Arg::Val(Value::I32(dims.ny as i32)),
        Arg::Val(Value::I32(dims.nz as i32)),
    ];

    // Baseline side: raw exec over plain shared buffers, no Device wrapper.
    let base_bufs: Vec<SharedBuf> =
        (0..3).map(|_| SharedBuf::new(BufData::zeros(ScalarKind::F32, total))).collect();
    let base_binds = [
        ArgBind::Buf(&base_bufs[0]),
        ArgBind::Buf(&base_bufs[1]),
        ArgBind::Buf(&base_bufs[2]),
        ArgBind::Val(Value::F32(setup.l as f32)),
        ArgBind::Val(Value::F32(setup.l2 as f32)),
        ArgBind::Val(Value::F32(0.1)),
        ArgBind::Val(Value::I32(dims.nx as i32)),
        ArgBind::Val(Value::I32(dims.ny as i32)),
        ArgBind::Val(Value::I32(dims.nz as i32)),
    ];
    let baseline_step = || {
        exec::launch_wg_engine(
            &prep,
            &base_binds,
            &global,
            None,
            ExecMode::Fast,
            false,
            128,
            Engine::Tape,
        )
        .unwrap();
    };

    // Warm both paths (first-touch, lazy tape state, allocator warm-up).
    for _ in 0..iters.min(5) {
        baseline_step();
        device.launch(&prep, &args, &global, ExecMode::Fast).unwrap();
    }

    let mut best_base = f64::INFINITY;
    let mut best_inst = f64::INFINITY;
    for trial in 0..trials {
        let base = time_per_iter(iters, baseline_step);
        let inst = time_per_iter(iters, || {
            device.launch(&prep, &args, &global, ExecMode::Fast).unwrap();
        });
        device.clear_events();
        best_base = best_base.min(base);
        best_inst = best_inst.min(inst);
        eprintln!(
            "trial {trial}: baseline {:.3} ms/step, instrumented {:.3} ms/step",
            base * 1e3,
            inst * 1e3
        );
    }

    let ratio = best_inst / best_base;
    println!(
        "telemetry_overhead: cube({n}) baseline {:.3} ms/step, instrumented {:.3} ms/step, \
         ratio {ratio:.4} (bound {bound})",
        best_base * 1e3,
        best_inst * 1e3
    );
    assert!(
        ratio <= bound,
        "telemetry + sanitizer-off branches add {:.2}% per-step overhead with \
         VGPU_TRACE=off VGPU_SANITIZE=off (bound {:.0}%)",
        (ratio - 1.0) * 100.0,
        (bound - 1.0) * 100.0
    );

    // Second guard: kernel-granularity profiling on the same instrumented
    // path. Bound is 5 % over the profile-off Device time (full bench);
    // the smoke run only checks the guard still executes.
    let prof_bound = if smoke { 1.5 } else { 1.05 };
    profiler::set_mode(ProfileMode::Kernel);
    let mut best_prof = f64::INFINITY;
    for _ in 0..trials {
        best_prof = best_prof.min(time_per_iter(iters, || {
            device.launch(&prep, &args, &global, ExecMode::Fast).unwrap();
        }));
        device.clear_events();
    }
    profiler::set_mode(ProfileMode::Off);
    let launches = profiler::snapshot().iter().map(|k| k.launches).sum::<u64>();
    assert!(launches > 0, "kernel profiler recorded nothing while enabled");
    profiler::reset();
    let prof_ratio = best_prof / best_inst;
    println!(
        "profiler_overhead: VGPU_PROFILE=kernel {:.3} ms/step, \
         ratio {prof_ratio:.4} vs profile-off (bound {prof_bound})",
        best_prof * 1e3
    );
    assert!(
        prof_ratio <= prof_bound,
        "kernel-mode profiling adds {:.2}% per-step overhead (bound {:.0}%)",
        (prof_ratio - 1.0) * 100.0,
        (prof_bound - 1.0) * 100.0
    );

    // Informational pass: arm the shadow sanitizer (process-wide and
    // sticky, so this must stay the last measurement) and re-run the same
    // step on shadow-carrying buffers. No bound — armed mode buys checking
    // with time — but the clean stencil must stay finding-free, and the
    // ratio lands in the log next to the off-mode numbers.
    vgpu::sanitize::force_shadow();
    let mut sdev = Device::gtx780();
    sdev.set_engine(Engine::Tape);
    let sprep = sdev.compile(&kernel).unwrap();
    let sbufs: Vec<_> = (0..3).map(|_| sdev.create_buffer_zeroed(ScalarKind::F32, total)).collect();
    let mut sargs = args;
    sargs[0] = Arg::Buf(sbufs[0]);
    sargs[1] = Arg::Buf(sbufs[1]);
    sargs[2] = Arg::Buf(sbufs[2]);
    let findings_before = vgpu::sanitize::findings().len();
    for _ in 0..iters.min(5) {
        sdev.launch(&sprep, &sargs, &global, ExecMode::Fast).unwrap();
    }
    let mut best_shadow = f64::INFINITY;
    for _ in 0..trials {
        best_shadow = best_shadow.min(time_per_iter(iters, || {
            sdev.launch(&sprep, &sargs, &global, ExecMode::Fast).unwrap();
        }));
        sdev.clear_events();
    }
    assert_eq!(
        vgpu::sanitize::findings().len(),
        findings_before,
        "shadow sanitizer flagged the clean stencil"
    );
    println!(
        "sanitize_overhead: VGPU_SANITIZE=shadow {:.3} ms/step, ratio {:.2} vs off \
         (informational — armed mode has no bound)",
        best_shadow * 1e3,
        best_shadow / best_inst
    );
}

//! Criterion bench for Figure 2: volume kernel vs boundary kernel cost per
//! simulation step (the ratio motivates the paper's focus on boundary
//! handling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, SimConfig, SimSetup,
};
use vgpu::{Device, ExecMode};

fn bench_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_phase");
    group.sample_size(10);
    let dims = GridDims::new(64, 48, 40);
    for (algo, fd) in [("FI-MM", false), ("FD-MM", true)] {
        let cfg = if fd {
            SimConfig::fdmm(dims, RoomShape::Dome)
        } else {
            SimConfig::fimm(dims, RoomShape::Dome)
        };
        let setup = SimSetup::new(&cfg);
        let kind =
            if fd { BoundaryKernel::FdMm } else { BoundaryKernel::FiMm { beta_constant: true } };
        let mut sim = HandwrittenSim::new(setup, Precision::Double, kind, Device::gtx780());
        sim.impulse(32, 24, 12, 1.0);
        group.bench_with_input(BenchmarkId::new("full_step", algo), &algo, |b, _| {
            b.iter(|| sim.step(ExecMode::Fast))
        });
        group.bench_with_input(BenchmarkId::new("boundary_only", algo), &algo, |b, _| {
            b.iter(|| sim.boundary_step_only(ExecMode::Fast))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fraction);
criterion_main!(benches);

//! Criterion bench for the compiler itself: type checking + view
//! construction + lowering + OpenCL emission for the paper's four kernels.
//! (Not a paper figure; included because code-generation latency matters to
//! any DSL built on top of LIFT.)

use criterion::{criterion_group, criterion_main, Criterion};
use lift::prelude::*;
use lift_acoustics::programs;

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    for (name, build) in [
        ("volume", programs::volume_program as fn() -> programs::Program),
        ("fi_single", programs::fi_single_program),
        ("fimm", programs::fimm_program),
        ("fdmm", programs::fdmm_program),
    ] {
        group.bench_function(format!("lower/{name}"), |b| {
            b.iter(|| {
                let p = build();
                p.lower(ScalarKind::F32).unwrap()
            })
        });
        group.bench_function(format!("emit/{name}"), |b| {
            let p = build();
            let lk = p.lower(ScalarKind::F32).unwrap();
            b.iter(|| opencl::emit_kernel(&lk.kernel))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);

//! Criterion bench for Figure 6 / Table VI: the FD-MM boundary kernel
//! (`MB = 3`) in isolation, LIFT-generated vs hand-written, box and dome,
//! both precisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift_acoustics::{LiftBoundary, LiftSim};
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, SimConfig, SimSetup,
};
use vgpu::{Device, ExecMode};

fn bench_fdmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fdmm_boundary_kernel");
    group.sample_size(20);
    let dims = GridDims::new(64, 48, 40);
    for shape in [RoomShape::Box, RoomShape::Dome] {
        for precision in [Precision::Single, Precision::Double] {
            let label = format!("{}/{}", shape.label(), precision.label());
            let setup = SimSetup::new(&SimConfig::fdmm(dims, shape));
            let mut lift =
                LiftSim::new(setup.clone(), precision, LiftBoundary::FdMm, Device::gtx780());
            group.bench_with_input(BenchmarkId::new("LIFT", &label), &label, |b, _| {
                b.iter(|| lift.boundary_step_only(ExecMode::Fast))
            });
            let mut hw =
                HandwrittenSim::new(setup, precision, BoundaryKernel::FdMm, Device::gtx780());
            group.bench_with_input(BenchmarkId::new("OpenCL", &label), &label, |b, _| {
                b.iter(|| hw.boundary_step_only(ExecMode::Fast))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fdmm);
criterion_main!(benches);

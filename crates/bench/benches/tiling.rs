//! Criterion bench for the overlapped-tiling rewrite (the optimisation of
//! the authors' companion TACO '20 stencil paper): plain `mapGlb` stencil
//! vs `mapWrg`+`toLocal`+`mapLcl` at several tile sizes. Wall-clock on the
//! interpreter; the DRAM-traffic comparison lives in
//! `tests/workgroup_tiling.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift::funs;
use lift::ir::{self, ExprRef, ParamDef};
use lift::lower::{lower_kernel, ArgSpec, LoweredKernel};
use lift::prelude::*;
use lift::rewrite::overlapped_tile_1d;
use vgpu::{Arg, BufData, BufId, Device, ExecMode};

const N: usize = 1 << 15;
const K: i64 = 7;

fn stencil_program() -> (std::rc::Rc<ParamDef>, ExprRef) {
    let a = ParamDef::typed("a", Type::array(Type::real(), N));
    let add = funs::add();
    let prog = ir::map_glb(
        ir::slide(K, 1, ir::pad((K - 1) / 2, (K - 1) / 2, PadKind::Clamp, a.to_expr())),
        "w",
        move |w| ir::reduce_seq(ir::lit(Lit::real(0.0)), w, |acc, x| ir::call(&add, vec![acc, x])),
    );
    (a, prog)
}

struct Runner {
    dev: Device,
    prep: vgpu::Prepared,
    args: Vec<Arg>,
    global: Vec<usize>,
    local: Option<usize>,
}

fn runner(lk: &LoweredKernel) -> Runner {
    let mut dev = Device::gtx780();
    let prep = dev.compile(&lk.kernel).unwrap();
    let input = dev.upload(BufData::from(vec![1.0f32; N]));
    let out: BufId = dev.create_buffer(ScalarKind::F32, N);
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, _) => Arg::Buf(input),
            ArgSpec::Size(_) => unreachable!(),
            ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    let global: Vec<usize> =
        lk.global_size.iter().map(|g| g.eval(&|_| None).unwrap() as usize).collect();
    let local = lk.local_size.as_ref().map(|l| l.eval(&|_| None).unwrap() as usize);
    Runner { dev, prep, args, global, local }
}

fn bench_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlapped_tiling");
    group.sample_size(20);
    let (a, plain) = stencil_program();
    let plain_lk =
        lower_kernel("plain", std::slice::from_ref(&a), &plain, ScalarKind::F32).unwrap();
    let mut r = runner(&plain_lk);
    group.bench_function("untiled", |b| {
        b.iter(|| r.dev.launch(&r.prep, &r.args, &r.global, ExecMode::Fast).unwrap())
    });
    for tile in [32i64, 64, 128] {
        let tiled = overlapped_tile_1d(&plain, tile).unwrap();
        let lk = lower_kernel("tiled", std::slice::from_ref(&a), &tiled, ScalarKind::F32).unwrap();
        let mut r = runner(&lk);
        group.bench_with_input(BenchmarkId::new("tiled", tile), &tile, |b, _| {
            b.iter(|| {
                r.dev.launch_wg(&r.prep, &r.args, &r.global, r.local, ExecMode::Fast).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);

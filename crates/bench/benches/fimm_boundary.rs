//! Criterion bench for Figure 5 / Table V: the FI-MM boundary kernel in
//! isolation, LIFT-generated vs hand-written, box and dome.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift_acoustics::{LiftBoundary, LiftSim};
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, SimConfig, SimSetup,
};
use vgpu::{Device, ExecMode};

fn bench_fimm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fimm_boundary_kernel");
    group.sample_size(20);
    let dims = GridDims::new(64, 48, 40);
    for shape in [RoomShape::Box, RoomShape::Dome] {
        let setup = SimSetup::new(&SimConfig::fimm(dims, shape));
        let mut lift =
            LiftSim::new(setup.clone(), Precision::Single, LiftBoundary::FiMm, Device::gtx780());
        group.bench_with_input(BenchmarkId::new("LIFT", shape.label()), &shape, |b, _| {
            b.iter(|| lift.boundary_step_only(ExecMode::Fast))
        });
        let mut hw = HandwrittenSim::new(
            setup,
            Precision::Single,
            BoundaryKernel::FiMm { beta_constant: true },
            Device::gtx780(),
        );
        group.bench_with_input(BenchmarkId::new("OpenCL", shape.label()), &shape, |b, _| {
            b.iter(|| hw.boundary_step_only(ExecMode::Fast))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fimm);
criterion_main!(benches);

//! Criterion bench for Figure 4 / Table IV: the naive one-kernel FI
//! simulation, LIFT-generated vs hand-written, wall-clock on the virtual
//! GPU substrate (single-host interpreter — the *relative* numbers are the
//! comparison; modeled per-platform times come from `repro_fig4`).
//!
//! Rooms are small (the interpreter runs on the host CPU); both versions
//! execute identical simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift_acoustics::FiSingleLift;
use room_acoustics::{
    BoundaryModel, GridDims, MaterialAssignment, Precision, RoomShape, SimConfig, SimSetup,
};
use vgpu::{Device, ExecMode};

fn fi_setup(dims: GridDims) -> SimSetup {
    SimSetup::new(&SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: MaterialAssignment::Uniform,
        boundary: BoundaryModel::Fi { beta: 0.1 },
    })
}

fn bench_fi(c: &mut Criterion) {
    let mut group = c.benchmark_group("fi_stencil_step");
    group.sample_size(10);
    for n in [24usize, 40] {
        let dims = GridDims::cube(n);
        // LIFT-generated kernel
        let mut lift = FiSingleLift::new(fi_setup(dims), Precision::Single, 0.1, Device::gtx780());
        lift.impulse(n / 2, n / 2, n / 2, 1.0);
        group.bench_with_input(BenchmarkId::new("LIFT", n), &n, |b, _| {
            b.iter(|| lift.step(ExecMode::Fast))
        });
        // hand-written kernel, driven identically
        let setup = fi_setup(dims);
        let mut device = Device::gtx780();
        let kernel = room_acoustics::handwritten::fi_single_kernel()
            .resolve_real(lift::types::ScalarKind::F32);
        let prep = device.compile(&kernel).unwrap();
        let total = dims.total();
        let prev = device.create_buffer_zeroed(lift::types::ScalarKind::F32, total);
        let curr = device.create_buffer_zeroed(lift::types::ScalarKind::F32, total);
        let next = device.create_buffer_zeroed(lift::types::ScalarKind::F32, total);
        let args = [
            vgpu::Arg::Buf(next),
            vgpu::Arg::Buf(curr),
            vgpu::Arg::Buf(prev),
            vgpu::Arg::Val(lift::scalar::Value::F32(setup.l as f32)),
            vgpu::Arg::Val(lift::scalar::Value::F32(setup.l2 as f32)),
            vgpu::Arg::Val(lift::scalar::Value::F32(0.1)),
            vgpu::Arg::Val(lift::scalar::Value::I32(dims.nx as i32)),
            vgpu::Arg::Val(lift::scalar::Value::I32(dims.ny as i32)),
            vgpu::Arg::Val(lift::scalar::Value::I32(dims.nz as i32)),
        ];
        group.bench_with_input(BenchmarkId::new("OpenCL", n), &n, |b, _| {
            b.iter(|| {
                device.launch(&prep, &args, &[dims.nx, dims.ny, dims.nz], ExecMode::Fast).unwrap()
            })
        });
    }
    group.finish();
}

/// Warp-vectorized tape vs scalar tape vs reference tree-walker on the same
/// hand-written FI kernel — the speedup each compile/execute stage buys on
/// the interpreter substrate.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fi_stencil_engine");
    group.sample_size(10);
    let dims = GridDims::cube(40);
    let setup = fi_setup(dims);
    for (label, engine) in [
        ("vector", vgpu::Engine::Vector),
        ("tape", vgpu::Engine::Tape),
        ("tree", vgpu::Engine::Tree),
    ] {
        let mut device = Device::gtx780();
        device.set_engine(engine);
        let kernel = room_acoustics::handwritten::fi_single_kernel()
            .resolve_real(lift::types::ScalarKind::F32);
        let prep = device.compile(&kernel).unwrap();
        let total = dims.total();
        let prev = device.create_buffer_zeroed(lift::types::ScalarKind::F32, total);
        let curr = device.create_buffer_zeroed(lift::types::ScalarKind::F32, total);
        let next = device.create_buffer_zeroed(lift::types::ScalarKind::F32, total);
        let args = [
            vgpu::Arg::Buf(next),
            vgpu::Arg::Buf(curr),
            vgpu::Arg::Buf(prev),
            vgpu::Arg::Val(lift::scalar::Value::F32(setup.l as f32)),
            vgpu::Arg::Val(lift::scalar::Value::F32(setup.l2 as f32)),
            vgpu::Arg::Val(lift::scalar::Value::F32(0.1)),
            vgpu::Arg::Val(lift::scalar::Value::I32(dims.nx as i32)),
            vgpu::Arg::Val(lift::scalar::Value::I32(dims.ny as i32)),
            vgpu::Arg::Val(lift::scalar::Value::I32(dims.nz as i32)),
        ];
        group.bench_function(label, |b| {
            b.iter(|| {
                device.launch(&prep, &args, &[dims.nx, dims.ny, dims.nz], ExecMode::Fast).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fi, bench_engines);
criterion_main!(benches);

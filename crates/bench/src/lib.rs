//! Benchmark harness for the IPDPS 2021 evaluation (§VI–VII).
//!
//! The `repro_*` binaries in `src/bin/` regenerate every table and figure of
//! the paper; this library provides the shared machinery:
//!
//! * [`measure`] — run one kernel configuration on the virtual GPU in
//!   transaction-counting mode and capture its traffic/flops;
//! * [`Measurement::modeled_ms`] — convert one measurement into a modeled
//!   kernel time on each of the paper's four platforms (Table III profiles);
//! * [`paper`] — the published reference numbers (Tables II, IV, V, VI),
//!   embedded so every report prints *paper vs measured* side by side;
//! * [`table`] — plain-text table printing and JSON result dumps.
//!
//! Methodology note (DESIGN.md §3): execution is functional and
//! deterministic; "kernel time" is the roofline model applied to counted
//! 128-byte memory transactions and flops. Absolute milliseconds are
//! first-order estimates — the claims under reproduction are *shapes*:
//! LIFT ≈ hand-written, box ≥ dome, the 336³ dip, double < single, and
//! FD-MM ≪ FI-MM throughput.

#![warn(missing_docs)]

pub mod compare;
pub mod measure;
pub mod paper;
pub mod provenance;
pub mod report;
pub mod run_report;
pub mod table;
pub mod trace;

pub use measure::{measure_fdmm, measure_fi_single, measure_fimm, Impl, Measurement};

//! Kernel measurement on the virtual GPU.

use lift_acoustics::{FiSingleLift, LiftBoundary, LiftSim};
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, SimConfig, SimSetup,
};
use serde::Serialize;
use vgpu::{Counters, Device, DeviceProfile, ExecMode, ModelInput};

/// Which implementation a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Impl {
    /// The hand-written baseline (the paper's tuned "OpenCL" bars).
    OpenCl,
    /// The LIFT-generated kernel.
    Lift,
}

impl Impl {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Impl::OpenCl => "OpenCL",
            Impl::Lift => "LIFT",
        }
    }

    /// Both implementations, in the paper's plotting order.
    pub fn both() -> [Impl; 2] {
        [Impl::OpenCl, Impl::Lift]
    }
}

/// One measured kernel configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Implementation.
    pub impl_name: &'static str,
    /// Algorithm ("FI", "FI-MM", "FD-MM").
    pub algo: &'static str,
    /// Room-size label (the paper labels by leading dimension).
    pub size: String,
    /// Shape label.
    pub shape: &'static str,
    /// Precision label.
    pub precision: &'static str,
    /// Updates per kernel invocation (grid points for FI, boundary points
    /// for FI-MM/FD-MM) — the denominator of the throughput metric.
    pub updates: u64,
    /// Operation counters.
    pub counters: Counters,
    /// Coalesced DRAM traffic in bytes.
    pub txn_bytes: u64,
    /// Interpreter wall time (host-side, informational only).
    pub wall_ms: f64,
    /// True for f64 runs.
    pub double: bool,
}

impl Measurement {
    /// Modeled kernel time on a platform, in milliseconds.
    pub fn modeled_ms(&self, profile: &DeviceProfile) -> f64 {
        vgpu::modeled_time_s(
            &ModelInput {
                transaction_bytes: self.txn_bytes,
                flops: self.counters.flops,
                double_precision: self.double,
                halo_bytes: 0,
            },
            profile,
        ) * 1e3
    }

    /// Throughput in giga-updates per second on a platform (the paper's
    /// "Gigaelements Per Second").
    pub fn gups(&self, profile: &DeviceProfile) -> f64 {
        self.updates as f64 / (self.modeled_ms(profile) * 1e-3) / 1e9
    }
}

fn precision_label(p: Precision) -> &'static str {
    p.label()
}

/// Measures the FI-MM boundary kernel (Figure 5 / Table V) for one
/// configuration. Runs two warm-up steps (so the field is non-trivial) and
/// measures the third boundary launch in transaction-counting mode.
pub fn measure_fimm(
    dims: GridDims,
    shape: RoomShape,
    precision: Precision,
    which: Impl,
) -> Measurement {
    // Each measurement is one logical simulation: rescope the fallback/
    // divergence dedupe so a repro bin running many sims in one process
    // gets every sim's audit records, not just the first's.
    vgpu::exec::reset_fallback_dedupe();
    let setup = SimSetup::new(&SimConfig::fimm(dims, shape));
    let updates = setup.num_b() as u64;
    // Boundary traffic is value-independent (no data-dependent branches),
    // so the kernel is measured in isolation without a volume pass.
    let stats = match which {
        Impl::OpenCl => {
            let mut sim = HandwrittenSim::new(
                setup,
                precision,
                // the hand-tuned kernel keeps β in constant memory (§VII-B1)
                BoundaryKernel::FiMm { beta_constant: true },
                Device::gtx780(),
            );
            sim.boundary_step_only(ExecMode::Model { sample_stride: 1 })
        }
        Impl::Lift => {
            let mut sim = LiftSim::new(setup, precision, LiftBoundary::FiMm, Device::gtx780());
            sim.boundary_step_only(ExecMode::Model { sample_stride: 1 })
        }
    };
    Measurement {
        impl_name: which.label(),
        algo: "FI-MM",
        size: dims.label(),
        shape: shape.label(),
        precision: precision_label(precision),
        updates,
        counters: stats.counters,
        txn_bytes: stats.transaction_bytes.expect("model mode"),
        wall_ms: stats.wall.as_secs_f64() * 1e3,
        double: precision == Precision::Double,
    }
}

/// Measures the FD-MM boundary kernel (Figure 6 / Table VI, `MB = 3`).
pub fn measure_fdmm(
    dims: GridDims,
    shape: RoomShape,
    precision: Precision,
    which: Impl,
) -> Measurement {
    vgpu::exec::reset_fallback_dedupe(); // one sim = one dedupe scope
    let setup = SimSetup::new(&SimConfig::fdmm(dims, shape));
    let updates = setup.num_b() as u64;
    let stats = match which {
        Impl::OpenCl => {
            let mut sim =
                HandwrittenSim::new(setup, precision, BoundaryKernel::FdMm, Device::gtx780());
            sim.boundary_step_only(ExecMode::Model { sample_stride: 1 })
        }
        Impl::Lift => {
            let mut sim = LiftSim::new(setup, precision, LiftBoundary::FdMm, Device::gtx780());
            sim.boundary_step_only(ExecMode::Model { sample_stride: 1 })
        }
    };
    Measurement {
        impl_name: which.label(),
        algo: "FD-MM",
        size: dims.label(),
        shape: shape.label(),
        precision: precision_label(precision),
        updates,
        counters: stats.counters,
        txn_bytes: stats.transaction_bytes.expect("model mode"),
        wall_ms: stats.wall.as_secs_f64() * 1e3,
        double: precision == Precision::Double,
    }
}

/// Measures the naive one-kernel FI simulation (Figure 4 / Table IV, box
/// rooms). The full grid is too large to trace exhaustively on this host,
/// so the transaction model samples every `sample_stride`-th warp — valid
/// because the stencil is translation-invariant (see
/// [`vgpu::ExecMode::Model`]).
pub fn measure_fi_single(
    dims: GridDims,
    precision: Precision,
    which: Impl,
    sample_stride: usize,
) -> Measurement {
    vgpu::exec::reset_fallback_dedupe(); // one sim = one dedupe scope
    let cfg = SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: room_acoustics::MaterialAssignment::Uniform,
        boundary: room_acoustics::BoundaryModel::Fi { beta: 0.1 },
    };
    let setup = SimSetup::new(&cfg);
    let updates = dims.total() as u64;
    let src = (dims.nx / 3, dims.ny / 3, dims.nz / 3);
    let stats = match which {
        Impl::OpenCl => {
            // direct launch of the hand-written Listing 1 kernel
            let mut device = Device::gtx780();
            let real = precision.kind();
            let kernel = room_acoustics::handwritten::fi_single_kernel().resolve_real(real);
            let prep = device.compile(&kernel).expect("fi kernel");
            let n = dims.total();
            let prev = device.create_buffer_zeroed(real, n);
            let curr = device.create_buffer_zeroed(real, n);
            let next = device.create_buffer_zeroed(real, n);
            // impulse
            let idx = dims.idx(src.0, src.1, src.2);
            for b in [curr, prev] {
                let mut d = device.read(b);
                d.set(idx, precision.val(1.0));
                device.write(b, d);
            }
            let args = [
                vgpu::Arg::Buf(next),
                vgpu::Arg::Buf(curr),
                vgpu::Arg::Buf(prev),
                vgpu::Arg::Val(precision.val(setup.l)),
                vgpu::Arg::Val(precision.val(setup.l2)),
                vgpu::Arg::Val(precision.val(0.1)),
                vgpu::Arg::Val(lift::scalar::Value::I32(dims.nx as i32)),
                vgpu::Arg::Val(lift::scalar::Value::I32(dims.ny as i32)),
                vgpu::Arg::Val(lift::scalar::Value::I32(dims.nz as i32)),
            ];
            device
                .launch(
                    &prep,
                    &args,
                    &[dims.nx, dims.ny, dims.nz],
                    ExecMode::Model { sample_stride },
                )
                .expect("fi launch")
        }
        Impl::Lift => {
            let mut sim = FiSingleLift::new(setup, precision, 0.1, Device::gtx780());
            sim.impulse(src.0, src.1, src.2, 1.0);
            sim.step(ExecMode::Model { sample_stride })
        }
    };
    Measurement {
        impl_name: which.label(),
        algo: "FI",
        size: dims.label(),
        shape: "box",
        precision: precision_label(precision),
        updates,
        counters: stats.counters,
        txn_bytes: stats.transaction_bytes.expect("model mode"),
        wall_ms: stats.wall.as_secs_f64() * 1e3,
        double: precision == Precision::Double,
    }
}

/// The room sizes to benchmark: the paper's Table II sizes, or reduced
/// stand-ins when `REPRO_QUICK=1` (identical aspect ratios, ~1/4 linear
/// scale) for fast smoke runs.
pub fn bench_sizes() -> Vec<GridDims> {
    if std::env::var("REPRO_QUICK").as_deref() == Ok("1") {
        vec![GridDims::new(152, 102, 77), GridDims::cube(84), GridDims::new(77, 52, 40)]
    } else {
        GridDims::paper_sizes().to_vec()
    }
}

/// Warp-sampling stride for full-grid (volume) measurements, scaled so the
/// sampled work stays around a million work-items.
pub fn volume_stride(dims: &GridDims) -> usize {
    (dims.total() / 1_000_000).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fimm_measurement_roundtrip() {
        let dims = GridDims::new(40, 30, 24);
        let m = measure_fimm(dims, RoomShape::Box, Precision::Single, Impl::Lift);
        assert_eq!(m.algo, "FI-MM");
        assert!(m.txn_bytes > 0);
        assert!(m.updates > 0);
        let p = DeviceProfile::gtx780();
        assert!(m.modeled_ms(&p) > 0.0);
        assert!(m.gups(&p) > 0.0);
    }

    #[test]
    fn lift_and_handwritten_fimm_are_on_par() {
        // The headline claim at small scale: generated ≈ hand-written.
        let dims = GridDims::new(40, 30, 24);
        let p = DeviceProfile::gtx780();
        let a = measure_fimm(dims, RoomShape::Box, Precision::Single, Impl::OpenCl);
        let b = measure_fimm(dims, RoomShape::Box, Precision::Single, Impl::Lift);
        let ratio = b.modeled_ms(&p) / a.modeled_ms(&p);
        assert!((0.5..=2.0).contains(&ratio), "LIFT/OpenCL ratio {ratio}");
    }

    #[test]
    fn fdmm_costs_more_than_fimm_per_update() {
        let dims = GridDims::new(40, 30, 24);
        let p = DeviceProfile::gtx780();
        let fi = measure_fimm(dims, RoomShape::Box, Precision::Double, Impl::OpenCl);
        let fd = measure_fdmm(dims, RoomShape::Box, Precision::Double, Impl::OpenCl);
        assert!(fd.gups(&p) < fi.gups(&p), "FD-MM must be slower per update");
    }

    #[test]
    fn fi_sampling_is_consistent() {
        let dims = GridDims::new(40, 30, 24);
        let full = measure_fi_single(dims, Precision::Single, Impl::Lift, 1);
        let sampled = measure_fi_single(dims, Precision::Single, Impl::Lift, 4);
        let r = sampled.txn_bytes as f64 / full.txn_bytes as f64;
        assert!((0.85..=1.15).contains(&r), "sampled/full traffic ratio {r}");
    }
}

//! The unified run report: one machine-readable `results/run_report.json`
//! (plus a text rendering) per bench/repro invocation.
//!
//! Every `repro_*` binary, `dispatch_bench`, and `batch_bench` ends by
//! calling [`emit`] with its one-line result record. The report joins that
//! record with everything the observability stack accumulated during the
//! run — the kernel profiler's per-(kernel, engine, precision) attribution
//! and per-op hotspots ([`vgpu::profiler`]), the measured-vs-modeled
//! residual fit, the metric-registry snapshot (with histogram percentiles),
//! and the provenance fields committed bench snapshots carry — so a single
//! artifact answers "what ran, how fast, where did time go, and how wrong
//! was the model". `bench_compare` diffs two of these (or two `BENCH_*`
//! snapshots) and gates regressions.

use crate::provenance;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::path::{Path, PathBuf};
use vgpu::profiler;
use vgpu::telemetry::MetricSnapshot;

/// Schema version stamped into every report; bump on breaking layout
/// changes so `bench_compare --check` can reject mixed-version diffs.
pub const SCHEMA_VERSION: u32 = 1;

/// The unified run report (see module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Report layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Emitting binary's name (e.g. `dispatch_bench`).
    pub name: String,
    /// Resolved engine label (`VGPU_ENGINE`).
    pub engine: String,
    /// Engine-ladder leg the run's flat launches executed on
    /// (`tree|tape|vector|compiled`; empty in pre-ladder reports).
    #[serde(default = "String::new")]
    pub ladder: String,
    /// Interpreter threads the run used.
    pub threads: usize,
    /// `"cold"`/`"warm"` launch-plan cache at emission time.
    pub plan_cache: String,
    /// Virtual device count the run sharded across (`VGPU_DEVICES`);
    /// defaults to 1 so pre-sharding reports still parse.
    #[serde(default = "default_devices")]
    pub devices: usize,
    /// Active `VGPU_PROFILE` mode during the run.
    pub profile_mode: String,
    /// Shadow-memory sanitizer mode (`VGPU_SANITIZE`); defaults to `off`
    /// so pre-sanitizer reports still parse.
    #[serde(default = "default_sanitize")]
    pub sanitize: String,
    /// The binary's own result record (its one-line JSON, as a tree).
    pub record: Value,
    /// Kernel profiles accumulated during the run (empty when profiling
    /// was off).
    pub kernels: Vec<vgpu::KernelProfileSnapshot>,
    /// Measured-vs-modeled residual fit over `kernels` (`None` without
    /// modeled launches or with profiling off).
    pub residual: Option<vgpu::ResidualReport>,
    /// Metric-registry snapshot, histogram percentiles included.
    pub metrics: Vec<MetricSnapshot>,
}

fn default_devices() -> usize {
    1
}

fn default_sanitize() -> String {
    "off".to_string()
}

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Builds the report for the current process state: profiler snapshot,
/// residual fit, registry snapshot, provenance.
pub fn build(name: &str, record: Value) -> RunReport {
    let kernels = profiler::snapshot();
    let residual = profiler::residuals(&kernels);
    RunReport {
        schema_version: SCHEMA_VERSION,
        name: name.to_string(),
        engine: provenance::engine_label(),
        ladder: provenance::ladder_leg().to_string(),
        threads: provenance::threads(),
        plan_cache: provenance::plan_cache_state().to_string(),
        devices: provenance::device_count(),
        profile_mode: profiler::mode().label().to_string(),
        sanitize: provenance::sanitize_label().to_string(),
        record,
        kernels,
        residual,
        metrics: vgpu::telemetry::registry().snapshot(),
    }
}

/// Renders the human-readable form: provenance header, the profiler's
/// per-kernel/hotspot/residual tables when profiling ran, and a metric
/// digest.
pub fn render(report: &RunReport) -> String {
    let ladder = if report.ladder.is_empty() { "?" } else { &report.ladder };
    let mut out = format!(
        "== run report: {} (engine {}, ladder leg {}, {} threads, {} device(s), plan cache {}, \
         profile {}, sanitize {}) ==\n",
        report.name,
        report.engine,
        ladder,
        report.threads,
        report.devices,
        report.plan_cache,
        report.profile_mode,
        report.sanitize
    );
    if report.kernels.is_empty() {
        out.push_str("(no kernel profiles — set VGPU_PROFILE=kernel|op to attribute time)\n");
    } else {
        out.push_str(&profiler::render_report(&report.kernels));
    }
    out
}

/// Writes `results/run_report.json` (+ `.txt` rendering) and, when
/// profiling is active, prints the rendering to stderr. Failures go to
/// stderr and are never fatal — reports must not change a bench's exit
/// code. Returns the JSON path on success.
pub fn emit(name: &str, record: Value) -> Option<PathBuf> {
    let report = build(name, record);
    let text = render(&report);
    if profiler::enabled() {
        eprintln!("{text}");
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return None;
    }
    let txt_path = dir.join("run_report.txt");
    if let Err(e) = std::fs::write(&txt_path, &text) {
        eprintln!("cannot write {}: {e}", txt_path.display());
    }
    let json_path = dir.join("run_report.json");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&json_path, json) {
                eprintln!("cannot write {}: {e}", json_path.display());
                return None;
            }
        }
        Err(e) => {
            eprintln!("cannot serialise run report: {e}");
            return None;
        }
    }
    eprintln!("wrote run report {}", json_path.display());
    Some(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn report_roundtrips_through_json() {
        let report = build("unit", json!({"bench": "unit", "ms": 1.5}));
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.name, "unit");
        assert_eq!(back.record.pointer("/bench").and_then(Value::as_str), Some("unit"));
        assert!(render(&back).contains("run report: unit"));
    }
}

//! The paper's published numbers (Tables II, IV, V, VI), embedded so every
//! `repro_*` report prints *paper vs measured* side by side.
//!
//! Times are medians in milliseconds, transcribed from the appendix of the
//! IPDPS 2021 paper. Platform names follow the paper's labels.

/// Table II: room sizes and boundary-point counts.
/// `(size label, x, y, z, dome boundary points, box boundary points)`
pub const TABLE2: &[(&str, usize, usize, usize, u64, u64)] = &[
    ("602", 602, 402, 302, 690_624, 1_085_208),
    ("336", 336, 336, 336, 376_808, 673_352),
    ("302", 302, 202, 152, 172_256, 272_608),
];

/// One row of Tables IV–VI: `(platform, version, size, shape, single ms,
/// double ms)`. Table IV has no shape column (box only).
pub type TimeRow = (&'static str, &'static str, &'static str, &'static str, f64, f64);

/// Table IV: naive frequency-independent (FI) kernel times.
pub const TABLE4: &[TimeRow] = &[
    ("Titan Black", "OpenCL", "602", "box", 8.19, 11.33),
    ("Titan Black", "LIFT", "602", "box", 6.93, 11.55),
    ("Titan Black", "OpenCL", "336", "box", 4.01, 5.16),
    ("Titan Black", "LIFT", "336", "box", 3.51, 5.91),
    ("Titan Black", "OpenCL", "302", "box", 0.97, 1.37),
    ("Titan Black", "LIFT", "302", "box", 0.84, 1.45),
    ("AMD7970", "OpenCL", "602", "box", 5.05, 10.66),
    ("AMD7970", "LIFT", "602", "box", 4.97, 10.31),
    ("AMD7970", "OpenCL", "336", "box", 2.70, 5.68),
    ("AMD7970", "LIFT", "336", "box", 2.70, 5.70),
    ("AMD7970", "OpenCL", "302", "box", 0.66, 1.41),
    ("AMD7970", "LIFT", "302", "box", 0.64, 1.31),
    ("RadeonR9", "OpenCL", "602", "box", 4.89, 10.10),
    ("RadeonR9", "LIFT", "602", "box", 5.05, 9.18),
    ("RadeonR9", "OpenCL", "336", "box", 2.93, 4.91),
    ("RadeonR9", "LIFT", "336", "box", 2.96, 5.09),
    ("RadeonR9", "OpenCL", "302", "box", 0.60, 1.19),
    ("RadeonR9", "LIFT", "302", "box", 0.69, 1.16),
    ("GTX780", "OpenCL", "602", "box", 9.21, 12.30),
    ("GTX780", "LIFT", "602", "box", 7.59, 13.24),
    ("GTX780", "OpenCL", "336", "box", 4.57, 5.65),
    ("GTX780", "LIFT", "336", "box", 3.85, 6.79),
    ("GTX780", "OpenCL", "302", "box", 1.23, 1.52),
    ("GTX780", "LIFT", "302", "box", 1.04, 1.69),
];

/// Table V: FI-MM boundary-kernel times.
pub const TABLE5: &[TimeRow] = &[
    ("RadeonR9", "OpenCL", "602", "box", 0.28, 0.51),
    ("RadeonR9", "LIFT", "602", "box", 0.28, 0.35),
    ("RadeonR9", "OpenCL", "302", "box", 0.07, 0.13),
    ("RadeonR9", "LIFT", "302", "box", 0.07, 0.09),
    ("RadeonR9", "OpenCL", "336", "box", 0.32, 0.60),
    ("RadeonR9", "LIFT", "336", "box", 0.33, 0.37),
    ("AMD7970", "OpenCL", "602", "box", 0.27, 0.34),
    ("AMD7970", "LIFT", "602", "box", 0.27, 0.34),
    ("AMD7970", "OpenCL", "302", "box", 0.07, 0.08),
    ("AMD7970", "LIFT", "302", "box", 0.07, 0.08),
    ("AMD7970", "OpenCL", "336", "box", 0.29, 0.33),
    ("AMD7970", "LIFT", "336", "box", 0.29, 0.33),
    ("GTX780", "OpenCL", "602", "box", 0.27, 0.33),
    ("GTX780", "LIFT", "602", "box", 0.27, 0.34),
    ("GTX780", "OpenCL", "302", "box", 0.06, 0.08),
    ("GTX780", "LIFT", "302", "box", 0.06, 0.08),
    ("GTX780", "OpenCL", "336", "box", 0.25, 0.34),
    ("GTX780", "LIFT", "336", "box", 0.25, 0.34),
    ("Titan Black", "OpenCL", "602", "box", 0.29, 0.31),
    ("Titan Black", "LIFT", "602", "box", 0.28, 0.36),
    ("Titan Black", "OpenCL", "302", "box", 0.06, 0.07),
    ("Titan Black", "LIFT", "302", "box", 0.06, 0.09),
    ("Titan Black", "OpenCL", "336", "box", 0.30, 0.29),
    ("Titan Black", "LIFT", "336", "box", 0.28, 0.40),
    ("RadeonR9", "OpenCL", "602", "dome", 0.34, 0.48),
    ("RadeonR9", "LIFT", "602", "dome", 0.34, 0.37),
    ("RadeonR9", "OpenCL", "302", "dome", 0.08, 0.11),
    ("RadeonR9", "LIFT", "302", "dome", 0.08, 0.08),
    ("RadeonR9", "OpenCL", "336", "dome", 0.28, 0.33),
    ("RadeonR9", "LIFT", "336", "dome", 0.28, 0.27),
    ("AMD7970", "OpenCL", "602", "dome", 0.32, 0.38),
    ("AMD7970", "LIFT", "602", "dome", 0.31, 0.38),
    ("AMD7970", "OpenCL", "302", "dome", 0.08, 0.09),
    ("AMD7970", "LIFT", "302", "dome", 0.08, 0.09),
    ("AMD7970", "OpenCL", "336", "dome", 0.25, 0.28),
    ("AMD7970", "LIFT", "336", "dome", 0.25, 0.28),
    ("GTX780", "OpenCL", "602", "dome", 0.28, 0.38),
    ("GTX780", "LIFT", "602", "dome", 0.29, 0.38),
    ("GTX780", "OpenCL", "302", "dome", 0.06, 0.09),
    ("GTX780", "LIFT", "302", "dome", 0.06, 0.09),
    ("GTX780", "OpenCL", "336", "dome", 0.19, 0.30),
    ("GTX780", "LIFT", "336", "dome", 0.21, 0.30),
    ("Titan Black", "OpenCL", "602", "dome", 0.30, 0.32),
    ("Titan Black", "LIFT", "602", "dome", 0.29, 0.37),
    ("Titan Black", "OpenCL", "302", "dome", 0.06, 0.07),
    ("Titan Black", "LIFT", "302", "dome", 0.06, 0.08),
    ("Titan Black", "OpenCL", "336", "dome", 0.24, 0.25),
    ("Titan Black", "LIFT", "336", "dome", 0.20, 0.25),
];

/// Table VI: FD-MM boundary-kernel times (MB = 3).
pub const TABLE6: &[TimeRow] = &[
    ("RadeonR9", "OpenCL", "602", "box", 0.52, 1.05),
    ("RadeonR9", "LIFT", "602", "box", 0.47, 0.94),
    ("RadeonR9", "OpenCL", "302", "box", 0.12, 0.26),
    ("RadeonR9", "LIFT", "302", "box", 0.12, 0.23),
    ("RadeonR9", "OpenCL", "336", "box", 0.49, 0.69),
    ("RadeonR9", "LIFT", "336", "box", 0.44, 0.64),
    ("AMD7970", "OpenCL", "602", "box", 0.57, 0.93),
    ("AMD7970", "LIFT", "602", "box", 0.54, 0.85),
    ("AMD7970", "OpenCL", "302", "box", 0.13, 0.22),
    ("AMD7970", "LIFT", "302", "box", 0.13, 0.21),
    ("AMD7970", "OpenCL", "336", "box", 0.50, 0.71),
    ("AMD7970", "LIFT", "336", "box", 0.47, 0.69),
    ("GTX780", "OpenCL", "602", "box", 0.48, 0.78),
    ("GTX780", "LIFT", "602", "box", 0.52, 0.76),
    ("GTX780", "OpenCL", "302", "box", 0.11, 0.18),
    ("GTX780", "LIFT", "302", "box", 0.12, 0.18),
    ("GTX780", "OpenCL", "336", "box", 0.36, 0.61),
    ("GTX780", "LIFT", "336", "box", 0.38, 0.59),
    ("Titan Black", "OpenCL", "602", "box", 0.49, 0.83),
    ("Titan Black", "LIFT", "602", "box", 0.50, 0.87),
    ("Titan Black", "OpenCL", "302", "box", 0.11, 0.20),
    ("Titan Black", "LIFT", "302", "box", 0.12, 0.21),
    ("Titan Black", "OpenCL", "336", "box", 0.40, 0.55),
    ("Titan Black", "LIFT", "336", "box", 0.40, 0.60),
    ("RadeonR9", "OpenCL", "602", "dome", 0.45, 0.66),
    ("RadeonR9", "LIFT", "602", "dome", 0.46, 0.68),
    ("RadeonR9", "OpenCL", "302", "dome", 0.11, 0.17),
    ("RadeonR9", "LIFT", "302", "dome", 0.11, 0.17),
    ("RadeonR9", "OpenCL", "336", "dome", 0.37, 0.41),
    ("RadeonR9", "LIFT", "336", "dome", 0.35, 0.42),
    ("AMD7970", "OpenCL", "602", "dome", 0.48, 0.70),
    ("AMD7970", "LIFT", "602", "dome", 0.48, 0.70),
    ("AMD7970", "OpenCL", "302", "dome", 0.12, 0.17),
    ("AMD7970", "LIFT", "302", "dome", 0.12, 0.17),
    ("AMD7970", "OpenCL", "336", "dome", 0.36, 0.47),
    ("AMD7970", "LIFT", "336", "dome", 0.36, 0.47),
    ("GTX780", "OpenCL", "602", "dome", 0.41, 0.60),
    ("GTX780", "LIFT", "602", "dome", 0.44, 0.63),
    ("GTX780", "OpenCL", "302", "dome", 0.09, 0.15),
    ("GTX780", "LIFT", "302", "dome", 0.10, 0.16),
    ("GTX780", "OpenCL", "336", "dome", 0.29, 0.45),
    ("GTX780", "LIFT", "336", "dome", 0.29, 0.44),
    ("Titan Black", "OpenCL", "602", "dome", 0.42, 0.56),
    ("Titan Black", "LIFT", "602", "dome", 0.43, 0.65),
    ("Titan Black", "OpenCL", "302", "dome", 0.10, 0.14),
    ("Titan Black", "LIFT", "302", "dome", 0.10, 0.16),
    ("Titan Black", "OpenCL", "336", "dome", 0.30, 0.36),
    ("Titan Black", "LIFT", "336", "dome", 0.30, 0.42),
];

/// Looks up a published time (ms) for `(platform, version, size, shape,
/// double?)` in one of the tables.
pub fn lookup(
    table: &[TimeRow],
    platform: &str,
    version: &str,
    size: &str,
    shape: &str,
    double: bool,
) -> Option<f64> {
    table
        .iter()
        .find(|(p, v, s, sh, _, _)| *p == platform && *v == version && *s == size && *sh == shape)
        .map(|(_, _, _, _, single, dbl)| if double { *dbl } else { *single })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_sizes() {
        assert_eq!(TABLE2.len(), 3);
        assert_eq!(TABLE4.len(), 24);
        assert_eq!(TABLE5.len(), 48);
        assert_eq!(TABLE6.len(), 48);
    }

    #[test]
    fn lookup_finds_rows() {
        assert_eq!(lookup(TABLE5, "GTX780", "LIFT", "602", "box", false), Some(0.27));
        assert_eq!(lookup(TABLE6, "Titan Black", "OpenCL", "336", "dome", true), Some(0.36));
        assert_eq!(lookup(TABLE4, "AMD7970", "LIFT", "302", "box", true), Some(1.31));
        assert_eq!(lookup(TABLE5, "nope", "LIFT", "602", "box", false), None);
    }

    #[test]
    fn paper_shapes_hold_in_published_data() {
        // Sanity on the data entry itself: the shapes the reproduction must
        // match are present in the published numbers.
        // (1) FD-MM is slower than FI-MM at equal config.
        let fi = lookup(TABLE5, "GTX780", "OpenCL", "602", "box", false).unwrap();
        let fd = lookup(TABLE6, "GTX780", "OpenCL", "602", "box", false).unwrap();
        assert!(fd > fi);
        // (2) double ≥ single almost everywhere.
        let s = lookup(TABLE6, "AMD7970", "OpenCL", "602", "box", false).unwrap();
        let d = lookup(TABLE6, "AMD7970", "OpenCL", "602", "box", true).unwrap();
        assert!(d > s);
        // (3) LIFT within ~35 % of OpenCL on FD-MM 602 box across platforms.
        for p in ["RadeonR9", "AMD7970", "GTX780", "Titan Black"] {
            let o = lookup(TABLE6, p, "OpenCL", "602", "box", false).unwrap();
            let l = lookup(TABLE6, p, "LIFT", "602", "box", false).unwrap();
            assert!((l / o - 1.0).abs() < 0.35, "{p}: {l} vs {o}");
        }
    }
}

//! Plain-text table rendering and JSON result dumps for the `repro_*`
//! binaries.

use std::fs;
use std::path::Path;

/// Renders an aligned plain-text table.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Writes a serialisable result to `results/<name>.json` under the repo
/// root (creating the directory), and returns the path written. Every
/// result written this way doubles as the record of the unified
/// `results/run_report.json` ([`crate::run_report::emit`]), so each
/// `repro_*` invocation also leaves a run report behind.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    crate::run_report::emit(name, serde_json::to_value(value));
    Ok(path.to_string_lossy().into_owned())
}

/// Formats a ratio as a percentage deviation (`+12 %`).
pub fn pct(ratio: f64) -> String {
    format!("{:+.0} %", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render(
            &["a", "blah"],
            &[vec!["xxxxx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      blah"), "{t}");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.12), "+12 %");
        assert_eq!(pct(0.9), "-10 %");
    }
}

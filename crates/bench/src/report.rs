//! Shared report generation for the boundary-kernel figures (5 and 6).

use crate::measure::{self, Impl, Measurement};
use crate::paper::{self, TimeRow};
use crate::table;
use room_acoustics::{Precision, RoomShape};
use serde::Serialize;
use vgpu::DeviceProfile;

/// One rendered result row (also dumped as JSON).
#[derive(Debug, Serialize)]
pub struct ReportRow {
    /// Platform name.
    pub platform: String,
    /// "OpenCL" or "LIFT".
    pub version: &'static str,
    /// Size label.
    pub size: String,
    /// Shape label.
    pub shape: &'static str,
    /// Precision label.
    pub precision: &'static str,
    /// Modeled kernel time (ms).
    pub modeled_ms: f64,
    /// Throughput (giga-updates/s).
    pub gups: f64,
    /// The paper's median time (ms) for this configuration, if published.
    pub paper_ms: Option<f64>,
    /// Boundary points (or grid points) per update.
    pub updates: u64,
    /// Coalesced DRAM bytes per kernel.
    pub txn_bytes: u64,
    /// Flops per kernel.
    pub flops: u64,
}

/// Expands one measurement across the four platforms.
pub fn expand_platforms(m: &Measurement, paper_table: &[TimeRow]) -> Vec<ReportRow> {
    DeviceProfile::paper_platforms()
        .into_iter()
        .map(|p| {
            let paper_ms =
                paper::lookup(paper_table, &p.name, m.impl_name, &m.size, m.shape, m.double);
            ReportRow {
                platform: p.name.clone(),
                version: m.impl_name,
                size: m.size.clone(),
                shape: m.shape,
                precision: m.precision,
                modeled_ms: m.modeled_ms(&p),
                gups: m.gups(&p),
                paper_ms,
                updates: m.updates,
                txn_bytes: m.txn_bytes,
                flops: m.counters.flops,
            }
        })
        .collect()
}

/// Runs the full boundary-kernel sweep for one algorithm and returns all
/// rows. `measure` is [`measure::measure_fimm`] or [`measure::measure_fdmm`].
pub fn boundary_sweep(
    measure_fn: fn(room_acoustics::GridDims, RoomShape, Precision, Impl) -> Measurement,
    paper_table: &'static [TimeRow],
) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for dims in measure::bench_sizes() {
        for shape in [RoomShape::Box, RoomShape::Dome] {
            for precision in [Precision::Single, Precision::Double] {
                for which in Impl::both() {
                    eprintln!(
                        "measuring {} {} {} {}…",
                        which.label(),
                        dims.label(),
                        shape.label(),
                        precision.label()
                    );
                    let m = measure_fn(dims, shape, precision, which);
                    rows.extend(expand_platforms(&m, paper_table));
                }
            }
        }
    }
    rows
}

/// Prints a figure report: per-platform tables with paper-vs-modeled times
/// and the derived throughputs, plus the per-kernel telemetry summary when
/// tracing is enabled.
pub fn print_report(title: &str, rows: &[ReportRow]) {
    println!("== {title} ==\n");
    for platform in ["AMD7970", "GTX780", "RadeonR9", "Titan Black"] {
        let sub: Vec<&ReportRow> = rows.iter().filter(|r| r.platform == platform).collect();
        if sub.is_empty() {
            continue;
        }
        println!("-- {platform} --");
        let table_rows: Vec<Vec<String>> = sub
            .iter()
            .map(|r| {
                vec![
                    r.version.to_string(),
                    r.size.clone(),
                    r.shape.to_string(),
                    r.precision.to_string(),
                    format!("{:.3}", r.modeled_ms),
                    r.paper_ms.map_or("-".into(), |v| format!("{v:.2}")),
                    format!("{:.2}", r.gups),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &["version", "size", "shape", "prec", "model ms", "paper ms", "Gup/s"],
                &table_rows
            )
        );
    }
    if let Some(summary) = kernel_summary_section() {
        println!("{summary}");
    }
}

/// Renders the per-kernel launch/flop/byte totals accumulated by the
/// telemetry layer during this run, or `None` when tracing is off or no
/// kernel event was recorded.
pub fn kernel_summary_section() -> Option<String> {
    if !vgpu::telemetry::enabled() {
        return None;
    }
    let events = vgpu::telemetry::events_snapshot();
    let kernels = vgpu::telemetry::sink::kernel_summaries(&events);
    if kernels.is_empty() {
        return None;
    }
    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|k| {
            vec![
                k.name.clone(),
                k.launches.to_string(),
                k.work_items.to_string(),
                k.flops.to_string(),
                k.transaction_bytes.to_string(),
                format!("{:.3}", k.modeled_ms),
                k.tape_fallbacks.to_string(),
            ]
        })
        .collect();
    Some(format!(
        "-- per-kernel telemetry --\n{}",
        table::render(
            &["kernel", "launches", "work-items", "flops", "txn bytes", "model ms", "fallbacks"],
            &rows
        )
    ))
}

/// Checks the reproduction's qualitative claims over a set of rows and
/// prints a verdict block; returns the number of failed checks.
pub fn shape_checks(rows: &[ReportRow]) -> usize {
    let mut failures = 0;
    let mut check = |name: &str, ok: bool| {
        println!("[{}] {name}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };
    let find = |ver: &str, size: &str, shape: &str, prec: &str, plat: &str| {
        rows.iter().find(|r| {
            r.version == ver
                && r.size == size
                && r.shape == shape
                && r.precision == prec
                && r.platform == plat
        })
    };
    // (1) LIFT on par with OpenCL: geometric-mean ratio within 25 %.
    let mut logsum = 0.0;
    let mut n = 0;
    for r in rows.iter().filter(|r| r.version == "LIFT") {
        if let Some(o) = find("OpenCL", &r.size, r.shape, r.precision, &r.platform) {
            logsum += (r.modeled_ms / o.modeled_ms).ln();
            n += 1;
        }
    }
    let gmean = (logsum / n.max(1) as f64).exp();
    check(
        &format!("LIFT ≈ hand-written (geo-mean time ratio {:.2})", gmean),
        (0.75..=1.25).contains(&gmean),
    );
    // (2) double precision is never faster than single for same config.
    let ok = rows.iter().filter(|r| r.precision == "Double").all(|d| {
        match find(d.version, &d.size, d.shape, "Single", &d.platform) {
            Some(s) => d.modeled_ms >= s.modeled_ms * 0.99,
            None => true,
        }
    });
    check("double ≥ single kernel time", ok);
    // (3) larger rooms take longer on the same platform/impl/precision.
    let ok = rows.iter().filter(|r| r.size == "602").all(|big| {
        match find(big.version, "302", big.shape, big.precision, &big.platform) {
            Some(small) => big.modeled_ms > small.modeled_ms,
            None => true,
        }
    });
    check("602 room slower than 302 room", ok);
    failures
}

//! Snapshot regression checking: diffs two `BENCH_*.json` / run-report
//! snapshots and flags metric movements beyond a threshold.
//!
//! Comparison is *direction-aware*: a key is only gated when its name
//! implies an ordering — wall/latency/miss/failure counts must not grow,
//! throughput/hit rates must not shrink. Everything else (dimensions, step
//! counts, provenance) is reported informationally but never fails a diff,
//! so snapshots from differently-sized runs produce noisy-but-honest
//! reports instead of false gates. The CLI (`bench_compare`) exits nonzero
//! on any regression past the threshold unless `--warn-only`.

use crate::run_report::{RunReport, SCHEMA_VERSION};
use serde_json::Value;
use std::collections::BTreeMap;

/// How a metric's name orders "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (times, misses, failures).
    LowerBetter,
    /// Larger is better (throughput, hit rates).
    HigherBetter,
    /// No ordering implied — informational only.
    Neutral,
}

/// Infers the gate direction from the final segment of a dotted key path.
pub fn direction(key: &str) -> Direction {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    const LOWER: &[&str] = &[
        "wall",
        "_ms",
        "ms_per",
        "_us",
        "_ns",
        "misses",
        "fallback",
        "failures",
        "divergent",
        "latency",
        "residual",
    ];
    const HIGHER: &[&str] = &["per_sec", "hit_rate", "hits", "updates_per"];
    if HIGHER.iter().any(|p| leaf.contains(p)) {
        Direction::HigherBetter
    } else if LOWER.iter().any(|p| leaf.contains(p)) {
        Direction::LowerBetter
    } else {
        Direction::Neutral
    }
}

/// Collects every numeric leaf of a JSON tree into dotted-path keys.
/// Arrays are skipped (histogram buckets and per-kernel lists are not
/// stable across runs); so are provenance strings.
pub fn flatten_numeric(value: &Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::Object(entries) => {
            for (k, v) in entries {
                let key = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten_numeric(v, &key, out);
            }
        }
        Value::Number(n) => {
            out.insert(prefix.to_string(), n.as_f64());
        }
        _ => {}
    }
}

/// When the snapshot is a run report, comparison targets its embedded
/// bench `record` (the run-to-run comparable part); raw `BENCH_*.json`
/// snapshots are compared whole.
pub fn comparable_root(snapshot: &Value) -> &Value {
    match snapshot.get("record") {
        Some(rec) if snapshot.get("schema_version").is_some() => rec,
        _ => snapshot,
    }
}

/// One key's movement between two snapshots.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted key path.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Relative change `(cur - base) / |base|` (`cur - base` when the
    /// baseline is 0).
    pub rel: f64,
    /// Gate direction for the key.
    pub dir: Direction,
}

/// Outcome of a snapshot diff.
#[derive(Debug, Clone)]
pub struct CompareOutcome {
    /// Gated keys that moved the *bad* way beyond the threshold.
    pub regressions: Vec<Delta>,
    /// Gated keys that moved the *good* way beyond the threshold.
    pub improvements: Vec<Delta>,
    /// Every common numeric key's movement, key-ordered.
    pub deltas: Vec<Delta>,
    /// Keys present only in the current snapshot (new metrics). A growing
    /// bench schema is expected — these warn, they never gate, unless the
    /// CLI opts in with `--strict`.
    pub added: Vec<String>,
    /// Keys present only in the baseline (metrics that disappeared).
    pub removed: Vec<String>,
}

impl CompareOutcome {
    /// Plain-text rendering of the diff.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compared {} numeric keys (threshold {:.0}%)\n",
            self.deltas.len(),
            threshold * 100.0
        ));
        for d in &self.deltas {
            let gate = match d.dir {
                Direction::Neutral => " ",
                _ if self.regressions.iter().any(|r| r.key == d.key) => "✗",
                _ if self.improvements.iter().any(|r| r.key == d.key) => "+",
                _ => "·",
            };
            out.push_str(&format!(
                "{gate} {:<44} {:>14.4} -> {:>14.4} ({:+.1}%)\n",
                d.key,
                d.base,
                d.cur,
                d.rel * 100.0
            ));
        }
        if !self.added.is_empty() {
            out.push_str(&format!(
                "warning: keys only in current (new metrics): {:?}\n",
                self.added
            ));
        }
        if !self.removed.is_empty() {
            out.push_str(&format!(
                "warning: keys only in baseline (vanished): {:?}\n",
                self.removed
            ));
        }
        out.push_str(&format!(
            "{} regression(s), {} improvement(s)\n",
            self.regressions.len(),
            self.improvements.len()
        ));
        out
    }
}

/// Diffs two snapshots (see module docs). `threshold` is the relative
/// movement a gated key may make before it counts as a regression or
/// improvement.
pub fn compare(baseline: &Value, current: &Value, threshold: f64) -> CompareOutcome {
    let mut base = BTreeMap::new();
    let mut cur = BTreeMap::new();
    flatten_numeric(comparable_root(baseline), "", &mut base);
    flatten_numeric(comparable_root(current), "", &mut cur);
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let removed: Vec<String> = base.keys().filter(|k| !cur.contains_key(*k)).cloned().collect();
    let added: Vec<String> = cur.keys().filter(|k| !base.contains_key(*k)).cloned().collect();
    for (key, &b) in &base {
        let Some(&c) = cur.get(key) else { continue };
        let rel = if b != 0.0 { (c - b) / b.abs() } else { c - b };
        let dir = direction(key);
        let d = Delta { key: key.clone(), base: b, cur: c, rel, dir };
        let bad = match dir {
            Direction::LowerBetter => rel > threshold,
            Direction::HigherBetter => rel < -threshold,
            Direction::Neutral => false,
        };
        let good = match dir {
            Direction::LowerBetter => rel < -threshold,
            Direction::HigherBetter => rel > threshold,
            Direction::Neutral => false,
        };
        if bad {
            regressions.push(d.clone());
        } else if good {
            improvements.push(d.clone());
        }
        deltas.push(d);
    }
    CompareOutcome { regressions, improvements, deltas, added, removed }
}

/// Parses and validates a run report: well-formed JSON, matching schema
/// version, non-empty identity fields, and internally consistent residual
/// rows. Used by CI's `profile-smoke` schema gate.
pub fn validate_run_report(text: &str) -> Result<RunReport, String> {
    let report: RunReport =
        serde_json::from_str(text).map_err(|e| format!("not a run report: {e}"))?;
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema version {} != supported {}",
            report.schema_version, SCHEMA_VERSION
        ));
    }
    if report.name.is_empty() || report.engine.is_empty() {
        return Err("empty name/engine".to_string());
    }
    for k in &report.kernels {
        if k.launches == 0 {
            return Err(format!("kernel {} profiled with zero launches", k.kernel));
        }
        if k.modeled_launches > k.launches {
            return Err(format!("kernel {}: modeled_launches > launches", k.kernel));
        }
    }
    if let Some(r) = &report.residual {
        if !r.calibration.is_finite() || r.calibration <= 0.0 {
            return Err(format!("non-positive residual calibration {}", r.calibration));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn directions_from_key_names() {
        assert_eq!(direction("fast_ms_per_step"), Direction::LowerBetter);
        assert_eq!(direction("record.rooms_per_sec"), Direction::HigherBetter);
        assert_eq!(direction("plan_misses"), Direction::LowerBetter);
        assert_eq!(direction("artifact_hit_rate"), Direction::HigherBetter);
        assert_eq!(direction("steps"), Direction::Neutral);
    }

    #[test]
    fn regression_and_improvement_detection() {
        let base = json!({"fast_ms_per_step": 5.0, "rooms_per_sec": 100.0, "steps": 40});
        let worse = json!({"fast_ms_per_step": 6.5, "rooms_per_sec": 70.0, "steps": 80});
        let out = compare(&base, &worse, 0.15);
        // Both gated keys moved badly past 15%; `steps` is neutral and
        // never gates even though it doubled.
        assert_eq!(out.regressions.len(), 2, "{:?}", out.regressions);
        assert!(out.improvements.is_empty());
        let better = json!({"fast_ms_per_step": 4.0, "rooms_per_sec": 130.0, "steps": 40});
        let out = compare(&base, &better, 0.15);
        assert!(out.regressions.is_empty());
        assert_eq!(out.improvements.len(), 2);
    }

    #[test]
    fn within_threshold_is_quiet() {
        let base = json!({"fast_ms_per_step": 5.0});
        let cur = json!({"fast_ms_per_step": 5.4});
        let out = compare(&base, &cur, 0.15);
        assert!(out.regressions.is_empty() && out.improvements.is_empty());
        assert_eq!(out.deltas.len(), 1);
    }

    #[test]
    fn asymmetric_snapshots_warn_but_still_compare_shared_keys() {
        // A new bench metric must not break comparison against an older
        // committed baseline: the shared key still gates, the extra key is
        // reported as added, not as a failure.
        let base = json!({"fast_ms_per_step": 5.0, "old_only": 1.0});
        let cur = json!({"fast_ms_per_step": 9.0, "halo_bytes_per_step": 4096.0});
        let out = compare(&base, &cur, 0.15);
        assert_eq!(out.deltas.len(), 1, "only the shared key is compared");
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.added, vec!["halo_bytes_per_step".to_string()]);
        assert_eq!(out.removed, vec!["old_only".to_string()]);
        let rendered = out.render(0.15);
        assert!(rendered.contains("only in current"), "{rendered}");
        assert!(rendered.contains("only in baseline"), "{rendered}");
    }

    #[test]
    fn run_reports_compare_their_records() {
        let wrap = |ms: f64| {
            json!({
                "schema_version": 1,
                "name": "dispatch_bench",
                "record": {"fast_ms_per_step": ms},
            })
        };
        let out = compare(&wrap(5.0), &wrap(7.0), 0.15);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].key, "fast_ms_per_step");
    }

    #[test]
    fn validate_rejects_garbage_and_accepts_built_reports() {
        assert!(validate_run_report("{\"not\": \"a report\"}").is_err());
        let report = crate::run_report::build("unit", json!({"x": 1}));
        let text = serde_json::to_string_pretty(&report).unwrap();
        validate_run_report(&text).expect("freshly built report validates");
    }
}

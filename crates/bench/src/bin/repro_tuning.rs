//! Workgroup-size tuning, as in the paper's §VI: "All benchmarks have been
//! hand-tuned by workgroup size and the best result is reported."
//!
//! This binary automates that step on the virtual device: it sweeps tile
//! (= workgroup) sizes for the overlapped-tiling rewrite of a 1-D stencil,
//! reports modeled time and traffic per configuration, and picks the best —
//! demonstrating that the rewrite + performance model close the paper's
//! tuning loop without any hand-editing of kernels.

use bench::table;
use lift::funs;
use lift::ir::{self, ExprRef, ParamDef};
use lift::lower::{lower_kernel, ArgSpec};
use lift::prelude::*;
use lift::rewrite::overlapped_tile_1d;
use serde::Serialize;
use vgpu::{Arg, BufData, Device, DeviceProfile, ExecMode, ModelInput};

const N: usize = 1 << 18;
const K: i64 = 7;

fn stencil_program() -> (std::rc::Rc<ParamDef>, ExprRef) {
    let a = ParamDef::typed("a", Type::array(Type::real(), N));
    let add = funs::add();
    let prog = ir::map_glb(
        ir::slide(K, 1, ir::pad((K - 1) / 2, (K - 1) / 2, PadKind::Clamp, a.to_expr())),
        "w",
        move |w| ir::reduce_seq(ir::lit(Lit::real(0.0)), w, |acc, x| ir::call(&add, vec![acc, x])),
    );
    (a, prog)
}

#[derive(Serialize)]
struct Row {
    variant: String,
    txn_bytes: u64,
    flops: u64,
    modeled_us: f64,
}

fn measure(lk: &lift::lower::LoweredKernel, profile: &DeviceProfile) -> Row {
    let mut dev = Device::new(profile.clone());
    let prep = dev.compile(&lk.kernel).unwrap();
    let input = dev.upload(BufData::from(vec![1.0f32; N]));
    let out = dev.create_buffer(ScalarKind::F32, N);
    let args: Vec<Arg> = lk
        .args
        .iter()
        .map(|spec| match spec {
            ArgSpec::Input(_, _) => Arg::Buf(input),
            ArgSpec::Size(_) => unreachable!(),
            ArgSpec::Output(_, _) => Arg::Buf(out),
        })
        .collect();
    let global: Vec<usize> =
        lk.global_size.iter().map(|g| g.eval(&|_| None).unwrap() as usize).collect();
    let local = lk.local_size.as_ref().map(|l| l.eval(&|_| None).unwrap() as usize);
    let stats =
        dev.launch_wg(&prep, &args, &global, local, ExecMode::Model { sample_stride: 4 }).unwrap();
    let t = vgpu::modeled_time_s(
        &ModelInput {
            transaction_bytes: stats.transaction_bytes.unwrap(),
            flops: stats.counters.flops,
            double_precision: false,
            halo_bytes: 0,
        },
        profile,
    );
    Row {
        variant: lk.kernel.name.clone(),
        txn_bytes: stats.transaction_bytes.unwrap(),
        flops: stats.counters.flops,
        modeled_us: t * 1e6,
    }
}

fn main() {
    let profile = DeviceProfile::gtx780();
    let (a, plain) = stencil_program();
    let mut rows = Vec::new();
    let plain_lk =
        lower_kernel("untiled", std::slice::from_ref(&a), &plain, ScalarKind::F32).unwrap();
    rows.push(measure(&plain_lk, &profile));
    for tile in [16i64, 32, 64, 128, 256] {
        let tiled = overlapped_tile_1d(&plain, tile).expect("stencil shape");
        let lk = lower_kernel(
            &format!("tiled_T{tile}"),
            std::slice::from_ref(&a),
            &tiled,
            ScalarKind::F32,
        )
        .unwrap();
        rows.push(measure(&lk, &profile));
    }
    println!("== Workgroup-size tuning (1-D {K}-point stencil, N = {N}, GTX780 model) ==\n");
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.2} MB", r.txn_bytes as f64 / 1e6),
                r.flops.to_string(),
                format!("{:.1} µs", r.modeled_us),
            ]
        })
        .collect();
    println!("{}", table::render(&["variant", "DRAM traffic", "flops", "modeled time"], &trows));
    let best = rows.iter().min_by(|a, b| a.modeled_us.total_cmp(&b.modeled_us)).unwrap();
    let untiled = &rows[0];
    println!(
        "best: {} ({:.1} µs), {:.2}× faster than untiled — \"tuned by workgroup size,\n\
         best result reported\" (§VI) reproduced as an automatic sweep.",
        best.variant,
        best.modeled_us,
        untiled.modeled_us / best.modeled_us
    );
    let ok = best.variant != "untiled";
    println!(
        "[{}] some tiled configuration beats the untiled stencil",
        if ok { "ok" } else { "FAIL" }
    );
    match table::write_json("tuning", &rows) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("tuning");
    std::process::exit(if ok { 0 } else { 1 });
}

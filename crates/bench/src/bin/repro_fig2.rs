//! Regenerates Figure 2: the percentage of total step time spent in the
//! boundary kernel (kernel 2) for the FI-MM and FD-MM algorithms, box and
//! dome rooms, hand-written kernels on the GTX 780 profile.
//!
//! The paper shows FI-MM around 4–8 % and FD-MM up to ~20–25 %.
//! Set `REPRO_QUICK=1` for a reduced room.

use bench::table;
use room_acoustics::{
    BoundaryKernel, GridDims, HandwrittenSim, Precision, RoomShape, SimConfig, SimSetup,
};
use serde::Serialize;
use vgpu::{Device, DeviceProfile, ExecMode, ModelInput};

#[derive(Serialize)]
struct Row {
    algo: &'static str,
    shape: &'static str,
    volume_ms: f64,
    boundary_ms: f64,
    boundary_pct: f64,
}

fn modeled_ms(txn: u64, flops: u64, double: bool, p: &DeviceProfile) -> f64 {
    vgpu::modeled_time_s(
        &ModelInput { transaction_bytes: txn, flops, double_precision: double, halo_bytes: 0 },
        p,
    ) * 1e3
}

fn main() {
    // Figure 2 was measured on the GTX 780 with the hand-written CUDA codes.
    let profile = DeviceProfile::gtx780();
    let dims = if std::env::var("REPRO_QUICK").as_deref() == Ok("1") {
        GridDims::new(77, 52, 40)
    } else {
        GridDims::new(302, 202, 152) // the paper's smallest full size
    };
    let stride = (dims.total() / 1_000_000).max(1);
    let mut rows = Vec::new();
    for (algo, fd) in [("FI-MM", false), ("FD-MM", true)] {
        for shape in [RoomShape::Box, RoomShape::Dome] {
            eprintln!("measuring {algo} {}…", shape.label());
            let cfg = if fd { SimConfig::fdmm(dims, shape) } else { SimConfig::fimm(dims, shape) };
            let setup = SimSetup::new(&cfg);
            let kind = if fd {
                BoundaryKernel::FdMm
            } else {
                BoundaryKernel::FiMm { beta_constant: true }
            };
            let mut sim = HandwrittenSim::new(setup, Precision::Double, kind, Device::gtx780());
            sim.impulse(dims.nx / 2, dims.ny / 2, dims.nz / 3, 1.0);
            // volume kernel: sampled transaction model; boundary: exact.
            let (v, _) = sim.step(ExecMode::Model { sample_stride: stride });
            let b = sim.boundary_step_only(ExecMode::Model { sample_stride: 1 });
            let vms = modeled_ms(v.transaction_bytes.unwrap(), v.counters.flops, true, &profile);
            let bms = modeled_ms(b.transaction_bytes.unwrap(), b.counters.flops, true, &profile);
            rows.push(Row {
                algo,
                shape: shape.label(),
                volume_ms: vms,
                boundary_ms: bms,
                boundary_pct: 100.0 * bms / (vms + bms),
            });
        }
    }
    println!("== Figure 2 — boundary handling % of total step time (GTX780) ==\n");
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.to_string(),
                r.shape.to_string(),
                format!("{:.3}", r.volume_ms),
                format!("{:.3}", r.boundary_ms),
                format!("{:.1} %", r.boundary_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["algorithm", "shape", "volume ms", "boundary ms", "% boundary"], &trows)
    );
    let mut failures = 0;
    let quick = std::env::var("REPRO_QUICK").as_deref() == Ok("1");
    // Shape claims of Figure 2: the boundary share grows with boundary
    // realism (FD-MM well above FI-MM) and is a non-trivial fraction of the
    // step. Note on magnitudes: Figure 2's bars reach ~20 % for FD-MM, but
    // the paper's own Tables IV+VI imply ~6 % at the 602 size
    // (0.78 ms boundary vs 12.3 ms volume on the GTX 780); our model lands
    // near the table-implied values. See EXPERIMENTS.md §Fig2.
    for shape in ["box", "dome"] {
        let fi = rows.iter().find(|r| r.algo == "FI-MM" && r.shape == shape).unwrap();
        let fd = rows.iter().find(|r| r.algo == "FD-MM" && r.shape == shape).unwrap();
        let ordering_thresh = if quick { 1.25 } else { 1.5 };
        let ordering_ok = fd.boundary_pct > fi.boundary_pct * ordering_thresh;
        let magnitude_ok =
            quick || ((5.0..=25.0).contains(&fd.boundary_pct) && fi.boundary_pct < 10.0);
        let ok = ordering_ok && magnitude_ok;
        println!(
            "[{}] {shape}: FI-MM {:.1} % vs FD-MM {:.1} % (tables-implied ≈3 %/6 %; Figure 2 bars ~4–8 %/15–25 %{})",
            if ok { "ok" } else { "FAIL" },
            fi.boundary_pct,
            fd.boundary_pct,
            if quick { "; quick mode checks ordering only" } else { "" }
        );
        if !ok {
            failures += 1;
        }
    }
    match table::write_json("fig2", &rows) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("fig2");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

//! Regenerates Figure 4 / Table IV: throughput of the naive
//! frequency-independent (FI) simulation — the full stencil + uniform-β
//! boundary in one kernel — LIFT-generated vs hand-written, box rooms,
//! 4 platforms × 3 sizes × 2 precisions.
//!
//! The volume grid is sampled warp-wise in the transaction model (the
//! stencil is translation-invariant); set `REPRO_QUICK=1` for reduced
//! sizes.

use bench::measure::{bench_sizes, measure_fi_single, volume_stride, Impl};
use bench::paper::TABLE4;
use bench::report::{self, expand_platforms};
use room_acoustics::Precision;

fn main() {
    let mut rows = Vec::new();
    for dims in bench_sizes() {
        let stride = volume_stride(&dims);
        for precision in [Precision::Single, Precision::Double] {
            for which in Impl::both() {
                eprintln!(
                    "measuring FI {} {} {} (stride {stride})…",
                    which.label(),
                    dims.label(),
                    precision.label()
                );
                let m = measure_fi_single(dims, precision, which, stride);
                rows.extend(expand_platforms(&m, TABLE4));
            }
        }
    }
    report::print_report("Figure 4 / Table IV — naive FI simulation (box)", &rows);
    let failures = report::shape_checks(&rows);
    match bench::table::write_json("fig4_table4", &rows) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("fig4_table4");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

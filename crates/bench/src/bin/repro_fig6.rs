//! Regenerates Figure 6 / Table VI: FD-MM boundary-kernel throughput
//! (`MB = 3`), LIFT-generated vs hand-written, over 4 platforms × 3 sizes ×
//! 2 shapes × 2 precisions.
//!
//! Set `REPRO_QUICK=1` to run reduced room sizes.

use bench::measure::measure_fdmm;
use bench::paper::TABLE6;
use bench::report;

fn main() {
    let rows = report::boundary_sweep(measure_fdmm, TABLE6);
    report::print_report("Figure 6 / Table VI — FD-MM boundary handling (MB = 3)", &rows);
    let mut failures = report::shape_checks(&rows);

    let quick = std::env::var("REPRO_QUICK").as_deref() == Ok("1");
    // Figure-6-specific claims.
    // (a) §VII-B2 quotes "45 memory accesses and 98 floating-point
    //     operations per update". Listing 4's arithmetic alone comes to ~58
    //     flops at MB = 3; the paper's count evidently includes address
    //     arithmetic. We check the order of magnitude of both quantities.
    if let Some(r) = rows.iter().find(|r| r.version == "OpenCL" && r.platform == "GTX780") {
        let flops_per_update = r.flops as f64 / r.updates as f64;
        let ok = (40.0..=140.0).contains(&flops_per_update);
        println!(
            "[{}] FD-MM flops/update within the paper's magnitude (measured {:.0}; \
             paper quotes 98 incl. address arithmetic, the listing's math is ~58)",
            if ok { "ok" } else { "FAIL" },
            flops_per_update
        );
        if !ok {
            failures += 1;
        }
    }
    // (b) The single/double split is wider for FD-MM than for FI-MM
    //     (Figure 6 vs Figure 5). At quick sizes the fixed launch overhead
    //     compresses ratios, so the threshold only applies to full runs.
    let mut ratios = Vec::new();
    for l in rows.iter().filter(|r| r.precision == "Double" && r.version == "OpenCL") {
        if let Some(s) = rows.iter().find(|r| {
            r.version == "OpenCL"
                && r.precision == "Single"
                && r.size == l.size
                && r.shape == l.shape
                && r.platform == l.platform
        }) {
            ratios.push(l.modeled_ms / s.modeled_ms);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let ok = if quick { mean > 1.02 } else { mean > 1.10 };
    println!(
        "[{}] FD-MM double/single time ratio direction (mean {:.2}{})",
        if ok { "ok" } else { "FAIL" },
        mean,
        if quick { "; quick mode threshold relaxed" } else { "" }
    );
    println!(
        "[note] the paper's ratio is ~1.5–2×; a 128-byte-transaction model under-scales it \
         because gathered accesses cost one transaction regardless of element width — \
         see EXPERIMENTS.md §Fig6"
    );
    if !ok {
        failures += 1;
    }

    match bench::table::write_json("fig6_table6", &rows) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("fig6_table6");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

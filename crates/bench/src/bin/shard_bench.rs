//! Scaling curve for domain-sharded execution: ms/step vs device count.
//!
//! For box and dome rooms, FI-MM and FD-MM boundaries, runs the full
//! leap-frog loop on [`ShardedSim`] at 1, 2 and 4 virtual devices and
//! reports, per configuration and device count:
//!
//! * measured wall-clock ms/step (fast mode, best-of-3);
//! * the roofline model's sharded step time — slowest slab plus the halo
//!   communication term ([`vgpu::modeled_sharded_step_s`]);
//! * `vgpu.halo.*` byte/copy counters actually accumulated per step.
//!
//! Single-device rows double as the unsharded baseline (zero halo bytes),
//! so the record *is* the scaling curve. One JSON line, snapshot via
//! `scripts/bench_snapshot.sh` into `BENCH_shard.json` + history.
//!
//! Usage: `shard_bench [cube-edge] [steps]` (defaults 24, 40).

use room_acoustics::{
    BoundaryKernel, GridDims, Precision, RoomShape, ShardedSim, SimConfig, SimSetup,
};
use std::fmt::Write as _;
use std::time::Instant;
use vgpu::{Device, DeviceProfile, ExecMode, HaloTotals, ModelInput, SlabPartition};

fn devices(n: usize) -> Vec<Device> {
    (0..n).map(|_| Device::gtx780()).collect()
}

struct Row {
    shape: &'static str,
    algo: &'static str,
    dev_count: usize,
    fast_ms: f64,
    modeled_ms: f64,
    halo_bytes_per_step: u64,
    halo_copies_per_step: u64,
}

fn run_one(
    setup: &SimSetup,
    kind: BoundaryKernel,
    shape: &'static str,
    algo: &'static str,
    dev_count: usize,
    steps: usize,
) -> Row {
    let dims = setup.dims();
    let part = SlabPartition::balanced(dims.nz, dev_count);
    let mut sim = ShardedSim::with_partition(
        setup.clone(),
        Precision::Single,
        kind,
        devices(dev_count),
        part,
    );
    sim.impulse(dims.nx / 2, dims.ny / 2, dims.nz / 2, 1.0);

    // One modeled step: per-slab transaction/flop counts feed the sharded
    // roofline (slowest slab + halo bytes over the link).
    let stats = sim.step(ExecMode::Model { sample_stride: 1 });
    let per_device: Vec<ModelInput> = stats
        .iter()
        .map(|(v, b)| {
            let txn = v.transaction_bytes.unwrap_or(0)
                + b.as_ref().and_then(|b| b.transaction_bytes).unwrap_or(0);
            let flops = v.counters.flops + b.as_ref().map_or(0, |b| b.counters.flops);
            ModelInput::local(txn, flops, false)
        })
        .collect();
    let halo_per_step = sim.halo_bytes_per_step();
    let modeled_ms =
        vgpu::modeled_sharded_step_s(&per_device, halo_per_step, &DeviceProfile::gtx780()) * 1e3;

    // Measured: best-of-3 trials of the fast-mode step loop, with the halo
    // counters cross-checked against the analytic per-step bytes.
    let h0 = HaloTotals::snapshot();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..steps {
            sim.step(ExecMode::Fast);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / steps as f64);
    }
    let halo = HaloTotals::snapshot().delta_since(&h0);
    let measured_steps = (3 * steps) as u64;
    assert_eq!(halo.bytes, measured_steps * halo_per_step, "halo accounting drifted");

    Row {
        shape,
        algo,
        dev_count,
        fast_ms: best,
        modeled_ms,
        halo_bytes_per_step: halo_per_step,
        halo_copies_per_step: halo.copies / measured_steps.max(1),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);

    let plan_cache = bench::provenance::plan_cache_state();
    let threads = bench::provenance::threads();
    let engine = bench::provenance::engine_label();
    let ladder = bench::provenance::ladder_leg();
    let sanitize = bench::provenance::sanitize_label();

    let mut rows = Vec::new();
    for (shape, label) in [(RoomShape::Box, "box"), (RoomShape::Dome, "dome")] {
        let dims = GridDims::cube(n);
        let fimm = SimSetup::new(&SimConfig::fimm(dims, shape));
        let fdmm = SimSetup::new(&SimConfig::fdmm(dims, shape));
        for dev_count in [1usize, 2, 4] {
            rows.push(run_one(
                &fimm,
                BoundaryKernel::FiMm { beta_constant: true },
                label,
                "fimm",
                dev_count,
                steps,
            ));
            rows.push(run_one(&fdmm, BoundaryKernel::FdMm, label, "fdmm", dev_count, steps));
        }
    }

    let mut curve = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            curve.push(',');
        }
        write!(
            curve,
            "\"{}_{}_x{}\":{{\"fast_ms_per_step\":{:.4},\"modeled_ms_per_step\":{:.4},\
             \"halo_bytes_per_step\":{},\"halo_copies_per_step\":{}}}",
            r.shape,
            r.algo,
            r.dev_count,
            r.fast_ms,
            r.modeled_ms,
            r.halo_bytes_per_step,
            r.halo_copies_per_step
        )
        .unwrap();
    }
    curve.push('}');

    let record = format!(
        "{{\"bench\":\"shard\",\"cube\":{n},\"steps\":{steps},\
         \"engine\":\"{engine}\",\"ladder\":\"{ladder}\",\
         \"threads\":{threads},\"devices_swept\":[1,2,4],\"plan_cache\":\"{plan_cache}\",\
         \"sanitize\":\"{sanitize}\",\"scaling\":{curve}}}"
    );
    println!("{record}");
    match serde_json::from_str(&record) {
        Ok(value) => {
            bench::run_report::emit("shard_bench", value);
        }
        Err(e) => eprintln!("cannot parse own record for run report: {e}"),
    }
}

//! CI smoke check for the telemetry layer: runs a small FI-MM simulation
//! with Chrome tracing forced on, writes `results/telemetry_smoke.trace.json`
//! through the same path the `repro_*` binaries use, then re-reads the file
//! and validates it — well-formed Chrome trace JSON, the expected kernel and
//! transfer span names, and per-kernel flop totals that reconcile exactly
//! with the device's own profiling event log.
//!
//! Exits non-zero (panics) on any violation.

use lift_acoustics::{LiftBoundary, LiftSim};
use room_acoustics::{GridDims, Precision, RoomShape, SimConfig, SimSetup};
use std::collections::BTreeMap;
use vgpu::telemetry::{self, sink, TraceMode};
use vgpu::{Device, ExecMode};

fn main() {
    // Force Chrome tracing regardless of the caller's environment: the check
    // must exercise the full pipeline even when VGPU_TRACE is unset.
    telemetry::set_mode(TraceMode::Chrome);

    let dims = GridDims::cube(16);
    let steps = 4;
    // Expected flop totals per kernel name, from the device's own profiling
    // log — the trace must reconcile with these exactly.
    let mut expected_flops: BTreeMap<String, u64> = BTreeMap::new();
    for precision in [Precision::Single, Precision::Double] {
        let setup = SimSetup::new(&SimConfig::fimm(dims, RoomShape::Box));
        let mut sim = LiftSim::new(setup, precision, LiftBoundary::FiMm, Device::gtx780());
        sim.impulse(8, 8, 8, 1.0);
        for _ in 0..steps {
            sim.step(ExecMode::Model { sample_stride: 1 });
        }
        for ev in sim.device.events() {
            *expected_flops.entry(ev.name.clone()).or_insert(0) += ev.stats.counters.flops;
        }
    }

    let path = bench::trace::finish("telemetry_smoke").expect("chrome mode writes a trace file");
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let stats = sink::validate_chrome(&text).unwrap_or_else(|e| panic!("invalid trace: {e}"));

    println!(
        "telemetry_smoke: {} events, {} tracks, {} span names",
        stats.events,
        stats.track_names.len(),
        stats.span_names.len()
    );

    for name in ["volume_handling_lift", "fimm_boundary_lift", "LiftSim::step", "LiftSim::new"] {
        assert!(stats.span_names.contains(name), "missing span `{name}` in {path}");
    }
    assert!(
        stats.span_names.iter().any(|n| n.starts_with("ToGPU(")),
        "missing ToGPU transfer span in {path}"
    );
    assert!(stats.track_names.contains("host"), "missing host track in {path}");
    assert!(
        stats.track_names.iter().any(|n| n.ends_with("kernels")),
        "missing device kernel track in {path}"
    );

    for (name, flops) in &expected_flops {
        assert_eq!(
            stats.kernel_flops.get(name),
            Some(flops),
            "trace flop total for `{name}` does not reconcile with device events"
        );
    }
    let to_gpu = stats.transfer_bytes.get("ToGPU").copied().unwrap_or(0);
    assert!(to_gpu > 0, "no ToGPU bytes recorded in {path}");

    println!("telemetry_smoke: ok ({path})");
}

//! Throughput and cache-effectiveness benchmark for the batched multi-room
//! service, and the CI batch smoke gate.
//!
//! Runs a seeded mixed batch (shapes × boundaries × precisions) through
//! [`batch::BatchExecutor`] with the write-race detector on, prints one
//! JSON record (rooms/sec, cross-room artifact-cache hit rate, plan-cache
//! traffic, provenance fields), and exits nonzero on any regression a
//! batch must never ship with:
//!
//! * a failed job (includes differential-engine mismatches and write races);
//! * a static-verifier finding on a shipped kernel;
//! * any tape/vector fallback — the handwritten kernels must stay on the
//!   vectorized engine;
//! * a cross-room artifact hit rate below 90% (batches of ≥ 32 rooms).
//!
//! With `VGPU_TRACE` set, per-job telemetry sidecars land in
//! `results/batch/`. Usage: `batch_bench [rooms] [threads] [seed]`
//! (defaults 64, 4, 42).

use batch::{BatchConfig, BatchExecutor, ScenarioGen};
use std::path::{Path, PathBuf};
use std::time::Instant;
use vgpu::telemetry::{self, TraceMode};
use vgpu::ExecMode;

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/batch")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rooms: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let engine = bench::provenance::engine_label();
    let ladder = bench::provenance::ladder_leg();
    let vgpu_threads = bench::provenance::threads();
    let plan_cache = bench::provenance::plan_cache_state();
    let devices = bench::provenance::device_count();
    let sanitize = bench::provenance::sanitize_label();

    let reg = telemetry::registry();
    let counter = |name: &str| reg.counter(name).get();
    let art_hits0 = counter("vgpu.artifact.hits");
    let art_misses0 = counter("vgpu.artifact.misses");
    let plan_misses0 = counter("vgpu.plan.misses");
    let shared0 = counter("vgpu.plan.shared_hits");
    let fallbacks0 = counter("vgpu.tape.fallbacks")
        + counter("vgpu.vector.fallbacks")
        + counter("vgpu.compiled.fallbacks");

    let scenarios = ScenarioGen::new(seed).take(rooms);
    let exec = BatchExecutor::new(BatchConfig {
        threads,
        engine: None, // VGPU_ENGINE, like every other bench
        mode: ExecMode::Fast,
        race_check: true,
        sidecar_dir: (telemetry::mode() != TraceMode::Off).then(results_dir),
    });
    let t0 = Instant::now();
    let results = exec.run_all(scenarios);
    let wall_s = t0.elapsed().as_secs_f64();

    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.outcome.as_ref().err().map(|e| format!("{}: {e}", r.scenario.label())))
        .collect();
    let verifier_clean =
        results.iter().filter_map(|r| r.outcome.as_ref().ok()).all(|o| o.verifier_clean);

    let art_hits = counter("vgpu.artifact.hits") - art_hits0;
    let art_misses = counter("vgpu.artifact.misses") - art_misses0;
    let hit_rate = art_hits as f64 / (art_hits + art_misses).max(1) as f64;
    let fallbacks = counter("vgpu.tape.fallbacks")
        + counter("vgpu.vector.fallbacks")
        + counter("vgpu.compiled.fallbacks")
        - fallbacks0;

    let record = format!(
        "{{\"bench\":\"batch\",\"rooms\":{rooms},\"threads\":{threads},\"seed\":{seed},\
         \"engine\":\"{engine}\",\"ladder\":\"{ladder}\",\
         \"vgpu_threads\":{vgpu_threads},\"devices\":{devices},\
         \"plan_cache\":\"{plan_cache}\",\"sanitize\":\"{sanitize}\",\
         \"wall_s\":{wall_s:.3},\"rooms_per_sec\":{:.2},\
         \"artifact_hits\":{art_hits},\"artifact_misses\":{art_misses},\
         \"artifact_hit_rate\":{hit_rate:.4},\
         \"plan_misses\":{},\"plan_shared_hits\":{},\
         \"fallbacks\":{fallbacks},\"failures\":{},\"verifier_clean\":{verifier_clean}}}",
        rooms as f64 / wall_s,
        counter("vgpu.plan.misses") - plan_misses0,
        counter("vgpu.plan.shared_hits") - shared0,
        failures.len(),
    );
    println!("{record}");
    match serde_json::from_str(&record) {
        Ok(value) => {
            bench::run_report::emit("batch_bench", value);
        }
        Err(e) => eprintln!("cannot parse own record for run report: {e}"),
    }

    let mut bad = false;
    for f in &failures {
        eprintln!("FAIL job: {f}");
        bad = true;
    }
    if !verifier_clean {
        eprintln!("FAIL: static verifier flagged a shipped kernel");
        bad = true;
    }
    if fallbacks > 0 {
        eprintln!("FAIL: {fallbacks} engine fallbacks — handwritten kernels must stay on their engine rung");
        bad = true;
    }
    if rooms >= 32 && hit_rate < 0.9 {
        eprintln!("FAIL: cross-room artifact hit rate {hit_rate:.3} < 0.9");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}

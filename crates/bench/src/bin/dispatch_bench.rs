//! Wall-clock step-loop timing for the FI cube workload on the tape engines.
//!
//! Criterion benches don't time under the offline stub harness, so this bin
//! is the measurement behind the dispatch-overhead numbers in
//! EXPERIMENTS.md: it runs the same leap-frog launch loop the sims run and
//! prints ms/step for fast and modeled execution on the scalar tape, the
//! warp-vectorized engine, and the compiled superinstruction engine, plus
//! the launch-plan cache hit counters and the divergent-warp /
//! compiled-fallback audits, as one JSON record.
//!
//! Usage: `dispatch_bench [cube-edge] [steps]` (defaults 32, 60).

use lift::prelude::{ScalarKind, Value};
use room_acoustics::{
    handwritten, BoundaryModel, GridDims, MaterialAssignment, RoomShape, SimConfig, SimSetup,
};
use std::time::Instant;
use vgpu::{telemetry, Arg, BufId, Device, Engine, ExecMode};

struct FiRun {
    dev: Device,
    prep: vgpu::Prepared,
    bufs: [BufId; 3],
    scalars: Vec<Arg>,
    global: [usize; 3],
}

fn fi_run(n: usize, engine: Engine) -> FiRun {
    let dims = GridDims::cube(n);
    let setup = SimSetup::new(&SimConfig {
        dims,
        shape: RoomShape::Box,
        assignment: MaterialAssignment::Uniform,
        boundary: BoundaryModel::Fi { beta: 0.1 },
    });
    room_acoustics::contracts::register_all();
    let mut dev = Device::gtx780();
    dev.set_engine(engine);
    let prep = dev.compile(&handwritten::fi_single_kernel().resolve_real(ScalarKind::F32)).unwrap();
    let total = dims.total();
    let bufs = [
        dev.create_buffer_zeroed(ScalarKind::F32, total),
        dev.create_buffer_zeroed(ScalarKind::F32, total),
        dev.create_buffer_zeroed(ScalarKind::F32, total),
    ];
    let scalars = vec![
        Arg::Val(Value::F32(setup.l as f32)),
        Arg::Val(Value::F32(setup.l2 as f32)),
        Arg::Val(Value::F32(0.1)),
        Arg::Val(Value::I32(dims.nx as i32)),
        Arg::Val(Value::I32(dims.ny as i32)),
        Arg::Val(Value::I32(dims.nz as i32)),
    ];
    FiRun { dev, prep, bufs, scalars, global: [dims.nx, dims.ny, dims.nz] }
}

impl FiRun {
    fn step(&mut self, mode: ExecMode) {
        let mut args = vec![Arg::Buf(self.bufs[0]), Arg::Buf(self.bufs[1]), Arg::Buf(self.bufs[2])];
        args.extend_from_slice(&self.scalars);
        self.dev.launch(&self.prep, &args, &self.global, mode).unwrap();
        self.bufs.rotate_right(1);
    }

    /// Best-of-3 trials of `steps` steps; returns ms/step.
    fn measure(&mut self, steps: usize, mode: ExecMode) -> f64 {
        for _ in 0..steps.min(5) {
            self.step(mode); // warm-up
        }
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..steps {
                self.step(mode);
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3 / steps as f64);
            self.dev.clear_events();
        }
        best
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);

    // Provenance: captured before any launch so the snapshot records what
    // the measured loops actually saw (this bin drives both tape engines
    // explicitly, so the engine field is fixed, not `VGPU_ENGINE`).
    let plan_cache = bench::provenance::plan_cache_state();
    let threads = bench::provenance::threads();
    let devices = bench::provenance::device_count();
    let sanitize = bench::provenance::sanitize_label();

    let fast = fi_run(n, Engine::Tape).measure(steps, ExecMode::Fast);
    let model = fi_run(n, Engine::Tape).measure(steps, ExecMode::Model { sample_stride: 1 });
    let reg = telemetry::registry();
    let divergent0 = reg.counter("vgpu.warp.divergent").get();
    let vfast = fi_run(n, Engine::Vector).measure(steps, ExecMode::Fast);
    let vmodel = fi_run(n, Engine::Vector).measure(steps, ExecMode::Model { sample_stride: 1 });
    let divergent = reg.counter("vgpu.warp.divergent").get() - divergent0;
    // The compiled engine must cover the FI kernel outright: any fallback
    // to a lower rung means the measurement below is not what it claims.
    let cfallback0 = reg.counter("vgpu.compiled.fallbacks").get();
    let cfast = fi_run(n, Engine::Compiled).measure(steps, ExecMode::Fast);
    let cmodel = fi_run(n, Engine::Compiled).measure(steps, ExecMode::Model { sample_stride: 1 });
    let cfallbacks = reg.counter("vgpu.compiled.fallbacks").get() - cfallback0;
    if cfallbacks > 0 {
        eprintln!("dispatch_bench: {cfallbacks} compiled-engine fallbacks during measurement");
        std::process::exit(1);
    }
    let record = format!(
        "{{\"bench\":\"dispatch\",\"cube\":{n},\"steps\":{steps},\
         \"engine\":\"tape+vector+compiled\",\"ladder\":\"compiled\",\
         \"threads\":{threads},\"devices\":{devices},\
         \"plan_cache\":\"{plan_cache}\",\"sanitize\":\"{sanitize}\",\
         \"fast_ms_per_step\":{fast:.4},\"model_ms_per_step\":{model:.4},\
         \"vector_fast_ms_per_step\":{vfast:.4},\"vector_model_ms_per_step\":{vmodel:.4},\
         \"compiled_fast_ms_per_step\":{cfast:.4},\"compiled_model_ms_per_step\":{cmodel:.4},\
         \"divergent_warps\":{divergent},\
         \"sites_proven\":{},\"sites_checked\":{},\
         \"plan_hits\":{},\"plan_misses\":{}}}",
        reg.counter("vgpu.compiled.sites_proven").get(),
        reg.counter("vgpu.compiled.sites_checked").get(),
        reg.counter("vgpu.plan.hits").get(),
        reg.counter("vgpu.plan.misses").get(),
    );
    println!("{record}");
    match serde_json::from_str(&record) {
        Ok(value) => {
            bench::run_report::emit("dispatch_bench", value);
        }
        Err(e) => eprintln!("cannot parse own record for run report: {e}"),
    }
}

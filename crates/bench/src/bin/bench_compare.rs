//! Snapshot regression checker for `BENCH_*.json` and run-report files.
//!
//! Two modes:
//!
//! * `bench_compare --check <report.json>` — validate that the file is a
//!   well-formed run report at the supported schema version (CI's
//!   `profile-smoke` schema gate);
//! * `bench_compare <baseline.json> <current.json> [--threshold PCT]
//!   [--warn-only]` — diff two snapshots and exit 1 when any
//!   direction-gated metric regressed by more than PCT percent
//!   (default 25). `--warn-only` prints the same report but always
//!   exits 0, for informational CI steps. Keys present in only one
//!   snapshot (a new bench metric, or one that vanished) are warnings —
//!   pass `--strict` to fail on schema asymmetry too.
//!
//! Snapshots may be one-line `BENCH_*.json` records or full run reports;
//! run reports are unwrapped to their embedded bench `record` so the two
//! forms are comparable.

use bench::compare;
use serde_json::Value;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare --check <report.json>\n\
         \x20      bench_compare <baseline.json> <current.json> [--threshold PCT] [--warn-only] [--strict]"
    );
    exit(2)
}

fn read_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2)
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold_pct = 25.0;
    let mut warn_only = false;
    let mut strict = false;
    let mut check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--warn-only" => warn_only = true,
            "--strict" => strict = true,
            "--threshold" => {
                threshold_pct = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => files.push(a.clone()),
        }
    }

    if check {
        let [path] = files.as_slice() else { usage() };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2)
        });
        match compare::validate_run_report(&text) {
            Ok(report) => {
                println!(
                    "ok: {path} is a valid run report (schema v{}, name {}, {} kernel profiles, \
                     residual {})",
                    report.schema_version,
                    report.name,
                    report.kernels.len(),
                    if report.residual.is_some() { "present" } else { "absent" },
                );
            }
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                exit(1);
            }
        }
        return;
    }

    let [base_path, cur_path] = files.as_slice() else { usage() };
    let baseline = read_json(base_path);
    let current = read_json(cur_path);
    let threshold = threshold_pct / 100.0;
    let out = compare::compare(&baseline, &current, threshold);
    println!("baseline {base_path}\ncurrent  {cur_path}");
    print!("{}", out.render(threshold));
    if out.deltas.is_empty() {
        eprintln!("FAIL: snapshots share no numeric keys — nothing was compared");
        exit(1);
    }
    // Added/removed keys are expected when the bench schema grows: warn by
    // default, gate only under --strict.
    if !out.added.is_empty() || !out.removed.is_empty() {
        let label = if strict && !warn_only { "FAIL" } else { "warning" };
        for k in &out.added {
            eprintln!("{label}: key {k} exists only in the current snapshot");
        }
        for k in &out.removed {
            eprintln!("{label}: key {k} exists only in the baseline snapshot");
        }
        if strict && !warn_only {
            exit(1);
        }
    }
    if !out.regressions.is_empty() {
        for r in &out.regressions {
            eprintln!(
                "{}: {} regressed {:+.1}% ({} -> {})",
                if warn_only { "warning" } else { "FAIL" },
                r.key,
                r.rel * 100.0,
                r.base,
                r.cur
            );
        }
        if !warn_only {
            exit(1);
        }
    }
}

//! Ablation studies for the design choices DESIGN.md calls out (§II of the
//! paper motivates them qualitatively; here they are measured):
//!
//! 1. **two-kernel split vs fused one-kernel** (§II-C) — the FI simulation
//!    as Listing 1 (stencil + boundary fused, branchy) vs Listing 2
//!    (volume kernel + gathered boundary kernel);
//! 2. **gather-list vs full-grid boundary scan** — boundary handling over
//!    `boundaryIndices` vs a full-grid kernel that tests `0 < nbr < 6`
//!    everywhere;
//! 3. **FD-MM branch count** — traffic per update as `MB` sweeps 1–5;
//! 4. **race-check overhead** — interpreter wall time with the write-race
//!    detector on/off.
//!
//! `REPRO_QUICK=1` shrinks the rooms.

use bench::table;
use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{BinOp, ScalarKind, Value};
use room_acoustics::{
    BoundaryKernel, BoundaryModel, GridDims, HandwrittenSim, Material, MaterialAssignment,
    Precision, RoomShape, SimConfig, SimSetup,
};
use serde::Serialize;
use vgpu::{Arg, Device, DeviceProfile, ExecMode, ModelInput};

fn modeled_ms(txn: u64, flops: u64, double: bool) -> f64 {
    vgpu::modeled_time_s(
        &ModelInput { transaction_bytes: txn, flops, double_precision: double, halo_bytes: 0 },
        &DeviceProfile::gtx780(),
    ) * 1e3
}

/// Full-grid boundary kernel: visits every grid point and updates only
/// `0 < nbr < 6` (the alternative §II-C argues against).
fn fullscan_boundary_kernel() -> Kernel {
    let (nbrs, next, prev) = (0usize, 1, 2);
    let v = |n: &str| KExpr::var(n);
    let plane = v("Nx") * v("Ny");
    let idx = KExpr::GlobalId(2) * plane + KExpr::GlobalId(1) * v("Nx") + KExpr::GlobalId(0);
    Kernel {
        name: "boundary_fullscan".into(),
        params: vec![
            KernelParam::global_buf("nbrs", ScalarKind::I32),
            KernelParam::global_buf("next", ScalarKind::Real),
            KernelParam::global_buf("prev", ScalarKind::Real),
            KernelParam::scalar("l", ScalarKind::Real),
            KernelParam::scalar("beta", ScalarKind::Real),
            KernelParam::scalar("Nx", ScalarKind::I32),
            KernelParam::scalar("Ny", ScalarKind::I32),
            KernelParam::scalar("Nz", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), v("Nx"))),
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(1), v("Ny"))),
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(2), v("Nz"))),
            KStmt::DeclScalar { name: "idx".into(), kind: ScalarKind::I32, init: Some(idx) },
            KStmt::DeclScalar {
                name: "nbr".into(),
                kind: ScalarKind::I32,
                init: Some(KExpr::load(MemRef::Param(nbrs), v("idx"))),
            },
            KStmt::If {
                cond: KExpr::bin(
                    BinOp::And,
                    KExpr::bin(BinOp::Gt, v("nbr"), KExpr::int(0)),
                    KExpr::bin(BinOp::Lt, v("nbr"), KExpr::int(6)),
                ),
                then_: vec![
                    KStmt::DeclScalar {
                        name: "cf".into(),
                        kind: ScalarKind::Real,
                        init: Some(
                            KExpr::real(0.5)
                                * v("l")
                                * KExpr::cast(ScalarKind::Real, KExpr::int(6) - v("nbr"))
                                * v("beta"),
                        ),
                    },
                    KStmt::Store {
                        mem: MemRef::Param(next),
                        idx: v("idx"),
                        value: (KExpr::load(MemRef::Param(next), v("idx"))
                            + v("cf") * KExpr::load(MemRef::Param(prev), v("idx")))
                            / (KExpr::real(1.0) + v("cf")),
                    },
                ],
                else_: vec![],
            },
        ],
        work_dim: 3,
    }
}

#[derive(Serialize)]
struct AblationRow {
    study: &'static str,
    variant: String,
    metric: String,
    value: f64,
}

fn main() {
    let quick = std::env::var("REPRO_QUICK").as_deref() == Ok("1");
    let dims = if quick { GridDims::new(77, 52, 40) } else { GridDims::new(302, 202, 152) };
    let mut out: Vec<AblationRow> = Vec::new();
    let mut trows: Vec<Vec<String>> = Vec::new();
    let stride = (dims.total() / 1_000_000).max(1);

    // ---------------- 1. two-kernel vs fused one-kernel (FI) -------------
    {
        eprintln!("ablation 1: kernel split…");
        let cfg = SimConfig {
            dims,
            shape: RoomShape::Box,
            assignment: MaterialAssignment::Uniform,
            boundary: BoundaryModel::Fi { beta: 0.1 },
        };
        let setup = SimSetup::new(&cfg);
        // fused (Listing 1)
        let mut device = Device::gtx780();
        let k = room_acoustics::handwritten::fi_single_kernel().resolve_real(ScalarKind::F32);
        let prep = device.compile(&k).unwrap();
        let n = dims.total();
        let bufs: Vec<_> =
            (0..3).map(|_| device.create_buffer_zeroed(ScalarKind::F32, n)).collect();
        let args = [
            Arg::Buf(bufs[0]),
            Arg::Buf(bufs[1]),
            Arg::Buf(bufs[2]),
            Arg::Val(Value::F32(setup.l as f32)),
            Arg::Val(Value::F32(setup.l2 as f32)),
            Arg::Val(Value::F32(0.1)),
            Arg::Val(Value::I32(dims.nx as i32)),
            Arg::Val(Value::I32(dims.ny as i32)),
            Arg::Val(Value::I32(dims.nz as i32)),
        ];
        let fused = device
            .launch(
                &prep,
                &args,
                &[dims.nx, dims.ny, dims.nz],
                ExecMode::Model { sample_stride: stride },
            )
            .unwrap();
        let fused_ms = modeled_ms(fused.transaction_bytes.unwrap(), fused.counters.flops, false);
        // split (Listing 2): volume + gathered boundary
        let mut sim = HandwrittenSim::new(
            setup,
            Precision::Single,
            BoundaryKernel::FiMm { beta_constant: true },
            Device::gtx780(),
        );
        let (v, _) = sim.step(ExecMode::Model { sample_stride: stride });
        let b = sim.boundary_step_only(ExecMode::Model { sample_stride: 1 });
        let split_ms = modeled_ms(v.transaction_bytes.unwrap(), v.counters.flops, false)
            + modeled_ms(b.transaction_bytes.unwrap(), b.counters.flops, false);
        for (variant, ms) in
            [("fused one-kernel (Listing 1)", fused_ms), ("two-kernel split (Listing 2)", split_ms)]
        {
            trows.push(vec!["kernel split".into(), variant.into(), format!("{ms:.3} ms/step")]);
            out.push(AblationRow {
                study: "kernel_split",
                variant: variant.into(),
                metric: "ms_per_step".into(),
                value: ms,
            });
        }
    }

    // ---------------- 2. gather list vs full-grid scan -------------------
    {
        eprintln!("ablation 2: boundary iteration strategy…");
        let setup = SimSetup::new(&SimConfig::fimm(dims, RoomShape::Dome));
        // gathered
        let mut sim = HandwrittenSim::new(
            setup.clone(),
            Precision::Single,
            BoundaryKernel::FiMm { beta_constant: true },
            Device::gtx780(),
        );
        let g = sim.boundary_step_only(ExecMode::Model { sample_stride: 1 });
        let g_ms = modeled_ms(g.transaction_bytes.unwrap(), g.counters.flops, false);
        // full scan
        let mut device = Device::gtx780();
        let k = fullscan_boundary_kernel().resolve_real(ScalarKind::F32);
        let prep = device.compile(&k).unwrap();
        let n = dims.total();
        let nbrs = device.upload(vgpu::BufData::from(setup.room.nbrs.clone()));
        let next = device.create_buffer_zeroed(ScalarKind::F32, n);
        let prev = device.create_buffer_zeroed(ScalarKind::F32, n);
        let args = [
            Arg::Buf(nbrs),
            Arg::Buf(next),
            Arg::Buf(prev),
            Arg::Val(Value::F32(setup.l as f32)),
            Arg::Val(Value::F32(0.1)),
            Arg::Val(Value::I32(dims.nx as i32)),
            Arg::Val(Value::I32(dims.ny as i32)),
            Arg::Val(Value::I32(dims.nz as i32)),
        ];
        let f = device
            .launch(
                &prep,
                &args,
                &[dims.nx, dims.ny, dims.nz],
                ExecMode::Model { sample_stride: stride },
            )
            .unwrap();
        let f_ms = modeled_ms(f.transaction_bytes.unwrap(), f.counters.flops, false);
        for (variant, ms) in [("gathered boundaryIndices", g_ms), ("full-grid scan + mask", f_ms)] {
            trows.push(vec!["boundary iteration".into(), variant.into(), format!("{ms:.3} ms")]);
            out.push(AblationRow {
                study: "boundary_iteration",
                variant: variant.into(),
                metric: "ms_per_step".into(),
                value: ms,
            });
        }
        let speedup = f_ms / g_ms;
        trows.push(vec![
            "boundary iteration".into(),
            "gather speedup".into(),
            format!("{speedup:.1}×"),
        ]);
    }

    // ---------------- 3. FD-MM branch count sweep ------------------------
    {
        eprintln!("ablation 3: MB sweep…");
        let small = if quick { GridDims::new(77, 52, 40) } else { GridDims::new(152, 102, 77) };
        for mb in [1usize, 2, 3, 4, 5] {
            let cfg = SimConfig {
                dims: small,
                shape: RoomShape::Box,
                assignment: MaterialAssignment::FloorWallsCeiling,
                boundary: BoundaryModel::FdMm { materials: Material::default_set(), mb },
            };
            let setup = SimSetup::new(&cfg);
            let nb = setup.num_b() as f64;
            let mut sim = HandwrittenSim::new(
                setup,
                Precision::Double,
                BoundaryKernel::FdMm,
                Device::gtx780(),
            );
            let s = sim.boundary_step_only(ExecMode::Model { sample_stride: 1 });
            let per_update = (s.counters.loads_global + s.counters.stores_global) as f64 / nb;
            let ms = modeled_ms(s.transaction_bytes.unwrap(), s.counters.flops, true);
            trows.push(vec![
                "FD-MM branches".into(),
                format!("MB = {mb}"),
                format!("{per_update:.0} accesses/update, {ms:.3} ms"),
            ]);
            out.push(AblationRow {
                study: "mb_sweep",
                variant: format!("MB{mb}"),
                metric: "ms".into(),
                value: ms,
            });
        }
    }

    // ---------------- 4. race-check overhead -----------------------------
    {
        eprintln!("ablation 4: race-check overhead…");
        let small = GridDims::new(64, 48, 40);
        let setup = SimSetup::new(&SimConfig::fdmm(small, RoomShape::Box));
        let mut sim = HandwrittenSim::new(
            setup.clone(),
            Precision::Double,
            BoundaryKernel::FdMm,
            Device::gtx780(),
        );
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            sim.boundary_step_only(ExecMode::Fast);
        }
        let off = t0.elapsed().as_secs_f64() / 5.0;
        let mut dev = Device::gtx780();
        dev.set_race_check(true);
        let mut sim2 = HandwrittenSim::new(setup, Precision::Double, BoundaryKernel::FdMm, dev);
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            sim2.boundary_step_only(ExecMode::Fast);
        }
        let on = t0.elapsed().as_secs_f64() / 5.0;
        trows.push(vec![
            "race-check".into(),
            "overhead".into(),
            format!("{:.2}× ({:.1} ms → {:.1} ms interpreter wall)", on / off, off * 1e3, on * 1e3),
        ]);
        out.push(AblationRow {
            study: "race_check",
            variant: "ratio".into(),
            metric: "x".into(),
            value: on / off,
        });
    }

    println!("== Ablations ==\n");
    println!("{}", table::render(&["study", "variant", "result"], &trows));
    println!("notes:");
    println!("- §II-C's two-kernel split costs a little extra boundary traffic but removes");
    println!("  the per-point branching of the fused kernel; on a traffic model the two are");
    println!("  close — the split's real-world win (divergence) is architectural.");
    println!("- the gathered boundary list beats a full-grid scan by the surface/volume");
    println!("  ratio: the scan pays one nbrs load per grid point.");
    println!("- FD-MM cost grows linearly with MB (state + coefficient traffic).");
    match table::write_json("ablations", &out) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("ablations");
}

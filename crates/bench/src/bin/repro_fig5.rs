//! Regenerates Figure 5 / Table V: FI-MM boundary-kernel throughput,
//! LIFT-generated vs hand-written, over 4 platforms × 3 sizes × 2 shapes ×
//! 2 precisions.
//!
//! Set `REPRO_QUICK=1` to run reduced room sizes.

use bench::measure::measure_fimm;
use bench::paper::TABLE5;
use bench::report;

fn main() {
    let rows = report::boundary_sweep(measure_fimm, TABLE5);
    report::print_report("Figure 5 / Table V — FI-MM boundary handling", &rows);
    let mut failures = report::shape_checks(&rows);

    // Figure-5-specific claim (per-config on-par): every configuration is
    // within 30 % of its counterpart — the paper's bars overlap except the
    // NVIDIA double-precision cases.
    let mut worst: f64 = 1.0;
    for l in rows.iter().filter(|r| r.version == "LIFT") {
        if let Some(o) = rows.iter().find(|o| {
            o.version == "OpenCL"
                && o.platform == l.platform
                && o.size == l.size
                && o.shape == l.shape
                && o.precision == l.precision
        }) {
            let r = l.modeled_ms / o.modeled_ms;
            if (r - 1.0).abs() > (worst - 1.0).abs() {
                worst = r;
            }
        }
    }
    let ok = (0.7..=1.3).contains(&worst);
    println!(
        "[{}] per-config on-par: worst LIFT/OpenCL time ratio {:.2}",
        if ok { "ok" } else { "FAIL" },
        worst
    );
    if !ok {
        failures += 1;
    }
    // Known model limitation (documented in EXPERIMENTS.md): the paper's
    // NVIDIA double-precision gap — the hand-tuned kernel's *hard-coded
    // private-memory β* beating LIFT's global-buffer β — does not emerge
    // from a DRAM-transaction model, which values both near zero. Our
    // substrate instead slightly favours LIFT (its compacted `bnbrs` read
    // is coalesced where the hand-written `nbrs[idx]` gather is not).
    println!("[note] NVIDIA f64 private-β effect is not modeled; see EXPERIMENTS.md §Fig5");

    match bench::table::write_json("fig5_table5", &rows) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("fig5_table5");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

//! Regenerates Table II: room sizes and boundary-point counts for the box
//! and dome shapes, comparing our voxeliser's counts with the paper's.
//!
//! The dome geometry (half-ellipsoid) is reconstructed from Figure 1 — the
//! paper does not give its analytic form — so dome counts are expected to
//! agree in magnitude and trend (fewer boundary points than the box at the
//! same grid, scaling with surface area), not digit-for-digit.

use bench::paper::TABLE2;
use bench::table;
use room_acoustics::{GridDims, MaterialAssignment, RoomModel, RoomShape};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    size: String,
    x: usize,
    y: usize,
    z: usize,
    dome_pts: usize,
    dome_paper: u64,
    box_pts: usize,
    box_paper: u64,
}

fn main() {
    let quick = std::env::var("REPRO_QUICK").as_deref() == Ok("1");
    let mut rows = Vec::new();
    for &(label, x, y, z, dome_paper, box_paper) in TABLE2 {
        if quick && x > 400 {
            eprintln!("REPRO_QUICK=1: skipping {label}");
            continue;
        }
        eprintln!("voxelising {x}×{y}×{z}…");
        let dims = GridDims::new(x, y, z);
        let boxm = RoomModel::build(dims, RoomShape::Box, MaterialAssignment::Uniform);
        let domem = RoomModel::build(dims, RoomShape::Dome, MaterialAssignment::Uniform);
        rows.push(Row {
            size: label.to_string(),
            x,
            y,
            z,
            dome_pts: domem.num_boundary_points(),
            dome_paper,
            box_pts: boxm.num_boundary_points(),
            box_paper,
        });
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}×{}×{}", r.x, r.y, r.z),
                r.dome_pts.to_string(),
                r.dome_paper.to_string(),
                table::pct(r.dome_pts as f64 / r.dome_paper as f64),
                r.box_pts.to_string(),
                r.box_paper.to_string(),
                table::pct(r.box_pts as f64 / r.box_paper as f64),
            ]
        })
        .collect();
    println!("== Table II: room sizes and boundary points ==\n");
    println!(
        "{}",
        table::render(
            &["dims", "dome pts", "dome paper", "Δ", "box pts", "box paper", "Δ"],
            &table_rows
        )
    );
    let mut failures = 0;
    for r in &rows {
        // box: shell of the interior — should match the paper within a few
        // per cent (halo conventions differ slightly).
        let box_ratio = r.box_pts as f64 / r.box_paper as f64;
        if !(0.9..=1.1).contains(&box_ratio) {
            println!("[FAIL] box count for {} off by {}", r.size, table::pct(box_ratio));
            failures += 1;
        }
        // dome: same order, fewer than box.
        let dome_ratio = r.dome_pts as f64 / r.dome_paper as f64;
        if !(0.5..=2.0).contains(&dome_ratio) || r.dome_pts >= r.box_pts {
            println!("[FAIL] dome count for {} implausible ({})", r.size, r.dome_pts);
            failures += 1;
        }
    }
    if failures == 0 {
        println!("[ok] boundary-point counts reproduce Table II's magnitudes and ordering");
    }
    match table::write_json("table2", &rows) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    bench::trace::finish("table2");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

//! Provenance fields stamped into every committed bench snapshot
//! (`BENCH_*.json`): which engine executed, how many interpreter threads
//! ran, and whether the launch-plan cache was warm or cold when the run
//! started. Snapshots without these fields are not comparable — a warm
//! plan cache or a different thread count shifts ms/step numbers for
//! reasons that have nothing to do with the change under review.

use vgpu::telemetry;

/// The engine label this process resolves from `VGPU_ENGINE` (the default
/// is the warp-vectorized tape).
pub fn engine_label() -> String {
    format!("{:?}", vgpu::Engine::from_env()).to_lowercase()
}

/// The engine-ladder leg (`tree|tape|vector|compiled`) flat launches
/// execute on under the resolved engine. The differential engine runs
/// every leg and returns the top rung's stats, so it records `compiled` —
/// the leg whose numbers the record actually carries. Grouped (barrier)
/// launches cap out at `tape` regardless; records describe the flat
/// steady-state loops the benches time.
pub fn ladder_leg() -> &'static str {
    match vgpu::Engine::from_env() {
        vgpu::Engine::Tree => "tree",
        vgpu::Engine::Tape => "tape",
        vgpu::Engine::Vector => "vector",
        vgpu::Engine::Compiled | vgpu::Engine::Differential => "compiled",
    }
}

/// Interpreter threads: the `VGPU_THREADS` override when set, otherwise
/// the rayon pool's actual size.
pub fn threads() -> usize {
    std::env::var("VGPU_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(rayon::current_num_threads)
}

/// `"cold"` when no launch has been planned yet in this process, `"warm"`
/// otherwise. Call *before* the measured section: a bench that warms up
/// first still reports what the measured loop actually saw.
pub fn plan_cache_state() -> &'static str {
    let reg = telemetry::registry();
    let planned = reg.counter("vgpu.plan.hits").get()
        + reg.counter("vgpu.plan.misses").get()
        + reg.counter("vgpu.plan.shared_hits").get();
    if planned == 0 {
        "cold"
    } else {
        "warm"
    }
}

/// Virtual device count the run shards across (`VGPU_DEVICES`, default 1).
/// Sharded and unsharded snapshots are value-comparable but not
/// wall-clock-comparable, so every record carries the count.
pub fn device_count() -> usize {
    vgpu::device_count_from_env()
}

/// The shadow-memory sanitizer mode the run executed under
/// (`VGPU_SANITIZE`, default `off`). Shadow-mode numbers pay per-access
/// classification and are not wall-clock-comparable with `off` records,
/// so every snapshot carries the label.
pub fn sanitize_label() -> &'static str {
    if vgpu::sanitize::shadow_on() {
        "shadow"
    } else {
        "off"
    }
}

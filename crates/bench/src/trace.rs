//! Trace artifact emission for the `repro_*` binaries.
//!
//! Each binary calls [`finish`] once, after its measurements: depending on
//! `VGPU_TRACE` this prints the telemetry summary table (`summary`), writes
//! a JSONL event stream to `results/<name>.trace.jsonl` (`json`), or writes
//! a Perfetto-loadable Chrome trace to `results/<name>.trace.json`
//! (`chrome`). In the two file modes a machine-readable
//! `results/<name>.telemetry.json` with per-kernel and transfer summaries is
//! written alongside, so traces land next to the `results/*.json` report the
//! run produced.

use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};
use vgpu::telemetry::{self, sink, MetricSnapshot, TraceMode};

/// The sidecar summary written next to a trace artifact.
#[derive(Debug, Serialize)]
pub struct TelemetryReport {
    /// Per-kernel launch/flop/byte totals.
    pub kernels: Vec<sink::KernelSummary>,
    /// Transfer totals by direction.
    pub transfers: Vec<sink::TransferSummary>,
    /// Snapshot of the process-wide metric registry.
    pub metrics: Vec<MetricSnapshot>,
}

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Drains the telemetry buffer and emits the artifact selected by
/// `VGPU_TRACE` (see module docs). Returns the trace file path in the file
/// modes, `None` for `off`/`summary`. Emission failures are reported to
/// stderr, never fatal — a repro run's exit code reflects its shape checks,
/// not its tracing.
pub fn finish(name: &str) -> Option<String> {
    let mode = telemetry::mode();
    if mode == TraceMode::Off {
        return None;
    }
    let events = telemetry::take_events();
    let metrics = telemetry::registry().snapshot();
    if mode == TraceMode::Summary {
        eprintln!("{}", sink::render_summary(&events, &metrics));
        return None;
    }
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return None;
    }
    let mut buf: Vec<u8> = Vec::new();
    let (path, res) = match mode {
        TraceMode::Json => (
            dir.join(format!("{name}.trace.jsonl")),
            sink::write_jsonl(&mut buf, &events, &metrics),
        ),
        _ => (
            dir.join(format!("{name}.trace.json")),
            sink::write_chrome(&mut buf, &events, &metrics),
        ),
    };
    if let Err(e) = res {
        eprintln!("cannot render trace: {e}");
        return None;
    }
    if let Err(e) = fs::write(&path, &buf) {
        eprintln!("cannot write {}: {e}", path.display());
        return None;
    }
    let report = TelemetryReport {
        kernels: sink::kernel_summaries(&events),
        transfers: sink::transfer_summaries(&events),
        metrics,
    };
    let side = dir.join(format!("{name}.telemetry.json"));
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = fs::write(&side, json) {
                eprintln!("cannot write {}: {e}", side.display());
            }
        }
        Err(e) => eprintln!("cannot serialise telemetry report: {e}"),
    }
    let path = path.to_string_lossy().into_owned();
    eprintln!("wrote trace {path}");
    Some(path)
}

//! Compiled-engine behaviour: bit-identity on the control-flow shapes the
//! masked fused executor resolves in place (partial final warps, divergent
//! early-return guards, if-converted diamonds), lane-dependent private
//! indexing, the POTENTIAL-site checked path, and the divergence-accounting
//! regression for grouped launches that fall back to the scalar tape.
//!
//! Counter-based tests serialise on [`TELEMETRY`] because the metric
//! registry is process-global.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{BinOp, Lit, ScalarKind, Value};
use std::sync::Mutex;
use vgpu::{Arg, Backend, BufData, Device, Engine, ExecMode};

static TELEMETRY: Mutex<()> = Mutex::new(());

fn gid() -> KExpr {
    KExpr::GlobalId(0)
}

/// Guard + diamond, the acoustics boundary shape: items past `N` return
/// early; survivors split on parity, both arms storing.
///
/// ```text
/// if (gid >= N) return;
/// if (gid % 2 == 0) out[gid] = x[gid] * 2; else out[gid] = x[gid] + 1;
/// ```
fn guard_diamond_kernel() -> Kernel {
    let even = KExpr::bin(BinOp::Eq, KExpr::bin(BinOp::Rem, gid(), KExpr::int(2)), KExpr::int(0));
    let ld = || KExpr::load(MemRef::Param(0), gid());
    Kernel {
        name: "ce_guard_diamond".into(),
        params: vec![
            KernelParam::global_buf("x", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, gid(), KExpr::var("N"))),
            KStmt::If {
                cond: even,
                then_: vec![KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: gid(),
                    value: ld() * KExpr::Lit(Lit::f32(2.0)),
                }],
                else_: vec![KStmt::Store {
                    mem: MemRef::Param(1),
                    idx: gid(),
                    value: ld() + KExpr::Lit(Lit::f32(1.0)),
                }],
            },
        ],
        work_dim: 1,
    }
}

/// Runs `kernel` on a fresh device under `engine` and returns the output
/// buffer plus the launch stats. `x` seeds param 0; params are
/// `(x, out, N)` with `out` zero-filled at `x`'s length.
fn run_guard_diamond(
    engine: Engine,
    n: i32,
    gsize: usize,
    mode: ExecMode,
) -> (BufData, vgpu::LaunchStats) {
    let mut dev = Device::gtx780();
    dev.set_engine(engine);
    let prep = dev.compile(&guard_diamond_kernel()).unwrap();
    let xs: Vec<f32> = (0..gsize).map(|i| i as f32 * 0.25 - 3.0).collect();
    let x = dev.upload(BufData::from(xs));
    let out = dev.upload(BufData::from(vec![0.0f32; gsize]));
    let stats = dev
        .launch(&prep, &[Arg::Buf(x), Arg::Buf(out), Arg::Val(Value::I32(n))], &[gsize], mode)
        .unwrap();
    (dev.read(out), stats)
}

/// A partial final warp (45 items over 2 warps: 32 + 13) with the guard
/// diverging inside the last warp and the diamond diverging in every warp:
/// the compiled leg must stay on its own backend, report the same
/// divergent-warp count as the vector leg, and produce bit-identical
/// buffers and counters.
#[test]
fn partial_final_warp_and_divergence_bit_identical() {
    let (tree, tstats) = run_guard_diamond(Engine::Tree, 45, 64, ExecMode::Fast);
    let (vect, vstats) = run_guard_diamond(Engine::Vector, 45, 64, ExecMode::Fast);
    let (comp, cstats) = run_guard_diamond(Engine::Compiled, 45, 64, ExecMode::Fast);
    assert_eq!(comp, tree, "compiled buffers must match the tree oracle");
    assert_eq!(comp, vect);
    assert_eq!(cstats.counters, tstats.counters);
    assert_eq!(cstats.backend, Backend::Compiled, "must not fall back");
    assert_eq!(vstats.backend, Backend::Vector);
    // Both warps diverge (warp 0 at the diamond, warp 1 at guard and
    // diamond), and the compiled engine's lanes-disagree test must agree
    // with the vector engine's warp for warp.
    assert_eq!(vstats.divergent_warps, 2);
    assert_eq!(cstats.divergent_warps, vstats.divergent_warps);
}

/// The modeled path (counters + warp transaction bytes) under the
/// differential engine: all four legs cross-checked internally, on a
/// partial-warp divergent launch.
#[test]
fn differential_model_mode_covers_compiled_leg() {
    let (_, stats) =
        run_guard_diamond(Engine::Differential, 45, 64, ExecMode::Model { sample_stride: 1 });
    assert!(stats.transaction_bytes.is_some());
}

/// Lane-dependent private indexing: each lane fills a private array in a
/// loop, then reads it back at a lane-dependent index.
///
/// ```text
/// int t[4];
/// for (int i = 0; i < 4; i++) t[i] = gid * 4 + i;
/// out[gid] = t[gid % 4];
/// ```
#[test]
fn lane_dependent_private_indexing_matches_tree() {
    let k = Kernel {
        name: "ce_priv_idx".into(),
        params: vec![KernelParam::global_buf("out", ScalarKind::I32)],
        body: vec![
            KStmt::DeclPrivArray { name: "t".into(), kind: ScalarKind::I32, len: KExpr::int(4) },
            KStmt::For {
                var: "i".into(),
                begin: KExpr::int(0),
                end: KExpr::int(4),
                step: KExpr::int(1),
                body: vec![KStmt::Store {
                    mem: MemRef::Priv("t".into()),
                    idx: KExpr::var("i"),
                    value: gid() * KExpr::int(4) + KExpr::var("i"),
                }],
            },
            KStmt::Store {
                mem: MemRef::Param(0),
                idx: gid(),
                value: KExpr::load(
                    MemRef::Priv("t".into()),
                    KExpr::bin(BinOp::Rem, gid(), KExpr::int(4)),
                ),
            },
        ],
        work_dim: 1,
    };
    let run = |engine: Engine| {
        let mut dev = Device::gtx780();
        dev.set_engine(engine);
        let prep = dev.compile(&k).unwrap();
        let out = dev.upload(BufData::from(vec![0i32; 50]));
        let stats = dev.launch(&prep, &[Arg::Buf(out)], &[50], ExecMode::Fast).unwrap();
        (dev.read(out), stats)
    };
    let (tree, _) = run(Engine::Tree);
    let (comp, cstats) = run(Engine::Compiled);
    assert_eq!(comp, tree);
    assert_eq!(cstats.backend, Backend::Compiled, "must not fall back");
    let want: Vec<f64> = (0..50).map(|g| (g * 4 + g % 4) as f64).collect();
    assert_eq!(comp.to_f64_vec(), want);
}

/// A data-dependent gather (`out[gid] = x[t[gid]]`) has no static proof —
/// the table's *values* are unknown to the verifier — so its site must stay
/// on the checked path (`vgpu.compiled.sites_checked` grows) while results
/// stay bit-identical to the tree oracle.
#[test]
fn potential_site_keeps_dynamic_check() {
    let _guard = TELEMETRY.lock().unwrap();
    let k = Kernel {
        name: "ce_gather".into(),
        params: vec![
            KernelParam::global_buf("t", ScalarKind::I32),
            KernelParam::global_buf("x", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(2),
            idx: gid(),
            value: KExpr::load(MemRef::Param(1), KExpr::load(MemRef::Param(0), gid())),
        }],
        work_dim: 1,
    };
    let reg = vgpu::telemetry::registry();
    let checked0 = reg.counter("vgpu.compiled.sites_checked").get();
    let run = |engine: Engine| {
        let mut dev = Device::gtx780();
        dev.set_engine(engine);
        let prep = dev.compile(&k).unwrap();
        let t = dev.upload(BufData::from((0..32).rev().collect::<Vec<i32>>()));
        let x = dev.upload(BufData::from((0..32).map(|i| i as f32 * 1.5).collect::<Vec<f32>>()));
        let out = dev.upload(BufData::from(vec![0.0f32; 32]));
        let stats = dev
            .launch(&prep, &[Arg::Buf(t), Arg::Buf(x), Arg::Buf(out)], &[32], ExecMode::Fast)
            .unwrap();
        (dev.read(out), stats)
    };
    let (tree, _) = run(Engine::Tree);
    let (comp, cstats) = run(Engine::Compiled);
    assert_eq!(comp, tree);
    assert_eq!(cstats.backend, Backend::Compiled);
    let checked = reg.counter("vgpu.compiled.sites_checked").get() - checked0;
    assert!(checked > 0, "the value-dependent gather site must stay checked");
}

/// Regression (divergence over-counting): a grouped (barrier) launch falls
/// back to the scalar tape, which has no warps — `vgpu.warp.divergent`
/// must not move, even though the kernel branches per item, while the
/// engine's own fallback counter records the rerouted launch.
#[test]
fn grouped_fallback_counts_no_warp_divergence() {
    let _guard = TELEMETRY.lock().unwrap();
    let even = KExpr::bin(BinOp::Eq, KExpr::bin(BinOp::Rem, gid(), KExpr::int(2)), KExpr::int(0));
    let ld = || KExpr::load(MemRef::Param(0), gid());
    let k = Kernel {
        name: "ce_grouped_div".into(),
        params: vec![KernelParam::global_buf("out", ScalarKind::I32)],
        body: vec![
            KStmt::Store { mem: MemRef::Param(0), idx: gid(), value: KExpr::LocalId(0) },
            KStmt::Barrier,
            KStmt::If {
                cond: even,
                then_: vec![KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: gid(),
                    value: ld() * KExpr::int(2),
                }],
                else_: vec![KStmt::Store {
                    mem: MemRef::Param(0),
                    idx: gid(),
                    value: ld() + KExpr::int(1),
                }],
            },
        ],
        work_dim: 1,
    };
    let reg = vgpu::telemetry::registry();
    for (engine, fallback_counter) in
        [(Engine::Vector, "vgpu.vector.fallbacks"), (Engine::Compiled, "vgpu.compiled.fallbacks")]
    {
        let divergent0 = reg.counter("vgpu.warp.divergent").get();
        let fallbacks0 = reg.counter(fallback_counter).get();
        let mut dev = Device::gtx780();
        dev.set_engine(engine);
        let prep = dev.compile(&k).unwrap();
        let out = dev.upload(BufData::from(vec![0i32; 64]));
        let stats =
            dev.launch_wg(&prep, &[Arg::Buf(out)], &[64], Some(32), ExecMode::Fast).unwrap();
        assert_eq!(
            stats.backend,
            Backend::Tape,
            "{engine:?}: grouped launches run the scalar tape"
        );
        assert_eq!(stats.divergent_warps, 0, "{engine:?}: the scalar tape has no warps");
        let want: Vec<f64> =
            (0..64).map(|g| if g % 2 == 0 { (g % 32) * 2 } else { g % 32 + 1 } as f64).collect();
        assert_eq!(dev.read(out).to_f64_vec(), want);
        assert_eq!(
            reg.counter("vgpu.warp.divergent").get() - divergent0,
            0,
            "{engine:?}: scalar-tape fallback must not count warp divergence"
        );
        assert_eq!(
            reg.counter(fallback_counter).get() - fallbacks0,
            1,
            "{engine:?}: the fallback itself is audited once per launch"
        );
    }
}

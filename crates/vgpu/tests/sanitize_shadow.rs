//! End-to-end tests of the shadow-memory sanitizer (`VGPU_SANITIZE=shadow`).
//!
//! Every test in this binary runs with the sanitizer forced on (the binary
//! is separate from the other vgpu test binaries, so the process-wide
//! override leaks nowhere). Two deliberately broken schedules — the dynamic
//! twins of the static fixtures `fixture_uninit_read` and
//! `fixture_stale_halo` — must be flagged with full provenance, and clean
//! schedules (including a halo exchange done right) must stay silent.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{BinOp, ScalarKind, Value};
use vgpu::sanitize::{self, FaultKind};
use vgpu::{Arg, BufData, Device, Engine, ExecMode, SlabPartition};

fn force_on() {
    sanitize::force_shadow();
}

/// out[i] = src[i] — one load site, one store site.
fn copy_kernel(name: &str) -> Kernel {
    Kernel {
        name: name.into(),
        params: vec![
            KernelParam::global_buf("src", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)),
            },
        ],
        work_dim: 1,
    }
}

#[test]
fn uninit_read_is_flagged_with_provenance_on_every_engine() {
    force_on();
    for (engine, label) in [
        (Engine::Tree, "tree"),
        (Engine::Tape, "tape"),
        (Engine::Vector, "vector"),
        (Engine::Compiled, "compiled"),
    ] {
        let name = format!("san_uninit_{label}");
        let mut dev = Device::gtx780();
        dev.set_engine(engine);
        let prep = dev.compile(&copy_kernel(&name)).unwrap();
        // `create_buffer` contents are not promised — reading them is the bug.
        let src = dev.create_buffer(ScalarKind::F32, 32);
        let out = dev.create_buffer(ScalarKind::F32, 32);
        dev.launch(
            &prep,
            &[Arg::Buf(src), Arg::Buf(out), Arg::Val(Value::I32(32))],
            &[32],
            ExecMode::Fast,
        )
        .unwrap();
        let hits: Vec<_> = sanitize::findings().into_iter().filter(|f| f.kernel == name).collect();
        assert_eq!(hits.len(), 1, "{label}: exactly one deduped finding, got {hits:?}");
        assert_eq!(hits[0].kind, FaultKind::UninitRead);
        assert_eq!(hits[0].buffer, "src", "{label}: finding names the read buffer");
    }
}

#[test]
fn zeroed_allocation_and_upload_are_clean() {
    force_on();
    let name = "san_clean_copy";
    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Differential); // diff engine errors on any finding
    let prep = dev.compile(&copy_kernel(name)).unwrap();
    let src = dev.create_buffer_zeroed(ScalarKind::F32, 32);
    let out = dev.create_buffer(ScalarKind::F32, 32); // store-only: fine uninit
    dev.launch(
        &prep,
        &[Arg::Buf(src), Arg::Buf(out), Arg::Val(Value::I32(32))],
        &[32],
        ExecMode::Fast,
    )
    .expect("clean launch passes the differential sanitizer gate");
    // Reading back what the kernel just stored is also clean.
    let up = dev.upload(BufData::from(vec![1.0f32; 32]));
    dev.launch(
        &prep,
        &[Arg::Buf(up), Arg::Buf(out), Arg::Val(Value::I32(32))],
        &[32],
        ExecMode::Fast,
    )
    .expect("uploaded source is initialized");
    assert_eq!(sanitize::findings().iter().filter(|f| f.kernel == name).count(), 0);
}

#[test]
fn differential_gate_turns_finding_into_launch_error() {
    force_on();
    let name = "san_uninit_diffgate";
    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Differential);
    let prep = dev.compile(&copy_kernel(name)).unwrap();
    let src = dev.create_buffer(ScalarKind::F32, 16);
    let out = dev.create_buffer(ScalarKind::F32, 16);
    let err = dev
        .launch(
            &prep,
            &[Arg::Buf(src), Arg::Buf(out), Arg::Val(Value::I32(16))],
            &[16],
            ExecMode::Fast,
        )
        .expect_err("differential launch must fail on a sanitizer finding");
    let msg = format!("{err:?}");
    assert!(msg.contains("uninit-read"), "error carries the finding: {msg}");
    assert!(msg.contains("src"), "error names the buffer: {msg}");
}

/// A two-device mini-schedule over a 2-plane-per-slab field: each device
/// owns `owned` planes of `plane` elements with one halo plane on each
/// side. `exchange` controls whether the seam is refreshed before the
/// second step — skipping it is exactly the stale-halo bug.
fn stale_halo_schedule(exchange_each_step: bool, kname: &str) -> Vec<vgpu::Finding> {
    let plane = 4usize;
    let part = SlabPartition::balanced(4, 2);
    let mut devs = vec![Device::gtx780(), Device::gtx780()];
    for d in &mut devs {
        // Pin a single-leg engine: under VGPU_ENGINE=diff the stale seam
        // would (correctly) fail the launch instead of recording findings,
        // and this helper wants to inspect the registry afterwards.
        d.set_engine(Engine::Vector);
    }
    // increment kernel: bumps the *owned* planes only (indices are shifted
    // past the bottom halo plane), exactly like a volume update — halo
    // planes are read, never written.
    let kern = Kernel {
        name: kname.into(),
        params: vec![
            KernelParam::global_buf("field", ScalarKind::F32),
            KernelParam::scalar("N", ScalarKind::I32),
            KernelParam::scalar("plane", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(0),
                idx: KExpr::bin(BinOp::Add, KExpr::GlobalId(0), KExpr::var("plane")),
                value: KExpr::bin(
                    BinOp::Add,
                    KExpr::load(
                        MemRef::Param(0),
                        KExpr::bin(BinOp::Add, KExpr::GlobalId(0), KExpr::var("plane")),
                    ),
                    KExpr::real(1.0),
                ),
            },
        ],
        work_dim: 1,
    }
    .resolve_real(ScalarKind::F32);
    // reader kernel: out[i] = field[i] for the *whole* local slab, halo
    // planes included — the seam read that must be fresh.
    let reader = Kernel {
        name: format!("{kname}_reader"),
        params: vec![
            KernelParam::global_buf("field", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)),
            },
        ],
        work_dim: 1,
    };
    let fields: Vec<_> = (0..2)
        .map(|d| devs[d].create_buffer_zeroed(ScalarKind::F32, part.local_planes(d) * plane))
        .collect();
    let outs: Vec<_> = (0..2)
        .map(|d| devs[d].create_buffer(ScalarKind::F32, part.local_planes(d) * plane))
        .collect();
    let preps: Vec<_> = (0..2).map(|d| devs[d].compile(&kern).unwrap()).collect();
    let rpreps: Vec<_> = (0..2).map(|d| devs[d].compile(&reader).unwrap()).collect();
    vgpu::halo_exchange(&mut devs, &fields, &part, plane);
    for step in 0..2 {
        if exchange_each_step && step > 0 {
            vgpu::halo_exchange(&mut devs, &fields, &part, plane);
        }
        // All seam reads happen before any device mutates its field — the
        // same read-then-write phasing as a real volume step over `curr`.
        for d in 0..2 {
            let n = (part.local_planes(d) * plane) as i32;
            devs[d]
                .launch(
                    &rpreps[d],
                    &[Arg::Buf(fields[d]), Arg::Buf(outs[d]), Arg::Val(Value::I32(n))],
                    &[part.local_planes(d) * plane],
                    ExecMode::Fast,
                )
                .unwrap();
        }
        for d in 0..2 {
            let owned = (part.owned(d) * plane) as i32;
            devs[d]
                .launch(
                    &preps[d],
                    &[
                        Arg::Buf(fields[d]),
                        Arg::Val(Value::I32(owned)),
                        Arg::Val(Value::I32(plane as i32)),
                    ],
                    &[part.owned(d) * plane],
                    ExecMode::Fast,
                )
                .unwrap();
        }
    }
    sanitize::findings().into_iter().filter(|f| f.kernel == format!("{kname}_reader")).collect()
}

#[test]
fn skipped_halo_exchange_is_flagged_as_stale() {
    force_on();
    let hits = stale_halo_schedule(false, "san_stale");
    assert!(!hits.is_empty(), "second step must read a stale seam");
    assert!(hits.iter().all(|f| f.kind == FaultKind::StaleHaloRead), "{hits:?}");
    assert_eq!(hits[0].buffer, "field", "finding names the seam buffer");
}

#[test]
fn per_step_halo_exchange_is_clean() {
    force_on();
    let hits = stale_halo_schedule(true, "san_fresh");
    assert!(hits.is_empty(), "exchanged-every-step schedule must be clean: {hits:?}");
}

#[test]
fn sanitize_counters_tally_findings() {
    force_on();
    let reg = vgpu::telemetry::registry();
    let before = reg.counter("vgpu.sanitize.uninit_reads").get();
    let name = "san_counter_probe";
    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Tree);
    let prep = dev.compile(&copy_kernel(name)).unwrap();
    let src = dev.create_buffer(ScalarKind::F32, 8);
    let out = dev.create_buffer(ScalarKind::F32, 8);
    dev.launch(
        &prep,
        &[Arg::Buf(src), Arg::Buf(out), Arg::Val(Value::I32(8))],
        &[8],
        ExecMode::Fast,
    )
    .unwrap();
    // 8 work-items × 1 uninit load each; the counter counts occurrences,
    // the finding registry dedupes to one row.
    assert!(reg.counter("vgpu.sanitize.uninit_reads").get() >= before + 8);
    assert_eq!(sanitize::findings().iter().filter(|f| f.kernel == name).count(), 1);
}

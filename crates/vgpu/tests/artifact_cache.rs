//! The process-wide artifact cache makes launch plans portable across
//! devices: a fresh device launching a kernel another device already
//! planned adopts the shared plan (`vgpu.plan.shared_hits`) instead of
//! replanning (`vgpu.plan.misses`).
//!
//! Runs in its own test binary so its counter-delta assertions only race
//! with the tests in this file, which serialise on [`COUNTERS`].

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{ScalarKind, Value};
use std::sync::Mutex;
use vgpu::{telemetry, Arg, BufData, Device, ExecMode};

static COUNTERS: Mutex<()> = Mutex::new(());

/// out[gid] = x[gid] * a.
fn scale_kernel(name: &str, kind: ScalarKind) -> Kernel {
    Kernel {
        name: name.into(),
        params: vec![
            KernelParam::global_buf("x", kind),
            KernelParam::global_buf("out", kind),
            KernelParam::scalar("a", kind),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(1),
            idx: KExpr::GlobalId(0),
            value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::var("a"),
        }],
        work_dim: 1,
    }
}

fn launch_once(prep: &vgpu::Prepared) {
    let mut dev = Device::gtx780();
    let x = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0, 4.0]));
    let out = dev.upload(BufData::from(vec![0.0f32; 4]));
    dev.launch(
        prep,
        &[Arg::Buf(x), Arg::Buf(out), Arg::Val(Value::F32(2.0))],
        &[4],
        ExecMode::Fast,
    )
    .unwrap();
    assert_eq!(dev.read(out).to_f64_vec(), vec![2.0, 4.0, 6.0, 8.0]);
}

#[test]
fn fresh_devices_adopt_shared_plans_instead_of_replanning() {
    let _guard = COUNTERS.lock().unwrap();
    let prep = vgpu::compile_cached(&scale_kernel("artifact_plan_share", ScalarKind::F32)).unwrap();
    let reg = telemetry::registry();
    let misses0 = reg.counter("vgpu.plan.misses").get();
    let shared0 = reg.counter("vgpu.plan.shared_hits").get();

    // First device to see the kernel pays the one planning miss...
    launch_once(&prep);
    assert_eq!(reg.counter("vgpu.plan.misses").get() - misses0, 1);

    // ...and every later device adopts the published plan.
    for _ in 0..3 {
        launch_once(&prep);
    }
    assert_eq!(
        reg.counter("vgpu.plan.misses").get() - misses0,
        1,
        "fresh devices must not replan a shared artifact"
    );
    assert_eq!(
        reg.counter("vgpu.plan.shared_hits").get() - shared0,
        3,
        "each fresh device adopts the shared plan once"
    );
}

#[test]
fn distinct_prepares_of_the_same_kernel_do_not_share_plans() {
    let _guard = COUNTERS.lock().unwrap();
    // Plain `Device::compile` bypasses the artifact cache: each `Prepared`
    // gets a fresh id, so the shared map cannot (and must not) alias them.
    let reg = telemetry::registry();
    let misses0 = reg.counter("vgpu.plan.misses").get();
    for _ in 0..2 {
        let dev = Device::gtx780();
        let prep = dev.compile(&scale_kernel("artifact_plan_private", ScalarKind::F32)).unwrap();
        launch_once(&prep);
    }
    assert_eq!(
        reg.counter("vgpu.plan.misses").get() - misses0,
        2,
        "uncached prepares keep private plan identities"
    );
}

#[test]
fn compile_cached_counts_hits_and_misses() {
    let _guard = COUNTERS.lock().unwrap();
    let reg = telemetry::registry();
    let hits0 = reg.counter("vgpu.artifact.hits").get();
    let misses0 = reg.counter("vgpu.artifact.misses").get();
    let a = vgpu::compile_cached(&scale_kernel("artifact_counted", ScalarKind::F64)).unwrap();
    let b = vgpu::compile_cached(&scale_kernel("artifact_counted", ScalarKind::F64)).unwrap();
    assert_eq!(a.id(), b.id());
    assert_eq!(reg.counter("vgpu.artifact.misses").get() - misses0, 1);
    assert_eq!(reg.counter("vgpu.artifact.hits").get() - hits0, 1);
}

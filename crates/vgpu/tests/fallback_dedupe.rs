//! Tape-fallback audit records are deduplicated per (kernel, reason).
//!
//! Runs in its own test binary (hence its own process) because the dedupe
//! set is process-global: in-crate unit tests that also trigger fallbacks
//! would race with this one.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{ScalarKind, Value};
use vgpu::telemetry::{self, Event, TraceMode};
use vgpu::{Arg, BufData, Device, Engine, ExecMode};

/// out[gid] = x[gid] * a — compiled for f32 buffers.
fn saxpy_ish() -> Kernel {
    Kernel {
        name: "dedupe_fb".into(),
        params: vec![
            KernelParam::global_buf("x", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
            KernelParam::scalar("a", ScalarKind::F32),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(1),
            idx: KExpr::GlobalId(0),
            value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::var("a"),
        }],
        work_dim: 1,
    }
}

#[test]
fn repeated_fallback_launches_emit_one_record_but_count_every_launch() {
    telemetry::set_mode(TraceMode::Chrome);
    let fallbacks0 = telemetry::registry().counter("vgpu.tape.fallbacks").get();
    let _ = telemetry::take_events();

    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Tape);
    let prep = dev.compile(&saxpy_ish()).unwrap();
    // f64 buffers against a tape specialized for f32 → per-launch fallback
    // to the tree-walker, with the same (kernel, reason) pair every time.
    let x = dev.upload(BufData::from(vec![1.0f64, 2.0, 3.0, 4.0]));
    let out = dev.upload(BufData::from(vec![0.0f64; 4]));
    for _ in 0..3 {
        dev.launch(
            &prep,
            &[Arg::Buf(x), Arg::Buf(out), Arg::Val(Value::F32(2.0))],
            &[4],
            ExecMode::Fast,
        )
        .unwrap();
    }
    assert_eq!(dev.read(out).to_f64_vec(), vec![2.0, 4.0, 6.0, 8.0]);

    // The audit counter stays truthful: one bump per fallen-back launch.
    let fallbacks = telemetry::registry().counter("vgpu.tape.fallbacks").get() - fallbacks0;
    assert_eq!(fallbacks, 3, "counter must record every launch");

    // But the trace stream reports the pair exactly once.
    let events: Vec<_> = telemetry::take_events()
        .into_iter()
        .filter(|e| matches!(e, Event::TapeFallback { kernel, .. } if kernel == "dedupe_fb"))
        .collect();
    assert_eq!(events.len(), 1, "one TapeFallback event per (kernel, reason): {events:?}");
    telemetry::set_mode(TraceMode::Off);
}

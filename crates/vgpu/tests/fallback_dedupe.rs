//! Fallback and divergence audit records are deduplicated per
//! (kernel, reason) while the matching counters stay truthful per launch.
//!
//! Runs in its own test binary (hence its own process) because the dedupe
//! set is process-global: in-crate unit tests that also trigger fallbacks
//! would race with this one. The tests here serialise on [`TELEMETRY`]
//! because the event stream (`take_events`) is process-global too.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{BinOp, Lit, ScalarKind, Value};
use std::sync::Mutex;
use vgpu::telemetry::{self, Event, TraceMode};
use vgpu::{Arg, BufData, Device, Engine, ExecMode};

static TELEMETRY: Mutex<()> = Mutex::new(());

/// out[gid] = x[gid] * a — compiled for f32 buffers.
fn saxpy_ish() -> Kernel {
    Kernel {
        name: "dedupe_fb".into(),
        params: vec![
            KernelParam::global_buf("x", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
            KernelParam::scalar("a", ScalarKind::F32),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(1),
            idx: KExpr::GlobalId(0),
            value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::var("a"),
        }],
        work_dim: 1,
    }
}

#[test]
fn repeated_fallback_launches_emit_one_record_but_count_every_launch() {
    let _guard = TELEMETRY.lock().unwrap();
    telemetry::set_mode(TraceMode::Chrome);
    let fallbacks0 = telemetry::registry().counter("vgpu.tape.fallbacks").get();
    let _ = telemetry::take_events();

    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Tape);
    let prep = dev.compile(&saxpy_ish()).unwrap();
    // f64 buffers against a tape specialized for f32 → per-launch fallback
    // to the tree-walker, with the same (kernel, reason) pair every time.
    let x = dev.upload(BufData::from(vec![1.0f64, 2.0, 3.0, 4.0]));
    let out = dev.upload(BufData::from(vec![0.0f64; 4]));
    for _ in 0..3 {
        dev.launch(
            &prep,
            &[Arg::Buf(x), Arg::Buf(out), Arg::Val(Value::F32(2.0))],
            &[4],
            ExecMode::Fast,
        )
        .unwrap();
    }
    assert_eq!(dev.read(out).to_f64_vec(), vec![2.0, 4.0, 6.0, 8.0]);

    // The audit counter stays truthful: one bump per fallen-back launch.
    let fallbacks = telemetry::registry().counter("vgpu.tape.fallbacks").get() - fallbacks0;
    assert_eq!(fallbacks, 3, "counter must record every launch");

    // But the trace stream reports the pair exactly once.
    let events: Vec<_> = telemetry::take_events()
        .into_iter()
        .filter(|e| matches!(e, Event::TapeFallback { kernel, .. } if kernel == "dedupe_fb"))
        .collect();
    assert_eq!(events.len(), 1, "one TapeFallback event per (kernel, reason): {events:?}");
    telemetry::set_mode(TraceMode::Off);
}

/// Dedupe is scoped per job, not per process: a batch executor calls
/// [`vgpu::exec::reset_fallback_dedupe`] at each job start, so two
/// back-to-back simulations that hit the same fallback cause *both* emit a
/// record — the first job cannot swallow the second's — while the counter
/// still counts every launch of both jobs.
#[test]
fn back_to_back_jobs_each_emit_their_own_record() {
    let _guard = TELEMETRY.lock().unwrap();
    telemetry::set_mode(TraceMode::Chrome);
    let fallbacks0 = telemetry::registry().counter("vgpu.tape.fallbacks").get();
    let _ = telemetry::take_events();

    for _job in 0..2 {
        vgpu::exec::reset_fallback_dedupe();
        let mut dev = Device::gtx780();
        dev.set_engine(Engine::Tape);
        let prep = dev.compile(&saxpy_ish()).unwrap();
        let x = dev.upload(BufData::from(vec![1.0f64, 2.0, 3.0, 4.0]));
        let out = dev.upload(BufData::from(vec![0.0f64; 4]));
        // Two fallback launches per job: deduped to one record within the
        // job, but never across jobs.
        for _ in 0..2 {
            dev.launch(
                &prep,
                &[Arg::Buf(x), Arg::Buf(out), Arg::Val(Value::F32(2.0))],
                &[4],
                ExecMode::Fast,
            )
            .unwrap();
        }
    }

    let fallbacks = telemetry::registry().counter("vgpu.tape.fallbacks").get() - fallbacks0;
    assert_eq!(fallbacks, 4, "counter records every launch of both jobs");
    let events: Vec<_> = telemetry::take_events()
        .into_iter()
        .filter(|e| matches!(e, Event::TapeFallback { kernel, .. } if kernel == "dedupe_fb"))
        .collect();
    assert_eq!(events.len(), 2, "one record per job, not one per process: {events:?}");
    telemetry::set_mode(TraceMode::Off);
}

/// Even lanes double, odd lanes copy — both arms store, so the branch is
/// not if-convertible and every mixed warp genuinely diverges.
fn div_kernel() -> Kernel {
    let even = KExpr::bin(
        BinOp::Eq,
        KExpr::bin(BinOp::Rem, KExpr::GlobalId(0), KExpr::int(2)),
        KExpr::int(0),
    );
    let ld = || KExpr::load(MemRef::Param(0), KExpr::GlobalId(0));
    Kernel {
        name: "dedupe_div".into(),
        params: vec![
            KernelParam::global_buf("x", ScalarKind::F32),
            KernelParam::global_buf("out", ScalarKind::F32),
        ],
        body: vec![KStmt::If {
            cond: even,
            then_: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: ld() * KExpr::Lit(Lit::f32(2.0)),
            }],
            else_: vec![KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: ld(),
            }],
        }],
        work_dim: 1,
    }
}

#[test]
fn repeated_divergence_emits_one_record_but_counts_every_warp() {
    let _guard = TELEMETRY.lock().unwrap();
    telemetry::set_mode(TraceMode::Chrome);
    let divergent0 = telemetry::registry().counter("vgpu.warp.divergent").get();
    let _ = telemetry::take_events();

    let mut dev = Device::gtx780();
    dev.set_engine(Engine::Vector);
    let prep = dev.compile(&div_kernel()).unwrap();
    let x = dev.upload(BufData::from(vec![1.0f32; 64]));
    let out = dev.upload(BufData::from(vec![0.0f32; 64]));
    // 64 items = 2 warps, every one split between even and odd lanes.
    for _ in 0..3 {
        dev.launch(&prep, &[Arg::Buf(x), Arg::Buf(out)], &[64], ExecMode::Fast).unwrap();
    }
    let want: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 2.0 } else { 1.0 }).collect();
    assert_eq!(dev.read(out).to_f64_vec(), want);

    // The audit counter records every divergent warp of every launch...
    let divergent = telemetry::registry().counter("vgpu.warp.divergent").get() - divergent0;
    assert_eq!(divergent, 6, "2 warps x 3 launches must all count");

    // ...while the trace stream reports the kernel exactly once.
    let events: Vec<_> = telemetry::take_events()
        .into_iter()
        .filter(|e| matches!(e, Event::WarpDivergence { kernel, .. } if kernel == "dedupe_div"))
        .collect();
    assert_eq!(events.len(), 1, "one WarpDivergence event per kernel: {events:?}");
    telemetry::set_mode(TraceMode::Off);
}

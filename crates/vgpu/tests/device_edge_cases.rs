//! Edge-case and error-path tests for the virtual device.

use lift::kast::{KExpr, KStmt, Kernel, KernelParam, MemRef};
use lift::prelude::{BinOp, Lit, ScalarKind, Value};
use vgpu::{Arg, BufData, Device, ExecMode};

fn copy_kernel(kind: ScalarKind) -> Kernel {
    Kernel {
        name: "copy".into(),
        params: vec![
            KernelParam::global_buf("src", kind),
            KernelParam::global_buf("dst", kind),
            KernelParam::scalar("N", ScalarKind::I32),
        ],
        body: vec![
            KStmt::return_if(KExpr::bin(BinOp::Ge, KExpr::GlobalId(0), KExpr::var("N"))),
            KStmt::Store {
                mem: MemRef::Param(1),
                idx: KExpr::GlobalId(0),
                value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)),
            },
        ],
        work_dim: 1,
    }
}

#[test]
fn arg_count_mismatch_is_reported() {
    let mut dev = Device::gtx780();
    let prep = dev.compile(&copy_kernel(ScalarKind::F32)).unwrap();
    let b = dev.create_buffer(ScalarKind::F32, 4);
    let r = dev.launch(&prep, &[Arg::Buf(b)], &[4], ExecMode::Fast);
    assert!(r.is_err());
}

#[test]
fn buffer_for_scalar_param_is_reported() {
    let mut dev = Device::gtx780();
    let prep = dev.compile(&copy_kernel(ScalarKind::F32)).unwrap();
    let b = dev.create_buffer(ScalarKind::F32, 4);
    let r = dev.launch(&prep, &[Arg::Buf(b), Arg::Buf(b), Arg::Buf(b)], &[4], ExecMode::Fast);
    assert!(r.is_err(), "scalar parameter bound to a buffer must fail");
}

#[test]
fn unresolved_real_kernel_rejected_at_compile() {
    let dev = Device::gtx780();
    let k = Kernel {
        name: "generic".into(),
        params: vec![KernelParam::global_buf("x", ScalarKind::Real)],
        body: vec![],
        work_dim: 1,
    };
    assert!(dev.compile(&k).is_err());
}

#[test]
fn zero_sized_ndrange_is_a_noop() {
    let mut dev = Device::gtx780();
    let prep = dev.compile(&copy_kernel(ScalarKind::F32)).unwrap();
    let src = dev.upload(BufData::from(vec![5.0f32; 4]));
    let dst = dev.create_buffer(ScalarKind::F32, 4);
    let stats = dev
        .launch(
            &prep,
            &[Arg::Buf(src), Arg::Buf(dst), Arg::Val(Value::I32(0))],
            &[0],
            ExecMode::Fast,
        )
        .unwrap();
    assert_eq!(stats.counters.stores_global, 0);
    assert_eq!(dev.read(dst), BufData::zeros(ScalarKind::F32, 4));
}

#[test]
fn guard_stops_out_of_range_items() {
    // NDRange rounded up beyond N: guarded items must not touch memory.
    let mut dev = Device::gtx780();
    let prep = dev.compile(&copy_kernel(ScalarKind::F32)).unwrap();
    let src = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0]));
    let dst = dev.create_buffer(ScalarKind::F32, 3);
    let stats = dev
        .launch(
            &prep,
            &[Arg::Buf(src), Arg::Buf(dst), Arg::Val(Value::I32(3))],
            &[64],
            ExecMode::Fast,
        )
        .unwrap();
    assert_eq!(stats.counters.stores_global, 3);
    assert_eq!(stats.counters.work_items, 64);
}

#[test]
fn scalar_args_cast_to_param_kind() {
    // pass an f64 value to an f32 scalar parameter: C conversion applies
    let k = Kernel {
        name: "fill".into(),
        params: vec![
            KernelParam::global_buf("dst", ScalarKind::F32),
            KernelParam::scalar("v", ScalarKind::F32),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(0),
            idx: KExpr::GlobalId(0),
            value: KExpr::var("v"),
        }],
        work_dim: 1,
    };
    let mut dev = Device::gtx780();
    let prep = dev.compile(&k).unwrap();
    let dst = dev.create_buffer(ScalarKind::F32, 2);
    dev.launch(&prep, &[Arg::Buf(dst), Arg::Val(Value::F64(0.1))], &[2], ExecMode::Fast).unwrap();
    assert_eq!(dev.read(dst), BufData::from(vec![0.1f64 as f32; 2]));
}

#[test]
fn comments_are_noops() {
    let k = Kernel {
        name: "c".into(),
        params: vec![KernelParam::global_buf("dst", ScalarKind::I32)],
        body: vec![
            KStmt::Comment("hello".into()),
            KStmt::Store { mem: MemRef::Param(0), idx: KExpr::GlobalId(0), value: KExpr::int(7) },
        ],
        work_dim: 1,
    };
    let mut dev = Device::gtx780();
    let prep = dev.compile(&k).unwrap();
    let dst = dev.create_buffer(ScalarKind::I32, 1);
    dev.launch(&prep, &[Arg::Buf(dst)], &[1], ExecMode::Fast).unwrap();
    assert_eq!(dev.read(dst), BufData::from(vec![7i32]));
}

#[test]
fn determinism_across_runs() {
    // Identical launches produce identical buffers (parallel execution must
    // not introduce nondeterminism).
    let k = Kernel {
        name: "mix".into(),
        params: vec![
            KernelParam::global_buf("a", ScalarKind::F32),
            KernelParam::global_buf("b", ScalarKind::F32),
        ],
        body: vec![KStmt::Store {
            mem: MemRef::Param(1),
            idx: KExpr::GlobalId(0),
            value: KExpr::load(MemRef::Param(0), KExpr::GlobalId(0)) * KExpr::Lit(Lit::f32(1.5))
                + KExpr::Lit(Lit::f32(0.25)),
        }],
        work_dim: 1,
    };
    let run = || {
        let mut dev = Device::gtx780();
        let prep = dev.compile(&k).unwrap();
        let a = dev.upload(BufData::from((0..1000).map(|i| i as f32 * 0.37).collect::<Vec<_>>()));
        let b = dev.create_buffer(ScalarKind::F32, 1000);
        dev.launch(&prep, &[Arg::Buf(a), Arg::Buf(b)], &[1000], ExecMode::Fast).unwrap();
        dev.read(b)
    };
    assert_eq!(run(), run());
}

#[test]
fn event_log_records_launches() {
    let mut dev = Device::gtx780();
    let prep = dev.compile(&copy_kernel(ScalarKind::F32)).unwrap();
    let src = dev.upload(BufData::from(vec![0.0f32; 8]));
    let dst = dev.create_buffer(ScalarKind::F32, 8);
    for _ in 0..3 {
        dev.launch(
            &prep,
            &[Arg::Buf(src), Arg::Buf(dst), Arg::Val(Value::I32(8))],
            &[8],
            ExecMode::Fast,
        )
        .unwrap();
    }
    assert_eq!(dev.events().len(), 3);
    assert!(dev.events().iter().all(|e| e.name == "copy"));
    dev.clear_events();
    assert!(dev.events().is_empty());
}

//! Schema tests for the telemetry layer: every [`Event`] variant must
//! round-trip through serde losslessly, the JSONL sink must emit one
//! well-formed JSON object per line, and the Chrome sink's output must pass
//! its own validator with the expected structural facts.

use vgpu::telemetry::sink;
use vgpu::telemetry::{Event, KernelMetrics, MetricSnapshot, Registry, TrackId, TransferDir};

/// One instance of every `Event` variant, with non-default field values so a
/// lossy round-trip cannot pass by accident.
fn all_variants() -> Vec<Event> {
    vec![
        Event::TrackName { track: TrackId(3), name: "GTX780 #1 kernels".into() },
        Event::Span { track: TrackId(0), name: "LiftSim::step".into(), ts_us: 12.5, dur_us: 800.0 },
        Event::Kernel {
            track: TrackId(3),
            name: "fimm_boundary_lift".into(),
            engine: "tape".into(),
            ts_us: 100.0,
            dur_us: 42.0,
            metrics: KernelMetrics {
                work_items: 4096,
                loads_global: 7,
                stores_global: 1,
                loads_constant: 2,
                bytes_loaded: 28_672,
                bytes_stored: 4096,
                flops: 65_536,
                transaction_bytes: Some(131_072),
                modeled_us: Some(3.25),
            },
        },
        Event::ModeledKernel {
            track: TrackId(4),
            name: "volume_handling_lift".into(),
            ts_us: 0.0,
            dur_us: 3.25,
        },
        Event::Transfer {
            track: TrackId(5),
            dir: TransferDir::ToGpu,
            name: "ToGPU(buf2)".into(),
            bytes: 16_384,
            ts_us: 5.0,
            dur_us: 1.0,
        },
        Event::Alloc { name: "buf2".into(), bytes: 16_384, ts_us: 4.0 },
        Event::Free { name: "buf2".into(), bytes: 16_384, ts_us: 900.0 },
        Event::TapeFallback {
            kernel: "mixed_kinds".into(),
            reason: "buffer param `x` declared F32 but bound as F64".into(),
            ts_us: 50.0,
        },
        Event::VectorFallback {
            kernel: "grouped_scan".into(),
            reason: "kernel uses workgroup features (barriers/local memory)".into(),
            ts_us: 55.0,
        },
        Event::WarpDivergence {
            kernel: "fimm_boundary_lift".into(),
            reason: "active lanes disagreed at a branch".into(),
            ts_us: 60.0,
        },
    ]
}

#[test]
fn every_variant_roundtrips() {
    for ev in all_variants() {
        let json = serde_json::to_string(&ev).expect("serialises");
        let back: Event = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, ev, "lossy round-trip via {json}");
        // The externally-visible discriminant is the `ev` tag.
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(doc.get("ev").and_then(|v| v.as_str()).is_some(), "missing `ev` tag in {json}");
    }
}

#[test]
fn jsonl_is_one_well_formed_object_per_line() {
    let events = all_variants();
    let reg = Registry::new();
    reg.counter("vgpu.launches.tape").add(5);
    reg.gauge("vgpu.mem.allocated_bytes").add(1024);
    reg.histogram("xfer.bytes").record(4096);
    let metrics: Vec<MetricSnapshot> = reg.snapshot();

    let mut buf: Vec<u8> = Vec::new();
    sink::write_jsonl(&mut buf, &events, &metrics).unwrap();
    let text = String::from_utf8(buf).expect("utf-8");
    assert!(text.ends_with('\n'), "stream must end with a newline");

    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len() + metrics.len());
    for (i, line) in lines.iter().enumerate() {
        let doc: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {i} not JSON: {e}"));
        assert!(doc.is_object(), "line {i} is not an object");
        assert!(doc.get("ev").is_some(), "line {i} missing `ev` tag");
    }
    // Event lines deserialise back to the original events.
    for (line, ev) in lines.iter().zip(&events) {
        let back: Event = serde_json::from_str(line).unwrap();
        assert_eq!(back, *ev);
    }
    // Metric lines carry the snapshot under `metric`.
    assert!(lines[events.len()..].iter().all(|l| l.contains("\"metric\"")));
}

#[test]
fn chrome_sink_passes_its_validator() {
    let events = all_variants();
    let reg = Registry::new();
    reg.counter("vgpu.tape.fallbacks").add(1);
    let metrics = reg.snapshot();

    let mut buf: Vec<u8> = Vec::new();
    sink::write_chrome(&mut buf, &events, &metrics).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let stats = sink::validate_chrome(&text).expect("emitted trace validates");

    // Every variant + 1 counter sample.
    assert_eq!(stats.events, events.len() + 1);
    assert!(stats.track_names.contains("GTX780 #1 kernels"));
    for name in ["LiftSim::step", "fimm_boundary_lift", "volume_handling_lift", "ToGPU(buf2)"] {
        assert!(stats.span_names.contains(name), "missing span `{name}`");
    }
    assert_eq!(stats.kernel_flops.get("fimm_boundary_lift"), Some(&65_536));
    assert_eq!(stats.kernel_txn_bytes.get("fimm_boundary_lift"), Some(&131_072));
    assert_eq!(stats.transfer_bytes.get("ToGPU"), Some(&16_384));
    // The modeled span must not double-count into the kernel totals.
    assert!(!stats.kernel_flops.contains_key("volume_handling_lift"));
}

#[test]
fn validator_rejects_malformed_traces() {
    assert!(sink::validate_chrome("not json").is_err());
    assert!(sink::validate_chrome("{}").is_err());
    assert!(sink::validate_chrome(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
    assert!(sink::validate_chrome(
        r#"{"traceEvents": [{"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}]}"#
    )
    .is_err());
    // Negative duration is invalid.
    assert!(sink::validate_chrome(
        r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 0}]}"#
    )
    .is_err());
}

#[test]
fn summaries_aggregate_per_kernel_and_direction() {
    let mut events = all_variants();
    // A second launch of the same kernel and a ToHost transfer.
    events.push(Event::Kernel {
        track: TrackId(3),
        name: "fimm_boundary_lift".into(),
        engine: "tree".into(),
        ts_us: 200.0,
        dur_us: 40.0,
        metrics: KernelMetrics { flops: 4, work_items: 10, ..Default::default() },
    });
    events.push(Event::Transfer {
        track: TrackId(5),
        dir: TransferDir::ToHost,
        name: "ToHost(buf0)".into(),
        bytes: 64,
        ts_us: 300.0,
        dur_us: 1.0,
    });

    let kernels = sink::kernel_summaries(&events);
    let fimm = kernels.iter().find(|k| k.name == "fimm_boundary_lift").expect("fimm summary");
    assert_eq!(fimm.launches, 2);
    assert_eq!(fimm.flops, 65_540);
    assert_eq!(fimm.work_items, 4106);
    assert_eq!(fimm.transaction_bytes, 131_072);
    let fallback = kernels.iter().find(|k| k.name == "mixed_kinds").expect("fallback summary");
    assert_eq!(fallback.launches, 0);
    assert_eq!(fallback.tape_fallbacks, 1);

    let transfers = sink::transfer_summaries(&events);
    assert_eq!(transfers[0].dir, TransferDir::ToGpu);
    assert_eq!((transfers[0].transfers, transfers[0].bytes), (1, 16_384));
    assert_eq!(transfers[1].dir, TransferDir::ToHost);
    assert_eq!((transfers[1].transfers, transfers[1].bytes), (1, 64));
}

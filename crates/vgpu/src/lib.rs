//! # vgpu — a virtual OpenCL-like GPU substrate
//!
//! The paper evaluates on four physical GPUs driven through OpenCL. This
//! crate substitutes that testbed (per DESIGN.md §3): it executes the same
//! generated kernel ASTs with a rayon-parallel NDRange interpreter, counts
//! memory traffic with a warp-accurate 128-byte-transaction model, and
//! converts counts into modeled kernel times through per-device roofline
//! profiles built from the paper's Table III.
//!
//! * [`device::Device`] — buffers + in-order queue with profiling events;
//! * [`exec`] — kernel preparation and the interpreter (counters, traces,
//!   race detection);
//! * [`bytecode`] — flat register-based tapes that kernels compile to. The
//!   default engine executes the tape *warp-vectorized*: each op is decoded
//!   once per 32-lane warp and applied across a structure-of-arrays register
//!   file under an active-lane mask, with divergent branches running both
//!   sides under complementary masks (`VGPU_ENGINE=vector`). The scalar
//!   tape (`VGPU_ENGINE=tape`) and the tree-walker reference oracle
//!   (`VGPU_ENGINE=tree`) remain selectable, and `VGPU_ENGINE=diff` runs
//!   all of them and asserts bit-identical results (see [`exec::Engine`]);
//! * [`profile::DeviceProfile`] — the four Table III GPUs;
//! * [`perfmodel`] — transactions/flops → modeled seconds;
//! * [`host_exec`] — runs LIFT host programs (`ToGPU`/`OclKernel`/`ToHost`).
//!
//! ## Example: run a generated kernel
//!
//! ```
//! use lift::prelude::*;
//! use lift::{funs, ir};
//! use vgpu::{Arg, BufData, Device, ExecMode};
//!
//! // generate a kernel: out[i] = a[i] + 2
//! let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
//! let prog = ir::map_glb(a.to_expr(), "x", |x| {
//!     ir::call(&funs::add(), vec![x, ir::lit(Lit::real(2.0))])
//! });
//! let lowered = lower_kernel("add2", &[a], &prog, ScalarKind::F32).unwrap();
//!
//! // run it on the virtual GPU
//! let mut dev = Device::gtx780();
//! let prep = dev.compile(&lowered.kernel).unwrap();
//! let input = dev.upload(BufData::from(vec![1.0f32, 2.0, 3.0]));
//! let out = dev.create_buffer(ScalarKind::F32, 3);
//! // kernel params: a, N (size), out
//! dev.launch(
//!     &prep,
//!     &[Arg::Buf(input), Arg::Val(Value::I32(3)), Arg::Buf(out)],
//!     &[3],
//!     ExecMode::Fast,
//! )
//! .unwrap();
//! assert_eq!(dev.read(out), BufData::from(vec![3.0f32, 4.0, 5.0]));
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod buffer;
pub mod bytecode;
pub(crate) mod compile;
pub mod device;
pub mod exec;
pub mod host_exec;
pub mod perfmodel;
pub mod profile;
pub mod profiler;
pub mod sanitize;
pub mod shard;
pub mod telemetry;
pub mod verify;

pub use artifact::{compile_cached, verify_cached};
pub use buffer::BufData;
pub use device::{Arg, BufId, Device, KernelEvent};
pub use exec::{
    register_launch_contract, Backend, Counters, Engine, ExecError, ExecMode, LaunchPlan,
    LaunchStats, Prepared,
};
pub use host_exec::{run_host_program, run_host_program_on, HostEnv, HostRun, TransferTotals};
pub use perfmodel::{modeled_sharded_step_s, modeled_time_s, updates_per_second, ModelInput};
pub use profile::DeviceProfile;
pub use profiler::{KernelProfileSnapshot, ProfileMode, ResidualReport};
pub use sanitize::{FaultKind, Finding, HaloProvenance};
pub use shard::{device_count_from_env, halo_exchange, HaloTotals, SlabPartition};
pub use telemetry::{TraceMode, TrackId};
pub use verify::{verify_prepared, TapeFinding, TapePass, TapeReport};

//! The roofline performance model: counted traffic → modeled kernel time.
//!
//! The paper measures kernel times on four physical GPUs (Table III). This
//! substrate replaces those measurements with a first-order model:
//!
//! ```text
//! t = max( DRAM bytes / (BW · η) ,  flops / peak(precision) ) + launch overhead
//! ```
//!
//! where *DRAM bytes* is the 128-byte-transaction traffic counted by the
//! warp-accurate tracer in [`crate::exec`] (so coalescing quality — the
//! paper's box-vs-dome and room-size effects — is captured in the traffic
//! itself, not in fudge factors), and *peak(precision)* folds each chip's
//! DP:SP ratio. Absolute times are first-order estimates; the evaluation
//! compares *shapes* (who wins, by what factor), per DESIGN.md §3.

use crate::profile::DeviceProfile;

/// Inputs to the model.
#[derive(Debug, Clone, Copy)]
pub struct ModelInput {
    /// DRAM bytes moved (post-coalescing transactions).
    pub transaction_bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// True when the kernel's float traffic is double precision.
    pub double_precision: bool,
}

/// Modeled kernel time in seconds.
pub fn modeled_time_s(input: &ModelInput, profile: &DeviceProfile) -> f64 {
    let bw = profile.mem_bw_gbs * 1e9 * profile.bw_efficiency;
    let mem_s = input.transaction_bytes as f64 / bw;
    let peak = profile.gflops(input.double_precision) * 1e9;
    let comp_s = input.flops as f64 / peak;
    mem_s.max(comp_s) + profile.launch_overhead_us * 1e-6
}

/// Throughput in the paper's metric: million updates (elements) per second.
pub fn updates_per_second(updates: u64, time_s: f64) -> f64 {
    updates as f64 / time_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_uses_bandwidth() {
        let p = DeviceProfile::gtx780();
        let t = modeled_time_s(
            &ModelInput { transaction_bytes: 288_000_000, flops: 1, double_precision: false },
            &p,
        );
        // 288 MB at 288 GB/s × 0.75 ≈ 1.33 ms (plus overhead)
        assert!((t - (288e6 / (288e9 * 0.75) + 6e-6)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn compute_bound_kernel_uses_flops() {
        let p = DeviceProfile::gtx780();
        let sp = modeled_time_s(
            &ModelInput { transaction_bytes: 1, flops: 3_977_000_000, double_precision: false },
            &p,
        );
        let dp = modeled_time_s(
            &ModelInput { transaction_bytes: 1, flops: 3_977_000_000, double_precision: true },
            &p,
        );
        assert!(dp > sp * 20.0, "Kepler consumer DP should be ~24x slower: sp={sp}, dp={dp}");
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let p = DeviceProfile::gtx780();
        let t = modeled_time_s(
            &ModelInput { transaction_bytes: 128, flops: 10, double_precision: false },
            &p,
        );
        assert!(t >= 6e-6);
    }
}

//! The roofline performance model: counted traffic → modeled kernel time.
//!
//! The paper measures kernel times on four physical GPUs (Table III). This
//! substrate replaces those measurements with a first-order model:
//!
//! ```text
//! t = max( DRAM bytes / (BW · η) ,  flops / peak(precision) ) + launch overhead
//! ```
//!
//! where *DRAM bytes* is the 128-byte-transaction traffic counted by the
//! warp-accurate tracer in [`crate::exec`] (so coalescing quality — the
//! paper's box-vs-dome and room-size effects — is captured in the traffic
//! itself, not in fudge factors), and *peak(precision)* folds each chip's
//! DP:SP ratio. Absolute times are first-order estimates; the evaluation
//! compares *shapes* (who wins, by what factor), per DESIGN.md §3.

use crate::profile::DeviceProfile;

/// Inputs to the model.
#[derive(Debug, Clone, Copy)]
pub struct ModelInput {
    /// DRAM bytes moved (post-coalescing transactions).
    pub transaction_bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// True when the kernel's float traffic is double precision.
    pub double_precision: bool,
    /// Halo-exchange bytes crossing the inter-device link before this
    /// work can run (0 for unsharded launches). Charged serially at
    /// [`DeviceProfile::link_bw_gbs`] — neighbour exchanges cannot
    /// overlap the stencil that consumes them.
    pub halo_bytes: u64,
}

impl ModelInput {
    /// A single-device input (no communication term).
    pub fn local(transaction_bytes: u64, flops: u64, double_precision: bool) -> Self {
        ModelInput { transaction_bytes, flops, double_precision, halo_bytes: 0 }
    }
}

/// Modeled kernel time in seconds.
pub fn modeled_time_s(input: &ModelInput, profile: &DeviceProfile) -> f64 {
    let bw = profile.mem_bw_gbs * 1e9 * profile.bw_efficiency;
    let mem_s = input.transaction_bytes as f64 / bw;
    let peak = profile.gflops(input.double_precision) * 1e9;
    let comp_s = input.flops as f64 / peak;
    let comm_s = input.halo_bytes as f64 / (profile.link_bw_gbs * 1e9);
    mem_s.max(comp_s) + comm_s + profile.launch_overhead_us * 1e-6
}

/// Modeled time per step for a Z-slab sharded run: every device computes
/// its slab concurrently (the slowest slab gates the step) after the halo
/// exchange crossed the link. `per_device` holds each slab's local
/// compute/traffic input; `halo_bytes` is the total bytes exchanged per
/// step across all seams.
pub fn modeled_sharded_step_s(
    per_device: &[ModelInput],
    halo_bytes: u64,
    profile: &DeviceProfile,
) -> f64 {
    let slowest = per_device
        .iter()
        .map(|i| modeled_time_s(&ModelInput { halo_bytes: 0, ..*i }, profile))
        .fold(0.0, f64::max);
    let comm_s = halo_bytes as f64 / (profile.link_bw_gbs * 1e9);
    slowest + comm_s
}

/// Throughput in the paper's metric: million updates (elements) per second.
pub fn updates_per_second(updates: u64, time_s: f64) -> f64 {
    updates as f64 / time_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_uses_bandwidth() {
        let p = DeviceProfile::gtx780();
        let t = modeled_time_s(
            &ModelInput {
                transaction_bytes: 288_000_000,
                flops: 1,
                double_precision: false,
                halo_bytes: 0,
            },
            &p,
        );
        // 288 MB at 288 GB/s × 0.75 ≈ 1.33 ms (plus overhead)
        assert!((t - (288e6 / (288e9 * 0.75) + 6e-6)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn compute_bound_kernel_uses_flops() {
        let p = DeviceProfile::gtx780();
        let sp = modeled_time_s(
            &ModelInput {
                transaction_bytes: 1,
                flops: 3_977_000_000,
                double_precision: false,
                halo_bytes: 0,
            },
            &p,
        );
        let dp = modeled_time_s(
            &ModelInput {
                transaction_bytes: 1,
                flops: 3_977_000_000,
                double_precision: true,
                halo_bytes: 0,
            },
            &p,
        );
        assert!(dp > sp * 20.0, "Kepler consumer DP should be ~24x slower: sp={sp}, dp={dp}");
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let p = DeviceProfile::gtx780();
        let t = modeled_time_s(
            &ModelInput {
                transaction_bytes: 128,
                flops: 10,
                double_precision: false,
                halo_bytes: 0,
            },
            &p,
        );
        assert!(t >= 6e-6);
    }
}

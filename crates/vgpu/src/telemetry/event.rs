//! The telemetry event schema.
//!
//! Every observable fact the runtime emits is one [`Event`] value. The schema
//! is the contract between the instrumented code and the sinks in
//! [`crate::telemetry::sink`]: events serialise losslessly to JSON (the JSONL
//! stream is one event per line) and deserialise back, which the schema tests
//! exercise variant by variant.
//!
//! Timestamps are microseconds since the process telemetry epoch
//! ([`crate::telemetry::now_us`]). Spans on device *modeled* tracks instead
//! use the device's cumulative modeled-time clock, so a Perfetto view of the
//! modeled track reads as "GPU time the roofline model charged".

use serde::{Deserialize, Serialize};

/// Identifies one timeline ("track" in Perfetto, "thread" in the Chrome
/// trace-event format) that spans are drawn on. Track 0 is the host
/// wall-clock track; devices allocate further tracks via
/// [`crate::telemetry::new_track`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrackId(pub u32);

/// Direction of a host⇄device or device⇄device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TransferDir {
    /// Host → device (`enqueueWriteBuffer`, the paper's `ToGPU`).
    ToGpu,
    /// Device → host (`enqueueReadBuffer`, the paper's `ToHost`).
    ToHost,
    /// Device → device halo-exchange copy between slab neighbours
    /// (domain sharding, DESIGN.md §12). Accounted once, on the
    /// destination device, under `vgpu.halo.*` — never under
    /// `vgpu.xfer.*`.
    DevToDev,
    /// Host → device upload of a buffer already uploaded to another
    /// device of the shard set (β/coefficient tables every slab needs).
    /// Accounted under `vgpu.halo.replicate.*` so per-run `vgpu.xfer.*`
    /// totals stay comparable with the single-device leg.
    Replicate,
}

impl TransferDir {
    /// Display label, matching the paper's host-primitive names.
    pub fn label(self) -> &'static str {
        match self {
            TransferDir::ToGpu => "ToGPU",
            TransferDir::ToHost => "ToHost",
            TransferDir::DevToDev => "DevToDev",
            TransferDir::Replicate => "Replicate",
        }
    }
}

/// Per-launch metric payload attached to every [`Event::Kernel`]: the
/// interpreter's operation counters plus the transaction model's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Work-items executed (scaled to the full NDRange when sampled).
    pub work_items: u64,
    /// Global-memory loads executed.
    pub loads_global: u64,
    /// Global-memory stores executed.
    pub stores_global: u64,
    /// `__constant`-space loads (cached/broadcast).
    pub loads_constant: u64,
    /// Bytes requested by global loads (pre-coalescing).
    pub bytes_loaded: u64,
    /// Bytes written by global stores.
    pub bytes_stored: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Coalesced DRAM traffic (128-byte transactions); `None` in fast mode.
    pub transaction_bytes: Option<u64>,
    /// Modeled device time in microseconds (model mode only).
    pub modeled_us: Option<f64>,
}

/// One telemetry event. See the module docs for the timestamp convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "ev", rename_all = "snake_case")]
pub enum Event {
    /// Names a track. Emitted once per track, before any span on it.
    TrackName {
        /// The track being named.
        track: TrackId,
        /// Human-readable track name.
        name: String,
    },
    /// A generic host-side span (host-program commands, compile phases,
    /// simulation steps).
    Span {
        /// Track the span is drawn on.
        track: TrackId,
        /// Span name.
        name: String,
        /// Start, µs since the telemetry epoch.
        ts_us: f64,
        /// Duration in µs.
        dur_us: f64,
    },
    /// One kernel launch, with its full metric payload.
    Kernel {
        /// Track the launch span is drawn on (the device's kernel track).
        track: TrackId,
        /// Kernel name.
        name: String,
        /// Backend that executed the launch (`"vector"`, `"tape"`, or
        /// `"tree"`).
        engine: String,
        /// Start of the interpreter run, µs since the epoch.
        ts_us: f64,
        /// Host-side interpreter wall time in µs.
        dur_us: f64,
        /// Counters and model outputs for this launch.
        metrics: KernelMetrics,
    },
    /// A span on a device's *modeled-time* track: where the roofline model
    /// places this launch on the virtual GPU's own clock.
    ModeledKernel {
        /// The device's modeled-time track.
        track: TrackId,
        /// Kernel name.
        name: String,
        /// Start on the device's modeled clock, µs.
        ts_us: f64,
        /// Modeled duration, µs.
        dur_us: f64,
    },
    /// A host⇄device buffer transfer.
    Transfer {
        /// The device's transfer track.
        track: TrackId,
        /// Direction.
        dir: TransferDir,
        /// Span name (e.g. `ToGPU(buf3)`).
        name: String,
        /// Bytes moved, counted exactly once per transfer.
        bytes: u64,
        /// Start, µs since the epoch.
        ts_us: f64,
        /// Host wall duration of the copy, µs.
        dur_us: f64,
    },
    /// A device buffer allocation.
    Alloc {
        /// Buffer name (`buf<N>`).
        name: String,
        /// Allocation size in bytes.
        bytes: u64,
        /// Time of allocation, µs since the epoch.
        ts_us: f64,
    },
    /// A device buffer release (emitted when the owning device is dropped).
    Free {
        /// Buffer name (`buf<N>`).
        name: String,
        /// Released size in bytes.
        bytes: u64,
        /// Time of release, µs since the epoch.
        ts_us: f64,
    },
    /// The tape compiler could not run a launch and the tree-walker executed
    /// it instead — the structured record that makes VM coverage auditable.
    /// Deduplicated per (kernel, reason); the `vgpu.tape.fallbacks` counter
    /// stays truthful per launch.
    TapeFallback {
        /// Kernel name.
        kernel: String,
        /// Why the tape was unusable.
        reason: String,
        /// Time of the launch, µs since the epoch.
        ts_us: f64,
    },
    /// The vector engine did not cover a launch (e.g. a grouped NDRange)
    /// and the scalar tape executed it instead. Deduplicated per
    /// (kernel, reason); `vgpu.vector.fallbacks` counts every launch.
    VectorFallback {
        /// Kernel name.
        kernel: String,
        /// Why the vector engine was unusable.
        reason: String,
        /// Time of the launch, µs since the epoch.
        ts_us: f64,
    },
    /// The compiled superinstruction engine did not cover a launch (the
    /// tape failed structural lowering, or a grouped NDRange) and the
    /// vector engine or scalar tape executed it instead. Deduplicated per
    /// (kernel, reason); `vgpu.compiled.fallbacks` counts every launch.
    CompiledFallback {
        /// Kernel name.
        kernel: String,
        /// Why the compiled engine was unusable.
        reason: String,
        /// Time of the launch, µs since the epoch.
        ts_us: f64,
    },
    /// Warps inside a vector launch diverged (active lanes disagreed at a
    /// branch) and ran the branch sides under divergence masks, reconverging
    /// at the branch's join. Deduplicated per kernel; `vgpu.warp.divergent`
    /// counts every divergent warp.
    WarpDivergence {
        /// Kernel name.
        kernel: String,
        /// What diverged.
        reason: String,
        /// Time of the first divergent launch, µs since the epoch.
        ts_us: f64,
    },
}

impl Event {
    /// The track the event is attributed to, when it has one. Process-wide
    /// records (allocations, fallback/divergence audits) carry no track.
    /// Multi-device harnesses use this to split the shared event buffer by
    /// originating device — the batch service's job-scoped sidecar filter.
    pub fn track(&self) -> Option<TrackId> {
        match self {
            Event::TrackName { track, .. }
            | Event::Span { track, .. }
            | Event::Kernel { track, .. }
            | Event::ModeledKernel { track, .. }
            | Event::Transfer { track, .. } => Some(*track),
            Event::Alloc { .. }
            | Event::Free { .. }
            | Event::TapeFallback { .. }
            | Event::VectorFallback { .. }
            | Event::CompiledFallback { .. }
            | Event::WarpDivergence { .. } => None,
        }
    }

    /// The event's timestamp in µs, when it has one (`TrackName` does not).
    pub fn ts_us(&self) -> Option<f64> {
        match self {
            Event::TrackName { .. } => None,
            Event::Span { ts_us, .. }
            | Event::Kernel { ts_us, .. }
            | Event::ModeledKernel { ts_us, .. }
            | Event::Transfer { ts_us, .. }
            | Event::Alloc { ts_us, .. }
            | Event::Free { ts_us, .. }
            | Event::TapeFallback { ts_us, .. }
            | Event::VectorFallback { ts_us, .. }
            | Event::CompiledFallback { ts_us, .. }
            | Event::WarpDivergence { ts_us, .. } => Some(*ts_us),
        }
    }
}

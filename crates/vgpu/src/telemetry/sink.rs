//! Telemetry sinks: summary tables, JSONL streams, and Chrome
//! trace-event/Perfetto JSON.
//!
//! Sinks are pure functions from an event slice (plus a metric snapshot) to
//! an `io::Write`, so tests can render into memory and the repro binaries
//! into `results/*.trace.json(l)` artifacts. [`validate_chrome`] parses a
//! Chrome trace back and checks the structural invariants the schema tests
//! and the CI smoke job rely on.

use super::event::{Event, TransferDir};
use super::registry::{MetricSnapshot, MetricValue};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};

/// Writes one JSON object per line (JSONL): every event, then every metric
/// snapshot (tagged with `"ev": "metric"` by its own schema).
pub fn write_jsonl<W: Write>(
    mut w: W,
    events: &[Event],
    metrics: &[MetricSnapshot],
) -> io::Result<()> {
    for ev in events {
        serde_json::to_writer(&mut w, ev)?;
        writeln!(w)?;
    }
    for m in metrics {
        serde_json::to_writer(&mut w, &json!({ "ev": "metric", "metric": m }))?;
        writeln!(w)?;
    }
    Ok(())
}

/// Writes a Chrome trace-event JSON document (loadable by Perfetto and
/// `chrome://tracing`): one thread per telemetry track under a single
/// process, complete (`ph: "X"`) events for spans/kernels/transfers, instant
/// events for allocs and tape fallbacks, and one counter sample per
/// registered counter/gauge at the end of the timeline.
pub fn write_chrome<W: Write>(
    mut w: W,
    events: &[Event],
    metrics: &[MetricSnapshot],
) -> io::Result<()> {
    let mut out: Vec<serde_json::Value> = Vec::with_capacity(events.len() + metrics.len() + 1);
    let mut end_ts = 0.0f64;
    for ev in events {
        if let Some(ts) = ev.ts_us() {
            end_ts = end_ts.max(ts);
        }
        out.push(match ev {
            Event::TrackName { track, name } => json!({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": track.0,
                "args": { "name": name },
            }),
            Event::Span { track, name, ts_us, dur_us } => json!({
                "name": name, "cat": "span", "ph": "X", "pid": 1, "tid": track.0,
                "ts": ts_us, "dur": dur_us,
            }),
            Event::Kernel { track, name, engine, ts_us, dur_us, metrics } => json!({
                "name": name, "cat": "kernel", "ph": "X", "pid": 1, "tid": track.0,
                "ts": ts_us, "dur": dur_us,
                "args": {
                    "engine": engine,
                    "work_items": metrics.work_items,
                    "loads_global": metrics.loads_global,
                    "stores_global": metrics.stores_global,
                    "loads_constant": metrics.loads_constant,
                    "bytes_loaded": metrics.bytes_loaded,
                    "bytes_stored": metrics.bytes_stored,
                    "flops": metrics.flops,
                    "transaction_bytes": metrics.transaction_bytes,
                    "modeled_us": metrics.modeled_us,
                },
            }),
            Event::ModeledKernel { track, name, ts_us, dur_us } => json!({
                "name": name, "cat": "modeled", "ph": "X", "pid": 1, "tid": track.0,
                "ts": ts_us, "dur": dur_us,
            }),
            Event::Transfer { track, dir, name, bytes, ts_us, dur_us } => json!({
                "name": name, "cat": "transfer", "ph": "X", "pid": 1, "tid": track.0,
                "ts": ts_us, "dur": dur_us,
                "args": { "dir": dir.label(), "bytes": bytes },
            }),
            Event::Alloc { name, bytes, ts_us } => json!({
                "name": format!("alloc {name}"), "cat": "memory", "ph": "i", "s": "p",
                "pid": 1, "tid": 0, "ts": ts_us, "args": { "bytes": bytes },
            }),
            Event::Free { name, bytes, ts_us } => json!({
                "name": format!("free {name}"), "cat": "memory", "ph": "i", "s": "p",
                "pid": 1, "tid": 0, "ts": ts_us, "args": { "bytes": bytes },
            }),
            Event::TapeFallback { kernel, reason, ts_us } => json!({
                "name": format!("tape fallback: {kernel}"), "cat": "fallback", "ph": "i",
                "s": "p", "pid": 1, "tid": 0, "ts": ts_us, "args": { "reason": reason },
            }),
            Event::VectorFallback { kernel, reason, ts_us } => json!({
                "name": format!("vector fallback: {kernel}"), "cat": "fallback", "ph": "i",
                "s": "p", "pid": 1, "tid": 0, "ts": ts_us, "args": { "reason": reason },
            }),
            Event::CompiledFallback { kernel, reason, ts_us } => json!({
                "name": format!("compiled fallback: {kernel}"), "cat": "fallback", "ph": "i",
                "s": "p", "pid": 1, "tid": 0, "ts": ts_us, "args": { "reason": reason },
            }),
            Event::WarpDivergence { kernel, reason, ts_us } => json!({
                "name": format!("warp divergence: {kernel}"), "cat": "fallback", "ph": "i",
                "s": "p", "pid": 1, "tid": 0, "ts": ts_us, "args": { "reason": reason },
            }),
        });
    }
    for m in metrics {
        let value = match &m.value {
            MetricValue::Counter { value } => json!(value),
            MetricValue::Gauge { value } => json!(value),
            MetricValue::Histogram { .. } => continue, // no Chrome counter form
        };
        out.push(json!({
            "name": m.name, "cat": "metric", "ph": "C", "pid": 1, "tid": 0,
            "ts": end_ts, "args": { "value": value },
        }));
    }
    serde_json::to_writer(&mut w, &json!({ "traceEvents": out, "displayTimeUnit": "ms" }))?;
    Ok(())
}

/// Structural facts extracted from a Chrome trace by [`validate_chrome`] —
/// what the golden tests and the CI smoke job assert against.
#[derive(Debug, Default)]
pub struct ChromeStats {
    /// Total trace events.
    pub events: usize,
    /// Names of every complete (`ph: "X"`) span.
    pub span_names: BTreeSet<String>,
    /// Track names declared by `thread_name` metadata.
    pub track_names: BTreeSet<String>,
    /// Summed `flops` per kernel span name.
    pub kernel_flops: BTreeMap<String, u64>,
    /// Summed `transaction_bytes` per kernel span name.
    pub kernel_txn_bytes: BTreeMap<String, u64>,
    /// Total transfer bytes by direction label (`ToGPU`/`ToHost`).
    pub transfer_bytes: BTreeMap<String, u64>,
}

fn field<'a>(e: &'a serde_json::Value, k: &str, i: usize) -> Result<&'a serde_json::Value, String> {
    e.get(k).ok_or_else(|| format!("traceEvents[{i}] missing `{k}`: {e}"))
}

/// Parses Chrome trace JSON text and validates the invariants every emitted
/// trace must satisfy: a `traceEvents` array of objects, each with a string
/// `name` and a known `ph`, timed events carrying finite non-negative
/// `ts`/`dur` and a `pid`/`tid`. Returns the extracted [`ChromeStats`].
pub fn validate_chrome(text: &str) -> Result<ChromeStats, String> {
    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let arr =
        doc.get("traceEvents").and_then(|v| v.as_array()).ok_or("missing `traceEvents` array")?;
    let mut stats = ChromeStats { events: arr.len(), ..Default::default() };
    for (i, e) in arr.iter().enumerate() {
        if !e.is_object() {
            return Err(format!("traceEvents[{i}] is not an object"));
        }
        let name = field(e, "name", i)?
            .as_str()
            .ok_or_else(|| format!("traceEvents[{i}] `name` is not a string"))?;
        let ph = field(e, "ph", i)?
            .as_str()
            .ok_or_else(|| format!("traceEvents[{i}] `ph` is not a string"))?;
        match ph {
            "M" => {
                if name == "thread_name" {
                    if let Some(n) = e.pointer("/args/name").and_then(|v| v.as_str()) {
                        stats.track_names.insert(n.to_string());
                    }
                }
            }
            "X" | "i" | "C" => {
                let ts = field(e, "ts", i)?
                    .as_f64()
                    .ok_or_else(|| format!("traceEvents[{i}] `ts` is not a number"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("traceEvents[{i}] has invalid ts {ts}"));
                }
                field(e, "pid", i)?;
                field(e, "tid", i)?;
                if ph == "X" {
                    let dur = field(e, "dur", i)?
                        .as_f64()
                        .ok_or_else(|| format!("traceEvents[{i}] `dur` is not a number"))?;
                    if !dur.is_finite() || dur < 0.0 {
                        return Err(format!("traceEvents[{i}] has invalid dur {dur}"));
                    }
                    stats.span_names.insert(name.to_string());
                    let cat = e.get("cat").and_then(|v| v.as_str()).unwrap_or("");
                    if cat == "kernel" {
                        let flops = e.pointer("/args/flops").and_then(|v| v.as_u64()).unwrap_or(0);
                        *stats.kernel_flops.entry(name.to_string()).or_insert(0) += flops;
                        if let Some(tb) =
                            e.pointer("/args/transaction_bytes").and_then(|v| v.as_u64())
                        {
                            *stats.kernel_txn_bytes.entry(name.to_string()).or_insert(0) += tb;
                        }
                    } else if cat == "transfer" {
                        let dir = e
                            .pointer("/args/dir")
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_string();
                        let bytes = e.pointer("/args/bytes").and_then(|v| v.as_u64()).unwrap_or(0);
                        *stats.transfer_bytes.entry(dir).or_insert(0) += bytes;
                    }
                }
            }
            other => return Err(format!("traceEvents[{i}] has unknown ph `{other}`")),
        }
    }
    Ok(stats)
}

/// Per-kernel aggregate over an event stream — the summary the repro reports
/// embed next to their result rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// Number of launches.
    pub launches: u64,
    /// Total work-items executed.
    pub work_items: u64,
    /// Total flops.
    pub flops: u64,
    /// Total bytes requested by global loads.
    pub bytes_loaded: u64,
    /// Total bytes written by global stores.
    pub bytes_stored: u64,
    /// Total coalesced DRAM traffic (model-mode launches only).
    pub transaction_bytes: u64,
    /// Total modeled device time in milliseconds (model-mode launches only).
    pub modeled_ms: f64,
    /// Launches that fell back from the tape to the tree-walker.
    pub tape_fallbacks: u64,
}

/// Aggregates [`Event::Kernel`] (and fallback) events per kernel name,
/// sorted by name for determinism.
pub fn kernel_summaries(events: &[Event]) -> Vec<KernelSummary> {
    fn entry<'e, 'm>(
        map: &'m mut BTreeMap<&'e str, KernelSummary>,
        name: &'e str,
    ) -> &'m mut KernelSummary {
        map.entry(name).or_insert_with(|| KernelSummary {
            name: String::new(),
            launches: 0,
            work_items: 0,
            flops: 0,
            bytes_loaded: 0,
            bytes_stored: 0,
            transaction_bytes: 0,
            modeled_ms: 0.0,
            tape_fallbacks: 0,
        })
    }
    let mut map: BTreeMap<&str, KernelSummary> = BTreeMap::new();
    for ev in events {
        match ev {
            Event::Kernel { name, metrics, .. } => {
                let s = entry(&mut map, name.as_str());
                s.launches += 1;
                s.work_items += metrics.work_items;
                s.flops += metrics.flops;
                s.bytes_loaded += metrics.bytes_loaded;
                s.bytes_stored += metrics.bytes_stored;
                s.transaction_bytes += metrics.transaction_bytes.unwrap_or(0);
                s.modeled_ms += metrics.modeled_us.unwrap_or(0.0) * 1e-3;
            }
            Event::TapeFallback { kernel, .. } => {
                entry(&mut map, kernel.as_str()).tape_fallbacks += 1;
            }
            _ => {}
        }
    }
    map.into_iter()
        .map(|(name, mut s)| {
            s.name = name.to_string();
            s
        })
        .collect()
}

/// Total transfers by direction over an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferSummary {
    /// Direction.
    pub dir: TransferDir,
    /// Number of transfers.
    pub transfers: u64,
    /// Total bytes moved.
    pub bytes: u64,
}

/// Aggregates [`Event::Transfer`] events by direction.
pub fn transfer_summaries(events: &[Event]) -> Vec<TransferSummary> {
    let mut to_gpu = TransferSummary { dir: TransferDir::ToGpu, transfers: 0, bytes: 0 };
    let mut to_host = TransferSummary { dir: TransferDir::ToHost, transfers: 0, bytes: 0 };
    let mut halo = TransferSummary { dir: TransferDir::DevToDev, transfers: 0, bytes: 0 };
    let mut replica = TransferSummary { dir: TransferDir::Replicate, transfers: 0, bytes: 0 };
    for ev in events {
        if let Event::Transfer { dir, bytes, .. } = ev {
            let s = match dir {
                TransferDir::ToGpu => &mut to_gpu,
                TransferDir::ToHost => &mut to_host,
                TransferDir::DevToDev => &mut halo,
                TransferDir::Replicate => &mut replica,
            };
            s.transfers += 1;
            s.bytes += bytes;
        }
    }
    vec![to_gpu, to_host, halo, replica]
}

/// Renders the human-readable end-of-run summary: per-kernel totals,
/// transfer totals, fallbacks, and the metric registry dump.
pub fn render_summary(events: &[Event], metrics: &[MetricSnapshot]) -> String {
    let mut out = String::from("== vgpu telemetry summary ==\n");
    let kernels = kernel_summaries(events);
    if !kernels.is_empty() {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>14} {:>14} {:>10} {:>9}\n",
            "kernel", "launches", "work-items", "flops", "txn bytes", "model ms", "fallback"
        ));
        for k in &kernels {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>14} {:>14} {:>10.3} {:>9}\n",
                k.name,
                k.launches,
                k.work_items,
                k.flops,
                k.transaction_bytes,
                k.modeled_ms,
                k.tape_fallbacks
            ));
        }
    }
    for t in transfer_summaries(events) {
        if t.transfers > 0 {
            out.push_str(&format!(
                "{:<28} {:>8} transfers {:>14} bytes\n",
                t.dir.label(),
                t.transfers,
                t.bytes
            ));
        }
    }
    if !metrics.is_empty() {
        out.push_str("-- metrics --\n");
        for m in metrics {
            match &m.value {
                MetricValue::Counter { value } => {
                    out.push_str(&format!("{:<40} {value}\n", m.name));
                }
                MetricValue::Gauge { value } => {
                    out.push_str(&format!("{:<40} {value}\n", m.name));
                }
                MetricValue::Histogram { count, sum, p50, p95, p99, .. } => {
                    out.push_str(&format!("{:<40} n={count} sum={sum}", m.name));
                    if let (Some(p50), Some(p95), Some(p99)) = (p50, p95, p99) {
                        out.push_str(&format!(" p50={p50:.0} p95={p95:.0} p99={p99:.0}"));
                    }
                    out.push('\n');
                }
            }
        }
    }
    out
}

//! Structured telemetry for the vgpu runtime: span tracing, per-launch
//! metric events, and a process-wide counter registry, with pluggable sinks
//! (summary table, JSONL, Chrome trace-event/Perfetto JSON).
//!
//! # Architecture
//!
//! - [`event`] defines the schema: every observable fact is one [`Event`].
//! - [`registry`] holds typed [`Counter`]s/[`Gauge`]s/[`Histogram`]s that
//!   instrumented code registers by name; [`registry()`] is the process-wide
//!   instance.
//! - [`sink`] renders an event stream + metric snapshot to a summary table,
//!   a JSONL stream, or Chrome trace JSON, and can validate a Chrome trace
//!   back ([`sink::validate_chrome`]).
//!
//! # Enabling
//!
//! Tracing is off unless `VGPU_TRACE` selects a sink: `off`, `summary`,
//! `json` (JSONL), or `chrome` (Perfetto-loadable). The mode is sampled from
//! the environment once, lazily; tests and harnesses may override it with
//! [`set_mode`]. When tracing is off, every instrumentation site reduces to
//! one relaxed atomic load and a branch — no allocation, no locking. A small
//! set of audit counters (tape fallbacks, launch counts, transfer bytes) is
//! maintained unconditionally; counter updates are single relaxed atomics.
//!
//! # Tracks and clocks
//!
//! Spans are drawn on *tracks*. Track 0 ([`HOST_TRACK`]) is the host
//! wall-clock timeline; timestamps are µs since the process telemetry epoch
//! ([`now_us`]). Each [`crate::Device`] allocates a kernel track, a transfer
//! track, and a *modeled-time* track whose spans are placed on the device's
//! cumulative roofline-model clock instead of wall time, so a Perfetto view
//! shows both what the host did and what the modeled GPU was charged.

pub mod event;
pub mod registry;
pub mod sink;

pub use event::{Event, KernelMetrics, TrackId, TransferDir};
pub use registry::{Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Sink selection, parsed from `VGPU_TRACE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceMode {
    /// Telemetry disabled (the near-zero-cost path).
    Off = 0,
    /// Human-readable end-of-run summary table.
    Summary = 1,
    /// Machine-readable JSONL event stream.
    Json = 2,
    /// Chrome trace-event / Perfetto-loadable JSON.
    Chrome = 3,
}

impl TraceMode {
    /// Parses a `VGPU_TRACE` value. Unknown values disable tracing.
    pub fn parse(s: &str) -> TraceMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "table" => TraceMode::Summary,
            "json" | "jsonl" => TraceMode::Json,
            "chrome" | "perfetto" | "trace" => TraceMode::Chrome,
            _ => TraceMode::Off,
        }
    }

    /// Reads the mode from the `VGPU_TRACE` environment variable.
    pub fn from_env() -> TraceMode {
        match std::env::var("VGPU_TRACE") {
            Ok(v) => TraceMode::parse(&v),
            Err(_) => TraceMode::Off,
        }
    }
}

/// 0xFF = not yet initialised from the environment.
static MODE: AtomicU8 = AtomicU8::new(0xFF);

fn decode(v: u8) -> TraceMode {
    match v {
        1 => TraceMode::Summary,
        2 => TraceMode::Json,
        3 => TraceMode::Chrome,
        _ => TraceMode::Off,
    }
}

/// The active trace mode (env-initialised on first call).
pub fn mode() -> TraceMode {
    let v = MODE.load(Ordering::Relaxed);
    if v != 0xFF {
        return decode(v);
    }
    let m = TraceMode::from_env();
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// True when events should be recorded. This is the hot-path gate: one
/// relaxed load and a compare.
#[inline]
pub fn enabled() -> bool {
    let v = MODE.load(Ordering::Relaxed);
    if v == 0xFF {
        return mode() != TraceMode::Off;
    }
    v != TraceMode::Off as u8
}

/// Overrides the trace mode (tests and harnesses).
pub fn set_mode(m: TraceMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process telemetry epoch (first telemetry use).
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Appends an event to the process buffer. Callers gate on [`enabled`];
/// recording while disabled is permitted (tests) but not free.
pub fn record(ev: Event) {
    EVENTS.lock().push(ev);
}

/// Drains and returns all buffered events.
pub fn take_events() -> Vec<Event> {
    std::mem::take(&mut *EVENTS.lock())
}

/// Clones the buffered events without draining them.
pub fn events_snapshot() -> Vec<Event> {
    EVENTS.lock().clone()
}

/// The host wall-clock track.
pub const HOST_TRACK: TrackId = TrackId(0);

/// Track 0 is host; device tracks start at 1.
static NEXT_TRACK: AtomicU32 = AtomicU32::new(1);

/// Allocates a fresh track and records its name.
pub fn new_track(name: &str) -> TrackId {
    let t = TrackId(NEXT_TRACK.fetch_add(1, Ordering::Relaxed));
    record(Event::TrackName { track: t, name: name.to_string() });
    t
}

/// Records the host track's name once per process (idempotent).
pub fn ensure_host_track() {
    use std::sync::atomic::AtomicBool;
    static NAMED: AtomicBool = AtomicBool::new(false);
    if !NAMED.swap(true, Ordering::Relaxed) {
        record(Event::TrackName { track: HOST_TRACK, name: "host".to_string() });
    }
}

/// Live span handle returned by [`span`]; records an [`Event::Span`] with
/// the elapsed wall time when dropped.
pub struct SpanGuard {
    track: TrackId,
    name: String,
    start_us: f64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = now_us();
        record(Event::Span {
            track: self.track,
            name: std::mem::take(&mut self.name),
            ts_us: self.start_us,
            dur_us: (end - self.start_us).max(0.0),
        });
    }
}

/// Opens a span on `track` if tracing is enabled. The span closes (and is
/// recorded) when the returned guard drops.
pub fn span(track: TrackId, name: &str) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    ensure_host_track();
    Some(SpanGuard { track, name: name.to_string(), start_us: now_us() })
}

/// Like [`span`] but the name is built lazily, so the disabled path never
/// formats or allocates.
pub fn span_with(track: TrackId, name: impl FnOnce() -> String) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    ensure_host_track();
    Some(SpanGuard { track, name: name(), start_us: now_us() })
}

static REGISTRY: Registry = Registry::new();

/// The process-wide metric registry.
pub fn registry() -> &'static Registry {
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    // Telemetry state is process-global; serialise tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_modes() {
        assert_eq!(TraceMode::parse("off"), TraceMode::Off);
        assert_eq!(TraceMode::parse("SUMMARY"), TraceMode::Summary);
        assert_eq!(TraceMode::parse("jsonl"), TraceMode::Json);
        assert_eq!(TraceMode::parse("perfetto"), TraceMode::Chrome);
        assert_eq!(TraceMode::parse("nonsense"), TraceMode::Off);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let _g = TEST_LOCK.lock();
        let prev = mode();
        set_mode(TraceMode::Json);
        let before = events_snapshot().len();
        {
            let _s = span(HOST_TRACK, "test-span");
        }
        let evs = events_snapshot();
        set_mode(prev);
        assert!(
            evs[before..]
                .iter()
                .any(|e| matches!(e, Event::Span { name, .. } if name == "test-span")),
            "span event not recorded: {:?}",
            &evs[before..]
        );
    }

    #[test]
    fn disabled_span_is_none() {
        let _g = TEST_LOCK.lock();
        let prev = mode();
        set_mode(TraceMode::Off);
        assert!(span(HOST_TRACK, "x").is_none());
        assert!(span_with(HOST_TRACK, || unreachable!("must not format")).is_none());
        set_mode(prev);
    }
}

//! The process-wide metric registry: typed counters, gauges and histograms.
//!
//! Instrumented code registers a metric once by name and holds a cheap
//! cloneable handle; updates are single relaxed atomic operations, safe to
//! call from rayon workers. Snapshots are deterministic (name-ordered) and
//! serialisable, so they can be embedded in repro reports and dumped by the
//! sinks.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. bytes currently allocated).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets (bucket `i` counts values whose
/// highest set bit is `i - 1`; bucket 0 counts zeros).
const BUCKETS: usize = 65;

struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A power-of-two bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        let b = (64 - v.leading_zeros()) as usize;
        self.0.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q ∈ [0, 1]` from the power-of-two
    /// buckets; `None` when the histogram is empty. See
    /// [`quantile_from_buckets`] for the estimation rule.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        quantile_from_buckets(&counts, q)
    }
}

/// Quantile estimation over power-of-two bucket counts (`counts[i]` holds
/// samples in `[2^(i-1), 2^i)`; `counts[0]` holds zeros).
///
/// The estimate locates the 1-based rank `ceil(q × total)` (clamped to at
/// least 1) and linearly interpolates at *mid-rank* within the containing
/// bucket's range: a bucket holding one sample reports its midpoint, not an
/// edge. Two exactnesses hold by construction: bucket 0 yields exactly
/// `0.0`, and the top bucket's upper edge saturates at `u64::MAX` (its
/// nominal bound `2^64` is unrepresentable). Returns `None` for an empty
/// histogram.
pub fn quantile_from_buckets(counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c >= target {
            if i == 0 {
                return Some(0.0);
            }
            let lo = (1u128 << (i - 1)) as f64;
            let hi = if i >= 64 { u64::MAX as f64 } else { (1u64 << i) as f64 };
            let frac = ((target - cum) as f64 - 0.5) / c as f64;
            return Some(lo + frac * (hi - lo));
        }
        cum += c;
    }
    unreachable!("rank {target} beyond cumulative count {total}")
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistInner>),
}

/// The value part of a metric snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MetricValue {
    /// Counter value.
    Counter {
        /// Accumulated count.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Instantaneous value.
        value: i64,
    },
    /// Histogram summary.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Non-empty buckets as `(lower_bound, count)` pairs.
        buckets: Vec<(u64, u64)>,
        /// Estimated median (see [`quantile_from_buckets`]); `None` when
        /// empty.
        p50: Option<f64>,
        /// Estimated 95th percentile.
        p95: Option<f64>,
        /// Estimated 99th percentile.
        p99: Option<f64>,
    },
}

/// One metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    #[serde(flatten)]
    pub value: MetricValue,
}

/// The registry. Use [`crate::telemetry::registry`] for the process-wide
/// instance.
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry { slots: Mutex::new(BTreeMap::new()) }
    }

    /// Returns the counter registered under `name`, registering it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Slot::Counter(c) => Counter(c.clone()),
            _ => panic!("metric `{name}` is already registered with a different type"),
        }
    }

    /// Returns the gauge registered under `name`, registering it on first
    /// use. Panics on a type mismatch like [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))))
        {
            Slot::Gauge(g) => Gauge(g.clone()),
            _ => panic!("metric `{name}` is already registered with a different type"),
        }
    }

    /// Returns the histogram registered under `name`, registering it on
    /// first use. Panics on a type mismatch like [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.slots.lock();
        match slots.entry(name.to_string()).or_insert_with(|| {
            Slot::Histogram(Arc::new(HistInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
            }))
        }) {
            Slot::Histogram(h) => Histogram(h.clone()),
            _ => panic!("metric `{name}` is already registered with a different type"),
        }
    }

    /// Deterministic (name-ordered) snapshot of every registered metric.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let slots = self.slots.lock();
        slots
            .iter()
            .map(|(name, slot)| MetricSnapshot {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter { value: c.load(Ordering::Relaxed) },
                    Slot::Gauge(g) => MetricValue::Gauge { value: g.load(Ordering::Relaxed) },
                    Slot::Histogram(h) => {
                        let mut buckets = Vec::new();
                        let mut counts = [0u64; BUCKETS];
                        for (i, b) in h.buckets.iter().enumerate() {
                            let c = b.load(Ordering::Relaxed);
                            counts[i] = c;
                            if c > 0 {
                                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                                buckets.push((lo, c));
                            }
                        }
                        MetricValue::Histogram {
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                            buckets,
                            p50: quantile_from_buckets(&counts, 0.50),
                            p95: quantile_from_buckets(&counts, 0.95),
                            p99: quantile_from_buckets(&counts, 0.99),
                        }
                    }
                },
            })
            .collect()
    }

    /// Removes every registered metric (tests only — existing handles keep
    /// their storage but detach from the registry).
    pub fn reset(&self) {
        self.slots.lock().clear();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c").get(), 5);
        let g = r.gauge("g");
        g.add(10);
        g.add(-3);
        assert_eq!(r.gauge("g").get(), 7);
        let h = r.histogram("h");
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "c");
        assert_eq!(snap[0].value, MetricValue::Counter { value: 5 });
        match &snap[2].value {
            MetricValue::Histogram { count: 3, sum: 1001, buckets, p50, .. } => {
                // 0 → bucket 0; 1 → [1,2); 1000 → [512,1024)
                assert_eq!(buckets, &vec![(0, 1), (1, 1), (512, 1)]);
                // Median rank 2 of 3 lands in the [1,2) bucket.
                let p50 = p50.expect("non-empty histogram has a median");
                assert!((1.0..2.0).contains(&p50), "p50 = {p50}");
            }
            other => panic!("unexpected snapshot {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn quantile_exact_single_bucket() {
        // One sample at 1 → bucket [1,2); every quantile is its mid-rank
        // interpolation, the bucket midpoint.
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(1);
        assert_eq!(h.quantile(0.5), Some(1.5));
        assert_eq!(h.quantile(0.99), Some(1.5));
        assert_eq!(h.quantile(0.0), Some(1.5)); // rank clamps to 1
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // Two samples in [4,8): p50 hits rank 1 (quarter point), p99 rank 2
        // (three-quarter point).
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(4);
        h.record(7);
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(0.99), Some(7.0));
    }

    #[test]
    fn quantile_zero_bucket_is_exact() {
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(0);
        h.record(0);
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), Some(0.0));
        // Rank 3 of 3 falls in the [2^20, 2^21) bucket.
        let p99 = h.quantile(0.99).unwrap();
        assert!(((1u64 << 20) as f64..(1u64 << 21) as f64).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let r = Registry::new();
        let h = r.histogram("h");
        assert_eq!(h.quantile(0.5), None);
        match &r.snapshot()[0].value {
            MetricValue::Histogram { count: 0, p50: None, p95: None, p99: None, .. } => {}
            other => panic!("unexpected snapshot {other:?}"),
        }
    }

    #[test]
    fn quantile_top_bucket_saturates() {
        // u64::MAX lands in the top bucket, whose nominal upper bound 2^64
        // is unrepresentable — the estimate must stay finite and within
        // [2^63, u64::MAX].
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(u64::MAX);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50.is_finite());
        assert!(p50 >= (1u64 << 63) as f64 && p50 <= u64::MAX as f64, "p50 = {p50}");
    }

    #[test]
    fn reset_detaches_live_histogram_handles() {
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(10);
        r.reset();
        // The live handle keeps its (detached) storage usable...
        h.record(20);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(12.0)); // rank 1 of 2 in [8,16)
                                                 // ...but the registry starts fresh: re-registering the name yields
                                                 // new zeroed storage, and snapshots carry no stale state.
        assert!(r.snapshot().is_empty());
        let h2 = r.histogram("h");
        assert_eq!(h2.count(), 0);
        assert_eq!(h2.quantile(0.5), None);
        h2.record(1);
        // The detached handle and the re-registered one stay independent.
        assert_eq!(h.count(), 2);
        assert_eq!(h2.count(), 1);
    }
}

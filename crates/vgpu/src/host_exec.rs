//! Executes LIFT host programs (§IV-A) on the virtual device.
//!
//! A [`lift::host::HostProgram`] is the compiled form of the paper's host
//! primitives (`ToGPU`, `OclKernel`, `WriteTo`, `ToHost`). This module plays
//! the OpenCL runtime: it allocates buffers, performs the transfers, and
//! launches each kernel in order, returning the host-side outputs.

use crate::buffer::BufData;
use crate::device::{Arg, BufId, Device};
use crate::exec::{ExecError, ExecMode};
use crate::telemetry::{self, HOST_TRACK};
use lift::arith::ArithExpr;
use lift::host::{BufRange, HostCmd, HostProgram, LaunchArg};
use lift::prelude::{ScalarKind, Value};
use lift::types::Type;
use std::collections::HashMap;

/// Inputs to a host-program run.
#[derive(Default)]
pub struct HostEnv {
    /// Host arrays by program input name.
    pub arrays: HashMap<String, BufData>,
    /// Host scalars by program input name.
    pub scalars: HashMap<String, Value>,
    /// Bindings for symbolic sizes (`N`, `Nx`, `numB`, …).
    pub sizes: HashMap<String, i64>,
}

impl HostEnv {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host array.
    pub fn array(mut self, name: &str, data: impl Into<BufData>) -> Self {
        self.arrays.insert(name.into(), data.into());
        self
    }

    /// Adds a host scalar.
    pub fn scalar(mut self, name: &str, v: Value) -> Self {
        self.scalars.insert(name.into(), v);
        self
    }

    /// Binds a symbolic size.
    pub fn size(mut self, name: &str, v: i64) -> Self {
        self.sizes.insert(name.into(), v);
        self
    }
}

/// Host⇄device traffic of one host-program run, counted exactly once per
/// transfer command (`ToGPU` at `CopyIn`, `ToHost` at `CopyOut`). The
/// inspection snapshot in [`HostRun::device_slots`] is *not* included — it
/// is taken with [`Device::peek`], which performs no transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferTotals {
    /// Bytes moved host → device.
    pub to_gpu_bytes: u64,
    /// Number of host → device transfers.
    pub to_gpu_transfers: u64,
    /// Bytes moved device → host.
    pub to_host_bytes: u64,
    /// Number of device → host transfers.
    pub to_host_transfers: u64,
    /// Bytes moved device → device ([`HostCmd::DevCopy`] halo exchanges).
    /// Counted separately from the host-transfer totals so a sharded run's
    /// `to_gpu`/`to_host` bytes stay comparable with the unsharded run.
    pub halo_bytes: u64,
    /// Number of device → device copies.
    pub halo_copies: u64,
    /// Bytes of replicated uploads (coefficient tables re-sent to extra
    /// devices; the first upload counts under `to_gpu_bytes`).
    pub replicate_bytes: u64,
    /// Number of replicated uploads.
    pub replicate_transfers: u64,
}

/// Result of a host-program run.
pub struct HostRun {
    /// Host outputs produced by `ToHost`, by name.
    pub outputs: HashMap<String, BufData>,
    /// Name of the program's final result within `outputs` (or a device slot
    /// if the program never copied back).
    pub result: String,
    /// Final state of every device slot (for inspection/in-place results).
    pub device_slots: HashMap<String, BufData>,
    /// Transfer traffic of this run, exactly once per transfer command.
    pub transfers: TransferTotals,
}

fn eval_len(ty: &Type, sizes: &HashMap<String, i64>) -> Result<usize, ExecError> {
    let count: ArithExpr = ty.scalar_count();
    count
        .eval(&|n| sizes.get(n).copied())
        .map(|v| v as usize)
        .map_err(|e| ExecError(format!("cannot size buffer of type {ty}: {e}")))
}

fn eval_arith(e: &ArithExpr, sizes: &HashMap<String, i64>, what: &str) -> Result<usize, ExecError> {
    e.eval(&|n| sizes.get(n).copied())
        .map(|v| v as usize)
        .map_err(|e| ExecError(format!("cannot evaluate {what}: {e}")))
}

fn eval_range(r: &BufRange, sizes: &HashMap<String, i64>) -> Result<(usize, usize), ExecError> {
    Ok((eval_arith(&r.off, sizes, "range offset")?, eval_arith(&r.len, sizes, "range length")?))
}

/// Runs a host program. `real` must match the precision the program was
/// compiled with; `mode` selects fast or modeled kernel execution.
/// Single-device shorthand for [`run_host_program_on`].
pub fn run_host_program(
    prog: &HostProgram,
    env: &HostEnv,
    device: &mut Device,
    real: ScalarKind,
    mode: ExecMode,
) -> Result<HostRun, ExecError> {
    run_host_program_on(prog, env, std::slice::from_mut(device), real, mode)
}

/// Runs a host program across a set of devices: every command executes on
/// the device its `device` placement names (slot names are scoped per
/// device), and [`HostCmd::DevCopy`] commands move halo regions between
/// devices with `vgpu.halo.*` accounting on the destination. A program
/// emitted by the single-device generator places everything on device 0,
/// so `run_host_program_on(p, e, &mut [dev], …)` is exactly the old
/// single-device semantics.
pub fn run_host_program_on(
    prog: &HostProgram,
    env: &HostEnv,
    devices: &mut [Device],
    real: ScalarKind,
    mode: ExecMode,
) -> Result<HostRun, ExecError> {
    let mut slots: HashMap<(usize, String), BufId> = HashMap::new();
    let mut outputs: HashMap<String, BufData> = HashMap::new();
    let mut transfers = TransferTotals::default();
    let mut prepared = Vec::with_capacity(prog.kernels.len());
    let ndev = devices.len();
    let check_dev = move |d: usize| {
        if d < ndev {
            Ok(d)
        } else {
            Err(ExecError(format!("command placed on device {d} but only {ndev} exist")))
        }
    };
    {
        // Kernel artifacts are device-independent; compile once and launch
        // everywhere (the same sharing the artifact cache provides).
        let _s = telemetry::span(HOST_TRACK, "compile_kernels");
        for lk in &prog.kernels {
            prepared.push(devices[0].compile(&lk.kernel)?);
        }
    }
    for cmd in &prog.cmds {
        match cmd {
            HostCmd::CopyIn { host, dev, ty, device, src, dst_off, replica } => {
                let d = check_dev(*device)?;
                let _s = telemetry::span_with(HOST_TRACK, || format!("ToGPU({dev})"));
                let data = env
                    .arrays
                    .get(host)
                    .ok_or_else(|| ExecError(format!("missing host input array `{host}`")))?;
                let data = match src {
                    None => {
                        let want = eval_len(&ty.resolve_real(real), &env.sizes)?;
                        if data.len() != want {
                            return Err(ExecError(format!(
                                "host array `{host}` has {} elements, expected {want}",
                                data.len()
                            )));
                        }
                        data.clone()
                    }
                    Some(r) => {
                        let (off, len) = eval_range(r, &env.sizes)?;
                        if off + len > data.len() {
                            return Err(ExecError(format!(
                                "range {off}+{len} outside host array `{host}` of {} elements",
                                data.len()
                            )));
                        }
                        data.slice(off, len)
                    }
                };
                let bytes = (data.len() * data.elem_bytes()) as u64;
                if *replica {
                    transfers.replicate_bytes += bytes;
                    transfers.replicate_transfers += 1;
                } else {
                    transfers.to_gpu_bytes += bytes;
                    transfers.to_gpu_transfers += 1;
                }
                match dst_off {
                    None => {
                        let id = if *replica {
                            devices[d].upload_replica(data)
                        } else {
                            devices[d].upload(data)
                        };
                        slots.insert((d, dev.clone()), id);
                    }
                    Some(off) => {
                        let off = eval_arith(off, &env.sizes, "device offset")?;
                        let id = *slots.get(&(d, dev.clone())).ok_or_else(|| {
                            ExecError(format!("region CopyIn into unallocated slot `{dev}`"))
                        })?;
                        if *replica {
                            return Err(ExecError(format!(
                                "replica CopyIn into region of `{dev}` is not supported"
                            )));
                        }
                        devices[d].write_region(id, off, data);
                    }
                }
            }
            HostCmd::Alloc { dev, ty, device } => {
                let d = check_dev(*device)?;
                let _s = telemetry::span_with(HOST_TRACK, || format!("Alloc({dev})"));
                let rty = ty.resolve_real(real);
                let kind = rty
                    .scalar_kind()
                    .ok_or_else(|| ExecError(format!("cannot allocate non-uniform type {ty}")))?;
                let len = eval_len(&rty, &env.sizes)?;
                let id = devices[d].create_buffer(kind, len);
                slots.insert((d, dev.clone()), id);
            }
            HostCmd::Launch { kernel, args, global_size, device } => {
                let d = check_dev(*device)?;
                let _s = telemetry::span_with(HOST_TRACK, || {
                    format!("OclKernel({})", prepared[*kernel].name)
                });
                let mut largs = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        LaunchArg::Buf(slot) => {
                            let id = slots.get(&(d, slot.clone())).ok_or_else(|| {
                                ExecError(format!("unknown device slot `{slot}` on device {d}"))
                            })?;
                            largs.push(Arg::Buf(*id));
                        }
                        LaunchArg::ScalarInput(name) => {
                            let v = env.scalars.get(name).ok_or_else(|| {
                                ExecError(format!("missing host scalar `{name}`"))
                            })?;
                            largs.push(Arg::Val(*v));
                        }
                        LaunchArg::SizeVar(name) => {
                            let v = env
                                .sizes
                                .get(name)
                                .ok_or_else(|| ExecError(format!("unbound size `{name}`")))?;
                            largs.push(Arg::Val(Value::I32(*v as i32)));
                        }
                    }
                }
                let global: Result<Vec<usize>, ExecError> =
                    global_size.iter().map(|g| eval_arith(g, &env.sizes, "global size")).collect();
                devices[d].launch(&prepared[*kernel], &largs, &global?, mode)?;
            }
            HostCmd::CopyOut { dev, host, device, src, dst_off, host_len, .. } => {
                let d = check_dev(*device)?;
                let _s = telemetry::span_with(HOST_TRACK, || format!("ToHost({host})"));
                let id = *slots
                    .get(&(d, dev.clone()))
                    .ok_or_else(|| ExecError(format!("unknown device slot `{dev}`")))?;
                let data = match src {
                    None => devices[d].read(id),
                    Some(r) => {
                        let (off, len) = eval_range(r, &env.sizes)?;
                        devices[d].read_region(id, off, len)
                    }
                };
                transfers.to_host_bytes += (data.len() * data.elem_bytes()) as u64;
                transfers.to_host_transfers += 1;
                match dst_off {
                    None => {
                        outputs.insert(host.clone(), data);
                    }
                    Some(off) => {
                        let off = eval_arith(off, &env.sizes, "host offset")?;
                        let total = eval_arith(
                            host_len.as_ref().ok_or_else(|| {
                                ExecError(format!(
                                    "assembling CopyOut into `{host}` needs host_len"
                                ))
                            })?,
                            &env.sizes,
                            "host output length",
                        )?;
                        let out = outputs
                            .entry(host.clone())
                            .or_insert_with(|| BufData::zeros(data.kind(), total));
                        out.copy_from(off, &data);
                    }
                }
            }
            HostCmd::DevCopy { src_device, src, src_off, dst_device, dst, dst_off, len } => {
                let sd = check_dev(*src_device)?;
                let dd = check_dev(*dst_device)?;
                let _s = telemetry::span_with(HOST_TRACK, || format!("DevCopy({src}->{dst})"));
                let so = eval_arith(src_off, &env.sizes, "DevCopy source offset")?;
                let do_ = eval_arith(dst_off, &env.sizes, "DevCopy destination offset")?;
                let n = eval_arith(len, &env.sizes, "DevCopy length")?;
                let sid = *slots.get(&(sd, src.clone())).ok_or_else(|| {
                    ExecError(format!("unknown DevCopy source slot `{src}` on device {sd}"))
                })?;
                let did = *slots.get(&(dd, dst.clone())).ok_or_else(|| {
                    ExecError(format!("unknown DevCopy destination slot `{dst}` on device {dd}"))
                })?;
                let data = devices[sd].peek_region(sid, so, n);
                transfers.halo_bytes += (data.len() * data.elem_bytes()) as u64;
                transfers.halo_copies += 1;
                let prov = devices[sd].halo_provenance(sid);
                devices[dd].write_halo_region_tagged(did, do_, data, prov);
            }
        }
    }
    // Inspection snapshot, not a modeled transfer: use `peek` so it does not
    // inflate the `ToHost` accounting. Slot names are qualified with their
    // device index when more than one device is in play.
    let device_slots = slots
        .iter()
        .map(|((d, name), id)| {
            let key = if devices.len() > 1 { format!("{name}@{d}") } else { name.clone() };
            (key, devices[*d].peek(*id))
        })
        .collect();
    Ok(HostRun { outputs, result: prog.result.clone(), device_slots, transfers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::funs;
    use lift::host::{self, KernelDef};
    use lift::ir::{self, ParamDef};
    use lift::prelude::*;

    #[test]
    fn two_kernel_pipeline_with_in_place_second_stage() {
        // k1: out[i] = a[i] + 2    (allocated output)
        // k2: for idx in indices: out[idx] = out[idx] * 3  (in-place)
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let k1body = ir::map_glb(a.to_expr(), "x", |x| {
            ir::call(&funs::add(), vec![x, ir::lit(Lit::real(2.0))])
        });
        let k1 = KernelDef::new("add2k", vec![a], k1body);

        let idxs = ParamDef::typed("indices", Type::array(Type::i32(), "numB"));
        let data = ParamDef::typed("data", Type::array(Type::real(), "N"));
        let d2 = data.clone();
        let k2body = ir::map_glb(idxs.to_expr(), "idx", move |idx| {
            let v = ir::call(
                &funs::mult(),
                vec![ir::at(d2.to_expr(), idx.clone()), ir::lit(Lit::real(3.0))],
            );
            ir::write_to(ir::at(d2.to_expr(), idx), v)
        });
        let k2 = KernelDef::new("scale3", vec![idxs, data], k2body);

        let a_h = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let idx_h = ParamDef::typed("idx_h", Type::array(Type::i32(), "numB"));
        let prog_expr = host::host_let(
            "mid",
            host::ocl_kernel(&k1, vec![host::to_gpu(host::input(&a_h))]),
            |mid| {
                host::to_host(host::host_write_to(
                    mid.clone(),
                    host::ocl_kernel(&k2, vec![host::to_gpu(host::input(&idx_h)), mid]),
                ))
            },
        );
        let prog = host::compile_host(&prog_expr, ScalarKind::F32).unwrap();

        let env = HostEnv::new()
            .array("a_h", vec![1.0f32, 2.0, 3.0, 4.0])
            .array("idx_h", vec![1i32, 3])
            .size("N", 4)
            .size("numB", 2);
        let mut dev = Device::gtx780();
        dev.set_race_check(true);
        let run = run_host_program(&prog, &env, &mut dev, ScalarKind::F32, ExecMode::Fast).unwrap();
        let out = run.outputs.get(&run.result).expect("result on host");
        // a+2 = [3,4,5,6]; ×3 at idx 1 and 3 → [3,12,5,18]
        assert_eq!(*out, BufData::from(vec![3.0f32, 12.0, 5.0, 18.0]));
        // Exactly-once transfer accounting: two ToGPU copies (a_h: 4×f32,
        // idx_h: 2×i32) and one ToHost copy (4×f32). The device_slots
        // inspection snapshot must not count.
        assert_eq!(
            run.transfers,
            TransferTotals {
                to_gpu_bytes: 4 * 4 + 2 * 4,
                to_gpu_transfers: 2,
                to_host_bytes: 4 * 4,
                to_host_transfers: 1,
                ..TransferTotals::default()
            }
        );
    }

    #[test]
    fn transfer_counters_match_run_totals() {
        // The registry counters are process-global (shared across tests), so
        // assert on the *delta* across one run.
        let reg = telemetry::registry();
        let before_gpu = reg.counter("vgpu.xfer.to_gpu.bytes").get();
        let before_host = reg.counter("vgpu.xfer.to_host.bytes").get();

        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let body = ir::map_glb(a.to_expr(), "x", |x| x);
        let k = KernelDef::new("idk2", vec![a], body);
        let a_h = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog_expr = host::to_host(host::ocl_kernel(&k, vec![host::to_gpu(host::input(&a_h))]));
        let prog = host::compile_host(&prog_expr, ScalarKind::F32).unwrap();
        let env = HostEnv::new().array("a_h", vec![0.0f32; 8]).size("N", 8);
        let mut dev = Device::gtx780();
        let run = run_host_program(&prog, &env, &mut dev, ScalarKind::F32, ExecMode::Fast).unwrap();

        assert_eq!(run.transfers.to_gpu_bytes, 32);
        assert_eq!(run.transfers.to_host_bytes, 32);
        // The Device-layer counters moved by at least this run's traffic
        // (other tests may run concurrently, so ≥, not ==).
        assert!(reg.counter("vgpu.xfer.to_gpu.bytes").get() >= before_gpu + 32);
        assert!(reg.counter("vgpu.xfer.to_host.bytes").get() >= before_host + 32);
    }

    #[test]
    fn missing_size_binding_is_reported() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let body = ir::map_glb(a.to_expr(), "x", |x| x);
        let k = KernelDef::new("idk", vec![a], body);
        let a_h = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog_expr = host::to_host(host::ocl_kernel(&k, vec![host::to_gpu(host::input(&a_h))]));
        let prog = host::compile_host(&prog_expr, ScalarKind::F32).unwrap();
        let env = HostEnv::new().array("a_h", vec![0.0f32; 4]);
        let mut dev = Device::gtx780();
        let r = run_host_program(&prog, &env, &mut dev, ScalarKind::F32, ExecMode::Fast);
        assert!(r.is_err());
    }
}

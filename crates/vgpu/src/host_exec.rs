//! Executes LIFT host programs (§IV-A) on the virtual device.
//!
//! A [`lift::host::HostProgram`] is the compiled form of the paper's host
//! primitives (`ToGPU`, `OclKernel`, `WriteTo`, `ToHost`). This module plays
//! the OpenCL runtime: it allocates buffers, performs the transfers, and
//! launches each kernel in order, returning the host-side outputs.

use crate::buffer::BufData;
use crate::device::{Arg, BufId, Device};
use crate::exec::{ExecError, ExecMode};
use lift::arith::ArithExpr;
use lift::host::{HostCmd, HostProgram, LaunchArg};
use lift::prelude::{ScalarKind, Value};
use lift::types::Type;
use std::collections::HashMap;

/// Inputs to a host-program run.
#[derive(Default)]
pub struct HostEnv {
    /// Host arrays by program input name.
    pub arrays: HashMap<String, BufData>,
    /// Host scalars by program input name.
    pub scalars: HashMap<String, Value>,
    /// Bindings for symbolic sizes (`N`, `Nx`, `numB`, …).
    pub sizes: HashMap<String, i64>,
}

impl HostEnv {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host array.
    pub fn array(mut self, name: &str, data: impl Into<BufData>) -> Self {
        self.arrays.insert(name.into(), data.into());
        self
    }

    /// Adds a host scalar.
    pub fn scalar(mut self, name: &str, v: Value) -> Self {
        self.scalars.insert(name.into(), v);
        self
    }

    /// Binds a symbolic size.
    pub fn size(mut self, name: &str, v: i64) -> Self {
        self.sizes.insert(name.into(), v);
        self
    }
}

/// Result of a host-program run.
pub struct HostRun {
    /// Host outputs produced by `ToHost`, by name.
    pub outputs: HashMap<String, BufData>,
    /// Name of the program's final result within `outputs` (or a device slot
    /// if the program never copied back).
    pub result: String,
    /// Final state of every device slot (for inspection/in-place results).
    pub device_slots: HashMap<String, BufData>,
}

fn eval_len(ty: &Type, sizes: &HashMap<String, i64>) -> Result<usize, ExecError> {
    let count: ArithExpr = ty.scalar_count();
    count
        .eval(&|n| sizes.get(n).copied())
        .map(|v| v as usize)
        .map_err(|e| ExecError(format!("cannot size buffer of type {ty}: {e}")))
}

/// Runs a host program. `real` must match the precision the program was
/// compiled with; `mode` selects fast or modeled kernel execution.
pub fn run_host_program(
    prog: &HostProgram,
    env: &HostEnv,
    device: &mut Device,
    real: ScalarKind,
    mode: ExecMode,
) -> Result<HostRun, ExecError> {
    let mut slots: HashMap<String, BufId> = HashMap::new();
    let mut outputs: HashMap<String, BufData> = HashMap::new();
    let mut prepared = Vec::with_capacity(prog.kernels.len());
    for lk in &prog.kernels {
        prepared.push(device.compile(&lk.kernel)?);
    }
    for cmd in &prog.cmds {
        match cmd {
            HostCmd::CopyIn { host, dev, ty } => {
                let data = env
                    .arrays
                    .get(host)
                    .ok_or_else(|| ExecError(format!("missing host input array `{host}`")))?;
                let want = eval_len(&ty.resolve_real(real), &env.sizes)?;
                if data.len() != want {
                    return Err(ExecError(format!(
                        "host array `{host}` has {} elements, expected {want}",
                        data.len()
                    )));
                }
                let id = device.upload(data.clone());
                slots.insert(dev.clone(), id);
            }
            HostCmd::Alloc { dev, ty } => {
                let rty = ty.resolve_real(real);
                let kind = rty
                    .scalar_kind()
                    .ok_or_else(|| ExecError(format!("cannot allocate non-uniform type {ty}")))?;
                let len = eval_len(&rty, &env.sizes)?;
                let id = device.create_buffer(kind, len);
                slots.insert(dev.clone(), id);
            }
            HostCmd::Launch { kernel, args, global_size } => {
                let mut largs = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        LaunchArg::Buf(slot) => {
                            let id = slots.get(slot).ok_or_else(|| {
                                ExecError(format!("unknown device slot `{slot}`"))
                            })?;
                            largs.push(Arg::Buf(*id));
                        }
                        LaunchArg::ScalarInput(name) => {
                            let v = env.scalars.get(name).ok_or_else(|| {
                                ExecError(format!("missing host scalar `{name}`"))
                            })?;
                            largs.push(Arg::Val(*v));
                        }
                        LaunchArg::SizeVar(name) => {
                            let v = env
                                .sizes
                                .get(name)
                                .ok_or_else(|| ExecError(format!("unbound size `{name}`")))?;
                            largs.push(Arg::Val(Value::I32(*v as i32)));
                        }
                    }
                }
                let global: Result<Vec<usize>, ExecError> = global_size
                    .iter()
                    .map(|g| {
                        g.eval(&|n| env.sizes.get(n).copied())
                            .map(|v| v as usize)
                            .map_err(|e| ExecError(format!("cannot evaluate global size: {e}")))
                    })
                    .collect();
                device.launch(&prepared[*kernel], &largs, &global?, mode)?;
            }
            HostCmd::CopyOut { dev, host, .. } => {
                let id = slots
                    .get(dev)
                    .ok_or_else(|| ExecError(format!("unknown device slot `{dev}`")))?;
                outputs.insert(host.clone(), device.read(*id));
            }
        }
    }
    let device_slots = slots.iter().map(|(name, id)| (name.clone(), device.read(*id))).collect();
    Ok(HostRun { outputs, result: prog.result.clone(), device_slots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::funs;
    use lift::host::{self, KernelDef};
    use lift::ir::{self, ParamDef};
    use lift::prelude::*;

    #[test]
    fn two_kernel_pipeline_with_in_place_second_stage() {
        // k1: out[i] = a[i] + 2    (allocated output)
        // k2: for idx in indices: out[idx] = out[idx] * 3  (in-place)
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let k1body = ir::map_glb(a.to_expr(), "x", |x| {
            ir::call(&funs::add(), vec![x, ir::lit(Lit::real(2.0))])
        });
        let k1 = KernelDef::new("add2k", vec![a], k1body);

        let idxs = ParamDef::typed("indices", Type::array(Type::i32(), "numB"));
        let data = ParamDef::typed("data", Type::array(Type::real(), "N"));
        let d2 = data.clone();
        let k2body = ir::map_glb(idxs.to_expr(), "idx", move |idx| {
            let v = ir::call(
                &funs::mult(),
                vec![ir::at(d2.to_expr(), idx.clone()), ir::lit(Lit::real(3.0))],
            );
            ir::write_to(ir::at(d2.to_expr(), idx), v)
        });
        let k2 = KernelDef::new("scale3", vec![idxs, data], k2body);

        let a_h = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let idx_h = ParamDef::typed("idx_h", Type::array(Type::i32(), "numB"));
        let prog_expr = host::host_let(
            "mid",
            host::ocl_kernel(&k1, vec![host::to_gpu(host::input(&a_h))]),
            |mid| {
                host::to_host(host::host_write_to(
                    mid.clone(),
                    host::ocl_kernel(&k2, vec![host::to_gpu(host::input(&idx_h)), mid]),
                ))
            },
        );
        let prog = host::compile_host(&prog_expr, ScalarKind::F32).unwrap();

        let env = HostEnv::new()
            .array("a_h", vec![1.0f32, 2.0, 3.0, 4.0])
            .array("idx_h", vec![1i32, 3])
            .size("N", 4)
            .size("numB", 2);
        let mut dev = Device::gtx780();
        dev.set_race_check(true);
        let run = run_host_program(&prog, &env, &mut dev, ScalarKind::F32, ExecMode::Fast).unwrap();
        let out = run.outputs.get(&run.result).expect("result on host");
        // a+2 = [3,4,5,6]; ×3 at idx 1 and 3 → [3,12,5,18]
        assert_eq!(*out, BufData::from(vec![3.0f32, 12.0, 5.0, 18.0]));
    }

    #[test]
    fn missing_size_binding_is_reported() {
        let a = ParamDef::typed("a", Type::array(Type::real(), "N"));
        let body = ir::map_glb(a.to_expr(), "x", |x| x);
        let k = KernelDef::new("idk", vec![a], body);
        let a_h = ParamDef::typed("a_h", Type::array(Type::real(), "N"));
        let prog_expr = host::to_host(host::ocl_kernel(&k, vec![host::to_gpu(host::input(&a_h))]));
        let prog = host::compile_host(&prog_expr, ScalarKind::F32).unwrap();
        let env = HostEnv::new().array("a_h", vec![0.0f32; 4]);
        let mut dev = Device::gtx780();
        let r = run_host_program(&prog, &env, &mut dev, ScalarKind::F32, ExecMode::Fast);
        assert!(r.is_err());
    }
}

//! Opt-in execution profiler: per-kernel and per-opcode time attribution,
//! plus the measured-vs-modeled residual report.
//!
//! The trace layer ([`crate::telemetry`]) records *what happened*; this
//! module answers *where the time went*. `VGPU_PROFILE` selects the depth:
//!
//! | value    | cost                | what is attributed                    |
//! |----------|---------------------|---------------------------------------|
//! | `off`    | one relaxed load    | nothing (default)                     |
//! | `kernel` | one map update per launch | wall/modeled time per (kernel, engine, precision) |
//! | `op`     | two timer reads per tape op | everything above **plus** per-opcode time inside the tape and vector engines |
//!
//! Like the trace mode, the profile mode is sampled from the environment
//! once, lazily, and overridable by tests ([`set_mode`]); when profiling is
//! off every instrumentation site reduces to one relaxed atomic load — the
//! interpreter hot loops carry `PROF` as a const generic next to the
//! structural-validation `BOUNDED` switch, so the unprofiled instantiation
//! is bit-for-bit the unchecked fast path.
//!
//! Attribution is keyed by *(kernel, engine backend, float precision)* —
//! the same axes [`crate::perfmodel::modeled_time_s`] models — so the
//! [`residuals`] report can put measured interpreter time and modeled GPU
//! time side by side per kernel. The two clocks differ by orders of
//! magnitude (host interpretation vs. modeled device), so the report fits
//! one least-squares scale across all kernels and prints each kernel's
//! deviation from that shared fit: a kernel the roofline model *ranks*
//! wrongly shows up as a large residual even though absolute times are
//! incomparable (the repo-wide "compare shapes, not absolutes" rule,
//! DESIGN.md §3).

use crate::bytecode::{fop_name, op_name, NFOPS, NOPCODES};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// Profiling depth, parsed from `VGPU_PROFILE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProfileMode {
    /// Profiling disabled (the near-zero-cost default).
    Off = 0,
    /// Per-(kernel, engine, precision) launch/wall/modeled accumulation.
    Kernel = 1,
    /// [`ProfileMode::Kernel`] plus per-opcode time inside the tape VMs.
    Op = 2,
}

impl ProfileMode {
    /// Parses a `VGPU_PROFILE` value. Unknown values disable profiling.
    pub fn parse(s: &str) -> ProfileMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "kernel" => ProfileMode::Kernel,
            "op" | "ops" | "opcode" => ProfileMode::Op,
            _ => ProfileMode::Off,
        }
    }

    /// Reads the mode from the `VGPU_PROFILE` environment variable.
    pub fn from_env() -> ProfileMode {
        match std::env::var("VGPU_PROFILE") {
            Ok(v) => ProfileMode::parse(&v),
            Err(_) => ProfileMode::Off,
        }
    }

    /// Display label (`"off"` / `"kernel"` / `"op"`).
    pub fn label(self) -> &'static str {
        match self {
            ProfileMode::Off => "off",
            ProfileMode::Kernel => "kernel",
            ProfileMode::Op => "op",
        }
    }
}

/// 0xFF = not yet initialised from the environment.
static MODE: AtomicU8 = AtomicU8::new(0xFF);

fn decode(v: u8) -> ProfileMode {
    match v {
        1 => ProfileMode::Kernel,
        2 => ProfileMode::Op,
        _ => ProfileMode::Off,
    }
}

/// The active profile mode (env-initialised on first call).
pub fn mode() -> ProfileMode {
    let v = MODE.load(Ordering::Relaxed);
    if v != 0xFF {
        return decode(v);
    }
    let m = ProfileMode::from_env();
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// True when launches should be profiled at all. One relaxed load and a
/// compare — the hot-path gate, mirroring [`crate::telemetry::enabled`].
#[inline]
pub fn enabled() -> bool {
    mode() != ProfileMode::Off
}

/// True when the tape interpreters should attribute time per opcode.
#[inline]
pub fn op_enabled() -> bool {
    mode() == ProfileMode::Op
}

/// Overrides the profile mode (tests and harnesses).
pub fn set_mode(m: ProfileMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Number of attribution slots: base opcodes first
/// ([`crate::bytecode::op_index`]), then the compiled engine's
/// superinstructions at `NOPCODES + fop index`.
const NSLOTS: usize = NOPCODES + NFOPS;

/// Per-opcode execution tally for one launch (or one interpreter chunk):
/// dispatch counts and attributed nanoseconds, indexed by
/// [`crate::bytecode::op_index`] (base tape ops) or `NOPCODES +` the fused
/// superinstruction index (compiled engine). Cheap to allocate per rayon
/// chunk and to merge per launch — two fixed `u64` arrays, no heap.
#[derive(Debug, Clone)]
pub struct OpProf {
    pub(crate) counts: [u64; NSLOTS],
    pub(crate) nanos: [u64; NSLOTS],
}

impl Default for OpProf {
    fn default() -> Self {
        OpProf { counts: [0; NSLOTS], nanos: [0; NSLOTS] }
    }
}

impl OpProf {
    /// Attributes one dispatch of opcode `idx` taking `dur`.
    #[inline]
    pub(crate) fn add(&mut self, idx: usize, dur: Duration) {
        self.counts[idx] += 1;
        self.nanos[idx] += dur.as_nanos() as u64;
    }

    /// Folds another tally (a parallel chunk's) into this one.
    pub(crate) fn merge(&mut self, other: &OpProf) {
        for i in 0..NSLOTS {
            self.counts[i] += other.counts[i];
            self.nanos[i] += other.nanos[i];
        }
    }

    /// Total op dispatches recorded.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total attributed nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Non-empty entries as `(opcode name, count, nanos)`, hottest first.
    pub fn entries(&self) -> Vec<(&'static str, u64, u64)> {
        let mut v: Vec<(&'static str, u64, u64)> = (0..NSLOTS)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| {
                let name = if i < NOPCODES { op_name(i) } else { fop_name(i - NOPCODES) };
                (name, self.counts[i], self.nanos[i])
            })
            .collect();
        v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        v
    }
}

/// Attribution key: the axes the roofline model distinguishes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ProfKey {
    kernel: String,
    engine: &'static str,
    precision: &'static str,
}

/// Accumulated profile of one (kernel, engine, precision) class.
#[derive(Debug, Clone, Default)]
struct KernelProfile {
    launches: u64,
    wall_ns: u64,
    flops: u64,
    transaction_bytes: u64,
    /// Launches that carried a modeled time (ran in `ExecMode::Model`).
    modeled_launches: u64,
    /// Modeled device nanoseconds, summed over those launches.
    modeled_ns: f64,
    /// Measured wall nanoseconds of *those same launches*, so residuals
    /// compare matched sets even when fast and model launches interleave.
    modeled_wall_ns: u64,
    ops: OpProf,
}

static PROFILES: Mutex<BTreeMap<ProfKey, KernelProfile>> = Mutex::new(BTreeMap::new());

/// Accumulates one launch into the process-wide profile. Callers gate on
/// [`enabled`]; the device layer invokes this from
/// [`crate::Device::launch_wg`] with the launch's resolved backend and the
/// kernel's float precision.
#[allow(clippy::too_many_arguments)]
pub fn record_launch(
    kernel: &str,
    engine: &'static str,
    precision: &'static str,
    wall: Duration,
    modeled_s: Option<f64>,
    flops: u64,
    transaction_bytes: Option<u64>,
    ops: Option<&OpProf>,
) {
    let mut map = PROFILES.lock();
    let p = map.entry(ProfKey { kernel: kernel.to_string(), engine, precision }).or_default();
    p.launches += 1;
    let wall_ns = wall.as_nanos() as u64;
    p.wall_ns += wall_ns;
    p.flops += flops;
    p.transaction_bytes += transaction_bytes.unwrap_or(0);
    if let Some(s) = modeled_s {
        p.modeled_launches += 1;
        p.modeled_ns += s * 1e9;
        p.modeled_wall_ns += wall_ns;
    }
    if let Some(o) = ops {
        p.ops.merge(o);
    }
}

/// One opcode row of a kernel profile snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpEntry {
    /// Opcode name (e.g. `Bin`, `LdG`).
    pub op: String,
    /// Dispatches attributed.
    pub count: u64,
    /// Total attributed nanoseconds.
    pub total_ns: u64,
}

/// Serializable snapshot of one (kernel, engine, precision) profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfileSnapshot {
    /// Kernel name.
    pub kernel: String,
    /// Backend that executed (`compiled` / `vector` / `tape` / `tree`).
    pub engine: String,
    /// Float precision of the kernel's buffer traffic (`f32` / `f64`).
    pub precision: String,
    /// Launches accumulated.
    pub launches: u64,
    /// Total measured interpreter wall time, microseconds.
    pub wall_us: f64,
    /// Total flops counted.
    pub flops: u64,
    /// Total coalesced DRAM traffic (model-mode launches only).
    pub transaction_bytes: u64,
    /// Launches that carried a modeled time.
    pub modeled_launches: u64,
    /// Total modeled device time over those launches, microseconds.
    pub modeled_us: Option<f64>,
    /// Measured wall time of those same launches, microseconds.
    pub modeled_wall_us: Option<f64>,
    /// Per-opcode attribution (op mode only), hottest first.
    pub ops: Vec<OpEntry>,
}

/// Deterministic (key-ordered) snapshot of every accumulated profile.
pub fn snapshot() -> Vec<KernelProfileSnapshot> {
    let map = PROFILES.lock();
    map.iter()
        .map(|(k, p)| KernelProfileSnapshot {
            kernel: k.kernel.clone(),
            engine: k.engine.to_string(),
            precision: k.precision.to_string(),
            launches: p.launches,
            wall_us: p.wall_ns as f64 * 1e-3,
            flops: p.flops,
            transaction_bytes: p.transaction_bytes,
            modeled_launches: p.modeled_launches,
            modeled_us: (p.modeled_launches > 0).then_some(p.modeled_ns * 1e-3),
            modeled_wall_us: (p.modeled_launches > 0).then_some(p.modeled_wall_ns as f64 * 1e-3),
            ops: p
                .ops
                .entries()
                .into_iter()
                .map(|(op, count, total_ns)| OpEntry { op: op.to_string(), count, total_ns })
                .collect(),
        })
        .collect()
}

/// Clears every accumulated profile (tests and multi-phase harnesses).
pub fn reset() {
    PROFILES.lock().clear();
}

/// Snapshot-then-reset, for harnesses that report per phase.
pub fn take() -> Vec<KernelProfileSnapshot> {
    let snap = snapshot();
    reset();
    snap
}

/// One row of the measured-vs-modeled residual report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualRow {
    /// Kernel name.
    pub kernel: String,
    /// Backend that executed.
    pub engine: String,
    /// Float precision.
    pub precision: String,
    /// Measured interpreter wall time over modeled launches, microseconds.
    pub measured_us: f64,
    /// Modeled device time over the same launches, microseconds.
    pub modeled_us: f64,
    /// Measured divided by (calibration × modeled): 1.0 means this kernel
    /// sits exactly on the shared fit.
    pub ratio_to_fit: f64,
    /// `100 × (ratio_to_fit − 1)`: percentage deviation from the fit.
    pub residual_pct: f64,
}

/// The residual report: a least-squares calibration scale mapping modeled
/// device time onto measured interpreter time, and per-kernel deviations
/// from that shared fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualReport {
    /// The fitted measured-per-modeled scale (dimensionless; both sides in
    /// microseconds).
    pub calibration: f64,
    /// Per-kernel rows, largest absolute residual first.
    pub rows: Vec<ResidualRow>,
}

/// Joins profiler output with the roofline model: fits one scale
/// `measured ≈ scale × modeled` across every kernel class that carried
/// modeled launches (least squares through the origin), then reports each
/// class's deviation from the fit. Returns `None` when no launch was
/// modeled (e.g. `ExecMode::Fast` only).
pub fn residuals(snaps: &[KernelProfileSnapshot]) -> Option<ResidualReport> {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for s in snaps {
        if let (Some(m), Some(w)) = (s.modeled_us, s.modeled_wall_us) {
            num += w * m;
            den += m * m;
        }
    }
    if den == 0.0 {
        return None;
    }
    let calibration = num / den;
    let mut rows: Vec<ResidualRow> = snaps
        .iter()
        .filter_map(|s| {
            let (m, w) = (s.modeled_us?, s.modeled_wall_us?);
            let fit = calibration * m;
            let ratio = if fit > 0.0 { w / fit } else { f64::NAN };
            Some(ResidualRow {
                kernel: s.kernel.clone(),
                engine: s.engine.clone(),
                precision: s.precision.clone(),
                measured_us: w,
                modeled_us: m,
                ratio_to_fit: ratio,
                residual_pct: (ratio - 1.0) * 100.0,
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        b.residual_pct
            .abs()
            .partial_cmp(&a.residual_pct.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.kernel.cmp(&b.kernel))
    });
    Some(ResidualReport { calibration, rows })
}

/// Opcode rows shown per kernel in the rendered hotspot table.
const HOTSPOT_ROWS: usize = 12;

/// Renders the human-readable profile report: the per-kernel table, the
/// per-opcode hotspot tables (op mode), and the measured-vs-modeled
/// residual table.
pub fn render_report(snaps: &[KernelProfileSnapshot]) -> String {
    let mut out = format!("== vgpu profile ({} mode) ==\n", mode().label());
    if snaps.is_empty() {
        out.push_str("(no launches profiled)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<28} {:>7} {:>5} {:>9} {:>12} {:>14} {:>12}\n",
        "kernel", "engine", "prec", "launches", "wall ms", "flops", "txn bytes"
    ));
    for s in snaps {
        out.push_str(&format!(
            "{:<28} {:>7} {:>5} {:>9} {:>12.3} {:>14} {:>12}\n",
            s.kernel,
            s.engine,
            s.precision,
            s.launches,
            s.wall_us * 1e-3,
            s.flops,
            s.transaction_bytes
        ));
    }
    for s in snaps {
        if s.ops.is_empty() {
            continue;
        }
        let total_ns: u64 = s.ops.iter().map(|o| o.total_ns).sum();
        out.push_str(&format!(
            "-- op hotspots: {} [{} {}] ({:.3} ms attributed) --\n",
            s.kernel,
            s.engine,
            s.precision,
            total_ns as f64 * 1e-6
        ));
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>9} {:>7}\n",
            "op", "dispatches", "total ms", "ns/op", "share"
        ));
        for o in s.ops.iter().take(HOTSPOT_ROWS) {
            out.push_str(&format!(
                "{:<10} {:>14} {:>12.3} {:>9.1} {:>6.1}%\n",
                o.op,
                o.count,
                o.total_ns as f64 * 1e-6,
                o.total_ns as f64 / o.count.max(1) as f64,
                100.0 * o.total_ns as f64 / total_ns.max(1) as f64
            ));
        }
        if s.ops.len() > HOTSPOT_ROWS {
            let rest: u64 = s.ops[HOTSPOT_ROWS..].iter().map(|o| o.total_ns).sum();
            out.push_str(&format!(
                "{:<10} {:>14} {:>12.3}\n",
                format!("(+{} more)", s.ops.len() - HOTSPOT_ROWS),
                "",
                rest as f64 * 1e-6
            ));
        }
    }
    match residuals(snaps) {
        Some(r) => {
            out.push_str(&format!(
                "-- measured vs modeled (calibration {:.1}x: host interpreter per modeled \
                 device time) --\n",
                r.calibration
            ));
            out.push_str(&format!(
                "{:<28} {:>7} {:>5} {:>12} {:>12} {:>9} {:>10}\n",
                "kernel", "engine", "prec", "measured ms", "modeled ms", "x(fit)", "residual"
            ));
            for row in &r.rows {
                out.push_str(&format!(
                    "{:<28} {:>7} {:>5} {:>12.3} {:>12.4} {:>9.3} {:>+9.1}%\n",
                    row.kernel,
                    row.engine,
                    row.precision,
                    row.measured_us * 1e-3,
                    row.modeled_us * 1e-3,
                    row.ratio_to_fit,
                    row.residual_pct
                ));
            }
        }
        None => out.push_str(
            "-- measured vs modeled: no modeled launches (run with ExecMode::Model) --\n",
        ),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Profiler state is process-global; serialise tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_modes() {
        assert_eq!(ProfileMode::parse("off"), ProfileMode::Off);
        assert_eq!(ProfileMode::parse("KERNEL"), ProfileMode::Kernel);
        assert_eq!(ProfileMode::parse("op"), ProfileMode::Op);
        assert_eq!(ProfileMode::parse("opcode"), ProfileMode::Op);
        assert_eq!(ProfileMode::parse("nonsense"), ProfileMode::Off);
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let _g = TEST_LOCK.lock();
        reset();
        let mut ops = OpProf::default();
        ops.add(0, Duration::from_nanos(100));
        ops.add(0, Duration::from_nanos(50));
        ops.add(3, Duration::from_nanos(10));
        record_launch(
            "k",
            "tape",
            "f32",
            Duration::from_micros(500),
            Some(1e-6),
            1000,
            Some(4096),
            Some(&ops),
        );
        record_launch("k", "tape", "f32", Duration::from_micros(300), None, 1000, None, None);
        let snap = take();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(
            (s.kernel.as_str(), s.engine.as_str(), s.precision.as_str()),
            ("k", "tape", "f32")
        );
        assert_eq!(s.launches, 2);
        assert_eq!(s.modeled_launches, 1);
        assert!((s.wall_us - 800.0).abs() < 1e-9);
        // Only the modeled launch's wall feeds the residual pairing.
        assert!((s.modeled_wall_us.unwrap() - 500.0).abs() < 1e-9);
        assert!((s.modeled_us.unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(s.transaction_bytes, 4096);
        // Op entries are hottest-first and carry both count and time.
        assert_eq!(s.ops.len(), 2);
        assert_eq!(s.ops[0].count, 2);
        assert_eq!(s.ops[0].total_ns, 150);
        assert!(take().is_empty());
    }

    #[test]
    fn residual_fit_is_exact_for_proportional_data() {
        // measured = 1000 × modeled for both kernels → calibration 1000,
        // residuals 0.
        let snaps = vec![
            KernelProfileSnapshot {
                kernel: "a".into(),
                engine: "tape".into(),
                precision: "f32".into(),
                launches: 1,
                wall_us: 2000.0,
                flops: 0,
                transaction_bytes: 0,
                modeled_launches: 1,
                modeled_us: Some(2.0),
                modeled_wall_us: Some(2000.0),
                ops: vec![],
            },
            KernelProfileSnapshot {
                kernel: "b".into(),
                engine: "tape".into(),
                precision: "f32".into(),
                launches: 1,
                wall_us: 5000.0,
                flops: 0,
                transaction_bytes: 0,
                modeled_launches: 1,
                modeled_us: Some(5.0),
                modeled_wall_us: Some(5000.0),
                ops: vec![],
            },
        ];
        let r = residuals(&snaps).unwrap();
        assert!((r.calibration - 1000.0).abs() < 1e-6);
        for row in &r.rows {
            assert!(row.residual_pct.abs() < 1e-9, "unexpected residual {row:?}");
        }
        assert!(residuals(&[]).is_none());
    }

    #[test]
    fn render_report_mentions_hotspots_and_residuals() {
        let _g = TEST_LOCK.lock();
        reset();
        let mut ops = OpProf::default();
        ops.add(1, Duration::from_nanos(500));
        record_launch(
            "fi",
            "vector",
            "f32",
            Duration::from_micros(100),
            Some(2e-6),
            10,
            Some(128),
            Some(&ops),
        );
        let snap = take();
        let text = render_report(&snap);
        assert!(text.contains("op hotspots"), "{text}");
        assert!(text.contains("measured vs modeled"), "{text}");
        assert!(text.contains("fi"), "{text}");
    }
}

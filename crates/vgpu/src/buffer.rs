//! Device buffers.
//!
//! A [`BufData`] buffer is a flat, typed allocation in "device memory". Kernel
//! execution requires concurrent writes from many work-items into the same
//! buffer (the whole point of the paper's in-place primitives), so the
//! storage uses interior mutability behind [`SharedBuf`].
//!
//! # Safety model
//!
//! Work-items of one launch write **disjoint** locations — this is the
//! correctness condition of any OpenCL kernel without atomics, and the
//! acoustics kernels satisfy it because boundary indices are unique.
//! `SharedBuf` exposes `unsafe` element accessors whose contract is exactly
//! that disjointness; the safe wrapper in [`crate::device`] upholds it by
//! construction, and [`crate::device::Device::set_race_check`] turns on a
//! dynamic detector that records per-work-item write sets and fails the
//! launch if two work-items ever wrote the same element.

use lift::prelude::{ScalarKind, Value};
use std::cell::UnsafeCell;

/// Typed flat storage.
#[derive(Debug, Clone, PartialEq)]
pub enum BufData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit ints.
    I32(Vec<i32>),
}

impl BufData {
    /// Zero-filled buffer of `len` elements of `kind`.
    pub fn zeros(kind: ScalarKind, len: usize) -> BufData {
        match kind {
            ScalarKind::F32 => BufData::F32(vec![0.0; len]),
            ScalarKind::F64 => BufData::F64(vec![0.0; len]),
            ScalarKind::I32 | ScalarKind::Bool => BufData::I32(vec![0; len]),
            ScalarKind::Real => panic!("buffers require a resolved precision"),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufData::F32(v) => v.len(),
            BufData::F64(v) => v.len(),
            BufData::I32(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element kind.
    pub fn kind(&self) -> ScalarKind {
        match self {
            BufData::F32(_) => ScalarKind::F32,
            BufData::F64(_) => ScalarKind::F64,
            BufData::I32(_) => ScalarKind::I32,
        }
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> usize {
        match self {
            BufData::F64(_) => 8,
            _ => 4,
        }
    }

    /// Reads element `i` (bounds-checked).
    pub fn get(&self, i: usize) -> Value {
        match self {
            BufData::F32(v) => Value::F32(v[i]),
            BufData::F64(v) => Value::F64(v[i]),
            BufData::I32(v) => Value::I32(v[i]),
        }
    }

    /// Reads element `i` (bounds-checked) as its raw register bit pattern
    /// (f32/i32 zero-extended to 64 bits): the same bits the tape VM's
    /// register encoding assigns to `get(i)`, without the `Value`
    /// round-trip.
    pub fn get_bits(&self, i: usize) -> u64 {
        match self {
            BufData::F32(v) => v[i].to_bits() as u64,
            BufData::F64(v) => v[i].to_bits(),
            BufData::I32(v) => v[i] as u32 as u64,
        }
    }

    /// Writes element `i` (bounds-checked), casting `val` to the buffer's
    /// kind with C semantics.
    pub fn set(&mut self, i: usize, val: Value) {
        match self {
            BufData::F32(v) => v[i] = val.cast(ScalarKind::F32).as_f64() as f32,
            BufData::F64(v) => v[i] = val.as_f64(),
            BufData::I32(v) => v[i] = val.as_i64() as i32,
        }
    }

    /// Copies out as f64 (lossless for f32/i32 payloads).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            BufData::F32(v) => v.iter().map(|&x| x as f64).collect(),
            BufData::F64(v) => v.clone(),
            BufData::I32(v) => v.iter().map(|&x| x as f64).collect(),
        }
    }

    /// Copies out the element range `[off, off+len)` (bounds-checked).
    pub fn slice(&self, off: usize, len: usize) -> BufData {
        match self {
            BufData::F32(v) => BufData::F32(v[off..off + len].to_vec()),
            BufData::F64(v) => BufData::F64(v[off..off + len].to_vec()),
            BufData::I32(v) => BufData::I32(v[off..off + len].to_vec()),
        }
    }

    /// Overwrites elements `[off, off+src.len())` from `src`, which must
    /// have the same element kind.
    pub fn copy_from(&mut self, off: usize, src: &BufData) {
        match (self, src) {
            (BufData::F32(d), BufData::F32(s)) => d[off..off + s.len()].copy_from_slice(s),
            (BufData::F64(d), BufData::F64(s)) => d[off..off + s.len()].copy_from_slice(s),
            (BufData::I32(d), BufData::I32(s)) => d[off..off + s.len()].copy_from_slice(s),
            (d, s) => panic!("region copy kind mismatch: {:?} <- {:?}", d.kind(), s.kind()),
        }
    }
}

impl From<Vec<f32>> for BufData {
    fn from(v: Vec<f32>) -> Self {
        BufData::F32(v)
    }
}
impl From<Vec<f64>> for BufData {
    fn from(v: Vec<f64>) -> Self {
        BufData::F64(v)
    }
}
impl From<Vec<i32>> for BufData {
    fn from(v: Vec<i32>) -> Self {
        BufData::I32(v)
    }
}

/// Raw typed base pointer of a buffer's storage, for the compiled engine's
/// gather/scatter lane loops: the element-kind dispatch happens once per
/// superinstruction instead of once per lane, and element access compiles
/// to a plain indexed load/store. Every dereference must satisfy both the
/// bounds discipline of the access site (asserted, or statically proven)
/// and [`SharedBuf`]'s disjointness contract.
#[derive(Clone, Copy)]
pub(crate) enum BufPtr {
    /// 32-bit float storage.
    F32(*mut f32),
    /// 64-bit float storage.
    F64(*mut f64),
    /// 32-bit int storage.
    I32(*mut i32),
}

/// Shared-storage wrapper enabling concurrent disjoint writes during a
/// launch. See the module docs for the safety contract.
pub struct SharedBuf {
    data: UnsafeCell<BufData>,
    /// Shadow memory, present only under `VGPU_SANITIZE=shadow`. `Shadow`
    /// is internally synchronized (atomics + mutex), so it sits outside the
    /// `UnsafeCell` contract.
    shadow: Option<crate::sanitize::Shadow>,
}

// SAFETY: concurrent access is restricted by the launch contract — work-items
// write disjoint elements and never read an element another work-item writes
// in the same launch. The race-check mode verifies write disjointness.
unsafe impl Sync for SharedBuf {}
unsafe impl Send for SharedBuf {}

impl SharedBuf {
    /// Wraps buffer data, with no shadow memory.
    pub fn new(data: BufData) -> Self {
        SharedBuf { data: UnsafeCell::new(data), shadow: None }
    }

    /// Wraps buffer data with a shadow (allocated only when the sanitizer
    /// is enabled). `initialized` states whether the data already holds
    /// meaningful values (uploads, zero-initialized allocations) or is raw
    /// device memory whose reads should be flagged.
    pub(crate) fn with_shadow(data: BufData, initialized: bool) -> Self {
        let shadow = crate::sanitize::shadow_on()
            .then(|| crate::sanitize::Shadow::new(data.len(), initialized));
        SharedBuf { data: UnsafeCell::new(data), shadow }
    }

    /// The buffer's shadow memory, when the sanitizer allocated one.
    pub(crate) fn shadow(&self) -> Option<&crate::sanitize::Shadow> {
        self.shadow.as_ref()
    }

    /// Element count (safe: the length never changes during a launch).
    pub fn len(&self) -> usize {
        unsafe { (*self.data.get()).len() }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element kind.
    pub fn kind(&self) -> ScalarKind {
        unsafe { (*self.data.get()).kind() }
    }

    /// Element bytes.
    pub fn elem_bytes(&self) -> usize {
        unsafe { (*self.data.get()).elem_bytes() }
    }

    /// Reads one element.
    ///
    /// # Safety
    /// No other thread may be writing element `i` concurrently.
    pub unsafe fn get(&self, i: usize) -> Value {
        (*self.data.get()).get(i)
    }

    /// Reads one element as raw register bits (see [`BufData::get_bits`]).
    ///
    /// # Safety
    /// No other thread may be writing element `i` concurrently.
    pub unsafe fn get_bits(&self, i: usize) -> u64 {
        (*self.data.get()).get_bits(i)
    }

    /// Writes one element.
    ///
    /// # Safety
    /// No other thread may be reading or writing element `i` concurrently.
    pub unsafe fn set(&self, i: usize, val: Value) {
        (*self.data.get()).set(i, val)
    }

    /// The raw typed base pointer of the storage (see [`BufPtr`]). The
    /// pointer stays valid for the whole launch — buffer storage is never
    /// reallocated while kernels run — and reads/writes through it carry
    /// the same per-element contract as [`Self::get_bits`]/[`Self::set`].
    pub(crate) fn ptr(&self) -> BufPtr {
        // SAFETY: momentary exclusive view only to take the base pointer,
        // exactly like the per-element accessors above.
        match unsafe { &mut *self.data.get() } {
            BufData::F32(v) => BufPtr::F32(v.as_mut_ptr()),
            BufData::F64(v) => BufPtr::F64(v.as_mut_ptr()),
            BufData::I32(v) => BufPtr::I32(v.as_mut_ptr()),
        }
    }

    /// Exclusive access (requires `&mut`, hence no concurrent kernels).
    pub fn data_mut(&mut self) -> &mut BufData {
        self.data.get_mut()
    }

    /// Shared snapshot access. Only sound outside a launch.
    pub(crate) fn data(&self) -> &BufData {
        unsafe { &*self.data.get() }
    }

    /// Replaces the contents (differential-mode rollback). Only sound
    /// outside a launch.
    pub(crate) fn restore(&self, data: BufData) {
        unsafe { *self.data.get() = data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_kinds() {
        let b = BufData::zeros(ScalarKind::F64, 4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.kind(), ScalarKind::F64);
        assert_eq!(b.elem_bytes(), 8);
        assert_eq!(b.get(2), Value::F64(0.0));
    }

    #[test]
    fn set_casts_to_buffer_kind() {
        let mut b = BufData::zeros(ScalarKind::I32, 2);
        b.set(0, Value::F64(3.7));
        assert_eq!(b.get(0), Value::I32(3));
        let mut f = BufData::zeros(ScalarKind::F32, 2);
        f.set(1, Value::F64(0.1));
        assert_eq!(f.get(1), Value::F32(0.1f64 as f32));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        BufData::zeros(ScalarKind::F32, 2).get(5);
    }

    #[test]
    fn shared_buf_single_thread_roundtrip() {
        let s = SharedBuf::new(BufData::from(vec![1.0f32, 2.0]));
        unsafe {
            s.set(0, Value::F32(9.0));
            assert_eq!(s.get(0), Value::F32(9.0));
            assert_eq!(s.get(1), Value::F32(2.0));
        }
    }

    #[test]
    fn shared_buf_parallel_disjoint_writes() {
        use rayon::prelude::*;
        let s = SharedBuf::new(BufData::zeros(ScalarKind::I32, 1000));
        (0..1000usize).into_par_iter().for_each(|i| unsafe {
            s.set(i, Value::I32(i as i32));
        });
        let data = s.data();
        for i in (0..1000).step_by(97) {
            assert_eq!(data.get(i), Value::I32(i as i32));
        }
    }
}
